package dqm_test

import (
	"fmt"

	"dqm"
)

// The basic loop: record worker votes in task order, then read the
// estimates. Three workers review a four-item dataset; item 2 is flagged by
// two of them, item 0 by one.
func ExampleRecorder() {
	rec := dqm.NewRecorder(4, dqm.Defaults())

	// Worker 0 reviews items 0-2.
	rec.Record(0, 0, true)
	rec.Record(1, 0, false)
	rec.Record(2, 0, true)
	rec.EndTask()
	// Worker 1 reviews items 0, 2, 3.
	rec.Record(0, 1, false)
	rec.Record(2, 1, true)
	rec.Record(3, 1, false)
	rec.EndTask()

	e := rec.Estimates()
	fmt.Printf("nominal=%.0f voting=%.0f\n", e.Nominal, e.Voting)
	// Output:
	// nominal=2 voting=1
}

// Extrapolate is the predictive baseline of §2.2.3: a perfectly cleaned 1%
// sample with 4 errors scales to 400 errors in the full dataset.
func ExampleExtrapolate() {
	total := dqm.Extrapolate(4, 10, 1000)
	fmt.Printf("%.0f\n", total)
	// Output:
	// 400
}

// Remaining is the headline quantity: the SWITCH total minus what the
// majority already found.
func ExampleEstimates_Remaining() {
	e := dqm.Estimates{
		Voting: 40,
		Switch: dqm.SwitchEstimate{Total: 52.5},
	}
	fmt.Printf("%.1f\n", e.Remaining())
	// Output:
	// 12.5
}

// Confidence intervals require TrackConfidence at construction.
func ExampleRecorder_SwitchCI() {
	cfg := dqm.Defaults()
	cfg.TrackConfidence = true
	rec := dqm.NewRecorder(100, cfg)
	for task := 0; task < 30; task++ {
		for i := 0; i < 10; i++ {
			item := (task*7 + i*13) % 100
			rec.Record(item, task, item%10 == 0)
		}
		rec.EndTask()
	}
	ci, err := rec.SwitchCI(100, 0.9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("interval is ordered: %v\n", ci.Lo <= ci.Hi)
	// Output:
	// interval is ordered: true
}
