// Package dqm implements the Data Quality Metric of Chung, Krishnan and
// Kraska: "A Data Quality Metric (DQM): How to Estimate the Number of
// Undetected Errors in Data Sets" (PVLDB 10(10), 2017).
//
// The library estimates how many errors remain undetected in a dataset after
// fallible (crowd or algorithmic) cleaning passes, without ground truth or a
// complete rule set. Feed worker votes (item, worker, dirty/clean) in task
// order into a Recorder and read estimates at any point:
//
//	rec := dqm.NewRecorder(nItems, dqm.Defaults())
//	for _, task := range tasks {
//	    for _, v := range task {
//	        rec.Record(v.Item, v.Worker, v.Dirty)
//	    }
//	    rec.EndTask()
//	}
//	est := rec.Estimates()
//	fmt.Println(est.Switch.Total, est.Switch.Total-est.Voting) // total, remaining
//
// Estimators implemented (paper section in parentheses):
//
//   - Nominal (§2.2.1) and Voting (§2.2.2) — descriptive baselines;
//   - Extrapolate (§2.2.3) — predictive baseline from a clean sample;
//   - Chao92 (§3.2) — species estimation over positive votes;
//   - VChao92 (§3.3) — shifted fingerprint, robust to false positives;
//   - Switch (§4) — the paper's contribution: estimate remaining consensus
//     switches and correct the majority vote with the trend-selected side.
//
// The internal packages supply the full reproduction substrate (datasets,
// crowd simulation, prioritization, experiment harness); see DESIGN.md.
package dqm

import (
	"dqm/internal/estimator"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Vote is one worker judgment: worker Worker looked at item Item and marked
// it dirty (erroneous) or clean.
type Vote struct {
	Item   int
	Worker int
	Dirty  bool
}

// TiePolicy selects how consensus switches are counted (§4.1 notes the
// definition admits different tie policies).
type TiePolicy int

const (
	// TieFlip is Equation 7 verbatim: every running-vote tie flips the
	// consensus (the paper's definition; the default).
	TieFlip TiePolicy = iota
	// StrictMajority flips only when the strict vote majority crosses the
	// current consensus; ties are sticky.
	StrictMajority
)

// Config tunes the estimator suite. The zero value is NOT valid; start from
// Defaults.
type Config struct {
	// VChaoShift is the fingerprint shift s of vChao92 (§3.3); the paper
	// uses 1.
	VChaoShift int
	// TiePolicy selects the switch-counting rule.
	TiePolicy TiePolicy
	// TrendWindow fixes the task window of the §4.3 trend detector;
	// 0 selects the adaptive default.
	TrendWindow int
	// CapToPopulation clamps estimates into [0, N]; enable it when the item
	// space is a closed candidate set.
	CapToPopulation bool
	// TrackConfidence retains per-item switch ledgers so that
	// Recorder.SwitchCI can compute bootstrap confidence intervals. Costs
	// O(observed switches) extra memory.
	TrackConfidence bool
}

// Defaults returns the paper-faithful configuration.
func Defaults() Config {
	return Config{VChaoShift: 1, TiePolicy: TieFlip}
}

// SwitchEstimate mirrors the full SWITCH output (§4): the corrected total,
// the remaining positive/negative switch estimates ξ⁺/ξ⁻ and the detected
// majority trend.
type SwitchEstimate struct {
	// Total is the trend-corrected total error estimate of §4.3.
	Total float64
	// XiPos and XiNeg estimate the remaining positive (clean→dirty) and
	// negative (dirty→clean) consensus switches.
	XiPos, XiNeg float64
	// RemainingSwitches is the Problem-2 answer: expected consensus flips
	// (either sign) still to come.
	RemainingSwitches float64
	// TrendUp/TrendDown report the detected majority trend (both false =
	// flat).
	TrendUp, TrendDown bool
}

// Estimates is a snapshot of every estimator at one point of the vote
// stream.
type Estimates struct {
	// Nominal is c_nominal: items marked dirty by at least one worker.
	Nominal float64
	// Voting is c_majority: items with a dirty strict majority.
	Voting float64
	// Chao92 is the species estimate of the total distinct errors.
	Chao92 float64
	// VChao92 is the shifted, false-positive-robust variant.
	VChao92 float64
	// Switch is the paper's SWITCH estimate.
	Switch SwitchEstimate
}

// Remaining returns the estimated number of still-undetected errors
// according to the SWITCH estimator: its total minus the current majority
// count, floored at zero.
func (e Estimates) Remaining() float64 {
	r := e.Switch.Total - e.Voting
	if r < 0 {
		return 0
	}
	return r
}

// Recorder ingests a vote stream and evaluates the estimator suite. It is
// not safe for concurrent use; wrap it with a mutex if tasks arrive from
// multiple goroutines.
type Recorder struct {
	suite  *estimator.Suite
	ciSeed uint64
}

// NewRecorder creates a recorder over a population of n items (records, or
// candidate pairs for entity resolution).
func NewRecorder(n int, cfg Config) *Recorder {
	policy := switchstat.PolicyTieFlip
	if cfg.TiePolicy == StrictMajority {
		policy = switchstat.PolicyStrictMajority
	}
	return &Recorder{
		suite: estimator.NewSuite(n, estimator.SuiteConfig{
			VChao92: estimator.VChao92Config{Shift: cfg.VChaoShift},
			Switch: estimator.SwitchConfig{
				Policy:          policy,
				TrendWindow:     cfg.TrendWindow,
				CapToPopulation: cfg.CapToPopulation,
				RetainLedgers:   cfg.TrackConfidence,
			},
			CapToPopulation: cfg.CapToPopulation,
		}),
		ciSeed: 0x5eed,
	}
}

// Record ingests one vote.
func (r *Recorder) Record(item, worker int, dirty bool) {
	label := votes.Clean
	if dirty {
		label = votes.Dirty
	}
	r.suite.Observe(votes.Vote{Item: item, Worker: worker, Label: label})
}

// RecordVote ingests one Vote.
func (r *Recorder) RecordVote(v Vote) { r.Record(v.Item, v.Worker, v.Dirty) }

// EndTask marks a task boundary. The SWITCH trend detector operates on the
// per-task majority series, so call this whenever one worker's task
// completes.
func (r *Recorder) EndTask() { r.suite.EndTask() }

// Estimates evaluates all estimators at the current position.
func (r *Recorder) Estimates() Estimates {
	e := r.suite.EstimateAll()
	return Estimates{
		Nominal: e.Nominal,
		Voting:  e.Voting,
		Chao92:  e.Chao92,
		VChao92: e.VChao92,
		Switch: SwitchEstimate{
			Total:             e.Switch.Total,
			XiPos:             e.Switch.XiPos,
			XiNeg:             e.Switch.XiNeg,
			RemainingSwitches: e.Switch.RemainingSwitches,
			TrendUp:           e.Switch.Trend == estimator.TrendUp,
			TrendDown:         e.Switch.Trend == estimator.TrendDown,
		},
	}
}

// MajorityDirty reports the current majority consensus for an item.
func (r *Recorder) MajorityDirty(item int) bool { return r.suite.Matrix.MajorityDirty(item) }

// NumItems returns the population size N.
func (r *Recorder) NumItems() int { return r.suite.Matrix.NumItems() }

// NumWorkers returns the number of distinct workers seen.
func (r *Recorder) NumWorkers() int { return r.suite.Matrix.NumWorkers() }

// TotalVotes returns the number of votes ingested.
func (r *Recorder) TotalVotes() int64 { return r.suite.Matrix.TotalVotes() }

// Reset clears the recorder.
func (r *Recorder) Reset() { r.suite.Reset() }

// Extrapolate is the §2.2.3 predictive baseline: scale the errsFound
// discovered in a perfectly cleaned sample of sampleSize up to the
// population.
func Extrapolate(errsFound, sampleSize, population int) float64 {
	return estimator.Extrapolate(errsFound, sampleSize, population)
}

// ConfidenceInterval is a two-sided bootstrap percentile interval.
type ConfidenceInterval struct {
	Lo, Hi float64
	Level  float64
}

// Contains reports whether v lies within the interval.
func (c ConfidenceInterval) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// SwitchCI returns a bootstrap confidence interval for the SWITCH total
// estimate by resampling items (replicates resamples, e.g. 200; level e.g.
// 0.95). The recorder must have been built with Config.TrackConfidence.
func (r *Recorder) SwitchCI(replicates int, level float64) (ConfidenceInterval, error) {
	ci, err := r.suite.Switch.BootstrapSwitch(replicates, level, xrand.New(r.ciSeed))
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}, nil
}

// Chao92CI returns a bootstrap confidence interval for the Chao92 total
// estimate.
func (r *Recorder) Chao92CI(replicates int, level float64) (ConfidenceInterval, error) {
	ci, err := estimator.BootstrapChao92(r.suite.Matrix, replicates, level, xrand.New(r.ciSeed))
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}, nil
}
