// Package dqm implements the Data Quality Metric of Chung, Krishnan and
// Kraska: "A Data Quality Metric (DQM): How to Estimate the Number of
// Undetected Errors in Data Sets" (PVLDB 10(10), 2017).
//
// The library estimates how many errors remain undetected in a dataset after
// fallible (crowd or algorithmic) cleaning passes, without ground truth or a
// complete rule set. Feed worker votes (item, worker, dirty/clean) in task
// order into a Recorder and read estimates at any point:
//
//	rec := dqm.NewRecorder(nItems, dqm.Defaults())
//	for _, task := range tasks {
//	    for _, v := range task {
//	        rec.Record(v.Item, v.Worker, v.Dirty)
//	    }
//	    rec.EndTask()
//	}
//	est := rec.Estimates()
//	fmt.Println(est.Switch.Total, est.Switch.Total-est.Voting) // total, remaining
//
// For serving many datasets concurrently, use an Engine: it manages
// independent, individually locked sessions (one per dataset) with batch
// ingest, snapshot/restore of estimator state and LRU eviction. A Recorder
// is exactly one such session; cmd/dqm-serve exposes the Engine over HTTP.
//
//	eng := dqm.NewEngine(dqm.EngineConfig{})
//	sess, _ := eng.CreateSession("orders-2026-07", nItems, dqm.Defaults())
//	_ = sess.AppendVotes(batch, true) // one task per batch
//	est := sess.Estimates()
//
// Engines can be durable: OpenEngine(dir, cfg) write-ahead-journals every
// session's votes (group-committed, CRC-framed, snapshot-compacted) and
// recovers all sessions on reopen with bit-identical estimator state, so the
// estimate survives a crash of the process consulting it mid-cleaning.
//
// The read path is built for heavy polling: Estimates on an unchanged
// session is a lock-free cache hit (Session.Version exposes the underlying
// mutation counter for change detection), and sessions created with
// Config.Window additionally serve windowed estimates — the quality of the
// last N tasks, tumbling or sliding, plus an exponentially decayed aggregate
// (Session.WindowEstimates) — for streams whose error rate drifts.
//
// Estimators implemented (paper section in parentheses):
//
//   - Nominal (§2.2.1) and Voting (§2.2.2) — descriptive baselines;
//   - Extrapolate (§2.2.3) — predictive baseline from a clean sample;
//   - Chao92 (§3.2) — species estimation over positive votes;
//   - VChao92 (§3.3) — shifted fingerprint, robust to false positives;
//   - Switch (§4) — the paper's contribution: estimate remaining consensus
//     switches and correct the majority vote with the trend-selected side.
//
// The estimator set is pluggable: estimators register by name (package
// internal/estimator) and sessions select a subset via Config.Estimators.
// The internal packages supply the full reproduction substrate (datasets,
// crowd simulation, prioritization, experiment harness); see DESIGN.md.
package dqm

import (
	"errors"
	"fmt"
	"time"

	"dqm/internal/engine"
	"dqm/internal/estimator"
	"dqm/internal/switchstat"
	"dqm/internal/votelog"
	"dqm/internal/votes"
	"dqm/internal/wal"
	"dqm/internal/window"
)

// Vote is one worker judgment: worker Worker looked at item Item and marked
// it dirty (erroneous) or clean.
type Vote struct {
	Item   int
	Worker int
	Dirty  bool
}

// TiePolicy selects how consensus switches are counted (§4.1 notes the
// definition admits different tie policies).
type TiePolicy int

const (
	// TieFlip is Equation 7 verbatim: every running-vote tie flips the
	// consensus (the paper's definition; the default).
	TieFlip TiePolicy = iota
	// StrictMajority flips only when the strict vote majority crosses the
	// current consensus; ties are sticky.
	StrictMajority
)

// Config tunes the estimator suite of a Recorder or session. The zero value
// is NOT valid; start from Defaults.
type Config struct {
	// VChaoShift is the fingerprint shift s of vChao92 (§3.3); the paper
	// uses 1.
	VChaoShift int
	// TiePolicy selects the switch-counting rule.
	TiePolicy TiePolicy
	// TrendWindow fixes the task window of the §4.3 trend detector;
	// 0 selects the adaptive default.
	TrendWindow int
	// CapToPopulation clamps estimates into [0, N]; enable it when the item
	// space is a closed candidate set.
	CapToPopulation bool
	// TrackConfidence retains per-item switch ledgers so that
	// Recorder.SwitchCI can compute bootstrap confidence intervals. Costs
	// O(observed switches) extra memory.
	TrackConfidence bool
	// Estimators selects the evaluated estimators by registered name (see
	// EstimatorNames); nil selects the full paper suite. Estimators left out
	// report zero in Estimates.
	Estimators []string
	// Window, when set, additionally runs the selected estimators over
	// task-count windows — "the quality of the last N tasks" — alongside the
	// all-time estimate. Nil disables windowed estimation.
	Window *WindowConfig
}

// WindowConfig parameterizes windowed estimation (see Session.WindowEstimates).
type WindowConfig struct {
	// Size is the window length in completed tasks (> 0).
	Size int
	// Stride is the task offset between successive window starts: 0 or Size
	// selects tumbling windows, smaller values sliding windows built from
	// ceil(Size/Stride) staggered panes. Every vote feeds every open pane, so
	// the pane count multiplies ingest cost; it is capped at 64.
	Stride int
	// DecayAlpha in (0, 1] is the weight of the newest completed window in
	// the exponentially decayed aggregate; 0 disables WindowDecayed reads.
	DecayAlpha float64
}

// Validate reports whether the configuration is serveable; Engine.CreateSession
// validates automatically, NewRecorder panics on invalid configs.
func (c WindowConfig) Validate() error { return c.internal().Validate() }

func (c WindowConfig) internal() window.Config {
	return window.Config{Size: c.Size, Stride: c.Stride, DecayAlpha: c.DecayAlpha}
}

// WindowKind selects a windowed view.
type WindowKind int

const (
	// WindowCurrent is the oldest still-open window: the most recent
	// up-to-Size completed tasks. Moves with every vote.
	WindowCurrent WindowKind = iota
	// WindowLast is the most recently completed full window; stable between
	// rotations.
	WindowLast
	// WindowDecayed is the exponentially decayed aggregate over completed
	// windows (requires WindowConfig.DecayAlpha > 0).
	WindowDecayed
)

// String implements fmt.Stringer ("current", "last", "decayed").
func (k WindowKind) String() string { return window.Kind(k).String() }

// ParseWindowKind inverts WindowKind.String; API layers use it for the
// ?window= query parameter.
func ParseWindowKind(s string) (WindowKind, error) {
	k, err := window.ParseKind(s)
	return WindowKind(k), err
}

// WindowEstimates is one windowed estimate read.
type WindowEstimates struct {
	// Estimates is the estimator snapshot over the window's tasks (for
	// WindowDecayed, the decayed aggregate).
	Estimates Estimates
	// Kind is the view that produced the result.
	Kind WindowKind
	// Start and End delimit the covered task interval [Start, End).
	Start, End int64
	// Tasks is the number of completed tasks covered (< Size only for a
	// partial WindowCurrent early in a window).
	Tasks int64
	// Complete reports a full Size-task window.
	Complete bool
}

// Defaults returns the paper-faithful configuration.
func Defaults() Config {
	return Config{VChaoShift: 1, TiePolicy: TieFlip}
}

// suiteConfig lowers the public Config to the internal estimator
// configuration shared by Recorder and Engine sessions.
func (c Config) suiteConfig() estimator.SuiteConfig {
	policy := switchstat.PolicyTieFlip
	if c.TiePolicy == StrictMajority {
		policy = switchstat.PolicyStrictMajority
	}
	return estimator.SuiteConfig{
		Estimators: c.Estimators,
		VChao92:    estimator.VChao92Config{Shift: c.VChaoShift},
		Switch: estimator.SwitchConfig{
			Policy:          policy,
			TrendWindow:     c.TrendWindow,
			CapToPopulation: c.CapToPopulation,
			RetainLedgers:   c.TrackConfidence,
		},
		CapToPopulation: c.CapToPopulation,
	}
}

// sessionConfig lowers the public Config to the engine's session
// configuration.
func (c Config) sessionConfig() engine.SessionConfig {
	sc := engine.SessionConfig{Suite: c.suiteConfig()}
	if c.Window != nil {
		w := c.Window.internal()
		sc.Window = &w
	}
	return sc
}

// EstimatorNames returns every registered estimator name, sorted; these are
// the values Config.Estimators accepts.
func EstimatorNames() []string { return estimator.RegisteredNames() }

// SwitchEstimate mirrors the full SWITCH output (§4): the corrected total,
// the remaining positive/negative switch estimates ξ⁺/ξ⁻ and the detected
// majority trend.
type SwitchEstimate struct {
	// Total is the trend-corrected total error estimate of §4.3.
	Total float64
	// XiPos and XiNeg estimate the remaining positive (clean→dirty) and
	// negative (dirty→clean) consensus switches.
	XiPos, XiNeg float64
	// RemainingSwitches is the Problem-2 answer: expected consensus flips
	// (either sign) still to come.
	RemainingSwitches float64
	// TrendUp/TrendDown report the detected majority trend (both false =
	// flat).
	TrendUp, TrendDown bool
}

// Estimates is a snapshot of every estimator at one point of the vote
// stream.
type Estimates struct {
	// Nominal is c_nominal: items marked dirty by at least one worker.
	Nominal float64
	// Voting is c_majority: items with a dirty strict majority.
	Voting float64
	// Chao92 is the species estimate of the total distinct errors.
	Chao92 float64
	// VChao92 is the shifted, false-positive-robust variant.
	VChao92 float64
	// Switch is the paper's SWITCH estimate.
	Switch SwitchEstimate
	// Extra holds estimates of non-standard registered estimators selected
	// via Config.Estimators, keyed by name; nil otherwise.
	Extra map[string]float64
}

// Remaining returns the estimated number of still-undetected errors
// according to the SWITCH estimator: its total minus the current majority
// count, floored at zero.
func (e Estimates) Remaining() float64 {
	r := e.Switch.Total - e.Voting
	if r < 0 {
		return 0
	}
	return r
}

// fromInternal converts the internal estimate snapshot.
func fromInternal(e estimator.Estimates) Estimates {
	return Estimates{
		Nominal: e.Nominal,
		Voting:  e.Voting,
		Chao92:  e.Chao92,
		VChao92: e.VChao92,
		Switch: SwitchEstimate{
			Total:             e.Switch.Total,
			XiPos:             e.Switch.XiPos,
			XiNeg:             e.Switch.XiNeg,
			RemainingSwitches: e.Switch.RemainingSwitches,
			TrendUp:           e.Switch.Trend == estimator.TrendUp,
			TrendDown:         e.Switch.Trend == estimator.TrendDown,
		},
		Extra: e.Extra,
	}
}

// ConfidenceInterval is a two-sided bootstrap percentile interval.
type ConfidenceInterval struct {
	Lo, Hi float64
	Level  float64
}

// Contains reports whether v lies within the interval.
func (c ConfidenceInterval) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Recorder ingests a vote stream and evaluates the estimator suite. It is
// exactly one (standalone) engine session and shares Session's entire
// method set — so, unlike in earlier releases, it IS safe for concurrent
// use; votes are serialized in arrival order.
type Recorder struct {
	Session
}

// NewRecorder creates a recorder over a population of n items (records, or
// candidate pairs for entity resolution). It panics on an unregistered name
// in Config.Estimators and on an invalid Config.Window; validate user input
// with EstimatorNames/WindowConfig.Validate first, or create sessions
// through an Engine, which returns errors instead.
func NewRecorder(n int, cfg Config) *Recorder {
	return &Recorder{Session{s: engine.NewSession("", n, cfg.sessionConfig())}}
}

// IsJournalError reports whether err came from a durable session's
// write-ahead journal — an infrastructure fault (disk full, journal closed
// by eviction or engine Close), not invalid input. The failed mutation was
// not applied, and further durable mutations on that session will keep
// failing until it is reloaded; API layers should surface these as server
// errors, not client errors.
func IsJournalError(err error) bool {
	var je *engine.JournalError
	return errors.As(err, &je)
}

// Extrapolate is the §2.2.3 predictive baseline: scale the errsFound
// discovered in a perfectly cleaned sample of sampleSize up to the
// population.
func Extrapolate(errsFound, sampleSize, population int) float64 {
	return estimator.Extrapolate(errsFound, sampleSize, population)
}

// FsyncPolicy selects when a durable engine flushes journal writes to stable
// storage (see EngineConfig.Fsync).
type FsyncPolicy int

const (
	// FsyncBatch (the default) group-commits: frames accumulate in a
	// user-space buffer that a background flusher drains and fsyncs at
	// least once per FsyncInterval (and always on checkpoint and close).
	// A crash loses at most roughly the last interval of acknowledged
	// votes.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways fsyncs every ingest batch before acknowledging it.
	FsyncAlways
	// FsyncNever leaves flushing to the OS; a clean Close still syncs.
	FsyncNever
)

// String returns the policy's flag spelling ("batch", "always", "never").
func (p FsyncPolicy) String() string { return wal.FsyncPolicy(p).String() }

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// Shards is the number of independently locked session-table shards
	// (rounded up to a power of two); 0 selects 16. Raise it when many
	// goroutines create and look up sessions concurrently.
	Shards int
	// MaxSessions bounds the number of live sessions; creating one more
	// evicts the least-recently-used session first. 0 means unlimited. On a
	// durable engine eviction only releases memory — the session's journal
	// files survive and Session(id) revives it on demand. Do not retain
	// *Session handles across evictions on a durable engine: the evicted
	// handle's journal is closed, so AppendVotes on it fails (see
	// IsJournalError) and the void mutators (Record, EndTask, Reset) panic;
	// re-fetch the session via Session(id) instead.
	MaxSessions int
	// OnEvict, when set, is called with the id of every session removed by
	// the MaxSessions policy (not by DeleteSession), after removal and with
	// no engine lock held (the callback may call back into the engine) — use
	// it to release any per-session state held outside the engine.
	OnEvict func(sessionID string)
	// DataDir enables durability: every session write-ahead-journals its
	// votes under this directory and is recovered — bit-identical — when the
	// engine is reopened. Empty means in-memory only. Prefer OpenEngine,
	// which reports recovery errors; NewEngine panics on them.
	DataDir string
	// Fsync selects the journal flush policy when DataDir is set.
	Fsync FsyncPolicy
	// FsyncInterval is the maximum fsync staleness under FsyncBatch;
	// 0 selects 100ms.
	FsyncInterval time.Duration
	// RecoveryParallelism bounds how many journaled sessions OpenEngine
	// replays concurrently during boot recovery. 0 selects GOMAXPROCS; 1
	// recovers serially. Recovered state is bit-identical at any setting —
	// sessions are independent journals — so this only trades boot wall-clock
	// against replay CPU/IO concurrency.
	RecoveryParallelism int
	// BootstrapParallelism bounds the worker pool each session fans
	// bootstrap confidence-interval replicates over. 0 selects a per-CPU
	// default (capped at 8); 1 computes replicates serially. Intervals are
	// bit-identical at any setting — replicate RNG streams are addressed by
	// index, so the fan-out only changes wall-clock.
	BootstrapParallelism int
}

// walOptions lowers the public durability knobs.
func (cfg EngineConfig) engineConfig() engine.Config {
	return engine.Config{
		Shards:               cfg.Shards,
		MaxSessions:          cfg.MaxSessions,
		OnEvict:              cfg.OnEvict,
		DataDir:              cfg.DataDir,
		RecoveryParallelism:  cfg.RecoveryParallelism,
		BootstrapParallelism: cfg.BootstrapParallelism,
		WAL: wal.Options{
			Fsync:         wal.FsyncPolicy(cfg.Fsync),
			BatchInterval: cfg.FsyncInterval,
		},
	}
}

// Engine manages many concurrent, independent estimation sessions — one per
// dataset being cleaned. All methods are safe for concurrent use.
type Engine struct {
	e *engine.Engine
}

// NewEngine creates an engine. With cfg.DataDir set it behaves like
// OpenEngine but panics on a recovery error; programs that must handle
// corrupt or unreadable data directories should call OpenEngine instead.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.DataDir == "" {
		return &Engine{e: engine.New(cfg.engineConfig())}
	}
	eng, err := OpenEngine(cfg.DataDir, cfg)
	if err != nil {
		panic(fmt.Sprintf("dqm: NewEngine: %v", err))
	}
	return eng
}

// OpenEngine opens a durable engine over the data directory dir (created if
// missing): every session journals its votes ahead of applying them, and
// every journaled session found in dir is recovered before OpenEngine
// returns, with estimator state bit-identical to the moment of its last
// durable write. Close the engine to flush final checkpoints.
func OpenEngine(dir string, cfg EngineConfig) (*Engine, error) {
	cfg.DataDir = dir
	if dir == "" {
		return nil, fmt.Errorf("dqm: OpenEngine: empty data directory")
	}
	eng, err := engine.Open(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	return &Engine{e: eng}, nil
}

// Durable reports whether the engine persists sessions to a data directory.
func (e *Engine) Durable() bool { return e.e.Durable() }

// Checkpoint forces a durable point for every live session: buffered journal
// frames are fsynced and, where enough history has accumulated, compacted
// into a snapshot. No-op on in-memory engines.
func (e *Engine) Checkpoint() error { return e.e.Checkpoint() }

// Close flushes a final checkpoint of every live session and closes the
// journals. The engine must not ingest afterwards. No-op on in-memory
// engines.
func (e *Engine) Close() error { return e.e.Close() }

// CreateSession registers a new session over a population of n items. It
// fails on an empty or duplicate id, a non-positive population, an
// unregistered estimator name in cfg.Estimators, or an invalid cfg.Window.
func (e *Engine) CreateSession(id string, n int, cfg Config) (*Session, error) {
	if err := estimator.ValidateNames(cfg.Estimators); err != nil {
		return nil, err
	}
	s, err := e.e.Create(id, n, cfg.sessionConfig())
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Session returns the session registered under id. On a durable engine an
// evicted (or previously journaled) session is transparently revived from
// its journal.
func (e *Engine) Session(id string) (*Session, bool) {
	s, ok := e.e.GetOrLoad(id)
	if !ok {
		return nil, false
	}
	return &Session{s: s}, true
}

// DeleteSession removes the session registered under id — including, on a
// durable engine, its journal files — reporting whether it existed.
func (e *Engine) DeleteSession(id string) bool { return e.e.Delete(id) }

// SessionIDs returns every session id, sorted; on a durable engine this
// includes journaled sessions currently evicted from memory.
func (e *Engine) SessionIDs() []string { return e.e.IDs() }

// SetSessionPolicy attaches (or, with empty raw, detaches) an opaque
// quality-gate policy document to a session. The engine does not interpret
// the document — cmd/dqm-serve's policy layer (internal/policy) validates and
// evaluates it — but persists it in the session's metadata on a durable
// engine, so policies survive restart, eviction and revival.
func (e *Engine) SetSessionPolicy(id string, raw []byte) error { return e.e.SetPolicy(id, raw) }

// NumSessions returns the number of live sessions.
func (e *Engine) NumSessions() int { return e.e.Len() }

// Evictions returns the number of sessions evicted by the MaxSessions
// policy.
func (e *Engine) Evictions() int64 { return e.e.Evictions() }

// BootRecovery reports what OpenEngine's boot recovery did: how many
// journaled sessions were replayed eagerly and how long the (possibly
// parallel — see EngineConfig.RecoveryParallelism) replay took. Zero values
// on in-memory engines and empty data directories.
func (e *Engine) BootRecovery() (sessions int, elapsed time.Duration) { return e.e.BootRecovery() }

// Session is one engine-managed dataset session. All methods are safe for
// concurrent use; votes within a session are serialized in arrival order.
type Session struct {
	s *engine.Session
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.s.ID() }

// CreatedAt returns the session creation time.
func (s *Session) CreatedAt() time.Time { return s.s.CreatedAt() }

// LastUsed returns the time of the most recent operation.
func (s *Session) LastUsed() time.Time { return s.s.LastUsed() }

// EstimatorNames returns the session's selected estimators in evaluation
// order.
func (s *Session) EstimatorNames() []string { return s.s.EstimatorNames() }

// Record ingests one vote. It panics on an out-of-range item; external
// input should go through AppendVotes, which validates and rejects whole
// batches atomically.
func (s *Session) Record(item, worker int, dirty bool) { s.s.Record(item, worker, dirty) }

// RecordVote ingests one Vote.
func (s *Session) RecordVote(v Vote) { s.Record(v.Item, v.Worker, v.Dirty) }

// AppendVotes ingests a batch of votes under one lock acquisition and, when
// endTask is set, marks a task boundary after the batch. Items outside
// [0, N) fail the whole batch before any vote is applied.
func (s *Session) AppendVotes(batch []Vote, endTask bool) error {
	vs := make([]votes.Vote, len(batch))
	for i, v := range batch {
		label := votes.Clean
		if v.Dirty {
			label = votes.Dirty
		}
		vs[i] = votes.Vote{Item: v.Item, Worker: v.Worker, Label: label}
	}
	return s.s.Append(vs, endTask)
}

// AppendDQMV ingests a complete binary vote log (the DQMV format of
// internal/votelog: magic header, 'T' task records, 'V' vote records)
// through the columnar fast path: each task's raw vote bytes are validated,
// journaled verbatim as one columnar WAL record, and applied — no per-vote
// decode into structs and no re-encode on the durability path. Task
// boundaries follow the format's task-id changes plus one after the final
// vote, exactly the boundaries the Entry/JSON path produces, so the
// resulting estimates are identical to ingesting the same log vote by vote.
// It returns the number of votes and task boundaries ingested. A malformed
// stream or out-of-population item fails before anything is applied; a
// journal error mid-log leaves the earlier tasks ingested (they are already
// durable) and reports how far it got.
func (s *Session) AppendDQMV(body []byte) (votesIngested, tasksEnded int, err error) {
	blocks, err := votelog.SplitBinaryTasks(body)
	if err != nil {
		return 0, 0, err
	}
	for i, b := range blocks {
		endTask := i+1 == len(blocks) || blocks[i+1].Task != b.Task
		n, err := s.s.AppendColumns(b.Raw, endTask)
		if err != nil {
			return votesIngested, tasksEnded, err
		}
		votesIngested += n
		if endTask {
			tasksEnded++
		}
	}
	return votesIngested, tasksEnded, nil
}

// AppendColumns ingests one task's raw 'V'-record bytes (a
// votelog.TaskBlock's Raw, no magic and no 'T' records) through the columnar
// fast path, marking a task boundary after the batch when endTask is set. It
// returns the number of votes applied. Callers splitting a DQMV stream
// themselves (e.g. to report partial progress per task) use this; everyone
// else wants AppendDQMV.
func (s *Session) AppendColumns(raw []byte, endTask bool) (int, error) {
	return s.s.AppendColumns(raw, endTask)
}

// AppendStagedVotes stages a batch of intra-task votes without taking the
// session mutex: validation runs against the immutable population size and
// the batch lands in a per-CPU-sharded staging buffer, so concurrent
// goroutines feeding one session scale instead of serializing. Staged votes
// take effect — and, on a durable engine, become durable — at the next merge
// point: any mutation, estimate read, task boundary, Sync or checkpoint.
// Relative order among staged votes is not preserved (batches may be
// reordered whole), so stage only votes whose order is immaterial, i.e.
// votes within one task.
func (s *Session) AppendStagedVotes(batch []Vote) error {
	vs := make([]votes.Vote, len(batch))
	for i, v := range batch {
		label := votes.Clean
		if v.Dirty {
			label = votes.Dirty
		}
		vs[i] = votes.Vote{Item: v.Item, Worker: v.Worker, Label: label}
	}
	return s.s.AppendStaged(vs)
}

// StagedVotes returns the number of staged votes awaiting merge.
func (s *Session) StagedVotes() int64 { return s.s.StagedVotes() }

// EndTask marks a task boundary.
func (s *Session) EndTask() { s.s.EndTask() }

// Tasks returns the number of completed tasks.
func (s *Session) Tasks() int64 { return s.s.Tasks() }

// Estimates returns all selected estimators' values at the current position.
// Reads of an unchanged session are served lock-free from a version-guarded
// cache (two atomic loads and a struct copy), so estimate polling never
// contends with ingest; only the first read after a mutation recomputes.
func (s *Session) Estimates() Estimates { return fromInternal(s.s.Estimates()) }

// Version returns the session's monotonic mutation counter: it advances on
// every applied mutation (votes, task boundaries, resets, restores) and
// never repeats for distinct states. Poll it to detect change without
// reading estimates (the SSE watch endpoint of dqm-serve is built on it).
func (s *Session) Version() uint64 { return s.s.Version() }

// Notify registers ch to receive a non-blocking signal whenever the
// session's version advances — the event-driven alternative to polling
// Version. ch should be buffered (capacity 1 suffices): the signal is a
// level, not a count, so receivers re-read Version after each wakeup. A
// full channel is skipped, never blocked on; ingest stays allocation-free
// with notifiers registered. Unregister with StopNotify.
func (s *Session) Notify(ch chan<- struct{}) { s.s.AddNotifier(ch) }

// StopNotify unregisters a channel registered with Notify. One stale signal
// may still arrive after StopNotify returns (a concurrent mutation can load
// the notifier set before the swap); receivers must tolerate it.
func (s *Session) StopNotify(ch chan<- struct{}) { s.s.RemoveNotifier(ch) }

// PolicyJSON returns the session's attached quality-gate policy document
// (see Engine.SetSessionPolicy), or nil when none is attached. The returned
// bytes are shared and must not be mutated.
func (s *Session) PolicyJSON() []byte { return s.s.PolicyJSON() }

// Windowed reports whether the session was created with a window config.
func (s *Session) Windowed() bool { return s.s.Windowed() }

// WindowConfig returns the session's normalized window configuration
// (Stride filled in), and false for sessions without one.
func (s *Session) WindowConfig() (WindowConfig, bool) {
	w, ok := s.s.WindowConfig()
	if !ok {
		return WindowConfig{}, false
	}
	return WindowConfig{Size: w.Size, Stride: w.Stride, DecayAlpha: w.DecayAlpha}, true
}

// WindowEstimates evaluates the selected windowed view. It fails on sessions
// without a Config.Window and on views that are not available yet (no
// completed window, or WindowDecayed without DecayAlpha).
func (s *Session) WindowEstimates(kind WindowKind) (WindowEstimates, error) {
	res, err := s.s.WindowEstimates(window.Kind(kind))
	if err != nil {
		return WindowEstimates{}, err
	}
	return WindowEstimates{
		Estimates: fromInternal(res.Estimates),
		Kind:      WindowKind(res.Kind),
		Start:     res.Start,
		End:       res.End,
		Tasks:     res.Tasks,
		Complete:  res.Complete,
	}, nil
}

// MajorityDirty reports the current majority consensus for an item.
func (s *Session) MajorityDirty(item int) bool { return s.s.MajorityDirty(item) }

// NumItems returns the population size N.
func (s *Session) NumItems() int { return s.s.NumItems() }

// NumWorkers returns the number of distinct workers seen.
func (s *Session) NumWorkers() int { return s.s.NumWorkers() }

// TotalVotes returns the number of votes ingested.
func (s *Session) TotalVotes() int64 { return s.s.TotalVotes() }

// Reset clears the vote stream and every estimator, keeping the session
// registered.
func (s *Session) Reset() { s.s.Reset() }

// SwitchCI returns a bootstrap confidence interval for the SWITCH total
// estimate. The session must have been created with Config.TrackConfidence.
func (s *Session) SwitchCI(replicates int, level float64) (ConfidenceInterval, error) {
	ci, err := s.s.SwitchCI(replicates, level)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}, nil
}

// Chao92CI returns a bootstrap confidence interval for the Chao92 total
// estimate.
func (s *Session) Chao92CI(replicates int, level float64) (ConfidenceInterval, error) {
	ci, err := s.s.Chao92CI(replicates, level)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}, nil
}

// Snapshot captures the session's full estimator state as an immutable deep
// copy; the session keeps ingesting afterwards.
func (s *Session) Snapshot() *Snapshot { return &Snapshot{s: s.s.Snapshot()} }

// Restore replaces the session's estimator state with the snapshot's. The
// snapshot stays valid and can seed further restores. The populations must
// match. Durable sessions reject Restore: a snapshot carries estimator state
// without the vote stream that produced it, so the write-ahead journal could
// not represent the rollback.
func (s *Session) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("dqm: restore from nil snapshot")
	}
	return s.s.Restore(snap.s)
}

// Snapshot is a point-in-time deep copy of a session's estimator state.
type Snapshot struct {
	s *engine.Snapshot
}

// Tasks returns the number of completed tasks at the snapshot point.
func (sn *Snapshot) Tasks() int64 { return sn.s.Tasks() }

// TotalVotes returns the number of votes ingested at the snapshot point.
func (sn *Snapshot) TotalVotes() int64 { return sn.s.TotalVotes() }

// NumItems returns the snapshot's population size.
func (sn *Snapshot) NumItems() int { return sn.s.NumItems() }

// TakenAt returns when the snapshot was captured.
func (sn *Snapshot) TakenAt() time.Time { return sn.s.TakenAt() }

// Estimates evaluates the snapshot's estimators.
func (sn *Snapshot) Estimates() Estimates { return fromInternal(sn.s.Estimates()) }
