module dqm

go 1.22
