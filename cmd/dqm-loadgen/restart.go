package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dqm"
)

// restartTasksPerSession fixes the deterministic populate size of the restart
// scenario: every session gets this many tasks of -batch votes before the
// engine is closed and rebooted, so the replayed journal bytes are a pure
// function of (-seed, -sessions, -items, -batch).
const restartTasksPerSession = 150

// runRestart measures the recovery plane end to end: populate -sessions
// durable sessions, close the engine, then cycle timed reboots until the
// -duration budget is spent. Each cycle reports one "boot" op (full boot
// recovery of every session, at -recovery-parallelism) and one
// "first_estimate" op per session (the first estimate read after boot — what
// a dashboard poll pays right after a restart). VotesPerSec is replay
// throughput: journaled votes recovered per second of boot time.
func runRestart(cfg config) (*report, error) {
	if cfg.Target != "" {
		return nil, fmt.Errorf("scenario restart drives the in-process engine; -target is not supported")
	}
	dir := cfg.DataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "dqm-loadgen-restart-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	ecfg := dqm.EngineConfig{RecoveryParallelism: cfg.RecoveryParallelism}

	// Populate (untimed): deterministic per-session vote streams through the
	// ordinary durable ingest path.
	eng, err := dqm.OpenEngine(dir, ecfg)
	if err != nil {
		return nil, err
	}
	if n := eng.NumSessions(); n > 0 {
		eng.Close()
		return nil, fmt.Errorf("scenario restart needs an empty data dir, found %d journaled session(s) in %s", n, dir)
	}
	w := workload{Seed: cfg.Seed, Sessions: cfg.Sessions, Items: cfg.Items, Batch: cfg.Batch}
	for k := 0; k < cfg.Sessions; k++ {
		g := newOpGen(w, k)
		s, err := eng.CreateSession(sessionID(k), cfg.Items, dqm.Defaults())
		if err != nil {
			eng.Close()
			return nil, err
		}
		for t := 0; t < restartTasksPerSession; t++ {
			o := op{Session: k}
			g.fillVotes(&o)
			batch := make([]dqm.Vote, len(o.Votes))
			for i, v := range o.Votes {
				batch[i] = dqm.Vote{Item: v.Item, Worker: v.Worker, Dirty: v.Dirty}
			}
			if err := s.AppendVotes(batch, true); err != nil {
				eng.Close()
				return nil, err
			}
		}
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}

	// Measured restart cycles: at least one, then as many as fit -duration.
	var bootNS, firstEstNS []int64
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	cycles := 0
	for {
		t0 := time.Now()
		eng, err := dqm.OpenEngine(dir, ecfg)
		if err != nil {
			return nil, err
		}
		bootNS = append(bootNS, time.Since(t0).Nanoseconds())
		for k := 0; k < cfg.Sessions; k++ {
			s, ok := eng.Session(sessionID(k))
			if !ok {
				eng.Close()
				return nil, fmt.Errorf("session %s not recovered at boot", sessionID(k))
			}
			t1 := time.Now()
			s.Estimates()
			firstEstNS = append(firstEstNS, time.Since(t1).Nanoseconds())
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		cycles++
		if !time.Now().Before(deadline) {
			break
		}
	}
	elapsed := time.Since(start)

	digest := func(ns []int64) (latencyMS, float64) {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		var total int64
		for _, v := range ns {
			total += v
		}
		return latencyMS{
			P50: pctMS(ns, 0.50),
			P90: pctMS(ns, 0.90),
			P99: pctMS(ns, 0.99),
			Max: float64(ns[len(ns)-1]) / 1e6,
		}, float64(total) / 1e9
	}
	bootLat, bootSeconds := digest(bootNS)
	estLat, _ := digest(firstEstNS)
	votesPerBoot := int64(cfg.Sessions) * restartTasksPerSession * int64(cfg.Batch)

	rep := &report{
		Tool:            "dqm-loadgen",
		SchemaVersion:   1,
		Scenario:        "restart",
		Target:          "inprocess",
		Seed:            cfg.Seed,
		Sessions:        cfg.Sessions,
		Workers:         cfg.Workers,
		DurationSeconds: elapsed.Seconds(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		TotalOps:        int64(cycles) + int64(len(firstEstNS)),
		OpsPerSec:       (float64(cycles) + float64(len(firstEstNS))) / elapsed.Seconds(),
		// Replay throughput: journaled votes recovered per second of boot time.
		VotesPerSec: float64(votesPerBoot*int64(cycles)) / bootSeconds,
		Ops: map[string]opReport{
			"boot": {
				Count:     int64(cycles),
				Votes:     votesPerBoot * int64(cycles),
				OpsPerSec: float64(cycles) / elapsed.Seconds(),
				Latency:   bootLat,
			},
			"first_estimate": {
				Count:     int64(len(firstEstNS)),
				OpsPerSec: float64(len(firstEstNS)) / elapsed.Seconds(),
				Latency:   estLat,
			},
		},
	}
	return rep, nil
}
