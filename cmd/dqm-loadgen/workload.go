package main

import (
	"fmt"

	"dqm/internal/xrand"
)

// opKind is one request type in the workload mix.
type opKind int

const (
	opIngest opKind = iota
	opBinaryIngest
	opPoll
	opWindowPoll
	opCIPoll
	numOpKinds
)

// String names the op for the report JSON.
func (k opKind) String() string {
	switch k {
	case opIngest:
		return "ingest"
	case opBinaryIngest:
		return "binary_ingest"
	case opPoll:
		return "poll"
	case opWindowPoll:
		return "window_poll"
	case opCIPoll:
		return "ci_poll"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// genVote is one deterministic generated vote.
type genVote struct {
	Item   int
	Worker int
	Dirty  bool
}

// op is one generated request: an ingest batch (ending one task) or an
// estimate read against one session.
type op struct {
	Kind    opKind
	Session int
	Votes   []genVote
}

// scenario fixes the op mix. Weights are percentages summing to 100.
type scenario struct {
	Name string
	// Ingest posts JSON vote batches; BinaryIngest posts the same generated
	// batches in the binary DQMV encoding (the columnar fast path). CIPoll
	// requests a bootstrap confidence interval with the estimates — the
	// expensive read the off-mutex CI plane keeps out of ingest's way.
	Ingest, BinaryIngest, Poll, WindowPoll, CIPoll int
	// Windowed creates sessions with a window config (required for
	// WindowPoll weight > 0 and for drift tracking).
	Windowed bool
	// TrackConfidence creates sessions with per-item ledger retention
	// (required for CIPoll weight > 0).
	TrackConfidence bool
	// Drift shifts the generated error rate from baseErrRate to
	// driftErrRate once a worker has generated driftAfterTasks tasks — the
	// windowed-estimation regime where the recent-window estimate diverges
	// from the all-time one.
	Drift bool
	// Gate attaches a quality-gate policy to every session (in-process driver
	// only): a remaining-errors quarantine rule plus a drift-ratio warning,
	// with action transitions delivered to a local webhook receiver through
	// the bounded dispatcher. The report gains a "gate" block
	// (gate_transitions, webhook_deliveries, webhook_dead_letters,
	// gate_stale_sessions) that CI gates on.
	Gate bool
	// Watch additionally runs subscriber goroutines (SSE against an HTTP
	// target, fan-out-hub subscribers in-process) outside the op stream.
	Watch bool
	// Storm marks the broadcast-stress shape: many subscribers (default 2000
	// when -watchers is unset) over few hot sessions, with the report adding
	// delivered events/s, coalesced-skip ratio and delivery staleness
	// percentiles.
	Storm bool
}

// scenarios are the built-in workload shapes. Deterministic: the op stream of
// a scenario is a pure function of (seed, worker index, workload config).
var scenarios = []scenario{
	{Name: "ingest", Ingest: 100},
	{Name: "binary-ingest", BinaryIngest: 100},
	{Name: "binary-mixed", BinaryIngest: 70, Poll: 30},
	{Name: "poll", Ingest: 10, Poll: 90},
	{Name: "mixed", Ingest: 70, Poll: 30},
	{Name: "watch", Ingest: 90, Poll: 10, Watch: true},
	// watch-storm stresses the fan-out hub: pure ingest heat on few sessions
	// while a large subscriber population (default 2000) rides the broadcast
	// plane, measuring delivered events/s and how much coalescing absorbs.
	{Name: "watch-storm", Ingest: 100, Watch: true, Storm: true},
	{Name: "drift", Ingest: 80, Poll: 10, WindowPoll: 10, Windowed: true, Drift: true},
	// drift-gate runs the drift shape with a quality gate on every session:
	// ingest drives event-driven policy re-evaluation, the error-rate jump
	// trips the remaining-errors rule into quarantine, and each transition
	// rides the webhook dispatcher to a local receiver. The report's gate
	// block is the CI proof that alerting fires under drift with zero dead
	// letters and no stale decisions at quiesce.
	{Name: "drift-gate", Ingest: 90, Poll: 10, Windowed: true, Drift: true, Gate: true},
	// poll-dirty separates the two read regimes the incremental estimation
	// plane distinguishes: dirty reads (poll right after ingest → memo
	// refresh) and bootstrap-CI reads, with ingest continuing underneath.
	// The report's per-kind rows give each path its own percentiles.
	{Name: "poll-dirty", Ingest: 45, Poll: 45, CIPoll: 10, TrackConfidence: true},
	// restart is not an op-mix scenario: it populates durable sessions, then
	// cycles timed engine reboots (see runRestart in restart.go).
	{Name: "restart"},
}

// findScenario resolves a scenario by name.
func findScenario(name string) (scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return scenario{}, fmt.Errorf("unknown scenario %q (want one of %v)", name, names)
}

const (
	baseErrRate     = 0.05
	driftErrRate    = 0.30
	driftAfterTasks = 200
	crowdWorkers    = 25
)

// workload parameterizes generation.
type workload struct {
	Scenario scenario
	Seed     uint64
	Sessions int
	Items    int
	Batch    int
}

// opGen deterministically generates one worker's op stream. Two opGens built
// from the same (workload, worker) produce identical streams — the loadgen
// determinism contract, pinned by TestOpGenDeterminism.
type opGen struct {
	w     workload
	rng   *xrand.RNG
	tasks int // ingest tasks generated so far, drives the drift schedule
}

// newOpGen derives the worker's RNG from the workload seed by label, so
// workers can be added without perturbing each other's streams.
func newOpGen(w workload, worker int) *opGen {
	return &opGen{w: w, rng: xrand.New(w.Seed).SplitNamed(fmt.Sprintf("loadgen-worker-%d", worker))}
}

// Next generates the next op.
func (g *opGen) Next() op {
	sc := g.w.Scenario
	o := op{Session: g.rng.IntN(g.w.Sessions)}
	switch p := g.rng.IntN(100); {
	case p < sc.Ingest:
		o.Kind = opIngest
		g.fillVotes(&o)
	case p < sc.Ingest+sc.BinaryIngest:
		o.Kind = opBinaryIngest
		g.fillVotes(&o)
	case p < sc.Ingest+sc.BinaryIngest+sc.Poll:
		o.Kind = opPoll
	case p < sc.Ingest+sc.BinaryIngest+sc.Poll+sc.WindowPoll:
		o.Kind = opWindowPoll
	default:
		o.Kind = opCIPoll
	}
	return o
}

// fillVotes generates one task's vote batch (shared by the JSON and binary
// ingest kinds, so both carry identical vote streams for a given seed).
func (g *opGen) fillVotes(o *op) {
	rate := baseErrRate
	if g.w.Scenario.Drift && g.tasks >= driftAfterTasks {
		rate = driftErrRate
	}
	o.Votes = make([]genVote, g.w.Batch)
	for i := range o.Votes {
		o.Votes[i] = genVote{
			Item:   g.rng.IntN(g.w.Items),
			Worker: g.rng.IntN(crowdWorkers),
			Dirty:  g.rng.Bernoulli(rate),
		}
	}
	g.tasks++
}
