// Command dqm-loadgen is the deterministic workload driver behind the repo's
// performance trajectory: it drives a dqm-serve target (or the in-process
// engine) with a reproducible mix of vote-ingest, estimate-poll,
// windowed-read and watch-subscribe traffic, and writes a machine-readable
// BENCH_loadgen.json (throughput, p50/p99 latency, allocations) that CI
// parses and gates on.
//
// Usage:
//
//	dqm-loadgen [-target http://host:8334] [-scenario mixed] [-sessions 4]
//	            [-workers 8] [-duration 5s] [-items 5000] [-batch 20]
//	            [-rate 0] [-seed 1] [-watchers 0] [-data-dir DIR]
//	            [-recovery-parallelism 0] [-out BENCH_loadgen.json]
//
// Without -target the engine is driven in-process (the engine-layer ceiling;
// add -data-dir for the journaled variant); with -target requests go over
// HTTP to a running dqm-serve. -rate sets an open-loop offered load in ops/s
// across all workers (0 = closed loop: every worker issues its next op as
// soon as the previous one returns).
//
// Scenarios (-scenario): ingest (100% JSON vote ingest), binary-ingest (100%
// ingest in the binary DQMV encoding — the columnar fast path), binary-mixed
// (70/30 binary-ingest/poll), poll (10/90 ingest/estimate-poll), mixed
// (70/30), watch (90/10 plus -watchers SSE subscribers), watch-storm (100%
// ingest on few hot sessions under a large subscriber population — default
// 2000 when -watchers is unset — reporting delivered events/s, the
// coalesced-skip ratio and delivery staleness percentiles), drift (windowed
// sessions; the generated error rate jumps 0.05→0.30 after 200 tasks per
// worker, the regime windowed estimation exists for), drift-gate (the drift
// shape with a quality-gate policy on every session — in-process only; the
// error-rate jump trips the remaining-errors rule into quarantine and every
// action transition is webhook-delivered to a local receiver, with the
// report's gate block recording transitions, deliveries, dead letters and
// decisions still stale at quiesce), poll-dirty (45/45/10
// ingest/poll/CI-poll on confidence-tracked sessions — the report separates
// dirty-read latency from bootstrap-CI latency, with ingest's percentiles
// showing the cost of a CI running concurrently), restart (populate
// -sessions durable sessions, then cycle timed engine reboots measuring boot
// recovery time and first-estimate latency; honors -recovery-parallelism).
//
// Determinism: the op stream — sessions touched, batch contents, op order per
// worker — is a pure function of (-seed, worker index, workload flags).
// Wall-clock effects (how many ops fit in -duration) obviously vary.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dqm"
	"dqm/internal/hub"
	"dqm/internal/policy"
	"dqm/internal/votelog"
)

type config struct {
	Target              string
	Scenario            string
	Sessions            int
	Workers             int
	Duration            time.Duration
	Items               int
	Batch               int
	Rate                float64
	Seed                uint64
	Watchers            int
	DataDir             string
	RecoveryParallelism int
	Out                 string
}

func main() {
	fs := flag.NewFlagSet("dqm-loadgen", flag.ExitOnError)
	var cfg config
	fs.StringVar(&cfg.Target, "target", "", "dqm-serve base URL (empty = drive the engine in-process)")
	fs.StringVar(&cfg.Scenario, "scenario", "mixed", "workload scenario: ingest, binary-ingest, binary-mixed, poll, mixed, watch, watch-storm, drift, drift-gate, poll-dirty or restart")
	fs.IntVar(&cfg.Sessions, "sessions", 4, "concurrent sessions")
	fs.IntVar(&cfg.Workers, "workers", 8, "concurrent load workers")
	fs.DurationVar(&cfg.Duration, "duration", 5*time.Second, "measurement duration")
	fs.IntVar(&cfg.Items, "items", 5000, "population size per session")
	fs.IntVar(&cfg.Batch, "batch", 20, "votes per ingest op (one task each)")
	fs.Float64Var(&cfg.Rate, "rate", 0, "offered load in ops/s across all workers (0 = closed loop)")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "workload seed (same seed = same request stream)")
	fs.IntVar(&cfg.Watchers, "watchers", 0, "watch subscribers (watch scenario; 0 = one per session)")
	fs.StringVar(&cfg.DataDir, "data-dir", "", "journal the in-process engine under this directory")
	fs.IntVar(&cfg.RecoveryParallelism, "recovery-parallelism", 0, "boot-recovery worker count for the restart scenario (0 = GOMAXPROCS, 1 = serial)")
	fs.StringVar(&cfg.Out, "out", "BENCH_loadgen.json", "report output path (empty = stdout summary only)")
	fs.Parse(os.Args[1:])

	rep, err := run(cfg)
	if err != nil {
		log.Fatalf("dqm-loadgen: %v", err)
	}
	if cfg.Out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("dqm-loadgen: encode report: %v", err)
		}
		if err := os.WriteFile(cfg.Out, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("dqm-loadgen: %v", err)
		}
		log.Printf("report written to %s", cfg.Out)
	}
	log.Print(rep.summary())
}

// report is the BENCH_loadgen.json schema (versioned; cmd/dqm-benchdiff
// parses it).
type report struct {
	Tool            string  `json:"tool"`
	SchemaVersion   int     `json:"schema_version"`
	Scenario        string  `json:"scenario"`
	Target          string  `json:"target"`
	Seed            uint64  `json:"seed"`
	Sessions        int     `json:"sessions"`
	Workers         int     `json:"workers"`
	DurationSeconds float64 `json:"duration_seconds"`
	RateLimit       float64 `json:"rate_limit_ops_per_sec,omitempty"`
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`

	TotalOps      int64   `json:"total_ops"`
	TotalErrors   int64   `json:"total_errors"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	VotesPerSec   float64 `json:"votes_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	AllocKiBPerOp float64 `json:"alloc_kib_per_op"`
	WatchEvents   int64   `json:"watch_events,omitempty"`
	WatchSubs     int     `json:"watch_subscribers,omitempty"`
	// Watch delivery detail (watch/watch-storm scenarios): aggregate
	// delivered events/s across subscribers, versions coalesced away (a
	// subscriber skipping to the latest), the skipped/(skipped+delivered)
	// ratio, and delivery staleness — the age of the newest ingest ack when
	// the event announcing it arrived (identical definition in-process and
	// over HTTP).
	WatchEventsPerSec float64    `json:"watch_events_per_sec,omitempty"`
	WatchSkipped      int64      `json:"watch_skipped,omitempty"`
	WatchSkipRatio    float64    `json:"watch_skip_ratio,omitempty"`
	WatchLatency      *latencyMS `json:"watch_latency_ms,omitempty"`

	// Gate is the quality-gate tally (drift-gate scenario): action
	// transitions observed, webhook deliveries and dead letters, and how many
	// sessions still had a stale cached decision after the post-run quiesce.
	// cmd/dqm-benchdiff gates on these.
	Gate *gateReport `json:"gate,omitempty"`

	Ops map[string]opReport `json:"ops"`
}

// gateReport is the gate block of the report (drift-gate scenario).
type gateReport struct {
	Transitions        int64 `json:"gate_transitions"`
	WebhookDeliveries  int64 `json:"webhook_deliveries"`
	WebhookDeadLetters int64 `json:"webhook_dead_letters"`
	StaleSessions      int64 `json:"gate_stale_sessions"`
}

// opReport aggregates one op kind.
type opReport struct {
	Count     int64     `json:"count"`
	Errors    int64     `json:"errors"`
	Votes     int64     `json:"votes,omitempty"`
	OpsPerSec float64   `json:"ops_per_sec"`
	Latency   latencyMS `json:"latency_ms"`
}

// latencyMS is a latency digest in milliseconds.
type latencyMS struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// summary renders the one-line human digest logged after a run.
func (r *report) summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s target=%s: %d ops (%.0f ops/s, %.0f votes/s, %d errors, %.1f allocs/op)",
		r.Scenario, r.Target, r.TotalOps, r.OpsPerSec, r.VotesPerSec, r.TotalErrors, r.AllocsPerOp)
	kinds := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		o := r.Ops[k]
		fmt.Fprintf(&b, "\n  %-12s %8d ops  p50=%.3fms p99=%.3fms max=%.3fms",
			k, o.Count, o.Latency.P50, o.Latency.P99, o.Latency.Max)
	}
	if r.Gate != nil {
		fmt.Fprintf(&b, "\n  %-12s %8d transitions  deliveries=%d dead_letters=%d stale=%d",
			"gate", r.Gate.Transitions, r.Gate.WebhookDeliveries, r.Gate.WebhookDeadLetters, r.Gate.StaleSessions)
	}
	if r.WatchSubs > 0 {
		fmt.Fprintf(&b, "\n  %-12s %8d events from %d subscribers", "watch", r.WatchEvents, r.WatchSubs)
		if r.WatchEventsPerSec > 0 {
			fmt.Fprintf(&b, " (%.0f events/s, skip_ratio=%.2f", r.WatchEventsPerSec, r.WatchSkipRatio)
			if r.WatchLatency != nil {
				fmt.Fprintf(&b, ", staleness p50=%.1fms p99=%.1fms", r.WatchLatency.P50, r.WatchLatency.P99)
			}
			b.WriteString(")")
		}
	}
	return b.String()
}

// watchTally aggregates subscriber-side delivery observations across all
// watch goroutines.
type watchTally struct {
	events  atomic.Int64
	skipped atomic.Int64
	mu      sync.Mutex
	lat     []int64 // ns, staleness at delivery
}

// observe records one delivered event: how many versions were coalesced away
// since the subscriber's previous delivery, and the delivery staleness
// (negative = unknown, not recorded).
func (t *watchTally) observe(skipped int64, stalenessNS int64) {
	t.events.Add(1)
	if skipped > 0 {
		t.skipped.Add(skipped)
	}
	if stalenessNS >= 0 {
		t.mu.Lock()
		t.lat = append(t.lat, stalenessNS)
		t.mu.Unlock()
	}
}

// driver abstracts the target: in-process engine or HTTP dqm-serve.
type driver interface {
	// do executes one generated op. ctx bounds the op (an HTTP driver must
	// not block past the run deadline on a stalled target).
	do(ctx context.Context, o op) error
	// watch runs one subscriber against a session until ctx is done,
	// recording every delivered update (and its coalescing skips and
	// staleness) in tally.
	watch(ctx context.Context, session int, tally *watchTally) error
	close() error
}

// workerStats is one worker's private tally (merged after the run, so the
// measured path has no shared state beyond the target itself).
type workerStats struct {
	count   [numOpKinds]int64
	errors  [numOpKinds]int64
	votes   [numOpKinds]int64   // per kind, so JSON and binary ingest report separately
	latency [numOpKinds][]int64 // ns
}

func run(cfg config) (*report, error) {
	sc, err := findScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if cfg.Sessions <= 0 || cfg.Workers <= 0 || cfg.Items <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("sessions, workers, items and batch must be positive")
	}
	if sc.Name == "restart" {
		return runRestart(cfg)
	}
	w := workload{Scenario: sc, Seed: cfg.Seed, Sessions: cfg.Sessions, Items: cfg.Items, Batch: cfg.Batch}

	var d driver
	if cfg.Target != "" {
		d, err = newHTTPDriver(cfg, sc)
	} else {
		d, err = newInprocDriver(cfg, sc)
	}
	if err != nil {
		return nil, err
	}
	defer d.close()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	// Watch subscribers (outside the measured op stream).
	tally := &watchTally{}
	watchers := 0
	var watchWG sync.WaitGroup
	if sc.Watch {
		watchers = cfg.Watchers
		if watchers <= 0 {
			if sc.Storm {
				watchers = 2000
			} else {
				watchers = cfg.Sessions
			}
		}
		for i := 0; i < watchers; i++ {
			watchWG.Add(1)
			go func(i int) {
				defer watchWG.Done()
				_ = d.watch(ctx, i%cfg.Sessions, tally)
			}(i)
		}
	}

	// Open-loop pacing: each worker issues at Rate/Workers ops/s.
	var tickEvery time.Duration
	if cfg.Rate > 0 {
		tickEvery = time.Duration(float64(time.Second) * float64(cfg.Workers) / cfg.Rate)
	}

	stats := make([]workerStats, cfg.Workers)
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < cfg.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			g := newOpGen(w, wi)
			st := &stats[wi]
			var tick *time.Ticker
			if tickEvery > 0 {
				tick = time.NewTicker(tickEvery)
				defer tick.Stop()
			}
			for {
				if tick != nil {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
					}
				} else if ctx.Err() != nil {
					return
				}
				o := g.Next()
				t0 := time.Now()
				err := d.do(ctx, o)
				el := time.Since(t0)
				st.count[o.Kind]++
				st.latency[o.Kind] = append(st.latency[o.Kind], el.Nanoseconds())
				if err != nil {
					if ctx.Err() != nil {
						return // shutdown race, not a workload error
					}
					st.errors[o.Kind]++
				} else if o.Kind == opIngest || o.Kind == opBinaryIngest {
					st.votes[o.Kind] += int64(len(o.Votes))
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	watchWG.Wait()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)

	// Merge.
	rep := &report{
		Tool:            "dqm-loadgen",
		SchemaVersion:   1,
		Scenario:        sc.Name,
		Target:          "inprocess",
		Seed:            cfg.Seed,
		Sessions:        cfg.Sessions,
		Workers:         cfg.Workers,
		DurationSeconds: elapsed.Seconds(),
		RateLimit:       cfg.Rate,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Ops:             make(map[string]opReport),
		WatchEvents:     tally.events.Load(),
		WatchSubs:       watchers,
	}
	if rep.WatchEvents > 0 {
		rep.WatchEventsPerSec = float64(rep.WatchEvents) / elapsed.Seconds()
		rep.WatchSkipped = tally.skipped.Load()
		rep.WatchSkipRatio = float64(rep.WatchSkipped) / float64(rep.WatchSkipped+rep.WatchEvents)
		if len(tally.lat) > 0 {
			sort.Slice(tally.lat, func(i, j int) bool { return tally.lat[i] < tally.lat[j] })
			rep.WatchLatency = &latencyMS{
				P50: pctMS(tally.lat, 0.50),
				P90: pctMS(tally.lat, 0.90),
				P99: pctMS(tally.lat, 0.99),
				Max: float64(tally.lat[len(tally.lat)-1]) / 1e6,
			}
		}
	}
	if cfg.Target != "" {
		rep.Target = cfg.Target
	}
	if sc.Gate {
		// Quiesce the gate plane before reading it: trailing-edge evaluations
		// and in-flight webhook deliveries finish after the last ingest ack.
		rep.Gate = d.(*inprocDriver).gateStats()
	}
	for k := opKind(0); k < numOpKinds; k++ {
		var merged []int64
		var count, errs int64
		for wi := range stats {
			count += stats[wi].count[k]
			errs += stats[wi].errors[k]
			merged = append(merged, stats[wi].latency[k]...)
		}
		if count == 0 {
			continue
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		o := opReport{
			Count:     count,
			Errors:    errs,
			OpsPerSec: float64(count) / elapsed.Seconds(),
			Latency: latencyMS{
				P50: pctMS(merged, 0.50),
				P90: pctMS(merged, 0.90),
				P99: pctMS(merged, 0.99),
				Max: float64(merged[len(merged)-1]) / 1e6,
			},
		}
		for wi := range stats {
			o.Votes += stats[wi].votes[k]
		}
		rep.Ops[k.String()] = o
		rep.TotalOps += count
		rep.TotalErrors += errs
	}
	rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	var totalVotes int64
	for _, k := range []opKind{opIngest, opBinaryIngest} {
		if ing, ok := rep.Ops[k.String()]; ok {
			totalVotes += ing.Votes
		}
	}
	rep.VotesPerSec = float64(totalVotes) / elapsed.Seconds()
	if rep.TotalOps > 0 {
		rep.AllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(rep.TotalOps)
		rep.AllocKiBPerOp = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(rep.TotalOps) / 1024
	}
	return rep, nil
}

// pctMS reads the p-quantile of sorted ns samples in milliseconds.
func pctMS(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

// sessionID names the k-th load session.
func sessionID(k int) string { return fmt.Sprintf("load-%d", k) }

// encodeBinaryBatch renders one generated vote batch as a binary DQMV body
// (one task: leading votes belong to task 0, the boundary lands at stream
// end — the same end_task=true semantics as the JSON ingest op).
func encodeBinaryBatch(vs []genVote) []byte {
	body := make([]byte, 0, 5+4*len(vs))
	body = append(body, votelog.BinaryMagic()...)
	for _, v := range vs {
		body = votelog.AppendBinaryVote(body, int32(v.Item), int32(v.Worker), v.Dirty)
	}
	return body
}

// windowCfg is the window shape windowed scenarios use.
func windowCfg() *dqm.WindowConfig {
	return &dqm.WindowConfig{Size: 50, Stride: 25, DecayAlpha: 0.3}
}

// ciReplicates/ciLevel parameterize the bootstrap CI the ci_poll op requests
// (the serve default of 200 replicates at 95%).
const (
	ciReplicates = 200
	ciLevel      = 0.95
)

// ---- in-process driver ----

type inprocDriver struct {
	eng  *dqm.Engine
	sess []*dqm.Session
	// marks[k] is the UnixNano of session k's latest acknowledged ingest —
	// the reference point for delivery-staleness measurement (the HTTP
	// driver keeps the identical clock, so the two targets report the same
	// quantity).
	marks []atomic.Int64
	// hub is the fan-out plane subscribers ride (built only for watch
	// scenarios), mirroring dqm-serve's wiring over the same engine.
	hub *hub.Hub
	// Gate-scenario plane: one event-driven policy gate per session, a shared
	// bounded webhook dispatcher, and a local HTTP receiver the transition
	// documents are delivered to (the same wiring dqm-serve runs, minus the
	// network between gate and dispatcher).
	gates       []*policy.Gate
	dispatcher  *policy.Dispatcher
	hookLn      net.Listener
	hookSrv     *http.Server
	transitions atomic.Int64
}

// inprocHubSession adapts *dqm.Session to hub.Session for the in-process
// driver (same shape as dqm-serve's adapter).
type inprocHubSession struct {
	*dqm.Session
}

func (h inprocHubSession) Pending() bool { return h.StagedVotes() > 0 }

// gateSource adapts *dqm.Session to policy.Source for the in-process driver
// (the same adapter shape dqm-serve uses: version read before the estimates,
// expensive inputs computed only when the policy references them).
type gateSource struct {
	sess *dqm.Session
}

func (g gateSource) Version() uint64               { return g.sess.Version() }
func (g gateSource) Notify(ch chan<- struct{})     { g.sess.Notify(ch) }
func (g gateSource) StopNotify(ch chan<- struct{}) { g.sess.StopNotify(ch) }

func (g gateSource) Inputs(need policy.Needs) (policy.Inputs, error) {
	in := policy.Inputs{Version: g.sess.Version()}
	est := g.sess.Estimates()
	in.Remaining = est.Remaining()
	in.SwitchTotal = est.Switch.Total
	in.Tasks = g.sess.Tasks()
	in.Votes = g.sess.TotalVotes()
	if need.CI {
		if ci, err := g.sess.SwitchCI(need.CIReplicates, need.CILevel); err == nil {
			in.CIUpper = ci.Hi
			in.HasCI = true
		}
	}
	if need.Drift {
		if we, err := g.sess.WindowEstimates(dqm.WindowDecayed); err == nil {
			in.DriftRatio = policy.DriftRatio(we.Estimates.Remaining(), in.Remaining)
			in.HasDrift = true
		}
	}
	return in, nil
}

// Gate-scenario tuning: the quarantine rule trips once a session's estimated
// remaining errors cross gateRemainingThreshold (the drift schedule's
// 0.05→0.30 jump makes that inevitable within a load run), the drift-ratio
// warning exercises the windowed input path, and gateMinInterval coalesces
// per-batch wakeups so evaluation stays off ingest's critical path.
const (
	gateRemainingThreshold = 50
	gateDriftWarnRatio     = 0.5
	gateMinInterval        = 5 * time.Millisecond
)

// gatePolicy is the per-session policy drift-gate sessions run.
func gatePolicy(hookURL string) *policy.Policy {
	return &policy.Policy{
		Rules: []policy.Rule{
			{Name: "remaining-errors", Metric: policy.MetricRemaining, Op: ">", Value: gateRemainingThreshold, Severity: policy.SeverityCritical},
			{Name: "drifting", Metric: policy.MetricDriftRatio, Op: ">", Value: gateDriftWarnRatio, Severity: policy.SeverityWarning},
		},
		Webhook: &policy.Webhook{URL: hookURL},
	}
}

func newInprocDriver(cfg config, sc scenario) (*inprocDriver, error) {
	var (
		eng *dqm.Engine
		err error
	)
	if cfg.DataDir != "" {
		eng, err = dqm.OpenEngine(cfg.DataDir, dqm.EngineConfig{})
		if err != nil {
			return nil, err
		}
	} else {
		eng = dqm.NewEngine(dqm.EngineConfig{})
	}
	d := &inprocDriver{eng: eng, marks: make([]atomic.Int64, cfg.Sessions)}
	if sc.Watch {
		d.hub = hub.New(hub.Config{
			Resolve: func(id string) (hub.Session, bool) {
				s, ok := eng.Session(id)
				if !ok {
					return nil, false
				}
				return inprocHubSession{s}, true
			},
			Encode: func(hs hub.Session, _ hub.View) ([]byte, uint64, error) {
				s := hs.(inprocHubSession).Session
				v := s.Version()
				b, err := json.Marshal(s.Estimates())
				return b, v, err
			},
		})
	}
	dcfg := dqm.Defaults()
	if sc.Windowed {
		dcfg.Window = windowCfg()
	}
	dcfg.TrackConfidence = sc.TrackConfidence
	for k := 0; k < cfg.Sessions; k++ {
		s, err := eng.CreateSession(sessionID(k), cfg.Items, dcfg)
		if err != nil {
			eng.Close()
			return nil, err
		}
		d.sess = append(d.sess, s)
	}
	if sc.Gate {
		if err := d.attachGates(); err != nil {
			d.close()
			return nil, err
		}
	}
	return d, nil
}

// attachGates stands up the gate plane: a loopback webhook receiver, the
// shared dispatcher, and one event-driven gate per session. Transitions are
// counted here and enqueued for delivery, so the report can prove both that
// alerting fired and that every firing made it out of the process.
func (d *inprocDriver) attachGates() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("gate webhook receiver: %w", err)
	}
	d.hookLn = ln
	d.hookSrv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusNoContent)
	})}
	go d.hookSrv.Serve(ln)
	hookURL := "http://" + ln.Addr().String() + "/gate-hook"

	d.dispatcher = policy.NewDispatcher(policy.DispatcherConfig{})
	p := gatePolicy(hookURL)
	if err := p.Validate(); err != nil {
		return fmt.Errorf("gate policy: %w", err)
	}
	for i, s := range d.sess {
		d.gates = append(d.gates, policy.NewGate(p, gateSource{sess: s}, policy.GateConfig{
			SessionID:   sessionID(i),
			MinInterval: gateMinInterval,
			OnTransition: func(prev, cur policy.Action, dec policy.Decision, body []byte) {
				d.transitions.Add(1)
				// A full queue dead-letters inside Enqueue; every transition
				// therefore ends as exactly one delivery or one dead letter,
				// which is what gateStats waits on.
				d.dispatcher.Enqueue(policy.Delivery{URL: hookURL, Body: body})
			},
		}))
	}
	return nil
}

// gateStats quiesces the gate plane and tallies it for the report: wait for
// every gate's cached decision to catch up with its session (the pump may
// still owe a trailing-edge evaluation) and for the dispatcher to drain the
// deliveries the run enqueued, then count what remains stale.
func (d *inprocDriver) gateStats() *gateReport {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		settled := d.dispatcher.Deliveries()+d.dispatcher.DeadLetters() >= d.transitions.Load()
		for _, g := range d.gates {
			if g.Stale() {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := &gateReport{
		Transitions:        d.transitions.Load(),
		WebhookDeliveries:  d.dispatcher.Deliveries(),
		WebhookDeadLetters: d.dispatcher.DeadLetters(),
	}
	for _, g := range d.gates {
		if g.Stale() {
			rep.StaleSessions++
		}
	}
	return rep
}

func (d *inprocDriver) do(_ context.Context, o op) error {
	s := d.sess[o.Session]
	switch o.Kind {
	case opIngest:
		batch := make([]dqm.Vote, len(o.Votes))
		for i, v := range o.Votes {
			batch[i] = dqm.Vote{Item: v.Item, Worker: v.Worker, Dirty: v.Dirty}
		}
		if err := s.AppendVotes(batch, true); err != nil {
			return err
		}
		d.marks[o.Session].Store(time.Now().UnixNano())
		return nil
	case opBinaryIngest:
		if _, _, err := s.AppendDQMV(encodeBinaryBatch(o.Votes)); err != nil {
			return err
		}
		d.marks[o.Session].Store(time.Now().UnixNano())
		return nil
	case opPoll:
		s.Estimates()
		return nil
	case opWindowPoll:
		_, err := s.WindowEstimates(dqm.WindowCurrent)
		return err
	case opCIPoll:
		_, err := s.SwitchCI(ciReplicates, ciLevel)
		return err
	}
	return fmt.Errorf("unknown op kind %v", o.Kind)
}

// watch rides the fan-out hub — the in-process analogue of an SSE
// subscriber: event-driven delivery of the encoded-once payload, coalescing
// bursts to the latest version at a 10ms floor (the same interval the HTTP
// driver requests).
func (d *inprocDriver) watch(ctx context.Context, session int, tally *watchTally) error {
	sub, ok := d.hub.Subscribe(sessionID(session), hub.ViewAll, 0, watchInterval)
	if !ok {
		return fmt.Errorf("watch: unknown session %d", session)
	}
	defer sub.Close()
	var last uint64
	for {
		ev, ok := sub.Next(ctx)
		if !ok {
			return nil
		}
		if ev.Heartbeat {
			continue
		}
		// One ingest op = one version bump, so the version delta counts
		// updates coalesced away — the same arithmetic the HTTP driver
		// applies to SSE ids.
		var skipped int64
		if last != 0 && ev.Version > last+1 {
			skipped = int64(ev.Version - last - 1)
		}
		staleness := int64(-1)
		if mark := d.marks[session].Load(); mark > 0 {
			staleness = time.Now().UnixNano() - mark
		}
		tally.observe(skipped, staleness)
		last = ev.Version
	}
}

// watchInterval is the per-subscriber coalescing floor both drivers use.
const watchInterval = 10 * time.Millisecond

func (d *inprocDriver) close() error {
	for _, g := range d.gates {
		g.Close()
	}
	if d.dispatcher != nil {
		d.dispatcher.Close()
	}
	if d.hookSrv != nil {
		_ = d.hookSrv.Close()
	}
	return d.eng.Close()
}

// ---- HTTP driver ----

type httpDriver struct {
	base     string
	client   *http.Client
	sessions int
	batchBuf sync.Pool
	// marks mirrors inprocDriver.marks: per-session UnixNano of the latest
	// acknowledged ingest, read by watch subscribers to compute delivery
	// staleness.
	marks []atomic.Int64
}

func newHTTPDriver(cfg config, sc scenario) (*httpDriver, error) {
	if sc.Gate {
		// Gate tallies (transitions, dispatcher counters, staleness) live
		// inside the serving process; over HTTP they are observable only
		// through the metrics endpoint, not a load report.
		return nil, fmt.Errorf("scenario %q drives the gate plane in-process; drop -target", sc.Name)
	}
	d := &httpDriver{
		base: strings.TrimRight(cfg.Target, "/"),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			},
		},
		sessions: cfg.Sessions,
		marks:    make([]atomic.Int64, cfg.Sessions),
	}
	// Setup is bounded separately from the run: creating sessions against a
	// dead target should fail fast, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for k := 0; k < cfg.Sessions; k++ {
		body := map[string]any{"id": sessionID(k), "items": cfg.Items}
		sessCfg := map[string]any{}
		if sc.Windowed {
			w := windowCfg()
			sessCfg["window"] = map[string]any{
				"size": w.Size, "stride": w.Stride, "decay_alpha": w.DecayAlpha,
			}
		}
		if sc.TrackConfidence {
			sessCfg["track_confidence"] = true
		}
		if len(sessCfg) > 0 {
			body["config"] = sessCfg
		}
		status, err := d.postJSON(ctx, "/v1/sessions", body)
		if err != nil {
			return nil, fmt.Errorf("create %s: %w", sessionID(k), err)
		}
		// 409 = session survived a previous run (durable server); reuse it.
		if status != http.StatusCreated && status != http.StatusConflict {
			return nil, fmt.Errorf("create %s: HTTP %d", sessionID(k), status)
		}
	}
	return d, nil
}

// postJSON posts one JSON body and drains the response. ctx bounds the
// request so a stalled target cannot hang the run past its deadline.
func (d *httpDriver) postJSON(ctx context.Context, path string, body any) (int, error) {
	buf, ok := d.batchBuf.Get().(*strings.Builder)
	if !ok {
		buf = &strings.Builder{}
	}
	buf.Reset()
	defer d.batchBuf.Put(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", d.base+path, strings.NewReader(buf.String()))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// postBinary posts one binary DQMV body and drains the response.
func (d *httpDriver) postBinary(ctx context.Context, path string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", d.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", votelog.ContentTypeDQMV)
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (d *httpDriver) get(ctx context.Context, path string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", d.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (d *httpDriver) do(ctx context.Context, o op) error {
	id := sessionID(o.Session)
	switch o.Kind {
	case opIngest:
		votes := make([]map[string]any, len(o.Votes))
		for i, v := range o.Votes {
			votes[i] = map[string]any{"item": v.Item, "worker": v.Worker, "dirty": v.Dirty}
		}
		status, err := d.postJSON(ctx, "/v1/sessions/"+id+"/votes", map[string]any{"votes": votes, "end_task": true})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("ingest: HTTP %d", status)
		}
		d.marks[o.Session].Store(time.Now().UnixNano())
		return nil
	case opBinaryIngest:
		status, err := d.postBinary(ctx, "/v1/sessions/"+id+"/votes", encodeBinaryBatch(o.Votes))
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("binary ingest: HTTP %d", status)
		}
		d.marks[o.Session].Store(time.Now().UnixNano())
		return nil
	case opPoll:
		return d.expectOK(d.get(ctx, "/v1/sessions/"+id+"/estimates"))
	case opWindowPoll:
		return d.expectOK(d.get(ctx, "/v1/sessions/"+id+"/estimates?window=current"))
	case opCIPoll:
		return d.expectOK(d.get(ctx, fmt.Sprintf("/v1/sessions/%s/estimates?ci=%g&replicates=%d", id, ciLevel, ciReplicates)))
	}
	return fmt.Errorf("unknown op kind %v", o.Kind)
}

func (d *httpDriver) expectOK(status int, err error) error {
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("HTTP %d", status)
	}
	return nil
}

// watch subscribes to the SSE stream, reading each frame's `id:` line (the
// session version) to count deliveries and coalesced skips without paying a
// JSON decode per event; staleness comes off the driver's per-session
// last-ingest mark, exactly like the in-process subscriber.
func (d *httpDriver) watch(ctx context.Context, session int, tally *watchTally) error {
	req, err := http.NewRequestWithContext(ctx, "GET",
		d.base+"/v1/sessions/"+sessionID(session)+"/watch?min_interval="+watchInterval.String(), nil)
	if err != nil {
		return err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: HTTP %d", resp.StatusCode)
	}
	var last uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "id: ") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		if err != nil {
			continue
		}
		var skipped int64
		if last != 0 && v > last+1 {
			skipped = int64(v - last - 1)
		}
		staleness := int64(-1)
		if mark := d.marks[session].Load(); mark > 0 {
			staleness = time.Now().UnixNano() - mark
		}
		tally.observe(skipped, staleness)
		last = v
	}
	return nil
}

func (d *httpDriver) close() error {
	d.client.CloseIdleConnections()
	return nil
}
