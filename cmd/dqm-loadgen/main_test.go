package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dqm/internal/votelog"
)

// TestOpGenDeterminism pins the loadgen contract: the op stream is a pure
// function of (seed, worker, workload) — same seed, same stream; different
// seed or worker, different stream.
func TestOpGenDeterminism(t *testing.T) {
	sc, err := findScenario("drift")
	if err != nil {
		t.Fatal(err)
	}
	w := workload{Scenario: sc, Seed: 42, Sessions: 8, Items: 1000, Batch: 10}
	const n = 2000
	gen := func(w workload, worker int) []op {
		g := newOpGen(w, worker)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a, b := gen(w, 0), gen(w, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, worker) produced different op streams")
	}
	if reflect.DeepEqual(a, gen(w, 1)) {
		t.Error("different workers produced identical op streams")
	}
	w2 := w
	w2.Seed = 43
	if reflect.DeepEqual(a, gen(w2, 0)) {
		t.Error("different seeds produced identical op streams")
	}

	// The stream must exercise every op kind of the scenario, stay inside
	// the session/item ranges, and follow the drift schedule.
	var kinds [numOpKinds]int
	tasks := 0
	for _, o := range a {
		kinds[o.Kind]++
		if o.Session < 0 || o.Session >= w.Sessions {
			t.Fatalf("op session %d out of range", o.Session)
		}
		if o.Kind == opIngest {
			tasks++
			for _, v := range o.Votes {
				if v.Item < 0 || v.Item >= w.Items {
					t.Fatalf("vote item %d out of range", v.Item)
				}
			}
		}
	}
	weights := map[opKind]int{
		opIngest: sc.Ingest, opBinaryIngest: sc.BinaryIngest,
		opPoll: sc.Poll, opWindowPoll: sc.WindowPoll,
	}
	for k := opKind(0); k < numOpKinds; k++ {
		if weights[k] > 0 && kinds[k] == 0 {
			t.Errorf("scenario drift generated no %v ops in %d", k, n)
		}
		if weights[k] == 0 && kinds[k] != 0 {
			t.Errorf("scenario drift generated %d unweighted %v ops", kinds[k], k)
		}
	}

	// Dirty rate before the drift point ~5%, after ~30%.
	rate := func(from, to int) float64 {
		g := newOpGen(w, 0)
		dirty, total := 0, 0
		seen := 0
		for seen < to {
			o := g.Next()
			if o.Kind != opIngest {
				continue
			}
			if seen >= from {
				for _, v := range o.Votes {
					total++
					if v.Dirty {
						dirty++
					}
				}
			}
			seen++
		}
		return float64(dirty) / float64(total)
	}
	if early := rate(0, 150); early > 0.12 {
		t.Errorf("pre-drift dirty rate = %.3f, want ~0.05", early)
	}
	if late := rate(driftAfterTasks+10, driftAfterTasks+160); late < 0.2 {
		t.Errorf("post-drift dirty rate = %.3f, want ~0.30", late)
	}
}

// TestRunInProcessWritesReport runs a short closed-loop in-process workload
// and checks the report invariants CI gates on: ops flowed, zero errors,
// throughput fields populated, JSON round-trips.
func TestRunInProcessWritesReport(t *testing.T) {
	rep, err := run(config{
		Scenario: "mixed",
		Sessions: 2,
		Workers:  2,
		Duration: 200 * time.Millisecond,
		Items:    200,
		Batch:    5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no ops executed")
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("%d errors in a clean in-process run:\n%s", rep.TotalErrors, rep.summary())
	}
	if rep.VotesPerSec <= 0 || rep.OpsPerSec <= 0 {
		t.Errorf("throughput not populated: %+v", rep)
	}
	ing, ok := rep.Ops["ingest"]
	if !ok || ing.Votes == 0 || ing.Latency.P50 <= 0 || ing.Latency.Max < ing.Latency.P99 {
		t.Errorf("ingest op report malformed: %+v", ing)
	}
	if rep.Target != "inprocess" || rep.Scenario != "mixed" || rep.SchemaVersion != 1 {
		t.Errorf("report header malformed: %+v", rep)
	}

	// Round-trip through the file format the CI gate parses.
	path := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var back report
	raw, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalOps != rep.TotalOps || back.Ops["ingest"].Votes != ing.Votes {
		t.Error("report did not round-trip")
	}
}

// TestRunWatchAndDriftScenarios smoke-runs the remaining in-process
// scenarios: watch must deliver subscriber events, drift must serve windowed
// reads without errors.
func TestRunWatchAndDriftScenarios(t *testing.T) {
	rep, err := run(config{
		Scenario: "watch", Sessions: 2, Workers: 2, Watchers: 2,
		Duration: 250 * time.Millisecond, Items: 100, Batch: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("watch scenario errors:\n%s", rep.summary())
	}
	if rep.WatchSubs != 2 || rep.WatchEvents == 0 {
		t.Errorf("watch subscribers saw no events: %+v", rep)
	}

	rep, err = run(config{
		Scenario: "drift", Sessions: 2, Workers: 2,
		Duration: 250 * time.Millisecond, Items: 100, Batch: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("drift scenario errors:\n%s", rep.summary())
	}
	if _, ok := rep.Ops["window_poll"]; !ok {
		t.Errorf("drift scenario made no windowed reads: %+v", rep.Ops)
	}
}

// TestRunWatchStormScenario smoke-runs the broadcast-stress shape in-process:
// a subscriber population over few hot sessions must see deliveries through
// the fan-out hub, and the report must carry the storm columns (events/s,
// skip ratio, staleness percentiles).
func TestRunWatchStormScenario(t *testing.T) {
	rep, err := run(config{
		Scenario: "watch-storm", Sessions: 2, Workers: 2, Watchers: 50,
		Duration: 300 * time.Millisecond, Items: 100, Batch: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("watch-storm scenario errors:\n%s", rep.summary())
	}
	if rep.WatchSubs != 50 || rep.WatchEvents == 0 {
		t.Fatalf("watch-storm subscribers saw no events: %+v", rep)
	}
	if rep.WatchEventsPerSec <= 0 {
		t.Errorf("WatchEventsPerSec = %v, want > 0", rep.WatchEventsPerSec)
	}
	if rep.WatchLatency == nil {
		t.Error("report missing watch delivery latency percentiles")
	}
	if rep.WatchSkipRatio < 0 || rep.WatchSkipRatio >= 1 {
		t.Errorf("WatchSkipRatio = %v, want [0,1)", rep.WatchSkipRatio)
	}
	if !strings.Contains(rep.summary(), "events/s") {
		t.Errorf("summary missing storm columns:\n%s", rep.summary())
	}
}

// TestRunDriftGateScenario smoke-runs the gate-alerting shape: every session
// carries a quality-gate policy, the generated drift must trip at least one
// action transition per session, every transition must be webhook-delivered
// (zero dead letters against the loopback receiver), and after quiesce no
// cached decision may lag its session. The gate plane is in-process only, so
// an HTTP target must be refused up front.
func TestRunDriftGateScenario(t *testing.T) {
	rep, err := run(config{
		Scenario: "drift-gate", Sessions: 2, Workers: 2,
		Duration: 400 * time.Millisecond, Items: 500, Batch: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("drift-gate scenario errors:\n%s", rep.summary())
	}
	g := rep.Gate
	if g == nil {
		t.Fatalf("drift-gate report has no gate block: %+v", rep)
	}
	if g.Transitions < 2 {
		t.Errorf("gate transitions = %d, want >= 2 (one per session)", g.Transitions)
	}
	if g.WebhookDeliveries < g.Transitions || g.WebhookDeadLetters != 0 {
		t.Errorf("webhook deliveries = %d, dead letters = %d for %d transitions",
			g.WebhookDeliveries, g.WebhookDeadLetters, g.Transitions)
	}
	if g.StaleSessions != 0 {
		t.Errorf("gate decisions still stale after quiesce: %d", g.StaleSessions)
	}
	if !strings.Contains(rep.summary(), "transitions") {
		t.Errorf("summary missing the gate row:\n%s", rep.summary())
	}

	if _, err := run(config{
		Scenario: "drift-gate", Target: "http://127.0.0.1:1", Sessions: 1, Workers: 1,
		Duration: 50 * time.Millisecond, Items: 10, Batch: 5, Seed: 9,
	}); err == nil {
		t.Error("drift-gate against an HTTP target must be refused")
	}
}

// TestRunPollDirtyScenario smoke-runs the poll-dirty mix: confidence-tracked
// sessions must serve bootstrap-CI reads alongside plain estimate polls with
// zero errors, and the report must split the two read kinds.
func TestRunPollDirtyScenario(t *testing.T) {
	rep, err := run(config{
		Scenario: "poll-dirty", Sessions: 2, Workers: 2,
		Duration: 250 * time.Millisecond, Items: 100, Batch: 5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("poll-dirty scenario errors:\n%s", rep.summary())
	}
	if _, ok := rep.Ops["ci_poll"]; !ok {
		t.Errorf("poll-dirty scenario made no CI reads: %+v", rep.Ops)
	}
	if _, ok := rep.Ops["poll"]; !ok {
		t.Errorf("poll-dirty scenario made no plain polls: %+v", rep.Ops)
	}
}

// TestRunBinaryIngestScenario smoke-runs the binary DQMV ingest path, both
// in-memory and journaled (where binary batches ride the columnar WAL
// record), checking the report carries the binary_ingest op.
func TestRunBinaryIngestScenario(t *testing.T) {
	for _, dataDir := range []string{"", t.TempDir()} {
		rep, err := run(config{
			Scenario: "binary-ingest", Sessions: 2, Workers: 2, DataDir: dataDir,
			Duration: 150 * time.Millisecond, Items: 200, Batch: 5, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalErrors != 0 {
			t.Fatalf("binary-ingest (dataDir=%q) errors:\n%s", dataDir, rep.summary())
		}
		bin, ok := rep.Ops["binary_ingest"]
		if !ok || bin.Votes == 0 {
			t.Fatalf("no binary_ingest ops reported (dataDir=%q): %+v", dataDir, rep.Ops)
		}
		if rep.VotesPerSec <= 0 {
			t.Errorf("votes/s not populated from binary ingest: %+v", rep)
		}
	}
}

// TestRunDurableInProcess exercises the journaled engine path.
func TestRunDurableInProcess(t *testing.T) {
	rep, err := run(config{
		Scenario: "ingest", Sessions: 1, Workers: 1, DataDir: t.TempDir(),
		Duration: 150 * time.Millisecond, Items: 100, Batch: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 || rep.Ops["ingest"].Votes == 0 {
		t.Fatalf("durable ingest run failed:\n%s", rep.summary())
	}
}

// TestHTTPDriver drives the HTTP driver against a stub that speaks just
// enough of the dqm-serve wire protocol, verifying paths and payloads (the
// real server is covered by cmd/dqm-serve's own tests).
func TestHTTPDriver(t *testing.T) {
	var creates, ingests, binaryIngests, polls, windowPolls, ciPolls int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		creates++
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/votes", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == votelog.ContentTypeDQMV {
			body, err := io.ReadAll(r.Body)
			if err != nil || !bytes.HasPrefix(body, votelog.BinaryMagic()) || len(body) <= 5 {
				t.Errorf("bad binary ingest body: %v (%d bytes)", err, len(body))
			}
			binaryIngests++
			w.WriteHeader(http.StatusOK)
			return
		}
		var req struct {
			Votes   []map[string]any `json:"votes"`
			EndTask bool             `json:"end_task"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Votes) == 0 || !req.EndTask {
			t.Errorf("bad ingest body: %v votes=%d", err, len(req.Votes))
		}
		ingests++
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/estimates", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Query().Get("window") == "current":
			windowPolls++
		case r.URL.Query().Get("ci") != "":
			if r.URL.Query().Get("replicates") == "" {
				t.Errorf("ci poll missing replicates: %s", r.URL.RawQuery)
			}
			ciPolls++
		default:
			polls++
		}
		w.WriteHeader(http.StatusOK)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	d, err := newHTTPDriver(config{Target: hs.URL, Sessions: 2, Items: 50, Workers: 1}, scenario{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	if creates != 2 {
		t.Fatalf("creates = %d, want 2", creates)
	}
	ops := []op{
		{Kind: opIngest, Session: 0, Votes: []genVote{{Item: 1, Worker: 2, Dirty: true}}},
		{Kind: opBinaryIngest, Session: 1, Votes: []genVote{{Item: 3, Worker: 4, Dirty: false}}},
		{Kind: opPoll, Session: 1},
		{Kind: opWindowPoll, Session: 0},
		{Kind: opCIPoll, Session: 1},
	}
	for _, o := range ops {
		if err := d.do(context.Background(), o); err != nil {
			t.Fatalf("do(%v): %v", o.Kind, err)
		}
	}
	if ingests != 1 || binaryIngests != 1 || polls != 1 || windowPolls != 1 || ciPolls != 1 {
		t.Errorf("stub saw ingests=%d binary=%d polls=%d windowPolls=%d ciPolls=%d",
			ingests, binaryIngests, polls, windowPolls, ciPolls)
	}
}
