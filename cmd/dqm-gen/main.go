// Command dqm-gen synthesizes the paper's evaluation datasets with planted
// ground truth and, optionally, a simulated crowd vote log over the
// verification item space (candidate pairs for the entity-resolution
// datasets, records for the address dataset).
//
// Usage:
//
//	dqm-gen -dataset restaurant -out out/            # records + truth
//	dqm-gen -dataset address -tasks 300 -out out/    # … plus a vote log
//	dqm-gen -dataset synthetic -n 1000 -dirty 100 -tasks 100 -fp 0.01 -fn 0.1 -out out/
//
// The vote log written to <out>/votes.csv feeds straight into cmd/dqm;
// -votes-format jsonl|binary selects the other votelog encodings (binary is
// the compact varint one for large logs, readable by dqm and dqm convert).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/entity"
	"dqm/internal/pipeline"
	"dqm/internal/votelog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqm-gen:", err)
		os.Exit(1)
	}
}

type genFlags struct {
	dataset      string
	out          string
	seed         uint64
	tasks        int
	itemsPerTask int
	fp, fn       float64
	n, dirty     int
	votesFormat  string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dqm-gen", flag.ContinueOnError)
	var g genFlags
	fs.StringVar(&g.dataset, "dataset", "restaurant", "dataset: restaurant, product, address or synthetic")
	fs.StringVar(&g.out, "out", ".", "output directory")
	fs.Uint64Var(&g.seed, "seed", 42, "random seed")
	fs.IntVar(&g.tasks, "tasks", 0, "also simulate a crowd vote log with this many tasks")
	fs.IntVar(&g.itemsPerTask, "items-per-task", 10, "items per crowd task")
	fs.Float64Var(&g.fp, "fp", -1, "worker false-positive rate (default: dataset profile)")
	fs.Float64Var(&g.fn, "fn", -1, "worker false-negative rate (default: dataset profile)")
	fs.IntVar(&g.n, "n", 1000, "synthetic: population size")
	fs.IntVar(&g.dirty, "dirty", 100, "synthetic: number of dirty items")
	fs.StringVar(&g.votesFormat, "votes-format", "csv", "vote log encoding: csv, jsonl or binary (compact, for large logs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch g.votesFormat {
	case "csv", "jsonl", "binary":
	default:
		return fmt.Errorf("unknown -votes-format %q (want csv, jsonl or binary)", g.votesFormat)
	}
	if err := os.MkdirAll(g.out, 0o755); err != nil {
		return err
	}

	switch g.dataset {
	case "restaurant":
		return genRestaurant(g, out)
	case "product":
		return genProduct(g, out)
	case "address":
		return genAddress(g, out)
	case "synthetic":
		return genSynthetic(g, out)
	default:
		return fmt.Errorf("unknown dataset %q", g.dataset)
	}
}

func genRestaurant(g genFlags, out io.Writer) error {
	data := dataset.GenerateRestaurants(dataset.RestaurantConfig{Seed: g.seed})
	rows := [][]string{{"id", "name", "address", "city", "category"}}
	for _, r := range data.Records {
		rows = append(rows, []string{strconv.Itoa(r.ID), r.Name, r.Address, r.City, r.Category})
	}
	if err := writeCSVFile(filepath.Join(g.out, "records.csv"), rows); err != nil {
		return err
	}
	cands := pipeline.RestaurantCandidates(data, 0.5, 0.9)
	fmt.Fprintf(out, "restaurant: %d records, %d duplicate pairs; window kept %d candidates (%d true dups, %d missed below, %d auto-dirty)\n",
		len(data.Records), len(data.DuplicatePairs), len(cands.Pairs),
		cands.Truth.NumDirty(), cands.MissedBelow, cands.AutoDirty)
	if err := writeCandidates(g.out, cands); err != nil {
		return err
	}
	profile := crowd.Profile{FPRate: 0.05, FNRate: 0.25, Jitter: 0.25}
	return maybeVotes(g, out, cands.Population("restaurant"), profile)
}

func genProduct(g genFlags, out io.Writer) error {
	data := dataset.GenerateProducts(dataset.ProductConfig{Seed: g.seed})
	rows := [][]string{{"retailer", "id", "name", "vendor", "price"}}
	for _, side := range [][]dataset.Product{data.Amazon, data.Google} {
		for _, p := range side {
			rows = append(rows, []string{p.Retailer.String(), strconv.Itoa(p.ID), p.Name, p.Vendor,
				strconv.FormatFloat(p.Price, 'f', 2, 64)})
		}
	}
	if err := writeCSVFile(filepath.Join(g.out, "records.csv"), rows); err != nil {
		return err
	}
	cands := pipeline.ProductCandidates(data, 0.4, 0.7)
	fmt.Fprintf(out, "product: %d+%d records, %d matches; window kept %d candidates (%d true dups, %d missed, %d auto-dirty)\n",
		len(data.Amazon), len(data.Google), len(data.MatchPairs), len(cands.Pairs),
		cands.Truth.NumDirty(), cands.MissedBelow, cands.AutoDirty)
	if err := writeCandidates(g.out, cands); err != nil {
		return err
	}
	profile := crowd.Profile{FPRate: 0.004, FNRate: 0.45, Jitter: 0.25}
	return maybeVotes(g, out, cands.Population("product"), profile)
}

func genAddress(g genFlags, out io.Writer) error {
	data := dataset.GenerateAddresses(dataset.AddressConfig{Seed: g.seed})
	rows := [][]string{{"id", "address", "kind"}}
	for i, a := range data.Records {
		rows = append(rows, []string{strconv.Itoa(i), a.String(), a.Kind.String()})
	}
	if err := writeCSVFile(filepath.Join(g.out, "records.csv"), rows); err != nil {
		return err
	}
	if err := writeTruth(g.out, data.Truth); err != nil {
		return err
	}
	fmt.Fprintf(out, "address: %d records, %d malformed\n", len(data.Records), data.Truth.NumDirty())
	pop := &dataset.Population{Truth: data.Truth, Describe: "address records"}
	profile := crowd.Profile{FPRate: 0.04, FNRate: 0.3, Jitter: 0.25}
	return maybeVotes(g, out, pop, profile)
}

func genSynthetic(g genFlags, out io.Writer) error {
	pop := dataset.NewPlantedPopulation(g.n, g.dirty, g.seed, "synthetic")
	if err := writeTruth(g.out, pop.Truth); err != nil {
		return err
	}
	fmt.Fprintf(out, "synthetic: %d items, %d dirty\n", pop.N(), pop.NumDirty())
	return maybeVotes(g, out, pop, crowd.Profile{FPRate: 0.01, FNRate: 0.1})
}

// maybeVotes simulates the crowd when -tasks is set and writes the vote log.
func maybeVotes(g genFlags, out io.Writer, pop *dataset.Population, profile crowd.Profile) error {
	if g.tasks <= 0 {
		return nil
	}
	if g.fp >= 0 {
		profile.FPRate = g.fp
	}
	if g.fn >= 0 {
		profile.FNRate = g.fn
	}
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      profile,
		ItemsPerTask: g.itemsPerTask,
		Seed:         g.seed,
	})
	entries := votelog.FromTasks(sim.Tasks(g.tasks))
	ext := map[string]string{"csv": "csv", "jsonl": "jsonl", "binary": "bin"}[g.votesFormat]
	path := filepath.Join(g.out, "votes."+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := votelog.Write(f, g.votesFormat, entries); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d votes over %d tasks to %s (fp=%.3f fn=%.3f)\n",
		len(entries), g.tasks, path, profile.FPRate, profile.FNRate)
	return nil
}

// writeCandidates writes the candidate pair list and its ground truth.
func writeCandidates(dir string, c *pipeline.CandidateSpace) error {
	rows := [][]string{{"item", "recordA", "recordB", "dup"}}
	for i, p := range c.Pairs {
		rows = append(rows, []string{
			strconv.Itoa(i), strconv.Itoa(p.A), strconv.Itoa(p.B),
			strconv.FormatBool(c.Truth.IsDirty(i)),
		})
	}
	return writeCSVFile(filepath.Join(dir, "candidates.csv"), rows)
}

func writeTruth(dir string, truth *dataset.GroundTruth) error {
	rows := [][]string{{"item", "dirty"}}
	for i := 0; i < truth.N(); i++ {
		rows = append(rows, []string{strconv.Itoa(i), strconv.FormatBool(truth.IsDirty(i))})
	}
	return writeCSVFile(filepath.Join(dir, "truth.csv"), rows)
}

func writeCSVFile(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				if _, err := io.WriteString(f, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(f, csvEscape(cell)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(f, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	needsQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			needsQuote = true
		}
	}
	if !needsQuote {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}

var _ = entity.Pair{} // candidate pairs surface entity ids in candidates.csv
