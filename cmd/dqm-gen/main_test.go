package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dqm/internal/votelog"
)

func TestGenAddressWithVotes(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-dataset", "address", "-out", dir, "-tasks", "20", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"records.csv", "truth.csv", "votes.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
	}
	records, err := os.ReadFile(filepath.Join(dir, "records.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(records)), "\n")
	if len(lines) != 1001 { // header + 1000 records
		t.Fatalf("records.csv has %d lines", len(lines))
	}
	if !strings.Contains(sb.String(), "90 malformed") {
		t.Fatalf("summary missing:\n%s", sb.String())
	}
}

func TestGenSynthetic(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-dataset", "synthetic", "-out", dir, "-n", "50", "-dirty", "5",
		"-tasks", "10", "-fp", "0.02", "-fn", "0.2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := os.ReadFile(filepath.Join(dir, "votes.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(votes), "task,item,worker,label\n") {
		t.Fatalf("votes.csv header wrong:\n%.80s", votes)
	}
	if !strings.Contains(sb.String(), "fp=0.020 fn=0.200") {
		t.Fatalf("rate overrides not applied:\n%s", sb.String())
	}
}

func TestGenRestaurantCandidates(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-dataset", "restaurant", "-out", dir, "-seed", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	cands, err := os.ReadFile(filepath.Join(dir, "candidates.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cands), "item,recordA,recordB,dup\n") {
		t.Fatalf("candidates header wrong:\n%.80s", cands)
	}
	if !strings.Contains(sb.String(), "858 records, 106 duplicate pairs") {
		t.Fatalf("summary missing:\n%s", sb.String())
	}
}

func TestGenUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "bogus", "-out", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"has,comma":  `"has,comma"`,
		`has"quote`:  `"has""quote"`,
		"has\nbreak": "\"has\nbreak\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Fatalf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenProductCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("full product pipeline in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-dataset", "product", "-out", dir, "-seed", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "candidates.csv")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2336+1363 records, 607 matches") {
		t.Fatalf("summary missing:\n%s", sb.String())
	}
}

// TestGenSyntheticBinaryVotes: -votes-format binary writes votes.bin,
// readable by the votelog binary decoder with the same content a CSV run
// would produce.
func TestGenSyntheticBinaryVotes(t *testing.T) {
	binDir, csvDir := t.TempDir(), t.TempDir()
	var sb strings.Builder
	args := []string{"-dataset", "synthetic", "-n", "200", "-dirty", "30", "-tasks", "40", "-seed", "7"}
	if err := run(append(args, "-out", binDir, "-votes-format", "binary"), &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-out", csvDir), &sb); err != nil {
		t.Fatal(err)
	}
	bf, err := os.Open(filepath.Join(binDir, "votes.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	binEntries, err := votelog.ReadBinary(bf)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := os.Open(filepath.Join(csvDir, "votes.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	csvEntries, err := votelog.ReadCSV(cf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(binEntries, csvEntries) {
		t.Fatalf("binary log (%d entries) differs from csv log (%d entries)", len(binEntries), len(csvEntries))
	}
}

func TestGenRejectsBadVotesFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dataset", "synthetic", "-votes-format", "xml", "-out", t.TempDir()}, &sb); err == nil {
		t.Fatal("bad votes-format accepted")
	}
}
