package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// failingWriter streams normally until `failAfter` bytes of SSE body have
// been written, then fails every write — the shape of a peer whose
// connection died mid-stream.
type failingWriter struct {
	header  http.Header
	written int
	limit   int
	flushes int
}

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *failingWriter) WriteHeader(int) {}

func (w *failingWriter) Write(b []byte) (int, error) {
	if w.written >= w.limit {
		return 0, errors.New("broken pipe")
	}
	w.written += len(b)
	return len(b), nil
}

func (w *failingWriter) Flush() { w.flushes++ }

// TestWatchTerminatesOnWriteError: a failed SSE write must end the stream
// immediately instead of spinning until context teardown (the old handler
// discarded Fprintf/Flush errors).
func TestWatchTerminatesOnWriteError(t *testing.T) {
	srv := mustServerT(t, serverConfig{WatchMinInterval: 5 * time.Millisecond})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "w", "items": 10}, http.StatusCreated)
	ingestTasks(t, srv, "w", 10, 0, 1)

	// Fail on the very first event write. The request context stays open for
	// 10s: only the write-error check can end the handler promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/sessions/w/watch", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(&failingWriter{limit: 0}, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not terminate on write error")
	}

	// Ingest keeps mutating while a second dead-peer stream is up: the
	// handler must exit after the first failed write even though events keep
	// being published.
	go func() {
		for i := 1; i < 40; i++ {
			ingestTasks(t, srv, "w", 10, i, i+1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	done2 := make(chan struct{})
	req2 := httptest.NewRequest("GET", "/v1/sessions/w/watch?cursor=1000", nil).WithContext(ctx)
	go func() {
		defer close(done2)
		srv.ServeHTTP(&failingWriter{limit: 0}, req2)
	}()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not terminate on write error under active ingest")
	}
}

// TestEstimatesETagConditionalReads: estimate GETs carry ETag:"<version>",
// If-None-Match on the current version answers 304 from the version check
// alone, and any mutation invalidates the tag.
func TestEstimatesETagConditionalReads(t *testing.T) {
	srv := mustServerT(t, serverConfig{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "e", "items": 20,
		"config": map[string]any{"window": map[string]any{"size": 2}},
	}, http.StatusCreated)
	ingestTasks(t, srv, "e", 20, 0, 4)

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	resp := get("/v1/sessions/e/estimates", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"4"` {
		t.Fatalf("ETag = %q, want %q", etag, `"4"`)
	}

	for _, inm := range []string{etag, `W/"4"`, `"9", "4"`, "*"} {
		if resp := get("/v1/sessions/e/estimates", inm); resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q = %d, want 304", inm, resp.StatusCode)
		}
	}
	if resp := get("/v1/sessions/e/estimates", `"3"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match = %d, want 200", resp.StatusCode)
	}

	// Windowed reads share the version tag.
	resp = get("/v1/sessions/e/estimates?window=last", "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"4"` {
		t.Fatalf("windowed GET = %d ETag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	if resp := get("/v1/sessions/e/estimates?window=last", `"4"`); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("windowed If-None-Match = %d, want 304", resp.StatusCode)
	}

	// Mutation invalidates: the same tag now gets a fresh 200 with a new tag.
	ingestTasks(t, srv, "e", 20, 4, 5)
	resp = get("/v1/sessions/e/estimates", `"4"`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"5"` {
		t.Fatalf("post-mutation = %d ETag %q, want 200 %q", resp.StatusCode, resp.Header.Get("ETag"), `"5"`)
	}

	// The conditional plane is exact about content: a 200 after 304s still
	// decodes to the same payload shape (cached bytes, not a re-encode).
	out := do(t, srv, "GET", "/v1/sessions/e/estimates", nil, http.StatusOK)
	if out["version"].(float64) != 5 {
		t.Fatalf("version = %v, want 5", out["version"])
	}
}

// TestWatchLastEventIDResume: the standard SSE reconnect header resumes the
// stream exactly like ?cursor= — a stale id re-delivers the latest version,
// a current id stays silent.
func TestWatchLastEventIDResume(t *testing.T) {
	srv := mustServerT(t, serverConfig{WatchMinInterval: 5 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "r", "items": 10}, http.StatusCreated)
	ingestTasks(t, srv, "r", 10, 0, 3)

	stream := func(lastEventID string) (<-chan sseEvent, func()) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		req, err := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/sessions/r/watch", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Last-Event-ID", lastEventID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		events := make(chan sseEvent, 8)
		go func() {
			defer close(events)
			var ev sseEvent
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "id: "):
					ev.id = strings.TrimPrefix(line, "id: ")
				case strings.HasPrefix(line, "data: "):
					ev.data = map[string]any{"raw": strings.TrimPrefix(line, "data: ")}
				case line == "":
					if ev.data != nil {
						events <- ev
					}
					ev = sseEvent{}
				}
			}
		}()
		return events, func() { cancel(); resp.Body.Close() }
	}

	behind, stopBehind := stream("1")
	defer stopBehind()
	select {
	case ev := <-behind:
		if ev.id != "3" {
			t.Fatalf("resume event id = %q, want 3", ev.id)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Last-Event-ID resume never re-delivered")
	}

	current, stopCurrent := stream("3")
	defer stopCurrent()
	select {
	case ev := <-current:
		t.Fatalf("caught-up Last-Event-ID stream got %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestWatchEndsOnEvictRevive: on a durable engine, LRU eviction must end the
// stream (the hub drops the session) — and the session must still revive
// from its journal for subsequent reads, on which a NEW stream works.
func TestWatchEndsOnEvictRevive(t *testing.T) {
	srv := mustServerT(t, serverConfig{
		DataDir:          t.TempDir(),
		MaxSessions:      1,
		WatchMinInterval: 5 * time.Millisecond,
	})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "a", "items": 10}, http.StatusCreated)
	ingestTasks(t, srv, "a", 10, 0, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, stop := watchStream(t, ctx, hs.URL, "/v1/sessions/a/watch")
	defer stop()
	select {
	case <-events:
	case <-ctx.Done():
		t.Fatal("no initial event")
	}

	// Creating "b" evicts "a" (MaxSessions 1): the stream must END, not go
	// silently stale against the detached object.
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "b", "items": 10}, http.StatusCreated)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-events:
			if !open {
				goto ended
			}
		case <-deadline:
			t.Fatal("stream did not end after eviction")
		}
	}
ended:
	// The evicted session revives from its journal with its state intact
	// (replay renumbers the mutation version; the data is what must match)...
	info := do(t, srv, "GET", "/v1/sessions/a", nil, http.StatusOK)
	if info["tasks"].(float64) != 2 || info["votes"].(float64) != 8 {
		t.Fatalf("revived session = tasks %v votes %v, want 2/8", info["tasks"], info["votes"])
	}
	revived := uint64(info["version"].(float64))
	// ...and a fresh watch binds to the revived incarnation and sees new
	// mutations.
	events2, stop2 := watchStream(t, ctx, hs.URL,
		fmt.Sprintf("/v1/sessions/a/watch?cursor=%d", revived))
	defer stop2()
	ingestTasks(t, srv, "a", 10, 2, 3)
	select {
	case ev := <-events2:
		if v := uint64(ev.data["version"].(float64)); v <= revived {
			t.Fatalf("post-revival event version = %d, want > %d", v, revived)
		}
	case <-ctx.Done():
		t.Fatal("revived session stream never delivered")
	}
}

// TestWatchEncodeErrorMetricRegistered: the encode-failure counter is part
// of the scrape surface even while zero (dashboards can alert on it).
func TestWatchEncodeErrorMetricRegistered(t *testing.T) {
	srv := mustServerT(t, serverConfig{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "dqm_http_watch_encode_errors_total 0") {
		t.Fatalf("/metrics missing dqm_http_watch_encode_errors_total:\n%s", body)
	}
	for _, name := range []string{
		"dqm_hub_events_total", "dqm_hub_dropped_total",
		"dqm_hub_encodes_total", "dqm_hub_subscribers",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}
