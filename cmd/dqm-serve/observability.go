// Observability plane of dqm-serve: the /metrics endpoint (Prometheus text
// format), per-route HTTP instrumentation, optional /debug/pprof, and the
// periodic one-line stats log.
//
// Two registries feed one scrape: metrics.Default carries the process-wide
// engine and WAL instruments (dqm_engine_*, dqm_wal_*), and the server's own
// registry carries everything scoped to this server instance — per-route HTTP
// latency/counts, the SSE subscriber gauge, live sessions, uptime.
package main

import (
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"dqm/internal/metrics"
)

// setupObservability registers the server-scoped instruments and, when
// enabled, the /metrics and /debug/pprof endpoints. Called once from
// newServer after the engine exists.
func (s *server) setupObservability() {
	s.started = time.Now()
	s.reg = metrics.NewRegistry()
	s.watchers = s.reg.Gauge("dqm_serve_watch_subscribers",
		"Live SSE watch subscribers.")
	s.inflight = s.reg.Gauge("dqm_http_inflight_requests",
		"HTTP requests currently being served.")
	s.reg.GaugeFunc("dqm_serve_sessions",
		"Sessions live in this server's engine.",
		func() float64 { return float64(s.engine.NumSessions()) })
	s.reg.GaugeFunc("dqm_serve_uptime_seconds",
		"Seconds since this server was created.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.GaugeFunc("dqm_serve_snapshots",
		"Server-side snapshots currently retained across all sessions.",
		func() float64 {
			s.snapMu.Lock()
			n := 0
			for _, list := range s.snaps {
				n += len(list)
			}
			s.snapMu.Unlock()
			return float64(n)
		})

	s.mux.Handle("GET /metrics", metrics.Handler(metrics.Default, s.reg))
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// route registers one instrumented handler: a per-route latency histogram
// (created now, so the hot path only observes) and a requests counter by
// (route, status code), resolved through a lock-free cache after first use.
func (s *server) route(pattern, name string, h http.HandlerFunc) {
	hist := s.reg.Histogram("dqm_http_request_seconds",
		"HTTP request latency by route; for the SSE watch route this is the whole stream lifetime.",
		metrics.DurationBuckets, metrics.Label{Name: "route", Value: name})
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		// Only advertise Flusher when the underlying writer really flushes:
		// the watch handler's streaming-unsupported guard must keep working
		// through the wrapper.
		if _, ok := w.(http.Flusher); ok {
			out = &flushingStatusWriter{sw}
		}
		// Deferred so a panicking handler (net/http recovers it) still
		// settles the inflight gauge and is counted.
		defer func() {
			s.inflight.Dec()
			hist.ObserveSince(start)
			s.requestCounter(name, sw.Code()).Inc()
		}()
		h(out, r)
	})
}

// statusWriter captures the response status for the requests counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// write-deadline and flush support through the instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Code returns the response status (200 when the handler never set one).
func (w *statusWriter) Code() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// flushingStatusWriter adds Flush passthrough for underlying writers that
// support it, so wrapping does not break SSE.
type flushingStatusWriter struct {
	*statusWriter
}

func (w *flushingStatusWriter) Flush() {
	w.ResponseWriter.(http.Flusher).Flush()
}

// requestCounter returns the dqm_http_requests_total{route,code} counter,
// cached in a sync.Map so the per-request cost after the first occurrence of
// a (route, code) pair is one lock-free map load.
func (s *server) requestCounter(route string, code int) *metrics.Counter {
	key := route + ":" + strconv.Itoa(code)
	if c, ok := s.reqCounters.Load(key); ok {
		return c.(*metrics.Counter)
	}
	c := s.reg.Counter("dqm_http_requests_total",
		"HTTP requests served, by route and status code.",
		metrics.Label{Name: "route", Value: route},
		metrics.Label{Name: "code", Value: strconv.Itoa(code)})
	s.reqCounters.Store(key, c)
	return c
}

// statsLogger emits one summary line per interval — the glanceable health
// signal for operators without a scraper: session count, ingest rate since
// the last line, cumulative cache hit ratio, subscribers.
type statsLogger struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// startStatsLogger begins periodic logging; Stop is idempotent.
func (s *server) startStatsLogger(interval time.Duration) *statsLogger {
	sl := &statsLogger{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sl.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		lastVotes, _ := metrics.Default.Value("dqm_engine_votes_total")
		lastPasses, lastSessions, _ := metrics.Default.HistogramStats("dqm_wal_group_commit_sessions")
		lastCIs, lastCISecs, _ := metrics.Default.HistogramStats("dqm_engine_bootstrap_seconds")
		lastFull := estimatePathCounts()
		lastTick := time.Now()
		for {
			select {
			case <-sl.stop:
				return
			case now := <-t.C:
				votes, _ := metrics.Default.Value("dqm_engine_votes_total")
				tasks, _ := metrics.Default.Value("dqm_engine_tasks_total")
				hits, _ := metrics.Default.Value("dqm_engine_estimate_cache_hits_total")
				misses, _ := metrics.Default.Value("dqm_engine_estimate_cache_misses_total")
				hitPct := 100.0
				if hits+misses > 0 {
					hitPct = 100 * hits / (hits + misses)
				}
				rate := (votes - lastVotes) / now.Sub(lastTick).Seconds()
				// Group-commit effectiveness over the interval: fsync passes
				// and mean journals amortized per pass (only meaningful on a
				// durable engine; both stay 0 otherwise).
				passes, sessions, _ := metrics.Default.HistogramStats("dqm_wal_group_commit_sessions")
				meanGC := 0.0
				if d := passes - lastPasses; d > 0 {
					meanGC = (sessions - lastSessions) / float64(d)
				}
				waiters, _ := metrics.Default.Value("dqm_wal_sync_waiters")
				// Bootstrap CIs and full (non-memoized) estimate recomputes
				// over the interval: both should stay near zero on a healthy
				// read-heavy server — the CI runs off the session lock and the
				// dirty-read path refreshes the memo incrementally.
				cis, ciSecs, _ := metrics.Default.HistogramStats("dqm_engine_bootstrap_seconds")
				ciMeanMS := 0.0
				if d := cis - lastCIs; d > 0 {
					ciMeanMS = 1000 * (ciSecs - lastCISecs) / float64(d)
				}
				full := estimatePathCounts()
				log.Printf("stats: sessions=%d votes=%.0f (+%.0f/s) tasks=%.0f cache_hit=%.1f%% watch=%d inflight=%d evictions=%d gc_passes=%d gc_mean=%.1f sync_waiters=%.0f ci=%d ci_mean=%.1fms est_full=%d",
					s.engine.NumSessions(), votes, rate, tasks, hitPct,
					s.watchers.Value(), s.inflight.Value(), s.engine.Evictions(),
					passes-lastPasses, meanGC, waiters,
					cis-lastCIs, ciMeanMS, full-lastFull)
				lastVotes, lastTick = votes, now
				lastPasses, lastSessions = passes, sessions
				lastCIs, lastCISecs = cis, ciSecs
				lastFull = full
			}
		}
	}()
	return sl
}

// estimatePathCounts returns the cumulative count of estimate reads that fell
// off the memo entirely (path="full") — the expensive recompute the
// incremental plane exists to avoid.
func estimatePathCounts() uint64 {
	n, _, _ := metrics.Default.HistogramStats("dqm_engine_estimate_seconds",
		metrics.Label{Name: "path", Value: "full"})
	return n
}

// Stop terminates the logger and waits for the goroutine to exit.
func (sl *statsLogger) Stop() {
	if sl == nil {
		return
	}
	sl.once.Do(func() { close(sl.stop) })
	<-sl.done
}
