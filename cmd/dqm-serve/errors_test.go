package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// errCode issues one request and returns the envelope's code, asserting the
// status and that the body is a well-formed v1 error envelope.
func errCode(t *testing.T, srv http.Handler, method, path, contentType, body string, wantStatus int) string {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, path, rec.Code, wantStatus, rec.Body.String())
	}
	var env struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("%s %s: response is not an error envelope: %v (%s)", method, path, err, rec.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("%s %s: envelope missing code or message: %s", method, path, rec.Body.String())
	}
	return env.Error.Code
}

// TestErrorEnvelopeGolden pins the (status, code) contract of every route's
// failure paths: all error responses carry the v1 envelope, codes are stable
// identifiers clients may branch on, statuses classify coarsely.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxBatch: 10})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "g", "items": 5}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "gw", "items": 5,
		"config": map[string]any{"window": map[string]any{"size": 2, "decay_alpha": 0.5}},
	}, http.StatusCreated)

	validPolicy := `{"rules":[{"name":"r","metric":"remaining","op":">","value":1}]}`
	cases := []struct {
		name       string
		method     string
		path       string
		ct         string
		body       string
		wantStatus int
		wantCode   string
	}{
		// POST /v1/sessions
		{"create bad json", "POST", "/v1/sessions", "", `{`, 400, "invalid_body"},
		{"create unknown field", "POST", "/v1/sessions", "", `{"bogus":1}`, 400, "invalid_body"},
		{"create bad config", "POST", "/v1/sessions", "", `{"id":"x","items":5,"config":{"tie_policy":"coin-toss"}}`, 400, "invalid_argument"},
		{"create zero items", "POST", "/v1/sessions", "", `{"id":"x","items":0}`, 400, "invalid_argument"},
		{"create duplicate", "POST", "/v1/sessions", "", `{"id":"g","items":5}`, 409, "session_exists"},
		// GET /v1/sessions
		{"list bad limit", "GET", "/v1/sessions?limit=nope", "", "", 400, "invalid_argument"},
		{"list negative limit", "GET", "/v1/sessions?limit=-3", "", "", 400, "invalid_argument"},
		// GET/DELETE /v1/sessions/{id}
		{"info missing", "GET", "/v1/sessions/nope", "", "", 404, "session_not_found"},
		{"delete missing", "DELETE", "/v1/sessions/nope", "", "", 404, "session_not_found"},
		// POST votes
		{"votes missing session", "POST", "/v1/sessions/nope/votes", "", `{"votes":[]}`, 404, "session_not_found"},
		{"votes bad json", "POST", "/v1/sessions/g/votes", "", `{`, 400, "invalid_body"},
		{"votes both forms", "POST", "/v1/sessions/g/votes", "", `{"votes":[{"item":1,"worker":0,"dirty":true}],"entries":[{"task":0,"item":1,"worker":0,"dirty":true}]}`, 400, "invalid_batch"},
		{"votes empty batch", "POST", "/v1/sessions/g/votes", "", `{"votes":[]}`, 400, "invalid_batch"},
		{"votes batch too large", "POST", "/v1/sessions/g/votes", "", `{"votes":[` + strings.Repeat(`{"item":1,"worker":0,"dirty":true},`, 10) + `{"item":1,"worker":0,"dirty":true}]}`, 413, "batch_too_large"},
		{"votes out of range", "POST", "/v1/sessions/g/votes", "", `{"votes":[{"item":99,"worker":0,"dirty":true}],"end_task":true}`, 400, "invalid_batch"},
		{"votes bad media type", "POST", "/v1/sessions/g/votes", "text/csv", "a,b", 415, "unsupported_media_type"},
		{"votes malformed media type", "POST", "/v1/sessions/g/votes", ";;nope", "{}", 415, "unsupported_media_type"},
		{"votes bad dqmv", "POST", "/v1/sessions/g/votes", "application/x-dqmv", "not dqmv", 400, "invalid_batch"},
		// GET estimates
		{"estimates missing session", "GET", "/v1/sessions/nope/estimates", "", "", 404, "session_not_found"},
		{"estimates bad window", "GET", "/v1/sessions/g/estimates?window=sideways", "", "", 400, "invalid_argument"},
		{"estimates windowless session", "GET", "/v1/sessions/g/estimates?window=current", "", "", 409, "window_not_ready"},
		{"estimates window before data", "GET", "/v1/sessions/gw/estimates?window=last", "", "", 409, "window_not_ready"},
		{"estimates ci plus window", "GET", "/v1/sessions/gw/estimates?ci=0.95&window=current", "", "", 400, "invalid_argument"},
		{"estimates bad ci", "GET", "/v1/sessions/g/estimates?ci=high", "", "", 400, "invalid_argument"},
		{"estimates bad replicates", "GET", "/v1/sessions/g/estimates?ci=0.95&replicates=many", "", "", 400, "invalid_argument"},
		{"estimates replicates over cap", "GET", "/v1/sessions/g/estimates?ci=0.95&replicates=99999", "", "", 400, "invalid_argument"},
		// GET watch (pre-stream validation failures)
		{"watch missing session", "GET", "/v1/sessions/nope/watch", "", "", 404, "session_not_found"},
		{"watch bad window", "GET", "/v1/sessions/g/watch?window=sideways", "", "", 400, "invalid_argument"},
		{"watch windowless session", "GET", "/v1/sessions/g/watch?window=current", "", "", 409, "window_not_ready"},
		{"watch bad min_interval", "GET", "/v1/sessions/g/watch?min_interval=fast", "", "", 400, "invalid_argument"},
		{"watch bad cursor", "GET", "/v1/sessions/g/watch?cursor=latest", "", "", 400, "invalid_argument"},
		// POST /v1/estimates:batch
		{"batch empty ids", "POST", "/v1/estimates:batch", "", `{"ids":[]}`, 400, "invalid_argument"},
		{"batch bad window", "POST", "/v1/estimates:batch", "", `{"ids":["g"],"window":"sideways"}`, 400, "invalid_argument"},
		{"batch bad json", "POST", "/v1/estimates:batch", "", `{`, 400, "invalid_body"},
		// Snapshots and restore
		{"snapshot missing session", "POST", "/v1/sessions/nope/snapshots", "", "", 404, "session_not_found"},
		{"snapshots list missing session", "GET", "/v1/sessions/nope/snapshots", "", "", 404, "session_not_found"},
		{"restore missing session", "POST", "/v1/sessions/nope/restore", "", `{"snapshot_id":"snap-1"}`, 404, "session_not_found"},
		{"restore bad json", "POST", "/v1/sessions/g/restore", "", `{`, 400, "invalid_body"},
		{"restore unknown snapshot", "POST", "/v1/sessions/g/restore", "", `{"snapshot_id":"snap-404"}`, 404, "snapshot_not_found"},
		// Gate and policy
		{"gate missing session", "GET", "/v1/sessions/nope/gate", "", "", 404, "session_not_found"},
		{"gate no policy", "GET", "/v1/sessions/g/gate", "", "", 404, "policy_not_found"},
		{"policy get missing session", "GET", "/v1/sessions/nope/policy", "", "", 404, "session_not_found"},
		{"policy get none", "GET", "/v1/sessions/g/policy", "", "", 404, "policy_not_found"},
		{"policy put missing session", "PUT", "/v1/sessions/nope/policy", "", validPolicy, 404, "session_not_found"},
		{"policy put bad json", "PUT", "/v1/sessions/g/policy", "", `{`, 400, "invalid_policy"},
		{"policy put no rules", "PUT", "/v1/sessions/g/policy", "", `{"rules":[]}`, 400, "invalid_policy"},
		{"policy put bad metric", "PUT", "/v1/sessions/g/policy", "", `{"rules":[{"name":"r","metric":"vibes","op":">","value":1}]}`, 400, "invalid_policy"},
		{"policy delete missing session", "DELETE", "/v1/sessions/nope/policy", "", "", 404, "session_not_found"},
		{"policy delete none", "DELETE", "/v1/sessions/g/policy", "", "", 404, "policy_not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := errCode(t, srv, tc.method, tc.path, tc.ct, tc.body, tc.wantStatus)
			if code != tc.wantCode {
				t.Fatalf("%s %s: code = %q, want %q", tc.method, tc.path, code, tc.wantCode)
			}
		})
	}
}

// TestErrorEnvelopeBodyTooLarge pins the 413 body_too_large code for an
// oversized JSON body (needs its own server with a tiny limit).
func TestErrorEnvelopeBodyTooLarge(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxBodyBytes: 64})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s", "items": 5}, http.StatusCreated)
	big := `{"votes":[` + strings.Repeat(`{"item":1,"worker":0,"dirty":true},`, 50) + `{"item":1,"worker":0,"dirty":true}]}`
	if code := errCode(t, srv, "POST", "/v1/sessions/s/votes", "", big, 413); code != "body_too_large" {
		t.Fatalf("code = %q, want body_too_large", code)
	}
	if code := errCode(t, srv, "PUT", "/v1/sessions/s/policy", "", big, 413); code != "body_too_large" {
		t.Fatalf("policy code = %q, want body_too_large", code)
	}
}

// TestListSessionsPagination: limit caps the page, cursor resumes after the
// given id, next_cursor appears exactly when the listing is truncated, and
// ids page out in lexicographic order without duplicates or gaps.
func TestListSessionsPagination(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	want := make([]string, 0, 7)
	for _, id := range []string{"c", "a", "e", "b", "g", "d", "f"} {
		do(t, srv, "POST", "/v1/sessions", map[string]any{"id": id, "items": 3}, http.StatusCreated)
		want = append(want, id)
	}

	// Default limit swallows everything: no next_cursor.
	out := do(t, srv, "GET", "/v1/sessions", nil, http.StatusOK)
	if _, ok := out["next_cursor"]; ok {
		t.Fatalf("next_cursor on untruncated listing: %v", out)
	}
	if got := out["sessions"].([]any); len(got) != 7 || got[0] != "a" || got[6] != "g" {
		t.Fatalf("sessions = %v, want a..g sorted", got)
	}

	// Page through with limit=3 and collect.
	var paged []string
	cursor := ""
	for page := 0; ; page++ {
		path := "/v1/sessions?limit=3"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		out := do(t, srv, "GET", path, nil, http.StatusOK)
		ids := out["sessions"].([]any)
		for _, id := range ids {
			paged = append(paged, id.(string))
		}
		nc, truncated := out["next_cursor"].(string)
		if !truncated {
			break
		}
		if nc != ids[len(ids)-1].(string) {
			t.Fatalf("next_cursor %q != last id of page %v", nc, ids)
		}
		cursor = nc
		if page > 5 {
			t.Fatal("pagination did not terminate")
		}
	}
	if strings.Join(paged, "") != "abcdefg" {
		t.Fatalf("paged ids = %v", paged)
	}

	// A cursor whose id was deleted still resumes at the right spot.
	do(t, srv, "DELETE", "/v1/sessions/c", nil, http.StatusNoContent)
	out = do(t, srv, "GET", "/v1/sessions?cursor=c", nil, http.StatusOK)
	if got := out["sessions"].([]any); len(got) != 4 || got[0] != "d" {
		t.Fatalf("post-delete cursor resume = %v, want [d e f g]", got)
	}
}

// TestPartialIngestDetailsRoundTrip: the partial-ingest counters ride
// error.details and agree with a client resuming from them.
func TestPartialIngestDetailsRoundTrip(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "p", "items": 4}, http.StatusCreated)
	body := `{"entries":[
		{"task":0,"item":0,"worker":0,"dirty":true},
		{"task":1,"item":99,"worker":0,"dirty":true}
	]}`
	req := httptest.NewRequest("POST", "/v1/sessions/p/votes", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != codeInvalidBatch {
		t.Fatalf("code = %q", env.Error.Code)
	}
	if got := env.Error.Details["ingested"].(float64); got != 1 {
		t.Fatalf("details.ingested = %v, want 1", got)
	}
	if got := env.Error.Details["tasks_ended"].(float64); got != 1 {
		t.Fatalf("details.tasks_ended = %v, want 1", got)
	}
	// Success responses are unchanged (no envelope).
	out := do(t, srv, "POST", "/v1/sessions/p/votes", map[string]any{
		"votes": []map[string]any{{"item": 1, "worker": 0, "dirty": false}}, "end_task": true,
	}, http.StatusOK)
	if _, ok := out["error"]; ok {
		t.Fatalf("success response carries an error field: %v", out)
	}
	if out["ingested"].(float64) != 1 {
		t.Fatalf("ingest response = %v", out)
	}
}
