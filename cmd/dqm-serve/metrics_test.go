package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape GETs /metrics and returns the exposition body.
func scrape(t *testing.T, srv http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	return rec.Body.String()
}

// TestMetricsEndpointExposition drives real traffic and then validates the
// scrape: every line must be well-formed Prometheus text format, and the
// engine, WAL (on a durable server), HTTP and serve families must be present.
func TestMetricsEndpointExposition(t *testing.T) {
	srv := mustServer(t, serverConfig{DataDir: t.TempDir()})
	defer srv.Close()

	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "m", "items": 50}, http.StatusCreated)
	votes := []map[string]any{}
	for i := 0; i < 10; i++ {
		votes = append(votes, map[string]any{"item": i, "worker": 1, "dirty": i%3 == 0})
	}
	do(t, srv, "POST", "/v1/sessions/m/votes", map[string]any{"votes": votes, "end_task": true}, http.StatusOK)
	do(t, srv, "GET", "/v1/sessions/m/estimates", nil, http.StatusOK)
	do(t, srv, "GET", "/v1/sessions/m/estimates", nil, http.StatusOK)
	do(t, srv, "GET", "/healthz", nil, http.StatusOK)

	body := scrape(t, srv)

	// Families the acceptance criteria name: engine + WAL + HTTP coverage.
	for _, name := range []string{
		"dqm_engine_votes_total",
		"dqm_engine_tasks_total",
		"dqm_engine_estimate_cache_hits_total",
		"dqm_engine_estimate_cache_misses_total",
		"dqm_wal_append_frames_total",
		"dqm_wal_append_seconds_bucket",
		"dqm_wal_fsync_seconds_bucket",
		"dqm_wal_group_commit_sessions_bucket",
		"dqm_wal_sync_waiters",
		"dqm_http_requests_total",
		"dqm_http_request_seconds_bucket",
		"dqm_serve_sessions",
		"dqm_serve_uptime_seconds",
		"dqm_serve_watch_subscribers",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("scrape missing %s", name)
		}
	}
	// Route/code labels from the traffic above.
	for _, series := range []string{
		`dqm_http_requests_total{code="200",route="estimates"} 2`,
		`dqm_http_requests_total{code="201",route="create_session"} 1`,
		`dqm_http_request_seconds_bucket{route="votes",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("scrape missing series %q in:\n%s", series, body)
		}
	}

	// Every non-comment line must be `name{labels} value` with a numeric
	// value — the format a Prometheus scraper will accept.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
		n++
	}
	if n < 30 {
		t.Errorf("suspiciously small scrape: %d series lines", n)
	}
}

// TestHealthzOperationalState pins the satellite fix: healthz must report
// uptime, and on a durable server the data dir and fsync policy.
func TestHealthzOperationalState(t *testing.T) {
	dir := t.TempDir()
	srv := mustServer(t, serverConfig{DataDir: dir, Fsync: 1 /* always */})
	defer srv.Close()
	h := do(t, srv, "GET", "/healthz", nil, http.StatusOK)
	if h["durable"] != true {
		t.Errorf("durable = %v", h["durable"])
	}
	if h["data_dir"] != dir {
		t.Errorf("data_dir = %v, want %v", h["data_dir"], dir)
	}
	if h["fsync"] != "always" {
		t.Errorf("fsync = %v, want always", h["fsync"])
	}
	if _, ok := h["uptime_seconds"].(float64); !ok {
		t.Errorf("uptime_seconds missing or not a number: %v", h["uptime_seconds"])
	}
	if _, ok := h["watch_subscribers"].(float64); !ok {
		t.Errorf("watch_subscribers missing: %v", h["watch_subscribers"])
	}

	// In-memory servers must not advertise a data dir or fsync policy.
	mem := mustServer(t, serverConfig{})
	h = do(t, mem, "GET", "/healthz", nil, http.StatusOK)
	if _, ok := h["data_dir"]; ok {
		t.Errorf("in-memory healthz advertises data_dir: %v", h)
	}
}

// TestMetricsScrapeDuringIngestAndWatch is the -race check the issue asks
// for: concurrent vote ingest, a live SSE watch subscriber, estimate polling
// and /metrics scrapes must not race anywhere in the instrumentation.
func TestMetricsScrapeDuringIngestAndWatch(t *testing.T) {
	srv := mustServer(t, serverConfig{WatchMinInterval: 5 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "race", "items": 100}, http.StatusCreated)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// SSE subscriber for the whole test.
	watchOpen := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(hs.URL + "/v1/sessions/race/watch")
		if err != nil {
			t.Error(err)
			close(watchOpen)
			return
		}
		defer resp.Body.Close()
		close(watchOpen)
		br := bufio.NewReader(resp.Body)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Reads unblock when the test closes client connections below.
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	<-watchOpen

	// Ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"votes":[{"item":%d,"worker":%d,"dirty":%v}],"end_task":true}`, i%100, i%7, i%3 == 0)
			resp, err := http.Post(hs.URL+"/v1/sessions/race/votes", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()

	// Estimate pollers + scrapers.
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/v1/sessions/race/estimates", "/metrics", "/healthz"} {
					resp, err := http.Get(hs.URL + path)
					if err != nil {
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	hs.CloseClientConnections()
	wg.Wait()

	if !strings.Contains(scrape(t, srv), `dqm_http_requests_total{code="200",route="votes"}`) {
		t.Error("no instrumented vote requests recorded")
	}
}

// TestWatchSubscriberGauge: the gauge rises while a stream is open and falls
// back when it disconnects.
func TestWatchSubscriberGauge(t *testing.T) {
	srv := mustServer(t, serverConfig{WatchMinInterval: 5 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "g", "items": 10}, http.StatusCreated)

	resp, err := http.Get(hs.URL + "/v1/sessions/g/watch")
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for srv.watchers.Value() != want {
			if time.Now().After(deadline) {
				t.Fatalf("watch_subscribers = %d, want %d", srv.watchers.Value(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1)
	resp.Body.Close()
	waitFor(0)
}

// TestPprofGated: /debug/pprof/ is 404 by default and served with EnablePprof.
func TestPprofGated(t *testing.T) {
	off := mustServer(t, serverConfig{})
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", rec.Code)
	}
	on := mustServer(t, serverConfig{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", rec.Code)
	}
}

// TestStatsLoggerStops: the periodic stats logger starts with the config knob
// and Close stops it (idempotently, including on servers that never started
// one).
func TestStatsLoggerStops(t *testing.T) {
	srv := mustServer(t, serverConfig{LogStatsInterval: 10 * time.Millisecond})
	if srv.stats == nil {
		t.Fatal("stats logger not started")
	}
	time.Sleep(30 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // double Close must not hang or panic
		t.Fatal(err)
	}
	// And a server without the knob: Close on a nil logger is a no-op.
	if err := mustServer(t, serverConfig{}).Close(); err != nil {
		t.Fatal(err)
	}
}
