package main

import (
	"fmt"
	"net/http"

	"dqm"
)

// The v1 error envelope. Every non-2xx response carries
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// where code is a stable machine-readable identifier (the table below is the
// contract; messages are human-readable and may change), and details carries
// structured context where the route defines some — e.g. partial-ingest
// progress counters. HTTP statuses classify coarsely; clients branch on code.
const (
	codeSessionNotFound      = "session_not_found"
	codeSnapshotNotFound     = "snapshot_not_found"
	codePolicyNotFound       = "policy_not_found"
	codeSessionExists        = "session_exists"
	codeInvalidBody          = "invalid_body"
	codeInvalidArgument      = "invalid_argument"
	codeBodyTooLarge         = "body_too_large"
	codeBatchTooLarge        = "batch_too_large"
	codeUnsupportedMediaType = "unsupported_media_type"
	codeInvalidBatch         = "invalid_batch"
	codeInvalidPolicy        = "invalid_policy"
	codeJournalUnavailable   = "journal_unavailable"
	codeWindowNotReady       = "window_not_ready"
	codeConflict             = "conflict"
	codeInternal             = "internal"
)

type errorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// writeError writes the v1 error envelope without details.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeErrorDetails(w, status, code, nil, format, args...)
}

// writeErrorDetails writes the v1 error envelope with structured details.
func writeErrorDetails(w http.ResponseWriter, status int, code string, details map[string]any, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Details: details,
	}})
}

// ingestCode classifies an ingest failure's error code alongside
// ingestStatus: journal (disk) faults are the server's problem, everything
// else is the request's.
func ingestCode(err error) string {
	if dqm.IsJournalError(err) {
		return codeJournalUnavailable
	}
	return codeInvalidBatch
}
