package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dqm"
	"dqm/internal/votelog"
)

// doRaw issues one request with an explicit body and Content-Type and decodes
// the JSON response (the binary-ingest counterpart of do).
func doRaw(t *testing.T, srv http.Handler, method, path, contentType string, body []byte, wantStatus int) map[string]any {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s (%s) = %d, want %d (body %s)", method, path, contentType, rec.Code, wantStatus, rec.Body.String())
	}
	if rec.Body.Len() == 0 {
		return nil
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad response JSON: %v (%s)", method, path, err, rec.Body.String())
	}
	return out
}

// encodeDQMV renders entries in the binary vote-log format.
func encodeDQMV(t *testing.T, entries []votelog.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := votelog.WriteBinary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestVotesContentTypeDispatch pins the 415 contract: the votes endpoint
// accepts JSON and application/x-dqmv, names both in the error for anything
// else, and rejects a malformed Content-Type header outright.
func TestVotesContentTypeDispatch(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "ct", "items": 5}, http.StatusCreated)

	jsonBody := []byte(`{"votes":[{"item":1,"worker":0,"dirty":true}],"end_task":true}`)
	// Explicit JSON, JSON with parameters, and no header at all are the JSON path.
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", "application/json", jsonBody, http.StatusOK)
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", "application/json; charset=utf-8", jsonBody, http.StatusOK)
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", "", jsonBody, http.StatusOK)

	for _, ct := range []string{"text/csv", "application/octet-stream", "multipart/form-data; boundary=x"} {
		out := doRaw(t, srv, "POST", "/v1/sessions/ct/votes", ct, jsonBody, http.StatusUnsupportedMediaType)
		env, _ := out["error"].(map[string]any)
		if code, _ := env["code"].(string); code != "unsupported_media_type" {
			t.Fatalf("415 code for %q = %q, want unsupported_media_type", ct, code)
		}
		msg, _ := env["message"].(string)
		if !bytes.Contains([]byte(msg), []byte("application/json")) || !bytes.Contains([]byte(msg), []byte(contentTypeDQMV)) {
			t.Fatalf("415 body for %q does not name the accepted encodings: %v", ct, out)
		}
	}
	// A header mime.ParseMediaType cannot parse is also a 415, not a guess.
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", ";;not-a-type", jsonBody, http.StatusUnsupportedMediaType)

	// Binary content type with a non-DQMV body: 400 from the format check.
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", contentTypeDQMV, []byte("not dqmv"), http.StatusBadRequest)
	// Valid magic but no votes: empty batch.
	doRaw(t, srv, "POST", "/v1/sessions/ct/votes", contentTypeDQMV, votelog.BinaryMagic(), http.StatusBadRequest)
	// Unknown session still 404s before touching the body.
	doRaw(t, srv, "POST", "/v1/sessions/nope/votes", contentTypeDQMV, votelog.BinaryMagic(), http.StatusNotFound)
}

// TestDQMVIngestMatchesJSONEstimates is the acceptance check: the same vote
// log ingested as application/x-dqmv and as JSON entries must produce
// byte-identical estimates (same task boundaries, same estimator state).
func TestDQMVIngestMatchesJSONEstimates(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	const n = 40
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "bin", "items": n}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "json", "items": n}, http.StatusCreated)

	var entries []votelog.Entry
	var jsonEntries []map[string]any
	for task := 0; task < 25; task++ {
		for i := 0; i < 8; i++ {
			item := (task*5 + i) % n
			dirty := (task+i)%3 != 0
			entries = append(entries, votelog.Entry{Task: task, Item: item, Worker: task % 6, Dirty: dirty})
			jsonEntries = append(jsonEntries, map[string]any{"task": task, "item": item, "worker": task % 6, "dirty": dirty})
		}
	}

	out := doRaw(t, srv, "POST", "/v1/sessions/bin/votes", contentTypeDQMV, encodeDQMV(t, entries), http.StatusOK)
	if out["ingested"].(float64) != float64(len(entries)) || out["tasks_ended"].(float64) != 25 {
		t.Fatalf("binary ingest = %v", out)
	}
	do(t, srv, "POST", "/v1/sessions/json/votes", map[string]any{"entries": jsonEntries}, http.StatusOK)

	got := do(t, srv, "GET", "/v1/sessions/bin/estimates", nil, http.StatusOK)
	want := do(t, srv, "GET", "/v1/sessions/json/estimates", nil, http.StatusOK)
	// The mutation version is a session-local counter, not estimator state;
	// the two ingest paths are allowed to bump it differently.
	delete(got, "version")
	delete(want, "version")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary-ingest estimates differ from JSON path:\n got %v\nwant %v", got, want)
	}
}

// TestDQMVIngestValidation: the binary path enforces the same request limits
// as JSON — MaxBatch on the decoded vote count, MaxBodyBytes on the wire, and
// population range checks with per-task partial-ingest reporting.
func TestDQMVIngestValidation(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxBatch: 10, MaxBodyBytes: 256})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "v", "items": 5}, http.StatusCreated)

	big := make([]votelog.Entry, 11)
	for i := range big {
		big[i] = votelog.Entry{Task: 0, Item: i % 5, Worker: i, Dirty: true}
	}
	doRaw(t, srv, "POST", "/v1/sessions/v/votes", contentTypeDQMV, encodeDQMV(t, big),
		http.StatusRequestEntityTooLarge)

	huge := make([]votelog.Entry, 200)
	for i := range huge {
		huge[i] = votelog.Entry{Task: 0, Item: i % 5, Worker: i, Dirty: true}
	}
	doRaw(t, srv, "POST", "/v1/sessions/v/votes", contentTypeDQMV, encodeDQMV(t, huge),
		http.StatusRequestEntityTooLarge)

	// Tasks 0 and 1 land; task 2's first vote is out of population, so task 2
	// is atomically rejected and the response reports what applied.
	partial := []votelog.Entry{
		{Task: 0, Item: 1, Worker: 0, Dirty: true},
		{Task: 0, Item: 2, Worker: 1, Dirty: false},
		{Task: 1, Item: 3, Worker: 0, Dirty: true},
		{Task: 2, Item: 4, Worker: 0, Dirty: true}, // item 4 valid, but…
	}
	body := encodeDQMV(t, partial)
	// …rewrite task 2's vote to item 9 (out of range) by re-encoding with a bad
	// item through the columnar builder: append a fresh out-of-range vote.
	body = append(body, votelog.AppendBinaryVote(nil, 9, 0, true)...)
	out := doRaw(t, srv, "POST", "/v1/sessions/v/votes", contentTypeDQMV, body, http.StatusBadRequest)
	env, _ := out["error"].(map[string]any)
	if env == nil {
		t.Fatalf("no error envelope in %v", out)
	}
	if code, _ := env["code"].(string); code != "invalid_batch" {
		t.Fatalf("code = %q, want invalid_batch", code)
	}
	details, _ := env["details"].(map[string]any)
	if got := details["ingested"].(float64); got != 3 {
		t.Fatalf("ingested = %v, want 3 (tasks 0 and 1 applied)", details["ingested"])
	}
	if got := details["tasks_ended"].(float64); got != 2 {
		t.Fatalf("tasks_ended = %v, want 2", details["tasks_ended"])
	}
	est := do(t, srv, "GET", "/v1/sessions/v/estimates", nil, http.StatusOK)
	if got := est["votes"].(float64); got != 3 {
		t.Fatalf("votes after partial binary ingest = %v, want 3", got)
	}
}

// TestDQMVDurableRestartRecovers: binary-ingested votes ride the columnar WAL
// record; a restart must rebuild bit-identical estimates from the journal.
func TestDQMVDurableRestartRecovers(t *testing.T) {
	cfg := serverConfig{DataDir: t.TempDir(), Fsync: dqm.FsyncNever}
	srv := mustServer(t, cfg)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "d", "items": 25}, http.StatusCreated)
	var entries []votelog.Entry
	for task := 0; task < 12; task++ {
		for k := 0; k < 4; k++ {
			entries = append(entries, votelog.Entry{Task: task, Item: (task*5 + k) % 25, Worker: k, Dirty: (task+k)%2 == 0})
		}
	}
	doRaw(t, srv, "POST", "/v1/sessions/d/votes", contentTypeDQMV, encodeDQMV(t, entries), http.StatusOK)
	want := do(t, srv, "GET", "/v1/sessions/d/estimates", nil, http.StatusOK)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	got := do(t, srv2, "GET", "/v1/sessions/d/estimates", nil, http.StatusOK)
	delete(got, "version")
	delete(want, "version")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates after restart differ:\n got %v\nwant %v", got, want)
	}
}
