package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqm"
	"dqm/internal/hub"
)

func mustServerT(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// ingestTasks streams deterministic tasks into a session over HTTP.
func ingestTasks(t *testing.T, srv http.Handler, id string, items, from, to int) {
	t.Helper()
	for task := from; task < to; task++ {
		votes := []map[string]any{}
		for k := 0; k < 4; k++ {
			votes = append(votes, map[string]any{"item": (task*5 + k) % items, "worker": k, "dirty": (task+k)%2 == 0})
		}
		do(t, srv, "POST", "/v1/sessions/"+id+"/votes", map[string]any{"votes": votes, "end_task": true}, http.StatusOK)
	}
}

// TestWindowedEstimatesEndpoint: ?window= serves the three views with span
// metadata; unavailable views and bad kinds fail with useful statuses.
func TestWindowedEstimatesEndpoint(t *testing.T) {
	srv := mustServerT(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "win", "items": 30,
		"config": map[string]any{"window": map[string]any{"size": 5, "stride": 5, "decay_alpha": 0.5}},
	}, http.StatusCreated)

	// Before any completed window: current works, last/decayed 409.
	ingestTasks(t, srv, "win", 30, 0, 3)
	cur := do(t, srv, "GET", "/v1/sessions/win/estimates?window=current", nil, http.StatusOK)
	w := cur["window"].(map[string]any)
	if w["kind"] != "current" || w["end_task"].(float64) != 3 || w["complete"] != false {
		t.Fatalf("current window = %v", w)
	}
	do(t, srv, "GET", "/v1/sessions/win/estimates?window=last", nil, http.StatusConflict)
	do(t, srv, "GET", "/v1/sessions/win/estimates?window=bogus", nil, http.StatusBadRequest)
	do(t, srv, "GET", "/v1/sessions/win/estimates?window=last&ci=0.95", nil, http.StatusBadRequest)

	// After two full windows, last covers [5,10) and decayed is available.
	ingestTasks(t, srv, "win", 30, 3, 10)
	last := do(t, srv, "GET", "/v1/sessions/win/estimates?window=last", nil, http.StatusOK)
	w = last["window"].(map[string]any)
	if w["start_task"].(float64) != 5 || w["end_task"].(float64) != 10 || w["complete"] != true {
		t.Fatalf("last window = %v", w)
	}
	do(t, srv, "GET", "/v1/sessions/win/estimates?window=decayed", nil, http.StatusOK)

	// The all-time read carries no window block but does carry a version.
	all := do(t, srv, "GET", "/v1/sessions/win/estimates", nil, http.StatusOK)
	if _, hasWin := all["window"]; hasWin {
		t.Fatalf("all-time estimates carry a window block: %v", all)
	}
	if all["version"].(float64) != 10 {
		t.Fatalf("version = %v, want 10", all["version"])
	}

	// Bad window configs are rejected at create time.
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "badwin", "items": 30,
		"config": map[string]any{"window": map[string]any{"size": 5, "stride": 9}},
	}, http.StatusBadRequest)

	// Windowless sessions 409 on windowed reads.
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "plain", "items": 30}, http.StatusCreated)
	do(t, srv, "GET", "/v1/sessions/plain/estimates?window=current", nil, http.StatusConflict)
}

// TestBatchEstimatesEndpoint: one POST returns many sessions' estimates,
// reporting unknown ids and per-session windowed errors without failing the
// batch.
func TestBatchEstimatesEndpoint(t *testing.T) {
	srv := mustServerT(t, serverConfig{})
	for _, id := range []string{"a", "b"} {
		do(t, srv, "POST", "/v1/sessions", map[string]any{"id": id, "items": 20}, http.StatusCreated)
	}
	ingestTasks(t, srv, "a", 20, 0, 4)

	out := do(t, srv, "POST", "/v1/estimates:batch", map[string]any{"ids": []string{"a", "b", "ghost", "a"}}, http.StatusOK)
	results := out["results"].(map[string]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	if results["a"].(map[string]any)["version"].(float64) != 4 {
		t.Fatalf("batch version for a = %v", results["a"])
	}
	missing := out["missing"].([]any)
	if len(missing) != 1 || missing[0] != "ghost" {
		t.Fatalf("missing = %v", missing)
	}

	// Windowed batch: windowless sessions land in "errors", not in results.
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "winb", "items": 20,
		"config": map[string]any{"window": map[string]any{"size": 2}},
	}, http.StatusCreated)
	ingestTasks(t, srv, "winb", 20, 0, 4)
	out = do(t, srv, "POST", "/v1/estimates:batch", map[string]any{"ids": []string{"a", "winb"}, "window": "last"}, http.StatusOK)
	if _, ok := out["results"].(map[string]any)["winb"]; !ok {
		t.Fatalf("windowed batch missing winb: %v", out)
	}
	if _, ok := out["errors"].(map[string]any)["a"]; !ok {
		t.Fatalf("windowless session did not error in windowed batch: %v", out)
	}

	do(t, srv, "POST", "/v1/estimates:batch", map[string]any{"ids": []string{}}, http.StatusBadRequest)
	do(t, srv, "POST", "/v1/estimates:batch", map[string]any{"ids": []string{"a"}, "window": "bogus"}, http.StatusBadRequest)
}

// TestMaxBodyBytes: oversized JSON bodies get a clean 413 instead of being
// buffered.
func TestMaxBodyBytes(t *testing.T) {
	srv := mustServerT(t, serverConfig{MaxBodyBytes: 1024})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s", "items": 10}, http.StatusCreated)
	big := bytes.Repeat([]byte("x"), 4096)
	req := httptest.NewRequest("POST", "/v1/sessions/s/votes", bytes.NewReader(append([]byte(`{"votes":[{"item":1}],"pad":"`), append(big, []byte(`"}`)...)...)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}
}

// sseClient subscribes to a watch stream and forwards decoded events.
type sseEvent struct {
	id   string
	data map[string]any
}

func watchStream(t *testing.T, ctx context.Context, base, path string) (<-chan sseEvent, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("watch content-type = %q", ct)
	}
	events := make(chan sseEvent, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				var data map[string]any
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err == nil {
					ev.data = data
				}
			case line == "":
				if ev.data != nil {
					events <- ev
				}
				ev = sseEvent{}
			}
		}
	}()
	return events, func() { resp.Body.Close() }
}

// TestWatchStreamsUpdates: the SSE endpoint pushes a payload when the version
// advances, coalesces bursts, resumes from a cursor, and stays silent on an
// idle session.
func TestWatchStreamsUpdates(t *testing.T) {
	srv := mustServerT(t, serverConfig{WatchMinInterval: 10 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "w", "items": 20}, http.StatusCreated)
	ingestTasks(t, srv, "w", 20, 0, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, stop := watchStream(t, ctx, hs.URL, "/v1/sessions/w/watch")
	defer stop()

	// The first event arrives immediately (version 2 > cursor 0).
	select {
	case ev := <-events:
		if ev.id != "2" || ev.data["version"].(float64) != 2 {
			t.Fatalf("first event = %+v, want version 2", ev)
		}
	case <-ctx.Done():
		t.Fatal("no initial watch event")
	}

	// A burst of mutations coalesces into at least one, at most a few pushes,
	// with the last one carrying the final version.
	ingestTasks(t, srv, "w", 20, 2, 8)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.data["version"].(float64) == 8 {
				goto resumed
			}
		case <-deadline:
			t.Fatal("watch never delivered the final version")
		}
	}
resumed:
	// No further mutations: no further estimate events for a few intervals.
	select {
	case ev, open := <-events:
		if open {
			t.Fatalf("idle session pushed %+v", ev)
		}
	case <-time.After(100 * time.Millisecond):
	}

	// Resuming with the final cursor stays silent; an older cursor re-delivers.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	caught, stop2 := watchStream(t, ctx2, hs.URL, "/v1/sessions/w/watch?cursor=8")
	defer stop2()
	select {
	case ev := <-caught:
		t.Fatalf("caught-up watcher got %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
	behind, stop3 := watchStream(t, ctx2, hs.URL, "/v1/sessions/w/watch?cursor=3")
	defer stop3()
	select {
	case ev := <-behind:
		if ev.data["version"].(float64) != 8 {
			t.Fatalf("resume event = %+v", ev)
		}
	case <-ctx2.Done():
		t.Fatal("stale cursor never re-delivered")
	}

	// Invalid parameters.
	for _, p := range []string{"?cursor=abc", "?min_interval=nope", "?window=bogus"} {
		resp, err := http.Get(hs.URL + "/v1/sessions/w/watch" + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("watch%s = %d, want 400", p, resp.StatusCode)
		}
	}
}

// TestWatchWindowedStream: ?window= watchers receive windowed payloads once a
// window completes.
func TestWatchWindowedStream(t *testing.T) {
	srv := mustServerT(t, serverConfig{WatchMinInterval: 10 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "ww", "items": 20,
		"config": map[string]any{"window": map[string]any{"size": 3}},
	}, http.StatusCreated)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, stop := watchStream(t, ctx, hs.URL, "/v1/sessions/ww/watch?window=last")
	defer stop()

	ingestTasks(t, srv, "ww", 20, 0, 7)
	select {
	case ev := <-events:
		w, ok := ev.data["window"].(map[string]any)
		if !ok || w["kind"] != "last" || w["complete"] != true {
			t.Fatalf("windowed watch event = %+v", ev.data)
		}
	case <-ctx.Done():
		t.Fatal("windowed watcher never received an event")
	}
}

// TestWatchRejectsImpossibleStreams: a watch that can never produce an event
// (no window config, no decay aggregate) fails up front with 409 instead of
// heartbeating forever; an unknown session is 404.
func TestWatchRejectsImpossibleStreams(t *testing.T) {
	srv := mustServerT(t, serverConfig{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "plain", "items": 10}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "nodecay", "items": 10,
		"config": map[string]any{"window": map[string]any{"size": 3}},
	}, http.StatusCreated)
	for path, want := range map[string]int{
		"/v1/sessions/plain/watch?window=last":      http.StatusConflict,
		"/v1/sessions/nodecay/watch?window=decayed": http.StatusConflict,
		"/v1/sessions/ghost/watch":                  http.StatusNotFound,
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestWatchEndsWhenSessionDeleted: deleting the session closes the stream
// instead of leaving the subscriber silently pinned to a detached object.
func TestWatchEndsWhenSessionDeleted(t *testing.T) {
	srv := mustServerT(t, serverConfig{WatchMinInterval: 10 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "doomed", "items": 10}, http.StatusCreated)
	ingestTasks(t, srv, "doomed", 10, 0, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, stop := watchStream(t, ctx, hs.URL, "/v1/sessions/doomed/watch")
	defer stop()
	select {
	case <-events:
	case <-ctx.Done():
		t.Fatal("no initial event")
	}
	do(t, srv, "DELETE", "/v1/sessions/doomed", nil, http.StatusNoContent)
	select {
	case _, open := <-events:
		if open {
			// Drain: the channel closes when the server ends the stream.
			for range events {
			}
		}
	case <-ctx.Done():
		t.Fatal("stream did not end after session delete")
	}
}

// BenchmarkWatchFanout measures watch fan-out on one hot session; an
// iteration is one mutation delivered to every subscriber, so events/s is
// the aggregate delivery rate.
//
// "inproc" drives the hub directly (engine ingest -> notifier -> pump ->
// hub subscribers) across subscriber populations and is the fan-out plane's
// own ceiling; it also counts encoder calls and fails if a published
// version is serialized more than once — the hub's encode-once contract at
// the serve layer. "http" adds the full SSE stack at 1000 subscribers —
// handler, ResponseController, chunked writes, client scanners — and is
// syscall-bound on small machines.
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("inproc/subs=%d", subs), func(b *testing.B) {
			benchWatchFanoutInproc(b, subs)
		})
	}
	b.Run("http", benchWatchFanoutHTTP)
}

func benchWatchFanoutInproc(b *testing.B, subscribers int) {
	srv, err := newServer(serverConfig{})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := srv.engine.CreateSession("fan", 1000, dqm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// A dedicated hub with no pump floor, sharing the server's encoder (with
	// a call counter in front): the measurement is pure fan-out, not
	// coalescing-interval sleep.
	var encodes atomic.Int64
	h := hub.New(hub.Config{
		Resolve: func(id string) (hub.Session, bool) {
			s2, ok := srv.engine.Session(id)
			if !ok {
				return nil, false
			}
			return hubSession{s2}, true
		},
		Encode: func(s hub.Session, v hub.View) ([]byte, uint64, error) {
			encodes.Add(1)
			return srv.encodeEstimates(s, v)
		},
	})
	defer h.Drop("fan")

	var delivered atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		sub, ok := h.Subscribe("fan", hub.ViewAll, 0, 0)
		if !ok {
			b.Fatal("subscribe failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for {
				ev, ok := sub.Next(ctx)
				if !ok {
					return
				}
				if !ev.Heartbeat {
					delivered.Add(1)
				}
			}
		}()
	}

	vote := []dqm.Vote{{Item: 1, Worker: 1, Dirty: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vote[0].Item = i % 1000
		if err := sess.AppendVotes(vote, true); err != nil {
			b.Fatal(err)
		}
		target := int64(i+1) * int64(subscribers)
		for delivered.Load() < target {
			time.Sleep(5 * time.Microsecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "events/s")
	perVersion := float64(encodes.Load()) / float64(b.N)
	b.ReportMetric(perVersion, "encodes/version")
	if perVersion > 1.01 {
		b.Fatalf("encoded %.2f times per published version, want 1 (encode-once contract)", perVersion)
	}
	cancel()
	wg.Wait()
}

func benchWatchFanoutHTTP(b *testing.B) {
	const subscribers = 1000
	// 1ms floor: with event-driven wakeups the interval only bounds burst
	// coalescing, so the old tick-phase-sized floor is unnecessary.
	srv, err := newServer(serverConfig{WatchMinInterval: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	body := bytes.NewBufferString(`{"id":"fan","items":1000}`)
	resp, err := http.Post(hs.URL+"/v1/sessions", "application/json", body)
	if err != nil || resp.StatusCode != http.StatusCreated {
		b.Fatalf("create: %v %v", err, resp)
	}
	resp.Body.Close()

	tr := &http.Transport{MaxIdleConnsPerHost: subscribers, MaxConnsPerHost: 0}
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var delivered atomic.Int64
	barrier := make(chan struct{}, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/sessions/fan/watch", nil)
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			barrier <- struct{}{}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "id: ") {
					delivered.Add(1)
				}
			}
		}()
	}
	for i := 0; i < subscribers; i++ {
		<-barrier
	}

	ingest := func(round int) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, `{"votes":[{"item":%d,"worker":1,"dirty":true}],"end_task":true}`, round%1000)
		resp, err := http.Post(hs.URL+"/v1/sessions/fan/votes", "application/json", &buf)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := delivered.Load() + subscribers
		ingest(i)
		for delivered.Load() < target {
			time.Sleep(time.Millisecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "events/s")
	cancel()
	wg.Wait()
}
