package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dqm"
)

// do issues one JSON request against the server and decodes the response.
func do(t *testing.T, srv http.Handler, method, path string, body any, wantStatus int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, path, rec.Code, wantStatus, rec.Body.String())
	}
	if rec.Body.Len() == 0 {
		return nil
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad response JSON: %v (%s)", method, path, err, rec.Body.String())
	}
	return out
}

func TestHealthAndEstimators(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	h := do(t, srv, "GET", "/healthz", nil, http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("health = %v", h)
	}
	e := do(t, srv, "GET", "/v1/estimators", nil, http.StatusOK)
	names, _ := e["estimators"].([]any)
	if len(names) < 5 {
		t.Fatalf("estimators = %v", e)
	}
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	srv := mustServer(t, serverConfig{})

	// Generated id.
	created := do(t, srv, "POST", "/v1/sessions", map[string]any{"items": 10}, http.StatusCreated)
	genID, _ := created["id"].(string)
	if genID == "" {
		t.Fatalf("no id in %v", created)
	}
	// Explicit id, duplicate, and validation failures.
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "orders", "items": 20}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "orders", "items": 20}, http.StatusConflict)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "bad", "items": 0}, http.StatusBadRequest)
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "bad", "items": 5, "config": map[string]any{"estimators": []string{"NOPE"}},
	}, http.StatusBadRequest)
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "bad", "items": 5, "config": map[string]any{"tie_policy": "coin-toss"},
	}, http.StatusBadRequest)

	list := do(t, srv, "GET", "/v1/sessions", nil, http.StatusOK)
	if got := list["sessions"].([]any); len(got) != 2 {
		t.Fatalf("sessions = %v", got)
	}

	info := do(t, srv, "GET", "/v1/sessions/orders", nil, http.StatusOK)
	if info["items"].(float64) != 20 || info["votes"].(float64) != 0 {
		t.Fatalf("info = %v", info)
	}
	do(t, srv, "GET", "/v1/sessions/nope", nil, http.StatusNotFound)

	do(t, srv, "DELETE", "/v1/sessions/orders", nil, http.StatusNoContent)
	do(t, srv, "DELETE", "/v1/sessions/orders", nil, http.StatusNotFound)
}

// TestIngestMatchesRecorder feeds the same stream over HTTP (both wire
// forms) and directly into a Recorder; the served estimates must be
// identical.
func TestIngestMatchesRecorder(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	const n = 40
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "a", "items": n}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "b", "items": n}, http.StatusCreated)
	rec := dqm.NewRecorder(n, dqm.Defaults())

	var entries []map[string]any
	for task := 0; task < 25; task++ {
		var batch []map[string]any
		for i := 0; i < 8; i++ {
			item := (task*5 + i) % n
			dirty := (task+i)%3 != 0
			rec.Record(item, task%6, dirty)
			batch = append(batch, map[string]any{"item": item, "worker": task % 6, "dirty": dirty})
			entries = append(entries, map[string]any{"task": task, "item": item, "worker": task % 6, "dirty": dirty})
		}
		rec.EndTask()
		do(t, srv, "POST", "/v1/sessions/a/votes",
			map[string]any{"votes": batch, "end_task": true}, http.StatusOK)
	}
	// Session b ingests the whole log in one request via the entries form.
	resp := do(t, srv, "POST", "/v1/sessions/b/votes",
		map[string]any{"entries": entries}, http.StatusOK)
	if resp["tasks_ended"].(float64) != 25 {
		t.Fatalf("entries ingest = %v", resp)
	}

	want := rec.Estimates()
	for _, id := range []string{"a", "b"} {
		got := do(t, srv, "GET", "/v1/sessions/"+id+"/estimates", nil, http.StatusOK)
		if got["nominal"].(float64) != want.Nominal ||
			got["voting"].(float64) != want.Voting ||
			got["chao92"].(float64) != want.Chao92 ||
			got["v_chao92"].(float64) != want.VChao92 ||
			got["switch"].(map[string]any)["total"].(float64) != want.Switch.Total ||
			got["remaining"].(float64) != want.Remaining() {
			t.Fatalf("session %s estimates %v != recorder %+v", id, got, want)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxBatch: 10})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s", "items": 5}, http.StatusCreated)

	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{}, http.StatusBadRequest)
	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{
		"votes":   []map[string]any{{"item": 0, "worker": 0, "dirty": true}},
		"entries": []map[string]any{{"task": 0, "item": 0, "worker": 0, "dirty": true}},
	}, http.StatusBadRequest)
	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{
		"votes": []map[string]any{{"item": 99, "worker": 0, "dirty": true}}, "end_task": true,
	}, http.StatusBadRequest)
	big := make([]map[string]any, 11)
	for i := range big {
		big[i] = map[string]any{"item": 0, "worker": i, "dirty": true}
	}
	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{"votes": big, "end_task": true},
		http.StatusRequestEntityTooLarge)
	// A lone end_task with no votes is a valid (empty-task) boundary.
	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{"end_task": true}, http.StatusOK)
	do(t, srv, "POST", "/v1/sessions/nope/votes", map[string]any{"end_task": true}, http.StatusNotFound)
	// Unknown fields are rejected (strict decoding).
	do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{"votez": 1}, http.StatusBadRequest)
}

func TestEstimatesWithCI(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "s", "items": 50, "config": map[string]any{"track_confidence": true},
	}, http.StatusCreated)
	for task := 0; task < 20; task++ {
		var batch []map[string]any
		for i := 0; i < 10; i++ {
			batch = append(batch, map[string]any{"item": (task + i*3) % 50, "worker": task, "dirty": i%2 == 0})
		}
		do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{"votes": batch, "end_task": true}, http.StatusOK)
	}
	got := do(t, srv, "GET", "/v1/sessions/s/estimates?ci=0.9&replicates=50", nil, http.StatusOK)
	ci, ok := got["switch_ci"].(map[string]any)
	if !ok || ci["level"].(float64) != 0.9 || ci["lo"].(float64) > ci["hi"].(float64) {
		t.Fatalf("switch_ci = %v", got["switch_ci"])
	}
	do(t, srv, "GET", "/v1/sessions/s/estimates?ci=bogus", nil, http.StatusBadRequest)
	do(t, srv, "GET", "/v1/sessions/s/estimates?ci=0.9&replicates=20000", nil, http.StatusBadRequest)
	// Without ledger tracking the CI request fails cleanly.
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "noci", "items": 5}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions/noci/votes", map[string]any{
		"votes": []map[string]any{{"item": 0, "worker": 0, "dirty": true}}, "end_task": true,
	}, http.StatusOK)
	do(t, srv, "GET", "/v1/sessions/noci/estimates?ci=0.9", nil, http.StatusBadRequest)
}

func TestSnapshotRestoreOverHTTP(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s", "items": 30}, http.StatusCreated)
	feed := func(from, to int) {
		for task := from; task < to; task++ {
			var batch []map[string]any
			for i := 0; i < 6; i++ {
				batch = append(batch, map[string]any{"item": (task*4 + i) % 30, "worker": task % 4, "dirty": i%3 != 0})
			}
			do(t, srv, "POST", "/v1/sessions/s/votes", map[string]any{"votes": batch, "end_task": true}, http.StatusOK)
		}
	}
	feed(0, 15)
	atSnap := do(t, srv, "GET", "/v1/sessions/s/estimates", nil, http.StatusOK)
	created := do(t, srv, "POST", "/v1/sessions/s/snapshots", nil, http.StatusCreated)
	snapID := created["snapshot_id"].(string)
	if created["tasks"].(float64) != 15 {
		t.Fatalf("snapshot = %v", created)
	}

	feed(15, 30)
	after := do(t, srv, "GET", "/v1/sessions/s/estimates", nil, http.StatusOK)
	if reflect.DeepEqual(after, atSnap) {
		t.Fatal("post-snapshot ingest did not move estimates; test is vacuous")
	}

	listed := do(t, srv, "GET", "/v1/sessions/s/snapshots", nil, http.StatusOK)
	if snaps := listed["snapshots"].([]any); len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}

	restored := do(t, srv, "POST", "/v1/sessions/s/restore",
		map[string]any{"snapshot_id": snapID}, http.StatusOK)
	for _, k := range []string{"nominal", "voting", "chao92", "v_chao92", "remaining", "tasks", "votes"} {
		if restored[k] != atSnap[k] {
			t.Fatalf("restored %s = %v, want %v", k, restored[k], atSnap[k])
		}
	}
	do(t, srv, "POST", "/v1/sessions/s/restore",
		map[string]any{"snapshot_id": "snap-404"}, http.StatusNotFound)

	// Deleting the session drops its snapshots.
	do(t, srv, "DELETE", "/v1/sessions/s", nil, http.StatusNoContent)
	srv.snapMu.Lock()
	nsnaps := len(srv.snaps["s"])
	srv.snapMu.Unlock()
	if nsnaps != 0 {
		t.Fatalf("snapshots survived session deletion: %d", nsnaps)
	}
}

func TestSnapshotCap(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxSnapshots: 2})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s", "items": 5}, http.StatusCreated)
	var ids []string
	for i := 0; i < 3; i++ {
		created := do(t, srv, "POST", "/v1/sessions/s/snapshots", nil, http.StatusCreated)
		ids = append(ids, created["snapshot_id"].(string))
	}
	listed := do(t, srv, "GET", "/v1/sessions/s/snapshots", nil, http.StatusOK)
	snaps := listed["snapshots"].([]any)
	if len(snaps) != 2 {
		t.Fatalf("snapshot cap not applied: %v", snaps)
	}
	if got := snaps[0].(map[string]any)["snapshot_id"]; got != ids[1] {
		t.Fatalf("oldest snapshot not evicted: kept %v, want %v first", got, ids[1])
	}
	// The evicted snapshot is gone.
	do(t, srv, "POST", "/v1/sessions/s/restore", map[string]any{"snapshot_id": ids[0]}, http.StatusNotFound)
}

func TestMaxSessionsEviction(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxSessions: 2})
	for i := 0; i < 3; i++ {
		do(t, srv, "POST", "/v1/sessions", map[string]any{"id": fmt.Sprintf("s%d", i), "items": 5}, http.StatusCreated)
	}
	h := do(t, srv, "GET", "/healthz", nil, http.StatusOK)
	if h["sessions"].(float64) != 2 || h["evictions"].(float64) != 1 {
		t.Fatalf("health after eviction = %v", h)
	}
}

// TestEvictionDropsSnapshots pins the leak/resurrection fix: snapshots of
// an LRU-evicted session are released, and a later session reusing the id
// cannot restore the previous dataset's state.
func TestEvictionDropsSnapshots(t *testing.T) {
	srv := mustServer(t, serverConfig{MaxSessions: 1})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s1", "items": 5}, http.StatusCreated)
	created := do(t, srv, "POST", "/v1/sessions/s1/snapshots", nil, http.StatusCreated)
	snapID := created["snapshot_id"].(string)

	// Creating s2 evicts s1 (and must drop its snapshots).
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s2", "items": 5}, http.StatusCreated)
	srv.snapMu.Lock()
	nsnaps := len(srv.snaps)
	srv.snapMu.Unlock()
	if nsnaps != 0 {
		t.Fatalf("evicted session's snapshots retained: %d entries", nsnaps)
	}

	// A reincarnated s1 must not see the old snapshot.
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "s1", "items": 5}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions/s1/restore", map[string]any{"snapshot_id": snapID}, http.StatusNotFound)
}

// mustServer builds a server or fails the test.
func mustServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestPartialEntriesIngestReportsApplied: entries are applied per task; a bad
// entry mid-batch must report exactly which tasks/votes landed so the client
// can resume, rather than a bare error over silently mutated state.
func TestPartialEntriesIngestReportsApplied(t *testing.T) {
	srv := mustServer(t, serverConfig{})
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "p", "items": 10}, http.StatusCreated)
	entries := []map[string]any{
		{"task": 0, "item": 1, "worker": 0, "dirty": true},
		{"task": 0, "item": 2, "worker": 1, "dirty": false},
		{"task": 1, "item": 3, "worker": 0, "dirty": true},
		{"task": 2, "item": 99, "worker": 0, "dirty": true}, // out of range
		{"task": 2, "item": 4, "worker": 1, "dirty": false},
	}
	out := do(t, srv, "POST", "/v1/sessions/p/votes", map[string]any{"entries": entries}, http.StatusBadRequest)
	env, _ := out["error"].(map[string]any)
	if env == nil {
		t.Fatalf("no error envelope in %v", out)
	}
	if code, _ := env["code"].(string); code != "invalid_batch" {
		t.Fatalf("code = %q, want invalid_batch", code)
	}
	details, _ := env["details"].(map[string]any)
	if got := details["ingested"].(float64); got != 3 {
		t.Fatalf("ingested = %v, want 3 (tasks 0 and 1 applied)", details["ingested"])
	}
	if got := details["tasks_ended"].(float64); got != 2 {
		t.Fatalf("tasks_ended = %v, want 2", details["tasks_ended"])
	}
	if got := details["total_votes"].(float64); got != 3 {
		t.Fatalf("total_votes = %v, want 3", details["total_votes"])
	}
	// The bad task was atomically rejected: a follow-up estimate sees only
	// the applied tasks.
	est := do(t, srv, "GET", "/v1/sessions/p/estimates", nil, http.StatusOK)
	if got := est["votes"].(float64); got != 3 {
		t.Fatalf("votes after partial ingest = %v, want 3", got)
	}
}

// TestDurableServerRestartRecovers: a server over a data dir is killed (its
// engine closed) and rebuilt; sessions and estimates must survive.
func TestDurableServerRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := serverConfig{DataDir: dir, Fsync: dqm.FsyncNever}
	srv := mustServer(t, cfg)
	hc := do(t, srv, "GET", "/healthz", nil, http.StatusOK)
	if hc["durable"] != true {
		t.Fatalf("healthz durable = %v, want true", hc["durable"])
	}
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "persist", "items": 25}, http.StatusCreated)
	for task := 0; task < 12; task++ {
		votes := []map[string]any{}
		for k := 0; k < 4; k++ {
			votes = append(votes, map[string]any{"item": (task*5 + k) % 25, "worker": k, "dirty": (task+k)%2 == 0})
		}
		do(t, srv, "POST", "/v1/sessions/persist/votes", map[string]any{"votes": votes, "end_task": true}, http.StatusOK)
	}
	want := do(t, srv, "GET", "/v1/sessions/persist/estimates", nil, http.StatusOK)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	got := do(t, srv2, "GET", "/v1/sessions/persist/estimates", nil, http.StatusOK)
	// The mutation version is a session-local counter, not part of estimator
	// state: recovery rebases it on the replayed stream (never lower than the
	// pre-crash value, so watch cursors stay safe) — exclude it from the
	// bit-identity comparison.
	delete(got, "version")
	delete(want, "version")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates after restart differ:\n got %v\nwant %v", got, want)
	}
	// Durable sessions refuse snapshot restore (the journal cannot represent
	// it); snapshots themselves still work as read-only checkpoints.
	snap := do(t, srv2, "POST", "/v1/sessions/persist/snapshots", nil, http.StatusCreated)
	do(t, srv2, "POST", "/v1/sessions/persist/restore",
		map[string]any{"snapshot_id": snap["snapshot_id"]}, http.StatusConflict)
	// Delete purges the journal: after another restart the session is gone.
	do(t, srv2, "DELETE", "/v1/sessions/persist", nil, http.StatusNoContent)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3 := mustServer(t, cfg)
	defer srv3.Close()
	do(t, srv3, "GET", "/v1/sessions/persist", nil, http.StatusNotFound)
}

// TestDurableEvictionRevivesOverHTTP: with MaxSessions=1 the older session is
// evicted from memory but not from disk; touching it revives it.
func TestDurableEvictionRevivesOverHTTP(t *testing.T) {
	srv := mustServer(t, serverConfig{DataDir: t.TempDir(), Fsync: dqm.FsyncNever, MaxSessions: 1})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "old", "items": 5}, http.StatusCreated)
	do(t, srv, "POST", "/v1/sessions/old/votes",
		map[string]any{"votes": []map[string]any{{"item": 1, "worker": 0, "dirty": true}}, "end_task": true}, http.StatusOK)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "new", "items": 5}, http.StatusCreated)
	// "old" was evicted from memory; the estimates endpoint revives it.
	out := do(t, srv, "GET", "/v1/sessions/old/estimates", nil, http.StatusOK)
	if got := out["votes"].(float64); got != 1 {
		t.Fatalf("revived session votes = %v, want 1", got)
	}
	// Both ids stay listed while evicted or live.
	ids := do(t, srv, "GET", "/v1/sessions", nil, http.StatusOK)["sessions"].([]any)
	if len(ids) != 2 {
		t.Fatalf("sessions = %v, want 2 ids", ids)
	}
}

// TestJournalFaultMapsTo503: infrastructure faults (closed/broken journal)
// must not masquerade as client errors.
func TestJournalFaultMapsTo503(t *testing.T) {
	srv := mustServer(t, serverConfig{DataDir: t.TempDir(), Fsync: dqm.FsyncNever, MaxSessions: 1})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "j", "items": 5}, http.StatusCreated)
	sess, ok := srv.engine.Session("j")
	if !ok {
		t.Fatal("session missing")
	}
	// Evicting "j" closes its journal; the stale handle's next append is a
	// journal fault. (The HTTP path would transparently revive the session,
	// so exercise the classification through the handle + ingestStatus.)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "evictor", "items": 5}, http.StatusCreated)
	err := sess.AppendVotes([]dqm.Vote{{Item: 1, Worker: 0, Dirty: true}}, true)
	if err == nil {
		t.Fatal("append on evicted handle succeeded")
	}
	if !dqm.IsJournalError(err) {
		t.Fatalf("err %v not classified as journal error", err)
	}
	if got := ingestStatus(err); got != http.StatusServiceUnavailable {
		t.Fatalf("ingestStatus = %d, want 503", got)
	}
	if got := ingestStatus(fmt.Errorf("engine: vote 0: item 9 outside population")); got != http.StatusBadRequest {
		t.Fatalf("validation error status = %d, want 400", got)
	}
}

// TestAutoSessionIDsSurviveRestart: the auto-id counter is in-memory and
// restarts at zero; on a durable server it must be seeded past the journaled
// "session-N" ids recovered from the previous run, or every POST without an
// id would 409 against them. A manually taken "session-N" id must also be
// skipped, not surfaced as a conflict the client cannot act on.
func TestAutoSessionIDsSurviveRestart(t *testing.T) {
	cfg := serverConfig{DataDir: t.TempDir(), Fsync: dqm.FsyncNever}
	srv := mustServer(t, cfg)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		out := do(t, srv, "POST", "/v1/sessions", map[string]any{"items": 5}, http.StatusCreated)
		seen[out["id"].(string)] = true
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	for i := 0; i < 3; i++ {
		out := do(t, srv2, "POST", "/v1/sessions", map[string]any{"items": 5}, http.StatusCreated)
		id := out["id"].(string)
		if seen[id] {
			t.Fatalf("auto id %q reused after restart", id)
		}
		seen[id] = true
	}
	// Occupy the next auto id by hand; auto creation must skip past it.
	next := fmt.Sprintf("session-%d", srv2.sessionSeq.Load()+1)
	do(t, srv2, "POST", "/v1/sessions", map[string]any{"id": next, "items": 5}, http.StatusCreated)
	out := do(t, srv2, "POST", "/v1/sessions", map[string]any{"items": 5}, http.StatusCreated)
	if id := out["id"].(string); id == next || seen[id] {
		t.Fatalf("auto id %q collided with taken ids", id)
	}
}
