// Watch fan-out wiring: adapts the engine's sessions and the estimates wire
// format to internal/hub, which encodes each published version once and
// multicasts the pre-serialized bytes to every SSE subscriber (and serves
// them to conditional GET readers via ETag/If-None-Match).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"dqm"
	"dqm/internal/hub"
)

// hubSession adapts *dqm.Session to hub.Session. Version, Notify and
// StopNotify pass through; Pending surfaces staged-but-unmerged votes, which
// mutate the estimates without advancing the version until the next read
// folds them in — a cached frame is stale while any are pending.
type hubSession struct {
	*dqm.Session
}

func (h hubSession) Pending() bool { return h.StagedVotes() > 0 }

// viewForKind maps a parsed window kind onto the hub's frame-cache slots.
func viewForKind(kind dqm.WindowKind) hub.View {
	switch kind {
	case dqm.WindowCurrent:
		return hub.ViewCurrent
	case dqm.WindowLast:
		return hub.ViewLast
	default:
		return hub.ViewDecayed
	}
}

// kindForView is the inverse mapping for the hub's Encode callback.
func kindForView(view hub.View) dqm.WindowKind {
	switch view {
	case hub.ViewCurrent:
		return dqm.WindowCurrent
	case hub.ViewLast:
		return dqm.WindowLast
	default:
		return dqm.WindowDecayed
	}
}

// errEncode marks serialization failures (as opposed to a windowed view that
// has no data yet): the estimates handler maps it to 500, not 409.
var errEncode = errors.New("encode estimates payload")

// setupHub builds the watch hub over the engine. Called once from newServer
// after setupObservability (the encode-error counter lives on s.reg).
func (s *server) setupHub() {
	s.watchEncodeErrs = s.reg.Counter("dqm_http_watch_encode_errors_total",
		"Estimate payload serialization failures in the watch/read plane (the cursor still advances).")
	s.hub = hub.New(hub.Config{
		Resolve: func(id string) (hub.Session, bool) {
			sess, ok := s.engine.Session(id)
			if !ok {
				return nil, false
			}
			return hubSession{sess}, true
		},
		Encode: s.encodeEstimates,
		// The pump's publish floor: mutation bursts within it collapse into
		// one subscriber wakeup. Half the subscriber floor keeps the extra
		// delivery latency within the interval clients asked for.
		MinInterval: s.cfg.WatchMinInterval / 2,
		Heartbeat:   15 * time.Second,
	})
}

// encodeEstimates renders one view of a session, exactly once per version
// (the hub caches the result). The returned version is read BEFORE the
// estimates so concurrent mutation yields re-delivery, never a skip.
func (s *server) encodeEstimates(hs hub.Session, view hub.View) ([]byte, uint64, error) {
	sess := hs.(hubSession).Session
	v := sess.Version()
	var (
		out estimatesJSON
		err error
	)
	if view == hub.ViewAll {
		out = estimatesToJSON(sess)
	} else {
		out, err = windowedToJSON(sess, kindForView(view))
		if err != nil {
			return nil, v, err
		}
	}
	b, merr := json.Marshal(out)
	if merr != nil {
		s.watchEncodeErrs.Inc()
		return nil, v, fmt.Errorf("%w: %v", errEncode, merr)
	}
	return b, out.Version, nil
}

// etagMatches reports whether the If-None-Match header value matches the
// entity tag: a comma-separated list, each entry possibly weak-prefixed
// (W/"v" — version equality is semantic equivalence here), or the wildcard.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}
