package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"dqm"
	"dqm/internal/policy"
)

// The quality-gate plane: one event-driven policy.Gate per gated session.
// Each gate registers on the session's version notifier (the same wakeup the
// watch hub rides), re-evaluates its rules when the session mutates, and
// caches the decision pre-serialized — GET /v1/sessions/{id}/gate is a frame
// load plus one write, with ETag/304 on the decision version. Action
// transitions (proceed↔warn↔quarantine) enqueue the decision document on the
// shared bounded webhook dispatcher; steady-state decisions never leave the
// process.

// gateSource adapts *dqm.Session to policy.Source. Inputs reads the version
// BEFORE the estimates (the same at-least-once discipline as the read
// plane), and only computes the bootstrap CI / windowed drift view when the
// policy's rules reference them.
type gateSource struct {
	sess *dqm.Session
}

func (g gateSource) Version() uint64               { return g.sess.Version() }
func (g gateSource) Notify(ch chan<- struct{})     { g.sess.Notify(ch) }
func (g gateSource) StopNotify(ch chan<- struct{}) { g.sess.StopNotify(ch) }

func (g gateSource) Inputs(need policy.Needs) (policy.Inputs, error) {
	sess := g.sess
	in := policy.Inputs{Version: sess.Version()}
	est := sess.Estimates()
	in.Remaining = est.Remaining()
	in.SwitchTotal = est.Switch.Total
	in.Tasks = sess.Tasks()
	in.Votes = sess.TotalVotes()
	if need.CI {
		// Unavailable (confidence not tracked, no data yet) is not an error:
		// the rule is reported as unavailable in the decision instead.
		if ci, err := sess.SwitchCI(need.CIReplicates, need.CILevel); err == nil {
			in.CIUpper = ci.Hi
			in.HasCI = true
		}
	}
	if need.Drift {
		if we, err := sess.WindowEstimates(dqm.WindowDecayed); err == nil {
			in.DriftRatio = policy.DriftRatio(we.Estimates.Remaining(), in.Remaining)
			in.HasDrift = true
		}
	}
	return in, nil
}

// gate returns the session's live gate, if any.
func (s *server) gate(id string) *policy.Gate {
	s.gateMu.Lock()
	g := s.gates[id]
	s.gateMu.Unlock()
	return g
}

// ensureGate attaches a gate to the session if it should have one (its own
// persisted policy, else the server default) and doesn't yet — the path by
// which created, recovered, and LRU-revived sessions all come online.
// Idempotent and cheap when nothing is to be done: an ungated session with no
// default policy exits on two atomic loads without touching the mutex.
func (s *server) ensureGate(sess *dqm.Session) *policy.Gate {
	raw := sess.PolicyJSON()
	if raw == nil {
		raw = s.cfg.DefaultPolicy
	}
	if raw == nil {
		return nil
	}
	id := sess.ID()
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	if g, ok := s.gates[id]; ok {
		return g
	}
	p, err := policy.Parse(raw)
	if err != nil {
		// A persisted policy that no longer parses (schema skew across
		// versions) must not brick the session; it serves ungated and the
		// operator re-PUTs.
		return nil
	}
	return s.attachGateLocked(id, sess, p)
}

// attachGateLocked builds the gate (one synchronous seed evaluation inside)
// and registers it. Caller holds gateMu.
func (s *server) attachGateLocked(id string, sess *dqm.Session, p *policy.Policy) *policy.Gate {
	var g *policy.Gate
	onTransition := func(prev, cur policy.Action, dec policy.Decision, body []byte) {
		// The webhook config is read from the gate's CURRENT policy, so a
		// PUT that changes the URL redirects in-flight transitions too.
		cp := g.Policy()
		if cp == nil || cp.Webhook == nil {
			return
		}
		s.dispatcher.Enqueue(policy.Delivery{
			URL:         cp.Webhook.URL,
			Body:        body,
			Timeout:     time.Duration(cp.Webhook.TimeoutMS) * time.Millisecond,
			MaxAttempts: cp.Webhook.MaxAttempts,
		})
	}
	g = policy.NewGate(p, gateSource{sess: sess}, policy.GateConfig{
		SessionID:    id,
		MinInterval:  s.cfg.GateMinInterval,
		OnTransition: onTransition,
	})
	s.gates[id] = g
	return g
}

// dropGate detaches and closes a session's gate. Close happens off this
// goroutine: dropGate is called from engine eviction callbacks that may hold
// session-internal locks the pump's in-flight evaluation needs, so waiting
// here could deadlock.
func (s *server) dropGate(id string) {
	s.gateMu.Lock()
	g, ok := s.gates[id]
	delete(s.gates, id)
	s.gateMu.Unlock()
	if ok {
		go g.Close()
	}
}

// handleGate serves the cached gate decision: pre-serialized bytes, tagged
// with the decision's session version, honoring If-None-Match with a 304.
func (s *server) handleGate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	g := s.ensureGate(sess)
	if g == nil {
		writeError(w, http.StatusNotFound, codePolicyNotFound,
			"session %q has no policy attached (PUT /v1/sessions/%s/policy or start with -policy-file)",
			sess.ID(), sess.ID())
		return
	}
	f := g.Frame()
	etag := `"` + strconv.FormatUint(f.Version, 10) + `"`
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(f.Body)
	_, _ = w.Write([]byte{'\n'})
}

// handlePutPolicy validates, persists (session meta survives restart), and
// attaches the policy, re-evaluating synchronously so the response reports
// the decision under the new rules.
func (s *server) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, codeInvalidBody, "reading request body: %v", err)
		return
	}
	p, err := policy.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidPolicy, "%v", err)
		return
	}
	if err := s.engine.SetSessionPolicy(sess.ID(), raw); err != nil {
		writeError(w, http.StatusServiceUnavailable, codeJournalUnavailable, "%v", err)
		return
	}
	s.gateMu.Lock()
	g, attached := s.gates[sess.ID()]
	if !attached {
		g = s.attachGateLocked(sess.ID(), sess, p)
	}
	s.gateMu.Unlock()
	if attached {
		g.SetPolicy(p)
	}
	f := g.Frame()
	writeJSON(w, http.StatusOK, map[string]any{
		"policy":  json.RawMessage(raw),
		"source":  "session",
		"action":  f.Action.String(),
		"version": f.Version,
	})
}

// handleGetPolicy returns the effective policy and where it came from: the
// session's own document, or the server-wide -policy-file default.
func (s *server) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	raw, source := sess.PolicyJSON(), "session"
	if raw == nil {
		raw, source = s.cfg.DefaultPolicy, "server_default"
	}
	if raw == nil {
		writeError(w, http.StatusNotFound, codePolicyNotFound, "session %q has no policy attached", sess.ID())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"policy": json.RawMessage(raw),
		"source": source,
	})
}

// handleDeletePolicy removes the session's own policy. The server default
// (if any) takes back over — it is server configuration, not session state,
// so it cannot be deleted per session.
func (s *server) handleDeletePolicy(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if sess.PolicyJSON() == nil {
		writeError(w, http.StatusNotFound, codePolicyNotFound, "session %q has no policy attached", sess.ID())
		return
	}
	if err := s.engine.SetSessionPolicy(sess.ID(), nil); err != nil {
		writeError(w, http.StatusServiceUnavailable, codeJournalUnavailable, "%v", err)
		return
	}
	if s.cfg.DefaultPolicy != nil {
		if p, err := policy.Parse(s.cfg.DefaultPolicy); err == nil {
			if g := s.gate(sess.ID()); g != nil {
				g.SetPolicy(p)
			}
		}
	} else {
		s.dropGate(sess.ID())
	}
	w.WriteHeader(http.StatusNoContent)
}
