package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqm"
	"dqm/internal/policy"
)

// ingestTask posts one task of votes: every item in [base, base+n) voted by
// 3 workers, dirty votes from the first `dirtyWorkers` of them.
func ingestTask(t *testing.T, srv http.Handler, id string, base, n, dirtyWorkers int) {
	t.Helper()
	var votes []map[string]any
	for i := 0; i < n; i++ {
		for w := 0; w < 3; w++ {
			votes = append(votes, map[string]any{"item": base + i, "worker": w, "dirty": w < dirtyWorkers})
		}
	}
	do(t, srv, "POST", "/v1/sessions/"+id+"/votes", map[string]any{"votes": votes, "end_task": true}, http.StatusOK)
}

// gateDecision fetches and decodes the current gate decision.
func gateDecision(t *testing.T, srv http.Handler, id string) map[string]any {
	t.Helper()
	return do(t, srv, "GET", "/v1/sessions/"+id+"/gate", nil, http.StatusOK)
}

// waitGateAction polls the gate endpoint until the decision reports the
// action (evaluation is asynchronous off the version notifier).
func waitGateAction(t *testing.T, srv http.Handler, id, action string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		last = gateDecision(t, srv, id)
		if last["action"] == action {
			return last
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gate never reached %q (last decision %v)", action, last)
	return nil
}

// TestGateLifecycle is the end-to-end contract under -race: a policy is
// attached, ingest degrades the stream until the remaining-error rule trips,
// the gate transitions proceed→quarantine, and the transition webhook is
// delivered — with a retry after an injected 500 — carrying the quarantine
// decision. A laxer policy swap transitions back and fires again.
func TestGateLifecycle(t *testing.T) {
	var (
		hookMu     sync.Mutex
		hookBodies []map[string]any
		hookHits   atomic.Int64
	)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hookHits.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError) // injected fault: forces one retry
			return
		}
		var dec map[string]any
		if err := json.NewDecoder(r.Body).Decode(&dec); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		hookMu.Lock()
		hookBodies = append(hookBodies, dec)
		hookMu.Unlock()
	}))
	defer hook.Close()

	srv := mustServer(t, serverConfig{
		GateMinInterval: time.Millisecond,
		Webhook:         policy.DispatcherConfig{BaseBackoff: time.Millisecond},
	})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "lc", "items": 100}, http.StatusCreated)

	put := `{"rules":[{"name":"too-dirty","metric":"remaining","op":">","value":10}],
	         "webhook":{"url":"` + hook.URL + `"}}`
	req := httptest.NewRequest("PUT", "/v1/sessions/lc/policy", strings.NewReader(put))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT policy = %d (%s)", rec.Code, rec.Body.String())
	}
	var putOut map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &putOut)
	if putOut["action"] != "proceed" {
		t.Fatalf("fresh session PUT response action = %v, want proceed", putOut["action"])
	}

	// Clean phase: unanimous not-dirty votes keep remaining at 0.
	for task := 0; task < 4; task++ {
		ingestTask(t, srv, "lc", task*5, 5, 0)
	}
	dec := waitGateAction(t, srv, "lc", "proceed")
	if dec["armed"] != true {
		t.Fatalf("gate not armed: %v", dec)
	}

	// Degraded phase: minority-dirty votes (1 of 3 workers) raise the
	// remaining-error estimate ~2.5 per task; the rule trips past 10.
	for task := 4; task < 10; task++ {
		ingestTask(t, srv, "lc", task*5, 5, 1)
	}
	dec = waitGateAction(t, srv, "lc", "quarantine")
	vios := dec["violations"].([]any)
	if len(vios) != 1 || vios[0].(map[string]any)["rule"] != "too-dirty" {
		t.Fatalf("violations = %v", vios)
	}
	if dec["inputs"].(map[string]any)["remaining"].(float64) <= 10 {
		t.Fatalf("quarantine with remaining <= 10: %v", dec)
	}

	// The transition webhook arrives despite the injected 500 (one retry).
	deadline := time.Now().Add(5 * time.Second)
	for {
		hookMu.Lock()
		n := len(hookBodies)
		hookMu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook never delivered (hits=%d)", hookHits.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	hookMu.Lock()
	first := hookBodies[0]
	hookMu.Unlock()
	if first["action"] != "quarantine" || first["session"] != "lc" {
		t.Fatalf("webhook payload = %v", first)
	}
	if hookHits.Load() < 2 {
		t.Fatalf("hits = %d, want >= 2 (500 then retry)", hookHits.Load())
	}

	// A laxer policy swap re-evaluates synchronously: quarantine→proceed, and
	// that transition is a webhook too.
	lax := `{"rules":[{"name":"too-dirty","metric":"remaining","op":">","value":100000}],
	         "webhook":{"url":"` + hook.URL + `"}}`
	req = httptest.NewRequest("PUT", "/v1/sessions/lc/policy", strings.NewReader(lax))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT lax policy = %d", rec.Code)
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &putOut)
	if putOut["action"] != "proceed" {
		t.Fatalf("lax PUT action = %v, want proceed immediately", putOut["action"])
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		hookMu.Lock()
		n := len(hookBodies)
		hookMu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proceed-transition webhook never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hookMu.Lock()
	second := hookBodies[1]
	hookMu.Unlock()
	if second["action"] != "proceed" {
		t.Fatalf("second webhook payload = %v", second)
	}
}

// TestGateETagConditionalReads: the gate endpoint serves pre-serialized
// decisions with the decision version as ETag and answers If-None-Match with
// an empty 304.
func TestGateETagConditionalReads(t *testing.T) {
	srv := mustServer(t, serverConfig{GateMinInterval: time.Millisecond})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "et", "items": 10}, http.StatusCreated)
	putPolicy(t, srv, "et", `{"rules":[{"name":"r","metric":"remaining","op":">","value":5}]}`)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/et/gate", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET gate = %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on gate response")
	}

	req := httptest.NewRequest("GET", "/v1/sessions/et/gate", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("conditional GET = %d with %d bytes, want empty 304", rec.Code, rec.Body.Len())
	}

	// Mutation invalidates: the decision re-evaluates at a new version.
	ingestTask(t, srv, "et", 0, 3, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		req = httptest.NewRequest("GET", "/v1/sessions/et/gate", nil)
		req.Header.Set("If-None-Match", etag)
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			if rec.Header().Get("ETag") == etag {
				t.Fatal("fresh decision reused the old ETag")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate decision never advanced past the old ETag")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func putPolicy(t *testing.T, srv http.Handler, id, doc string) {
	t.Helper()
	req := httptest.NewRequest("PUT", "/v1/sessions/"+id+"/policy", strings.NewReader(doc))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT policy = %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestPolicyPersistsAcrossRestart: a session's policy rides its WAL meta; a
// rebuilt server over the same data dir serves the same policy and re-arms
// the gate without any client action.
func TestPolicyPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := serverConfig{DataDir: dir, Fsync: dqm.FsyncNever, GateMinInterval: time.Millisecond}
	srv := mustServer(t, cfg)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "dur", "items": 20}, http.StatusCreated)
	doc := `{"rules":[{"name":"r","metric":"remaining","op":">","value":3}],"min_tasks":1}`
	putPolicy(t, srv, "dur", doc)
	for task := 0; task < 4; task++ {
		ingestTask(t, srv, "dur", task*5, 5, 1)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	srv2.engine.BootRecovery()
	got := do(t, srv2, "GET", "/v1/sessions/dur/policy", nil, http.StatusOK)
	if got["source"] != "session" {
		t.Fatalf("policy source after restart = %v", got["source"])
	}
	var back map[string]any
	_ = json.Unmarshal([]byte(doc), &back)
	gotDoc, _ := json.Marshal(got["policy"])
	wantDoc, _ := json.Marshal(back)
	if string(gotDoc) != string(wantDoc) {
		t.Fatalf("policy after restart = %s, want %s", gotDoc, wantDoc)
	}
	// The recovered gate evaluates the recovered estimator state: 4 tasks of
	// minority-dirty votes put remaining ~10 > 3 → quarantine.
	dec := waitGateAction(t, srv2, "dur", "quarantine")
	if dec["tasks"].(float64) != 4 {
		t.Fatalf("recovered decision tasks = %v", dec["tasks"])
	}

	// DELETE drops it durably too.
	do(t, srv2, "DELETE", "/v1/sessions/dur/policy", nil, http.StatusNoContent)
	do(t, srv2, "GET", "/v1/sessions/dur/policy", nil, http.StatusNotFound)
	do(t, srv2, "GET", "/v1/sessions/dur/gate", nil, http.StatusNotFound)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3 := mustServer(t, cfg)
	defer srv3.Close()
	srv3.engine.BootRecovery()
	do(t, srv3, "GET", "/v1/sessions/dur/policy", nil, http.StatusNotFound)
}

// TestServerDefaultPolicy: -policy-file applies to every session without its
// own policy; a session PUT overrides it, DELETE falls back to it.
func TestServerDefaultPolicy(t *testing.T) {
	def := json.RawMessage(`{"rules":[{"name":"default-rule","metric":"switch_total","op":">","value":1000}]}`)
	srv := mustServer(t, serverConfig{DefaultPolicy: def, GateMinInterval: time.Millisecond})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "dp", "items": 10}, http.StatusCreated)

	got := do(t, srv, "GET", "/v1/sessions/dp/policy", nil, http.StatusOK)
	if got["source"] != "server_default" {
		t.Fatalf("source = %v, want server_default", got["source"])
	}
	dec := gateDecision(t, srv, "dp")
	if dec["action"] != "proceed" {
		t.Fatalf("default gate decision = %v", dec)
	}

	putPolicy(t, srv, "dp", `{"rules":[{"name":"own","metric":"remaining","op":">","value":2}]}`)
	got = do(t, srv, "GET", "/v1/sessions/dp/policy", nil, http.StatusOK)
	if got["source"] != "session" {
		t.Fatalf("source after PUT = %v, want session", got["source"])
	}

	// DELETE returns to the default (still gated), not to 404.
	do(t, srv, "DELETE", "/v1/sessions/dp/policy", nil, http.StatusNoContent)
	got = do(t, srv, "GET", "/v1/sessions/dp/policy", nil, http.StatusOK)
	if got["source"] != "server_default" {
		t.Fatalf("source after DELETE = %v, want server_default", got["source"])
	}
	dec = waitGateAction(t, srv, "dp", "proceed")
	if dec["violations"] != nil {
		t.Fatalf("default policy decision = %v", dec)
	}
}

// TestGateDroppedWithSession: deleting a session tears down its gate (a
// recreated session under the same id starts ungated).
func TestGateDroppedWithSession(t *testing.T) {
	srv := mustServer(t, serverConfig{GateMinInterval: time.Millisecond})
	defer srv.Close()
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "gd", "items": 10}, http.StatusCreated)
	putPolicy(t, srv, "gd", `{"rules":[{"name":"r","metric":"remaining","op":">","value":5}]}`)
	gateDecision(t, srv, "gd")
	do(t, srv, "DELETE", "/v1/sessions/gd", nil, http.StatusNoContent)
	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "gd", "items": 10}, http.StatusCreated)
	do(t, srv, "GET", "/v1/sessions/gd/gate", nil, http.StatusNotFound)
	do(t, srv, "GET", "/v1/sessions/gd/policy", nil, http.StatusNotFound)
}

// TestGateDriftRuleWiring: a windowed session feeds the decayed-window drift
// ratio into drift_ratio rules; a windowless session reports the rule as
// unavailable instead of guessing.
func TestGateDriftRuleWiring(t *testing.T) {
	srv := mustServer(t, serverConfig{GateMinInterval: time.Millisecond})
	defer srv.Close()
	doc := `{"rules":[{"name":"drifting","metric":"drift_ratio","op":">","value":0.2}]}`

	do(t, srv, "POST", "/v1/sessions", map[string]any{"id": "flat", "items": 50}, http.StatusCreated)
	putPolicy(t, srv, "flat", doc)
	ingestTask(t, srv, "flat", 0, 5, 1)
	dec := waitGateAction(t, srv, "flat", "proceed")
	unavailable, _ := dec["unavailable"].([]any)
	if len(unavailable) != 1 || unavailable[0] != "drifting" {
		t.Fatalf("windowless drift rule not reported unavailable: %v", dec)
	}

	do(t, srv, "POST", "/v1/sessions", map[string]any{
		"id": "win", "items": 50,
		"config": map[string]any{"window": map[string]any{"size": 2, "decay_alpha": 0.5}},
	}, http.StatusCreated)
	putPolicy(t, srv, "win", doc)
	// Minority-dirty tasks: the decayed window's remaining estimate tracks
	// the recent (dirty) stream, and the drift ratio becomes available and
	// positive once a window completes.
	for task := 0; task < 6; task++ {
		ingestTask(t, srv, "win", task*5, 5, 1)
	}
	dec = waitGateAction(t, srv, "win", "quarantine")
	inputs := dec["inputs"].(map[string]any)
	if _, ok := inputs["drift_ratio"]; !ok {
		t.Fatalf("windowed decision lacks drift_ratio input: %v", dec)
	}
}
