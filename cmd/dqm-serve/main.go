// Command dqm-serve exposes the DQM session engine over HTTP, so cleaning
// pipelines can stream worker votes for many datasets concurrently and poll
// the data-quality estimates while cleaning is in flight — the online-service
// shape the paper's metric is designed for.
//
// Usage:
//
//	dqm-serve [-addr :8334] [-shards 32] [-max-sessions 0] [-max-batch 100000]
//	          [-data-dir DIR] [-fsync batch|always|never] [-fsync-interval 100ms]
//	          [-policy-file policy.json] [-pprof] [-log-stats-interval 30s]
//
// With -data-dir the engine is durable: every session write-ahead-journals
// its votes under DIR, all journaled sessions are recovered on boot with
// bit-identical estimator state, and SIGINT/SIGTERM trigger a graceful
// shutdown — in-flight requests drain, then a final checkpoint of every live
// session is flushed. -fsync selects the journal flush policy: "always"
// fsyncs every ingest batch, "batch" (default) group-commits with at most
// -fsync-interval of acknowledged-but-unsynced writes, "never" leaves
// flushing to the OS.
//
// Endpoints (JSON request/response bodies):
//
//	GET    /healthz                        liveness + operational state (sessions,
//	                                       uptime, data dir, fsync policy)
//	GET    /metrics                        Prometheus text exposition (engine,
//	                                       WAL and HTTP instruments)
//	GET    /debug/pprof/                   runtime profiles (with -pprof)
//	GET    /v1/estimators                  registered estimator names
//	POST   /v1/sessions                    create a session
//	GET    /v1/sessions                    list session ids
//	GET    /v1/sessions/{id}               session info (incl. mutation version)
//	DELETE /v1/sessions/{id}               delete a session (and its snapshots)
//	POST   /v1/sessions/{id}/votes         append a vote batch / task entries
//	GET    /v1/sessions/{id}/estimates     estimates (?ci=0.95&replicates=200,
//	                                       ?window=current|last|decayed); sends
//	                                       ETag:"<version>", honors If-None-Match
//	GET    /v1/sessions/{id}/watch         SSE stream of estimate updates
//	                                       (?cursor=, ?min_interval=, ?window=;
//	                                       Last-Event-ID resumes)
//	POST   /v1/estimates:batch             estimates for many sessions at once
//	POST   /v1/sessions/{id}/snapshots     snapshot the estimator state
//	GET    /v1/sessions/{id}/snapshots     list snapshots
//	POST   /v1/sessions/{id}/restore       restore a snapshot
//	GET    /v1/sessions/{id}/gate          cached quality-gate decision
//	                                       (ETag:"<version>", honors If-None-Match)
//	PUT    /v1/sessions/{id}/policy        attach/replace the session's gate policy
//	GET    /v1/sessions/{id}/policy        effective policy + source
//	DELETE /v1/sessions/{id}/policy        remove the session's own policy
//
// Errors are a uniform JSON envelope {"error":{"code","message","details"}}
// with stable machine-readable codes (see docs/API.md); partial-ingest
// failures carry "ingested"/"tasks_ended" resume counters in details.
//
// Quality gates: a policy (rules over remaining errors, SWITCH total,
// bootstrap-CI upper bound, windowed drift ratio) attaches per session via
// PUT .../policy, or to every session without its own via -policy-file. Each
// gated session gets an event-driven evaluator that re-runs on mutation (no
// polling) and caches the decision pre-serialized; action transitions
// (proceed/warn/quarantine) POST the decision document to the policy's
// webhook through a bounded async dispatcher with retry and backoff.
//
// Estimate reads ride a per-session version-guarded cache: polling an
// unchanged session is lock-free and O(1), If-None-Match on the current
// version answers 304 from one atomic check, and all watch subscribers of a
// session share a fan-out hub (internal/hub) that serializes each version's
// SSE frame once and multicasts the bytes with coalesce-to-latest semantics
// (floor: -watch-min-interval), woken by the engine's version-change
// notifier rather than per-subscriber tickers. Sessions created with
// "config":{"window":{"size":N,...}} additionally serve windowed estimates —
// the quality of the last N tasks — via ?window=.
//
// A vote batch is either {"votes": [{"item","worker","dirty"}...],
// "end_task": true} for one task, or {"entries": [{"task","item","worker",
// "dirty"}...]} in the votelog interchange format, with task boundaries at
// every task-id change (and after the final entry). Entries are applied one
// task at a time, each task atomically: on a bad entry mid-batch the
// already-completed tasks stay applied, and the error response reports
// "ingested" (votes applied) and "tasks_ended" so the client can resume from
// the exact failure point instead of guessing.
//
// The votes endpoint also accepts Content-Type: application/x-dqmv — the
// binary vote-log encoding (what `dqm-gen -votes-format binary` writes).
// Binary bodies skip JSON entirely: each task's raw vote bytes are
// journaled verbatim as one columnar WAL record and applied from decoded
// columns, with the same per-task atomicity, task-boundary rule, and resulting
// estimates as the equivalent {"entries": ...} request. Unknown content types
// get a 415 naming the accepted encodings.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dqm"
	"dqm/internal/hub"
	"dqm/internal/metrics"
	"dqm/internal/policy"
	"dqm/internal/votelog"
)

func main() {
	fs := flag.NewFlagSet("dqm-serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8334", "listen address")
		shards      = fs.Int("shards", 32, "session-table shards (rounded up to a power of two)")
		maxSessions = fs.Int("max-sessions", 0, "max live sessions, LRU-evicted beyond (0 = unlimited)")
		maxBatch    = fs.Int("max-batch", 100000, "max votes per ingest request")
		maxBody     = fs.Int64("max-body-bytes", 32<<20, "max JSON request body size in bytes")
		watchMinIv  = fs.Duration("watch-min-interval", 250*time.Millisecond, "min interval between watch (SSE) pushes per subscriber")
		dataDir     = fs.String("data-dir", "", "durable data directory (empty = in-memory only)")
		fsyncMode   = fs.String("fsync", "batch", "journal fsync policy: batch, always or never")
		fsyncEvery  = fs.Duration("fsync-interval", 100*time.Millisecond, "max fsync staleness under -fsync batch")
		recoverPar  = fs.Int("recovery-parallelism", 0, "concurrent session replays during boot recovery (0 = GOMAXPROCS, 1 = serial)")
		bootPar     = fs.Int("bootstrap-parallelism", 0, "worker goroutines per bootstrap CI (0 = per-CPU default, 1 = serial; intervals are identical at any setting)")
		drainWait   = fs.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		enablePprof = fs.Bool("pprof", false, "expose /debug/pprof/ runtime profiles")
		statsEvery  = fs.Duration("log-stats-interval", 0, "log a one-line stats summary at this interval (0 = off)")
		policyFile  = fs.String("policy-file", "", "JSON quality-gate policy applied to every session without its own (see docs/API.md)")
	)
	fs.Parse(os.Args[1:])

	fsync, err := parseFsync(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}
	var defaultPolicy json.RawMessage
	if *policyFile != "" {
		raw, err := os.ReadFile(*policyFile)
		if err != nil {
			log.Fatalf("dqm-serve: -policy-file: %v", err)
		}
		if _, err := policy.Parse(raw); err != nil {
			log.Fatalf("dqm-serve: -policy-file %s: %v", *policyFile, err)
		}
		defaultPolicy = raw
	}
	srv, err := newServer(serverConfig{
		Shards:               *shards,
		MaxSessions:          *maxSessions,
		MaxBatch:             *maxBatch,
		MaxBodyBytes:         *maxBody,
		WatchMinInterval:     *watchMinIv,
		DataDir:              *dataDir,
		Fsync:                fsync,
		FsyncInterval:        *fsyncEvery,
		RecoveryParallelism:  *recoverPar,
		BootstrapParallelism: *bootPar,
		EnablePprof:          *enablePprof,
		LogStatsInterval:     *statsEvery,
		DefaultPolicy:        defaultPolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		recovered, elapsed := srv.engine.BootRecovery()
		log.Printf("dqm-serve durable in %s (fsync=%s), recovered %d session(s) in %s",
			*dataDir, *fsyncMode, recovered, elapsed.Round(time.Millisecond))
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slowloris/idle-connection bounds. No WriteTimeout: the watch
		// endpoint streams SSE indefinitely by design; everything else
		// responds promptly or is bounded by the body limit.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests up to the
	// deadline, then flush a final checkpoint of every live session.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("dqm-serve listening on %s", *addr)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("dqm-serve shutting down (drain deadline %s)", *drainWait)
		sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("dqm-serve: drain incomplete: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("dqm-serve: final checkpoint failed: %v", err)
	}
	log.Printf("dqm-serve stopped")
}

// parseFsync maps the -fsync flag onto the engine policy.
func parseFsync(mode string) (dqm.FsyncPolicy, error) {
	switch mode {
	case "batch":
		return dqm.FsyncBatch, nil
	case "always":
		return dqm.FsyncAlways, nil
	case "never":
		return dqm.FsyncNever, nil
	default:
		return 0, fmt.Errorf("dqm-serve: unknown -fsync %q (want batch, always or never)", mode)
	}
}

// serverConfig parameterizes the HTTP layer.
type serverConfig struct {
	Shards      int
	MaxSessions int
	// MaxBatch bounds the votes accepted per ingest request; 0 selects
	// 100000.
	MaxBatch int
	// MaxSnapshots bounds retained snapshots per session (oldest dropped);
	// 0 selects 16.
	MaxSnapshots int
	// MaxBodyBytes bounds JSON request bodies; 0 selects 32 MiB.
	MaxBodyBytes int64
	// WatchMinInterval is the per-subscriber floor between SSE pushes
	// (clients may ask for a LONGER interval via ?min_interval=); 0 selects
	// 250ms.
	WatchMinInterval time.Duration
	// DataDir enables the durable engine (empty = in-memory only).
	DataDir string
	// Fsync and FsyncInterval tune the journal flush policy under DataDir.
	Fsync         dqm.FsyncPolicy
	FsyncInterval time.Duration
	// RecoveryParallelism bounds concurrent session replays during boot
	// recovery; 0 selects GOMAXPROCS, 1 recovers serially.
	RecoveryParallelism int
	// BootstrapParallelism bounds worker goroutines per bootstrap CI; 0
	// selects a per-CPU default, 1 computes serially. Intervals are
	// bit-identical at any setting.
	BootstrapParallelism int
	// EnablePprof exposes /debug/pprof/ runtime profiles.
	EnablePprof bool
	// LogStatsInterval, when positive, logs a one-line operational summary
	// (sessions, ingest rate, cache hit ratio, subscribers) at this interval.
	LogStatsInterval time.Duration
	// DefaultPolicy, when non-empty, is a validated quality-gate policy
	// document applied to every session that has none of its own
	// (the -policy-file flag).
	DefaultPolicy json.RawMessage
	// GateMinInterval rate-limits per-session gate re-evaluation under bursty
	// ingest (evaluations coalesce to the trailing edge); 0 selects 50ms.
	GateMinInterval time.Duration
	// Webhook tunes the shared transition-webhook dispatcher; zero fields
	// select the policy package defaults.
	Webhook policy.DispatcherConfig
}

// server is the HTTP front of one dqm.Engine. Snapshots live server-side,
// keyed per session, so clients checkpoint and roll back with ids instead of
// shipping estimator state over the wire.
type server struct {
	engine *dqm.Engine
	mux    *http.ServeMux
	cfg    serverConfig

	sessionSeq atomic.Int64

	snapMu  sync.Mutex
	snaps   map[string][]namedSnapshot
	snapSeq atomic.Int64

	// Watch fan-out plane (see hub.go): encode-once broadcast of estimate
	// frames plus the conditional-read payload cache behind ETag/304.
	hub             *hub.Hub
	watchEncodeErrs *metrics.Counter

	// Quality-gate plane (see gate.go): one event-driven policy.Gate per
	// gated session plus the shared bounded webhook dispatcher.
	gateMu     sync.Mutex
	gates      map[string]*policy.Gate
	dispatcher *policy.Dispatcher

	// Observability plane (see observability.go).
	started     time.Time
	reg         *metrics.Registry
	watchers    *metrics.Gauge
	inflight    *metrics.Gauge
	reqCounters sync.Map // "route:code" -> *metrics.Counter
	stats       *statsLogger
}

type namedSnapshot struct {
	id   string
	snap *dqm.Snapshot
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 100000
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 16
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.WatchMinInterval <= 0 {
		cfg.WatchMinInterval = 250 * time.Millisecond
	}
	if cfg.GateMinInterval <= 0 {
		cfg.GateMinInterval = 50 * time.Millisecond
	}
	s := &server{
		mux:   http.NewServeMux(),
		cfg:   cfg,
		snaps: make(map[string][]namedSnapshot),
		gates: make(map[string]*policy.Gate),
	}
	s.dispatcher = policy.NewDispatcher(cfg.Webhook)
	engineCfg := dqm.EngineConfig{
		Shards:      cfg.Shards,
		MaxSessions: cfg.MaxSessions,
		// LRU-evicted sessions must not leak their server-side snapshots (or
		// resurrect them under a reused id), and any watch streams must end
		// rather than go silently stale on the detached session object (the
		// nil guard covers evictions during engine recovery, before the hub
		// exists).
		OnEvict: func(id string) {
			s.dropSnapshots(id)
			s.dropGate(id)
			if s.hub != nil {
				s.hub.Drop(id)
			}
		},
		Fsync:                cfg.Fsync,
		FsyncInterval:        cfg.FsyncInterval,
		RecoveryParallelism:  cfg.RecoveryParallelism,
		BootstrapParallelism: cfg.BootstrapParallelism,
	}
	if cfg.DataDir != "" {
		eng, err := dqm.OpenEngine(cfg.DataDir, engineCfg)
		if err != nil {
			return nil, err
		}
		s.engine = eng
	} else {
		s.engine = dqm.NewEngine(engineCfg)
	}
	// Seed the auto-id counter past any "session-N" recovered from a durable
	// data dir: the counter itself restarts at zero with the process, and
	// without the seed every POST /v1/sessions without an id would 409
	// against the journaled sessions of the previous run.
	for _, id := range s.engine.SessionIDs() {
		if rest, ok := strings.CutPrefix(id, "session-"); ok {
			if n, err := strconv.ParseInt(rest, 10, 64); err == nil && n > s.sessionSeq.Load() {
				s.sessionSeq.Store(n)
			}
		}
	}
	s.setupObservability()
	s.setupHub()
	s.route("GET /healthz", "healthz", s.handleHealth)
	s.route("GET /v1/estimators", "estimators", s.handleEstimators)
	s.route("POST /v1/sessions", "create_session", s.handleCreateSession)
	s.route("GET /v1/sessions", "list_sessions", s.handleListSessions)
	s.route("GET /v1/sessions/{id}", "session_info", s.handleSessionInfo)
	s.route("DELETE /v1/sessions/{id}", "delete_session", s.handleDeleteSession)
	s.route("POST /v1/sessions/{id}/votes", "votes", s.handleAppendVotes)
	s.route("GET /v1/sessions/{id}/estimates", "estimates", s.handleEstimates)
	s.route("GET /v1/sessions/{id}/watch", "watch", s.handleWatch)
	s.route("POST /v1/estimates:batch", "batch_estimates", s.handleBatchEstimates)
	s.route("POST /v1/sessions/{id}/snapshots", "create_snapshot", s.handleCreateSnapshot)
	s.route("GET /v1/sessions/{id}/snapshots", "list_snapshots", s.handleListSnapshots)
	s.route("POST /v1/sessions/{id}/restore", "restore", s.handleRestore)
	s.route("GET /v1/sessions/{id}/gate", "gate", s.handleGate)
	s.route("PUT /v1/sessions/{id}/policy", "put_policy", s.handlePutPolicy)
	s.route("GET /v1/sessions/{id}/policy", "get_policy", s.handleGetPolicy)
	s.route("DELETE /v1/sessions/{id}/policy", "delete_policy", s.handleDeletePolicy)
	// Gates for sessions recovered from a durable data dir (their policies
	// ride session meta) and for the server default policy attach now, so the
	// alerting plane is live before the first request.
	for _, id := range s.engine.SessionIDs() {
		if sess, ok := s.engine.Session(id); ok {
			s.ensureGate(sess)
		}
	}
	if cfg.LogStatsInterval > 0 {
		s.stats = s.startStatsLogger(cfg.LogStatsInterval)
	}
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the stats logger and the gate plane (every gate's pump, then
// the webhook dispatcher), then flushes a final checkpoint of every live
// session and closes the engine's journals (no-op for in-memory engines).
func (s *server) Close() error {
	s.stats.Stop()
	s.gateMu.Lock()
	gates := make([]*policy.Gate, 0, len(s.gates))
	for id, g := range s.gates {
		gates = append(gates, g)
		delete(s.gates, id)
	}
	s.gateMu.Unlock()
	for _, g := range gates {
		g.Close()
	}
	s.dispatcher.Close()
	return s.engine.Close()
}

// dropSnapshots releases every server-side snapshot of a session.
func (s *server) dropSnapshots(id string) {
	s.snapMu.Lock()
	delete(s.snaps, id)
	s.snapMu.Unlock()
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// decodeBody strictly decodes one JSON object into v. The body is wrapped in
// http.MaxBytesReader (not a silent LimitReader): an oversized body gets a
// clean 413 and the server closes the connection instead of buffering an
// unbounded request into memory.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, codeInvalidBody, "bad request body: %v", err)
		return false
	}
	return true
}

// session resolves the {id} path value, writing a 404 on a miss. Resolution
// also re-arms the quality gate: a session revived from disk after LRU
// eviction lost its gate with the eviction, and must not serve ingest with
// its alerting plane silently detached (no-op for ungated sessions).
func (s *server) session(w http.ResponseWriter, r *http.Request) (*dqm.Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.engine.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeSessionNotFound, "unknown session %q", id)
		return nil, false
	}
	s.ensureGate(sess)
	return sess, true
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Probes and dashboards read operational state here without scraping
	// /metrics: how long the process has been up, where (and how durably) it
	// persists, and how loaded it is.
	health := map[string]any{
		"status":            "ok",
		"sessions":          s.engine.NumSessions(),
		"evictions":         s.engine.Evictions(),
		"durable":           s.engine.Durable(),
		"uptime_seconds":    int64(time.Since(s.started).Seconds()),
		"watch_subscribers": s.watchers.Value(),
	}
	if s.engine.Durable() {
		health["data_dir"] = s.cfg.DataDir
		health["fsync"] = s.cfg.Fsync.String()
		recovered, elapsed := s.engine.BootRecovery()
		health["recovered_sessions"] = recovered
		health["recovery_seconds"] = elapsed.Seconds()
	}
	writeJSON(w, http.StatusOK, health)
}

func (s *server) handleEstimators(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"estimators": dqm.EstimatorNames()})
}

// sessionConfigJSON is the wire form of dqm.Config.
type sessionConfigJSON struct {
	VChaoShift      int               `json:"v_chao_shift,omitempty"`
	TiePolicy       string            `json:"tie_policy,omitempty"` // "tie-flip" | "strict-majority"
	TrendWindow     int               `json:"trend_window,omitempty"`
	CapToPopulation bool              `json:"cap_to_population,omitempty"`
	TrackConfidence bool              `json:"track_confidence,omitempty"`
	Estimators      []string          `json:"estimators,omitempty"`
	Window          *windowConfigJSON `json:"window,omitempty"`
}

// windowConfigJSON is the wire form of dqm.WindowConfig.
type windowConfigJSON struct {
	Size       int     `json:"size"`
	Stride     int     `json:"stride,omitempty"`
	DecayAlpha float64 `json:"decay_alpha,omitempty"`
}

func (c sessionConfigJSON) toConfig() (dqm.Config, error) {
	cfg := dqm.Defaults()
	if c.VChaoShift != 0 {
		cfg.VChaoShift = c.VChaoShift
	}
	switch c.TiePolicy {
	case "", "tie-flip":
	case "strict-majority":
		cfg.TiePolicy = dqm.StrictMajority
	default:
		return cfg, fmt.Errorf("unknown tie_policy %q (want tie-flip or strict-majority)", c.TiePolicy)
	}
	cfg.TrendWindow = c.TrendWindow
	cfg.CapToPopulation = c.CapToPopulation
	cfg.TrackConfidence = c.TrackConfidence
	cfg.Estimators = c.Estimators
	if c.Window != nil {
		w := dqm.WindowConfig{Size: c.Window.Size, Stride: c.Window.Stride, DecayAlpha: c.Window.DecayAlpha}
		if err := w.Validate(); err != nil {
			return cfg, err
		}
		cfg.Window = &w
	}
	return cfg, nil
}

func (s *server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID     string            `json:"id,omitempty"`
		Items  int               `json:"items"`
		Config sessionConfigJSON `json:"config,omitempty"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	id := req.ID
	auto := id == ""
	var sess *dqm.Session
	// An auto id can still collide (a client created "session-N" by hand, or
	// another server shares the data dir); retry with fresh ids a few times
	// before giving up instead of surfacing a 409 the client cannot act on.
	for attempt := 0; ; attempt++ {
		if auto {
			id = fmt.Sprintf("session-%d", s.sessionSeq.Add(1))
		}
		sess, err = s.engine.CreateSession(id, req.Items, cfg)
		if err == nil {
			break
		}
		exists := strings.Contains(err.Error(), "already exists")
		if auto && exists && attempt < 16 {
			continue
		}
		status, code := http.StatusBadRequest, codeInvalidArgument
		if exists {
			status, code = http.StatusConflict, codeSessionExists
		}
		writeError(w, status, code, "%v", err)
		return
	}
	s.ensureGate(sess)
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":         sess.ID(),
		"items":      sess.NumItems(),
		"estimators": sess.EstimatorNames(),
	})
}

// handleListSessions pages through session ids in lexicographic order.
// ?limit= caps the page (default 1000, max 10000) and ?cursor= resumes after
// the given id; a truncated response carries "next_cursor" (the last id of
// the page), absent on the final page. Cursors are plain session ids, so a
// listing stays correct across concurrent creates/deletes: new ids sort into
// their place and a deleted cursor id still orders the resume point.
func (s *server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	const (
		defaultListLimit = 1000
		maxListLimit     = 10000
	)
	q := r.URL.Query()
	limit := defaultListLimit
	if lq := q.Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "bad limit %q (want a positive integer)", lq)
			return
		}
		if limit = n; limit > maxListLimit {
			limit = maxListLimit
		}
	}
	ids := s.engine.SessionIDs()
	sort.Strings(ids)
	if cq := q.Get("cursor"); cq != "" {
		// Resume strictly after the cursor id (SearchStrings finds the first
		// id > cursor whether or not the cursor itself still exists).
		ids = ids[sort.SearchStrings(ids, cq+"\x00"):]
	}
	resp := map[string]any{}
	if len(ids) > limit {
		ids = ids[:limit]
		resp["next_cursor"] = ids[len(ids)-1]
	}
	resp["sessions"] = ids
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	info := map[string]any{
		"id":         sess.ID(),
		"items":      sess.NumItems(),
		"workers":    sess.NumWorkers(),
		"votes":      sess.TotalVotes(),
		"tasks":      sess.Tasks(),
		"estimators": sess.EstimatorNames(),
		"version":    sess.Version(),
		"windowed":   sess.Windowed(),
		"created_at": sess.CreatedAt().UTC().Format(time.RFC3339Nano),
		"last_used":  sess.LastUsed().UTC().Format(time.RFC3339Nano),
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.engine.DeleteSession(id) {
		writeError(w, http.StatusNotFound, codeSessionNotFound, "unknown session %q", id)
		return
	}
	s.dropSnapshots(id)
	s.dropGate(id)
	s.hub.Drop(id)
	w.WriteHeader(http.StatusNoContent)
}

// voteJSON is one wire vote.
type voteJSON struct {
	Item   int  `json:"item"`
	Worker int  `json:"worker"`
	Dirty  bool `json:"dirty"`
}

// entryJSON is the votelog interchange form: votes grouped by task id.
type entryJSON struct {
	Task   int  `json:"task"`
	Item   int  `json:"item"`
	Worker int  `json:"worker"`
	Dirty  bool `json:"dirty"`
}

// contentTypeDQMV is the media type of the binary columnar vote-log encoding
// (internal/votelog's DQMV format).
const contentTypeDQMV = votelog.ContentTypeDQMV

func (s *server) handleAppendVotes(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	// Dispatch on the request encoding instead of assuming JSON: binary DQMV
	// bodies take the columnar fast path, JSON (or an absent header) takes the
	// classic path, and anything else is a clean 415 naming what is accepted.
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil {
			writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMediaType,
				"malformed Content-Type %q (accepted: application/json, %s)", ct, contentTypeDQMV)
			return
		}
		switch mt {
		case contentTypeDQMV:
			s.handleAppendDQMV(w, r, sess)
			return
		case "application/json", "text/json":
		default:
			writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMediaType,
				"unsupported Content-Type %q (accepted: application/json, %s)", mt, contentTypeDQMV)
			return
		}
	}
	var req struct {
		Votes   []voteJSON  `json:"votes,omitempty"`
		EndTask bool        `json:"end_task,omitempty"`
		Entries []entryJSON `json:"entries,omitempty"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Votes) > 0 && len(req.Entries) > 0 {
		writeError(w, http.StatusBadRequest, codeInvalidBatch, "provide either votes or entries, not both")
		return
	}
	if n := len(req.Votes) + len(req.Entries); n == 0 && !req.EndTask {
		writeError(w, http.StatusBadRequest, codeInvalidBatch, "empty batch")
		return
	} else if n > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, codeBatchTooLarge, "batch of %d votes exceeds limit %d", n, s.cfg.MaxBatch)
		return
	}

	tasksDone := 0
	votesApplied := 0
	if len(req.Entries) > 0 {
		// Replay with a task boundary at every task-id change and after the
		// final entry (the votelog contract). Atomicity is per task: each
		// task's votes are validated and applied as one batch, so a bad entry
		// fails before its own task is applied — but tasks flushed earlier in
		// the request stay applied. The error response therefore reports what
		// actually landed ("ingested", "tasks_ended"), so clients resume from
		// the failure point instead of re-sending applied tasks.
		batch := make([]dqm.Vote, 0, len(req.Entries))
		flush := func() error {
			if err := sess.AppendVotes(batch, true); err != nil {
				return err
			}
			tasksDone++
			votesApplied += len(batch)
			batch = batch[:0]
			return nil
		}
		for i, e := range req.Entries {
			if i > 0 && req.Entries[i-1].Task != e.Task {
				if err := flush(); err != nil {
					writePartialIngest(w, sess, err, votesApplied, tasksDone)
					return
				}
			}
			batch = append(batch, dqm.Vote{Item: e.Item, Worker: e.Worker, Dirty: e.Dirty})
		}
		if err := flush(); err != nil {
			writePartialIngest(w, sess, err, votesApplied, tasksDone)
			return
		}
	} else {
		batch := make([]dqm.Vote, len(req.Votes))
		for i, v := range req.Votes {
			batch[i] = dqm.Vote{Item: v.Item, Worker: v.Worker, Dirty: v.Dirty}
		}
		if err := sess.AppendVotes(batch, req.EndTask); err != nil {
			writeError(w, ingestStatus(err), ingestCode(err), "%v", err)
			return
		}
		votesApplied = len(req.Votes)
		if req.EndTask {
			tasksDone = 1
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":    votesApplied,
		"tasks_ended": tasksDone,
		"total_votes": sess.TotalVotes(),
		"tasks":       sess.Tasks(),
	})
}

// handleAppendDQMV ingests a binary DQMV vote log: the body is split into
// per-task blocks without decoding votes into structs, and each block's raw
// bytes travel verbatim from the wire into one columnar WAL record — no
// per-vote JSON decode, no per-vote re-encode on the durability path. Task
// boundaries follow the format's task-id changes plus one after the final
// vote, so the same log ingested here and via {"entries": ...} yields
// byte-identical estimates. Atomicity matches the entries path: per task,
// with partial progress reported on failure.
func (s *server) handleAppendDQMV(w http.ResponseWriter, r *http.Request, sess *dqm.Session) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, codeInvalidBody, "reading request body: %v", err)
		return
	}
	blocks, err := votelog.SplitBinaryTasks(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidBatch, "%v", err)
		return
	}
	if len(blocks) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidBatch, "empty batch")
		return
	}
	total := 0
	for _, b := range blocks {
		total += b.Votes
	}
	if total > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, codeBatchTooLarge, "batch of %d votes exceeds limit %d", total, s.cfg.MaxBatch)
		return
	}
	votesApplied, tasksDone := 0, 0
	for i, b := range blocks {
		endTask := i+1 == len(blocks) || blocks[i+1].Task != b.Task
		n, err := sess.AppendColumns(b.Raw, endTask)
		if err != nil {
			writePartialIngest(w, sess, err, votesApplied, tasksDone)
			return
		}
		votesApplied += n
		if endTask {
			tasksDone++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":    votesApplied,
		"tasks_ended": tasksDone,
		"total_votes": sess.TotalVotes(),
		"tasks":       sess.Tasks(),
	})
}

// ingestStatus classifies an ingest failure: journal (disk) faults are the
// server's problem, everything else is the request's.
func ingestStatus(err error) int {
	if dqm.IsJournalError(err) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writePartialIngest reports an entries-batch failure together with the
// tasks/votes that were already applied (per-task atomicity: completed tasks
// are not rolled back). The progress counters ride the envelope's details so
// clients resume from the exact failure point.
func writePartialIngest(w http.ResponseWriter, sess *dqm.Session, err error, votesApplied, tasksDone int) {
	writeErrorDetails(w, ingestStatus(err), ingestCode(err), map[string]any{
		"ingested":    votesApplied,
		"tasks_ended": tasksDone,
		"total_votes": sess.TotalVotes(),
		"tasks":       sess.Tasks(),
	}, "%v", err)
}

// estimatesJSON is the wire form of dqm.Estimates.
type estimatesJSON struct {
	Nominal   float64            `json:"nominal"`
	Voting    float64            `json:"voting"`
	Chao92    float64            `json:"chao92"`
	VChao92   float64            `json:"v_chao92"`
	Switch    switchJSON         `json:"switch"`
	Remaining float64            `json:"remaining"`
	Extra     map[string]float64 `json:"extra,omitempty"`
	Tasks     int64              `json:"tasks"`
	Votes     int64              `json:"votes"`
	// Version is the session's mutation counter at (or just before) the
	// read; pass it back as the watch cursor to resume change detection.
	Version  uint64      `json:"version"`
	Window   *windowJSON `json:"window,omitempty"`
	SwitchCI *ciJSON     `json:"switch_ci,omitempty"`
}

// windowJSON describes which task span a windowed estimate covers.
type windowJSON struct {
	Kind      string `json:"kind"`
	StartTask int64  `json:"start_task"`
	EndTask   int64  `json:"end_task"`
	Tasks     int64  `json:"tasks"`
	Complete  bool   `json:"complete"`
}

type switchJSON struct {
	Total             float64 `json:"total"`
	XiPos             float64 `json:"xi_pos"`
	XiNeg             float64 `json:"xi_neg"`
	RemainingSwitches float64 `json:"remaining_switches"`
	Trend             string  `json:"trend"`
}

type ciJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

func estimatesBody(e dqm.Estimates) estimatesJSON {
	trend := "flat"
	if e.Switch.TrendUp {
		trend = "up"
	} else if e.Switch.TrendDown {
		trend = "down"
	}
	return estimatesJSON{
		Nominal: e.Nominal,
		Voting:  e.Voting,
		Chao92:  e.Chao92,
		VChao92: e.VChao92,
		Switch: switchJSON{
			Total:             e.Switch.Total,
			XiPos:             e.Switch.XiPos,
			XiNeg:             e.Switch.XiNeg,
			RemainingSwitches: e.Switch.RemainingSwitches,
			Trend:             trend,
		},
		Remaining: e.Remaining(),
		Extra:     e.Extra,
	}
}

func estimatesToJSON(sess *dqm.Session) estimatesJSON {
	// Version is read BEFORE the estimates: if the session mutates between
	// the two loads the payload may be newer than the version, so a watcher
	// resuming from it re-delivers rather than skips (at-least-once).
	v := sess.Version()
	out := estimatesBody(sess.Estimates())
	out.Tasks = sess.Tasks()
	out.Votes = sess.TotalVotes()
	out.Version = v
	return out
}

// windowedToJSON evaluates one windowed view of the session.
func windowedToJSON(sess *dqm.Session, kind dqm.WindowKind) (estimatesJSON, error) {
	v := sess.Version()
	we, err := sess.WindowEstimates(kind)
	if err != nil {
		return estimatesJSON{}, err
	}
	out := estimatesBody(we.Estimates)
	out.Tasks = sess.Tasks()
	out.Votes = sess.TotalVotes()
	out.Version = v
	out.Window = &windowJSON{
		Kind:      we.Kind.String(),
		StartTask: we.Start,
		EndTask:   we.End,
		Tasks:     we.Tasks,
		Complete:  we.Complete,
	}
	return out, nil
}

func (s *server) handleEstimates(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if q.Get("ci") == "" {
		// Plain and windowed reads ride the hub's encode-once payload cache
		// and the ETag conditional-read plane; only the bootstrap-CI read —
		// fresh randomized compute by definition — bypasses it below.
		view := hub.ViewAll
		if wq := q.Get("window"); wq != "" {
			kind, err := dqm.ParseWindowKind(wq)
			if err != nil {
				writeError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
				return
			}
			view = viewForKind(kind)
		}
		// 304 pre-check before touching the cache: the client's tag matching
		// the live version (with nothing staged) proves the payload it holds
		// is current, whatever view it is — version guards them all.
		etag := `"` + strconv.FormatUint(sess.Version(), 10) + `"`
		if inm := r.Header.Get("If-None-Match"); inm != "" &&
			etagMatches(inm, etag) && sess.StagedVotes() == 0 {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		body, version, err, ok := s.hub.Payload(sess.ID(), view)
		if !ok {
			writeError(w, http.StatusNotFound, codeSessionNotFound, "unknown session %q", sess.ID())
			return
		}
		if err != nil {
			if errors.Is(err, errEncode) {
				writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
			} else {
				// Windowed view without data yet (or no window config).
				writeError(w, http.StatusConflict, codeWindowNotReady, "%v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", `"`+strconv.FormatUint(version, 10)+`"`)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		_, _ = w.Write([]byte{'\n'})
		return
	}
	if q.Get("window") != "" {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "ci is not supported on windowed estimates")
		return
	}
	out := estimatesToJSON(sess)
	if q := r.URL.Query().Get("ci"); q != "" {
		level, err := strconv.ParseFloat(q, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "bad ci level %q", q)
			return
		}
		reps := 200
		if rq := r.URL.Query().Get("replicates"); rq != "" {
			if reps, err = strconv.Atoi(rq); err != nil {
				writeError(w, http.StatusBadRequest, codeInvalidArgument, "bad replicates %q", rq)
				return
			}
		}
		// The bootstrap resamples off the session lock (ingest proceeds
		// concurrently), but each replicate still costs O(N) compute; an
		// unbounded count would let one request monopolize the CI workers.
		const maxReplicates = 10000
		if reps > maxReplicates {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "replicates %d exceeds limit %d", reps, maxReplicates)
			return
		}
		ci, err := sess.SwitchCI(reps, level)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
			return
		}
		out.SwitchCI = &ciJSON{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleWatch streams estimate updates over Server-Sent Events: whenever the
// session's mutation version advances past the subscriber's cursor, one
// `estimates` event carrying the usual estimates JSON (id: the new version)
// is pushed. The stream rides the fan-out hub (internal/hub): the payload is
// encoded once per published version and multicast pre-serialized, wakeups
// are event-driven off the engine's version notifier (idle sessions cost
// zero CPU regardless of subscriber count), and a slow subscriber coalesces
// to the latest version instead of queueing or blocking others. Clients
// resume with ?cursor=<last seen version> (or the standard Last-Event-ID
// header) and may RAISE the coalescing interval with ?min_interval= (the
// server flag is the floor). ?window= streams a windowed view instead of the
// all-time estimate. Write errors and write-deadline expiries terminate the
// stream immediately — a dead peer is evicted, not spun on.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported by connection")
		return
	}
	q := r.URL.Query()
	view := hub.ViewAll
	if wq := q.Get("window"); wq != "" {
		kind, err := dqm.ParseWindowKind(wq)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
			return
		}
		view = viewForKind(kind)
		// Reject structurally impossible streams before committing to SSE: a
		// session without windows (or without a decay aggregate) can never
		// produce an event, and a silent 200 that only heartbeats would be
		// indistinguishable from a healthy idle stream. "No completed window
		// yet" is the one genuinely transient case and stays silent below.
		wcfg, ok := sess.WindowConfig()
		if !ok {
			writeError(w, http.StatusConflict, codeWindowNotReady, "session %q has no window configuration", sess.ID())
			return
		}
		if kind == dqm.WindowDecayed && wcfg.DecayAlpha == 0 {
			writeError(w, http.StatusConflict, codeWindowNotReady, "session %q has no decayed aggregate (decay_alpha is 0)", sess.ID())
			return
		}
	}
	interval := s.cfg.WatchMinInterval
	if iq := q.Get("min_interval"); iq != "" {
		d, err := time.ParseDuration(iq)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "bad min_interval %q", iq)
			return
		}
		if d > interval {
			interval = d
		}
	}
	var cursor uint64
	cursorQ := q.Get("cursor")
	if cursorQ == "" {
		cursorQ = r.Header.Get("Last-Event-ID")
	}
	if cursorQ != "" {
		c, err := strconv.ParseUint(cursorQ, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "bad cursor %q", cursorQ)
			return
		}
		cursor = c
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Flush the headers immediately: a subscriber to an idle session must see
	// the stream open now, not at the first event or heartbeat.
	fl.Flush()
	s.watchers.Inc()
	defer s.watchers.Dec()

	// Subscribing by id (not by the resolved *Session) ties the stream to the
	// hub's lifecycle: DELETE or LRU eviction Drops the hub session, ending
	// every stream rather than leaving it pinned to a detached object.
	sub, ok := s.hub.Subscribe(sess.ID(), view, cursor, interval)
	if !ok {
		// The session vanished between validation and subscription.
		return
	}
	defer sub.Close()

	// Dead peers must be evicted at the next write, not discovered whenever
	// the OS send buffer finally fills: every write arms a deadline covering
	// at least one heartbeat period. Writers without deadline support (tests,
	// exotic wrappers) still get write-error termination.
	rc := http.NewResponseController(w)
	const writeGrace = 2 * 15 * time.Second
	for {
		ev, ok := sub.Next(r.Context())
		if !ok {
			// Context canceled, session deleted, or session evicted.
			return
		}
		if err := rc.SetWriteDeadline(time.Now().Add(writeGrace)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return
		}
		if _, err := w.Write(ev.SSE); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
	}
}

// handleBatchEstimates serves dashboard readers: one POST returns the
// current estimates of many sessions at once, each read riding the
// per-session cache. Unknown ids are reported in "missing" instead of
// failing the whole batch.
func (s *server) handleBatchEstimates(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs    []string `json:"ids"`
		Window string   `json:"window,omitempty"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	const maxBatchIDs = 10000
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "empty ids")
		return
	}
	if len(req.IDs) > maxBatchIDs {
		writeError(w, http.StatusRequestEntityTooLarge, codeBatchTooLarge, "batch of %d ids exceeds limit %d", len(req.IDs), maxBatchIDs)
		return
	}
	view := hub.ViewAll
	if req.Window != "" {
		kind, err := dqm.ParseWindowKind(req.Window)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
			return
		}
		view = viewForKind(kind)
	}
	// Each read rides the hub's encode-once payload cache: an unchanged
	// session contributes its cached bytes verbatim (json.RawMessage), so a
	// dashboard sweeping thousands of mostly-idle sessions re-encodes none
	// of them.
	results := make(map[string]json.RawMessage, len(req.IDs))
	seen := make(map[string]struct{}, len(req.IDs))
	var missing []string
	errs := make(map[string]string)
	for _, id := range req.IDs {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		body, _, err, ok := s.hub.Payload(id, view)
		if !ok {
			missing = append(missing, id)
			continue
		}
		if err != nil {
			errs[id] = err.Error()
			continue
		}
		results[id] = json.RawMessage(body)
	}
	resp := map[string]any{"results": results}
	if len(missing) > 0 {
		resp["missing"] = missing
	}
	if len(errs) > 0 {
		resp["errors"] = errs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleCreateSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	snap := sess.Snapshot()
	id := fmt.Sprintf("snap-%d", s.snapSeq.Add(1))
	s.snapMu.Lock()
	list := append(s.snaps[sess.ID()], namedSnapshot{id: id, snap: snap})
	if len(list) > s.cfg.MaxSnapshots {
		list = list[len(list)-s.cfg.MaxSnapshots:]
	}
	s.snaps[sess.ID()] = list
	s.snapMu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"snapshot_id": id,
		"tasks":       snap.Tasks(),
		"votes":       snap.TotalVotes(),
	})
}

func (s *server) handleListSnapshots(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	s.snapMu.Lock()
	list := s.snaps[sess.ID()]
	out := make([]map[string]any, len(list))
	for i, ns := range list {
		out[i] = map[string]any{
			"snapshot_id": ns.id,
			"tasks":       ns.snap.Tasks(),
			"votes":       ns.snap.TotalVotes(),
			"taken_at":    ns.snap.TakenAt().UTC().Format(time.RFC3339Nano),
		}
	}
	s.snapMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": out})
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req struct {
		SnapshotID string `json:"snapshot_id"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.snapMu.Lock()
	var snap *dqm.Snapshot
	for _, ns := range s.snaps[sess.ID()] {
		if ns.id == req.SnapshotID {
			snap = ns.snap
			break
		}
	}
	s.snapMu.Unlock()
	if snap == nil {
		writeError(w, http.StatusNotFound, codeSnapshotNotFound, "unknown snapshot %q for session %q", req.SnapshotID, sess.ID())
		return
	}
	if err := sess.Restore(snap); err != nil {
		writeError(w, http.StatusConflict, codeConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimatesToJSON(sess))
}
