package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dqm/internal/wal
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJournalAppend/never-8         	   12868	     11776 ns/op	        84.92 Mvotes/s	    5544 B/op	       0 allocs/op
BenchmarkJournalAppend/always-8        	     100	    157113 ns/op	         6.365 Mvotes/s	     332 B/op	       0 allocs/op
BenchmarkEstimatesCached/cached-8      	14905130	        78.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkSessionIngest   	 1766679	       651.7 ns/op	  15428884 votes/s	      43 B/op	       0 allocs/op
PASS
ok  	dqm/internal/wal	12.3s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(f.Benchmarks), f.Benchmarks)
	}
	never, ok := f.Benchmarks["BenchmarkJournalAppend/never"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", f.Benchmarks)
	}
	if never.NsPerOp != 11776 || never.AllocsPerOp != 0 || never.BytesPerOp != 5544 {
		t.Errorf("never = %+v", never)
	}
	if never.Metrics["Mvotes/s"] != 84.92 {
		t.Errorf("custom metric lost: %+v", never.Metrics)
	}
	// A name with no -P suffix parses as-is.
	if _, ok := f.Benchmarks["BenchmarkSessionIngest"]; !ok {
		t.Errorf("suffixless benchmark missing: %v", f.Benchmarks)
	}
}

// gateResult runs compare and collects its log lines.
func gateResult(t *testing.T, base, fresh *benchFile, threshold float64) (bool, string) {
	t.Helper()
	var lines []string
	pass := compare(base, fresh, threshold, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	return pass, strings.Join(lines, "\n")
}

func TestCompareGates(t *testing.T) {
	base := &benchFile{Benchmarks: map[string]benchResult{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 5},
	}}

	// Within threshold: pass (even with B's alloc growth, which only warns).
	fresh := &benchFile{Benchmarks: map[string]benchResult{
		"BenchmarkA": {NsPerOp: 120, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 900, AllocsPerOp: 6},
	}}
	if pass, out := gateResult(t, base, fresh, 0.30); !pass {
		t.Errorf("in-threshold run failed:\n%s", out)
	}

	// ns regression beyond threshold: fail.
	fresh.Benchmarks["BenchmarkA"] = benchResult{NsPerOp: 140, AllocsPerOp: 0}
	if pass, out := gateResult(t, base, fresh, 0.30); pass || !strings.Contains(out, "FAIL BenchmarkA") {
		t.Errorf("+40%% ns/op passed:\n%s", out)
	}

	// Any alloc on a 0-alloc path: fail.
	fresh.Benchmarks["BenchmarkA"] = benchResult{NsPerOp: 100, AllocsPerOp: 1}
	if pass, out := gateResult(t, base, fresh, 0.30); pass || !strings.Contains(out, "0-alloc path") {
		t.Errorf("alloc regression on 0-alloc path passed:\n%s", out)
	}

	// Pinned benchmark missing: fail.
	delete(fresh.Benchmarks, "BenchmarkA")
	if pass, out := gateResult(t, base, fresh, 0.30); pass || !strings.Contains(out, "missing") {
		t.Errorf("missing pinned benchmark passed:\n%s", out)
	}

	// Unknown fresh benchmarks are ignored.
	fresh = &benchFile{Benchmarks: map[string]benchResult{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 5},
		"BenchmarkC": {NsPerOp: 1, AllocsPerOp: 99},
	}}
	if pass, out := gateResult(t, base, fresh, 0.30); !pass {
		t.Errorf("extra benchmark failed the gate:\n%s", out)
	}

	// Go-version skew warns (never gates) so toolchain codegen shifts are the
	// first hypothesis on a threshold failure, not a mystery.
	base.GoVersion, fresh.GoVersion = "go1.22.9", "go1.24.0"
	if pass, out := gateResult(t, base, fresh, 0.30); !pass || !strings.Contains(out, "go1.22.9") || !strings.Contains(out, "go1.24.0") {
		t.Errorf("version skew not warned (pass=%v):\n%s", pass, out)
	}
	// Same version, or a baseline predating the field: silent.
	fresh.GoVersion = base.GoVersion
	if _, out := gateResult(t, base, fresh, 0.30); strings.Contains(out, "toolchain") {
		t.Errorf("same-version run warned:\n%s", out)
	}
	base.GoVersion = ""
	if _, out := gateResult(t, base, fresh, 0.30); strings.Contains(out, "toolchain") {
		t.Errorf("versionless baseline warned:\n%s", out)
	}
}

func TestGateLoadgen(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep map[string]any) string {
		t.Helper()
		b, _ := json.Marshal(rep)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 0, "votes_per_sec": 500000.0,
	})
	if err := gateLoadgen(good, 50000, 0, 0, -1, -1); err != nil {
		t.Errorf("good report rejected: %v", err)
	}
	slow := write("slow.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 0, "votes_per_sec": 100.0,
	})
	if err := gateLoadgen(slow, 50000, 0, 0, -1, -1); err == nil {
		t.Error("below-floor throughput accepted")
	}
	errs := write("errs.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 3, "votes_per_sec": 500000.0,
	})
	if err := gateLoadgen(errs, 0, 0, 0, -1, -1); err == nil {
		t.Error("errored run accepted")
	}
	alien := write("alien.json", map[string]any{"tool": "something-else"})
	if err := gateLoadgen(alien, 0, 0, 0, -1, -1); err == nil {
		t.Error("non-loadgen JSON accepted")
	}

	// The watch-events floor gates the storm scenario's delivery rate: a
	// report without (or below) the watch column fails a non-zero floor.
	storm := write("storm.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 0, "votes_per_sec": 500000.0,
		"watch_events_per_sec": 12000.0,
	})
	if err := gateLoadgen(storm, 0, 500, 0, -1, -1); err != nil {
		t.Errorf("storm report rejected: %v", err)
	}
	if err := gateLoadgen(storm, 0, 50000, 0, -1, -1); err == nil {
		t.Error("below-floor watch delivery accepted")
	}
	if err := gateLoadgen(good, 0, 500, 0, -1, -1); err == nil {
		t.Error("watch floor passed with no watch column")
	}

	// Gate thresholds read the report's gate block: the transitions floor,
	// the dead-letter and staleness ceilings, and the presence requirement
	// itself (a gate threshold against a gateless report is an error).
	gated := write("gated.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 0, "votes_per_sec": 500000.0,
		"gate": map[string]any{
			"gate_transitions": 4, "webhook_deliveries": 4,
			"webhook_dead_letters": 0, "gate_stale_sessions": 0,
		},
	})
	if err := gateLoadgen(gated, 0, 0, 1, 0, 0); err != nil {
		t.Errorf("clean gate report rejected: %v", err)
	}
	if err := gateLoadgen(gated, 0, 0, 10, 0, 0); err == nil {
		t.Error("below-floor gate transitions accepted")
	}
	if err := gateLoadgen(good, 0, 0, 1, -1, -1); err == nil {
		t.Error("gate floor passed with no gate block")
	}
	dirty := write("dirty-gate.json", map[string]any{
		"tool": "dqm-loadgen", "schema_version": 1,
		"total_ops": 1000, "total_errors": 0, "votes_per_sec": 500000.0,
		"gate": map[string]any{
			"gate_transitions": 4, "webhook_deliveries": 2,
			"webhook_dead_letters": 2, "gate_stale_sessions": 1,
		},
	})
	if err := gateLoadgen(dirty, 0, 0, 1, 0, -1); err == nil {
		t.Error("dead-lettered run accepted under a zero ceiling")
	}
	if err := gateLoadgen(dirty, 0, 0, 1, -1, 0); err == nil {
		t.Error("stale-decision run accepted under a zero ceiling")
	}
	if err := gateLoadgen(dirty, 0, 0, 1, 2, 1); err != nil {
		t.Errorf("run within explicit ceilings rejected: %v", err)
	}
}

// TestBaselineFileParses keeps the committed baseline loadable by the gate:
// if BENCH_baseline.json rots (bad JSON, emptied), CI's compare step would
// die in a confusing way — this catches it at test time.
func TestBaselineFileParses(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_baseline.json")
	f, err := readBenchFile(path)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	for _, name := range []string{
		"BenchmarkJournalAppend/batch",
		"BenchmarkEstimatesCached/cached",
		"BenchmarkSessionIngest",
		"BenchmarkSessionIngestGated",
	} {
		r, ok := f.Benchmarks[name]
		if !ok {
			t.Errorf("baseline missing pinned benchmark %s", name)
			continue
		}
		if r.AllocsPerOp != 0 {
			t.Errorf("%s: baseline allocs/op = %v, the 0-alloc contract is gone", name, r.AllocsPerOp)
		}
	}
}
