// Command dqm-benchdiff is the CI perf-regression gate: it parses `go test
// -bench` output into a machine-readable JSON, compares it against a
// committed baseline (BENCH_baseline.json) with benchstat-style thresholds,
// and sanity-gates dqm-loadgen reports.
//
// Usage:
//
//	# Parse a bench run and write its JSON form (refreshing a baseline):
//	go test -run '^$' -bench ... | dqm-benchdiff -out BENCH_baseline.json
//
//	# Gate a fresh run against the committed baseline:
//	dqm-benchdiff -bench-out bench.txt -baseline BENCH_baseline.json \
//	              -out BENCH_fresh.json -threshold 0.30
//
//	# Gate a dqm-loadgen report:
//	dqm-benchdiff -loadgen BENCH_loadgen.json -min-votes-per-sec 50000
//
// Gate rules (exit status 1 on any violation):
//
//   - ns/op: a benchmark more than -threshold (default 30%) slower than its
//     baseline fails. Speedups are reported, never gated.
//   - allocs/op: a benchmark whose baseline is 0 allocs/op fails on ANY
//     increase — the 0-alloc ingest and cached-read paths are load-bearing
//     contracts, not noise. Non-zero baselines only warn on growth (pool
//     warmup makes small counts benchtime-sensitive).
//   - presence: a baseline benchmark missing from the fresh run fails; a
//     pinned hot path silently dropping out of the suite is itself a
//     regression.
//   - loadgen: the report must parse, contain ops, have zero errors, and
//     clear -min-votes-per-sec and (for watch scenarios)
//     -min-watch-events-per-sec. Gate scenarios additionally clear
//     -min-gate-transitions (the alerting plane actually fired),
//     -max-webhook-dead-letters and -max-gate-stale-sessions (every firing
//     was delivered and no cached decision lagged its session at quiesce).
//
// GOMAXPROCS name suffixes ("-8") are stripped, so baselines compare across
// machines with different core counts (ns thresholds still assume comparable
// hardware; refresh the baseline when the CI runner class changes).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's measured numbers.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries ReportMetric extras (e.g. "votes/s", "Mvotes/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the BENCH_baseline.json / BENCH_fresh.json schema.
type benchFile struct {
	SchemaVersion int    `json:"schema_version"`
	Note          string `json:"note,omitempty"`
	// GoVersion is the toolchain that produced the numbers (runtime.Version()
	// of this tool, which CI runs with the same Go as the bench binary). A
	// baseline measured on a different Go release is compared with a warning:
	// codegen changes between releases routinely move ns/op by more than
	// noise, so version skew is the first thing to rule out on a gate failure.
	GoVersion  string                 `json:"go_version,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

func main() {
	fs := flag.NewFlagSet("dqm-benchdiff", flag.ExitOnError)
	var (
		benchOut  = fs.String("bench-out", "", "go test -bench output file ('-' or empty with piped stdin = stdin)")
		baseline  = fs.String("baseline", "", "baseline JSON to gate against")
		out       = fs.String("out", "", "write the parsed fresh results as JSON here")
		threshold = fs.Float64("threshold", 0.30, "max allowed ns/op regression (0.30 = +30%)")
		note      = fs.String("note", "", "note recorded in -out")
		loadgen   = fs.String("loadgen", "", "dqm-loadgen report JSON to gate")
		minVotes  = fs.Float64("min-votes-per-sec", 0, "minimum loadgen ingest throughput")
		minWatch  = fs.Float64("min-watch-events-per-sec", 0, "minimum loadgen delivered watch events/s (watch scenarios)")
		minTrans  = fs.Int64("min-gate-transitions", 0, "minimum loadgen gate action transitions (gate scenarios)")
		maxDead   = fs.Int64("max-webhook-dead-letters", -1, "maximum loadgen webhook dead letters (gate scenarios; -1 = unchecked)")
		maxStale  = fs.Int64("max-gate-stale-sessions", -1, "maximum loadgen sessions with a stale gate decision at quiesce (-1 = unchecked)")
	)
	fs.Parse(os.Args[1:])

	failed := false
	if *loadgen != "" {
		if err := gateLoadgen(*loadgen, *minVotes, *minWatch, *minTrans, *maxDead, *maxStale); err != nil {
			log.Printf("FAIL %v", err)
			failed = true
		} else {
			log.Printf("ok: loadgen report %s clears the gate", *loadgen)
		}
	}

	if *benchOut != "" || *baseline != "" || *out != "" {
		var in io.Reader = os.Stdin
		if *benchOut != "" && *benchOut != "-" {
			f, err := os.Open(*benchOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			in = f
		}
		fresh, err := parseBench(in)
		if err != nil {
			log.Fatal(err)
		}
		if len(fresh.Benchmarks) == 0 {
			log.Fatal("no benchmark lines found in input")
		}
		if *out != "" {
			fresh.Note = *note
			b, _ := json.MarshalIndent(fresh, "", "  ")
			if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %d benchmarks to %s", len(fresh.Benchmarks), *out)
		}
		if *baseline != "" {
			base, err := readBenchFile(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			if !compare(base, fresh, *threshold, log.Printf) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchLine matches one `go test -bench` result line:
// name-P  iters  value unit  [value unit]...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBench reads `go test -bench` output into a benchFile.
func parseBench(r io.Reader) (*benchFile, error) {
	out := &benchFile{SchemaVersion: 1, GoVersion: runtime.Version(), Benchmarks: make(map[string]benchResult)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		res := out.Benchmarks[name] // merged if a name repeats (-count>1: last wins per field)
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out.Benchmarks[name] = res
	}
	return out, sc.Err()
}

// readBenchFile loads a baseline JSON.
func readBenchFile(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

// compare gates fresh against base, logging one line per benchmark. It
// returns false when any gate fails.
func compare(base, fresh *benchFile, threshold float64, logf func(string, ...any)) bool {
	if base.GoVersion != "" && fresh.GoVersion != "" && base.GoVersion != fresh.GoVersion {
		logf("warn: baseline measured on %s, fresh run on %s — ns/op deltas may be toolchain codegen, not code; refresh the baseline to re-anchor",
			base.GoVersion, fresh.GoVersion)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	pass := true
	for _, name := range names {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			logf("FAIL %s: pinned benchmark missing from the fresh run", name)
			pass = false
			continue
		}
		switch {
		case b.AllocsPerOp == 0 && f.AllocsPerOp > 0:
			logf("FAIL %s: %.0f allocs/op on a 0-alloc path", name, f.AllocsPerOp)
			pass = false
		case f.AllocsPerOp > b.AllocsPerOp:
			logf("warn %s: allocs/op %.0f -> %.0f", name, b.AllocsPerOp, f.AllocsPerOp)
		}
		if b.NsPerOp > 0 {
			ratio := f.NsPerOp / b.NsPerOp
			if ratio > 1+threshold {
				logf("FAIL %s: %.4g ns/op vs baseline %.4g (%+.1f%%, threshold %+.0f%%)",
					name, f.NsPerOp, b.NsPerOp, (ratio-1)*100, threshold*100)
				pass = false
			} else {
				logf("ok   %s: %.4g ns/op vs baseline %.4g (%+.1f%%)", name, f.NsPerOp, b.NsPerOp, (ratio-1)*100)
			}
		}
	}
	return pass
}

// loadgenReport is the subset of the dqm-loadgen schema the gate reads.
type loadgenReport struct {
	Tool          string  `json:"tool"`
	SchemaVersion int     `json:"schema_version"`
	TotalOps      int64   `json:"total_ops"`
	TotalErrors   int64   `json:"total_errors"`
	VotesPerSec   float64 `json:"votes_per_sec"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	// WatchEventsPerSec is delivered SSE/hub events per second across all
	// subscribers — present only for watch scenarios, gated by
	// -min-watch-events-per-sec.
	WatchEventsPerSec float64 `json:"watch_events_per_sec"`
	// Gate is the quality-gate tally — present only for gate scenarios,
	// gated by -min-gate-transitions / -max-webhook-dead-letters /
	// -max-gate-stale-sessions.
	Gate *struct {
		Transitions        int64 `json:"gate_transitions"`
		WebhookDeliveries  int64 `json:"webhook_deliveries"`
		WebhookDeadLetters int64 `json:"webhook_dead_letters"`
		StaleSessions      int64 `json:"gate_stale_sessions"`
	} `json:"gate"`
}

// gateLoadgen validates a loadgen report.
func gateLoadgen(path string, minVotes, minWatch float64, minTrans, maxDead, maxStale int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep loadgenReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Tool != "dqm-loadgen" || rep.SchemaVersion != 1 {
		return fmt.Errorf("%s: not a dqm-loadgen v1 report (tool=%q schema=%d)", path, rep.Tool, rep.SchemaVersion)
	}
	if rep.TotalOps == 0 {
		return fmt.Errorf("%s: zero ops executed", path)
	}
	if rep.TotalErrors > 0 {
		return fmt.Errorf("%s: %d errors during the run", path, rep.TotalErrors)
	}
	if rep.VotesPerSec < minVotes {
		return fmt.Errorf("%s: %.0f votes/s below the %.0f floor", path, rep.VotesPerSec, minVotes)
	}
	if rep.WatchEventsPerSec < minWatch {
		return fmt.Errorf("%s: %.0f watch events/s below the %.0f floor", path, rep.WatchEventsPerSec, minWatch)
	}
	if minTrans > 0 || maxDead >= 0 || maxStale >= 0 {
		if rep.Gate == nil {
			return fmt.Errorf("%s: gate thresholds set but the report has no gate block (not a gate scenario?)", path)
		}
		if rep.Gate.Transitions < minTrans {
			return fmt.Errorf("%s: %d gate transitions below the %d floor", path, rep.Gate.Transitions, minTrans)
		}
		if maxDead >= 0 && rep.Gate.WebhookDeadLetters > maxDead {
			return fmt.Errorf("%s: %d webhook dead letters exceed the %d ceiling", path, rep.Gate.WebhookDeadLetters, maxDead)
		}
		if maxStale >= 0 && rep.Gate.StaleSessions > maxStale {
			return fmt.Errorf("%s: %d sessions with a stale gate decision exceed the %d ceiling", path, rep.Gate.StaleSessions, maxStale)
		}
	}
	return nil
}
