// Command dqm estimates the number of undetected errors in a dataset from a
// worker-vote log (as produced by cmd/dqm-gen, or exported from a real crowd
// deployment).
//
// Usage:
//
//	dqm -input votes.csv [-format csv|jsonl|binary] [-n N] [-every K] [-cap]
//	dqm convert -in votes.csv -out votes.bin [-from csv|jsonl|binary] [-to ...]
//
// The log must be grouped by task id. With -every K an estimate row is
// printed every K tasks, showing how the metric converges as cleaning effort
// grows; otherwise only the final estimates are printed.
//
// The convert subcommand transcodes between the three vote-log encodings
// (formats default to the file extensions: .csv, .jsonl/.ndjson, .bin/.dqmb);
// the binary encoding is the compact one for exchanging large logs with
// cmd/dqm-gen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dqm"
	"dqm/internal/votelog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqm:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "convert" {
		return runConvert(args[1:], out)
	}
	fs := flag.NewFlagSet("dqm", flag.ContinueOnError)
	var (
		input  = fs.String("input", "", "vote log path (default: stdin)")
		format = fs.String("format", "", "log format: csv, jsonl or binary (default: by extension, csv for stdin)")
		nItems = fs.Int("n", 0, "population size N (default: max item id + 1)")
		every  = fs.Int("every", 0, "print estimates every K tasks (0 = final only)")
		capN   = fs.Bool("cap", false, "clamp estimates to the population size")
		ci     = fs.Float64("ci", 0, "also print a bootstrap confidence interval at this level (e.g. 0.95)")
		ciReps = fs.Int("ci-reps", 200, "bootstrap replicates for -ci")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	entries, err := loadEntries(*input, *format)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("empty vote log")
	}
	n := *nItems
	if n == 0 {
		n = votelog.MaxItem(entries) + 1
	}
	if maxI := votelog.MaxItem(entries); maxI >= n {
		return fmt.Errorf("item id %d exceeds population size %d", maxI, n)
	}

	cfg := dqm.Defaults()
	cfg.CapToPopulation = *capN
	cfg.TrackConfidence = *ci > 0
	rec := dqm.NewRecorder(n, cfg)

	header := fmt.Sprintf("%8s %8s %10s %10s %10s %10s %10s %10s",
		"tasks", "votes", "NOMINAL", "VOTING", "CHAO92", "V-CHAO", "SWITCH", "REMAINING")
	fmt.Fprintln(out, header)
	printRow := func(tasks int) {
		e := rec.Estimates()
		fmt.Fprintf(out, "%8d %8d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			tasks, rec.TotalVotes(), e.Nominal, e.Voting, e.Chao92, e.VChao92,
			e.Switch.Total, e.Remaining())
	}

	tasks := 0
	votelog.Replay(entries,
		func(e votelog.Entry) { rec.Record(e.Item, e.Worker, e.Dirty) },
		func() {
			tasks++
			rec.EndTask()
			if *every > 0 && tasks%*every == 0 {
				printRow(tasks)
			}
		})
	if *every == 0 || tasks%*every != 0 {
		printRow(tasks)
	}

	e := rec.Estimates()
	fmt.Fprintf(out, "\npopulation %d items, %d workers, %d tasks\n", n, rec.NumWorkers(), tasks)
	fmt.Fprintf(out, "SWITCH: total=%.1f remaining=%.1f xi+=%.1f xi-=%.1f trend=%s\n",
		e.Switch.Total, e.Remaining(), e.Switch.XiPos, e.Switch.XiNeg, trendName(e))
	if *ci > 0 {
		interval, err := rec.SwitchCI(*ciReps, *ci)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "SWITCH %.0f%% bootstrap CI: [%.1f, %.1f] (%d replicates)\n",
			*ci*100, interval.Lo, interval.Hi, *ciReps)
	}
	return nil
}

func trendName(e dqm.Estimates) string {
	switch {
	case e.Switch.TrendUp:
		return "up"
	case e.Switch.TrendDown:
		return "down"
	default:
		return "flat"
	}
}

func loadEntries(path, format string) ([]votelog.Entry, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		format = votelog.DetectFormat(path)
	}
	return votelog.Read(r, format)
}

// runConvert transcodes a vote log between the CSV, JSONL and binary
// encodings.
func runConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dqm convert", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input vote log path (default: stdin)")
		outP = fs.String("out", "", "output vote log path (default: stdout)")
		from = fs.String("from", "", "input format: csv, jsonl or binary (default: by extension)")
		to   = fs.String("to", "", "output format: csv, jsonl or binary (default: by extension)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries, err := loadEntries(*in, *from)
	if err != nil {
		return err
	}
	dstFormat := *to
	if dstFormat == "" {
		dstFormat = votelog.DetectFormat(*outP)
	}
	var w io.Writer = os.Stdout
	if *outP != "" {
		f, err := os.Create(*outP)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := votelog.Write(w, dstFormat, entries); err != nil {
		return err
	}
	if *outP != "" { // with data on stdout, keep stdout clean
		tasks := 0
		for i, e := range entries {
			if i == 0 || entries[i-1].Task != e.Task {
				tasks++
			}
		}
		fmt.Fprintf(out, "converted %d votes over %d tasks to %s %s\n", len(entries), tasks, dstFormat, *outP)
	}
	return nil
}
