package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLog(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleLog = `task,item,worker,label
0,0,1,dirty
0,1,1,clean
0,2,1,dirty
1,0,2,dirty
1,1,2,clean
1,3,2,clean
2,2,3,clean
2,3,3,dirty
`

func TestRunBasic(t *testing.T) {
	path := writeLog(t, "votes.csv", sampleLog)
	var sb strings.Builder
	if err := run([]string{"-input", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"NOMINAL", "SWITCH", "population 4 items", "3 workers, 3 tasks", "trend="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEvery(t *testing.T) {
	path := writeLog(t, "votes.csv", sampleLog)
	var sb strings.Builder
	if err := run([]string{"-input", path, "-every", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Header + three per-task rows at minimum.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected per-task rows:\n%s", sb.String())
	}
}

func TestRunWithCI(t *testing.T) {
	path := writeLog(t, "votes.csv", sampleLog)
	var sb strings.Builder
	if err := run([]string{"-input", path, "-ci", "0.9", "-ci-reps", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bootstrap CI") {
		t.Fatalf("missing CI output:\n%s", sb.String())
	}
}

func TestRunJSONL(t *testing.T) {
	path := writeLog(t, "votes.jsonl",
		`{"task":0,"item":0,"worker":1,"dirty":true}
{"task":1,"item":1,"worker":2,"dirty":false}
`)
	var sb strings.Builder
	if err := run([]string{"-input", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "population 2 items") {
		t.Fatalf("jsonl parse failed:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	empty := writeLog(t, "empty.csv", "task,item,worker,label\n")
	if err := run([]string{"-input", empty}, &strings.Builder{}); err == nil {
		t.Fatal("empty log accepted")
	}
	path := writeLog(t, "votes.csv", sampleLog)
	if err := run([]string{"-input", path, "-n", "2"}, &strings.Builder{}); err == nil {
		t.Fatal("undersized population accepted")
	}
	if err := run([]string{"-input", filepath.Join(t.TempDir(), "nope.csv")}, &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-input", path, "-format", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestConvertRoundTripAndBinaryEstimate: csv -> binary -> jsonl keeps the
// log identical, and estimation from the binary form matches the CSV run.
func TestConvertRoundTripAndBinaryEstimate(t *testing.T) {
	csvPath := writeLog(t, "votes.csv", sampleLog)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "votes.bin")
	jsonlPath := filepath.Join(dir, "votes.jsonl")

	var sb strings.Builder
	if err := run([]string{"convert", "-in", csvPath, "-out", binPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "converted 8 votes over 3 tasks to binary") {
		t.Fatalf("convert summary: %q", sb.String())
	}
	if err := run([]string{"convert", "-in", binPath, "-out", jsonlPath}, &sb); err != nil {
		t.Fatal(err)
	}

	var fromCSV, fromBin strings.Builder
	if err := run([]string{"-input", csvPath}, &fromCSV); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", binPath}, &fromBin); err != nil {
		t.Fatal(err)
	}
	if fromCSV.String() != fromBin.String() {
		t.Fatalf("binary log estimates differ from CSV:\n%s\nvs\n%s", fromBin.String(), fromCSV.String())
	}
	// The jsonl produced via binary matches a direct jsonl estimate too.
	var fromJSONL strings.Builder
	if err := run([]string{"-input", jsonlPath}, &fromJSONL); err != nil {
		t.Fatal(err)
	}
	if fromCSV.String() != fromJSONL.String() {
		t.Fatal("jsonl round trip diverged")
	}
}

func TestConvertErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"convert", "-in", writeLog(t, "votes.csv", sampleLog), "-to", "xml"}, &sb); err == nil {
		t.Fatal("unknown target format accepted")
	}
	if err := run([]string{"convert", "-in", filepath.Join(t.TempDir(), "missing.csv")}, &sb); err == nil {
		t.Fatal("missing input accepted")
	}
}
