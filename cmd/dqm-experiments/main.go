// Command dqm-experiments regenerates the paper's evaluation: every figure
// of Section 6 (and the §3.2.1 worked examples plus the design ablations)
// has a registered driver.
//
// Usage:
//
//	dqm-experiments -figure all                 # print every figure as a table
//	dqm-experiments -figure 3 -seed 7 -r 10     # Figure 3 panels a-c
//	dqm-experiments -figure 6a -csv out/        # also write out/fig6a.csv
//	dqm-experiments -figure 4 -parallel 8       # replay permutations on 8 workers
//
// The -parallel flag only changes wall time: permutation replays are
// deterministic for any worker count.
//
// See EXPERIMENTS.md for the paper-vs-measured record produced from these
// runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dqm/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqm-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dqm-experiments", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "figure id or 'all'; known ids: "+fmt.Sprint(experiment.IDs()))
		seed     = fs.Uint64("seed", 42, "random seed")
		perms    = fs.Int("r", 10, "permutations to average over (the paper's r)")
		scale    = fs.Float64("scale", 1, "task-count scale factor (reduce for quick runs)")
		parallel = fs.Int("parallel", 0, "permutation-replay workers (0 = all cores; results are identical for any value)")
		csvDir   = fs.String("csv", "", "directory to also write per-figure CSV files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiment.Options{Seed: *seed, Permutations: *perms, TaskScale: *scale, Parallelism: *parallel}
	ids := []string{*figure}
	if *figure == "all" {
		ids = experiment.IDs()
	}
	for _, id := range ids {
		driver, err := experiment.ByID(id)
		if err != nil {
			return err
		}
		for _, fig := range driver(opts) {
			if err := fig.WriteTable(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fig); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir string, fig *experiment.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return fig.WriteCSV(f)
}
