package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "sec321", "-r", "2", "-scale", "0.2", "-seed", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sec321") {
		t.Fatalf("missing figure output:\n%s", sb.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "nope"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-figure", "7b", "-r", "2", "-scale", "0.05", "-csv", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7b.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,") {
		t.Fatalf("csv header wrong:\n%s", data)
	}
}

func TestRunMultiPanelFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "3", "-r", "2", "-scale", "0.05"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig3a", "fig3b", "fig3c"} {
		if !strings.Contains(out, id) {
			t.Fatalf("missing panel %s", id)
		}
	}
}

// TestRunParallelFlagDeterministic: the -parallel flag must not change the
// rendered tables, only how many goroutines replay permutations.
func TestRunParallelFlagDeterministic(t *testing.T) {
	render := func(parallel string) string {
		var sb strings.Builder
		err := run([]string{"-figure", "7b", "-r", "4", "-scale", "0.1", "-parallel", parallel}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if one, many := render("1"), render("8"); one != many {
		t.Fatalf("-parallel changed output:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", one, many)
	}
}
