// Streaming example: use the data-quality metric as a stopping rule for a
// cleaning campaign. Tasks arrive one at a time (as they would from a live
// crowd deployment); after every task the SWITCH estimator reports the
// expected number of remaining consensus switches, and the campaign stops
// once the estimated remaining error mass drops below a budgeted threshold —
// the "utility of hiring additional workers" question from the paper's
// abstract, answered online.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"

	"dqm"
	"dqm/internal/crowd"
	"dqm/internal/dataset"
)

func main() {
	const (
		seed      = 21
		nItems    = 2000
		nDirty    = 150
		threshold = 3.0 // stop when fewer than this many switches remain
		minTasks  = 120 // never stop before a minimal coverage
		maxTasks  = 3000
	)

	pop := dataset.NewPlantedPopulation(nItems, nDirty, seed, "streaming")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            nItems,
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.12, Jitter: 0.2},
		ItemsPerTask: 15,
		Seed:         seed,
	})

	rec := dqm.NewRecorder(nItems, dqm.Defaults())

	fmt.Printf("cleaning until estimated remaining switches < %.0f (after ≥%d tasks)\n\n", threshold, minTasks)
	fmt.Printf("%8s %10s %12s %18s\n", "tasks", "VOTING", "SWITCH", "remaining switches")

	stopped := 0
	for t := 1; t <= maxTasks; t++ {
		task := sim.NextTask()
		for i, item := range task.Items {
			rec.Record(item, task.Worker, task.Labels[i] == 1)
		}
		rec.EndTask()

		e := rec.Estimates()
		if t%100 == 0 {
			fmt.Printf("%8d %10.0f %12.1f %18.2f\n", t, e.Voting, e.Switch.Total, e.Switch.RemainingSwitches)
		}
		if t >= minTasks && e.Switch.RemainingSwitches < threshold {
			stopped = t
			break
		}
	}

	e := rec.Estimates()
	if stopped > 0 {
		fmt.Printf("\nstopped after %d tasks: estimated remaining switches %.2f < %.0f\n",
			stopped, e.Switch.RemainingSwitches, threshold)
	} else {
		fmt.Printf("\nbudget of %d tasks exhausted\n", maxTasks)
	}

	// Score the decision against the ground truth the estimator never saw.
	wrong := 0
	for i := 0; i < nItems; i++ {
		if rec.MajorityDirty(i) != pop.Truth.IsDirty(i) {
			wrong++
		}
	}
	fmt.Printf("consensus decisions still wrong at stop: %d of %d items (%.2f%%)\n",
		wrong, nItems, 100*float64(wrong)/float64(nItems))
	fmt.Printf("true errors %d, majority found %.0f, SWITCH estimated %.1f\n",
		pop.NumDirty(), e.Voting, e.Switch.Total)
}
