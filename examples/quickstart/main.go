// Quickstart: estimate the number of undetected errors in a small dataset
// cleaned by a simulated fallible crowd.
//
// A population of 500 items contains 50 true errors. Workers review random
// tasks of 10 items, missing 15% of true errors and wrongly flagging 2% of
// clean items. The SWITCH estimator predicts the eventual total error count
// long before every item has been reviewed enough times.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"

	"dqm"
)

const (
	nItems     = 500
	nDirty     = 50
	nTasks     = 300
	perTask    = 10
	fnRate     = 0.15 // chance a worker misses a true error
	fpRate     = 0.02 // chance a worker flags a clean item
	reportStep = 50
)

func main() {
	rng := rand.New(rand.NewPCG(7, 7))

	// Plant ground truth (unknown to the estimator).
	dirty := make(map[int]bool, nDirty)
	for len(dirty) < nDirty {
		dirty[rng.IntN(nItems)] = true
	}

	rec := dqm.NewRecorder(nItems, dqm.Defaults())

	fmt.Printf("%8s %10s %10s %10s %12s\n", "tasks", "VOTING", "CHAO92", "SWITCH", "remaining")
	for t := 1; t <= nTasks; t++ {
		worker := rng.IntN(40)
		for _, item := range rng.Perm(nItems)[:perTask] {
			vote := dirty[item]
			if vote && rng.Float64() < fnRate {
				vote = false // false negative
			} else if !dirty[item] && rng.Float64() < fpRate {
				vote = true // false positive
			}
			rec.Record(item, worker, vote)
		}
		rec.EndTask()

		if t%reportStep == 0 {
			e := rec.Estimates()
			fmt.Printf("%8d %10.1f %10.1f %10.1f %12.1f\n",
				t, e.Voting, e.Chao92, e.Switch.Total, e.Remaining())
		}
	}

	e := rec.Estimates()
	fmt.Printf("\ntrue errors: %d\n", nDirty)
	fmt.Printf("SWITCH estimate of total errors: %.1f (%.1f still undetected beyond the current majority)\n",
		e.Switch.Total, e.Remaining())
	fmt.Printf("majority vote alone would report: %.0f\n", e.Voting)
}
