// Entity resolution example: the full CrowdER-style propose–verify pipeline
// of the paper's restaurant experiment (§6.1.1), end to end:
//
//  1. generate a restaurant dataset with planted duplicates;
//  2. first stage (algorithmic): score all record pairs with a normalized
//     edit-distance similarity and keep the ambiguous window (0.5, 0.9) as
//     the crowd's candidate set — obvious matches auto-merge, obvious
//     non-matches are dropped;
//  3. second stage (crowd): fallible simulated workers verify random tasks
//     of candidate pairs;
//  4. estimation: the SWITCH estimator tracks how many duplicate pairs the
//     crowd will eventually confirm, before the verification is complete.
//
// Run with: go run ./examples/entityresolution
package main

import (
	"fmt"

	"dqm"
	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/pipeline"
)

func main() {
	const seed = 11

	// Stage 0: the dirty dataset.
	data := dataset.GenerateRestaurants(dataset.RestaurantConfig{Seed: seed})
	fmt.Printf("dataset: %d restaurant records, %d planted duplicate pairs\n",
		len(data.Records), len(data.DuplicatePairs))
	fmt.Printf("pair space: %d candidate comparisons\n\n", len(data.Records)*(len(data.Records)-1)/2)

	// Stage 1: similarity heuristic + window.
	cands := pipeline.RestaurantCandidates(data, 0.5, 0.9)
	fmt.Printf("heuristic window (0.5, 0.9): %d ambiguous pairs for the crowd\n", len(cands.Pairs))
	fmt.Printf("  auto-merged above 0.9: %d pairs (%d true duplicates)\n", cands.AutoDirty, cands.AutoDirtyTrue)
	fmt.Printf("  true duplicates in window: %d; lost below 0.5: %d\n\n",
		cands.Truth.NumDirty(), cands.MissedBelow)

	// Stage 2: crowd verification over the candidate pairs.
	pop := cands.Population("restaurant candidates")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.05, FNRate: 0.25, Jitter: 0.25},
		ItemsPerTask: 10,
		Seed:         seed,
	})

	// Stage 3: estimate while the crowd works.
	cfg := dqm.Defaults()
	cfg.CapToPopulation = true
	rec := dqm.NewRecorder(pop.N(), cfg)

	fmt.Printf("%8s %10s %10s %10s   %s\n", "tasks", "VOTING", "SWITCH", "remaining", "trend")
	const nTasks = 400
	for t := 1; t <= nTasks; t++ {
		task := sim.NextTask()
		for i, item := range task.Items {
			rec.RecordVote(dqm.Vote{Item: item, Worker: task.Worker, Dirty: task.Labels[i] == 1})
		}
		rec.EndTask()
		if t%50 == 0 {
			e := rec.Estimates()
			trend := "flat"
			if e.Switch.TrendUp {
				trend = "up"
			} else if e.Switch.TrendDown {
				trend = "down"
			}
			fmt.Printf("%8d %10.1f %10.1f %10.1f   %s\n", t, e.Voting, e.Switch.Total, e.Remaining(), trend)
		}
	}

	e := rec.Estimates()
	fmt.Printf("\nground truth duplicates in window: %d\n", pop.NumDirty())
	fmt.Printf("SWITCH total-duplicate estimate:   %.1f\n", e.Switch.Total)
	fmt.Printf("total duplicates incl. auto-merge: %.1f (paper's Equation 9: D(R_H) + |H>beta|)\n",
		e.Switch.Total+float64(cands.AutoDirtyTrue))
	fmt.Printf("actual planted duplicates caught:  %d\n", cands.Truth.NumDirty()+cands.AutoDirtyTrue)
}
