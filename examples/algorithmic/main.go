// Algorithmic cleaning example — the paper's §8 extension: replace the
// crowd with a committee of semi-independent automatic cleaning algorithms
// and estimate how many errors remain after all of them have run.
//
// Each committee member is a deterministic rule-based detector with its own
// coverage: structural rules catch missing values and malformed zips,
// reference rules catch misspelled cities, the FD rule catches
// zip→city/state violations, and a deliberately over-strict rule produces
// systematic false positives (the algorithmic analogue of an overzealous
// worker). No algorithm sees the fabricated "fake but valid" addresses —
// the long tail stays dark, and the estimate honestly reflects only what
// the committee's consensus can eventually reach.
//
// Run with: go run ./examples/algorithmic
package main

import (
	"fmt"
	"strings"

	"dqm"
	"dqm/internal/algoclean"
	"dqm/internal/dataset"
	"dqm/internal/rules"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

func main() {
	const seed = 17

	data := dataset.GenerateAddresses(dataset.AddressConfig{Records: 1000, Errors: 90, Seed: seed})
	fmt.Printf("dataset: %d addresses, %d malformed\n\n", len(data.Records), data.Truth.NumDirty())

	// Semi-independent cleaners share most of their rules but each has a
	// blind spot — "leave one class out" of the full catalog. This mirrors
	// §2.1's workers, who share most of their internal rules.
	all := rules.AllRules()
	leaveOut := func(name string, skip ...string) algoclean.Judge {
		var kept []rules.Rule
		for _, r := range all {
			drop := false
			for _, s := range skip {
				if r.Name() == s {
					drop = true
				}
			}
			if !drop {
				kept = append(kept, r)
			}
		}
		return algoclean.RuleJudge(name, data.Records, kept...)
	}

	// Two deliberately imperfect members. strict-number flags legitimate
	// high house numbers on top of the full rule set — systematic false
	// positives from an over-tight constraint. partial-streets knows most
	// of the street corpus but not all of it, so it wrongly flags a few
	// real streets while also catching fabricated ones.
	fullDet := rules.NewDetector()
	strictNumber := algoclean.New("strict-number", func(i int) votes.Label {
		if fullDet.Dirty(data.Records[i]) || data.Records[i].Number > 18000 {
			return votes.Dirty
		}
		return votes.Clean
	})
	partialStreets := algoclean.New("partial-streets", func(i int) votes.Label {
		if fullDet.Dirty(data.Records[i]) {
			return votes.Dirty
		}
		fields := strings.Fields(data.Records[i].Street)
		if len(fields) < 2 || fields[1][0] >= 'W' {
			return votes.Dirty
		}
		return votes.Clean
	})

	committee := algoclean.NewCommittee(
		leaveOut("no-business", "business-keyword"),
		leaveOut("no-fd", "zip-city-fd"),
		leaveOut("no-reference", "city-name", "state-code"),
		leaveOut("no-zip-range", "zip-range"),
		algoclean.RuleJudge("full-rules", data.Records),
		strictNumber,
		partialStreets,
	)
	fmt.Printf("committee of %d algorithms; per-algorithm detections:\n", committee.Size())
	for j := 0; j < committee.Size(); j++ {
		flagged := committee.JudgeAll(j, len(data.Records))
		tp, fp := data.Truth.CountErrors(flagged)
		fmt.Printf("  %-16s flagged %4d  (true %3d, false %3d)\n",
			committee.Judges[j].Name(), len(flagged), tp, fp)
	}

	// Stream the committee's judgments through the estimator exactly like
	// crowd tasks.
	cfg := dqm.Defaults()
	cfg.CapToPopulation = true
	rec := dqm.NewRecorder(len(data.Records), cfg)
	tasks := committee.Tasks(len(data.Records), 10, xrand.New(seed))
	fmt.Printf("\n%8s %10s %10s %10s\n", "tasks", "NOMINAL", "VOTING", "SWITCH")
	for ti, task := range tasks {
		for i, item := range task.Items {
			rec.Record(item, task.Worker, task.Labels[i] == votes.Dirty)
		}
		rec.EndTask()
		if (ti+1)%100 == 0 || ti == len(tasks)-1 {
			e := rec.Estimates()
			fmt.Printf("%8d %10.0f %10.0f %10.1f\n", ti+1, e.Nominal, e.Voting, e.Switch.Total)
		}
	}

	// Score against ground truth and the committee's own ceiling.
	e := rec.Estimates()
	consensus := committee.Consensus(len(data.Records))
	reachable := 0
	for i, dirty := range consensus {
		if dirty && data.Truth.IsDirty(i) {
			reachable++
		}
	}
	fmt.Printf("\ntrue errors:                         %d\n", data.Truth.NumDirty())
	fmt.Printf("errors a committee majority can see: %d (its consensus ceiling)\n", reachable)
	fmt.Printf("current majority finds:              %.0f\n", e.Voting)
	fmt.Printf("SWITCH estimate:                     %.1f\n", e.Switch.Total)
	fmt.Println("\nthe estimate targets the committee's eventual consensus, not the unknowable")
	fmt.Println("long tail — fake-valid addresses are invisible to every member (§6.3).")
}
