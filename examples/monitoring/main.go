// Monitoring example: windowed quality estimation over a drifting error
// stream. The one-shot DQM setting assumes a fixed set of true errors; in a
// live pipeline the data keeps changing — a bad upstream deploy plants a
// fresh batch of errors long after the all-time estimate has converged on
// the old regime. This example drives exactly that scenario and contrasts
// three views of the same vote stream:
//
//   - the ALL-TIME estimate (the paper's setting): converges, then lags the
//     drift badly, because millions of old votes outweigh the new regime;
//   - the WINDOWED estimate (last completed window of tasks): tracks the
//     current error rate at window granularity;
//   - the DECAYED aggregate (EWMA over completed windows): smooths window
//     noise while still following the drift.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"math/rand"

	"dqm"
)

func main() {
	const (
		seed         = 7
		nItems       = 2000
		itemsPerTask = 40
		fpRate       = 0.02 // worker marks a clean item dirty
		fnRate       = 0.15 // worker misses a dirty item
		phase1Tasks  = 500  // stable low-error regime
		phase2Tasks  = 500  // after the drift: 4x the errors
	)
	rng := rand.New(rand.NewSource(seed))

	// Ground truth: 2% of items start dirty; at the drift point a "bad
	// deploy" corrupts another 6%.
	dirty := make([]bool, nItems)
	trueDirty := 0
	plant := func(count int) {
		for planted := 0; planted < count; {
			i := rng.Intn(nItems)
			if !dirty[i] {
				dirty[i] = true
				trueDirty++
				planted++
			}
		}
	}
	plant(nItems * 2 / 100)

	cfg := dqm.Defaults()
	cfg.Window = &dqm.WindowConfig{Size: 80, Stride: 20, DecayAlpha: 0.3}
	rec := dqm.NewRecorder(nItems, cfg)

	oneTask := func(worker int) {
		for k := 0; k < itemsPerTask; k++ {
			item := rng.Intn(nItems)
			vote := dirty[item]
			if vote {
				if rng.Float64() < fnRate {
					vote = false
				}
			} else if rng.Float64() < fpRate {
				vote = true
			}
			rec.Record(item, worker, vote)
		}
		rec.EndTask()
	}

	fmt.Printf("population %d items; windows of %d tasks sliding every %d; drift after task %d\n\n",
		nItems, cfg.Window.Size, cfg.Window.Stride, phase1Tasks)
	fmt.Printf("%7s %7s | %9s %9s | %9s %9s | %9s\n",
		"task", "truth", "SWITCH", "CHAO92", "win-SW", "win-CH", "decay-SW")

	report := func(task int) {
		e := rec.Estimates()
		win, werr := rec.WindowEstimates(dqm.WindowLast)
		dec, derr := rec.WindowEstimates(dqm.WindowDecayed)
		winSw, winCh, decSw := "-", "-", "-"
		if werr == nil {
			winSw = fmt.Sprintf("%9.0f", win.Estimates.Switch.Total)
			winCh = fmt.Sprintf("%9.0f", win.Estimates.Chao92)
		}
		if derr == nil {
			decSw = fmt.Sprintf("%9.0f", dec.Estimates.Switch.Total)
		}
		fmt.Printf("%7d %7d | %9.0f %9.0f | %9s %9s | %9s\n",
			task, trueDirty, e.Switch.Total, e.Chao92, winSw, winCh, decSw)
	}

	task := 0
	for ; task < phase1Tasks; task++ {
		oneTask(task % 25)
		if (task+1)%100 == 0 {
			report(task + 1)
		}
	}

	plant(nItems * 6 / 100)
	fmt.Printf("%7s ---- bad deploy: %d items corrupted ----\n", "", nItems*6/100)

	for ; task < phase1Tasks+phase2Tasks; task++ {
		oneTask(task % 25)
		if (task+1)%100 == 0 {
			report(task + 1)
		}
	}

	e := rec.Estimates()
	win, _ := rec.WindowEstimates(dqm.WindowLast)
	fmt.Printf("\nafter the drift the truth is %d dirty items:\n", trueDirty)
	fmt.Printf("  all-time SWITCH still reports %8.0f (anchored to the old regime)\n", e.Switch.Total)
	fmt.Printf("  windowed SWITCH reports       %8.0f over tasks [%d, %d)\n",
		win.Estimates.Switch.Total, win.Start, win.End)
	fmt.Printf("session version %d (mutation counter driving the serve layer's watch API)\n", rec.Version())
}
