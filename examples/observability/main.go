// Observability example: what the metrics plane sees while an engine works.
// A durable engine ingests a few cleaning campaigns, estimates are polled the
// way a dashboard would, and the program then prints the same Prometheus
// exposition dqm-serve serves on GET /metrics — engine ingest counters, the
// estimate-cache hit ratio, and the WAL append/fsync latency histograms.
//
// Run with: go run ./examples/observability
package main

import (
	"fmt"
	"os"
	"strings"

	"dqm"
	"dqm/internal/metrics"
	"dqm/internal/xrand"
)

func main() {
	dir, err := os.MkdirTemp("", "dqm-observability")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	eng, err := dqm.OpenEngine(dir, dqm.EngineConfig{Fsync: dqm.FsyncBatch})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	rng := xrand.New(7)
	const items, tasks, perTask = 2000, 400, 12
	for _, id := range []string{"orders", "users", "payments"} {
		sess, err := eng.CreateSession(id, items, dqm.Defaults())
		if err != nil {
			panic(err)
		}
		for t := 0; t < tasks; t++ {
			batch := make([]dqm.Vote, perTask)
			for i := range batch {
				batch[i] = dqm.Vote{
					Item:   rng.IntN(items),
					Worker: rng.IntN(20),
					Dirty:  rng.Bernoulli(0.08),
				}
			}
			if err := sess.AppendVotes(batch, true); err != nil {
				panic(err)
			}
			// A dashboard polls every task; most polls hit the lock-free
			// cache (one recompute per mutation, then hits until the next).
			sess.Estimates()
			sess.Estimates()
		}
		e := sess.Estimates()
		fmt.Printf("%-9s SWITCH=%6.1f  CHAO92=%6.1f  remaining=%5.1f\n",
			id, e.Switch.Total, e.Chao92, e.Remaining())
	}

	// The same registry dqm-serve exposes on /metrics. Here we print the
	// engine and WAL families (skipping the histogram bucket walls for
	// readability — a real scraper wants them all).
	var b strings.Builder
	if err := metrics.Default.WritePrometheus(&b); err != nil {
		panic(err)
	}
	fmt.Println("\n--- /metrics (engine + WAL families, buckets elided) ---")
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# HELP") || strings.Contains(line, "_bucket{") {
			continue
		}
		if line != "" {
			fmt.Println(line)
		}
	}
}
