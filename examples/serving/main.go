// Serving example: many cleaning campaigns sharing one estimation engine.
// Three datasets are cleaned concurrently by simulated crowds; each streams
// its votes into its own engine session from its own goroutine — the shape
// cmd/dqm-serve exposes over HTTP, shown here in-process. One campaign also
// checkpoints mid-stream and rolls back, demonstrating snapshot/restore of
// estimator state.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"sort"
	"sync"

	"dqm"
	"dqm/internal/crowd"
	"dqm/internal/dataset"
)

type campaign struct {
	id     string
	nItems int
	nDirty int
	nTasks int
	crowd  crowd.Profile
}

func main() {
	campaigns := []campaign{
		{"restaurant-dedup", 1500, 110, 700, crowd.Profile{FPRate: 0.02, FNRate: 0.20, Jitter: 0.2}},
		{"address-audit", 3000, 240, 900, crowd.Profile{FPRate: 0.005, FNRate: 0.12}},
		{"product-match", 800, 60, 500, crowd.Profile{FPRate: 0.01, FNRate: 0.30, Jitter: 0.3}},
	}

	eng := dqm.NewEngine(dqm.EngineConfig{Shards: 8})
	truths := make(map[string]int, len(campaigns))

	var wg sync.WaitGroup
	for ci, c := range campaigns {
		pop := dataset.NewPlantedPopulation(c.nItems, c.nDirty, uint64(100+ci), c.id)
		truths[c.id] = pop.NumDirty()
		sess, err := eng.CreateSession(c.id, c.nItems, dqm.Defaults())
		if err != nil {
			panic(err)
		}
		sim := crowd.NewSimulator(crowd.Config{
			Truth:        pop.Truth.IsDirty,
			N:            c.nItems,
			Profile:      c.crowd,
			ItemsPerTask: 12,
			Seed:         uint64(7 * (ci + 1)),
		})
		wg.Add(1)
		go func(c campaign, sess *dqm.Session) {
			defer wg.Done()
			var snap *dqm.Snapshot
			batch := make([]dqm.Vote, 0, 12)
			for t := 1; t <= c.nTasks; t++ {
				task := sim.NextTask()
				batch = batch[:0]
				for i, item := range task.Items {
					batch = append(batch, dqm.Vote{Item: item, Worker: task.Worker, Dirty: task.Labels[i] == 1})
				}
				if err := sess.AppendVotes(batch, true); err != nil {
					panic(err)
				}
				// The first campaign checkpoints halfway, keeps cleaning a
				// while, then rolls back — e.g. after discovering a batch of
				// bad worker submissions.
				if c.id == "restaurant-dedup" {
					switch t {
					case c.nTasks / 2:
						snap = sess.Snapshot()
					case c.nTasks/2 + 100:
						before := sess.Estimates().Switch.Total
						if err := sess.Restore(snap); err != nil {
							panic(err)
						}
						fmt.Printf("[%s] rolled back 100 tasks: SWITCH %.1f -> %.1f (snapshot at task %d)\n",
							c.id, before, sess.Estimates().Switch.Total, snap.Tasks())
					}
				}
			}
		}(c, sess)
	}

	wg.Wait()

	fmt.Printf("\n%-18s %8s %8s %10s %10s %10s %8s\n",
		"session", "tasks", "votes", "VOTING", "SWITCH", "remaining", "truth")
	ids := eng.SessionIDs()
	sort.Strings(ids)
	for _, id := range ids {
		sess, ok := eng.Session(id)
		if !ok {
			continue
		}
		e := sess.Estimates()
		fmt.Printf("%-18s %8d %8d %10.0f %10.1f %10.1f %8d\n",
			id, sess.Tasks(), sess.TotalVotes(), e.Voting, e.Switch.Total, e.Remaining(), truths[id])
	}
	fmt.Printf("\n%d sessions served by one engine; run `go run ./cmd/dqm-serve` for the HTTP version\n",
		eng.NumSessions())
}
