// Address cleaning example: the paper's §6.1.3 scenario. A registry of home
// addresses contains malformed entries spanning the Figure 1 taxonomy —
// missing fields, invalid city/zip values, functional-dependency violations
// (zip → city, state), business addresses, and fabricated addresses in a
// perfectly valid format. Harder error classes are proportionally more
// likely to be missed by each worker, producing the "long tail" the paper
// motivates: nominal/majority counts undershoot and the SWITCH estimator
// quantifies what remains.
//
// Run with: go run ./examples/addresscleaning
package main

import (
	"fmt"

	"dqm"
	"dqm/internal/crowd"
	"dqm/internal/dataset"
)

func main() {
	const seed = 3

	data := dataset.GenerateAddresses(dataset.AddressConfig{Records: 1000, Errors: 90, Seed: seed})
	fmt.Printf("dataset: %d addresses, %d malformed\n", len(data.Records), data.Truth.NumDirty())

	// Show one example of each planted error class.
	fmt.Println("\nerror taxonomy (one example each):")
	seen := map[dataset.AddressErrorKind]bool{}
	for _, a := range data.Records {
		if a.Kind != dataset.AddressOK && !seen[a.Kind] {
			seen[a.Kind] = true
			fmt.Printf("  %-14s %s\n", a.Kind, a)
		}
	}

	// Crowd verification: per-item difficulty scales each worker's miss
	// rate, so fake-but-valid addresses (difficulty 2.5) form a long tail.
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        data.Truth.IsDirty,
		N:            len(data.Records),
		Profile:      crowd.Profile{FPRate: 0.04, FNRate: 0.3, Jitter: 0.25},
		ItemsPerTask: 10,
		Difficulty: func(i int) float64 {
			return data.Records[i].Kind.Difficulty()
		},
		Seed: seed,
	})

	cfg := dqm.Defaults()
	cfg.CapToPopulation = true
	rec := dqm.NewRecorder(len(data.Records), cfg)

	fmt.Printf("\n%8s %10s %10s %10s %10s\n", "tasks", "NOMINAL", "VOTING", "SWITCH", "remaining")
	const nTasks = 600
	for t := 1; t <= nTasks; t++ {
		task := sim.NextTask()
		for i, item := range task.Items {
			rec.Record(item, task.Worker, task.Labels[i] == 1)
		}
		rec.EndTask()
		if t%100 == 0 {
			e := rec.Estimates()
			fmt.Printf("%8d %10.0f %10.0f %10.1f %10.1f\n",
				t, e.Nominal, e.Voting, e.Switch.Total, e.Remaining())
		}
	}

	e := rec.Estimates()
	fmt.Printf("\ntrue malformed addresses: %d\n", data.Truth.NumDirty())
	fmt.Printf("SWITCH estimate:          %.1f\n", e.Switch.Total)

	// How many of the still-wrong consensus decisions are long-tail errors?
	longTail := 0
	for i, a := range data.Records {
		if data.Truth.IsDirty(i) && !rec.MajorityDirty(i) &&
			(a.Kind == dataset.AddressFakeValid || a.Kind == dataset.AddressNonHome) {
			longTail++
		}
	}
	fmt.Printf("long-tail errors still missed by the majority: %d\n", longTail)
	fmt.Println("\nnote: fake-valid addresses push worker miss rates past 50%, violating the")
	fmt.Println("better-than-random assumption — the paper's §6.3 caveat that SWITCH cannot")
	fmt.Println("estimate 'black swan' errors no amount of additional workers would find.")
}
