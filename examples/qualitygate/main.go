// Quality-gate example: the metric exists to drive a decision — keep
// cleaning, or stop the pipeline? — and this example wires the whole
// alerting loop in-process:
//
//   - a windowed session ingests a drifting vote stream (same "bad deploy"
//     scenario as examples/monitoring: a fresh batch of errors is planted
//     long after the all-time estimate has converged);
//   - a declarative policy gates on the estimated REMAINING undetected
//     errors (critical → quarantine) and on the windowed drift ratio
//     (warning → warn);
//   - the gate re-evaluates event-driven off the session's version
//     notifier — no polling loop anywhere in this file;
//   - every action transition is POSTed as a webhook to a local HTTP
//     receiver through the bounded retry dispatcher, exactly as dqm-serve
//     delivers pages.
//
// Expected output: the gate quarantines the initial backlog, relaxes as
// cleaning converges, and occasionally warns when the decayed window sees
// residual errors the all-time estimate has written off. After the deploy
// the warning latches: the windowed view persistently reports fresh errors
// (the drift ratio pegs at its clamp) that the anchored all-time estimate
// never re-reports — exactly the blind spot the drift rule exists to cover.
// Each transition is POSTed to the webhook receiver, which prints the
// decision document it was paged with. (Exact transition versions vary with
// scheduling: evaluation is asynchronous by design.)
//
// Run with: go run ./examples/qualitygate
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"dqm"
	"dqm/internal/policy"
)

// source adapts *dqm.Session to policy.Source — the same adapter shape
// dqm-serve and dqm-loadgen use. The version is read BEFORE the estimates so
// a concurrent mutation makes the snapshot look stale (forcing a fresh
// evaluation) rather than current.
type source struct{ sess *dqm.Session }

func (s source) Version() uint64               { return s.sess.Version() }
func (s source) Notify(ch chan<- struct{})     { s.sess.Notify(ch) }
func (s source) StopNotify(ch chan<- struct{}) { s.sess.StopNotify(ch) }

func (s source) Inputs(need policy.Needs) (policy.Inputs, error) {
	in := policy.Inputs{Version: s.sess.Version()}
	est := s.sess.Estimates()
	in.Remaining = est.Remaining()
	in.SwitchTotal = est.Switch.Total
	in.Tasks = s.sess.Tasks()
	in.Votes = s.sess.TotalVotes()
	if need.Drift {
		if we, err := s.sess.WindowEstimates(dqm.WindowDecayed); err == nil {
			in.DriftRatio = policy.DriftRatio(we.Estimates.Remaining(), in.Remaining)
			in.HasDrift = true
		}
	}
	return in, nil
}

func main() {
	const (
		seed         = 7
		nItems       = 2000
		itemsPerTask = 40
		fpRate       = 0.02
		fnRate       = 0.15
		phase1Tasks  = 400
		phase2Tasks  = 400
	)
	rng := rand.New(rand.NewSource(seed))

	// Ground truth: 2% of items start dirty; mid-run a "bad deploy" corrupts
	// another 6%, quadrupling the backlog the crowd has to find.
	dirty := make([]bool, nItems)
	plant := func(count int) {
		for planted := 0; planted < count; {
			i := rng.Intn(nItems)
			if !dirty[i] {
				dirty[i] = true
				planted++
			}
		}
	}
	plant(nItems * 2 / 100)

	// A local webhook receiver standing in for a pager: prints every decision
	// document the dispatcher delivers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hookSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var dec policy.Decision
		if err := json.NewDecoder(r.Body).Decode(&dec); err == nil {
			fmt.Printf("  WEBHOOK %-10s session=%s version=%d tasks=%d violations=%d\n",
				dec.Action, dec.Session, dec.Version, dec.Tasks, len(dec.Violations))
		}
		w.WriteHeader(http.StatusNoContent)
	})}
	go hookSrv.Serve(ln)
	defer hookSrv.Close()
	hookURL := "http://" + ln.Addr().String() + "/pager"

	eng := dqm.NewEngine(dqm.EngineConfig{})
	cfg := dqm.Defaults()
	cfg.Window = &dqm.WindowConfig{Size: 80, Stride: 20, DecayAlpha: 0.3}
	sess, err := eng.CreateSession("orders", nItems, cfg)
	if err != nil {
		panic(err)
	}

	// The policy: quarantine while more than 25 estimated errors remain
	// undetected, warn when the decayed window reports an order of magnitude
	// more remaining errors than the all-time view (the signature of fresh
	// corruption the converged estimate is blind to). min_tasks keeps the
	// first noisy estimates from paging anyone. This JSON is exactly what
	// PUT /v1/sessions/orders/policy accepts.
	pol, err := policy.Parse([]byte(fmt.Sprintf(`{
		"rules": [
			{"name":"too-dirty", "metric":"remaining",   "op":">", "value":25},
			{"name":"drifting",  "metric":"drift_ratio", "op":">", "value":10,
			 "severity":"warning"}
		],
		"min_tasks": 20,
		"webhook": {"url": %q}
	}`, hookURL)))
	if err != nil {
		panic(err)
	}

	dispatcher := policy.NewDispatcher(policy.DispatcherConfig{})
	defer dispatcher.Close()
	var transitions atomic.Int64
	gate := policy.NewGate(pol, source{sess: sess}, policy.GateConfig{
		SessionID:   "orders",
		MinInterval: time.Millisecond,
		OnTransition: func(prev, cur policy.Action, dec policy.Decision, body []byte) {
			transitions.Add(1)
			fmt.Printf("TRANSITION %s -> %s at version %d (remaining=%.0f)\n",
				prev, cur, dec.Version, dec.Inputs.Remaining)
			dispatcher.Enqueue(policy.Delivery{URL: hookURL, Body: body})
		},
	})
	defer gate.Close()

	oneTask := func(worker int) {
		batch := make([]dqm.Vote, 0, itemsPerTask)
		for k := 0; k < itemsPerTask; k++ {
			item := rng.Intn(nItems)
			vote := dirty[item]
			if vote {
				if rng.Float64() < fnRate {
					vote = false
				}
			} else if rng.Float64() < fpRate {
				vote = true
			}
			batch = append(batch, dqm.Vote{Item: item, Worker: worker, Dirty: vote})
		}
		if err := sess.AppendVotes(batch, true); err != nil {
			panic(err)
		}
	}

	report := func(task int) {
		// Wait out the gate's coalescing interval so the decision reflects
		// this task — a real client just reads GET .../gate, which serves the
		// cached frame with an ETag.
		for gate.Stale() {
			time.Sleep(time.Millisecond)
		}
		f := gate.Frame()
		drift := 0.0
		if f.Decision.Inputs.DriftRatio != nil {
			drift = *f.Decision.Inputs.DriftRatio
		}
		fmt.Printf("%7d tasks  action=%-10s remaining=%6.0f drift=%8.2f armed=%v\n",
			task, f.Action, f.Decision.Inputs.Remaining, drift, f.Decision.Armed)
	}

	fmt.Printf("gate policy: quarantine while remaining > 25; drift warning > 10\n\n")
	task := 0
	for ; task < phase1Tasks; task++ {
		oneTask(task % 25)
		if (task+1)%50 == 0 {
			report(task + 1)
		}
	}

	plant(nItems * 6 / 100)
	fmt.Printf("        ---- bad deploy: %d items corrupted ----\n", nItems*6/100)

	for ; task < phase1Tasks+phase2Tasks; task++ {
		oneTask(task % 25)
		if (task+1)%50 == 0 {
			report(task + 1)
		}
	}

	// Let in-flight webhook deliveries drain before exiting: every transition
	// terminates as exactly one delivery or one dead letter.
	for i := 0; i < 500 && dispatcher.Deliveries()+dispatcher.DeadLetters() < transitions.Load(); i++ {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("\nwebhook deliveries=%d dead_letters=%d\n",
		dispatcher.Deliveries(), dispatcher.DeadLetters())
}
