package estimator

import (
	"math"
	"math/rand/v2"
	"testing"

	"dqm/internal/stats"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
)

func TestNominalVoting(t *testing.T) {
	m := votes.NewMatrix(4)
	m.AddAll([]votes.Vote{
		{Item: 0, Label: votes.Dirty},
		{Item: 1, Label: votes.Dirty}, {Item: 1, Label: votes.Clean},
		{Item: 2, Label: votes.Clean},
	})
	if got := Nominal(m); got != 2 {
		t.Fatalf("Nominal = %v", got)
	}
	if got := Voting(m); got != 1 {
		t.Fatalf("Voting = %v", got)
	}
}

func TestExtrapolate(t *testing.T) {
	// The paper's running example: a 1% sample with 4 errors extrapolates
	// to 400 total and 396 remaining.
	if got := Extrapolate(4, 10, 1000); got != 400 {
		t.Fatalf("Extrapolate = %v, want 400", got)
	}
	if got := ExtrapolateRemaining(4, 10, 1000); got != 396 {
		t.Fatalf("ExtrapolateRemaining = %v, want 396", got)
	}
	if got := Extrapolate(4, 0, 1000); got != 0 {
		t.Fatalf("zero sample = %v", got)
	}
	if got := Extrapolate(4, 10, 0); got != 0 {
		t.Fatalf("zero population = %v", got)
	}
}

func TestChao92MatchesStats(t *testing.T) {
	m := votes.NewMatrix(10)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		m.Add(votes.Vote{Item: rng.IntN(10), Label: votes.Label(rng.IntN(2))})
	}
	want := stats.Chao92(stats.Chao92Input{
		C: m.Nominal(), F: m.DirtyFingerprint(), N: m.PositiveVotes(),
	}).Estimate
	if got := Chao92(m); got != want {
		t.Fatalf("Chao92 = %v, want %v", got, want)
	}
	wantNoskew := stats.Chao92NoSkew(stats.Chao92Input{
		C: m.Nominal(), F: m.DirtyFingerprint(), N: m.PositiveVotes(),
	}).Estimate
	if got := Chao92(m, WithoutSkewCorrection()); got != wantNoskew {
		t.Fatalf("Chao92 noskew = %v, want %v", got, wantNoskew)
	}
}

func TestVChao92ShiftArithmetic(t *testing.T) {
	// Construct a matrix with known positive-vote fingerprint:
	// items 0,1 once; item 2 twice; item 3 thrice → f = {f1:2 f2:1 f3:1},
	// n⁺ = 7. Majority: all four items have dirty majorities.
	m := votes.NewMatrix(5)
	add := func(item, times int) {
		for k := 0; k < times; k++ {
			m.Add(votes.Vote{Item: item, Label: votes.Dirty})
		}
	}
	add(0, 1)
	add(1, 1)
	add(2, 2)
	add(3, 3)

	// Shift 1, count adjustment: f' = {f1:1 f2:1}, n = 7 − f1 = 5,
	// c = majority = 4.
	want := stats.Chao92(stats.Chao92Input{C: 4, F: stats.Freq{0, 1, 1}, N: 5}).Estimate
	if got := VChao92(m, VChao92Config{Shift: 1}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("vChao92 s=1 = %v, want %v", got, want)
	}

	// Mass adjustment subtracts 1·f1 = 2 instead.
	wantMass := stats.Chao92(stats.Chao92Input{C: 4, F: stats.Freq{0, 1, 1}, N: 5}).Estimate
	if got := VChao92(m, VChao92Config{Shift: 1, MassAdjust: true}); math.Abs(got-wantMass) > 1e-9 {
		t.Fatalf("vChao92 s=1 mass = %v, want %v", got, wantMass)
	}

	// Shift 2: f' = {f1:1}, count adjustment n = 7 − (2+1) = 4.
	want2 := stats.Chao92(stats.Chao92Input{C: 4, F: stats.Freq{0, 1}, N: 4}).Estimate
	if got := VChao92(m, VChao92Config{Shift: 2}); math.Abs(got-want2) > 1e-9 {
		t.Fatalf("vChao92 s=2 = %v, want %v", got, want2)
	}
}

func TestVChao92PanicsOnNegativeShift(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift did not panic")
		}
	}()
	VChao92(votes.NewMatrix(1), VChao92Config{Shift: -1})
}

func TestTrendString(t *testing.T) {
	if TrendFlat.String() != "flat" || TrendUp.String() != "up" || TrendDown.String() != "down" {
		t.Fatal("trend strings wrong")
	}
	if Trend(9).String() != "Trend(9)" {
		t.Fatal("unknown trend string")
	}
	if NModeGlobal.String() != "global" || NModeSignMass.String() != "sign-mass" {
		t.Fatal("nmode strings wrong")
	}
	if NMode(9).String() != "NMode(9)" {
		t.Fatal("unknown nmode string")
	}
}

// feedTasks streams synthetic tasks into the estimator: each task takes
// itemsPerTask votes from the provided generator.
func feedTasks(e *SwitchEstimator, nTasks, itemsPerTask int, gen func() votes.Vote) {
	for t := 0; t < nTasks; t++ {
		for i := 0; i < itemsPerTask; i++ {
			e.Observe(gen())
		}
		e.EndTask()
	}
}

func TestSwitchTrendDetection(t *testing.T) {
	// Feed a stream where the majority count strictly grows: new items keep
	// being marked dirty.
	e := NewSwitch(4000, SwitchConfig{})
	next := 0
	feedTasks(e, 60, 10, func() votes.Vote {
		v := votes.Vote{Item: next, Label: votes.Dirty}
		next++
		return v
	})
	if got := e.Estimate().Trend; got != TrendUp {
		t.Fatalf("growing majority detected as %v", got)
	}

	// Now a stream where previously dirty items get cleaned: majority falls.
	e2 := NewSwitch(4000, SwitchConfig{})
	next = 0
	feedTasks(e2, 30, 10, func() votes.Vote { // mark 300 dirty
		v := votes.Vote{Item: next, Label: votes.Dirty}
		next++
		return v
	})
	cleanIdx := 0
	feedTasks(e2, 40, 10, func() votes.Vote { // clean them twice over
		v := votes.Vote{Item: cleanIdx % 300, Label: votes.Clean}
		cleanIdx++
		return v
	})
	if got := e2.Estimate().Trend; got != TrendDown {
		t.Fatalf("falling majority detected as %v", got)
	}
}

func TestSwitchTrendSticky(t *testing.T) {
	// After a long down trend, a perfectly flat tail keeps the down branch.
	e := NewSwitch(1000, SwitchConfig{})
	next := 0
	feedTasks(e, 20, 10, func() votes.Vote {
		v := votes.Vote{Item: next, Label: votes.Dirty}
		next++
		return v
	})
	cleanIdx := 0
	feedTasks(e, 60, 10, func() votes.Vote {
		v := votes.Vote{Item: cleanIdx % 200, Label: votes.Clean}
		cleanIdx++
		return v
	})
	if e.Estimate().Trend != TrendDown {
		t.Fatal("setup failed to establish a down trend")
	}
	// Flat tail: votes on one already-decided item.
	feedTasks(e, 30, 10, func() votes.Vote {
		return votes.Vote{Item: 999, Label: votes.Clean}
	})
	if got := e.Estimate().Trend; got != TrendDown {
		t.Fatalf("flat tail flipped trend to %v", got)
	}
}

func TestSwitchXiFloorsAtZero(t *testing.T) {
	e := NewSwitch(10, SwitchConfig{})
	e.Observe(votes.Vote{Item: 0, Label: votes.Dirty})
	e.EndTask()
	est := e.Estimate()
	if est.XiPos < 0 || est.XiNeg < 0 || est.RemainingSwitches < 0 {
		t.Fatalf("negative remaining estimates: %+v", est)
	}
}

func TestSwitchCapToPopulation(t *testing.T) {
	e := NewSwitch(20, SwitchConfig{CapToPopulation: true})
	// Many singleton positive switches → huge uncapped estimate.
	for i := 0; i < 20; i++ {
		e.Observe(votes.Vote{Item: i, Label: votes.Dirty})
	}
	e.EndTask()
	if got := e.Estimate().Total; got > 20 {
		t.Fatalf("capped total %v exceeds population", got)
	}
}

func TestSwitchEmptyStream(t *testing.T) {
	e := NewSwitch(5, SwitchConfig{})
	est := e.Estimate()
	if est.Total != 0 || est.XiPos != 0 || est.XiNeg != 0 {
		t.Fatalf("empty stream estimate: %+v", est)
	}
}

func TestSwitchReset(t *testing.T) {
	e := NewSwitch(5, SwitchConfig{})
	e.Observe(votes.Vote{Item: 0, Label: votes.Dirty})
	e.EndTask()
	e.Reset()
	if e.Tasks() != 0 {
		t.Fatal("Reset left task count")
	}
	est := e.Estimate()
	if est.Total != 0 || est.Majority != 0 {
		t.Fatalf("Reset left estimate state: %+v", est)
	}
}

// TestSwitchConvergesWithReliableWorkers is the §4.2 convergence property:
// with workers better than random, the SWITCH total approaches the true
// error count as votes accumulate.
func TestSwitchConvergesWithReliableWorkers(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	const (
		n      = 400
		nDirty = 60
	)
	dirty := make(map[int]bool, nDirty)
	for len(dirty) < nDirty {
		dirty[rng.IntN(n)] = true
	}
	e := NewSwitch(n, SwitchConfig{})
	for task := 0; task < 1200; task++ {
		for i := 0; i < 10; i++ {
			item := rng.IntN(n)
			isDirty := dirty[item]
			label := votes.Clean
			// 85% accurate workers.
			if isDirty != (rng.Float64() < 0.15) {
				label = votes.Dirty
			}
			e.Observe(votes.Vote{Item: item, Label: label})
		}
		e.EndTask()
	}
	got := e.Estimate().Total
	if math.Abs(got-nDirty) > 0.2*nDirty {
		t.Fatalf("SWITCH total %v not within 20%% of %d", got, nDirty)
	}
}

// TestSwitchPerfectWorkers: with infallible workers every estimator agrees
// with the truth once every item is covered.
func TestSwitchPerfectWorkers(t *testing.T) {
	const n = 100
	dirty := func(i int) bool { return i%10 == 0 } // 10 errors
	suite := NewSuite(n, SuiteConfig{})
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			label := votes.Clean
			if dirty(i) {
				label = votes.Dirty
			}
			suite.Observe(votes.Vote{Item: i, Worker: pass, Label: label})
			if i%10 == 9 {
				suite.EndTask()
			}
		}
	}
	est := suite.EstimateAll()
	if est.Nominal != 10 || est.Voting != 10 {
		t.Fatalf("descriptive estimates wrong: %+v", est)
	}
	if math.Abs(est.Switch.Total-10) > 1e-9 {
		t.Fatalf("SWITCH with perfect workers = %v, want 10", est.Switch.Total)
	}
	if est.Switch.RemainingSwitches > 1 {
		t.Fatalf("remaining switches %v with perfect workers", est.Switch.RemainingSwitches)
	}
	if math.Abs(est.Chao92-10) > 1 {
		t.Fatalf("Chao92 with perfect workers = %v", est.Chao92)
	}
}

func TestSwitchNModeSignMass(t *testing.T) {
	// Both modes must produce sane (non-negative, finite) estimates.
	rng := rand.New(rand.NewPCG(13, 14))
	for _, mode := range []NMode{NModeGlobal, NModeSignMass} {
		e := NewSwitch(50, SwitchConfig{NMode: mode})
		for i := 0; i < 500; i++ {
			e.Observe(votes.Vote{Item: rng.IntN(50), Label: votes.Label(rng.IntN(2))})
			if i%10 == 9 {
				e.EndTask()
			}
		}
		est := e.Estimate()
		if math.IsNaN(est.Total) || math.IsInf(est.Total, 0) || est.Total < 0 {
			t.Fatalf("mode %v: bad total %v", mode, est.Total)
		}
		if est.DPos < float64(e.Tracker().PositiveSwitches()) {
			t.Fatalf("mode %v: D⁺ %v below observed switches", mode, est.DPos)
		}
	}
}

func TestSwitchPolicyOption(t *testing.T) {
	e := NewSwitch(1, SwitchConfig{Policy: switchstat.PolicyStrictMajority})
	if got := e.Tracker().Policy(); got != switchstat.PolicyStrictMajority {
		t.Fatalf("policy not propagated: %v", got)
	}
}

func TestSuiteByName(t *testing.T) {
	e := Estimates{Nominal: 1, Voting: 2, Chao92: 3, VChao92: 4, Switch: SwitchEstimate{Total: 5}}
	cases := map[string]float64{
		NameNominal: 1, NameVoting: 2, NameChao92: 3, NameVChao92: 4, NameSwitch: 5, "bogus": 0,
	}
	for name, want := range cases {
		if got := e.ByName(name); got != want {
			t.Fatalf("ByName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSuiteDefaultShift(t *testing.T) {
	s := NewSuite(10, SuiteConfig{})
	if got := s.Config().VChao92.Shift; got != 1 {
		t.Fatalf("default vChao92 shift = %d, want 1", got)
	}
}

func TestSuiteCapClampsChao(t *testing.T) {
	s := NewSuite(5, SuiteConfig{CapToPopulation: true})
	for i := 0; i < 5; i++ {
		s.Observe(votes.Vote{Item: i, Label: votes.Dirty})
	}
	s.EndTask()
	est := s.EstimateAll()
	if est.Chao92 > 5 || est.VChao92 > 5 || est.Switch.Total > 5 {
		t.Fatalf("cap violated: %+v", est)
	}
}

func TestSuiteReset(t *testing.T) {
	s := NewSuite(5, SuiteConfig{})
	s.ObserveTask([]votes.Vote{{Item: 0, Label: votes.Dirty}})
	s.Reset()
	est := s.EstimateAll()
	if est.Nominal != 0 || est.Switch.Total != 0 {
		t.Fatalf("Reset left estimates: %+v", est)
	}
}
