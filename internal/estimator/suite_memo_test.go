package estimator

import (
	"reflect"
	"testing"

	"dqm/internal/votes"
)

// memoFeed streams deterministic tasks into a suite.
func memoFeed(s *Suite, tasks, perTask int) {
	for t := 0; t < tasks; t++ {
		for i := 0; i < perTask; i++ {
			label := votes.Clean
			if (t+i)%3 == 0 {
				label = votes.Dirty
			}
			s.Observe(votes.Vote{Item: (t*7 + i) % s.NumItems(), Worker: t % 5, Label: label})
		}
		s.EndTask()
	}
}

// TestSuiteVersionAdvancesOnEveryMutation: the version is the cache key of
// the whole read plane, so every mutating entry point must move it.
func TestSuiteVersionAdvancesOnEveryMutation(t *testing.T) {
	s := NewSuite(10, SuiteConfig{})
	if s.Version() != 0 {
		t.Fatalf("fresh suite version = %d, want 0", s.Version())
	}
	s.Observe(votes.Vote{Item: 1, Worker: 0, Label: votes.Dirty})
	if s.Version() != 1 {
		t.Fatalf("after Observe version = %d, want 1", s.Version())
	}
	s.EndTask()
	if s.Version() != 2 {
		t.Fatalf("after EndTask version = %d, want 2", s.Version())
	}
	s.Reset()
	if s.Version() != 3 {
		t.Fatalf("after Reset version = %d, want 3", s.Version())
	}
	// Reads never move the version.
	s.EstimateAll()
	s.EstimateAll()
	if s.Version() != 3 {
		t.Fatalf("EstimateAll moved the version to %d", s.Version())
	}
}

// TestEstimateAllMemoMatchesUncached: the memoized path must be observationally
// identical to a full recompute at every point of the stream, including right
// after a reset.
func TestEstimateAllMemoMatchesUncached(t *testing.T) {
	s := NewSuite(40, SuiteConfig{Switch: SwitchConfig{TrendWindow: 4}})
	for round := 0; round < 30; round++ {
		memoFeed(s, 3, 6)
		memo := s.EstimateAll()
		if again := s.EstimateAll(); !reflect.DeepEqual(again, memo) {
			t.Fatalf("round %d: repeated memoized reads differ", round)
		}
		if raw := s.EstimateAllUncached(); !reflect.DeepEqual(raw, memo) {
			t.Fatalf("round %d: memoized %+v != uncached %+v", round, memo, raw)
		}
	}
	s.Reset()
	if got, want := s.EstimateAll(), s.EstimateAllUncached(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset memo %+v != uncached %+v", got, want)
	}
}

// TestEstimateAllMemoInvalidatedByMutation: a stale snapshot must never be
// served after the stream moves.
func TestEstimateAllMemoInvalidatedByMutation(t *testing.T) {
	s := NewSuite(20, SuiteConfig{})
	memoFeed(s, 4, 5)
	before := s.EstimateAll()
	s.Observe(votes.Vote{Item: 19, Worker: 9, Label: votes.Dirty})
	after := s.EstimateAll()
	if reflect.DeepEqual(before, after) {
		t.Fatal("memo served a pre-mutation snapshot (Nominal should have moved)")
	}
	if !reflect.DeepEqual(after, s.EstimateAllUncached()) {
		t.Fatal("post-mutation memo diverges from recompute")
	}
}

// TestEstimateAllExtraMapIsPrivate: callers mutating the returned Extra map
// must not corrupt later reads (the memo clones on the way in and out).
func TestEstimateAllExtraMapIsPrivate(t *testing.T) {
	name := "memo-extra-probe"
	Register(name, func(env Env) Estimator {
		return newMatrixMember(env, name, false, func(m *votes.Matrix, _ SuiteConfig) float64 {
			return float64(m.TotalVotes())
		})
	})
	s := NewSuite(10, SuiteConfig{Estimators: []string{NameVoting, name}})
	s.Observe(votes.Vote{Item: 0, Worker: 0, Label: votes.Dirty})
	first := s.EstimateAll()
	if first.Extra[name] != 1 {
		t.Fatalf("extra estimate = %v, want 1", first.Extra[name])
	}
	first.Extra[name] = -999 // hostile caller
	if got := s.EstimateAll().Extra[name]; got != 1 {
		t.Fatalf("cache corrupted by caller mutation: got %v, want 1", got)
	}
	second := s.EstimateAll()
	third := s.EstimateAll()
	second.Extra[name] = -1
	if third.Extra[name] != 1 {
		t.Fatal("two cache hits alias one Extra map")
	}
}

// TestCloneCarriesVersion: a snapshot clone agrees with its source about the
// stream position, so version-keyed caches built on either side line up.
func TestCloneCarriesVersion(t *testing.T) {
	s := NewSuite(15, SuiteConfig{})
	memoFeed(s, 5, 4)
	c := s.Clone()
	if c.Version() != s.Version() {
		t.Fatalf("clone version %d != source %d", c.Version(), s.Version())
	}
	// Divergence after the clone moves the versions independently.
	c.EndTask()
	if c.Version() == s.Version() {
		t.Fatal("clone and source share a version counter")
	}
	if !reflect.DeepEqual(s.EstimateAll(), s.EstimateAllUncached()) {
		t.Fatal("source memo broken after clone")
	}
}
