package estimator

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dqm/internal/stats"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Bootstrap confidence intervals answer the paper's §6.3 question — "how
// much trust can an analyst place in our estimates?" — by resampling the
// item dimension of the observed data: items are the exchangeable units of
// the species-estimation model, so a nonparametric bootstrap over item rows
// propagates sampling variability into the estimate.
//
// The machinery is split into capture and compute so callers holding a lock
// can release it before the replicate loop: CaptureChao92 / CaptureBootstrap
// copy the minimal per-item state (positive counts; flattened switch
// ledgers) into a pooled state object, and state.Bootstrap runs the b
// replicates — serially or fanned over a bounded worker pool. Replicate i
// always draws from the child RNG stream SplitAt(i) of the caller's base
// RNG, so the interval is a pure function of (state, seed, b, level),
// identical at any worker count.

// CI is a two-sided percentile confidence interval around an estimate.
type CI struct {
	Lo, Hi float64
	// Level is the nominal confidence level, e.g. 0.95.
	Level float64
	// Replicates is the number of bootstrap resamples used.
	Replicates int
}

// Contains reports whether v lies within the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi − Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

func percentileCI(samples []float64, level float64, reps int) CI {
	sort.Float64s(samples)
	alpha := (1 - level) / 2
	lo := samples[int(alpha*float64(len(samples)-1))]
	hi := samples[int((1-alpha)*float64(len(samples)-1))]
	return CI{Lo: lo, Hi: hi, Level: level, Replicates: reps}
}

// runReplicates evaluates f(rep, rng) for every rep in [0, b), where rng is
// the rep-indexed child of base. With workers ≤ 1 the loop is inline; above
// that, workers goroutines claim replicate indices from a shared counter.
// Each worker reuses one scratch RNG (reseeded per replicate), so the fan-out
// allocates O(workers), not O(b).
func runReplicates(b, workers int, base *xrand.RNG, f func(rep int, rng *xrand.RNG)) {
	if workers > b {
		workers = b
	}
	if workers <= 1 {
		rng := base.SplitAt(0)
		for rep := 0; rep < b; rep++ {
			rng.ReseedAt(base, uint64(rep))
			f(rep, rng)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			rng := base.SplitAt(0)
			for {
				rep := int(next.Add(1)) - 1
				if rep >= b {
					return
				}
				rng.ReseedAt(base, uint64(rep))
				f(rep, rng)
			}
		}()
	}
	wg.Wait()
}

// DefaultBootstrapWorkers is the worker-pool width used when a caller passes
// workers ≤ 0: one per CPU, capped — replicate loops are compute-bound and
// wider pools only add scheduling noise.
func DefaultBootstrapWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// estsPool recycles the replicate-estimate slices across bootstrap calls.
var estsPool = sync.Pool{New: func() any { return new([]float64) }}

func getEsts(b int) *[]float64 {
	p := estsPool.Get().(*[]float64)
	if cap(*p) < b {
		*p = make([]float64, b)
	}
	*p = (*p)[:b]
	return p
}

// Chao92BootstrapState is the captured input of the Chao92 bootstrap: the
// per-item positive-vote counts. States are pooled; Release returns one.
type Chao92BootstrapState struct {
	pos []int
}

var chao92StatePool = sync.Pool{New: func() any { return new(Chao92BootstrapState) }}

// CaptureChao92 snapshots the matrix state the Chao92 bootstrap needs into a
// pooled state. The caller must serialize the capture with matrix mutations
// (it is O(n) reads); Bootstrap on the returned state needs no further access
// to the matrix.
func CaptureChao92(m *votes.Matrix) *Chao92BootstrapState {
	st := chao92StatePool.Get().(*Chao92BootstrapState)
	n := m.NumItems()
	if cap(st.pos) < n {
		st.pos = make([]int, n)
	}
	st.pos = st.pos[:n]
	for i := 0; i < n; i++ {
		st.pos[i] = m.Pos(i)
	}
	return st
}

// Release returns the state to the pool. The state must not be used after.
func (st *Chao92BootstrapState) Release() { chao92StatePool.Put(st) }

// Bootstrap computes the percentile CI from the captured state. Replicate i
// draws from rng.SplitAt(i), so the result is independent of the worker
// count; workers ≤ 0 selects DefaultBootstrapWorkers. Each replicate
// accumulates the Chao92 sufficient statistic (c, f₁, pair sum, n) directly
// from the n item draws — no per-replicate fingerprint or count buffer.
func (st *Chao92BootstrapState) Bootstrap(b int, level float64, rng *xrand.RNG, workers int) (CI, error) {
	if err := checkBootstrapArgs(b, level); err != nil {
		return CI{}, err
	}
	if workers <= 0 {
		workers = DefaultBootstrapWorkers()
	}
	n := len(st.pos)
	ests := getEsts(b)
	defer estsPool.Put(ests)
	runReplicates(b, workers, rng, func(rep int, rng *xrand.RNG) {
		var species, mass, pairSum, f1 int64
		for k := 0; k < n; k++ {
			c := st.pos[rng.IntN(n)]
			if c <= 0 {
				continue
			}
			species++
			mass += int64(c)
			pairSum += int64(c) * int64(c-1)
			if c == 1 {
				f1++
			}
		}
		in := stats.Chao92Stats{C: species, F1: f1, PairSum: pairSum, N: mass}
		(*ests)[rep] = stats.Chao92FromStats(in).Estimate
	})
	return percentileCI(*ests, level, b), nil
}

// BootstrapChao92 returns a percentile CI for the Chao92 total-error
// estimate by resampling items (with replacement) from the matrix. B is
// the number of replicates (≥ 10); level the confidence level. It is the
// one-shot form of CaptureChao92 + Bootstrap, run on the caller's goroutine.
func BootstrapChao92(m *votes.Matrix, b int, level float64, rng *xrand.RNG) (CI, error) {
	st := CaptureChao92(m)
	defer st.Release()
	return st.Bootstrap(b, level, rng, 1)
}

// SwitchBootstrapState is the captured input of the SWITCH bootstrap: every
// item's switch ledger flattened into one event slice with per-item offsets,
// the per-item majority bits, and the frozen trend branch. States are pooled.
type SwitchBootstrapState struct {
	n      int
	events []switchstat.SwitchEvent
	start  []int // len n+1; item i's events are events[start[i]:start[i+1]]
	maj    []bool
	trend  Trend
	nMode  NMode
	capPop bool
}

var switchStatePool = sync.Pool{New: func() any { return new(SwitchBootstrapState) }}

// CaptureBootstrap snapshots the estimator state the SWITCH bootstrap needs
// into a pooled state. The estimator must have been built with RetainLedgers
// (see SwitchConfig). The caller must serialize the capture with vote
// ingestion; Bootstrap on the returned state needs no further access to the
// estimator.
func (e *SwitchEstimator) CaptureBootstrap() (*SwitchBootstrapState, error) {
	tr := e.tracker
	if !tr.RetainsLedgers() {
		return nil, fmt.Errorf("estimator: bootstrap requires SwitchConfig.RetainLedgers")
	}
	n := tr.NumItems()
	st := switchStatePool.Get().(*SwitchBootstrapState)
	st.n = n
	if cap(st.start) < n+1 {
		st.start = make([]int, n+1)
	}
	st.start = st.start[:n+1]
	if cap(st.maj) < n {
		st.maj = make([]bool, n)
	}
	st.maj = st.maj[:n]
	st.events = st.events[:0]
	for i := 0; i < n; i++ {
		st.start[i] = len(st.events)
		st.events = append(st.events, tr.ItemLedger(i)...)
		st.maj[i] = tr.ItemMajorityDirty(i)
	}
	st.start[n] = len(st.events)
	st.trend = e.trend()
	st.nMode = e.cfg.NMode
	st.capPop = e.cfg.CapToPopulation
	return st, nil
}

// Release returns the state to the pool. The state must not be used after.
func (st *SwitchBootstrapState) Release() { switchStatePool.Put(st) }

// signAcc accumulates one sign's switch fingerprint statistics over a
// replicate: each ledger event of frequency j contributes one species of
// class j, exactly as Freq.Add(j, 1) would.
type signAcc struct {
	species, mass, pairSum, f1 int64
}

func (a *signAcc) add(freq int64) {
	a.species++
	a.mass += freq
	a.pairSum += freq * (freq - 1)
	if freq == 1 {
		a.f1++
	}
}

// Bootstrap computes the percentile CI from the captured state, with the
// same determinism and worker-pool contract as Chao92BootstrapState.
func (st *SwitchBootstrapState) Bootstrap(b int, level float64, rng *xrand.RNG, workers int) (CI, error) {
	if err := checkBootstrapArgs(b, level); err != nil {
		return CI{}, err
	}
	if workers <= 0 {
		workers = DefaultBootstrapWorkers()
	}
	ests := getEsts(b)
	defer estsPool.Put(ests)
	runReplicates(b, workers, rng, func(rep int, rng *xrand.RNG) {
		(*ests)[rep] = st.replicate(rng)
	})
	return percentileCI(*ests, level, b), nil
}

// replicate draws one item resample and recomputes the trend-corrected SWITCH
// estimate from the flattened ledgers, accumulating sign statistics as
// scalars (no per-replicate fingerprints).
func (st *SwitchBootstrapState) replicate(rng *xrand.RNG) float64 {
	var (
		pos, neg   signAcc
		cPos, cNeg int64
		nSwitch    int64
		maj        int64
	)
	n := st.n
	for k := 0; k < n; k++ {
		i := rng.IntN(n)
		if st.maj[i] {
			maj++
		}
		lo, hi := st.start[i], st.start[i+1]
		if lo == hi {
			continue
		}
		hasPos, hasNeg := false, false
		for _, ev := range st.events[lo:hi] {
			freq := int64(ev.Freq)
			nSwitch += freq
			if ev.Positive {
				pos.add(freq)
				hasPos = true
			} else {
				neg.add(freq)
				hasNeg = true
			}
		}
		if hasPos {
			cPos++
		}
		if hasNeg {
			cNeg++
		}
	}
	xiPos := bootXi(st.nMode, cPos, pos, nSwitch)
	xiNeg := bootXi(st.nMode, cNeg, neg, nSwitch)
	var total float64
	switch st.trend {
	case TrendUp:
		total = float64(maj) + xiPos
	case TrendDown:
		total = float64(maj) - xiNeg
	default:
		total = float64(maj) + xiPos - xiNeg
	}
	if st.capPop {
		total = stats.Clamp(total, 0, float64(n))
	} else if total < 0 {
		total = 0
	}
	return total
}

// BootstrapSwitch returns a percentile CI for the SWITCH total-error
// estimate. It is the one-shot form of CaptureBootstrap + Bootstrap, run on
// the caller's goroutine.
func (e *SwitchEstimator) BootstrapSwitch(b int, level float64, rng *xrand.RNG) (CI, error) {
	st, err := e.CaptureBootstrap()
	if err != nil {
		return CI{}, err
	}
	defer st.Release()
	return st.Bootstrap(b, level, rng, 1)
}

// bootXi is the replicate-side ξ: the estimated remaining switches of one
// sign. The sign's observed species count equals its accumulated species
// (one per ledger event), so observed is read from the accumulator.
func bootXi(mode NMode, c int64, a signAcc, nSwitch int64) float64 {
	if c == 0 {
		return 0
	}
	n := nSwitch
	if mode == NModeSignMass {
		n = a.mass
	}
	d := stats.Chao92FromStats(stats.Chao92Stats{C: c, F1: a.f1, PairSum: a.pairSum, N: n}).Estimate
	observed := float64(a.species)
	if d < observed {
		d = observed
	}
	return math.Max(0, d-observed)
}

// ValidateBootstrapArgs checks the replicate count and confidence level, so
// API layers can reject a bad CI request before capturing any state.
func ValidateBootstrapArgs(b int, level float64) error { return checkBootstrapArgs(b, level) }

func checkBootstrapArgs(b int, level float64) error {
	if b < 10 {
		return fmt.Errorf("estimator: %d bootstrap replicates is too few (want ≥ 10)", b)
	}
	if level <= 0 || level >= 1 {
		return fmt.Errorf("estimator: confidence level %v outside (0,1)", level)
	}
	return nil
}
