package estimator

import (
	"fmt"
	"math"
	"sort"

	"dqm/internal/stats"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Bootstrap confidence intervals answer the paper's §6.3 question — "how
// much trust can an analyst place in our estimates?" — by resampling the
// item dimension of the observed data: items are the exchangeable units of
// the species-estimation model, so a nonparametric bootstrap over item rows
// propagates sampling variability into the estimate.

// CI is a two-sided percentile confidence interval around an estimate.
type CI struct {
	Lo, Hi float64
	// Level is the nominal confidence level, e.g. 0.95.
	Level float64
	// Replicates is the number of bootstrap resamples used.
	Replicates int
}

// Contains reports whether v lies within the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi − Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

func percentileCI(samples []float64, level float64, reps int) CI {
	sort.Float64s(samples)
	alpha := (1 - level) / 2
	lo := samples[int(alpha*float64(len(samples)-1))]
	hi := samples[int((1-alpha)*float64(len(samples)-1))]
	return CI{Lo: lo, Hi: hi, Level: level, Replicates: reps}
}

// BootstrapChao92 returns a percentile CI for the Chao92 total-error
// estimate by resampling items (with replacement) from the matrix. B is
// the number of replicates (≥ 100 recommended); level the confidence level.
func BootstrapChao92(m *votes.Matrix, b int, level float64, rng *xrand.RNG) (CI, error) {
	if err := checkBootstrapArgs(b, level); err != nil {
		return CI{}, err
	}
	n := m.NumItems()
	// Snapshot per-item positive counts once.
	pos := make([]int, n)
	for i := 0; i < n; i++ {
		pos[i] = m.Pos(i)
	}
	ests := make([]float64, b)
	counts := make([]int, n)
	for rep := 0; rep < b; rep++ {
		counts = counts[:0]
		for k := 0; k < n; k++ {
			counts = append(counts, pos[rng.IntN(n)])
		}
		f := stats.NewFreqFromCounts(counts)
		in := stats.Chao92Input{C: f.Species(), F: f, N: f.Mass()}
		ests[rep] = stats.Chao92(in).Estimate
	}
	return percentileCI(ests, level, b), nil
}

// BootstrapSwitch returns a percentile CI for the SWITCH total-error
// estimate. The estimator must have been built with RetainLedgers (see
// SwitchConfig); each replicate resamples items and rebuilds the
// sign-specific switch statistics from the per-item ledgers, applying the
// same trend branch as the point estimate.
func (e *SwitchEstimator) BootstrapSwitch(b int, level float64, rng *xrand.RNG) (CI, error) {
	if err := checkBootstrapArgs(b, level); err != nil {
		return CI{}, err
	}
	tr := e.tracker
	if !tr.RetainsLedgers() {
		return CI{}, fmt.Errorf("estimator: bootstrap requires SwitchConfig.RetainLedgers")
	}
	n := tr.NumItems()
	trend := e.trend()

	ests := make([]float64, b)
	for rep := 0; rep < b; rep++ {
		var (
			fPos, fNeg = stats.Freq{0}, stats.Freq{0}
			cPos, cNeg int64
			obsPos     int64
			obsNeg     int64
			nSwitch    int64
			maj        int64
		)
		for k := 0; k < n; k++ {
			i := rng.IntN(n)
			if tr.ItemMajorityDirty(i) {
				maj++
			}
			ledger := tr.ItemLedger(i)
			if len(ledger) == 0 {
				continue
			}
			hasPos, hasNeg := false, false
			for _, ev := range ledger {
				nSwitch += int64(ev.Freq)
				if ev.Positive {
					fPos.Add(ev.Freq, 1)
					obsPos++
					hasPos = true
				} else {
					fNeg.Add(ev.Freq, 1)
					obsNeg++
					hasNeg = true
				}
			}
			if hasPos {
				cPos++
			}
			if hasNeg {
				cNeg++
			}
		}
		xiPos := bootXi(e.cfg.NMode, cPos, fPos, obsPos, nSwitch)
		xiNeg := bootXi(e.cfg.NMode, cNeg, fNeg, obsNeg, nSwitch)
		var total float64
		switch trend {
		case TrendUp:
			total = float64(maj) + xiPos
		case TrendDown:
			total = float64(maj) - xiNeg
		default:
			total = float64(maj) + xiPos - xiNeg
		}
		if e.cfg.CapToPopulation {
			total = stats.Clamp(total, 0, float64(n))
		} else if total < 0 {
			total = 0
		}
		ests[rep] = total
	}
	return percentileCI(ests, level, b), nil
}

func bootXi(mode NMode, c int64, f stats.Freq, observed, nSwitch int64) float64 {
	if c == 0 {
		return 0
	}
	n := nSwitch
	if mode == NModeSignMass {
		n = f.Mass()
	}
	d := stats.Chao92(stats.Chao92Input{C: c, F: f, N: n}).Estimate
	if d < float64(observed) {
		d = float64(observed)
	}
	return math.Max(0, d-float64(observed))
}

func checkBootstrapArgs(b int, level float64) error {
	if b < 10 {
		return fmt.Errorf("estimator: %d bootstrap replicates is too few (want ≥ 10)", b)
	}
	if level <= 0 || level >= 1 {
		return fmt.Errorf("estimator: confidence level %v outside (0,1)", level)
	}
	return nil
}
