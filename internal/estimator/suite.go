package estimator

import (
	"dqm/internal/stats"
	"dqm/internal/votes"
)

// Canonical estimator names used across the experiment harness, CLI output
// and EXPERIMENTS.md. They match the labels in the paper's figures.
const (
	NameNominal = "NOMINAL"
	NameVoting  = "VOTING"
	NameChao92  = "CHAO92"
	NameVChao92 = "V-CHAO"
	NameSwitch  = "SWITCH"
	NameGT      = "GT" // ground truth, where plotted
)

// Suite evaluates every streaming estimator over a single shared response
// matrix, avoiding one matrix copy per estimator. It is the unit the
// experiment harness advances task by task.
type Suite struct {
	Matrix *votes.Matrix
	Switch *SwitchEstimator

	vcfg VChao92Config
	cap  bool
	n    int
}

// SuiteConfig configures a Suite.
type SuiteConfig struct {
	// VChao92 parameterizes the V-CHAO member (default shift 1, the paper's
	// setting).
	VChao92 VChao92Config
	// Switch parameterizes the SWITCH member.
	Switch SwitchConfig
	// CapToPopulation clamps all species estimates into [0, N].
	CapToPopulation bool
	// WithoutHistory disables per-item vote history retention in the matrix.
	// Aggregates (and therefore every estimate) are unaffected; only
	// consumers of Matrix.History (e.g. quality.EM) need it. The permutation
	// replay engine sets this to keep its hot path allocation-free.
	WithoutHistory bool
}

// NewSuite creates a suite over n items.
func NewSuite(n int, cfg SuiteConfig) *Suite {
	if cfg.VChao92.Shift == 0 {
		cfg.VChao92.Shift = 1
	}
	cfg.Switch.CapToPopulation = cfg.Switch.CapToPopulation || cfg.CapToPopulation
	var mopts []votes.Option
	if cfg.WithoutHistory {
		mopts = append(mopts, votes.WithoutHistory())
	}
	return &Suite{
		Matrix: votes.NewMatrix(n, mopts...),
		Switch: NewSwitch(n, cfg.Switch),
		vcfg:   cfg.VChao92,
		cap:    cfg.CapToPopulation,
		n:      n,
	}
}

// Observe ingests one vote into every member.
func (s *Suite) Observe(v votes.Vote) {
	s.Matrix.Add(v)
	s.Switch.Observe(v)
}

// ObserveTask ingests a whole task's votes and marks the task boundary.
func (s *Suite) ObserveTask(task []votes.Vote) {
	for _, v := range task {
		s.Observe(v)
	}
	s.EndTask()
}

// EndTask marks a task boundary for the trend detector.
func (s *Suite) EndTask() { s.Switch.EndTask() }

// clampEst applies the population cap when configured.
func (s *Suite) clampEst(v float64) float64 {
	if s.cap {
		return stats.Clamp(v, 0, float64(s.n))
	}
	return v
}

// Estimates is a snapshot of every estimator's total-error estimate.
type Estimates struct {
	Nominal float64
	Voting  float64
	Chao92  float64
	VChao92 float64
	Switch  SwitchEstimate
}

// ByName returns the named estimate, matching the figure labels.
func (e Estimates) ByName(name string) float64 {
	switch name {
	case NameNominal:
		return e.Nominal
	case NameVoting:
		return e.Voting
	case NameChao92:
		return e.Chao92
	case NameVChao92:
		return e.VChao92
	case NameSwitch:
		return e.Switch.Total
	default:
		return 0
	}
}

// EstimateAll evaluates every member at the current stream position.
func (s *Suite) EstimateAll() Estimates {
	return Estimates{
		Nominal: Nominal(s.Matrix),
		Voting:  Voting(s.Matrix),
		Chao92:  s.clampEst(Chao92(s.Matrix)),
		VChao92: s.clampEst(VChao92(s.Matrix, s.vcfg)),
		Switch:  s.Switch.Estimate(),
	}
}

// Reset clears the suite for the next permutation.
func (s *Suite) Reset() {
	s.Matrix.Reset()
	s.Switch.Reset()
}
