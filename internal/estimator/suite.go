package estimator

import (
	"fmt"

	"dqm/internal/votes"
)

// Suite evaluates a selected set of registered estimators over a single
// shared response matrix, avoiding one matrix copy per estimator. It is the
// unit the experiment harness advances task by task and the session engine
// wraps per dataset session.
type Suite struct {
	// Matrix is the shared response matrix every matrix-derived member reads.
	Matrix *votes.Matrix
	// Switch is the streaming SWITCH member, nil when NameSwitch is not
	// selected. Exposed for consumers that need the full SwitchEstimate or
	// the bootstrap CI machinery.
	Switch *SwitchEstimator

	// members holds every selected estimator in selection order; streaming
	// lists the subset that actually consumes votes (members reading the
	// shared matrix are fed through Matrix once, not per member).
	members   []Estimator
	streaming []Estimator
	// extras are the names of non-standard members, in member order; nil in
	// the common all-standard case so EstimateAll stays allocation-free.
	extras []string

	cfg SuiteConfig
	n   int

	// version counts mutations (Observe, EndTask, Reset) monotonically. It is
	// the cache key of the EstimateAll memo and the signal the session layer
	// publishes to lock-free readers; Clone carries it so a snapshot and its
	// source agree on the position of the stream.
	version uint64
	// voteVersion counts only the mutations that touch the shared matrix
	// (Observe, Reset) — EndTask advances version but not voteVersion. It is
	// the dirty bit of the matrix-derived members: when a stale memo differs
	// from the live state only by EndTask calls, those members are provably
	// unchanged and EstimateAll skips re-evaluating them.
	voteVersion uint64
	// memo caches the last EstimateAll result and is refreshed IN PLACE on
	// stale reads (only the members whose inputs changed re-run, and the Extra
	// map is reused — its key set is fixed at construction). memo.Extra is
	// privately owned (cloned out) so a caller mutating a returned Extra map
	// cannot corrupt the cache.
	memo            Estimates
	memoVersion     uint64
	memoVoteVersion uint64
	memoValid       bool
}

// SuiteConfig configures a Suite.
type SuiteConfig struct {
	// Estimators selects the members by registered name, evaluated in order.
	// Nil selects StandardNames() (every paper estimator). NewSuite panics on
	// an unregistered name; validate user-supplied selections first with
	// ValidateNames.
	Estimators []string
	// VChao92 parameterizes the V-CHAO member (default shift 1, the paper's
	// setting).
	VChao92 VChao92Config
	// Switch parameterizes the SWITCH member.
	Switch SwitchConfig
	// CapToPopulation clamps all species estimates into [0, N].
	CapToPopulation bool
	// WithoutHistory disables per-item vote history retention in the matrix.
	// Aggregates (and therefore every estimate) are unaffected; only
	// consumers of Matrix.History (e.g. quality.EM) need it. The permutation
	// replay engine sets this to keep its hot path allocation-free.
	WithoutHistory bool
}

// normalize applies the paper-default parameter fallbacks.
func (cfg SuiteConfig) normalize() SuiteConfig {
	if cfg.VChao92.Shift == 0 {
		cfg.VChao92.Shift = 1
	}
	cfg.Switch.CapToPopulation = cfg.Switch.CapToPopulation || cfg.CapToPopulation
	if cfg.Estimators == nil {
		cfg.Estimators = StandardNames()
	}
	return cfg
}

// NewSuite creates a suite over n items. It panics on an unregistered
// estimator name (a programmer error; API layers validate selections with
// ValidateNames before building sessions).
func NewSuite(n int, cfg SuiteConfig) *Suite {
	cfg = cfg.normalize()
	var mopts []votes.Option
	if cfg.WithoutHistory {
		mopts = append(mopts, votes.WithoutHistory())
	}
	s := &Suite{
		Matrix: votes.NewMatrix(n, mopts...),
		cfg:    cfg,
		n:      n,
	}
	env := Env{N: n, Matrix: s.Matrix, Config: cfg}
	for _, name := range cfg.Estimators {
		member, err := New(name, env)
		if err != nil {
			panic(fmt.Sprintf("estimator: NewSuite: %v", err))
		}
		s.addMember(name, member)
	}
	return s
}

// addMember wires one built member into the suite's dispatch lists.
func (s *Suite) addMember(name string, member Estimator) {
	s.members = append(s.members, member)
	if !IsStandardName(name) {
		s.extras = append(s.extras, name)
	} else {
		s.extras = append(s.extras, "")
	}
	if sw, ok := member.(*switchMember); ok {
		s.Switch = sw.est
	}
	if mm, ok := member.(sharedMatrixMember); ok && mm.sharesMatrix() {
		return // fed through the shared matrix; skip per-vote dispatch
	}
	s.streaming = append(s.streaming, member)
}

// Names returns the selected estimator names in evaluation order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.members))
	for i, m := range s.members {
		out[i] = m.Name()
	}
	return out
}

// Config returns the (normalized) configuration the suite was built with.
func (s *Suite) Config() SuiteConfig { return s.cfg }

// NumItems returns the population size N.
func (s *Suite) NumItems() int { return s.n }

// Version returns the monotonic mutation counter: it advances on every
// Observe, EndTask and Reset, and never goes backwards within one suite.
// Two reads of an equal version are guaranteed to see identical estimates.
func (s *Suite) Version() uint64 { return s.version }

// MemoState reports the memo's relationship to the live stream. EstimateAll
// will serve a clone of the memo (upToDate), refresh it in place re-running
// only changed members (valid but not upToDate), or evaluate every member
// (not valid). The session layer reads this to classify estimate latency by
// compute path.
func (s *Suite) MemoState() (valid, upToDate bool) {
	return s.memoValid, s.memoValid && s.memoVersion == s.version
}

// Observe ingests one vote into the shared matrix and every streaming
// member.
func (s *Suite) Observe(v votes.Vote) {
	s.version++
	s.voteVersion++
	s.Matrix.Add(v)
	for _, m := range s.streaming {
		m.Observe(v)
	}
}

// ObserveTask ingests a whole task's votes and marks the task boundary.
func (s *Suite) ObserveTask(task []votes.Vote) {
	for _, v := range task {
		s.Observe(v)
	}
	s.EndTask()
}

// EndTask marks a task boundary for the trend detectors.
func (s *Suite) EndTask() {
	s.version++
	for _, m := range s.streaming {
		m.EndTask()
	}
}

// Estimates is a snapshot of every estimator's total-error estimate.
type Estimates struct {
	Nominal float64
	Voting  float64
	Chao92  float64
	VChao92 float64
	Switch  SwitchEstimate
	// Extra holds estimates of non-standard registered members, keyed by
	// name; nil when only standard members are selected.
	Extra map[string]float64
}

// ByName returns the named estimate, matching the figure labels. Resolution
// goes through the shared name table of names.go, then Extra.
func (e Estimates) ByName(name string) float64 {
	for _, se := range standardEstimates {
		if se.name == name {
			return se.get(e)
		}
	}
	return e.Extra[name]
}

// Clone returns the snapshot with an independent copy of its Extra map (the
// only reference field), so two holders cannot alias each other's mutations.
// Every layer that caches or aggregates Estimates (the suite memo, the
// session read cache, the window ring) copies through here.
func (e Estimates) Clone() Estimates {
	if e.Extra == nil {
		return e
	}
	extra := make(map[string]float64, len(e.Extra))
	for k, v := range e.Extra {
		extra[k] = v
	}
	e.Extra = extra
	return e
}

// EstimateAll evaluates every member at the current stream position, memoized
// on the mutation version: repeated reads of an unchanged stream return the
// cached snapshot instead of re-running every estimator, and a stale memo is
// refreshed in place — only the members whose inputs changed since the memo
// was built re-run, and no intermediate snapshot is allocated. The result is
// bit-identical to EstimateAllUncached at every stream position (estimators
// are deterministic pure functions of their stream state; the property test
// in suite_incremental_test.go pins this). Members not selected leave their
// zero value in the snapshot.
func (s *Suite) EstimateAll() Estimates {
	if !s.memoValid || s.memoVersion != s.version {
		// Matrix-derived members are skippable when only EndTask calls
		// separate the memo from the live state.
		s.refreshMemo(s.memoValid && s.memoVoteVersion == s.voteVersion)
		s.memoVersion = s.version
		s.memoVoteVersion = s.voteVersion
		s.memoValid = true
	}
	return s.memo.Clone()
}

// refreshMemo re-evaluates members into the memo in place. When votesClean,
// members that only read the suite-shared matrix are skipped: their input did
// not change, so their memoized estimate is still exact.
func (s *Suite) refreshMemo(votesClean bool) {
	for i, m := range s.members {
		if votesClean {
			if mm, ok := m.(sharedMatrixMember); ok && mm.sharesMatrix() {
				continue
			}
		}
		if extra := s.extras[i]; extra != "" {
			if s.memo.Extra == nil {
				s.memo.Extra = make(map[string]float64, len(s.members))
			}
			s.memo.Extra[extra] = m.Estimate()
			continue
		}
		switch m.Name() {
		case NameNominal:
			s.memo.Nominal = m.Estimate()
		case NameVoting:
			s.memo.Voting = m.Estimate()
		case NameChao92:
			s.memo.Chao92 = m.Estimate()
		case NameVChao92:
			s.memo.VChao92 = m.Estimate()
		case NameSwitch:
			// One evaluation serves both the scalar and the full struct.
			s.memo.Switch = s.Switch.Estimate()
		}
	}
}

// EstimateAllUncached evaluates every member unconditionally, bypassing the
// version memo. It is the raw recompute path (and the baseline the read-path
// benchmarks compare the cache against).
func (s *Suite) EstimateAllUncached() Estimates {
	var e Estimates
	for i, m := range s.members {
		if extra := s.extras[i]; extra != "" {
			if e.Extra == nil {
				e.Extra = make(map[string]float64, len(s.members))
			}
			e.Extra[extra] = m.Estimate()
			continue
		}
		switch m.Name() {
		case NameNominal:
			e.Nominal = m.Estimate()
		case NameVoting:
			e.Voting = m.Estimate()
		case NameChao92:
			e.Chao92 = m.Estimate()
		case NameVChao92:
			e.VChao92 = m.Estimate()
		case NameSwitch:
			// One evaluation serves both the scalar and the full struct.
			e.Switch = s.Switch.Estimate()
		}
	}
	return e
}

// Clone returns a deep, independent copy of the suite: the shared matrix is
// cloned once and every member is rebound to (or deep-copied alongside) it.
// Snapshots of live sessions are built on it; the clone and the original can
// ingest independently afterwards.
func (s *Suite) Clone() *Suite {
	out := &Suite{
		Matrix:      s.Matrix.Clone(),
		cfg:         s.cfg,
		n:           s.n,
		version:     s.version,
		voteVersion: s.voteVersion,
	}
	for _, m := range s.members {
		out.addMember(m.Name(), m.Clone(out.Matrix))
	}
	return out
}

// Reset clears the suite for the next permutation. The mutation version keeps
// advancing (a reset is a mutation), so memoized estimates from before the
// reset can never be served afterwards.
func (s *Suite) Reset() {
	s.version++
	s.voteVersion++
	s.memoValid = false
	s.Matrix.Reset()
	for _, m := range s.streaming {
		m.Reset()
	}
}
