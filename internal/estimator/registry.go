package estimator

import (
	"fmt"
	"sort"
	"sync"

	"dqm/internal/stats"
	"dqm/internal/votes"
)

// Estimator is one streaming error estimator: it ingests votes in task
// order, observes task boundaries, and reports a total-error estimate at any
// point of the stream. Implementations are not safe for concurrent use; the
// session engine serializes access per session.
type Estimator interface {
	// Name returns the canonical name the estimator was registered under.
	Name() string
	// Observe ingests one vote.
	Observe(v votes.Vote)
	// EndTask marks a task boundary (trend detectors operate on per-task
	// series; estimators without task state treat it as a no-op).
	EndTask()
	// Estimate returns the current total-error estimate.
	Estimate() float64
	// Reset clears all stream state for a fresh replay.
	Reset()
	// Clone returns a deep, independent copy. When the estimator reads a
	// suite-shared response matrix, shared is the already-cloned matrix to
	// rebind to; estimators that own all their state ignore it. Pass nil for
	// a standalone estimator.
	Clone(shared *votes.Matrix) Estimator
}

// Env is what a Factory gets to build an estimator instance.
type Env struct {
	// N is the population size.
	N int
	// Matrix is the shared response matrix when the estimator is built as a
	// suite member: the suite ingests every vote into it exactly once, so
	// matrix-derived estimators must not Observe into it again. Nil when the
	// estimator is built standalone; it then owns (and feeds) its own state.
	Matrix *votes.Matrix
	// Config carries the estimator parameters.
	Config SuiteConfig
}

// Factory builds one estimator instance for a session.
type Factory func(env Env) Estimator

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a factory available under name. It panics on a duplicate or
// empty name; registration happens at init time, so a clash is a programmer
// error, not a runtime condition.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("estimator: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("estimator: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// RegisteredNames returns every registered estimator name, sorted.
func RegisteredNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateNames checks that every name has a registered factory, so API
// layers can reject a bad estimator selection before building a session.
func ValidateNames(names []string) error {
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			return fmt.Errorf("estimator: unknown estimator %q (registered: %v)", n, RegisteredNames())
		}
	}
	return nil
}

// New builds the named estimator via its registered factory.
func New(name string, env Env) (Estimator, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("estimator: unknown estimator %q (registered: %v)", name, RegisteredNames())
	}
	return f(env), nil
}

func init() {
	Register(NameNominal, func(env Env) Estimator {
		return newMatrixMember(env, NameNominal, false, func(m *votes.Matrix, _ SuiteConfig) float64 {
			return Nominal(m)
		})
	})
	Register(NameVoting, func(env Env) Estimator {
		return newMatrixMember(env, NameVoting, false, func(m *votes.Matrix, _ SuiteConfig) float64 {
			return Voting(m)
		})
	})
	Register(NameChao92, func(env Env) Estimator {
		return newMatrixMember(env, NameChao92, true, func(m *votes.Matrix, _ SuiteConfig) float64 {
			return chao92(m, true)
		})
	})
	Register(NameVChao92, func(env Env) Estimator {
		return newMatrixMember(env, NameVChao92, true, func(m *votes.Matrix, cfg SuiteConfig) float64 {
			return VChao92(m, cfg.VChao92)
		})
	})
	Register(NameSwitch, func(env Env) Estimator {
		return &switchMember{est: NewSwitch(env.N, env.Config.Switch)}
	})
}

// matrixMember adapts a pure function over the response matrix to the
// Estimator interface. When built inside a suite it reads the suite's shared
// matrix and its Observe/Reset are no-ops (the suite feeds the matrix once
// for all members); standalone it owns and feeds a private matrix.
type matrixMember struct {
	name string
	m    *votes.Matrix
	owns bool
	// clamp applies the population cap to species estimates.
	clamp bool
	n     int
	cfg   SuiteConfig
	est   func(*votes.Matrix, SuiteConfig) float64
}

func newMatrixMember(env Env, name string, capEligible bool, est func(*votes.Matrix, SuiteConfig) float64) *matrixMember {
	x := &matrixMember{
		name:  name,
		m:     env.Matrix,
		clamp: capEligible && env.Config.CapToPopulation,
		n:     env.N,
		cfg:   env.Config,
		est:   est,
	}
	if x.m == nil {
		var opts []votes.Option
		if env.Config.WithoutHistory {
			opts = append(opts, votes.WithoutHistory())
		}
		x.m = votes.NewMatrix(env.N, opts...)
		x.owns = true
	}
	return x
}

func (x *matrixMember) Name() string { return x.name }

func (x *matrixMember) Observe(v votes.Vote) {
	if x.owns {
		x.m.Add(v)
	}
}

func (x *matrixMember) EndTask() {}

func (x *matrixMember) Estimate() float64 {
	v := x.est(x.m, x.cfg)
	if x.clamp {
		return stats.Clamp(v, 0, float64(x.n))
	}
	return v
}

func (x *matrixMember) Reset() {
	if x.owns {
		x.m.Reset()
	}
}

func (x *matrixMember) Clone(shared *votes.Matrix) Estimator {
	out := *x
	if shared != nil {
		out.m, out.owns = shared, false
	} else {
		out.m = x.m.Clone()
		out.owns = true
	}
	return &out
}

// sharesMatrix reports whether the member reads a suite-owned matrix, in
// which case the suite skips it on the per-vote hot path.
func (x *matrixMember) sharesMatrix() bool { return !x.owns }

// sharedMatrixMember is the hot-path optimization hook: members whose
// Observe/EndTask/Reset are no-ops because the suite feeds their shared
// matrix are excluded from the suite's per-vote dispatch loop.
type sharedMatrixMember interface {
	sharesMatrix() bool
}

// switchMember adapts the streaming SWITCH estimator to the registry
// interface. It is matrix-independent: all state lives in the tracker.
type switchMember struct {
	est *SwitchEstimator
}

func (x *switchMember) Name() string                    { return NameSwitch }
func (x *switchMember) Observe(v votes.Vote)            { x.est.Observe(v) }
func (x *switchMember) EndTask()                        { x.est.EndTask() }
func (x *switchMember) Estimate() float64               { return x.est.Estimate().Total }
func (x *switchMember) Reset()                          { x.est.Reset() }
func (x *switchMember) Clone(_ *votes.Matrix) Estimator { return &switchMember{est: x.est.Clone()} }
