// Package estimator implements every data-quality estimator evaluated in the
// paper:
//
//	NOMINAL   — #items marked dirty by ≥1 worker (descriptive, §2.2.1)
//	VOTING    — #items with a dirty strict majority (descriptive, §2.2.2)
//	EXTRAPOL  — error-rate extrapolation from a perfectly clean sample (§2.2.3)
//	Chao92    — species estimation over positive votes (§3.2)
//	vChao92   — shifted-fingerprint variant robust to false positives (§3.3)
//	SWITCH    — remaining-consensus-switch estimation with trend-dynamic
//	            correction of the majority vote (§4, the paper's contribution)
//
// Descriptive estimators are stateless functions over the response matrix.
// SWITCH is a streaming estimator: feed it votes in task order, call EndTask
// at task boundaries (the trend detector operates on the per-task majority
// series), and read Estimate at any point.
package estimator

import (
	"fmt"
	"math"

	"dqm/internal/stats"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
)

// Nominal returns c_nominal(I) (§2.2.1).
func Nominal(m *votes.Matrix) float64 { return float64(m.Nominal()) }

// Voting returns c_majority(I) (§2.2.2).
func Voting(m *votes.Matrix) float64 { return float64(m.Majority()) }

// Extrapolate implements the predictive baseline of §2.2.3: if a perfectly
// clean sample of sampleSize items (out of population) contained errsFound
// errors, the whole dataset is estimated to contain errsFound/s errors,
// where s = sampleSize/population.
func Extrapolate(errsFound, sampleSize, population int) float64 {
	if sampleSize <= 0 || population <= 0 {
		return 0
	}
	return float64(errsFound) * float64(population) / float64(sampleSize)
}

// ExtrapolateRemaining returns the remaining-error form
// (1/s)·err_s − err_s used in the paper's introduction of the baseline.
func ExtrapolateRemaining(errsFound, sampleSize, population int) float64 {
	return Extrapolate(errsFound, sampleSize, population) - float64(errsFound)
}

// Chao92Option configures the species estimators.
type Chao92Option func(*chao92cfg)

type chao92cfg struct {
	skew bool
}

// WithoutSkewCorrection drops the f₁·γ̂²/Ĉ term, yielding D̂_noskew
// (Equation 3).
func WithoutSkewCorrection() Chao92Option {
	return func(c *chao92cfg) { c.skew = false }
}

// Chao92 applies the Chao92 estimator (Equation 4) to the response matrix:
// c = c_nominal, f = the positive-vote fingerprint, n = n⁺. It estimates the
// TOTAL number of distinct errors; subtract Nominal for the remaining count.
func Chao92(m *votes.Matrix, opts ...Chao92Option) float64 {
	cfg := chao92cfg{skew: true}
	for _, o := range opts {
		o(&cfg)
	}
	return chao92(m, cfg.skew)
}

// chao92 is the option-free core; the suite member calls it directly so the
// read path stays allocation-free (the variadic form heap-allocates its cfg).
func chao92(m *votes.Matrix, skew bool) float64 {
	// The matrix maintains the sufficient statistic (f₁, pair sum)
	// incrementally, so the estimate is O(1) — no fingerprint walk.
	f1, pairSum := m.DirtyStats()
	in := stats.Chao92Stats{C: m.Nominal(), F1: f1, PairSum: pairSum, N: m.PositiveVotes()}
	if skew {
		return stats.Chao92FromStats(in).Estimate
	}
	return stats.Chao92NoSkewFromStats(in).Estimate
}

// VChao92Config parameterizes the shifted estimator of §3.3.
type VChao92Config struct {
	// Shift s treats f_{1+s} as f₁ and so on; the paper evaluates s = 1
	// (V-CHAO in the figures). Shift 0 degrades to Chao92 with c_majority.
	Shift int
	// MassAdjust selects the adjustment of n for the dropped classes.
	// false (paper-literal): n^{+,s} = n⁺ − Σ_{i≤s} f_i.
	// true (mass-preserving): n^{+,s} = n⁺ − Σ_{i≤s} i·f_i.
	MassAdjust bool
}

// VChao92 applies the vChao92 estimator (Equation 6): majority consensus as
// c, fingerprint shifted by cfg.Shift, and n adjusted for the dropped
// classes.
func VChao92(m *votes.Matrix, cfg VChao92Config) float64 {
	if cfg.Shift < 0 {
		panic(fmt.Sprintf("estimator: negative vChao92 shift %d", cfg.Shift))
	}
	// The shifted-fingerprint statistics come from closed forms over the
	// running aggregates (O(shift), no materialized shifted Freq).
	sh := m.DirtyShifted(cfg.Shift)
	n := m.PositiveVotes()
	if cfg.MassAdjust {
		n -= sh.DroppedMass
	} else {
		n -= sh.DroppedCount
	}
	if n < 0 {
		n = 0
	}
	in := stats.Chao92Stats{C: m.Majority(), F1: sh.F1, PairSum: sh.PairSum, N: n}
	return stats.Chao92FromStats(in).Estimate
}

// Trend is the direction of the majority-consensus series, the signal the
// SWITCH estimator uses to pick between ξ⁺ and ξ⁻ (§4.3).
type Trend int

const (
	// TrendFlat means the majority count is not moving; SWITCH applies the
	// symmetric correction majority + ξ⁺ − ξ⁻.
	TrendFlat Trend = iota
	// TrendUp means the majority count is growing (false negatives being
	// corrected); SWITCH applies majority + ξ⁺.
	TrendUp
	// TrendDown means the majority count is shrinking (false positives being
	// corrected); SWITCH applies majority − ξ⁻.
	TrendDown
)

// String implements fmt.Stringer.
func (t Trend) String() string {
	switch t {
	case TrendFlat:
		return "flat"
	case TrendUp:
		return "up"
	case TrendDown:
		return "down"
	default:
		return fmt.Sprintf("Trend(%d)", int(t))
	}
}

// NMode selects the observation count n used in the sign-specific switch
// estimates.
type NMode int

const (
	// NModeGlobal uses n_switch (all votes minus pre-first-switch no-ops)
	// for both signs — the paper's "simply count all votes as n"
	// modification. This is the default.
	NModeGlobal NMode = iota
	// NModeSignMass uses the observation mass of the sign's own switch
	// ledger (Σ j·f′_j), the "sum of the frequencies" definition the paper
	// reports as overestimating. Retained for the ablation bench.
	NModeSignMass
)

// String implements fmt.Stringer.
func (m NMode) String() string {
	switch m {
	case NModeGlobal:
		return "global"
	case NModeSignMass:
		return "sign-mass"
	default:
		return fmt.Sprintf("NMode(%d)", int(m))
	}
}

// SwitchConfig parameterizes the SWITCH estimator.
type SwitchConfig struct {
	// Policy is the switch-counting rule (default Equation-7 tie-flip).
	Policy switchstat.Policy
	// NMode selects n for sign-specific estimation (default NModeGlobal).
	NMode NMode
	// TrendWindow is the number of past tasks the trend detector looks back.
	// 0 selects the adaptive default max(5, observedTasks/10).
	TrendWindow int
	// CapToPopulation clamps estimates into [observed, N] when true. The
	// candidate-set experiments know N, so the paper's plotted estimates
	// never exceed it.
	CapToPopulation bool
	// RetainLedgers keeps per-item switch event lists, enabling
	// BootstrapSwitch confidence intervals at O(switches) memory.
	RetainLedgers bool
}

// SwitchEstimate is the full output of the SWITCH estimator at one point of
// the vote stream.
type SwitchEstimate struct {
	// Total is the trend-corrected total-error estimate of §4.3:
	// majority + ξ⁺ (trend up), majority − ξ⁻ (trend down) or
	// majority + ξ⁺ − ξ⁻ (flat).
	Total float64
	// Majority is the VOTING baseline at this point.
	Majority float64
	// XiPos and XiNeg are the estimated REMAINING positive and negative
	// switches (ξ⁺, ξ⁻ = D̂ − observed, floored at 0).
	XiPos, XiNeg float64
	// DPos and DNeg are the estimated TOTAL positive/negative switches.
	DPos, DNeg float64
	// RemainingSwitches is ξ = D̂_switch − switch(I) over both signs
	// (the Problem 2 answer).
	RemainingSwitches float64
	// Trend is the detected direction of the majority series.
	Trend Trend
}

// SwitchEstimator is the streaming implementation of the paper's SWITCH
// technique. It is not safe for concurrent use.
type SwitchEstimator struct {
	cfg     SwitchConfig
	tracker *switchstat.Tracker
	n       int
	// majHistory records the majority count at every EndTask call;
	// majPrefix[i] is the sum of majHistory[:i], so window means in the
	// trend detector are O(1) instead of O(window).
	majHistory []int64
	majPrefix  []float64
	tasks      int
	// lastTrend makes the branch decision sticky: an inconclusive window
	// keeps the previously detected direction instead of flapping between
	// the ξ⁺ and ξ⁻ corrections (§4.3 commits to one side per dataset once
	// the majority trend is established).
	lastTrend Trend
}

// NewSwitch creates a SWITCH estimator over n items.
func NewSwitch(n int, cfg SwitchConfig) *SwitchEstimator {
	opts := []switchstat.Option{switchstat.WithPolicy(cfg.Policy)}
	if cfg.RetainLedgers {
		opts = append(opts, switchstat.WithItemLedgers())
	}
	return &SwitchEstimator{
		cfg:     cfg,
		tracker: switchstat.NewTracker(n, opts...),
		n:       n,
	}
}

// Observe ingests one vote.
func (e *SwitchEstimator) Observe(v votes.Vote) { e.tracker.AddVote(v) }

// EndTask marks a task boundary: the current majority count is appended to
// the trend series and the sticky trend state advances. Updating here (not
// in Estimate) makes the detected trend a function of the vote stream alone,
// independent of when estimates are read.
func (e *SwitchEstimator) EndTask() {
	e.tasks++
	maj := e.tracker.Majority()
	if len(e.majPrefix) == 0 {
		e.majPrefix = append(e.majPrefix, 0)
	}
	e.majPrefix = append(e.majPrefix, e.majPrefix[len(e.majPrefix)-1]+float64(maj))
	e.majHistory = append(e.majHistory, maj)
	e.trend()
}

// Tasks returns the number of completed tasks.
func (e *SwitchEstimator) Tasks() int { return e.tasks }

// Tracker exposes the underlying switch statistics (read-only use).
func (e *SwitchEstimator) Tracker() *switchstat.Tracker { return e.tracker }

// trend inspects the majority history over the configured window: the mean
// of the most recent half-window is compared against the mean of the half
// before it. Differences below half an item are inconclusive and keep the
// previous direction.
func (e *SwitchEstimator) trend() Trend {
	h := e.majHistory
	if len(h) < 4 {
		return e.lastTrend
	}
	w := e.cfg.TrendWindow
	if w <= 0 {
		// A wide adaptive window captures the macro trend of the majority
		// series rather than its task-to-task noise.
		w = len(h) / 3
		if w < 12 {
			w = 12
		}
	}
	if w > len(h) {
		w = len(h)
	}
	half := w / 2
	sum := func(from, to int) float64 { return e.majPrefix[to] - e.majPrefix[from] }
	recent := sum(len(h)-half, len(h)) / float64(half)
	older := sum(len(h)-2*half, len(h)-half) / float64(half)
	diff := recent - older
	// The tolerance scales with the majority level so large populations
	// (product: majority ≈ 500) are not oversensitive to ±1-item noise.
	tol := 0.75
	if lvl := 0.02 * recent; lvl > tol {
		tol = lvl
	}
	switch {
	case diff > tol:
		e.lastTrend = TrendUp
	case diff < -tol:
		e.lastTrend = TrendDown
	}
	return e.lastTrend
}

func (e *SwitchEstimator) signEstimate(c int64, f switchstat.FingerprintStats, observed int64) float64 {
	if c == 0 {
		return 0
	}
	var n int64
	switch e.cfg.NMode {
	case NModeSignMass:
		n = f.Mass
	default:
		n = e.tracker.NSwitch()
	}
	d := stats.Chao92FromStats(stats.Chao92Stats{C: c, F1: f.F1, PairSum: f.PairSum, N: n}).Estimate
	if d < float64(observed) {
		// A species estimate below the observed count is vacuous; the
		// estimator never predicts fewer species than seen.
		d = float64(observed)
	}
	return d
}

// Estimate computes the SWITCH outputs at the current point of the stream.
// The tracker maintains per-sign running aggregates, and the merged-sign
// statistic is their componentwise sum, so the whole estimate is O(1).
func (e *SwitchEstimator) Estimate() SwitchEstimate {
	tr := e.tracker
	maj := float64(tr.Majority())

	dPos := e.signEstimate(tr.CSwitchPositive(), tr.PositiveStats(), tr.PositiveSwitches())
	dNeg := e.signEstimate(tr.CSwitchNegative(), tr.NegativeStats(), tr.NegativeSwitches())
	xiPos := math.Max(0, dPos-float64(tr.PositiveSwitches()))
	xiNeg := math.Max(0, dNeg-float64(tr.NegativeSwitches()))

	dAll := e.signEstimate(tr.CSwitch(), tr.MergedStats(), tr.Switches())
	xiAll := math.Max(0, dAll-float64(tr.Switches()))

	trend := e.trend()
	var total float64
	switch trend {
	case TrendUp:
		total = maj + xiPos
	case TrendDown:
		total = maj - xiNeg
	default:
		total = maj + xiPos - xiNeg
	}
	if e.cfg.CapToPopulation {
		total = stats.Clamp(total, 0, float64(e.n))
	} else if total < 0 {
		total = 0
	}
	return SwitchEstimate{
		Total:             total,
		Majority:          maj,
		XiPos:             xiPos,
		XiNeg:             xiNeg,
		DPos:              dPos,
		DNeg:              dNeg,
		RemainingSwitches: xiAll,
		Trend:             trend,
	}
}

// Clone returns a deep, independent copy of the estimator (tracker, trend
// series and sticky trend state included), so a snapshot taken mid-stream
// continues exactly where the original was.
func (e *SwitchEstimator) Clone() *SwitchEstimator {
	return &SwitchEstimator{
		cfg:        e.cfg,
		tracker:    e.tracker.Clone(),
		n:          e.n,
		majHistory: append([]int64(nil), e.majHistory...),
		majPrefix:  append([]float64(nil), e.majPrefix...),
		tasks:      e.tasks,
		lastTrend:  e.lastTrend,
	}
}

// Reset clears the estimator for a fresh permutation replay.
func (e *SwitchEstimator) Reset() {
	e.tracker.Reset()
	e.majHistory = e.majHistory[:0]
	e.majPrefix = e.majPrefix[:0]
	e.tasks = 0
	e.lastTrend = TrendFlat
}
