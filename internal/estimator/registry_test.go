package estimator

import (
	"reflect"
	"testing"

	"dqm/internal/votes"
)

func TestRegistryHasStandardNames(t *testing.T) {
	for _, name := range StandardNames() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("standard estimator %q not registered", name)
		}
	}
	if err := ValidateNames(StandardNames()); err != nil {
		t.Fatalf("ValidateNames(standard) = %v", err)
	}
	if err := ValidateNames([]string{"NOPE"}); err == nil {
		t.Fatal("ValidateNames accepted an unknown name")
	}
}

func TestNewUnknownName(t *testing.T) {
	if _, err := New("NOPE", Env{N: 3}); err == nil {
		t.Fatal("New accepted an unknown name")
	}
}

func TestSuiteSelection(t *testing.T) {
	s := NewSuite(10, SuiteConfig{Estimators: []string{NameVoting, NameSwitch}})
	if got, want := s.Names(), []string{NameVoting, NameSwitch}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := 0; i < 6; i++ {
		s.Observe(votes.Vote{Item: i % 3, Worker: i, Label: votes.Dirty})
	}
	s.EndTask()
	est := s.EstimateAll()
	if est.Voting == 0 || est.Switch.Total == 0 {
		t.Fatalf("selected members not evaluated: %+v", est)
	}
	// Unselected members keep their zero value.
	if est.Chao92 != 0 || est.VChao92 != 0 {
		t.Fatalf("unselected members evaluated: %+v", est)
	}
}

// TestStandaloneEstimators builds each standard estimator without a suite
// (nil shared matrix) and checks it ingests its own votes.
func TestStandaloneEstimators(t *testing.T) {
	for _, name := range StandardNames() {
		e, err := New(name, Env{N: 5, Config: SuiteConfig{}.normalize()})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		// Two dirty votes per item, so the vChao92 shift does not drop every
		// frequency class.
		for w := 0; w < 2; w++ {
			for i := 0; i < 5; i++ {
				e.Observe(votes.Vote{Item: i, Worker: w, Label: votes.Dirty})
			}
			e.EndTask()
		}
		if got := e.Estimate(); got == 0 {
			t.Errorf("%s standalone estimate = 0 after 10 dirty votes", name)
		}
		e.Reset()
		if got := e.Estimate(); got != 0 {
			t.Errorf("%s estimate after Reset = %v, want 0", name, got)
		}
	}
}

// TestSuiteCloneIndependent checks a cloned suite reports identical
// estimates at the snapshot point and diverges independently afterwards.
func TestSuiteCloneIndependent(t *testing.T) {
	s := NewSuite(20, SuiteConfig{})
	vote := func(su *Suite, item int, dirty bool) {
		l := votes.Clean
		if dirty {
			l = votes.Dirty
		}
		su.Observe(votes.Vote{Item: item, Worker: item % 3, Label: l})
	}
	for i := 0; i < 20; i++ {
		vote(s, i%7, i%3 != 0)
		if i%5 == 4 {
			s.EndTask()
		}
	}
	clone := s.Clone()
	if got, want := clone.EstimateAll(), s.EstimateAll(); !reflect.DeepEqual(got, want) {
		t.Fatalf("clone estimates %+v != original %+v", got, want)
	}
	if clone.Matrix == s.Matrix {
		t.Fatal("clone shares the response matrix")
	}
	if clone.Switch == s.Switch {
		t.Fatal("clone shares the switch estimator")
	}
	// Mutating the original must not leak into the clone.
	before := clone.EstimateAll()
	for i := 0; i < 10; i++ {
		vote(s, i, true)
	}
	s.EndTask()
	if got := clone.EstimateAll(); !reflect.DeepEqual(got, before) {
		t.Fatalf("original ingest leaked into clone: %+v != %+v", got, before)
	}
	// And the clone keeps ingesting on its own.
	for i := 0; i < 10; i++ {
		vote(clone, i, true)
	}
	clone.EndTask()
	if got, want := clone.EstimateAll(), s.EstimateAll(); !reflect.DeepEqual(got, want) {
		t.Fatalf("same post-snapshot stream diverged: clone %+v, original %+v", got, want)
	}
}

// TestCustomEstimatorExtra registers a toy estimator and checks it flows
// through suite evaluation into Estimates.Extra and ByName.
func TestCustomEstimatorExtra(t *testing.T) {
	const name = "TEST-COVERAGE"
	if _, ok := Lookup(name); !ok {
		Register(name, func(env Env) Estimator {
			return newMatrixMember(env, name, false, func(m *votes.Matrix, _ SuiteConfig) float64 {
				return m.Coverage() * float64(m.NumItems())
			})
		})
	}
	s := NewSuite(4, SuiteConfig{Estimators: []string{NameVoting, name}})
	s.Observe(votes.Vote{Item: 1, Worker: 0, Label: votes.Dirty})
	s.EndTask()
	est := s.EstimateAll()
	if got := est.Extra[name]; got != 1 {
		t.Fatalf("Extra[%q] = %v, want 1 (one of four items seen)", name, got)
	}
	if got := est.ByName(name); got != 1 {
		t.Fatalf("ByName(%q) = %v, want 1", name, got)
	}
	// Clones carry custom members too.
	if got := s.Clone().EstimateAll().ByName(name); got != 1 {
		t.Fatalf("clone ByName(%q) = %v, want 1", name, got)
	}
}

func TestByNameTableMatchesStandardNames(t *testing.T) {
	e := Estimates{Nominal: 1, Voting: 2, Chao92: 3, VChao92: 4, Switch: SwitchEstimate{Total: 5}}
	want := map[string]float64{
		NameNominal: 1, NameVoting: 2, NameChao92: 3, NameVChao92: 4, NameSwitch: 5,
	}
	for _, name := range StandardNames() {
		if got := e.ByName(name); got != want[name] {
			t.Errorf("ByName(%q) = %v, want %v", name, got, want[name])
		}
	}
}
