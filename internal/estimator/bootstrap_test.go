package estimator

import (
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

func TestCIHelpers(t *testing.T) {
	ci := CI{Lo: 10, Hi: 20, Level: 0.95}
	if !ci.Contains(15) || ci.Contains(9) || ci.Contains(21) {
		t.Fatal("Contains wrong")
	}
	if ci.Width() != 10 {
		t.Fatalf("Width = %v", ci.Width())
	}
}

func TestBootstrapArgsValidation(t *testing.T) {
	m := votes.NewMatrix(5)
	if _, err := BootstrapChao92(m, 5, 0.95, xrand.New(1)); err == nil {
		t.Fatal("too few replicates accepted")
	}
	if _, err := BootstrapChao92(m, 100, 1.5, xrand.New(1)); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := BootstrapChao92(m, 100, 0, xrand.New(1)); err == nil {
		t.Fatal("zero level accepted")
	}
}

// bootstrapScenario builds a crowd-labeled matrix and a ledger-retaining
// SWITCH estimator over a planted population.
func bootstrapScenario(t *testing.T) (*votes.Matrix, *SwitchEstimator, *dataset.Population) {
	t.Helper()
	pop := dataset.NewPlantedPopulation(300, 45, 3, "bootstrap")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.15},
		ItemsPerTask: 10,
		Seed:         3,
	})
	m := votes.NewMatrix(pop.N())
	e := NewSwitch(pop.N(), SwitchConfig{RetainLedgers: true})
	for _, task := range sim.Tasks(400) {
		for _, v := range task.Votes() {
			m.Add(v)
			e.Observe(v)
		}
		e.EndTask()
	}
	return m, e, pop
}

func TestBootstrapChao92CoversPointEstimate(t *testing.T) {
	m, _, _ := bootstrapScenario(t)
	ci, err := BootstrapChao92(m, 200, 0.95, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Hi {
		t.Fatalf("inverted interval %+v", ci)
	}
	point := Chao92(m)
	if !ci.Contains(point) {
		t.Fatalf("95%% CI [%v, %v] misses the point estimate %v", ci.Lo, ci.Hi, point)
	}
	if ci.Replicates != 200 || ci.Level != 0.95 {
		t.Fatalf("metadata wrong: %+v", ci)
	}
}

func TestBootstrapSwitchCoversTruthAndPoint(t *testing.T) {
	_, e, pop := bootstrapScenario(t)
	ci, err := e.BootstrapSwitch(200, 0.95, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	point := e.Estimate().Total
	if !ci.Contains(point) {
		t.Fatalf("CI [%v, %v] misses the point estimate %v", ci.Lo, ci.Hi, point)
	}
	// With a well-behaved crowd the interval should also cover the truth.
	if !ci.Contains(float64(pop.NumDirty())) {
		t.Logf("note: CI [%v, %v] does not cover truth %d (allowed, but unusual)",
			ci.Lo, ci.Hi, pop.NumDirty())
	}
	if ci.Width() <= 0 {
		t.Fatalf("degenerate interval %+v", ci)
	}
}

func TestBootstrapSwitchRequiresLedgers(t *testing.T) {
	e := NewSwitch(10, SwitchConfig{})
	e.Observe(votes.Vote{Item: 0, Label: votes.Dirty})
	e.EndTask()
	if _, err := e.BootstrapSwitch(100, 0.95, xrand.New(1)); err == nil {
		t.Fatal("bootstrap without ledgers accepted")
	}
}

func TestBootstrapSwitchNarrowsWithData(t *testing.T) {
	pop := dataset.NewPlantedPopulation(300, 45, 5, "narrowing")
	build := func(tasks int) *SwitchEstimator {
		sim := crowd.NewSimulator(crowd.Config{
			Truth:        pop.Truth.IsDirty,
			N:            pop.N(),
			Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.15},
			ItemsPerTask: 10,
			Seed:         5,
		})
		e := NewSwitch(pop.N(), SwitchConfig{RetainLedgers: true})
		for _, task := range sim.Tasks(tasks) {
			for _, v := range task.Votes() {
				e.Observe(v)
			}
			e.EndTask()
		}
		return e
	}
	early, err := build(60).BootstrapSwitch(200, 0.9, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	late, err := build(900).BootstrapSwitch(200, 0.9, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Relative width must shrink as evidence accumulates.
	mid := func(c CI) float64 { return (c.Lo + c.Hi) / 2 }
	if late.Width()/mid(late) >= early.Width()/mid(early) {
		t.Fatalf("interval did not narrow: early %v/%v, late %v/%v",
			early.Width(), mid(early), late.Width(), mid(late))
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	// Ledger frequencies must agree with the tracker's fingerprints.
	_, e, _ := bootstrapScenario(t)
	tr := e.Tracker()
	var pos, neg int64
	for i := 0; i < tr.NumItems(); i++ {
		for _, ev := range tr.ItemLedger(i) {
			if ev.Positive {
				pos++
			} else {
				neg++
			}
		}
	}
	if pos != tr.PositiveSwitches() || neg != tr.NegativeSwitches() {
		t.Fatalf("ledger totals %d/%d vs tracker %d/%d",
			pos, neg, tr.PositiveSwitches(), tr.NegativeSwitches())
	}
}
