package estimator

import (
	"reflect"
	"testing"

	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// drawLabel converts a Bernoulli draw into a vote label.
func drawLabel(rng *xrand.RNG, p float64) votes.Label {
	if rng.Bernoulli(p) {
		return votes.Dirty
	}
	return votes.Clean
}

// TestSuiteIncrementalMatchesUncached is the property test the incremental
// estimation plane is pinned by: under a randomized operation sequence —
// votes, task boundaries, resets, clones, interleaved reads — the memoized
// EstimateAll must be bit-identical (reflect.DeepEqual on float64 fields) to
// EstimateAllUncached at every read point. The read pattern deliberately mixes
// hot repeats (memo hits), reads right after single votes (incremental
// refresh) and reads after EndTask-only gaps (the matrix-clean skip path).
func TestSuiteIncrementalMatchesUncached(t *testing.T) {
	rng := xrand.New(2024)
	const n = 60
	s := NewSuite(n, SuiteConfig{Switch: SwitchConfig{TrendWindow: 4}})
	clones := []*Suite{}
	verify := func(s *Suite, step int, what string) {
		t.Helper()
		memo := s.EstimateAll()
		raw := s.EstimateAllUncached()
		if !reflect.DeepEqual(memo, raw) {
			t.Fatalf("step %d (%s): memoized %+v != uncached %+v", step, what, memo, raw)
		}
		if again := s.EstimateAll(); !reflect.DeepEqual(again, memo) {
			t.Fatalf("step %d (%s): repeated memo read differs", step, what)
		}
	}
	for step := 0; step < 3000; step++ {
		switch op := rng.IntN(100); {
		case op < 55: // one vote
			s.Observe(votes.Vote{
				Item:   rng.IntN(n),
				Worker: rng.IntN(7),
				Label:  drawLabel(rng, 0.3),
			})
		case op < 75: // task boundary (advances version but not voteVersion)
			s.EndTask()
		case op < 80: // a burst, read-free, so the next read refreshes a gap
			for i := 0; i < 5+rng.IntN(20); i++ {
				s.Observe(votes.Vote{Item: rng.IntN(n), Worker: rng.IntN(7), Label: votes.Dirty})
			}
			s.EndTask()
		case op < 85: // snapshot; clones are verified and mutated independently
			if len(clones) < 3 {
				clones = append(clones, s.Clone())
			}
		case op < 90: // mutate+verify a live clone (memo state is per suite)
			if len(clones) > 0 {
				c := clones[rng.IntN(len(clones))]
				c.Observe(votes.Vote{Item: rng.IntN(n), Worker: rng.IntN(7), Label: votes.Clean})
				verify(c, step, "clone")
			}
		case op < 93:
			s.Reset()
		default: // hot repeat: no mutation since the last read
		}
		if rng.Bernoulli(0.5) {
			verify(s, step, "live")
		}
	}
	verify(s, -1, "final")
	for _, c := range clones {
		verify(c, -1, "final clone")
	}
}

// TestSuiteMemoSkipsMatrixMembersAfterEndTask: after a memoized read, an
// EndTask-only gap must leave the memo valid-but-stale (incremental path), and
// the refreshed values must still match a full recompute — the correctness
// guard on the matrix-clean skip.
func TestSuiteMemoSkipsMatrixMembersAfterEndTask(t *testing.T) {
	s := NewSuite(30, SuiteConfig{})
	for i := 0; i < 40; i++ {
		label := votes.Clean
		if i%4 == 0 {
			label = votes.Dirty
		}
		s.Observe(votes.Vote{Item: i % 30, Worker: i % 5, Label: label})
	}
	s.EndTask()
	s.EstimateAll()
	if valid, upToDate := s.MemoState(); !valid || !upToDate {
		t.Fatalf("after read: MemoState = (%v, %v), want (true, true)", valid, upToDate)
	}
	s.EndTask() // only the trend detectors can change
	if valid, upToDate := s.MemoState(); !valid || upToDate {
		t.Fatalf("after EndTask: MemoState = (%v, %v), want (true, false)", valid, upToDate)
	}
	if memo, raw := s.EstimateAll(), s.EstimateAllUncached(); !reflect.DeepEqual(memo, raw) {
		t.Fatalf("post-EndTask incremental read %+v != uncached %+v", memo, raw)
	}
	s.Observe(votes.Vote{Item: 3, Worker: 1, Label: votes.Dirty})
	if memo, raw := s.EstimateAll(), s.EstimateAllUncached(); !reflect.DeepEqual(memo, raw) {
		t.Fatalf("post-vote incremental read %+v != uncached %+v", memo, raw)
	}
}

// feedBootstrapSwitch builds a ledger-retaining SWITCH estimator with enough
// stream behind it for CIs to be meaningful.
func feedBootstrapSwitch(t *testing.T) *SwitchEstimator {
	t.Helper()
	e := NewSwitch(200, SwitchConfig{RetainLedgers: true, TrendWindow: 4})
	rng := xrand.New(88)
	for task := 0; task < 30; task++ {
		for i := 0; i < 40; i++ {
			e.Observe(votes.Vote{
				Item:   rng.IntN(200),
				Worker: rng.IntN(9),
				Label:  drawLabel(rng, 0.2),
			})
		}
		e.EndTask()
	}
	return e
}

// TestBootstrapParallelDeterminism pins the worker-pool contract: the CI is a
// pure function of (state, seed, replicate count) — bit-identical at any
// worker count, because replicate i always draws from the parent's i-th child
// stream no matter which worker claims it.
func TestBootstrapParallelDeterminism(t *testing.T) {
	e := feedBootstrapSwitch(t)
	st, err := e.CaptureBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	var want CI
	for i, workers := range []int{1, 2, 8} {
		ci, err := st.Bootstrap(400, 0.95, xrand.New(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = ci
			continue
		}
		if ci != want {
			t.Fatalf("workers=%d: CI %+v != workers=1 CI %+v", workers, ci, want)
		}
	}

	// Same for the Chao92 state.
	m := votes.NewMatrix(100)
	rng := xrand.New(3)
	for i := 0; i < 700; i++ {
		m.Add(votes.Vote{Item: rng.IntN(100), Worker: rng.IntN(5), Label: drawLabel(rng, 0.25)})
	}
	cst := CaptureChao92(m)
	defer cst.Release()
	base, err := cst.Bootstrap(400, 0.9, xrand.New(21), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		ci, err := cst.Bootstrap(400, 0.9, xrand.New(21), workers)
		if err != nil {
			t.Fatal(err)
		}
		if ci != base {
			t.Fatalf("chao92 workers=%d: CI %+v != serial %+v", workers, ci, base)
		}
	}
}

// TestBootstrapStateReuse: pooled capture states must be safe to reuse across
// capture/release cycles and across differently-sized sources — the
// per-request allocation the satellite removed must not cost correctness.
func TestBootstrapStateReuse(t *testing.T) {
	e := feedBootstrapSwitch(t)
	want := CI{}
	for round := 0; round < 5; round++ {
		st, err := e.CaptureBootstrap()
		if err != nil {
			t.Fatal(err)
		}
		ci, err := st.Bootstrap(200, 0.95, xrand.New(55), 4)
		st.Release()
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			want = ci
		} else if ci != want {
			t.Fatalf("round %d: pooled-state CI %+v != first %+v", round, ci, want)
		}
		// Interleave a different-shape capture so the pool hands back dirty
		// buffers that must be fully re-initialized.
		m := votes.NewMatrix(10 + round)
		m.Add(votes.Vote{Item: round % 3, Worker: 0, Label: votes.Dirty})
		cst := CaptureChao92(m)
		if _, err := cst.Bootstrap(50, 0.9, xrand.New(1), 2); err != nil {
			t.Fatal(err)
		}
		cst.Release()
	}
}
