package estimator

// Canonical estimator names used across the registry, the experiment harness,
// CLI output and EXPERIMENTS.md. They match the labels in the paper's
// figures. This file is the single source of truth: the registry registers
// factories under these constants, Estimates.ByName resolves through the same
// table, and the experiment report layer orders series with StandardNames —
// adding an estimator in one place cannot silently desync the others.
const (
	NameNominal = "NOMINAL"
	NameVoting  = "VOTING"
	NameChao92  = "CHAO92"
	NameVChao92 = "V-CHAO"
	NameSwitch  = "SWITCH"

	// NameExtrapolate labels the §2.2.3 predictive baseline in figures; it is
	// sample-driven rather than vote-stream-driven, so it has no registry
	// factory.
	NameExtrapolate = "EXTRAPOL"
	// NameGT labels ground truth, where plotted.
	NameGT = "GT"
)

// standardEstimate pairs a name with its accessor into an Estimates snapshot.
// The table drives both ByName and StandardNames, so the two cannot drift.
var standardEstimates = []struct {
	name string
	get  func(Estimates) float64
}{
	{NameNominal, func(e Estimates) float64 { return e.Nominal }},
	{NameVoting, func(e Estimates) float64 { return e.Voting }},
	{NameChao92, func(e Estimates) float64 { return e.Chao92 }},
	{NameVChao92, func(e Estimates) float64 { return e.VChao92 }},
	{NameSwitch, func(e Estimates) float64 { return e.Switch.Total }},
}

// StandardNames returns the built-in estimator names in canonical figure
// order (the order Suite evaluates them in). The slice is fresh on every
// call; callers may modify it.
func StandardNames() []string {
	out := make([]string, len(standardEstimates))
	for i, s := range standardEstimates {
		out[i] = s.name
	}
	return out
}

// IsStandardName reports whether name is one of the built-in estimator
// names.
func IsStandardName(name string) bool {
	for _, s := range standardEstimates {
		if s.name == name {
			return true
		}
	}
	return false
}
