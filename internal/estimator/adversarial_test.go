package estimator

import (
	"math"
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/stats"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// These tests inject the failure modes the paper warns about and assert the
// estimators degrade the way §6.2/§6.3 describe — SWITCH's guarantees hold
// exactly when workers are better than random, and not otherwise.

// runScenario streams nTasks of simulated work into a fresh suite.
func runScenario(t *testing.T, profile crowd.Profile, nTasks int, seed uint64) (*Suite, *dataset.Population) {
	t.Helper()
	pop := dataset.NewPlantedPopulation(500, 75, seed, "adversarial")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      profile,
		ItemsPerTask: 10,
		Seed:         seed,
	})
	suite := NewSuite(pop.N(), SuiteConfig{})
	for _, task := range sim.Tasks(nTasks) {
		suite.ObserveTask(task.Votes())
	}
	return suite, pop
}

func TestAdversarialWorkersBreakConvergence(t *testing.T) {
	// Workers with 70% error rates are WORSE than random: the majority
	// converges to the inverse of the truth, and SWITCH follows it (its
	// §4.2 assumption is violated). The competent-crowd control converges.
	badSuite, pop := runScenario(t, crowd.FromPrecision(0.3), 2000, 1)
	goodSuite, _ := runScenario(t, crowd.FromPrecision(0.9), 2000, 1)
	truth := float64(pop.NumDirty())

	bad := badSuite.EstimateAll()
	good := goodSuite.EstimateAll()
	if math.Abs(good.Switch.Total-truth) > 0.15*truth {
		t.Fatalf("control crowd failed to converge: %v vs %v", good.Switch.Total, truth)
	}
	// The adversarial majority marks most CLEAN items dirty: far above truth.
	if bad.Voting < 2*truth {
		t.Fatalf("adversarial majority %v unexpectedly close to truth %v", bad.Voting, truth)
	}
	if math.Abs(bad.Switch.Total-truth) < 0.5*truth {
		t.Fatalf("SWITCH %v should NOT track truth %v under worse-than-random workers",
			bad.Switch.Total, truth)
	}
}

func TestCoinFlipWorkersYieldNoSignal(t *testing.T) {
	// Exactly-random workers: the majority hovers around N/2 and estimates
	// carry no information; the assertion is only that nothing panics, no
	// NaNs appear and SWITCH stays within the valid range.
	suite, pop := runScenario(t, crowd.FromPrecision(0.5), 800, 2)
	est := suite.EstimateAll()
	for name, v := range map[string]float64{
		"nominal": est.Nominal, "voting": est.Voting,
		"chao92": est.Chao92, "vchao": est.VChao92, "switch": est.Switch.Total,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("%s = %v under coin-flip workers", name, v)
		}
	}
	// Majority of a fair coin over many votes ≈ half the population.
	if est.Voting < 0.3*float64(pop.N()) || est.Voting > 0.7*float64(pop.N()) {
		t.Fatalf("coin-flip majority %v outside the expected band", est.Voting)
	}
}

func TestSingletonErrorEntanglement(t *testing.T) {
	// The §3.2.2 phenomenon in isolation: adding a handful of false-positive
	// singletons inflates Chao92 disproportionately.
	base := votes.NewMatrix(1000)
	rng := xrand.New(3)
	// 80 true errors, each confirmed 2–4 times.
	for i := 0; i < 80; i++ {
		k := 2 + rng.IntN(3)
		for j := 0; j < k; j++ {
			base.Add(votes.Vote{Item: i, Worker: j, Label: votes.Dirty})
		}
	}
	clean := Chao92(base)
	vcClean := VChao92(base, VChao92Config{Shift: 1})

	// Now 20 false positives: one dirty vote each (singletons in the
	// positive-vote fingerprint) plus two clean counter-votes, so the
	// majority has already rejected them. Chao92 keys on c_nominal and f₁
	// and stays inflated; vChao92 keys on c_majority and the shifted
	// fingerprint and is immune.
	for i := 900; i < 920; i++ {
		base.Add(votes.Vote{Item: i, Worker: 9, Label: votes.Dirty})
		base.Add(votes.Vote{Item: i, Worker: 10, Label: votes.Clean})
		base.Add(votes.Vote{Item: i, Worker: 11, Label: votes.Clean})
	}
	polluted := Chao92(base)
	// 20 singletons add 20 observed species PLUS an inflated remaining-mass
	// term — the estimate must move by clearly more than the 20 new items
	// (the paper's Example 2 measures ≈30% inflation for ≈1% FPs).
	if polluted < clean+25 {
		t.Fatalf("20 FP singletons moved Chao92 only %v → %v; entanglement not visible",
			clean, polluted)
	}
	// vChao92 with shift 1 is invariant to the pollution: the FP items are
	// not in c_majority, and their singletons fall out of the shifted
	// fingerprint — the estimate barely moves, while Chao92's jumped.
	vc := VChao92(base, VChao92Config{Shift: 1})
	if math.Abs(vc-vcClean) > 5 {
		t.Fatalf("vChao92 moved %v → %v under FP pollution (Chao92 moved %v → %v)",
			vcClean, vc, clean, polluted)
	}
}

func TestEstimatorsNeverNegativeOrNaN(t *testing.T) {
	// Fuzz the suite with random vote streams; all estimates stay finite
	// and non-negative at every checkpoint.
	rng := xrand.New(4)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.IntN(50)
		suite := NewSuite(n, SuiteConfig{})
		steps := rng.IntN(300)
		for i := 0; i < steps; i++ {
			suite.Observe(votes.Vote{
				Item:   rng.IntN(n),
				Worker: rng.IntN(5),
				Label:  votes.Label(rng.IntN(2)),
			})
			if rng.Bernoulli(0.1) {
				suite.EndTask()
			}
			if rng.Bernoulli(0.05) {
				est := suite.EstimateAll()
				for _, v := range []float64{est.Nominal, est.Voting, est.Chao92, est.VChao92,
					est.Switch.Total, est.Switch.XiPos, est.Switch.XiNeg, est.Switch.RemainingSwitches} {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						t.Fatalf("trial %d: invalid estimate %v in %+v", trial, v, est)
					}
				}
			}
		}
	}
}

func TestSaturatedFingerprintStaysFinite(t *testing.T) {
	// All-singleton fingerprints give zero coverage; the capped blow-up
	// path must be exercised without infinities.
	m := votes.NewMatrix(100)
	for i := 0; i < 100; i++ {
		m.Add(votes.Vote{Item: i, Worker: i, Label: votes.Dirty})
	}
	got := Chao92(m)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("saturated Chao92 = %v", got)
	}
	in := stats.Chao92Input{C: m.Nominal(), F: m.DirtyFingerprint(), N: m.PositiveVotes()}
	if r := stats.Chao92(in); !r.Saturated {
		t.Fatal("saturation not flagged")
	}
}
