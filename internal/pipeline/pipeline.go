// Package pipeline wires the substrates into the end-to-end propose–verify
// flow of Section 5: generate (or accept) a dataset, score record pairs with
// a similarity heuristic, window the scores into auto-clean / candidate /
// auto-dirty regions, and expose the candidate set as the item space for
// crowd verification and estimation.
package pipeline

import (
	"dqm/internal/dataset"
	"dqm/internal/entity"
	"dqm/internal/heuristic"
	"dqm/internal/similarity"
)

// CandidateSpace is the outcome of the algorithmic first stage: the item
// space handed to the crowd. Item i of the estimation problem is
// Pairs[i]; Truth marks which candidate pairs are true duplicates.
type CandidateSpace struct {
	// Pairs are the candidate record pairs (ids into the source dataset;
	// for bipartite catalogs the right side is offset by the left size).
	Pairs []entity.Pair
	// Truth marks true duplicates among the candidates.
	Truth *dataset.GroundTruth
	// AutoDirty counts pairs above the window (auto-merged), of which
	// AutoDirtyTrue are actually duplicates — nonzero only for imperfect
	// heuristics.
	AutoDirty, AutoDirtyTrue int
	// MissedBelow counts true duplicates the heuristic dropped below the
	// window (the heuristic's false negatives).
	MissedBelow int
}

// Population converts the candidate space into the estimation population.
func (c *CandidateSpace) Population(describe string) *dataset.Population {
	return &dataset.Population{Truth: c.Truth, Describe: describe}
}

// classifyPair scores one candidate pair against the (alpha, beta) window
// and files it into the space: below-window dups count as MissedBelow,
// above-window pairs auto-merge, the rest become crowd candidates. Both
// dataset scans share it so the prefilter and the window accounting cannot
// diverge. dirty accumulates the candidate-local indices of true duplicates.
func classifyPair(out *CandidateSpace, dirty []int, p entity.Pair,
	profA, profB similarity.CharProfile, keyA, keyB string, dup bool, alpha, beta float64) []int {
	// Two-stage prefilter: the O(alphabet) histogram bound discards the
	// bulk of pairs, and the bounded kernel abandons the rest of the
	// clearly-dissimilar ones (length gap, hopeless DP rows) without
	// finishing the DP.
	s, inWindow := 0.0, false
	if profA.CouldMatch(profB, alpha) {
		s, inWindow = similarity.EditSimilarityAtLeast(keyA, keyB, alpha)
	}
	switch {
	case !inWindow || s < alpha:
		if dup {
			out.MissedBelow++
		}
	case s > beta:
		out.AutoDirty++
		if dup {
			out.AutoDirtyTrue++
		}
	default:
		if dup {
			dirty = append(dirty, len(out.Pairs))
		}
		out.Pairs = append(out.Pairs, p)
	}
	return dirty
}

// RestaurantCandidates runs the CrowdER-style first stage on a generated
// restaurant dataset: normalized edit-distance similarity over all record
// pairs, with the paper's window (0.5, 0.9) — pairs above 0.9 are obvious
// matches, below 0.5 obvious non-matches.
func RestaurantCandidates(data *dataset.RestaurantData, alpha, beta float64) *CandidateSpace {
	// Token-sort normalization is O(|key| log |key|) per record; hoisting it
	// out of the O(n²) pair loop is the difference between tokenizing n times
	// and n² times.
	keys := make([]string, len(data.Records))
	profiles := make([]similarity.CharProfile, len(data.Records))
	for i, r := range data.Records {
		keys[i] = similarity.TokenSortKey(r.Key())
		profiles[i] = similarity.NewCharProfile(keys[i])
	}
	isDup := pairSet(data.DuplicatePairs)
	var out CandidateSpace
	var dirty []int
	entity.AllPairs(len(keys), func(p entity.Pair) bool {
		dirty = classifyPair(&out, dirty, p,
			profiles[p.A], profiles[p.B], keys[p.A], keys[p.B], isDup[p], alpha, beta)
		return true
	})
	out.Truth = dataset.NewGroundTruth(len(out.Pairs), dirty)
	return &out
}

// ProductCandidates runs the first stage on the bipartite product catalogs
// with token blocking (the full 3.2M-pair cross product is never scored) and
// the paper's window (0.4, 0.7).
func ProductCandidates(data *dataset.ProductData, alpha, beta float64) *CandidateSpace {
	// Blocking tokenizes the raw keys; the window scan scores token-sorted
	// normalizations. Both are precomputed once per record.
	left := make([]string, len(data.Amazon))
	leftSorted := make([]string, len(data.Amazon))
	for i, p := range data.Amazon {
		left[i] = p.Key()
		leftSorted[i] = similarity.TokenSortKey(left[i])
	}
	right := make([]string, len(data.Google))
	rightSorted := make([]string, len(data.Google))
	for i, p := range data.Google {
		right[i] = p.Key()
		rightSorted[i] = similarity.TokenSortKey(right[i])
	}
	isDup := make(map[entity.Pair]bool, len(data.MatchPairs))
	for _, mp := range data.MatchPairs {
		isDup[entity.Pair{A: mp[0], B: len(left) + mp[1]}] = true
	}

	blocker := entity.Blocker{MaxBlockSize: 128}
	cands := blocker.BipartiteCandidatePairs(left, right)

	// True matches missed by blocking count as heuristic false negatives.
	inCands := make(map[entity.Pair]bool, len(cands))
	for _, p := range cands {
		inCands[p] = true
	}

	var out CandidateSpace
	var dirty []int
	leftProf := make([]similarity.CharProfile, len(leftSorted))
	for i, k := range leftSorted {
		leftProf[i] = similarity.NewCharProfile(k)
	}
	rightProf := make([]similarity.CharProfile, len(rightSorted))
	for i, k := range rightSorted {
		rightProf[i] = similarity.NewCharProfile(k)
	}
	for _, p := range cands {
		r := p.B - len(left)
		dirty = classifyPair(&out, dirty, p,
			leftProf[p.A], rightProf[r], leftSorted[p.A], rightSorted[r], isDup[p], alpha, beta)
	}
	for p := range isDup {
		if !inCands[p] {
			out.MissedBelow++
		}
	}
	out.Truth = dataset.NewGroundTruth(len(out.Pairs), dirty)
	return &out
}

// ScoreWindow partitions arbitrary scored items with heuristic.Split; it is
// re-exported here so pipeline users need not import the heuristic package
// for the common case.
func ScoreWindow(scores []float64, alpha, beta float64) heuristic.Partition {
	return heuristic.Split(scores, alpha, beta)
}

func pairSet(pairs [][2]int) map[entity.Pair]bool {
	out := make(map[entity.Pair]bool, len(pairs))
	for _, p := range pairs {
		out[entity.NewPair(p[0], p[1])] = true
	}
	return out
}
