package pipeline

import (
	"testing"

	"dqm/internal/dataset"
	"dqm/internal/similarity"
)

func TestRestaurantCandidatesClassifiesEveryDuplicate(t *testing.T) {
	data := dataset.GenerateRestaurants(dataset.RestaurantConfig{
		Records: 120, Duplicates: 20, Seed: 5,
	})
	c := RestaurantCandidates(data, 0.5, 0.9)

	// Every planted duplicate pair is accounted for exactly once:
	// in-window, auto-merged above, or lost below.
	total := c.Truth.NumDirty() + c.AutoDirtyTrue + c.MissedBelow
	if total != len(data.DuplicatePairs) {
		t.Fatalf("classified %d duplicates, planted %d", total, len(data.DuplicatePairs))
	}

	// Window invariant: every candidate's similarity is inside [α, β].
	keys := make([]string, len(data.Records))
	for i, r := range data.Records {
		keys[i] = r.Key()
	}
	for i, p := range c.Pairs {
		s := similarity.TokenSortedEditSimilarity(keys[p.A], keys[p.B])
		if s < 0.5 || s > 0.9 {
			t.Fatalf("candidate %d (%v) similarity %v outside window", i, p, s)
		}
	}

	// The ground truth covers exactly the candidate set.
	if c.Truth.N() != len(c.Pairs) {
		t.Fatalf("truth over %d items, %d pairs", c.Truth.N(), len(c.Pairs))
	}
}

func TestRestaurantCandidatesPopulation(t *testing.T) {
	data := dataset.GenerateRestaurants(dataset.RestaurantConfig{
		Records: 80, Duplicates: 10, Seed: 6,
	})
	c := RestaurantCandidates(data, 0.5, 0.9)
	pop := c.Population("test")
	if pop.N() != len(c.Pairs) || pop.Describe != "test" {
		t.Fatalf("population %d/%q", pop.N(), pop.Describe)
	}
}

func TestProductCandidatesClassifiesEveryMatch(t *testing.T) {
	data := dataset.GenerateProducts(dataset.ProductConfig{
		AmazonRecords: 300, GoogleRecords: 200, Matches: 60, Seed: 7,
	})
	c := ProductCandidates(data, 0.4, 0.7)
	total := c.Truth.NumDirty() + c.AutoDirtyTrue + c.MissedBelow
	if total != len(data.MatchPairs) {
		t.Fatalf("classified %d matches, planted %d", total, len(data.MatchPairs))
	}
	// Candidates are cross-catalog pairs in the offset id space.
	for _, p := range c.Pairs {
		if p.A < 0 || p.A >= len(data.Amazon) {
			t.Fatalf("left id out of range: %v", p)
		}
		if p.B < len(data.Amazon) || p.B >= len(data.Amazon)+len(data.Google) {
			t.Fatalf("right id out of range: %v", p)
		}
	}
	// Blocking must keep the crowd workload far below the cross product.
	if len(c.Pairs) >= len(data.Amazon)*len(data.Google)/10 {
		t.Fatalf("blocking ineffective: %d candidates", len(c.Pairs))
	}
}

func TestProductCandidatesFindMostMatches(t *testing.T) {
	data := dataset.GenerateProducts(dataset.ProductConfig{
		AmazonRecords: 300, GoogleRecords: 200, Matches: 60, Seed: 8,
	})
	c := ProductCandidates(data, 0.4, 0.7)
	found := c.Truth.NumDirty() + c.AutoDirtyTrue
	if found < 40 { // at least 2/3 of the 60 matches survive stage 1
		t.Fatalf("pipeline found only %d/60 matches", found)
	}
}

func TestScoreWindow(t *testing.T) {
	p := ScoreWindow([]float64{0.2, 0.6, 0.95}, 0.5, 0.9)
	if len(p.Candidates) != 1 || p.Candidates[0] != 1 {
		t.Fatalf("candidates = %v", p.Candidates)
	}
}
