package dataset

import (
	"strings"
	"testing"

	"dqm/internal/xrand"
)

func TestTypoChangesString(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		s := "Golden Dragon"
		if got := typo(r, s); got == s {
			t.Fatalf("typo left %q unchanged", s)
		}
	}
	// Strings shorter than 2 runes cannot be typo'd.
	if got := typo(r, "a"); got != "a" {
		t.Fatalf("single-rune typo = %q", got)
	}
}

func TestAbbreviate(t *testing.T) {
	r := xrand.New(2)
	got := abbreviate(r, "Main Street")
	if got != "Main St" {
		t.Fatalf("abbreviate = %q", got)
	}
	// No expandable token: unchanged.
	if got := abbreviate(r, "Foo Bar"); got != "Foo Bar" {
		t.Fatalf("abbreviate without candidates = %q", got)
	}
}

func TestReorderTokens(t *testing.T) {
	r := xrand.New(3)
	if got := reorderTokens(r, "Cafe Ritz Buckhead"); got != "Buckhead Cafe Ritz" {
		t.Fatalf("reorder = %q", got)
	}
	if got := reorderTokens(r, "Solo"); got != "Solo" {
		t.Fatalf("single token reorder = %q", got)
	}
}

func TestDropToken(t *testing.T) {
	r := xrand.New(4)
	s := "a b c d"
	got := dropToken(r, s)
	if len(strings.Fields(got)) != 3 {
		t.Fatalf("dropToken = %q", got)
	}
	if got := dropToken(r, "a b"); got != "a b" {
		t.Fatalf("two-token drop = %q", got)
	}
}

func TestParenthesize(t *testing.T) {
	r := xrand.New(5)
	if got := parenthesize(r, "Ritz Cafe Buckhead"); got != "Ritz Cafe (Buckhead)" {
		t.Fatalf("parenthesize = %q", got)
	}
	if got := parenthesize(r, "Solo"); got != "Solo" {
		t.Fatalf("single-token parenthesize = %q", got)
	}
}

func TestPerturbAlwaysChanges(t *testing.T) {
	r := xrand.New(6)
	for _, level := range []PerturbLevel{PerturbLight, PerturbMedium, PerturbHeavy} {
		for i := 0; i < 100; i++ {
			s := "Golden Dragon Noodle House"
			if got := Perturb(r, s, level); got == s {
				t.Fatalf("level %d left %q unchanged", level, s)
			}
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	a := Perturb(xrand.New(7), "Blue Lantern Grill", PerturbMedium)
	b := Perturb(xrand.New(7), "Blue Lantern Grill", PerturbMedium)
	if a != b {
		t.Fatalf("same seed perturbation differs: %q vs %q", a, b)
	}
}
