package dataset

import (
	"fmt"
	"strings"

	"dqm/internal/xrand"
)

// Retailer identifies which catalog a product row belongs to.
type Retailer uint8

const (
	// Amazon is the larger catalog (2336 rows in the paper).
	Amazon Retailer = iota
	// Google is the smaller catalog (1363 rows in the paper).
	Google
)

// String implements fmt.Stringer.
func (r Retailer) String() string {
	if r == Amazon {
		return "Amazon"
	}
	return "Google"
}

// Product mirrors the paper's schema:
// Product(retailer, id, name1, name2, vendor, price).
type Product struct {
	Retailer Retailer
	ID       int
	Name     string
	Vendor   string
	Price    float64
}

// ProductConfig sizes the two catalogs; defaults follow the paper
// (2336 Amazon rows, 1363 Google rows, 607 true matches).
type ProductConfig struct {
	AmazonRecords int
	GoogleRecords int
	Matches       int
	Seed          uint64
}

func (c *ProductConfig) setDefaults() {
	if c.AmazonRecords == 0 {
		c.AmazonRecords = 2336
	}
	if c.GoogleRecords == 0 {
		c.GoogleRecords = 1363
	}
	if c.Matches == 0 {
		c.Matches = 607
	}
	if c.Matches > c.AmazonRecords || c.Matches > c.GoogleRecords {
		panic(fmt.Sprintf("dataset: %d matches exceed catalog sizes (%d, %d)",
			c.Matches, c.AmazonRecords, c.GoogleRecords))
	}
}

// ProductData is the generated bipartite catalog plus ground truth:
// MatchPairs holds (amazonIndex, googleIndex) pairs referring to the same
// product. Indices are positions within the respective slices.
type ProductData struct {
	Amazon     []Product
	Google     []Product
	MatchPairs [][2]int
}

// GenerateProducts synthesizes the Amazon/Google catalogs. Matched products
// get vendor-specific renderings (retailer prefixes, edition reordering,
// version drift), which is what makes product matching harder than
// restaurant matching — the paper observed far more worker mistakes here.
func GenerateProducts(cfg ProductConfig) *ProductData {
	cfg.setDefaults()
	r := xrand.New(cfg.Seed).SplitNamed("product")

	type proto struct {
		brand, noun, edition, version string
		price                         float64
	}
	newProto := func() proto {
		return proto{
			brand:   xrand.Choice(r, productBrands),
			noun:    xrand.Choice(r, productNouns),
			edition: xrand.Choice(r, productEditions),
			version: xrand.Choice(r, productVersionSuffixes),
			price:   5 + float64(r.IntN(49500))/100,
		}
	}
	amazonName := func(p proto) string {
		return fmt.Sprintf("%s %s %s %s", p.brand, p.noun, p.edition, p.version)
	}
	googleName := func(p proto) string {
		// Google listings in the real dataset frequently lower-case, drop
		// the edition or move the version; model all three.
		name := fmt.Sprintf("%s %s", p.brand, p.noun)
		switch r.IntN(3) {
		case 0:
			name = fmt.Sprintf("%s %s %s", name, p.version, p.edition)
		case 1:
			name = fmt.Sprintf("%s %s", name, p.version)
		default:
			name = fmt.Sprintf("%s %s", name, strings.ToLower(p.edition))
		}
		if r.Bernoulli(0.5) {
			name = strings.ToLower(name)
		}
		if r.Bernoulli(0.25) {
			name = Perturb(r, name, PerturbLight)
		}
		return name
	}

	data := &ProductData{
		Amazon:     make([]Product, 0, cfg.AmazonRecords),
		Google:     make([]Product, 0, cfg.GoogleRecords),
		MatchPairs: make([][2]int, 0, cfg.Matches),
	}

	// Matched products appear in both catalogs.
	for i := 0; i < cfg.Matches; i++ {
		p := newProto()
		ai := len(data.Amazon)
		gi := len(data.Google)
		data.Amazon = append(data.Amazon, Product{
			Retailer: Amazon, ID: ai, Name: amazonName(p), Vendor: p.brand, Price: p.price,
		})
		// Prices drift between retailers.
		drift := 1 + (r.Float64()-0.5)*0.2
		data.Google = append(data.Google, Product{
			Retailer: Google, ID: gi, Name: googleName(p), Vendor: p.brand, Price: p.price * drift,
		})
		data.MatchPairs = append(data.MatchPairs, [2]int{ai, gi})
	}
	// Unmatched remainder of each catalog. Drawing from the same corpora
	// produces plenty of near-miss non-matches (same brand, different noun),
	// the false-positive bait that matters for the experiments.
	for len(data.Amazon) < cfg.AmazonRecords {
		p := newProto()
		data.Amazon = append(data.Amazon, Product{
			Retailer: Amazon, ID: len(data.Amazon), Name: amazonName(p), Vendor: p.brand, Price: p.price,
		})
	}
	for len(data.Google) < cfg.GoogleRecords {
		p := newProto()
		data.Google = append(data.Google, Product{
			Retailer: Google, ID: len(data.Google), Name: googleName(p), Vendor: p.brand, Price: p.price,
		})
	}
	return data
}

// Key returns the comparable surface form for similarity heuristics.
func (p Product) Key() string { return p.Name + " " + p.Vendor }
