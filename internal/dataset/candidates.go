package dataset

import (
	"fmt"

	"dqm/internal/xrand"
)

// Population is the abstract item space every estimation experiment runs
// over: N items of which some known subset is dirty. For entity resolution
// the items are candidate pairs; for the address dataset they are records.
// The figure-reproduction experiments construct Populations directly with
// the paper's published counts (see DESIGN.md §3); the end-to-end examples
// derive them from generated datasets via the entity and heuristic packages.
type Population struct {
	Truth *GroundTruth
	// Describe labels the population in reports, e.g. "restaurant candidates".
	Describe string
}

// NewPlantedPopulation builds a population of n items with numDirty dirty
// items placed uniformly at random under the seed.
func NewPlantedPopulation(n, numDirty int, seed uint64, describe string) *Population {
	if numDirty > n {
		panic(fmt.Sprintf("dataset: %d dirty items exceed population %d", numDirty, n))
	}
	r := xrand.New(seed).SplitNamed("planted:" + describe)
	dirty := r.SampleWithoutReplacement(n, numDirty)
	return &Population{
		Truth:    NewGroundTruth(n, dirty),
		Describe: describe,
	}
}

// N returns the population size.
func (p *Population) N() int { return p.Truth.N() }

// NumDirty returns the true error count |R_dirty|.
func (p *Population) NumDirty() int { return p.Truth.NumDirty() }

// Paper-published candidate-set shapes (§6.1). These are the populations the
// real-data figures operate on.

// RestaurantCandidates returns the restaurant candidate-pair population:
// 1264 pairs in the similarity window, 12 true duplicates.
func RestaurantCandidates(seed uint64) *Population {
	return NewPlantedPopulation(1264, 12, seed, "restaurant candidates")
}

// ProductCandidates returns the product candidate-pair population:
// 13022 pairs in the similarity window, 607 true duplicates.
func ProductCandidates(seed uint64) *Population {
	return NewPlantedPopulation(13022, 607, seed, "product candidates")
}

// AddressPopulation returns the address-record population: 1000 records, 90
// malformed.
func AddressPopulation(seed uint64) *Population {
	return NewPlantedPopulation(1000, 90, seed, "address records")
}

// SimulationPopulation returns the §6.2 synthetic population: 1000 candidate
// pairs with 100 true duplicates.
func SimulationPopulation(seed uint64) *Population {
	return NewPlantedPopulation(1000, 100, seed, "simulated candidates")
}
