// Package dataset synthesizes the three datasets of the paper's evaluation
// with planted ground truth:
//
//   - Restaurant: 858 restaurant records where some rows duplicate the same
//     real-world restaurant under perturbed names/addresses (§6.1.1);
//   - Product: an Amazon catalog (2336 rows) and a Google catalog (1363
//     rows) sharing 607 matched products under vendor-specific naming
//     (§6.1.2);
//   - Address: 1000 Portland, OR home addresses of which 90 are malformed
//     following the error taxonomy of Figure 1 (§6.1.3).
//
// The paper used the published real datasets plus Amazon Mechanical Turk
// labels. Neither is available offline, so the generators plant the same
// structure (sizes, error counts, error character) and the crowd package
// synthesizes worker responses; DESIGN.md §3 documents why this preserves
// the behaviour the estimators are sensitive to.
package dataset

import (
	"fmt"
	"sort"
)

// GroundTruth records which items of a population are truly dirty. For
// entity resolution an "item" is a candidate pair; for the address dataset
// it is a record.
type GroundTruth struct {
	n     int
	dirty map[int]struct{}
}

// NewGroundTruth creates a ground truth over n items with the given dirty
// item indices. Out-of-range indices panic: ground truths are constructed by
// generators that own the index space.
func NewGroundTruth(n int, dirty []int) *GroundTruth {
	gt := &GroundTruth{n: n, dirty: make(map[int]struct{}, len(dirty))}
	for _, i := range dirty {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("dataset: dirty index %d out of range [0,%d)", i, n))
		}
		gt.dirty[i] = struct{}{}
	}
	return gt
}

// N returns the population size.
func (g *GroundTruth) N() int { return g.n }

// NumDirty returns |R_dirty|.
func (g *GroundTruth) NumDirty() int { return len(g.dirty) }

// IsDirty reports whether item i is truly erroneous.
func (g *GroundTruth) IsDirty(i int) bool {
	_, ok := g.dirty[i]
	return ok
}

// DirtyItems returns the sorted dirty indices.
func (g *GroundTruth) DirtyItems() []int {
	out := make([]int, 0, len(g.dirty))
	for i := range g.dirty {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Labels materializes the ground-truth vector E ∈ {0,1}^N of Problem 2
// (true = dirty).
func (g *GroundTruth) Labels() []bool {
	out := make([]bool, g.n)
	for i := range g.dirty {
		out[i] = true
	}
	return out
}

// CountErrors returns how many of the marked items are truly dirty and how
// many are false positives, a convenience for oracle-style evaluation.
func (g *GroundTruth) CountErrors(marked []int) (truePos, falsePos int) {
	for _, i := range marked {
		if g.IsDirty(i) {
			truePos++
		} else {
			falsePos++
		}
	}
	return truePos, falsePos
}
