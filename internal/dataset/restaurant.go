package dataset

import (
	"fmt"

	"dqm/internal/xrand"
)

// Restaurant mirrors the schema of the paper's restaurant dataset:
// Restaurant(id, name, address, city, category).
type Restaurant struct {
	ID       int
	Name     string
	Address  string
	City     string
	Category string
}

// RestaurantConfig sizes the generated dataset. The zero value is replaced
// by the paper's numbers: 858 records containing 106 duplicated restaurants
// (each restaurant duplicated at most once).
type RestaurantConfig struct {
	Records    int
	Duplicates int
	Seed       uint64
}

func (c *RestaurantConfig) setDefaults() {
	if c.Records == 0 {
		c.Records = 858
	}
	if c.Duplicates == 0 {
		c.Duplicates = 106
	}
	if c.Records < 2*c.Duplicates {
		panic(fmt.Sprintf("dataset: %d records cannot contain %d duplicate pairs", c.Records, c.Duplicates))
	}
}

// RestaurantData is the generated dataset plus its entity-resolution ground
// truth: DuplicatePairs holds index pairs (i, j), i < j, referring to the
// same real-world restaurant.
type RestaurantData struct {
	Records        []Restaurant
	DuplicatePairs [][2]int
}

// GenerateRestaurants synthesizes the restaurant dataset. Duplicates are
// created by perturbing a base record's name and address at a random level,
// so planted pairs span the whole similarity range — some are trivially
// caught by the heuristic window, some are genuinely ambiguous.
func GenerateRestaurants(cfg RestaurantConfig) *RestaurantData {
	cfg.setDefaults()
	r := xrand.New(cfg.Seed).SplitNamed("restaurant")

	base := cfg.Records - cfg.Duplicates
	records := make([]Restaurant, 0, cfg.Records)
	seen := make(map[string]struct{}, base)
	for len(records) < base {
		name := xrand.Choice(r, restaurantFirstWords) + " " + xrand.Choice(r, restaurantSecondWords)
		// Some restaurants carry a neighborhood qualifier, feeding the
		// token-reorder duplicate pattern from the paper's example.
		if r.Bernoulli(0.3) {
			name += " " + xrand.Choice(r, streetNames)
		}
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		city := xrand.Choice(r, usCities)
		records = append(records, Restaurant{
			ID:       len(records),
			Name:     name,
			Address:  fmt.Sprintf("%d %s %s", 10+r.IntN(9900), xrand.Choice(r, streetNames), xrand.Choice(r, streetTypes)),
			City:     city.city,
			Category: xrand.Choice(r, restaurantCategories),
		})
	}

	// Duplicate a random subset of base records, each at most once.
	pairs := make([][2]int, 0, cfg.Duplicates)
	for _, bi := range r.SampleWithoutReplacement(base, cfg.Duplicates) {
		orig := records[bi]
		level := PerturbLevel(r.IntN(3))
		dup := Restaurant{
			ID:       len(records),
			Name:     Perturb(r, orig.Name, level),
			Address:  orig.Address,
			City:     orig.City,
			Category: orig.Category,
		}
		if r.Bernoulli(0.4) {
			dup.Address = Perturb(r, orig.Address, PerturbLight)
		}
		records = append(records, dup)
		pairs = append(pairs, [2]int{bi, dup.ID})
	}

	return &RestaurantData{Records: records, DuplicatePairs: pairs}
}

// Key returns the record's comparable surface form used by similarity
// heuristics: name plus address.
func (r Restaurant) Key() string { return r.Name + " " + r.Address }
