package dataset

import (
	"testing"
)

func TestGroundTruthBasics(t *testing.T) {
	gt := NewGroundTruth(10, []int{2, 5, 7})
	if gt.N() != 10 || gt.NumDirty() != 3 {
		t.Fatalf("N=%d dirty=%d", gt.N(), gt.NumDirty())
	}
	if !gt.IsDirty(2) || !gt.IsDirty(5) || !gt.IsDirty(7) || gt.IsDirty(0) {
		t.Fatal("IsDirty wrong")
	}
	items := gt.DirtyItems()
	if len(items) != 3 || items[0] != 2 || items[1] != 5 || items[2] != 7 {
		t.Fatalf("DirtyItems = %v", items)
	}
	labels := gt.Labels()
	if !labels[2] || labels[3] {
		t.Fatalf("Labels = %v", labels)
	}
}

func TestGroundTruthCountErrors(t *testing.T) {
	gt := NewGroundTruth(10, []int{1, 2})
	tp, fp := gt.CountErrors([]int{1, 3, 2, 4})
	if tp != 2 || fp != 2 {
		t.Fatalf("tp=%d fp=%d", tp, fp)
	}
}

func TestGroundTruthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range dirty index did not panic")
		}
	}()
	NewGroundTruth(5, []int{5})
}

func TestPlantedPopulation(t *testing.T) {
	p := NewPlantedPopulation(100, 20, 1, "test")
	if p.N() != 100 || p.NumDirty() != 20 {
		t.Fatalf("N=%d dirty=%d", p.N(), p.NumDirty())
	}
	// Deterministic per seed.
	q := NewPlantedPopulation(100, 20, 1, "test")
	for i := 0; i < 100; i++ {
		if p.Truth.IsDirty(i) != q.Truth.IsDirty(i) {
			t.Fatal("same seed produced different plantings")
		}
	}
	// Different seeds differ (with overwhelming probability).
	r := NewPlantedPopulation(100, 20, 2, "test")
	same := true
	for i := 0; i < 100; i++ {
		if p.Truth.IsDirty(i) != r.Truth.IsDirty(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plantings")
	}
}

func TestPlantedPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overfull planting did not panic")
		}
	}()
	NewPlantedPopulation(10, 11, 1, "bad")
}

func TestPaperPopulations(t *testing.T) {
	tests := []struct {
		name     string
		pop      *Population
		n, dirty int
	}{
		{"restaurant", RestaurantCandidates(1), 1264, 12},
		{"product", ProductCandidates(1), 13022, 607},
		{"address", AddressPopulation(1), 1000, 90},
		{"simulation", SimulationPopulation(1), 1000, 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.pop.N() != tt.n || tt.pop.NumDirty() != tt.dirty {
				t.Fatalf("got %d/%d, want %d/%d", tt.pop.N(), tt.pop.NumDirty(), tt.n, tt.dirty)
			}
		})
	}
}

func TestGenerateRestaurants(t *testing.T) {
	data := GenerateRestaurants(RestaurantConfig{Seed: 3})
	if len(data.Records) != 858 {
		t.Fatalf("records = %d, want 858", len(data.Records))
	}
	if len(data.DuplicatePairs) != 106 {
		t.Fatalf("duplicate pairs = %d, want 106", len(data.DuplicatePairs))
	}
	usedAsDup := make(map[int]bool)
	for _, p := range data.DuplicatePairs {
		a, b := p[0], p[1]
		if a < 0 || a >= len(data.Records) || b < 0 || b >= len(data.Records) || a == b {
			t.Fatalf("invalid pair %v", p)
		}
		// Each restaurant duplicated at most once.
		if usedAsDup[a] || usedAsDup[b] {
			t.Fatalf("record reused across duplicate pairs: %v", p)
		}
		usedAsDup[a], usedAsDup[b] = true, true
		// The duplicate must actually differ from its original.
		if data.Records[a].Name == data.Records[b].Name {
			t.Fatalf("duplicate pair %v has identical names", p)
		}
	}
	// IDs are positional.
	for i, r := range data.Records {
		if r.ID != i {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
		if r.Name == "" || r.Address == "" || r.City == "" || r.Category == "" {
			t.Fatalf("record %d has empty fields: %+v", i, r)
		}
	}
}

func TestGenerateRestaurantsDeterministic(t *testing.T) {
	a := GenerateRestaurants(RestaurantConfig{Seed: 9})
	b := GenerateRestaurants(RestaurantConfig{Seed: 9})
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
	c := GenerateRestaurants(RestaurantConfig{Seed: 10})
	if a.Records[0] == c.Records[0] && a.Records[1] == c.Records[1] && a.Records[2] == c.Records[2] {
		t.Fatal("different seeds produced identical leading records")
	}
}

func TestGenerateRestaurantsPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	GenerateRestaurants(RestaurantConfig{Records: 10, Duplicates: 6})
}

func TestGenerateProducts(t *testing.T) {
	data := GenerateProducts(ProductConfig{Seed: 4})
	if len(data.Amazon) != 2336 || len(data.Google) != 1363 {
		t.Fatalf("catalog sizes %d/%d", len(data.Amazon), len(data.Google))
	}
	if len(data.MatchPairs) != 607 {
		t.Fatalf("matches = %d, want 607", len(data.MatchPairs))
	}
	for _, mp := range data.MatchPairs {
		if mp[0] < 0 || mp[0] >= len(data.Amazon) || mp[1] < 0 || mp[1] >= len(data.Google) {
			t.Fatalf("invalid match %v", mp)
		}
		// Matched products share the brand even when names drift.
		if data.Amazon[mp[0]].Vendor != data.Google[mp[1]].Vendor {
			t.Fatalf("match %v has different vendors", mp)
		}
	}
	for _, p := range data.Amazon {
		if p.Retailer != Amazon || p.Name == "" || p.Price <= 0 {
			t.Fatalf("bad amazon row %+v", p)
		}
	}
	for _, p := range data.Google {
		if p.Retailer != Google || p.Name == "" || p.Price <= 0 {
			t.Fatalf("bad google row %+v", p)
		}
	}
	if Amazon.String() != "Amazon" || Google.String() != "Google" {
		t.Fatal("retailer strings wrong")
	}
}

func TestGenerateProductsSmallConfig(t *testing.T) {
	data := GenerateProducts(ProductConfig{AmazonRecords: 50, GoogleRecords: 30, Matches: 10, Seed: 5})
	if len(data.Amazon) != 50 || len(data.Google) != 30 || len(data.MatchPairs) != 10 {
		t.Fatal("small config sizes wrong")
	}
}

func TestGenerateProductsPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	GenerateProducts(ProductConfig{AmazonRecords: 5, GoogleRecords: 5, Matches: 6})
}

func TestGenerateAddresses(t *testing.T) {
	data := GenerateAddresses(AddressConfig{Seed: 6})
	if len(data.Records) != 1000 {
		t.Fatalf("records = %d", len(data.Records))
	}
	if data.Truth.NumDirty() != 90 {
		t.Fatalf("errors = %d, want 90", data.Truth.NumDirty())
	}
	// Every error class from the Figure 1 taxonomy must be present.
	kinds := make(map[AddressErrorKind]int)
	for i, a := range data.Records {
		if data.Truth.IsDirty(i) != (a.Kind != AddressOK) {
			t.Fatalf("record %d: truth and kind disagree (%v)", i, a.Kind)
		}
		kinds[a.Kind]++
	}
	for _, k := range []AddressErrorKind{
		AddressMissingValue, AddressInvalidCity, AddressInvalidZip,
		AddressFDViolation, AddressNonHome, AddressFakeValid,
	} {
		if kinds[k] == 0 {
			t.Fatalf("error kind %v not planted", k)
		}
	}
}

func TestAddressFDViolationActuallyViolates(t *testing.T) {
	data := GenerateAddresses(AddressConfig{Seed: 7})
	portlandZips := make(map[string]bool)
	for _, z := range usCities[0].zips {
		portlandZips[z] = true
	}
	for _, a := range data.Records {
		if a.Kind != AddressFDViolation {
			continue
		}
		if !portlandZips[a.Zip] {
			t.Fatalf("FD violation %v lost its Portland zip", a)
		}
		if a.City == "Portland" {
			t.Fatalf("FD violation %v still claims Portland", a)
		}
	}
}

func TestAddressCleanRecordsWellFormed(t *testing.T) {
	data := GenerateAddresses(AddressConfig{Seed: 8})
	for i, a := range data.Records {
		if data.Truth.IsDirty(i) {
			continue
		}
		if a.Number <= 0 || a.Street == "" || a.City != "Portland" || a.State != "OR" || len(a.Zip) != 5 {
			t.Fatalf("clean record %d malformed: %+v", i, a)
		}
	}
}

func TestAddressString(t *testing.T) {
	a := Address{Number: 123, Street: "N Alder St", Unit: "Apt 4", City: "Portland", State: "OR", Zip: "97201"}
	want := "123 N Alder St Apt 4, Portland, OR, 97201"
	if got := a.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	missing := Address{Street: "N Alder St", City: "Portland", State: "OR", Zip: "97201"}
	if got := missing.String(); got != "N Alder St, Portland, OR, 97201" {
		t.Fatalf("missing-number String() = %q", got)
	}
}

func TestAddressErrorKindStrings(t *testing.T) {
	if AddressOK.String() != "ok" || AddressFakeValid.String() != "fake-valid" {
		t.Fatal("kind strings wrong")
	}
	if AddressErrorKind(99).String() != "AddressErrorKind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestAddressDifficultyOrdering(t *testing.T) {
	// Fake-valid entries are the hardest; missing values the easiest.
	if AddressFakeValid.Difficulty() <= AddressMissingValue.Difficulty() {
		t.Fatal("difficulty ordering violated")
	}
	if AddressOK.Difficulty() != 1 {
		t.Fatal("clean difficulty must be neutral")
	}
}
