package dataset

import (
	"strings"

	"dqm/internal/xrand"
)

// Perturbations model how a duplicate record differs from its original:
// typos, abbreviation, token reordering, dropped tokens and punctuation
// drift. They are used by the restaurant and product generators so that the
// planted duplicates have graded similarity, which is what makes the
// prioritization window (α ≤ H ≤ β) non-trivial.

var abbreviations = map[string]string{
	"Street": "St", "Avenue": "Ave", "Boulevard": "Blvd", "Drive": "Dr",
	"Road": "Rd", "Lane": "Ln", "Court": "Ct", "Place": "Pl",
	"Restaurant": "Rest.", "Cafe": "Caffe", "and": "&", "North": "N",
	"South": "S", "East": "E", "West": "W", "Saint": "St.",
	"Professional": "Pro", "Standard": "Std", "Deluxe": "Dlx",
	"Edition": "Ed.", "Version": "Ver.",
}

// typo applies one random character-level edit: swap, deletion, duplication
// or substitution with a neighboring letter.
func typo(r *xrand.RNG, s string) string {
	runes := []rune(s)
	if len(runes) < 2 {
		return s
	}
	i := r.IntN(len(runes) - 1)
	switch r.IntN(4) {
	case 0: // transpose
		runes[i], runes[i+1] = runes[i+1], runes[i]
		return string(runes)
	case 1: // delete
		return string(runes[:i]) + string(runes[i+1:])
	case 2: // duplicate
		return string(runes[:i+1]) + string(runes[i:])
	default: // substitute with an adjacent alphabet letter
		c := runes[i]
		if c >= 'a' && c < 'z' {
			runes[i] = c + 1
		} else if c > 'A' && c <= 'Z' {
			runes[i] = c - 1
		} else {
			runes[i] = 'x'
		}
		return string(runes)
	}
}

// abbreviate replaces one expandable token with its abbreviation (or the
// reverse, expanding a known abbreviation).
func abbreviate(r *xrand.RNG, s string) string {
	words := strings.Fields(s)
	// Collect candidate positions first so the choice is uniform.
	var cands []int
	for i, w := range words {
		if _, ok := abbreviations[w]; ok {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return s
	}
	i := cands[r.IntN(len(cands))]
	words[i] = abbreviations[words[i]]
	return strings.Join(words, " ")
}

// reorderTokens moves the last token to the front ("Cafe Ritz-Carlton
// Buckhead" → "Buckhead Cafe Ritz-Carlton"), the classic duplicate pattern
// from the paper's restaurant example.
func reorderTokens(r *xrand.RNG, s string) string {
	words := strings.Fields(s)
	if len(words) < 2 {
		return s
	}
	last := words[len(words)-1]
	rest := words[:len(words)-1]
	return last + " " + strings.Join(rest, " ")
}

// dropToken removes one token from a multi-token string.
func dropToken(r *xrand.RNG, s string) string {
	words := strings.Fields(s)
	if len(words) < 3 {
		return s
	}
	i := r.IntN(len(words))
	return strings.Join(append(append([]string{}, words[:i]...), words[i+1:]...), " ")
}

// parenthesize wraps the final token in parentheses ("Ritz-Carlton Cafe
// Buckhead" → "Ritz-Carlton Cafe (Buckhead)").
func parenthesize(r *xrand.RNG, s string) string {
	words := strings.Fields(s)
	if len(words) < 2 {
		return s
	}
	words[len(words)-1] = "(" + words[len(words)-1] + ")"
	return strings.Join(words, " ")
}

// PerturbLevel controls how aggressively a duplicate is mangled; higher
// levels produce lower-similarity duplicates (harder for both heuristics and
// workers).
type PerturbLevel int

const (
	// PerturbLight applies a single cosmetic change.
	PerturbLight PerturbLevel = iota
	// PerturbMedium applies two independent changes.
	PerturbMedium
	// PerturbHeavy applies three changes including token-level surgery.
	PerturbHeavy
)

var perturbOps = []func(*xrand.RNG, string) string{
	typo, abbreviate, reorderTokens, parenthesize, dropToken,
}

// Perturb produces a duplicate-style variant of s at the given level.
func Perturb(r *xrand.RNG, s string, level PerturbLevel) string {
	n := 1 + int(level)
	out := s
	for i := 0; i < n; i++ {
		op := perturbOps[r.IntN(len(perturbOps))]
		out = op(r, out)
	}
	if out == s {
		// Guarantee the variant differs: fall back to a typo, which always
		// changes strings of length ≥ 2.
		out = typo(r, s)
	}
	return out
}
