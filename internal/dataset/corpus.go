package dataset

// Corpora for the synthetic generators. The goal is not linguistic realism
// for its own sake: duplicate detection difficulty (and therefore worker
// confusion) depends on surface variety, shared tokens across distinct
// entities, and plausible perturbations, all of which these lists provide.

var restaurantFirstWords = []string{
	"Ritz-Carlton", "Golden", "Blue", "Silver", "Jade", "Royal", "Rustic",
	"Urban", "Little", "Grand", "Old Town", "Harbor", "Sunset", "Lucky",
	"Red Lantern", "Green Olive", "Copper", "Velvet", "Twin", "Iron",
	"Magnolia", "Cedar", "Willow", "Stone Bridge", "River", "Lakeside",
	"Union", "Market Street", "Fifth Avenue", "Broadway", "Pearl", "Ivory",
	"Crimson", "Amber", "Saffron", "Basil", "Rosemary", "Juniper", "Clove",
	"Ginger", "Sesame", "Olive Branch", "Honey", "Maple", "Birch",
}

var restaurantSecondWords = []string{
	"Cafe", "Bistro", "Grill", "Kitchen", "Diner", "Tavern", "Brasserie",
	"Trattoria", "Cantina", "Chophouse", "Steakhouse", "Noodle House",
	"Tea Room", "Oyster Bar", "Pizzeria", "Bakery", "Deli", "Eatery",
	"Smokehouse", "Taqueria", "Ramen Bar", "Curry House", "Supper Club",
	"Gastropub", "Creperie", "Rotisserie", "Fish Market", "Garden",
}

var restaurantCategories = []string{
	"american", "italian", "french", "chinese", "japanese", "mexican",
	"thai", "indian", "mediterranean", "seafood", "steakhouse", "bbq",
	"vegetarian", "cajun", "korean", "vietnamese", "greek", "spanish",
	"fusion", "bakery", "coffee",
}

// city fixes the functional dependency zip → (city, state) used by the
// address generator; violating it is one of Figure 1's error classes.
type cityInfo struct {
	city  string
	state string
	zips  []string
}

var usCities = []cityInfo{
	{"Portland", "OR", []string{"97201", "97202", "97203", "97204", "97205", "97206", "97209", "97210", "97211", "97212", "97214", "97215", "97217", "97219", "97221", "97227", "97232", "97239"}},
	{"Seattle", "WA", []string{"98101", "98102", "98103", "98104", "98105"}},
	{"San Francisco", "CA", []string{"94102", "94103", "94107", "94109", "94110"}},
	{"New York", "NY", []string{"10001", "10002", "10003", "10011", "10014"}},
	{"Atlanta", "GA", []string{"30301", "30305", "30308", "30309", "30318"}},
	{"Chicago", "IL", []string{"60601", "60605", "60607", "60611", "60614"}},
	{"Boston", "MA", []string{"02108", "02110", "02114", "02115", "02116"}},
	{"Austin", "TX", []string{"78701", "78702", "78703", "78704", "78705"}},
	{"Denver", "CO", []string{"80202", "80203", "80205", "80206", "80209"}},
	{"Nashville", "TN", []string{"37201", "37203", "37206", "37208", "37212"}},
}

var streetNames = []string{
	"Alder", "Ankeny", "Burnside", "Couch", "Davis", "Everett", "Flanders",
	"Glisan", "Hawthorne", "Irving", "Johnson", "Kearney", "Lovejoy",
	"Marshall", "Northrup", "Overton", "Pettygrove", "Quimby", "Raleigh",
	"Savier", "Thurman", "Upshur", "Vaughn", "Belmont", "Division",
	"Clinton", "Woodstock", "Fremont", "Killingsworth", "Alberta",
	"Mississippi", "Williams", "Interstate", "Greeley", "Denver",
	"Sandy", "Stark", "Oak", "Pine", "Ash", "Main", "Madison", "Salmon",
	"Taylor", "Yamhill", "Morrison", "Washington", "Jefferson", "Columbia",
}

var streetTypes = []string{"St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Way", "Ct", "Pl", "Ter"}

var streetTypeLong = map[string]string{
	"St": "Street", "Ave": "Avenue", "Blvd": "Boulevard", "Dr": "Drive",
	"Ln": "Lane", "Rd": "Road", "Way": "Way", "Ct": "Court", "Pl": "Place",
	"Ter": "Terrace",
}

var directions = []string{"N", "S", "E", "W", "NE", "NW", "SE", "SW"}

// Non-home addresses: Figure 1's r5 class ("not a home address").
var businessSuffixes = []string{
	"Warehouse", "Distribution Center", "Office Park", "Mall", "Plaza",
	"Storage Facility", "Industrial Park", "Shopping Center",
}

var productBrands = []string{
	"Adobe", "Microsoft", "Apple", "Symantec", "Intuit", "Corel", "Nuance",
	"McAfee", "Autodesk", "Sony", "Logitech", "Belkin", "Kingston",
	"Netgear", "Linksys", "Canon", "Epson", "HP", "Brother", "Lexmark",
	"Roxio", "Kaspersky", "Panda", "Trend Micro", "Broderbund", "Encore",
	"Topics Entertainment", "Global Marketing", "Individual Software",
}

var productNouns = []string{
	"Photoshop", "Office Suite", "Antivirus", "Firewall", "Tax Prep",
	"Video Editor", "Photo Album", "Language Course", "Typing Tutor",
	"Encyclopedia", "Atlas", "Drawing Studio", "Music Maker", "DVD Burner",
	"Backup Utility", "System Optimizer", "Web Designer", "Database",
	"Spreadsheet", "Presentation Maker", "PDF Converter", "Font Pack",
	"Clip Art Library", "Screen Saver", "Games Collection", "Flight Simulator",
	"Chess Master", "Crossword Studio", "Genealogy Builder", "Recipe Organizer",
}

var productEditions = []string{
	"Standard", "Professional", "Deluxe", "Premium", "Home", "Academic",
	"Small Business", "Ultimate", "Platinum", "Gold", "Upgrade", "OEM",
}

var productVersionSuffixes = []string{
	"2006", "2007", "2008", "v2", "v3", "v4", "5.0", "6.0", "7.0", "8.0",
	"XL", "XP Edition", "Mac", "Win/Mac",
}
