package dataset

import (
	"fmt"
	"strings"

	"dqm/internal/xrand"
)

// AddressErrorKind enumerates the malformation taxonomy of Figure 1.
type AddressErrorKind uint8

const (
	// AddressOK marks a well-formed record.
	AddressOK AddressErrorKind = iota
	// AddressMissingValue drops a required field (r1, r2 in Figure 1).
	AddressMissingValue
	// AddressInvalidCity misspells the city or state name (r3, r4).
	AddressInvalidCity
	// AddressInvalidZip corrupts the zip code (r3, r4).
	AddressInvalidZip
	// AddressFDViolation breaks the functional dependency
	// zip → (city, state) (r1, r3, r6).
	AddressFDViolation
	// AddressNonHome is a valid-looking business address, not a home (r5).
	AddressNonHome
	// AddressFakeValid is a fabricated address in a perfectly valid format
	// (r6) — only the most observant workers catch these.
	AddressFakeValid
)

// String implements fmt.Stringer.
func (k AddressErrorKind) String() string {
	switch k {
	case AddressOK:
		return "ok"
	case AddressMissingValue:
		return "missing-value"
	case AddressInvalidCity:
		return "invalid-city"
	case AddressInvalidZip:
		return "invalid-zip"
	case AddressFDViolation:
		return "fd-violation"
	case AddressNonHome:
		return "non-home"
	case AddressFakeValid:
		return "fake-valid"
	default:
		return fmt.Sprintf("AddressErrorKind(%d)", uint8(k))
	}
}

// addressErrorKinds are the injectable classes, cycled through so every
// class is represented in the planted errors.
var addressErrorKinds = []AddressErrorKind{
	AddressMissingValue, AddressInvalidCity, AddressInvalidZip,
	AddressFDViolation, AddressNonHome, AddressFakeValid,
}

// Difficulty returns how hard the error class is for a worker to spot, as a
// multiplier on the false-negative rate (1 = baseline). Fake-but-valid
// addresses are the paper's "long tail": nearly invisible.
func (k AddressErrorKind) Difficulty() float64 {
	switch k {
	case AddressMissingValue:
		return 0.3 // obvious
	case AddressInvalidZip:
		return 0.7
	case AddressInvalidCity:
		return 0.8
	case AddressFDViolation:
		return 1.2
	case AddressNonHome:
		return 1.6
	case AddressFakeValid:
		return 2.5
	default:
		return 1
	}
}

// Address is one registered home address in the format
// <number street unit, city, state, zip>; Unit is optional.
type Address struct {
	Number int
	Street string
	Unit   string
	City   string
	State  string
	Zip    string
	// Kind records the planted malformation (AddressOK for clean rows).
	Kind AddressErrorKind
}

// String renders the record in the dataset's canonical format.
func (a Address) String() string {
	num := ""
	if a.Number > 0 {
		num = fmt.Sprintf("%d ", a.Number)
	}
	unit := ""
	if a.Unit != "" {
		unit = " " + a.Unit
	}
	return fmt.Sprintf("%s%s%s, %s, %s, %s", num, a.Street, unit, a.City, a.State, a.Zip)
}

// AddressConfig sizes the dataset; defaults follow the paper (1000 records,
// 90 malformed).
type AddressConfig struct {
	Records int
	Errors  int
	Seed    uint64
}

func (c *AddressConfig) setDefaults() {
	if c.Records == 0 {
		c.Records = 1000
	}
	if c.Errors == 0 {
		c.Errors = 90
	}
	if c.Errors > c.Records {
		panic(fmt.Sprintf("dataset: %d errors exceed %d records", c.Errors, c.Records))
	}
}

// AddressData is the generated dataset plus ground truth over record
// indices.
type AddressData struct {
	Records []Address
	Truth   *GroundTruth
}

// GenerateAddresses synthesizes the Portland address dataset with planted
// malformations cycling through the Figure 1 taxonomy.
func GenerateAddresses(cfg AddressConfig) *AddressData {
	cfg.setDefaults()
	r := xrand.New(cfg.Seed).SplitNamed("address")
	portland := usCities[0]

	clean := func() Address {
		a := Address{
			Number: 100 + r.IntN(19900),
			Street: fmt.Sprintf("%s %s %s", xrand.Choice(r, directions), xrand.Choice(r, streetNames), xrand.Choice(r, streetTypes)),
			City:   portland.city,
			State:  portland.state,
			Zip:    xrand.Choice(r, portland.zips),
		}
		if r.Bernoulli(0.25) {
			a.Unit = fmt.Sprintf("Apt %d", 1+r.IntN(40))
		}
		return a
	}

	records := make([]Address, cfg.Records)
	for i := range records {
		records[i] = clean()
	}

	dirtyIdx := xrand.New(cfg.Seed).SplitNamed("address-dirty").SampleWithoutReplacement(cfg.Records, cfg.Errors)
	for k, idx := range dirtyIdx {
		kind := addressErrorKinds[k%len(addressErrorKinds)]
		records[idx] = injectAddressError(r, records[idx], kind, portland)
	}

	return &AddressData{
		Records: records,
		Truth:   NewGroundTruth(cfg.Records, dirtyIdx),
	}
}

func injectAddressError(r *xrand.RNG, a Address, kind AddressErrorKind, home cityInfo) Address {
	a.Kind = kind
	switch kind {
	case AddressMissingValue:
		switch r.IntN(3) {
		case 0:
			a.Zip = ""
		case 1:
			a.City = ""
		default:
			a.Number = 0
		}
	case AddressInvalidCity:
		if r.Bernoulli(0.5) {
			a.City = typo(r, a.City)
		} else {
			a.State = typo(r, a.State)
		}
	case AddressInvalidZip:
		z := []byte(a.Zip)
		switch r.IntN(3) {
		case 0: // too short
			a.Zip = string(z[:4])
		case 1: // non-digit
			z[r.IntN(len(z))] = 'O'
			a.Zip = string(z)
		default: // out-of-range prefix
			a.Zip = "00" + string(z[2:])
		}
	case AddressFDViolation:
		// Keep the Portland zip but claim a different city/state.
		other := usCities[1+r.IntN(len(usCities)-1)]
		a.City = other.city
		a.State = other.state
	case AddressNonHome:
		a.Street = fmt.Sprintf("%s %s", xrand.Choice(r, streetNames), xrand.Choice(r, businessSuffixes))
		a.Unit = fmt.Sprintf("Suite %d", 100+r.IntN(900))
	case AddressFakeValid:
		// A street that does not exist in the corpus, rendered perfectly.
		a.Street = fmt.Sprintf("%s %s %s", xrand.Choice(r, directions),
			strings.Title(typo(r, strings.ToLower(xrand.Choice(r, streetNames)))+"shire"), //nolint:staticcheck // ASCII-only corpus
			xrand.Choice(r, streetTypes))
	}
	return a
}
