// Package heuristic implements Section 5's prioritization model: a
// confidence function H : R → R⁺, the (α, β) window that splits the item
// space into obviously-clean, ambiguous (R_H, routed to the crowd) and
// obviously-dirty regions, and the ε-randomized sampler that hedges against
// imperfect heuristics by occasionally showing workers items from outside
// the window.
package heuristic

import (
	"fmt"
	"sort"

	"dqm/internal/xrand"
)

// Partition is the three-way split induced by H and the window [α, β]:
// items with H < α are auto-classified clean, H > β auto-classified dirty,
// and the window in between becomes the crowd's candidate set R_H.
type Partition struct {
	Alpha, Beta float64
	// Candidates is R_H = {r : α ≤ H(r) ≤ β}, sorted by item id.
	Candidates []int
	// AutoDirty is {r : H(r) > β}, auto-merged without crowd review.
	AutoDirty []int
	// AutoClean is {r : H(r) < α}.
	AutoClean []int
}

// Split partitions items 0..n−1 by their confidence scores. scores[i] is
// H(item i).
func Split(scores []float64, alpha, beta float64) Partition {
	if alpha > beta {
		panic(fmt.Sprintf("heuristic: alpha %v > beta %v", alpha, beta))
	}
	p := Partition{Alpha: alpha, Beta: beta}
	for i, s := range scores {
		switch {
		case s > beta:
			p.AutoDirty = append(p.AutoDirty, i)
		case s < alpha:
			p.AutoClean = append(p.AutoClean, i)
		default:
			p.Candidates = append(p.Candidates, i)
		}
	}
	return p
}

// InWindow reports whether item id landed in R_H.
func (p Partition) InWindow(id int) bool {
	i := sort.SearchInts(p.Candidates, id)
	return i < len(p.Candidates) && p.Candidates[i] == id
}

// Complement returns R_H^c = AutoDirty ∪ AutoClean, sorted.
func (p Partition) Complement() []int {
	out := make([]int, 0, len(p.AutoDirty)+len(p.AutoClean))
	out = append(out, p.AutoDirty...)
	out = append(out, p.AutoClean...)
	sort.Ints(out)
	return out
}

// Synthetic builds the heuristic abstraction the Figure 8 sensitivity sweep
// needs: a candidate set R_H that captures a controllable fraction of the
// true errors. A heuristic with error rate e misses a fraction e of the true
// errors (they land in R_H^c) and correspondingly admits clean items into
// R_H to keep |R_H| fixed.
type Synthetic struct {
	// RH and RHC are the window and its complement, as item id slices.
	RH, RHC []int
	// inRH allows O(1) membership checks.
	inRH map[int]struct{}
}

// NewSynthetic plants a heuristic over n items. dirty lists the true error
// ids; windowSize is |R_H|; errRate e ∈ [0,1] is the fraction of true errors
// the heuristic fails to route into the window.
func NewSynthetic(n int, dirty []int, windowSize int, errRate float64, r *xrand.RNG) *Synthetic {
	if windowSize <= 0 || windowSize > n {
		panic(fmt.Sprintf("heuristic: window size %d out of range (0,%d]", windowSize, n))
	}
	if errRate < 0 || errRate > 1 {
		panic(fmt.Sprintf("heuristic: error rate %v outside [0,1]", errRate))
	}
	isDirty := make(map[int]struct{}, len(dirty))
	for _, d := range dirty {
		isDirty[d] = struct{}{}
	}
	// Choose which true errors the heuristic catches.
	nCaught := int(float64(len(dirty))*(1-errRate) + 0.5)
	if nCaught > windowSize {
		nCaught = windowSize
	}
	perm := r.Perm(len(dirty))
	caught := make(map[int]struct{}, nCaught)
	for _, pi := range perm[:nCaught] {
		caught[dirty[pi]] = struct{}{}
	}
	// Fill the remainder of the window with clean items.
	var cleanIDs []int
	for i := 0; i < n; i++ {
		if _, d := isDirty[i]; !d {
			cleanIDs = append(cleanIDs, i)
		}
	}
	need := windowSize - len(caught)
	if need > len(cleanIDs) {
		need = len(cleanIDs)
	}
	fill := xrand.SampleSlice(r, cleanIDs, need)

	s := &Synthetic{inRH: make(map[int]struct{}, windowSize)}
	for id := range caught {
		s.inRH[id] = struct{}{}
	}
	for _, id := range fill {
		s.inRH[id] = struct{}{}
	}
	for i := 0; i < n; i++ {
		if _, ok := s.inRH[i]; ok {
			s.RH = append(s.RH, i)
		} else {
			s.RHC = append(s.RHC, i)
		}
	}
	return s
}

// InWindow reports whether the item is in R_H.
func (s *Synthetic) InWindow(id int) bool {
	_, ok := s.inRH[id]
	return ok
}

// EpsilonSampler implements the randomized routing of Section 5.3: each
// drawn item comes from R_H with probability 1−ε and from R_H^c with
// probability ε. ε = 0 is the pure-prioritization (perfect-heuristic) case;
// ε = |R_H|/|R| recovers uniform sampling over R.
type EpsilonSampler struct {
	rh, rhc []int
	eps     float64
	rng     *xrand.RNG
}

// NewEpsilonSampler builds a sampler over the window and its complement.
// Either side may be empty, in which case all draws come from the other.
func NewEpsilonSampler(rh, rhc []int, eps float64, rng *xrand.RNG) *EpsilonSampler {
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("heuristic: epsilon %v outside [0,1]", eps))
	}
	if len(rh) == 0 && len(rhc) == 0 {
		panic("heuristic: sampler over empty item space")
	}
	return &EpsilonSampler{rh: rh, rhc: rhc, eps: eps, rng: rng}
}

// UniformEpsilon returns the ε that makes the sampler equivalent to uniform
// sampling over all items: |R_H^c| / |R|.
func UniformEpsilon(rhLen, rhcLen int) float64 {
	total := rhLen + rhcLen
	if total == 0 {
		return 0
	}
	return float64(rhcLen) / float64(total)
}

// Draw samples k distinct items for one task: the task's quota is split
// between R_H and R_H^c by ε, then each side is sampled without
// replacement.
func (s *EpsilonSampler) Draw(k int) []int {
	if k <= 0 {
		return nil
	}
	// Binomially split the quota so small tasks still route ε mass.
	fromC := 0
	for i := 0; i < k; i++ {
		if s.rng.Bernoulli(s.eps) {
			fromC++
		}
	}
	if fromC > len(s.rhc) {
		fromC = len(s.rhc)
	}
	fromH := k - fromC
	if fromH > len(s.rh) {
		fromH = len(s.rh)
	}
	out := make([]int, 0, fromH+fromC)
	for _, i := range s.rng.SampleWithoutReplacement(len(s.rh), fromH) {
		out = append(out, s.rh[i])
	}
	for _, i := range s.rng.SampleWithoutReplacement(len(s.rhc), fromC) {
		out = append(out, s.rhc[i])
	}
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
