package heuristic

import (
	"testing"

	"dqm/internal/xrand"
)

func TestSplit(t *testing.T) {
	scores := []float64{0.1, 0.6, 0.95, 0.5, 0.9, 0.3}
	p := Split(scores, 0.5, 0.9)
	wantCands := []int{1, 3, 4} // 0.6, 0.5, 0.9 (inclusive window)
	if len(p.Candidates) != len(wantCands) {
		t.Fatalf("candidates = %v", p.Candidates)
	}
	for i, id := range wantCands {
		if p.Candidates[i] != id {
			t.Fatalf("candidates = %v, want %v", p.Candidates, wantCands)
		}
	}
	if len(p.AutoDirty) != 1 || p.AutoDirty[0] != 2 {
		t.Fatalf("auto dirty = %v", p.AutoDirty)
	}
	if len(p.AutoClean) != 2 {
		t.Fatalf("auto clean = %v", p.AutoClean)
	}
	if !p.InWindow(1) || p.InWindow(2) || p.InWindow(0) {
		t.Fatal("InWindow wrong")
	}
	comp := p.Complement()
	if len(comp) != 3 || comp[0] != 0 || comp[1] != 2 || comp[2] != 5 {
		t.Fatalf("Complement = %v", comp)
	}
}

func TestSplitPanicsOnInvertedWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted window did not panic")
		}
	}()
	Split([]float64{0.5}, 0.9, 0.1)
}

func TestSyntheticPerfect(t *testing.T) {
	r := xrand.New(1)
	dirty := []int{5, 10, 15, 20}
	s := NewSynthetic(100, dirty, 30, 0, r)
	if len(s.RH) != 30 || len(s.RHC) != 70 {
		t.Fatalf("window sizes %d/%d", len(s.RH), len(s.RHC))
	}
	// A perfect heuristic routes every error into the window.
	for _, d := range dirty {
		if !s.InWindow(d) {
			t.Fatalf("perfect heuristic missed error %d", d)
		}
	}
}

func TestSyntheticErrorRate(t *testing.T) {
	r := xrand.New(2)
	dirty := make([]int, 100)
	for i := range dirty {
		dirty[i] = i
	}
	s := NewSynthetic(1000, dirty, 300, 0.5, r)
	caught := 0
	for _, d := range dirty {
		if s.InWindow(d) {
			caught++
		}
	}
	if caught != 50 {
		t.Fatalf("50%%-error heuristic caught %d/100", caught)
	}
}

func TestSyntheticPartitionsDisjointAndComplete(t *testing.T) {
	r := xrand.New(3)
	s := NewSynthetic(200, []int{1, 2, 3}, 40, 0.3, r)
	seen := make(map[int]int)
	for _, id := range s.RH {
		seen[id]++
	}
	for _, id := range s.RHC {
		seen[id]++
	}
	if len(seen) != 200 {
		t.Fatalf("partition covers %d items", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("item %d appears %d times", id, c)
		}
	}
}

func TestSyntheticPanics(t *testing.T) {
	r := xrand.New(4)
	for _, fn := range []func(){
		func() { NewSynthetic(10, nil, 0, 0, r) },
		func() { NewSynthetic(10, nil, 11, 0, r) },
		func() { NewSynthetic(10, nil, 5, -0.1, r) },
		func() { NewSynthetic(10, nil, 5, 1.1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid synthetic config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestEpsilonSamplerExtremes(t *testing.T) {
	r := xrand.New(5)
	rh := []int{0, 1, 2, 3, 4}
	rhc := []int{5, 6, 7, 8, 9}

	inSet := func(ids []int, set []int) bool {
		m := make(map[int]bool, len(set))
		for _, s := range set {
			m[s] = true
		}
		for _, id := range ids {
			if !m[id] {
				return false
			}
		}
		return true
	}

	s0 := NewEpsilonSampler(rh, rhc, 0, r)
	for i := 0; i < 50; i++ {
		if !inSet(s0.Draw(3), rh) {
			t.Fatal("ε=0 drew from the complement")
		}
	}
	s1 := NewEpsilonSampler(rh, rhc, 1, r)
	for i := 0; i < 50; i++ {
		if !inSet(s1.Draw(3), rhc) {
			t.Fatal("ε=1 drew from the window")
		}
	}
}

func TestEpsilonSamplerDistinctAndSized(t *testing.T) {
	r := xrand.New(6)
	rh := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rhc := []int{8, 9, 10, 11}
	s := NewEpsilonSampler(rh, rhc, 0.3, r)
	for i := 0; i < 200; i++ {
		got := s.Draw(5)
		if len(got) != 5 {
			t.Fatalf("Draw(5) returned %d items", len(got))
		}
		seen := make(map[int]bool)
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate item %d in draw", id)
			}
			seen[id] = true
		}
	}
	if got := s.Draw(0); got != nil {
		t.Fatalf("Draw(0) = %v", got)
	}
}

func TestEpsilonSamplerRouting(t *testing.T) {
	r := xrand.New(7)
	rh := make([]int, 100)
	rhc := make([]int, 100)
	for i := range rh {
		rh[i] = i
		rhc[i] = 100 + i
	}
	s := NewEpsilonSampler(rh, rhc, 0.25, r)
	fromC := 0
	const draws, k = 2000, 4
	for i := 0; i < draws; i++ {
		for _, id := range s.Draw(k) {
			if id >= 100 {
				fromC++
			}
		}
	}
	rate := float64(fromC) / float64(draws*k)
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("ε=0.25 routed %.3f of draws to the complement", rate)
	}
}

func TestEpsilonSamplerCapsAtSideSizes(t *testing.T) {
	r := xrand.New(8)
	s := NewEpsilonSampler([]int{1, 2}, []int{3}, 0.5, r)
	for i := 0; i < 50; i++ {
		got := s.Draw(10)
		if len(got) > 3 {
			t.Fatalf("drew %d items from a 3-item space", len(got))
		}
	}
}

func TestEpsilonSamplerPanics(t *testing.T) {
	r := xrand.New(9)
	for _, fn := range []func(){
		func() { NewEpsilonSampler(nil, nil, 0.5, r) },
		func() { NewEpsilonSampler([]int{1}, nil, -0.1, r) },
		func() { NewEpsilonSampler([]int{1}, nil, 1.1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid sampler config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestUniformEpsilon(t *testing.T) {
	if got := UniformEpsilon(250, 750); got != 0.75 {
		t.Fatalf("UniformEpsilon = %v", got)
	}
	if got := UniformEpsilon(0, 0); got != 0 {
		t.Fatalf("UniformEpsilon empty = %v", got)
	}
}
