package switchstat

// Per-item switch ledgers support resampling-based uncertainty
// quantification (§6.3 asks how much trust an analyst can place in the
// estimates; package estimator answers with bootstrap confidence
// intervals). Retention is opt-in: the streaming aggregates never need it.

// SwitchEvent is one recorded consensus flip and its rediscovery count.
type SwitchEvent struct {
	// Positive is true for a clean→dirty flip.
	Positive bool
	// Freq is 1 plus the number of later votes that rediscovered this
	// switch (its frequency class in the f′-statistics).
	Freq int
}

// WithItemLedgers retains the full per-item switch event lists, enabling
// ItemLedger and the bootstrap in package estimator. Costs O(switches)
// memory.
func WithItemLedgers() Option {
	return func(t *Tracker) { t.retainLedgers = true }
}

// RetainsLedgers reports whether per-item ledgers are being kept.
func (t *Tracker) RetainsLedgers() bool { return t.retainLedgers }

// ItemLedger returns item i's switch events in occurrence order. The slice
// aliases internal storage and must not be modified. It returns nil when
// ledgers are not retained (distinguishable from "no switches" via
// RetainsLedgers).
func (t *Tracker) ItemLedger(item int) []SwitchEvent {
	if !t.retainLedgers {
		return nil
	}
	return t.ledgers[item]
}

// ItemMajorityDirty reports whether item i's strict vote majority is dirty.
func (t *Tracker) ItemMajorityDirty(item int) bool {
	st := &t.items[item]
	return st.pos > st.neg
}
