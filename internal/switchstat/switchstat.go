// Package switchstat implements the consensus-switch machinery of Section 4.
//
// Problem 2 reframes data-quality estimation: instead of counting dirty
// items, count how many majority-consensus decisions are still expected to
// flip. The Tracker ingests the same vote stream as the response matrix and
// maintains, per Equation 7:
//
//   - switch events: (i) a tie in the running votes n⁺_i = n⁻_i flips the
//     consensus, and (ii) a positive first vote flips the initial "clean"
//     default;
//   - the switch species ledger: each switch event is born a singleton, and
//     every subsequent vote on the item that does not create a new switch
//     "rediscovers" the item's most recent switch (singleton → doubleton → …);
//   - the no-op adjustment: votes before an item's first switch confirm the
//     default label, discover nothing, and are excluded from n_switch
//     (the paper's n_switch = n − Σ_i (argmin_j{n⁺ ≥ n⁻} − 1));
//   - the positive/negative split: a flip clean→dirty is a positive switch,
//     dirty→clean a negative one. Because every item starts clean and the
//     consensus alternates at each flip, switch signs alternate per item
//     starting with positive.
//
// The paper notes the counting definition admits "various policies (e.g.,
// tie-breaking)"; Policy selects between the literal Equation-7 rule and a
// strict-majority-crossing variant used in the ablation benchmarks.
package switchstat

import (
	"fmt"

	"dqm/internal/stats"
	"dqm/internal/votes"
)

// Policy selects the switch-counting rule.
type Policy int

const (
	// PolicyTieFlip is Equation 7 verbatim: a switch is counted at every
	// running-count tie (and at a positive first vote), and the consensus
	// state flips there.
	PolicyTieFlip Policy = iota
	// PolicyStrictMajority counts a switch only when the strict majority
	// (n⁺ > n⁻ or n⁻ > n⁺) disagrees with the current consensus state; ties
	// keep the state. This never counts a tie that immediately reverts.
	PolicyStrictMajority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyTieFlip:
		return "tie-flip"
	case PolicyStrictMajority:
		return "strict-majority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

type itemState struct {
	pos, neg  int32
	dirty     bool // current consensus state; items start clean
	started   bool // true once the first switch happened
	lastDirty bool // sign of the most recent switch (true = positive switch)
	lastFreq  int32
	posEvents int32
	negEvents int32
}

// Tracker ingests votes and maintains switch statistics incrementally.
// All observations are O(1); fingerprint reads are O(max frequency).
type Tracker struct {
	policy Policy
	items  []itemState

	retainLedgers bool
	ledgers       [][]SwitchEvent

	// Per-sign fingerprints with running aggregates: the switch estimator
	// reads f₁/pair-sum/mass per sign (and merged, by additivity) in O(1)
	// instead of walking the frequency classes on every estimate.
	fPos, fNeg stats.RunningFreq

	totalVotes int64
	noops      int64
	posSw      int64
	negSw      int64
	cPos       int64 // items with ≥1 positive switch
	cNeg       int64 // items with ≥1 negative switch
	cAny       int64 // items with ≥1 switch of either sign
	cMajority  int64 // items whose strict vote majority is dirty
}

// Option configures a Tracker.
type Option func(*Tracker)

// WithPolicy selects the switch-counting rule (default PolicyTieFlip).
func WithPolicy(p Policy) Option {
	return func(t *Tracker) { t.policy = p }
}

// NewTracker creates a tracker over n items, all starting with the default
// "clean" consensus.
func NewTracker(n int, opts ...Option) *Tracker {
	if n < 0 {
		panic(fmt.Sprintf("switchstat: negative item count %d", n))
	}
	t := &Tracker{
		items: make([]itemState, n),
		fPos:  stats.NewRunningFreq(stats.Freq{0}),
		fNeg:  stats.NewRunningFreq(stats.Freq{0}),
	}
	for _, o := range opts {
		o(t)
	}
	if t.retainLedgers {
		t.ledgers = make([][]SwitchEvent, n)
	}
	return t
}

// NumItems returns the number of tracked items.
func (t *Tracker) NumItems() int { return len(t.items) }

// Policy returns the active counting rule.
func (t *Tracker) Policy() Policy { return t.policy }

// Add ingests one vote on item with the given label.
func (t *Tracker) Add(item int, label votes.Label) {
	st := &t.items[item]
	wasMajority := st.pos > st.neg
	if label == votes.Dirty {
		st.pos++
	} else {
		st.neg++
	}
	if isMajority := st.pos > st.neg; isMajority != wasMajority {
		if isMajority {
			t.cMajority++
		} else {
			t.cMajority--
		}
	}
	t.totalVotes++

	flip := false
	switch t.policy {
	case PolicyTieFlip:
		// Part (ii): a positive first vote flips the clean default.
		// Part (i): any subsequent tie flips the consensus.
		n := st.pos + st.neg
		if n == 1 {
			flip = label == votes.Dirty
		} else {
			flip = st.pos == st.neg
		}
	case PolicyStrictMajority:
		if st.pos > st.neg && !st.dirty {
			flip = true
		} else if st.neg > st.pos && st.dirty {
			flip = true
		}
	}

	switch {
	case flip:
		t.recordSwitch(item, st)
	case st.started:
		t.rediscover(item, st)
	default:
		// A vote that confirms the default label before the first switch:
		// a no-op that contributes to neither the fingerprint nor n_switch.
		t.noops++
	}
}

// AddVote ingests a votes.Vote, ignoring the worker identity (switch
// statistics are worker-anonymous).
func (t *Tracker) AddVote(v votes.Vote) { t.Add(v.Item, v.Label) }

func (t *Tracker) recordSwitch(item int, st *itemState) {
	st.dirty = !st.dirty
	positive := st.dirty // flipped into dirty ⇒ clean→dirty ⇒ positive switch
	if !st.started {
		st.started = true
		t.cAny++
	}
	if positive {
		t.posSw++
		st.posEvents++
		if st.posEvents == 1 {
			t.cPos++
		}
		t.fPos.Add(1, 1)
	} else {
		t.negSw++
		st.negEvents++
		if st.negEvents == 1 {
			t.cNeg++
		}
		t.fNeg.Add(1, 1)
	}
	st.lastDirty = positive
	st.lastFreq = 1
	if t.retainLedgers {
		t.ledgers[item] = append(t.ledgers[item], SwitchEvent{Positive: positive, Freq: 1})
	}
}

func (t *Tracker) rediscover(item int, st *itemState) {
	if st.lastDirty {
		t.fPos.Promote(int(st.lastFreq))
	} else {
		t.fNeg.Promote(int(st.lastFreq))
	}
	st.lastFreq++
	if t.retainLedgers {
		l := t.ledgers[item]
		l[len(l)-1].Freq++
	}
}

// TotalVotes returns the number of votes ingested.
func (t *Tracker) TotalVotes() int64 { return t.totalVotes }

// NoOps returns the number of default-confirming votes seen before each
// item's first switch (the quantity subtracted from n in Section 4.2).
func (t *Tracker) NoOps() int64 { return t.noops }

// NSwitch returns n_switch = TotalVotes − NoOps, the observation count used
// by the switch estimator. It equals the total mass of the switch ledger.
func (t *Tracker) NSwitch() int64 { return t.totalVotes - t.noops }

// Switches returns switch(I), the total number of switch events observed.
func (t *Tracker) Switches() int64 { return t.posSw + t.negSw }

// PositiveSwitches returns the number of clean→dirty switch events.
func (t *Tracker) PositiveSwitches() int64 { return t.posSw }

// NegativeSwitches returns the number of dirty→clean switch events.
func (t *Tracker) NegativeSwitches() int64 { return t.negSw }

// CSwitch returns c_switch = Σ_i 1[switch(I_i) > 0], the number of records
// with at least one consensus flip.
func (t *Tracker) CSwitch() int64 { return t.cAny }

// Majority returns c_majority over the ingested votes, the VOTING baseline
// the switch estimator corrects (Section 4.3).
func (t *Tracker) Majority() int64 { return t.cMajority }

// CSwitchPositive returns the number of records with ≥1 positive switch.
func (t *Tracker) CSwitchPositive() int64 { return t.cPos }

// CSwitchNegative returns the number of records with ≥1 negative switch.
func (t *Tracker) CSwitchNegative() int64 { return t.cNeg }

// Fingerprint returns the f′-statistics over all switch species (positive
// and negative merged).
func (t *Tracker) Fingerprint() stats.Freq { return t.FingerprintInto(nil) }

// FingerprintInto merges both sign fingerprints into dst (grown as needed)
// and returns it, letting streaming estimators reuse one scratch buffer per
// estimate instead of allocating a merge each time.
func (t *Tracker) FingerprintInto(dst stats.Freq) stats.Freq {
	fPos, fNeg := t.fPos.View(), t.fNeg.View()
	n := len(fPos)
	if len(fNeg) > n {
		n = len(fNeg)
	}
	if cap(dst) < n {
		dst = make(stats.Freq, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	for j := 1; j < len(fPos); j++ {
		dst[j] += fPos[j]
	}
	for j := 1; j < len(fNeg); j++ {
		dst[j] += fNeg[j]
	}
	return dst
}

// FingerprintStats is the Chao92 sufficient statistic of one switch
// fingerprint, read in O(1) from the running aggregates.
type FingerprintStats struct {
	F1      int64 // singleton switch species
	Species int64 // distinct switch species
	Mass    int64 // total switch-ledger observation mass
	PairSum int64 // Σ j(j−1)·f_j
}

// PositiveStats returns the aggregates of the positive-switch fingerprint.
func (t *Tracker) PositiveStats() FingerprintStats {
	return FingerprintStats{
		F1: t.fPos.Singletons(), Species: t.fPos.Species(),
		Mass: t.fPos.Mass(), PairSum: t.fPos.PairSum(),
	}
}

// NegativeStats returns the aggregates of the negative-switch fingerprint.
func (t *Tracker) NegativeStats() FingerprintStats {
	return FingerprintStats{
		F1: t.fNeg.Singletons(), Species: t.fNeg.Species(),
		Mass: t.fNeg.Mass(), PairSum: t.fNeg.PairSum(),
	}
}

// MergedStats returns the aggregates of the merged (positive + negative)
// fingerprint. Every aggregate is linear in the frequency classes, so the
// merged statistic is the componentwise sum — no merge buffer needed.
func (t *Tracker) MergedStats() FingerprintStats {
	p, n := t.PositiveStats(), t.NegativeStats()
	return FingerprintStats{
		F1: p.F1 + n.F1, Species: p.Species + n.Species,
		Mass: p.Mass + n.Mass, PairSum: p.PairSum + n.PairSum,
	}
}

// FingerprintPositive returns the f′-statistics over positive switches only.
func (t *Tracker) FingerprintPositive() stats.Freq { return t.fPos.Clone() }

// FingerprintNegative returns the f′-statistics over negative switches only.
func (t *Tracker) FingerprintNegative() stats.Freq { return t.fNeg.Clone() }

// FingerprintPositiveView returns the positive fingerprint without copying;
// the slice aliases internal storage and is invalidated by the next Add or
// Reset.
func (t *Tracker) FingerprintPositiveView() stats.Freq { return t.fPos.View() }

// FingerprintNegativeView returns the negative fingerprint without copying;
// the slice aliases internal storage and is invalidated by the next Add or
// Reset.
func (t *Tracker) FingerprintNegativeView() stats.Freq { return t.fNeg.View() }

// Consensus reports the tracker's consensus state for item i (true = dirty).
// Under PolicyStrictMajority this coincides with the strict majority with
// sticky ties; under PolicyTieFlip it is the Equation-7 state machine.
func (t *Tracker) Consensus(item int) bool { return t.items[item].dirty }

// ItemSwitches returns the number of switch events observed on item i.
func (t *Tracker) ItemSwitches(item int) int {
	st := &t.items[item]
	return int(st.posEvents + st.negEvents)
}

// Clone returns a deep, independent copy of the tracker, including per-item
// ledgers when retained. Snapshots of live sessions are built on it.
func (t *Tracker) Clone() *Tracker {
	out := &Tracker{
		policy:        t.policy,
		items:         append([]itemState(nil), t.items...),
		retainLedgers: t.retainLedgers,
		fPos:          t.fPos.CloneRunning(),
		fNeg:          t.fNeg.CloneRunning(),
		totalVotes:    t.totalVotes,
		noops:         t.noops,
		posSw:         t.posSw,
		negSw:         t.negSw,
		cPos:          t.cPos,
		cNeg:          t.cNeg,
		cAny:          t.cAny,
		cMajority:     t.cMajority,
	}
	if t.retainLedgers {
		out.ledgers = make([][]SwitchEvent, len(t.ledgers))
		for i, l := range t.ledgers {
			if len(l) > 0 {
				out.ledgers[i] = append([]SwitchEvent(nil), l...)
			}
		}
	}
	return out
}

// Reset clears all state without reallocating.
func (t *Tracker) Reset() {
	for i := range t.items {
		t.items[i] = itemState{}
	}
	if t.retainLedgers {
		for i := range t.ledgers {
			t.ledgers[i] = t.ledgers[i][:0]
		}
	}
	t.fPos.Reset()
	t.fNeg.Reset()
	t.totalVotes, t.noops = 0, 0
	t.posSw, t.negSw = 0, 0
	t.cPos, t.cNeg, t.cAny, t.cMajority = 0, 0, 0, 0
}

// CountSwitches replays a full vote history and returns switch(I) for it,
// the closed-form of Equation 7. It is the reference implementation used by
// tests to validate the incremental tracker.
func CountSwitches(histories [][]votes.Label, policy Policy) int64 {
	t := NewTracker(len(histories), WithPolicy(policy))
	for i, h := range histories {
		for _, l := range h {
			t.Add(i, l)
		}
	}
	return t.Switches()
}
