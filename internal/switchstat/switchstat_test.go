package switchstat

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dqm/internal/votes"
)

// seq builds a tracker over one item and feeds it the label sequence.
func seq(t *testing.T, labels []votes.Label, opts ...Option) *Tracker {
	t.Helper()
	tr := NewTracker(1, opts...)
	for _, l := range labels {
		tr.Add(0, l)
	}
	return tr
}

const (
	d = votes.Dirty
	c = votes.Clean
)

func TestTieFlipTraces(t *testing.T) {
	tests := []struct {
		name     string
		labels   []votes.Label
		switches int64
		pos, neg int64
		noops    int64
		nswitch  int64
	}{
		// Part (ii): a positive first vote is a switch.
		{"single dirty", []votes.Label{d}, 1, 1, 0, 0, 1},
		// A clean first vote confirms the default: a no-op.
		{"single clean", []votes.Label{c}, 0, 0, 0, 1, 0},
		// Tie at the second vote flips the default.
		{"clean then dirty", []votes.Label{c, d}, 1, 1, 0, 1, 1},
		// Dirty then clean: positive switch, then a tie flips it back.
		{"dirty then clean", []votes.Label{d, c}, 2, 1, 1, 0, 2},
		// Confirmations rediscover the switch.
		{"dirty thrice", []votes.Label{d, d, d}, 1, 1, 0, 0, 3},
		// D,C,D: switch, tie-switch, then 2-1 — no tie, rediscovery.
		{"oscillation", []votes.Label{d, c, d}, 2, 1, 1, 0, 3},
		// All votes before any n⁺ ≥ n⁻ point are no-ops.
		{"late dirty never ties", []votes.Label{c, c, d}, 0, 0, 0, 3, 0},
		// C,C,D,D: tie at the fourth vote (2-2) flips.
		{"tie after deficit", []votes.Label{c, c, d, d}, 1, 1, 0, 3, 1},
		// Full alternation: D(switch+) C(tie,switch-) D(2-1, rediscover)
		// C(2-2 tie, switch-? sign alternates → +? see below) — signs
		// alternate clean→dirty→clean→dirty: pos, neg, pos.
		{"long alternation", []votes.Label{d, c, d, c}, 3, 2, 1, 0, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := seq(t, tt.labels)
			if got := tr.Switches(); got != tt.switches {
				t.Errorf("Switches = %d, want %d", got, tt.switches)
			}
			if got := tr.PositiveSwitches(); got != tt.pos {
				t.Errorf("PositiveSwitches = %d, want %d", got, tt.pos)
			}
			if got := tr.NegativeSwitches(); got != tt.neg {
				t.Errorf("NegativeSwitches = %d, want %d", got, tt.neg)
			}
			if got := tr.NoOps(); got != tt.noops {
				t.Errorf("NoOps = %d, want %d", got, tt.noops)
			}
			if got := tr.NSwitch(); got != tt.nswitch {
				t.Errorf("NSwitch = %d, want %d", got, tt.nswitch)
			}
		})
	}
}

func TestFingerprintRediscovery(t *testing.T) {
	// D,D,D: one positive switch rediscovered twice → a tripleton.
	tr := seq(t, []votes.Label{d, d, d})
	fp := tr.FingerprintPositive()
	if fp.F(3) != 1 || fp.Species() != 1 {
		t.Fatalf("positive fingerprint = %v", fp)
	}
	if tr.FingerprintNegative().Species() != 0 {
		t.Fatal("unexpected negative switches")
	}

	// D,C,D: positive singleton frozen by the negative switch; the third
	// vote rediscovers the (most recent) negative switch.
	tr = seq(t, []votes.Label{d, c, d})
	fp, fn := tr.FingerprintPositive(), tr.FingerprintNegative()
	if fp.F(1) != 1 {
		t.Fatalf("positive fingerprint = %v", fp)
	}
	if fn.F(2) != 1 {
		t.Fatalf("negative fingerprint = %v", fn)
	}
	// Merged fingerprint sums both signs.
	all := tr.Fingerprint()
	if all.F(1) != 1 || all.F(2) != 1 || all.Species() != 2 {
		t.Fatalf("merged fingerprint = %v", all)
	}
}

func TestSignAlternation(t *testing.T) {
	// Signs must alternate per item starting positive, under any input.
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 200; trial++ {
		tr := NewTracker(1)
		for i := 0; i < 40; i++ {
			tr.Add(0, votes.Label(rng.IntN(2)))
		}
		pos, neg := tr.PositiveSwitches(), tr.NegativeSwitches()
		if pos != neg && pos != neg+1 {
			t.Fatalf("trial %d: pos=%d neg=%d violates alternation", trial, pos, neg)
		}
	}
}

func TestStrictMajorityPolicy(t *testing.T) {
	// D,C,D under strict majority: switch at v1 (1-0), tie sticky at v2
	// (rediscover), dirty majority again at v3 (rediscover).
	tr := seq(t, []votes.Label{d, c, d}, WithPolicy(PolicyStrictMajority))
	if got := tr.Switches(); got != 1 {
		t.Fatalf("Switches = %d, want 1", got)
	}
	if fp := tr.FingerprintPositive(); fp.F(3) != 1 {
		t.Fatalf("positive fingerprint = %v", fp)
	}
	// D,C,C: switch at v1, tie sticky at v2 (rediscover), clean majority at
	// v3 → negative switch.
	tr = seq(t, []votes.Label{d, c, c}, WithPolicy(PolicyStrictMajority))
	if tr.Switches() != 2 || tr.NegativeSwitches() != 1 {
		t.Fatalf("switches = %d (neg %d)", tr.Switches(), tr.NegativeSwitches())
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTieFlip.String() != "tie-flip" || PolicyStrictMajority.String() != "strict-majority" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestCSwitchCounts(t *testing.T) {
	tr := NewTracker(3)
	// Item 0: positive then negative switch; item 1: positive only;
	// item 2: never switches.
	tr.Add(0, d)
	tr.Add(0, c)
	tr.Add(1, d)
	tr.Add(2, c)
	if got := tr.CSwitch(); got != 2 {
		t.Fatalf("CSwitch = %d, want 2", got)
	}
	if got := tr.CSwitchPositive(); got != 2 {
		t.Fatalf("CSwitchPositive = %d, want 2", got)
	}
	if got := tr.CSwitchNegative(); got != 1 {
		t.Fatalf("CSwitchNegative = %d, want 1", got)
	}
	if tr.ItemSwitches(0) != 2 || tr.ItemSwitches(1) != 1 || tr.ItemSwitches(2) != 0 {
		t.Fatal("per-item switch counts wrong")
	}
}

func TestMajorityTracking(t *testing.T) {
	// The tracker's majority must match the response matrix's at any point.
	rng := rand.New(rand.NewPCG(2, 3))
	const n = 25
	tr := NewTracker(n)
	m := votes.NewMatrix(n)
	for i := 0; i < 600; i++ {
		v := votes.Vote{Item: rng.IntN(n), Label: votes.Label(rng.IntN(2))}
		tr.AddVote(v)
		m.Add(v)
		if tr.Majority() != m.Majority() {
			t.Fatalf("step %d: tracker majority %d != matrix %d", i, tr.Majority(), m.Majority())
		}
	}
}

// TestLedgerInvariants checks, on random streams, the structural identities
// the estimator relies on.
func TestLedgerInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	prop := func(seed uint64) bool {
		const n = 15
		tr := NewTracker(n)
		votesIn := int64(rng.IntN(200))
		for i := int64(0); i < votesIn; i++ {
			tr.Add(rng.IntN(n), votes.Label(rng.IntN(2)))
		}
		// 1. votes = no-ops + ledger mass.
		mass := tr.FingerprintPositive().Mass() + tr.FingerprintNegative().Mass()
		if tr.NSwitch() != mass || tr.TotalVotes() != tr.NoOps()+mass {
			return false
		}
		// 2. species counts match switch counts.
		if tr.FingerprintPositive().Species() != tr.PositiveSwitches() {
			return false
		}
		if tr.FingerprintNegative().Species() != tr.NegativeSwitches() {
			return false
		}
		// 3. c bounds.
		if tr.CSwitch() > int64(n) || tr.CSwitchPositive() > tr.CSwitch() ||
			tr.CSwitchNegative() > tr.CSwitch() {
			return false
		}
		// 4. switches never exceed votes.
		return tr.Switches() <= tr.TotalVotes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusStateMachine(t *testing.T) {
	tr := NewTracker(1)
	if tr.Consensus(0) {
		t.Fatal("items must start clean")
	}
	tr.Add(0, d)
	if !tr.Consensus(0) {
		t.Fatal("positive first vote must flip to dirty")
	}
	tr.Add(0, c) // tie → flip back
	if tr.Consensus(0) {
		t.Fatal("tie must flip the consensus")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker(2)
	tr.Add(0, d)
	tr.Add(0, c)
	tr.Add(1, c)
	tr.Reset()
	if tr.Switches() != 0 || tr.NoOps() != 0 || tr.TotalVotes() != 0 ||
		tr.CSwitch() != 0 || tr.Majority() != 0 {
		t.Fatal("Reset left state")
	}
	if tr.Fingerprint().Species() != 0 {
		t.Fatal("Reset left fingerprint")
	}
	tr.Add(0, d)
	if tr.Switches() != 1 {
		t.Fatal("tracker unusable after reset")
	}
}

func TestCountSwitchesMatchesTracker(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	for _, policy := range []Policy{PolicyTieFlip, PolicyStrictMajority} {
		histories := make([][]votes.Label, 10)
		tr := NewTracker(10, WithPolicy(policy))
		for i := range histories {
			for j := 0; j < rng.IntN(30); j++ {
				l := votes.Label(rng.IntN(2))
				histories[i] = append(histories[i], l)
				tr.Add(i, l)
			}
		}
		if got := CountSwitches(histories, policy); got != tr.Switches() {
			t.Fatalf("policy %v: CountSwitches = %d, tracker = %d", policy, got, tr.Switches())
		}
	}
}

func TestNewTrackerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker(-1) did not panic")
		}
	}()
	NewTracker(-1)
}

// TestEquation7ClosedForm verifies the incremental switch count against a
// direct evaluation of Equation 7: Σ_i [ Σ_{j≥2} 1[n⁺=n⁻ at j] + 1[first
// vote positive] ].
func TestEquation7ClosedForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	for trial := 0; trial < 100; trial++ {
		const n = 8
		histories := make([][]votes.Label, n)
		for i := range histories {
			for j := 0; j < rng.IntN(20); j++ {
				histories[i] = append(histories[i], votes.Label(rng.IntN(2)))
			}
		}
		var want int64
		for _, h := range histories {
			pos, neg := 0, 0
			for j, l := range h {
				if l == votes.Dirty {
					pos++
				} else {
					neg++
				}
				if j == 0 {
					if l == votes.Dirty {
						want++
					}
				} else if pos == neg {
					want++
				}
			}
		}
		if got := CountSwitches(histories, PolicyTieFlip); got != want {
			t.Fatalf("trial %d: CountSwitches = %d, closed form = %d", trial, got, want)
		}
	}
}

func TestItemLedgers(t *testing.T) {
	tr := NewTracker(2, WithItemLedgers())
	if !tr.RetainsLedgers() {
		t.Fatal("ledgers not enabled")
	}
	// Item 0: D (switch+), D (rediscover), C (tie → switch−).
	tr.Add(0, d)
	tr.Add(0, d)
	tr.Add(0, c)
	// Wait: after D,D the counts are 2-0; C makes 2-1, no tie. Add one
	// more C for the tie.
	tr.Add(0, c)
	ledger := tr.ItemLedger(0)
	if len(ledger) != 2 {
		t.Fatalf("ledger = %+v", ledger)
	}
	if !ledger[0].Positive || ledger[0].Freq != 3 {
		t.Fatalf("first event = %+v", ledger[0])
	}
	if ledger[1].Positive || ledger[1].Freq != 1 {
		t.Fatalf("second event = %+v", ledger[1])
	}
	if got := tr.ItemLedger(1); len(got) != 0 {
		t.Fatalf("untouched item has ledger %v", got)
	}
	if !tr.ItemMajorityDirty(0) {
		// 2 dirty vs 2 clean is a tie, not a dirty majority.
		t.Log("tie correctly not a majority")
	}
	tr.Reset()
	if len(tr.ItemLedger(0)) != 0 {
		t.Fatal("Reset left ledger entries")
	}
}

func TestLedgerDisabledReturnsNil(t *testing.T) {
	tr := NewTracker(1)
	tr.Add(0, d)
	if tr.ItemLedger(0) != nil {
		t.Fatal("ledger returned without retention")
	}
	if tr.RetainsLedgers() {
		t.Fatal("RetainsLedgers wrong")
	}
}
