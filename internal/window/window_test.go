package window

import (
	"math/rand"
	"reflect"
	"testing"

	"dqm/internal/estimator"
	"dqm/internal/votes"
)

// genTasks builds a deterministic task stream over n items.
func genTasks(seed int64, tasks, n int) [][]votes.Vote {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]votes.Vote, tasks)
	for t := range out {
		task := make([]votes.Vote, 1+rng.Intn(5))
		for i := range task {
			label := votes.Clean
			if rng.Intn(2) == 0 {
				label = votes.Dirty
			}
			task[i] = votes.Vote{Item: rng.Intn(n), Worker: rng.Intn(6), Label: label}
		}
		out[t] = task
	}
	return out
}

// referenceWindow evaluates a fresh suite over tasks[start:end] — the ground
// truth a sealed window must match bit-identically.
func referenceWindow(n int, scfg estimator.SuiteConfig, tasks [][]votes.Vote, start, end int) estimator.Estimates {
	scfg.WithoutHistory = true
	s := estimator.NewSuite(n, scfg)
	for _, task := range tasks[start:end] {
		for _, v := range task {
			s.Observe(v)
		}
		s.EndTask()
	}
	return s.EstimateAll()
}

func suiteCfg() estimator.SuiteConfig {
	return estimator.SuiteConfig{Switch: estimator.SwitchConfig{TrendWindow: 4}}
}

// feed streams one task through the ring, returning any rotation. It also
// checks WillRotate against what actually fires.
func feed(t *testing.T, r *Ring, task []votes.Vote) (Rotation, bool) {
	t.Helper()
	for _, v := range task {
		r.Observe(v)
	}
	predicted, willFire := r.WillRotate()
	rot, fired := r.EndTask()
	if willFire != fired || (fired && predicted != rot) {
		t.Fatalf("WillRotate predicted (%+v, %v), EndTask fired (%+v, %v)", predicted, willFire, rot, fired)
	}
	return rot, fired
}

// TestTumblingWindowsMatchReference: every sealed tumbling window must be
// bit-identical to a fresh suite over exactly that task span, and rotations
// must fire at every Size-th boundary.
func TestTumblingWindowsMatchReference(t *testing.T) {
	const n, size, nTasks = 40, 10, 55
	tasks := genTasks(1, nTasks, n)
	r := New(n, suiteCfg(), Config{Size: size})
	var rotations []int64
	for i, task := range tasks {
		rot, fired := feed(t, r, task)
		if fired {
			rotations = append(rotations, rot.Start)
			res, err := r.Estimates(KindLast)
			if err != nil {
				t.Fatal(err)
			}
			wantStart := int64(i + 1 - size)
			if res.Start != wantStart || res.End != int64(i+1) || !res.Complete || res.Tasks != size {
				t.Fatalf("task %d: window span [%d,%d) tasks=%d complete=%v, want [%d,%d)",
					i, res.Start, res.End, res.Tasks, res.Complete, wantStart, i+1)
			}
			want := referenceWindow(n, suiteCfg(), tasks, int(res.Start), int(res.End))
			if !reflect.DeepEqual(res.Estimates, want) {
				t.Fatalf("task %d: sealed window diverges from reference replay", i)
			}
		}
	}
	wantRot := []int64{0, 10, 20, 30, 40}
	if !reflect.DeepEqual(rotations, wantRot) {
		t.Fatalf("rotation starts = %v, want %v", rotations, wantRot)
	}
}

// TestSlidingWindowsMatchReference: with Stride < Size, overlapping windows
// seal every Stride tasks and each must match its reference span.
func TestSlidingWindowsMatchReference(t *testing.T) {
	const n, size, stride, nTasks = 30, 9, 3, 40
	tasks := genTasks(2, nTasks, n)
	cfg := Config{Size: size, Stride: stride}
	if cfg.Panes() != 3 {
		t.Fatalf("Panes() = %d, want 3", cfg.Panes())
	}
	r := New(n, suiteCfg(), cfg)
	sealed := 0
	for i, task := range tasks {
		rot, fired := feed(t, r, task)
		if !fired {
			continue
		}
		sealed++
		if wantStart := int64(i + 1 - size); rot.Start != wantStart {
			t.Fatalf("task %d: rotation start %d, want %d", i, rot.Start, wantStart)
		}
		res, err := r.Estimates(KindLast)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceWindow(n, suiteCfg(), tasks, int(res.Start), int(res.End))
		if !reflect.DeepEqual(res.Estimates, want) {
			t.Fatalf("task %d: sliding window [%d,%d) diverges from reference", i, res.Start, res.End)
		}
		// The current (oldest open) window must cover the tail since its start.
		cur, err := r.Estimates(KindCurrent)
		if err != nil {
			t.Fatal(err)
		}
		if cur.End != int64(i+1) || cur.Tasks != cur.End-cur.Start || cur.Tasks >= size {
			t.Fatalf("task %d: current window [%d,%d) tasks=%d inconsistent", i, cur.Start, cur.End, cur.Tasks)
		}
		wantCur := referenceWindow(n, suiteCfg(), tasks, int(cur.Start), int(cur.End))
		if !reflect.DeepEqual(cur.Estimates, wantCur) {
			t.Fatalf("task %d: current window diverges from reference", i)
		}
	}
	if wantSealed := (nTasks-size)/stride + 1; sealed != wantSealed {
		t.Fatalf("sealed %d windows, want %d", sealed, wantSealed)
	}
}

// TestDecayedAggregate verifies the EWMA fold against a hand computation.
func TestDecayedAggregate(t *testing.T) {
	const n, size, alpha = 25, 5, 0.5
	tasks := genTasks(3, 22, n)
	r := New(n, suiteCfg(), Config{Size: size, DecayAlpha: alpha})
	var want float64
	folds := 0
	for i, task := range tasks {
		if _, fired := feed(t, r, task); !fired {
			continue
		}
		e := referenceWindow(n, suiteCfg(), tasks, i+1-size, i+1)
		if folds == 0 {
			want = e.Voting
		} else {
			want = alpha*e.Voting + (1-alpha)*want
		}
		folds++
		got, err := r.Estimates(KindDecayed)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimates.Voting != want {
			t.Fatalf("fold %d: decayed VOTING = %v, want %v", folds, got.Estimates.Voting, want)
		}
	}
	if folds == 0 {
		t.Fatal("no windows sealed")
	}
}

// TestReadsBeforeFirstWindow: Last/Decayed must fail cleanly until a window
// seals; Current must work from the first vote.
func TestReadsBeforeFirstWindow(t *testing.T) {
	r := New(10, suiteCfg(), Config{Size: 5, DecayAlpha: 0.5})
	if _, err := r.Estimates(KindLast); err == nil {
		t.Fatal("Last before first seal succeeded")
	}
	if _, err := r.Estimates(KindDecayed); err == nil {
		t.Fatal("Decayed before first seal succeeded")
	}
	r.Observe(votes.Vote{Item: 1, Worker: 0, Label: votes.Dirty})
	cur, err := r.Estimates(KindCurrent)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Estimates.Nominal != 1 {
		t.Fatalf("current Nominal = %v, want 1", cur.Estimates.Nominal)
	}
	// Decayed reads on a ring without decay configured fail with a clear error.
	r2 := New(10, suiteCfg(), Config{Size: 5})
	if _, err := r2.Estimates(KindDecayed); err == nil {
		t.Fatal("Decayed without decay_alpha succeeded")
	}
}

// TestCloneAndResetIndependence: a clone must evolve independently, and Reset
// must restart the stream exactly like a fresh ring.
func TestCloneAndResetIndependence(t *testing.T) {
	const n = 20
	tasks := genTasks(4, 17, n)
	r := New(n, suiteCfg(), Config{Size: 4, Stride: 2, DecayAlpha: 0.3})
	for _, task := range tasks {
		feed(t, r, task)
	}
	c := r.Clone()
	for _, k := range []Kind{KindCurrent, KindLast, KindDecayed} {
		a, errA := r.Estimates(k)
		b, errB := c.Estimates(k)
		if (errA == nil) != (errB == nil) || !reflect.DeepEqual(a, b) {
			t.Fatalf("clone diverges on %v", k)
		}
	}
	// Advance only the clone; the source must not move.
	before, _ := r.Estimates(KindCurrent)
	feed(t, c, tasks[0])
	after, _ := r.Estimates(KindCurrent)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("advancing the clone mutated the source")
	}

	// Reset + replay must equal a fresh ring fed the same stream.
	r.Reset()
	fresh := New(n, suiteCfg(), Config{Size: 4, Stride: 2, DecayAlpha: 0.3})
	for _, task := range tasks {
		feed(t, r, task)
		feed(t, fresh, task)
	}
	for _, k := range []Kind{KindCurrent, KindLast, KindDecayed} {
		a, _ := r.Estimates(k)
		b, _ := fresh.Estimates(k)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("reset ring diverges from fresh ring on %v", k)
		}
	}
}

// TestConfigValidate covers the rejection matrix.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Size: 10}, true},
		{Config{Size: 10, Stride: 10}, true},
		{Config{Size: 10, Stride: 1}, true},
		{Config{Size: 64, Stride: 1}, true},
		{Config{}, false},
		{Config{Size: -1}, false},
		{Config{Size: 10, Stride: -1}, false},
		{Config{Size: 10, Stride: 11}, false},
		{Config{Size: 10, DecayAlpha: 1.5}, false},
		{Config{Size: 10, DecayAlpha: -0.1}, false},
		{Config{Size: 65, Stride: 1}, false}, // pane cap
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

// TestParseKindRoundTrip: the wire names must invert.
func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindCurrent, KindLast, KindDecayed} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = (%v, %v)", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}
