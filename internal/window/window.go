// Package window implements windowed estimation over a session's task
// stream: instead of (or alongside) the all-time estimate, a session can
// report "the quality of the last N tasks" — the continuous-monitoring shape
// where the vote stream never ends and old cleaning passes stop being
// representative of the current error rate.
//
// The core structure is a ring of per-window estimator suites. A window
// covers a fixed number of completed tasks (Size); successive windows start
// every Stride tasks, so Stride == Size yields tumbling windows and
// Stride < Size sliding windows built from ceil(Size/Stride) staggered panes.
// Every vote feeds every open pane; when a pane has seen Size task
// boundaries its estimates are sealed as the latest completed window, folded
// into an optional exponentially decayed aggregate, and the pane is recycled
// for the next window start. All transitions happen at task boundaries and
// depend only on the task count, so a replayed vote stream reproduces every
// window boundary exactly — the property the WAL's window-rotation records
// verify during crash recovery.
package window

import (
	"fmt"

	"dqm/internal/estimator"
	"dqm/internal/votes"
)

// maxPanes bounds ceil(Size/Stride): every vote is ingested into every open
// pane, so the pane count is a direct ingest-cost multiplier (and each pane
// holds an O(N) suite).
const maxPanes = 64

// Config parameterizes windowed estimation. The zero value is invalid; Size
// is required.
type Config struct {
	// Size is the window length in completed tasks (> 0).
	Size int `json:"size"`
	// Stride is the task offset between successive window starts. 0 selects
	// Size (tumbling windows); values below Size slide. Must not exceed Size
	// (gaps would leave tasks uncovered).
	Stride int `json:"stride,omitempty"`
	// DecayAlpha in (0, 1] is the weight of the newest completed window in
	// the exponentially decayed aggregate (see KindDecayed); 0 disables it.
	DecayAlpha float64 `json:"decay_alpha,omitempty"`
}

// normalize fills the Stride default.
func (c Config) normalize() Config {
	if c.Stride == 0 {
		c.Stride = c.Size
	}
	return c
}

// Panes returns the number of concurrently open window suites the
// configuration requires.
func (c Config) Panes() int {
	c = c.normalize()
	return (c.Size + c.Stride - 1) / c.Stride
}

// Validate rejects configurations that are malformed or too expensive to
// serve. API layers call it before building sessions; New panics on invalid
// input (a programmer error by then).
func (c Config) Validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("window: size %d must be positive", c.Size)
	}
	if c.Stride < 0 {
		return fmt.Errorf("window: stride %d must not be negative", c.Stride)
	}
	if c.Stride > c.Size {
		return fmt.Errorf("window: stride %d exceeds size %d (tasks would go unwindowed)", c.Stride, c.Size)
	}
	if c.DecayAlpha < 0 || c.DecayAlpha > 1 {
		return fmt.Errorf("window: decay alpha %v outside [0, 1]", c.DecayAlpha)
	}
	if p := c.Panes(); p > maxPanes {
		return fmt.Errorf("window: size %d / stride %d needs %d concurrent panes (limit %d); raise the stride",
			c.Size, c.normalize().Stride, p, maxPanes)
	}
	return nil
}

// Kind selects which windowed view a read returns.
type Kind int

const (
	// KindCurrent is the oldest still-open window: the estimate over the most
	// recent up-to-Size completed tasks (fewer while the stream warms up or
	// right after a rotation). It moves with every vote.
	KindCurrent Kind = iota
	// KindLast is the most recently completed full window. It is stable
	// between rotations — the natural unit for dashboards and alerting.
	KindLast
	// KindDecayed is the exponentially decayed aggregate over completed
	// windows: decayed = α·window + (1−α)·decayed, folded at every rotation.
	// Scalar estimates (and Extra members) are averaged; the Switch trend
	// reports the latest window's direction.
	KindDecayed
)

// String implements fmt.Stringer; the values double as the HTTP ?window=
// parameter.
func (k Kind) String() string {
	switch k {
	case KindCurrent:
		return "current"
	case KindLast:
		return "last"
	case KindDecayed:
		return "decayed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts Kind.String, for API layers.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "current":
		return KindCurrent, nil
	case "last":
		return KindLast, nil
	case "decayed":
		return KindDecayed, nil
	default:
		return 0, fmt.Errorf("window: unknown window kind %q (want current, last or decayed)", s)
	}
}

// Result is one windowed estimate read.
type Result struct {
	// Estimates is the estimator snapshot over the window's tasks (for
	// KindDecayed, the decayed aggregate — see the Kind docs).
	Estimates estimator.Estimates
	// Kind reports which view produced the result.
	Kind Kind
	// Start and End delimit the covered task interval [Start, End) in
	// completed-task indices. For KindDecayed they are the bounds of the
	// newest folded window.
	Start, End int64
	// Tasks is the number of completed tasks the estimates actually cover
	// (End − Start; less than Size only for a partial KindCurrent window).
	Tasks int64
	// Complete reports a full Size-task window.
	Complete bool
}

// Rotation describes one window completion: the window covering
// [Start, Start+Size) sealed at a task boundary.
type Rotation struct {
	// Start is the first completed-task index of the sealed window.
	Start int64
}

// pane is one open (or recyclable) window suite.
type pane struct {
	suite *estimator.Suite
	start int64 // completed-task index of the window start; -1 when closed
	tasks int   // task boundaries seen by this window so far
}

// Ring is the windowed-estimation state of one session: the open panes, the
// last completed window and the decayed aggregate. It is not safe for
// concurrent use; the session engine serializes access under the session
// mutex, exactly like the all-time suite.
type Ring struct {
	cfg   Config
	n     int
	panes []*pane
	tasks int64 // completed tasks observed overall

	last      estimator.Estimates
	lastStart int64
	haveLast  bool

	decayed    estimator.Estimates
	decayStart int64
	haveDecay  bool
}

// New builds a ring over a population of n items, with every pane running the
// given estimator selection. It panics on an invalid config (validate
// user-supplied configs with Config.Validate first) and on unregistered
// estimator names (NewSuite's contract).
func New(n int, suiteCfg estimator.SuiteConfig, cfg Config) *Ring {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("window: New: %v", err))
	}
	cfg = cfg.normalize()
	// Window panes never serve per-item vote history; keeping it would
	// multiply the session's memory by the pane count for nothing.
	suiteCfg.WithoutHistory = true
	r := &Ring{cfg: cfg, n: n, panes: make([]*pane, cfg.Panes())}
	for i := range r.panes {
		r.panes[i] = &pane{suite: estimator.NewSuite(n, suiteCfg), start: -1}
	}
	r.panes[0].start = 0 // the first window opens with the stream
	return r
}

// Config returns the (normalized) window configuration.
func (r *Ring) Config() Config { return r.cfg }

// Tasks returns the number of completed tasks observed.
func (r *Ring) Tasks() int64 { return r.tasks }

// Observe ingests one vote into every open pane.
func (r *Ring) Observe(v votes.Vote) {
	for _, p := range r.panes {
		if p.start >= 0 {
			p.suite.Observe(v)
		}
	}
}

// WillRotate reports the rotation the NEXT EndTask will fire, if any, without
// mutating anything. The session engine consults it to write-ahead-journal
// the rotation record in the same frame as the task boundary that causes it.
func (r *Ring) WillRotate() (Rotation, bool) {
	for _, p := range r.panes {
		if p.start >= 0 && p.tasks == r.cfg.Size-1 {
			return Rotation{Start: p.start}, true
		}
	}
	return Rotation{}, false
}

// EndTask marks a task boundary: every open pane advances, a pane reaching
// Size tasks seals its window (becoming the last completed window and
// folding into the decayed aggregate) and is recycled, and a new window
// opens at every Stride-th boundary. It returns the rotation that fired, if
// any (at most one per boundary — window starts are distinct, so their ends
// are too).
func (r *Ring) EndTask() (Rotation, bool) {
	var rot Rotation
	fired := false
	for _, p := range r.panes {
		if p.start < 0 {
			continue
		}
		p.suite.EndTask()
		p.tasks++
		if p.tasks < r.cfg.Size {
			continue
		}
		// Window [p.start, p.start+Size) is complete: seal it.
		e := p.suite.EstimateAll()
		r.last, r.lastStart, r.haveLast = e, p.start, true
		r.foldDecay(e)
		rot, fired = Rotation{Start: p.start}, true
		p.suite.Reset()
		p.start, p.tasks = -1, 0
	}
	r.tasks++
	if r.tasks%int64(r.cfg.Stride) == 0 {
		p := r.freePane()
		p.start = r.tasks
	}
	return rot, fired
}

// freePane returns a closed pane for reuse. One always exists by
// construction: at most Panes() windows are ever open, and a completing pane
// closes before the boundary that would open the next window.
func (r *Ring) freePane() *pane {
	for _, p := range r.panes {
		if p.start < 0 {
			return p
		}
	}
	panic("window: no free pane (ring invariant broken)")
}

// current returns the oldest open pane — the one covering the longest recent
// span. After the first boundary of the stream at least one pane is always
// open.
func (r *Ring) current() *pane {
	var oldest *pane
	for _, p := range r.panes {
		if p.start < 0 {
			continue
		}
		if oldest == nil || p.start < oldest.start {
			oldest = p
		}
	}
	return oldest
}

// foldDecay merges one sealed window into the decayed aggregate.
func (r *Ring) foldDecay(e estimator.Estimates) {
	a := r.cfg.DecayAlpha
	if a == 0 {
		return
	}
	r.decayStart = r.lastStart
	if !r.haveDecay {
		r.decayed = e.Clone()
		r.haveDecay = true
		return
	}
	d := &r.decayed
	mix := func(acc, cur float64) float64 { return a*cur + (1-a)*acc }
	d.Nominal = mix(d.Nominal, e.Nominal)
	d.Voting = mix(d.Voting, e.Voting)
	d.Chao92 = mix(d.Chao92, e.Chao92)
	d.VChao92 = mix(d.VChao92, e.VChao92)
	d.Switch.Total = mix(d.Switch.Total, e.Switch.Total)
	d.Switch.Majority = mix(d.Switch.Majority, e.Switch.Majority)
	d.Switch.XiPos = mix(d.Switch.XiPos, e.Switch.XiPos)
	d.Switch.XiNeg = mix(d.Switch.XiNeg, e.Switch.XiNeg)
	d.Switch.DPos = mix(d.Switch.DPos, e.Switch.DPos)
	d.Switch.DNeg = mix(d.Switch.DNeg, e.Switch.DNeg)
	d.Switch.RemainingSwitches = mix(d.Switch.RemainingSwitches, e.Switch.RemainingSwitches)
	d.Switch.Trend = e.Switch.Trend // direction is categorical: report the newest
	for name, v := range e.Extra {
		if d.Extra == nil {
			d.Extra = make(map[string]float64, len(e.Extra))
		}
		if acc, ok := d.Extra[name]; ok {
			d.Extra[name] = mix(acc, v)
		} else {
			d.Extra[name] = v
		}
	}
}

// Estimates returns the selected windowed view. KindLast and KindDecayed
// fail until the first window completes; KindCurrent is always available.
func (r *Ring) Estimates(kind Kind) (Result, error) {
	switch kind {
	case KindCurrent:
		p := r.current()
		if p == nil {
			// Transiently possible only inside EndTask; externally a window is
			// always open.
			return Result{}, fmt.Errorf("window: no open window")
		}
		return Result{
			Estimates: p.suite.EstimateAll(),
			Kind:      KindCurrent,
			Start:     p.start,
			End:       r.tasks,
			Tasks:     int64(p.tasks),
			Complete:  false,
		}, nil
	case KindLast:
		if !r.haveLast {
			return Result{}, fmt.Errorf("window: no completed window yet (%d of %d tasks)", r.tasks, r.cfg.Size)
		}
		return Result{
			Estimates: r.last.Clone(),
			Kind:      KindLast,
			Start:     r.lastStart,
			End:       r.lastStart + int64(r.cfg.Size),
			Tasks:     int64(r.cfg.Size),
			Complete:  true,
		}, nil
	case KindDecayed:
		if r.cfg.DecayAlpha == 0 {
			return Result{}, fmt.Errorf("window: decayed aggregate disabled (decay_alpha is 0)")
		}
		if !r.haveDecay {
			return Result{}, fmt.Errorf("window: no completed window yet (%d of %d tasks)", r.tasks, r.cfg.Size)
		}
		return Result{
			Estimates: r.decayed.Clone(),
			Kind:      KindDecayed,
			Start:     r.decayStart,
			End:       r.decayStart + int64(r.cfg.Size),
			Tasks:     int64(r.cfg.Size),
			Complete:  true,
		}, nil
	default:
		return Result{}, fmt.Errorf("window: unknown kind %v", kind)
	}
}

// Clone returns a deep, independent copy of the ring, so session snapshots
// capture windowed state alongside the all-time suite.
func (r *Ring) Clone() *Ring {
	out := *r
	out.panes = make([]*pane, len(r.panes))
	for i, p := range r.panes {
		out.panes[i] = &pane{suite: p.suite.Clone(), start: p.start, tasks: p.tasks}
	}
	out.last = r.last.Clone()
	out.decayed = r.decayed.Clone()
	return &out
}

// Reset clears all windowed state back to the start of an empty stream.
func (r *Ring) Reset() {
	for _, p := range r.panes {
		p.suite.Reset()
		p.start, p.tasks = -1, 0
	}
	r.panes[0].start = 0
	r.tasks = 0
	r.last, r.lastStart, r.haveLast = estimator.Estimates{}, 0, false
	r.decayed, r.decayStart, r.haveDecay = estimator.Estimates{}, 0, false
}
