package experiment

import (
	"fmt"
	"sort"
)

// Driver produces one or more figures for an experiment id.
type Driver func(Options) []*Figure

// single lifts a one-figure driver.
func single(f func(Options) *Figure) Driver {
	return func(o Options) []*Figure { return []*Figure{f(o)} }
}

// registry maps experiment ids (as accepted by cmd/dqm-experiments -figure)
// to drivers.
var registry = map[string]Driver{
	"2a":                 single(Fig2a),
	"2b":                 single(Fig2b),
	"3":                  Fig3,
	"4":                  Fig4,
	"5":                  Fig5,
	"6a":                 single(Fig6a),
	"6b":                 single(Fig6b),
	"7a":                 single(Fig7a),
	"7b":                 single(Fig7b),
	"7c":                 single(Fig7c),
	"8":                  single(Fig8),
	"sec321":             single(Sec321),
	"ablation-switch":    single(AblationSwitch),
	"ablation-vchao":     single(AblationVChao),
	"ablation-baselines": single(AblationBaselines),
	"ext-algorithmic":    single(ExtAlgorithmic),
	"ext-quality":        single(ExtQuality),
	"ext-fatigue":        single(ExtFatigue),
	"ext-redundancy":     single(ExtRedundancy),
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ByID returns the driver for an experiment id.
func ByID(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown figure %q (known: %v)", id, IDs())
	}
	return d, nil
}
