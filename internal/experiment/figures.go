package experiment

import (
	"fmt"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/heuristic"
	"dqm/internal/stats"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Options are the shared knobs of every figure driver. Zero values select
// the paper-faithful defaults; benchmarks shrink Permutations and TaskScale
// to keep iterations fast.
type Options struct {
	// Seed drives dataset planting, worker realization and permutations.
	Seed uint64
	// Permutations is the paper's r (default 10).
	Permutations int
	// TaskScale multiplies the per-figure default task count (default 1.0).
	TaskScale float64
	// Parallelism bounds the permutation-replay worker pool of every Run a
	// driver issues (0 = GOMAXPROCS). Results are identical for any value.
	Parallelism int
}

func (o Options) perms() int {
	if o.Permutations <= 0 {
		return 10
	}
	return o.Permutations
}

func (o Options) scale(tasks int) int {
	s := o.TaskScale
	if s <= 0 {
		s = 1
	}
	n := int(float64(tasks) * s)
	if n < 1 {
		n = 1
	}
	return n
}

// Fig2a reproduces Figure 2(a): extrapolation over the full restaurant pair
// space (858² pairs, 106 duplicates) from four independently drawn,
// oracle-cleaned 2% samples. The point of the figure is the variance across
// samples.
func Fig2a(opts Options) *Figure {
	const (
		pairSpace = 858 * 858 // the paper counts the full cross product
		dupes     = 106
		samples   = 4
		frac      = 0.02
	)
	pop := dataset.NewPlantedPopulation(pairSpace, dupes, opts.Seed, "restaurant full pairs")
	rng := xrand.New(opts.Seed).SplitNamed("fig2a")
	oracle := crowd.Oracle{Truth: pop.Truth.IsDirty}

	n := pop.N()
	sampleSize := int(float64(n) * frac)
	fig := &Figure{
		ID:     "fig2a",
		Title:  "Extrapolation from four perfectly cleaned 2% samples",
		XLabel: "sample",
		YLabel: "estimated total errors",
		Consts: []Constant{{Name: "GROUND_TRUTH", Value: float64(dupes)}},
	}
	x := make([]float64, samples)
	est := make([]float64, samples)
	for i := 0; i < samples; i++ {
		sample := rng.SampleWithoutReplacement(pairSpace, sampleSize)
		found := oracle.CountErrors(sample)
		x[i] = float64(i + 1)
		est[i] = estimator.Extrapolate(found, sampleSize, pairSpace)
	}
	fig.Series = append(fig.Series, Series{Name: estimator.NameExtrapolate, X: x, Mean: est, Std: make([]float64, samples)})
	fig.Consts = append(fig.Consts,
		Constant{Name: "SAMPLE_SIZE", Value: float64(sampleSize)},
		Constant{Name: "EST_MEAN", Value: stats.Mean(est)},
		Constant{Name: "EST_STD", Value: stats.Std(est)},
	)
	return fig
}

// Fig2b reproduces Figure 2(b): the CrowdER-style pipeline where four
// samples of 100 candidate pairs are cleaned by increasingly many fallible
// crowd tasks; the majority labels of the sample are extrapolated to the
// full candidate set after every task. Early false positives inflate the
// estimate; their later correction drags it away again.
func Fig2b(opts Options) *Figure {
	const (
		samples    = 4
		sampleSize = 100
		perTask    = 10
	)
	pop := dataset.RestaurantCandidates(opts.Seed)
	nTasks := opts.scale(60)
	rng := xrand.New(opts.Seed).SplitNamed("fig2b")

	fig := &Figure{
		ID:     "fig2b",
		Title:  "Extrapolation with increasing cleaning effort (CrowdER 2-stage)",
		XLabel: "tasks",
		YLabel: "estimated total errors",
		Consts: []Constant{{Name: "GROUND_TRUTH", Value: float64(pop.NumDirty())}},
	}

	for s := 0; s < samples; s++ {
		sampleRNG := rng.Split()
		sample := sampleRNG.SampleWithoutReplacement(pop.N(), sampleSize)
		truth := func(local int) bool { return pop.Truth.IsDirty(sample[local]) }
		sim := crowd.NewSimulator(crowd.Config{
			Truth:        truth,
			N:            sampleSize,
			Profile:      RestaurantProfile,
			ItemsPerTask: perTask,
			Seed:         sampleRNG.Uint64(),
		})
		m := votes.NewMatrix(sampleSize, votes.WithoutHistory())
		x := make([]float64, nTasks)
		est := make([]float64, nTasks)
		var buf []votes.Vote
		for t := 0; t < nTasks; t++ {
			buf = sim.AppendTask(buf[:0])
			m.AddAll(buf)
			x[t] = float64(t + 1)
			est[t] = estimator.Extrapolate(int(m.Majority()), sampleSize, pop.N())
		}
		fig.Series = append(fig.Series, Series{
			Name: fmt.Sprintf("SAMPLE_%d", s+1), X: x, Mean: est, Std: make([]float64, nTasks),
		})
	}
	return fig
}

// realDataConfig bundles what differs between Figures 3, 4 and 5.
type realDataConfig struct {
	id, name     string
	pop          *dataset.Population
	profile      crowd.Profile
	tasks        int
	itemsPerTask int
	// fpDifficulty marks confusable clean items (nil = none).
	fpDifficulty func(i int) float64
}

// runRealData produces the three panels of a real-dataset figure: (a) total
// error estimates vs tasks, (b) remaining positive switches, (c) remaining
// negative switches, each against ground truth, plus the EXTRAPOL ±1-std
// band and the SCM task count.
func runRealData(cfg realDataConfig, opts Options) []*Figure {
	nTasks := opts.scale(cfg.tasks)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        cfg.pop.Truth.IsDirty,
		N:            cfg.pop.N(),
		Profile:      cfg.profile,
		ItemsPerTask: cfg.itemsPerTask,
		FPDifficulty: cfg.fpDifficulty,
		Seed:         opts.Seed,
	})
	tasks := sim.Tasks(nTasks)

	res := Run(RunConfig{
		Population:   cfg.pop,
		Tasks:        tasks,
		Permutations: opts.perms(),
		Seed:         opts.Seed,
		TrackNeeded:  true,
		Parallelism:  opts.Parallelism,
		Suite: estimator.SuiteConfig{
			Switch: estimator.SwitchConfig{CapToPopulation: true},
		},
	})

	// EXTRAPOL band: 20 oracle-cleaned 5% samples.
	exMean, exStd := extrapolBand(cfg.pop, 0.05, 20, opts.Seed)
	sampleSize := int(0.05 * float64(cfg.pop.N()))
	scm := crowd.SCMTasks(sampleSize, cfg.itemsPerTask)

	mk := func(name string) Series {
		return Series{Name: name, X: res.X, Mean: res.Mean[name], Std: res.Std[name]}
	}
	figA := &Figure{
		ID:     cfg.id + "a",
		Title:  cfg.name + ": total error estimation",
		XLabel: "tasks",
		YLabel: "estimated total errors",
		Series: []Series{
			mk(estimator.NameVoting), mk(estimator.NameVChao92), mk(estimator.NameSwitch),
		},
		Consts: []Constant{
			{Name: "GROUND_TRUTH", Value: res.Truth},
			{Name: "EXTRAPOL_MEAN", Value: exMean},
			{Name: "EXTRAPOL_STD", Value: exStd},
			{Name: "SCM_TASKS", Value: float64(scm)},
		},
	}
	figB := &Figure{
		ID:     cfg.id + "b",
		Title:  cfg.name + ": remaining positive switches",
		XLabel: "tasks",
		YLabel: "positive switches",
		Series: []Series{mk(SeriesXiPos), mk(SeriesNeededPos)},
	}
	figC := &Figure{
		ID:     cfg.id + "c",
		Title:  cfg.name + ": remaining negative switches",
		XLabel: "tasks",
		YLabel: "negative switches",
		Series: []Series{mk(SeriesXiNeg), mk(SeriesNeededNeg)},
	}
	return []*Figure{figA, figB, figC}
}

// extrapolBand draws nSamples oracle-cleaned samples of the given fraction
// and returns the mean and std of the extrapolated totals.
func extrapolBand(pop *dataset.Population, frac float64, nSamples int, seed uint64) (mean, std float64) {
	rng := xrand.New(seed).SplitNamed("extrapol")
	oracle := crowd.Oracle{Truth: pop.Truth.IsDirty}
	size := int(frac * float64(pop.N()))
	if size < 1 {
		size = 1
	}
	ests := make([]float64, nSamples)
	for i := range ests {
		sample := rng.SampleWithoutReplacement(pop.N(), size)
		ests[i] = estimator.Extrapolate(oracle.CountErrors(sample), size, pop.N())
	}
	return stats.Mean(ests), stats.Std(ests)
}

// Fig3 reproduces Figure 3 (restaurant dataset, FP-heavy crowd).
func Fig3(opts Options) []*Figure {
	return runRealData(realDataConfig{
		id:           "fig3",
		name:         "Restaurant",
		pop:          dataset.RestaurantCandidates(opts.Seed),
		profile:      RestaurantProfile,
		tasks:        500,
		itemsPerTask: 10,
	}, opts)
}

// Fig4 reproduces Figure 4 (product dataset, FN-heavy crowd). The paper
// attributes V-CHAO's late degradation to "a few difficult pairs on which
// more than just a single worker make mistakes": near-miss product listings
// (same brand and noun, different edition) that repeatedly attract false
// positives. We plant ~1.5% of the clean candidates as such confusable pairs
// with a 100× false-positive multiplier (0.004 → 0.4 per view), so their
// repeated dirty votes survive the vChao92 shift.
func Fig4(opts Options) []*Figure {
	pop := dataset.ProductCandidates(opts.Seed)
	confusable := make(map[int]bool)
	rng := xrand.New(opts.Seed).SplitNamed("fig4-confusable")
	for len(confusable) < pop.N()*3/200 {
		i := rng.IntN(pop.N())
		if !pop.Truth.IsDirty(i) {
			confusable[i] = true
		}
	}
	return runRealData(realDataConfig{
		id:           "fig4",
		name:         "Product",
		pop:          pop,
		profile:      ProductProfile,
		tasks:        5000,
		itemsPerTask: 10,
		fpDifficulty: func(i int) float64 {
			if confusable[i] {
				return 100
			}
			return 1
		},
	}, opts)
}

// Fig5 reproduces Figure 5 (address dataset, mixed errors, no
// prioritization).
func Fig5(opts Options) []*Figure {
	return runRealData(realDataConfig{
		id:           "fig5",
		name:         "Address",
		pop:          dataset.AddressPopulation(opts.Seed),
		profile:      AddressProfile,
		tasks:        1000,
		itemsPerTask: 10,
	}, opts)
}

// sweepPoint runs one (profile, itemsPerTask) cell of the Figure 6 sweeps
// and returns the SRMSE of each estimator after nTasks tasks.
func sweepPoint(pop *dataset.Population, profile crowd.Profile, nTasks, itemsPerTask int, opts Options, seed uint64) map[string]float64 {
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      profile,
		ItemsPerTask: itemsPerTask,
		Seed:         seed,
	})
	res := Run(RunConfig{
		Population:   pop,
		Tasks:        sim.Tasks(nTasks),
		Checkpoints:  []int{nTasks},
		Permutations: opts.perms(),
		Seed:         seed,
		Parallelism:  opts.Parallelism,
	})
	out := make(map[string]float64, 4)
	for _, name := range []string{estimator.NameVoting, estimator.NameChao92, estimator.NameVChao92, estimator.NameSwitch} {
		out[name] = res.SRMSEAt(name)
	}
	return out
}

// Fig6a reproduces Figure 6(a): scaled estimation error as a function of
// worker precision, for 50 tasks of 15 items over the 1000/100 synthetic
// population. Chao92's sensitivity to false positives dominates at any
// precision below 1; SWITCH tracks VOTING and beats it above 50% precision.
func Fig6a(opts Options) *Figure {
	precisions := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0}
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(50)

	fig := &Figure{
		ID:     "fig6a",
		Title:  "SRMSE vs worker precision (50 tasks, 15 items/task)",
		XLabel: "precision",
		YLabel: "SRMSE",
	}
	names := []string{estimator.NameVoting, estimator.NameChao92, estimator.NameVChao92, estimator.NameSwitch}
	series := make(map[string]*Series, len(names))
	for _, n := range names {
		series[n] = &Series{Name: n}
	}
	for i, q := range precisions {
		point := sweepPoint(pop, crowd.FromPrecision(q), nTasks, 15, opts, opts.Seed+uint64(i))
		for _, n := range names {
			series[n].X = append(series[n].X, q)
			series[n].Mean = append(series[n].Mean, point[n])
			series[n].Std = append(series[n].Std, 0)
		}
	}
	for _, n := range names {
		fig.Series = append(fig.Series, *series[n])
	}
	return fig
}

// Fig6b reproduces Figure 6(b): scaled estimation error as a function of
// the number of items per task (coverage), with false negatives only.
// Without false positives Chao92 is the best estimator — the forward-looking
// property the paper highlights.
func Fig6b(opts Options) *Figure {
	itemsPerTask := []int{5, 10, 15, 20, 30, 40, 50, 75, 100}
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(50)

	fig := &Figure{
		ID:     "fig6b",
		Title:  "SRMSE vs items per task, false negatives only (50 tasks)",
		XLabel: "items/task",
		YLabel: "SRMSE",
	}
	names := []string{estimator.NameVoting, estimator.NameChao92, estimator.NameVChao92, estimator.NameSwitch}
	series := make(map[string]*Series, len(names))
	for _, n := range names {
		series[n] = &Series{Name: n}
	}
	for i, p := range itemsPerTask {
		point := sweepPoint(pop, FNOnlyProfile, nTasks, p, opts, opts.Seed+uint64(i))
		for _, n := range names {
			series[n].X = append(series[n].X, float64(p))
			series[n].Mean = append(series[n].Mean, point[n])
			series[n].Std = append(series[n].Std, 0)
		}
	}
	for _, n := range names {
		fig.Series = append(fig.Series, *series[n])
	}
	return fig
}

// fig7Scenario runs one panel of Figure 7: estimates vs tasks for a worker
// error scenario over the 1000/100 synthetic population (15 items/task).
func fig7Scenario(id, title string, profile crowd.Profile, opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(400)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      profile,
		ItemsPerTask: 15,
		Seed:         opts.Seed,
	})
	res := Run(RunConfig{
		Population:   pop,
		Tasks:        sim.Tasks(nTasks),
		Permutations: opts.perms(),
		Seed:         opts.Seed,
		Parallelism:  opts.Parallelism,
	})
	mk := func(name string) Series {
		return Series{Name: name, X: res.X, Mean: res.Mean[name], Std: res.Std[name]}
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "tasks",
		YLabel: "estimated total errors",
		Series: []Series{
			mk(estimator.NameVoting), mk(estimator.NameChao92),
			mk(estimator.NameVChao92), mk(estimator.NameSwitch),
		},
		Consts: []Constant{{Name: "GROUND_TRUTH", Value: res.Truth}},
	}
}

// Fig7a reproduces Figure 7(a): false negatives only (10%).
func Fig7a(opts Options) *Figure {
	return fig7Scenario("fig7a", "Simulation: false negatives only (10%)", FNOnlyProfile, opts)
}

// Fig7b reproduces Figure 7(b): false positives only (1%).
func Fig7b(opts Options) *Figure {
	return fig7Scenario("fig7b", "Simulation: false positives only (1%)", FPOnlyProfile, opts)
}

// Fig7c reproduces Figure 7(c): both error types (10% FN, 1% FP).
func Fig7c(opts Options) *Figure {
	return fig7Scenario("fig7c", "Simulation: both error types (10% FN, 1% FP)", BothProfile, opts)
}

// Fig8 reproduces Figure 8: accuracy of the SWITCH estimate as a function of
// the prioritization randomization ε, for a mostly-accurate (10% error) and
// a poor (50% error) heuristic. Workers see R_H with probability 1−ε and
// R_H^c with probability ε; the estimate targets the whole population.
func Fig8(opts Options) *Figure {
	epsilons := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	heuristicErrs := []float64{0.1, 0.5}
	const windowSize = 250
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(50)

	fig := &Figure{
		ID:     "fig8",
		Title:  "SWITCH SRMSE vs ε for 10%- and 50%-error heuristics (50 tasks)",
		XLabel: "epsilon",
		YLabel: "SRMSE",
		Consts: []Constant{
			{Name: "GROUND_TRUTH", Value: float64(pop.NumDirty())},
			{Name: "WINDOW_SIZE", Value: windowSize},
		},
	}
	for _, he := range heuristicErrs {
		s := Series{Name: fmt.Sprintf("SWITCH_H%.0f%%", he*100)}
		for i, eps := range epsilons {
			seed := opts.Seed + uint64(i)*1000 + uint64(he*100)
			root := xrand.New(seed).SplitNamed("fig8")
			synth := heuristic.NewSynthetic(pop.N(), pop.Truth.DirtyItems(), windowSize, he, root.SplitNamed("heuristic"))
			sampler := heuristic.NewEpsilonSampler(synth.RH, synth.RHC, eps, root.SplitNamed("sampler"))
			sim := crowd.NewSimulator(crowd.Config{
				Truth:        pop.Truth.IsDirty,
				N:            pop.N(),
				Profile:      BothProfile,
				ItemsPerTask: 15,
				Sampler:      sampler,
				Seed:         seed,
			})
			res := Run(RunConfig{
				Population:   pop,
				Tasks:        sim.Tasks(nTasks),
				Checkpoints:  []int{nTasks},
				Permutations: opts.perms(),
				Seed:         seed,
			})
			s.X = append(s.X, eps)
			s.Mean = append(s.Mean, res.SRMSEAt(estimator.NameSwitch))
			s.Std = append(s.Std, 0)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Sec321 reproduces the worked examples of Section 3.2.1: 1000 candidate
// pairs with 100 duplicates, tasks of 20 pairs, detection rate 0.9, 100
// tasks. Example 1 has no false positives and Chao92 nearly nails the
// remaining-error count; Example 2 adds a 1% false positive rate and Chao92
// overshoots — the singleton-error entanglement.
func Sec321(opts Options) *Figure {
	pop := dataset.NewPlantedPopulation(1000, 100, opts.Seed, "sec321")
	nTasks := opts.scale(100)

	runCase := func(name string, fp float64) []Constant {
		sim := crowd.NewSimulator(crowd.Config{
			Truth:        pop.Truth.IsDirty,
			N:            pop.N(),
			Profile:      crowd.Profile{FPRate: fp, FNRate: 0.1},
			ItemsPerTask: 20,
			Seed:         opts.Seed,
		})
		m := votes.NewMatrix(pop.N(), votes.WithoutHistory())
		var buf []votes.Vote
		for t := 0; t < nTasks; t++ {
			buf = sim.AppendTask(buf[:0])
			m.AddAll(buf)
		}
		f := m.DirtyFingerprint()
		est := estimator.Chao92(m, estimator.WithoutSkewCorrection())
		return []Constant{
			{Name: name + "_C_NOMINAL", Value: float64(m.Nominal())},
			{Name: name + "_N_POS", Value: float64(m.PositiveVotes())},
			{Name: name + "_F1", Value: float64(f.Singletons())},
			{Name: name + "_REMAINING_EST", Value: est - float64(m.Nominal())},
		}
	}

	fig := &Figure{
		ID:     "sec321",
		Title:  "Worked examples of §3.2.1 (Chao92 with and without false positives)",
		XLabel: "",
		Notes: []string{
			"Example 1: no false positives; paper reports c=83, n+=180, f1=30, remaining≈16.6",
			"Example 2: 1% false positives; paper reports f1≈46, n+≈208, remaining≈131 (overestimate)",
		},
	}
	fig.Consts = append(fig.Consts, Constant{Name: "GROUND_TRUTH", Value: 100})
	fig.Consts = append(fig.Consts, runCase("EX1", 0)...)
	fig.Consts = append(fig.Consts, runCase("EX2", 0.01)...)
	return fig
}
