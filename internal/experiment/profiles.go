package experiment

import "dqm/internal/crowd"

// Worker profiles calibrated to reproduce the qualitative signatures the
// paper reports for each AMT deployment (DESIGN.md §3). The estimators only
// see the vote stream, so matching the error *balance* is what matters:
//
//   - Restaurant (§6.1.1): "the workers make a lot of false positive
//     errors"; VOTING monotonically decreases; negative switches dominate.
//   - Product (§6.1.2): "the matching task is more difficult … contains more
//     false negative errors"; VOTING increases; positive switches dominate.
//   - Address (§6.1.3): "both false positives and negatives in fair
//     amounts"; VOTING is flat initially.
var (
	// RestaurantProfile is FP-heavy relative to the tiny 12/1264 error rate:
	// a 5% FP rate yields ≈60 wrongly marked pairs per pass over the
	// candidates, dwarfing the 12 true duplicates.
	RestaurantProfile = crowd.Profile{FPRate: 0.05, FNRate: 0.25, Jitter: 0.25}

	// ProductProfile is FN-heavy: matching product listings across catalogs
	// is hard, so a fifth of the true matches are missed per view, while
	// uniform false positives are rare (the confusable near-miss pairs of
	// Figure 4 are modeled separately via FPDifficulty).
	ProductProfile = crowd.Profile{FPRate: 0.004, FNRate: 0.2, Jitter: 0.25}

	// AddressProfile mixes both error types in fair amounts.
	AddressProfile = crowd.Profile{FPRate: 0.04, FNRate: 0.2, Jitter: 0.25}
)

// Simulation-study profiles (§6.2): the three worker types.
var (
	// FNOnlyProfile is scenario 1: a 10% chance to overlook a true error,
	// no false positives.
	FNOnlyProfile = crowd.Profile{FPRate: 0, FNRate: 0.10}
	// FPOnlyProfile is scenario 2: a 1% chance to wrongly mark a clean item.
	FPOnlyProfile = crowd.Profile{FPRate: 0.01, FNRate: 0}
	// BothProfile is scenario 3: both error types (10% FN, 1% FP).
	BothProfile = crowd.Profile{FPRate: 0.01, FNRate: 0.10}
)
