package experiment

import (
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
)

// parallelRunConfig builds a mid-sized replay workload with every series
// enabled, so the determinism comparison covers all recording paths.
func parallelRunConfig(t *testing.T, parallelism int) RunConfig {
	t.Helper()
	pop := dataset.NewPlantedPopulation(200, 30, 7, "parallel-test")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.02, FNRate: 0.15, Jitter: 0.2},
		ItemsPerTask: 8,
		Seed:         7,
	})
	return RunConfig{
		Population:   pop,
		Tasks:        sim.Tasks(120),
		Permutations: 8,
		Seed:         11,
		TrackNeeded:  true,
		Parallelism:  parallelism,
		Suite: estimator.SuiteConfig{
			Switch: estimator.SwitchConfig{CapToPopulation: true},
		},
	}
}

func sameSeries(t *testing.T, label string, a, b map[string][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: series count %d vs %d", label, len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			t.Fatalf("%s: series %s missing", label, name)
		}
		if len(av) != len(bv) {
			t.Fatalf("%s: series %s length %d vs %d", label, name, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: series %s differs at %d: %v vs %v", label, name, i, av[i], bv[i])
			}
		}
	}
}

// TestRunParallelismDeterminism asserts the tentpole guarantee: the replay
// engine produces bit-identical output for every worker-pool size, because
// permutation RNGs are pre-split and each permutation replays into its own
// suite.
func TestRunParallelismDeterminism(t *testing.T) {
	base := Run(parallelRunConfig(t, 1))
	for _, par := range []int{2, 3, 8, 0} {
		got := Run(parallelRunConfig(t, par))
		if len(got.X) != len(base.X) {
			t.Fatalf("parallelism %d: %d checkpoints vs %d", par, len(got.X), len(base.X))
		}
		for i := range base.X {
			if got.X[i] != base.X[i] {
				t.Fatalf("parallelism %d: X[%d] = %v vs %v", par, i, got.X[i], base.X[i])
			}
		}
		if got.Truth != base.Truth {
			t.Fatalf("parallelism %d: truth %v vs %v", par, got.Truth, base.Truth)
		}
		sameSeries(t, "Mean", got.Mean, base.Mean)
		sameSeries(t, "Std", got.Std, base.Std)
		sameSeries(t, "FinalEstimates", got.FinalEstimates, base.FinalEstimates)
	}
}

// TestRunUnreachableCheckpoints: checkpoints beyond the task count are
// dropped consistently from X and every series.
func TestRunUnreachableCheckpoints(t *testing.T) {
	cfg := parallelRunConfig(t, 1)
	cfg.Checkpoints = []int{40, 80, 120, 500}
	res := Run(cfg)
	if len(res.X) != 3 || res.X[2] != 120 {
		t.Fatalf("X = %v, want the three reachable checkpoints", res.X)
	}
	for name, s := range res.Mean {
		if len(s) != 3 {
			t.Fatalf("series %s has %d points, want 3", name, len(s))
		}
	}
}
