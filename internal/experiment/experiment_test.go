package experiment

import (
	"math"
	"strings"
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/votes"
)

func TestEvenCheckpoints(t *testing.T) {
	cps := EvenCheckpoints(100, 10)
	if len(cps) != 10 || cps[0] != 10 || cps[9] != 100 {
		t.Fatalf("checkpoints = %v", cps)
	}
	// Requesting more points than tasks yields one per task.
	cps = EvenCheckpoints(5, 50)
	if len(cps) != 5 || cps[4] != 5 {
		t.Fatalf("checkpoints = %v", cps)
	}
	if EvenCheckpoints(0, 10) != nil {
		t.Fatal("no tasks should give no checkpoints")
	}
	// Strictly ascending, no duplicates.
	cps = EvenCheckpoints(7, 3)
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("non-ascending checkpoints %v", cps)
		}
	}
}

func tinyRun(t *testing.T) *RunResult {
	t.Helper()
	pop := dataset.NewPlantedPopulation(50, 10, 1, "tiny")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.02, FNRate: 0.1},
		ItemsPerTask: 5,
		Seed:         1,
	})
	return Run(RunConfig{
		Population:   pop,
		Tasks:        sim.Tasks(40),
		Checkpoints:  []int{10, 20, 40},
		Permutations: 3,
		Seed:         2,
		TrackNeeded:  true,
	})
}

func TestRunShapes(t *testing.T) {
	res := tinyRun(t)
	if len(res.X) != 3 || res.X[2] != 40 {
		t.Fatalf("X = %v", res.X)
	}
	for _, name := range []string{
		estimator.NameNominal, estimator.NameVoting, estimator.NameChao92,
		estimator.NameVChao92, estimator.NameSwitch,
		SeriesXiPos, SeriesXiNeg, SeriesNeededPos, SeriesNeededNeg,
	} {
		if got := len(res.Mean[name]); got != 3 {
			t.Fatalf("series %s has %d points", name, got)
		}
		if got := len(res.Std[name]); got != 3 {
			t.Fatalf("std %s has %d points", name, got)
		}
		if got := len(res.FinalEstimates[name]); got != 3 {
			t.Fatalf("finals %s has %d entries", name, got)
		}
	}
	if res.Truth != 10 {
		t.Fatalf("Truth = %v", res.Truth)
	}
	// NOMINAL is monotone in task count (votes only accumulate).
	nom := res.Mean[estimator.NameNominal]
	if nom[0] > nom[1] || nom[1] > nom[2] {
		t.Fatalf("NOMINAL not monotone: %v", nom)
	}
}

func TestRunPermutationInvariantAggregates(t *testing.T) {
	// NOMINAL at the final checkpoint sees all votes, so every permutation
	// must agree exactly: std = 0 at the last point.
	res := tinyRun(t)
	lastStd := res.Std[estimator.NameNominal][2]
	if lastStd != 0 {
		t.Fatalf("NOMINAL final std = %v, want 0", lastStd)
	}
	finals := res.FinalEstimates[estimator.NameVoting]
	for _, f := range finals[1:] {
		if f != finals[0] {
			t.Fatalf("VOTING finals differ across permutations: %v", finals)
		}
	}
}

func TestSRMSEAt(t *testing.T) {
	res := tinyRun(t)
	s := res.SRMSEAt(estimator.NameVoting)
	if s < 0 || math.IsNaN(s) {
		t.Fatalf("SRMSE = %v", s)
	}
}

func TestLookupPanicsOnUnknown(t *testing.T) {
	res := tinyRun(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown series did not panic")
		}
	}()
	res.Lookup("NOPE")
}

func TestNeededSwitches(t *testing.T) {
	truth := dataset.NewGroundTruth(4, []int{0, 1})
	m := votes.NewMatrix(4)
	// Item 0 (dirty): majority dirty → no switch needed.
	m.Add(votes.Vote{Item: 0, Label: votes.Dirty})
	// Item 1 (dirty): majority clean → positive switch needed.
	m.Add(votes.Vote{Item: 1, Label: votes.Clean})
	// Item 2 (clean): majority dirty → negative switch needed.
	m.Add(votes.Vote{Item: 2, Label: votes.Dirty})
	// Item 3 (clean): unseen → default clean, fine.
	pos, neg := neededSwitches(m, truth)
	if pos != 1 || neg != 1 {
		t.Fatalf("needed = %d,%d, want 1,1", pos, neg)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("registry too small: %v", ids)
	}
	for _, id := range ids {
		if _, err := ByID(id); err != nil {
			t.Fatalf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// fastOpts shrink every driver to a quick smoke configuration.
func fastOpts() Options {
	return Options{Seed: 3, Permutations: 2, TaskScale: 0.1}
}

func TestAllDriversProduceFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("driver sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			driver, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			figs := driver(fastOpts())
			if len(figs) == 0 {
				t.Fatal("driver produced no figures")
			}
			for _, f := range figs {
				if f.ID == "" || f.Title == "" {
					t.Fatalf("figure missing metadata: %+v", f)
				}
				if len(f.Series) == 0 && len(f.Consts) == 0 {
					t.Fatalf("figure %s has no content", f.ID)
				}
				for _, s := range f.Series {
					if len(s.X) != len(s.Mean) {
						t.Fatalf("figure %s series %s: x/mean length mismatch", f.ID, s.Name)
					}
					for _, v := range s.Mean {
						if math.IsNaN(v) {
							t.Fatalf("figure %s series %s contains NaN", f.ID, s.Name)
						}
					}
				}
			}
		})
	}
}

func TestFigureHelpers(t *testing.T) {
	f := &Figure{
		ID:     "t",
		Title:  "test",
		XLabel: "x",
		Series: []Series{{Name: "A", X: []float64{1, 2}, Mean: []float64{3, 4.5}, Std: []float64{0, 0.1}}},
		Consts: []Constant{{Name: "GT", Value: 42}},
	}
	if f.Const("GT") != 42 || f.Const("missing") != 0 {
		t.Fatal("Const lookup wrong")
	}
	if f.FindSeries("A") == nil || f.FindSeries("B") != nil {
		t.Fatal("FindSeries wrong")
	}
}

func TestEstimatorSeriesCanonicalOrder(t *testing.T) {
	f := &Figure{Series: []Series{
		{Name: SeriesXiPos},
		{Name: estimator.NameSwitch},
		{Name: estimator.NameVoting},
		{Name: "GROUND_TRUTH"},
	}}
	got := f.EstimatorSeries()
	if len(got) != 2 || got[0].Name != estimator.NameVoting || got[1].Name != estimator.NameSwitch {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name
		}
		t.Fatalf("EstimatorSeries = %v, want [VOTING SWITCH]", names)
	}
}

func TestFigureWriteTable(t *testing.T) {
	f := &Figure{
		ID:     "fig-t",
		Title:  "render test",
		XLabel: "tasks",
		Series: []Series{{Name: "A", X: []float64{1, 2}, Mean: []float64{3, 4.5}, Std: []float64{0, 0}}},
		Consts: []Constant{{Name: "GT", Value: 42}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	if err := f.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig-t", "render test", "GT", "42", "a note", "tasks", "A", "4.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		ID:     "fig-t",
		Series: []Series{{Name: "A", X: []float64{1}, Mean: []float64{3}, Std: []float64{0.5}}},
	}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "x,A,A_std\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "1,3,0.5") {
		t.Fatalf("csv row wrong:\n%s", out)
	}
	// Empty figures render just a header-less x column.
	empty := &Figure{ID: "e"}
	sb.Reset()
	if err := empty.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.5",
		1.25:   "1.25",
		0:      "0",
		-2.5:   "-2.5",
		10.001: "10.001",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.perms() != 10 {
		t.Fatalf("default perms = %d", o.perms())
	}
	if o.scale(100) != 100 {
		t.Fatalf("default scale = %d", o.scale(100))
	}
	o = Options{Permutations: 3, TaskScale: 0.01}
	if o.perms() != 3 {
		t.Fatalf("perms = %d", o.perms())
	}
	if o.scale(100) != 1 {
		t.Fatalf("scaled tasks = %d, want floor of 1", o.scale(100))
	}
}

// TestSec321MatchesPaperShape verifies the worked example reproduces the
// paper's qualitative claim: without false positives the remaining estimate
// is small and close to the residual; with 1% false positives both the
// observed count and the remaining estimate inflate.
func TestSec321MatchesPaperShape(t *testing.T) {
	fig := Sec321(Options{Seed: 5})
	ex1c := fig.Const("EX1_C_NOMINAL")
	ex2c := fig.Const("EX2_C_NOMINAL")
	if ex1c < 60 || ex1c > 100 {
		t.Fatalf("EX1 nominal %v outside plausible range", ex1c)
	}
	if ex2c <= ex1c {
		t.Fatalf("false positives should inflate nominal: %v <= %v", ex2c, ex1c)
	}
	ex1rem := fig.Const("EX1_REMAINING_EST")
	total1 := ex1c + ex1rem
	if math.Abs(total1-100) > 20 {
		t.Fatalf("EX1 total %v should be near the true 100", total1)
	}
	total2 := ex2c + fig.Const("EX2_REMAINING_EST")
	if total2 <= total1 {
		t.Fatalf("EX2 total %v should exceed EX1 total %v", total2, total1)
	}
}

// TestFig7bChaoOverestimates asserts the paper's central sensitivity claim
// on a reduced run: with false positives, Chao92 lands far above the truth
// while SWITCH stays close.
func TestFig7bChaoOverestimates(t *testing.T) {
	fig := Fig7b(Options{Seed: 7, Permutations: 3, TaskScale: 0.5})
	chao := fig.FindSeries(estimator.NameChao92)
	sw := fig.FindSeries(estimator.NameSwitch)
	truth := fig.Const("GROUND_TRUTH")
	last := len(chao.Mean) - 1
	if chao.Mean[last] < truth*1.2 {
		t.Fatalf("Chao92 final %v does not overestimate truth %v", chao.Mean[last], truth)
	}
	if math.Abs(sw.Mean[last]-truth) > 0.25*truth {
		t.Fatalf("SWITCH final %v not within 25%% of truth %v", sw.Mean[last], truth)
	}
}

// TestExtRedundancyMarginal checks the §1.2 claim quantitatively: at equal
// vote budget, the consensus-quality gap between fixed-quorum and random
// assignment stays below 5% of the population, and the SWITCH estimate from
// the random schedule is usable (within 25% of truth).
func TestExtRedundancyMarginal(t *testing.T) {
	fig := ExtRedundancy(Options{Seed: 9})
	n := 1000.0
	gap := fig.Const("RANDOM_MAJORITY_ERRS") - fig.Const("QUORUM_MAJORITY_ERRS")
	if gap > 0.05*n {
		t.Fatalf("redundancy gap %v items is not marginal", gap)
	}
	bias := fig.Const("RANDOM_SWITCH_BIAS")
	if bias < -25 || bias > 25 {
		t.Fatalf("random-schedule SWITCH bias %v outside ±25", bias)
	}
}

// TestExtQualityEMWins asserts the §1.2 comparison at full coverage: EM ends
// with no more label errors than the raw majority.
func TestExtQualityEMWins(t *testing.T) {
	fig := ExtQuality(Options{Seed: 11, TaskScale: 1})
	maj := fig.FindSeries("MAJORITY_ERRORS")
	em := fig.FindSeries("EM_ERRORS")
	last := len(maj.Mean) - 1
	if em.Mean[last] > maj.Mean[last] {
		t.Fatalf("EM ended worse than majority: %v vs %v", em.Mean[last], maj.Mean[last])
	}
	kappa := fig.FindSeries("FLEISS_KAPPA")
	if kappa.Mean[last] <= 0 {
		t.Fatalf("kappa %v not positive for a better-than-random crowd", kappa.Mean[last])
	}
}

// TestExtFatigueDegradesVoting: at the end of the run the fatigued crowd's
// majority is further from the truth than the fresh crowd's.
func TestExtFatigueDegradesVoting(t *testing.T) {
	fig := ExtFatigue(Options{Seed: 13, Permutations: 3})
	truth := fig.Const("GROUND_TRUTH")
	fresh := fig.FindSeries("VOTING_FRESH")
	tired := fig.FindSeries("VOTING_FATIGUED")
	last := len(fresh.Mean) - 1
	dFresh := math.Abs(fresh.Mean[last] - truth)
	dTired := math.Abs(tired.Mean[last] - truth)
	if dTired < dFresh {
		t.Fatalf("fatigue improved voting? fresh |Δ|=%v, fatigued |Δ|=%v", dFresh, dTired)
	}
}

// TestExtAlgorithmicConvergesToCeiling: the committee's estimates target its
// consensus ceiling, not the unknowable truth.
func TestExtAlgorithmicConvergesToCeiling(t *testing.T) {
	fig := ExtAlgorithmic(Options{Seed: 15, Permutations: 3})
	ceiling := fig.Const("CONSENSUS_CEILING")
	truth := fig.Const("GROUND_TRUTH")
	if ceiling >= truth {
		t.Fatalf("ceiling %v should be below truth %v (long tail exists)", ceiling, truth)
	}
	sw := fig.FindSeries("SWITCH")
	last := sw.Mean[len(sw.Mean)-1]
	if math.Abs(last-ceiling) > 0.15*ceiling {
		t.Fatalf("SWITCH %v did not converge to the ceiling %v", last, ceiling)
	}
}
