// Package experiment reproduces the paper's evaluation: each figure of
// Section 6 has a driver that assembles the population, the simulated crowd
// and the estimator suite, replays the task stream over r random
// permutations (the paper's averaging protocol), and emits the same series
// the figure plots.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/stats"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Extra series names produced by the runner beyond the estimator labels.
const (
	SeriesXiPos     = "XI_POS"     // estimated remaining positive switches ξ⁺
	SeriesXiNeg     = "XI_NEG"     // estimated remaining negative switches ξ⁻
	SeriesNeededPos = "NEEDED_POS" // ground-truth positive switches still needed
	SeriesNeededNeg = "NEEDED_NEG" // ground-truth negative switches still needed
)

// RunConfig describes one estimation run over a fixed set of collected
// tasks.
type RunConfig struct {
	// Population supplies N and the ground truth.
	Population *dataset.Population
	// Tasks are the collected worker responses; permutations reorder them.
	Tasks []crowd.Task
	// Checkpoints are the task counts at which estimates are recorded; they
	// must be ascending. Nil selects an even grid of ~50 points.
	Checkpoints []int
	// Permutations is r; the paper uses 10. 0 selects 10.
	Permutations int
	// Seed drives the permutation shuffles.
	Seed uint64
	// Suite configures the estimators.
	Suite estimator.SuiteConfig
	// TrackNeeded enables the ground-truth needed-switch series (used by the
	// b/c panels of Figures 3–5); it costs O(N) per checkpoint.
	TrackNeeded bool
	// Parallelism bounds the number of goroutines replaying permutations
	// concurrently. 0 selects GOMAXPROCS; 1 replays inline on the caller.
	// Results are bit-identical for every setting: each permutation owns a
	// pre-split RNG and a pooled suite, so the schedule cannot leak into the
	// estimates.
	Parallelism int
}

func (c *RunConfig) setDefaults() {
	if c.Permutations == 0 {
		c.Permutations = 10
	}
	if c.Checkpoints == nil {
		c.Checkpoints = EvenCheckpoints(len(c.Tasks), 50)
	}
}

// EvenCheckpoints returns ~points ascending task counts ending at total.
func EvenCheckpoints(total, points int) []int {
	if total <= 0 {
		return nil
	}
	if points <= 0 || points > total {
		points = total
	}
	out := make([]int, 0, points)
	for i := 1; i <= points; i++ {
		cp := i * total / points
		if len(out) == 0 || cp > out[len(out)-1] {
			out = append(out, cp)
		}
	}
	return out
}

// RunResult aggregates the per-checkpoint estimates over all permutations.
type RunResult struct {
	// X holds the checkpoint task counts.
	X []float64
	// Mean and Std map series name → per-checkpoint aggregate over the r
	// permutations.
	Mean map[string][]float64
	Std  map[string][]float64
	// Truth is |R_dirty|.
	Truth float64
	// FinalEstimates holds, per series, the r estimates at the last
	// checkpoint (the inputs to SRMSE).
	FinalEstimates map[string][]float64
}

// estimatorSeries lists the estimator-valued series in canonical order; it
// comes from the shared name table of package estimator, so a new registered
// standard estimator flows into the runner without touching this file.
var estimatorSeries = estimator.StandardNames()

// runSeries lists the series the runner always records: every standard
// estimator plus the switch-decomposition extras.
var runSeries = append(append([]string(nil), estimatorSeries...), SeriesXiPos, SeriesXiNeg)

// replayState is the per-worker scratch of the parallel replay engine: one
// suite plus the permutation and vote buffers it replays into. States are
// pooled so a Run spins up at most Parallelism of them regardless of r.
type replayState struct {
	suite *estimator.Suite
	order []int
	votes []votes.Vote
}

func newReplayState(n, tasks int, cfg estimator.SuiteConfig) *replayState {
	// Replay suites never expose their matrices, so history retention would
	// only buy per-vote appends on every permutation.
	cfg.WithoutHistory = true
	return &replayState{
		suite: estimator.NewSuite(n, cfg),
		order: make([]int, tasks),
	}
}

// replayPerm replays one permutation of the task stream through the state's
// suite, writing each checkpoint row into rows[series][ncp·p+checkpoint].
// Rows of distinct permutations are disjoint, so no synchronization is
// needed to merge them.
func (st *replayState) replayPerm(cfg *RunConfig, p, ncp int, permRNG *xrand.RNG, rows map[string][]float64) {
	st.suite.Reset()
	order := st.order
	for i := range order {
		order[i] = i
	}
	permRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	base := p * ncp
	next := 0
	for ti, oi := range order {
		st.votes = cfg.Tasks[oi].AppendVotes(st.votes[:0])
		st.suite.ObserveTask(st.votes)
		if next < ncp && ti+1 == cfg.Checkpoints[next] {
			est := st.suite.EstimateAll()
			at := base + next
			for _, name := range estimatorSeries {
				rows[name][at] = est.ByName(name)
			}
			rows[SeriesXiPos][at] = est.Switch.XiPos
			rows[SeriesXiNeg][at] = est.Switch.XiNeg
			if cfg.TrackNeeded {
				np, nn := neededSwitches(st.suite.Matrix, cfg.Population.Truth)
				rows[SeriesNeededPos][at] = float64(np)
				rows[SeriesNeededNeg][at] = float64(nn)
			}
			next++
		}
	}
}

// Run replays the tasks over r permutations and aggregates estimates.
//
// Permutations are fanned out over a bounded worker pool (see
// RunConfig.Parallelism). Determinism is preserved by construction: the
// per-permutation shuffle RNGs are split from the seed in permutation order
// before any worker starts, each worker replays into its own pooled suite,
// and every (series, permutation, checkpoint) cell has exactly one writer.
func Run(cfg RunConfig) *RunResult {
	cfg.setDefaults()
	pop := cfg.Population
	rng := xrand.New(cfg.Seed).SplitNamed("runner")

	names := append([]string(nil), runSeries...)
	if cfg.TrackNeeded {
		names = append(names, SeriesNeededPos, SeriesNeededNeg)
	}

	// One RNG per permutation, split up front in permutation order, so the
	// stream permutation p sees does not depend on which worker replays it.
	permRNGs := make([]*xrand.RNG, cfg.Permutations)
	for p := range permRNGs {
		permRNGs[p] = rng.Split()
	}

	// ncp counts the checkpoints the replay can actually reach; rows are
	// sized for them up front so recording never grows a slice.
	ncp := 0
	for _, cp := range cfg.Checkpoints {
		if cp > len(cfg.Tasks) {
			break
		}
		ncp++
	}

	// rows[name] is a flat [permutation][checkpoint] matrix in row-major
	// order; workers write disjoint rows lock-free.
	rows := make(map[string][]float64, len(names))
	for _, n := range names {
		rows[n] = make([]float64, cfg.Permutations*ncp)
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Permutations {
		workers = cfg.Permutations
	}

	pool := sync.Pool{New: func() any {
		return newReplayState(pop.N(), len(cfg.Tasks), cfg.Suite)
	}}
	replay := func(p int) {
		st := pool.Get().(*replayState)
		st.replayPerm(&cfg, p, ncp, permRNGs[p], rows)
		pool.Put(st)
	}

	if workers <= 1 {
		for p := 0; p < cfg.Permutations; p++ {
			replay(p)
		}
	} else {
		var wg sync.WaitGroup
		perms := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range perms {
					replay(p)
				}
			}()
		}
		for p := 0; p < cfg.Permutations; p++ {
			perms <- p
		}
		close(perms)
		wg.Wait()
	}

	res := &RunResult{
		X:              make([]float64, ncp),
		Mean:           make(map[string][]float64, len(names)),
		Std:            make(map[string][]float64, len(names)),
		Truth:          float64(pop.NumDirty()),
		FinalEstimates: make(map[string][]float64, len(names)),
	}
	for i := 0; i < ncp; i++ {
		res.X[i] = float64(cfg.Checkpoints[i])
	}
	series := make([][]float64, cfg.Permutations)
	for _, n := range names {
		flat := rows[n]
		for p := 0; p < cfg.Permutations; p++ {
			series[p] = flat[p*ncp : (p+1)*ncp]
		}
		res.Mean[n] = stats.MeanSeries(series)
		res.Std[n] = stats.StdSeries(series)
		finals := make([]float64, cfg.Permutations)
		if ncp > 0 {
			for p := 0; p < cfg.Permutations; p++ {
				finals[p] = flat[(p+1)*ncp-1]
			}
		}
		res.FinalEstimates[n] = finals
	}
	return res
}

// neededSwitches counts, against the ground truth E, how many consensus
// decisions still have to flip: positive = consensus clean (default for
// unseen) but truly dirty; negative = consensus dirty but truly clean. This
// is the figures' "Ground Truth" line for the switch panels.
func neededSwitches(m *votes.Matrix, truth *dataset.GroundTruth) (pos, neg int) {
	for i := 0; i < m.NumItems(); i++ {
		maj := m.MajorityDirty(i)
		dirty := truth.IsDirty(i)
		switch {
		case dirty && !maj:
			pos++
		case !dirty && maj:
			neg++
		}
	}
	return pos, neg
}

// SRMSEAt computes the scaled RMSE of a series' final estimates against the
// population truth.
func (r *RunResult) SRMSEAt(name string) float64 {
	return stats.SRMSE(r.FinalEstimates[name], r.Truth)
}

// Lookup returns the mean series by name, panicking on unknown names so
// figure drivers fail loudly rather than plotting empty lines.
func (r *RunResult) Lookup(name string) []float64 {
	s, ok := r.Mean[name]
	if !ok {
		panic(fmt.Sprintf("experiment: unknown series %q", name))
	}
	return s
}
