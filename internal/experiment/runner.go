// Package experiment reproduces the paper's evaluation: each figure of
// Section 6 has a driver that assembles the population, the simulated crowd
// and the estimator suite, replays the task stream over r random
// permutations (the paper's averaging protocol), and emits the same series
// the figure plots.
package experiment

import (
	"fmt"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/stats"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Extra series names produced by the runner beyond the estimator labels.
const (
	SeriesXiPos     = "XI_POS"     // estimated remaining positive switches ξ⁺
	SeriesXiNeg     = "XI_NEG"     // estimated remaining negative switches ξ⁻
	SeriesNeededPos = "NEEDED_POS" // ground-truth positive switches still needed
	SeriesNeededNeg = "NEEDED_NEG" // ground-truth negative switches still needed
)

// RunConfig describes one estimation run over a fixed set of collected
// tasks.
type RunConfig struct {
	// Population supplies N and the ground truth.
	Population *dataset.Population
	// Tasks are the collected worker responses; permutations reorder them.
	Tasks []crowd.Task
	// Checkpoints are the task counts at which estimates are recorded; they
	// must be ascending. Nil selects an even grid of ~50 points.
	Checkpoints []int
	// Permutations is r; the paper uses 10. 0 selects 10.
	Permutations int
	// Seed drives the permutation shuffles.
	Seed uint64
	// Suite configures the estimators.
	Suite estimator.SuiteConfig
	// TrackNeeded enables the ground-truth needed-switch series (used by the
	// b/c panels of Figures 3–5); it costs O(N) per checkpoint.
	TrackNeeded bool
}

func (c *RunConfig) setDefaults() {
	if c.Permutations == 0 {
		c.Permutations = 10
	}
	if c.Checkpoints == nil {
		c.Checkpoints = EvenCheckpoints(len(c.Tasks), 50)
	}
}

// EvenCheckpoints returns ~points ascending task counts ending at total.
func EvenCheckpoints(total, points int) []int {
	if total <= 0 {
		return nil
	}
	if points <= 0 || points > total {
		points = total
	}
	out := make([]int, 0, points)
	for i := 1; i <= points; i++ {
		cp := i * total / points
		if len(out) == 0 || cp > out[len(out)-1] {
			out = append(out, cp)
		}
	}
	return out
}

// RunResult aggregates the per-checkpoint estimates over all permutations.
type RunResult struct {
	// X holds the checkpoint task counts.
	X []float64
	// Mean and Std map series name → per-checkpoint aggregate over the r
	// permutations.
	Mean map[string][]float64
	Std  map[string][]float64
	// Truth is |R_dirty|.
	Truth float64
	// FinalEstimates holds, per series, the r estimates at the last
	// checkpoint (the inputs to SRMSE).
	FinalEstimates map[string][]float64
}

// runSeries lists the series the runner always records.
var runSeries = []string{
	estimator.NameNominal, estimator.NameVoting, estimator.NameChao92,
	estimator.NameVChao92, estimator.NameSwitch, SeriesXiPos, SeriesXiNeg,
}

// Run replays the tasks over r permutations and aggregates estimates.
func Run(cfg RunConfig) *RunResult {
	cfg.setDefaults()
	pop := cfg.Population
	rng := xrand.New(cfg.Seed).SplitNamed("runner")

	names := append([]string(nil), runSeries...)
	if cfg.TrackNeeded {
		names = append(names, SeriesNeededPos, SeriesNeededNeg)
	}

	// rows[name][perm][checkpoint]
	rows := make(map[string][][]float64, len(names))
	for _, n := range names {
		rows[n] = make([][]float64, cfg.Permutations)
	}

	order := make([]int, len(cfg.Tasks))
	suite := estimator.NewSuite(pop.N(), cfg.Suite)
	for p := 0; p < cfg.Permutations; p++ {
		for i := range order {
			order[i] = i
		}
		permRNG := rng.Split()
		permRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		suite.Reset()
		record := func(name string, v float64) {
			rows[name][p] = append(rows[name][p], v)
		}
		next := 0
		for ti, oi := range order {
			suite.ObserveTask(cfg.Tasks[oi].Votes())
			if next < len(cfg.Checkpoints) && ti+1 == cfg.Checkpoints[next] {
				est := suite.EstimateAll()
				record(estimator.NameNominal, est.Nominal)
				record(estimator.NameVoting, est.Voting)
				record(estimator.NameChao92, est.Chao92)
				record(estimator.NameVChao92, est.VChao92)
				record(estimator.NameSwitch, est.Switch.Total)
				record(SeriesXiPos, est.Switch.XiPos)
				record(SeriesXiNeg, est.Switch.XiNeg)
				if cfg.TrackNeeded {
					np, nn := neededSwitches(suite.Matrix, pop.Truth)
					record(SeriesNeededPos, float64(np))
					record(SeriesNeededNeg, float64(nn))
				}
				next++
			}
		}
	}

	res := &RunResult{
		X:              make([]float64, len(cfg.Checkpoints)),
		Mean:           make(map[string][]float64, len(names)),
		Std:            make(map[string][]float64, len(names)),
		Truth:          float64(pop.NumDirty()),
		FinalEstimates: make(map[string][]float64, len(names)),
	}
	for i, cp := range cfg.Checkpoints {
		res.X[i] = float64(cp)
	}
	for _, n := range names {
		res.Mean[n] = stats.MeanSeries(rows[n])
		res.Std[n] = stats.StdSeries(rows[n])
		finals := make([]float64, cfg.Permutations)
		for p := 0; p < cfg.Permutations; p++ {
			row := rows[n][p]
			if len(row) > 0 {
				finals[p] = row[len(row)-1]
			}
		}
		res.FinalEstimates[n] = finals
	}
	return res
}

// neededSwitches counts, against the ground truth E, how many consensus
// decisions still have to flip: positive = consensus clean (default for
// unseen) but truly dirty; negative = consensus dirty but truly clean. This
// is the figures' "Ground Truth" line for the switch panels.
func neededSwitches(m *votes.Matrix, truth *dataset.GroundTruth) (pos, neg int) {
	for i := 0; i < m.NumItems(); i++ {
		maj := m.MajorityDirty(i)
		dirty := truth.IsDirty(i)
		switch {
		case dirty && !maj:
			pos++
		case !dirty && maj:
			neg++
		}
	}
	return pos, neg
}

// SRMSEAt computes the scaled RMSE of a series' final estimates against the
// population truth.
func (r *RunResult) SRMSEAt(name string) float64 {
	return stats.SRMSE(r.FinalEstimates[name], r.Truth)
}

// Lookup returns the mean series by name, panicking on unknown names so
// figure drivers fail loudly rather than plotting empty lines.
func (r *RunResult) Lookup(name string) []float64 {
	s, ok := r.Mean[name]
	if !ok {
		panic(fmt.Sprintf("experiment: unknown series %q", name))
	}
	return s
}
