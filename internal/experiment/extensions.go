package experiment

import (
	"dqm/internal/algoclean"
	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/quality"
	"dqm/internal/rules"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// ExtAlgorithmic measures the paper's §8 extension: a committee of
// semi-independent algorithmic cleaners replaces the crowd over the address
// dataset. Committee members share most of the rule catalog but each has a
// blind spot ("leave one class out"), plus two deliberately imperfect
// members with systematic false positives. The figure reports the usual
// estimator series against both the true error count and the committee's
// consensus ceiling — the number of errors a majority of algorithms can
// ever see, which is what the estimators actually converge to.
func ExtAlgorithmic(opts Options) *Figure {
	data := dataset.GenerateAddresses(dataset.AddressConfig{Seed: opts.Seed})
	n := len(data.Records)
	pop := &dataset.Population{Truth: data.Truth, Describe: "address records (algorithmic)"}

	all := rules.AllRules()
	leaveOut := func(name string, skip string) algoclean.Judge {
		var kept []rules.Rule
		for _, r := range all {
			if r.Name() != skip {
				kept = append(kept, r)
			}
		}
		return algoclean.RuleJudge(name, data.Records, kept...)
	}
	fullDet := rules.NewDetector()
	strictNumber := algoclean.New("strict-number", func(i int) votes.Label {
		if fullDet.Dirty(data.Records[i]) || data.Records[i].Number > 18000 {
			return votes.Dirty
		}
		return votes.Clean
	})
	committee := algoclean.NewCommittee(
		leaveOut("no-business", "business-keyword"),
		leaveOut("no-fd", "zip-city-fd"),
		leaveOut("no-reference", "city-name"),
		leaveOut("no-zip-range", "zip-range"),
		algoclean.RuleJudge("full-rules", data.Records),
		strictNumber,
	)

	tasks := committee.Tasks(n, 10, xrand.New(opts.Seed).SplitNamed("ext-algo"))
	res := Run(RunConfig{
		Population:   pop,
		Tasks:        tasks,
		Permutations: opts.perms(),
		Seed:         opts.Seed,
		Parallelism:  opts.Parallelism,
		Suite: estimator.SuiteConfig{
			Switch: estimator.SwitchConfig{CapToPopulation: true},
		},
	})

	// The consensus ceiling: errors visible to a strict majority of the
	// committee.
	ceiling := 0
	for i, dirty := range committee.Consensus(n) {
		if dirty && data.Truth.IsDirty(i) {
			ceiling++
		}
	}

	mk := func(name string) Series {
		return Series{Name: name, X: res.X, Mean: res.Mean[name], Std: res.Std[name]}
	}
	return &Figure{
		ID:     "ext-algorithmic",
		Title:  "Extension (§8): committee of algorithmic cleaners over the address dataset",
		XLabel: "algorithm tasks",
		YLabel: "estimated total errors",
		Series: []Series{
			mk(estimator.NameNominal), mk(estimator.NameVoting), mk(estimator.NameSwitch),
		},
		Consts: []Constant{
			{Name: "GROUND_TRUTH", Value: res.Truth},
			{Name: "CONSENSUS_CEILING", Value: float64(ceiling)},
			{Name: "COMMITTEE_SIZE", Value: float64(committee.Size())},
		},
		Notes: []string{
			"estimates converge to the committee's consensus ceiling, not the unknowable truth:",
			"errors no majority of algorithms can detect are the paper's §6.3 black swans",
		},
	}
}

// ExtQuality measures the §1.2 quality-control techniques the paper builds
// on: as tasks accumulate, how do the majority consensus and Dawid–Skene EM
// compare at recovering the true labels of *observed* items, and how does
// inter-worker agreement (Fleiss' kappa) evolve? The paper's argument is
// that even the best consensus over observed items cannot answer the
// remaining-error question; this driver quantifies the other half of that
// sentence — what consensus refinement can and cannot buy.
func ExtQuality(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(400)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.05, FNRate: 0.2, Jitter: 0.5},
		ItemsPerTask: 15,
		PoolSize:     25,
		Seed:         opts.Seed,
	})

	m := votes.NewMatrix(pop.N())
	checkpoints := EvenCheckpoints(nTasks, 25)
	var (
		xs                           []float64
		majErrs, emErrs, kappaSeries []float64
	)
	next := 0
	var buf []votes.Vote
	for ti, task := range sim.Tasks(nTasks) {
		buf = task.AppendVotes(buf[:0])
		m.AddAll(buf)
		if next < len(checkpoints) && ti+1 == checkpoints[next] {
			next++
			res, err := quality.EM(m, quality.EMConfig{})
			if err != nil {
				panic(err) // history is always retained here
			}
			emLabels := res.Labels()
			var majWrong, emWrong int
			for i := 0; i < pop.N(); i++ {
				truth := pop.Truth.IsDirty(i)
				if m.MajorityDirty(i) != truth {
					majWrong++
				}
				if emLabels[i] != truth {
					emWrong++
				}
			}
			xs = append(xs, float64(ti+1))
			majErrs = append(majErrs, float64(majWrong))
			emErrs = append(emErrs, float64(emWrong))
			kappaSeries = append(kappaSeries, quality.FleissKappa(m))
		}
	}

	zero := make([]float64, len(xs))
	return &Figure{
		ID:     "ext-quality",
		Title:  "Extension (§1.2): consensus label errors, majority vs Dawid–Skene EM",
		XLabel: "tasks",
		YLabel: "wrong consensus labels",
		Series: []Series{
			{Name: "MAJORITY_ERRORS", X: xs, Mean: majErrs, Std: zero},
			{Name: "EM_ERRORS", X: xs, Mean: emErrs, Std: zero},
			{Name: "FLEISS_KAPPA", X: xs, Mean: kappaSeries, Std: zero},
		},
		Consts: []Constant{{Name: "GROUND_TRUTH", Value: float64(pop.NumDirty())}},
		Notes: []string{
			"EM refines labels of observed items; neither technique predicts unobserved errors",
		},
	}
}

// ExtFatigue studies worker fatigue (§2.2.1 names it among the failure
// modes): a small worker pool degrades as it repeats tasks, so later votes
// are noisier than earlier ones. The run compares fresh and fatigued crowds
// on the mixed-error scenario — SWITCH absorbs the drift as long as the
// majority stays better than random.
func ExtFatigue(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(400)

	run := func(fatigue float64) *RunResult {
		sim := crowd.NewSimulator(crowd.Config{
			Truth:        pop.Truth.IsDirty,
			N:            pop.N(),
			Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.1, Fatigue: fatigue},
			ItemsPerTask: 15,
			PoolSize:     10,
			Seed:         opts.Seed,
		})
		return Run(RunConfig{
			Population:   pop,
			Tasks:        sim.Tasks(nTasks),
			Permutations: opts.perms(),
			Seed:         opts.Seed,
			Parallelism:  opts.Parallelism,
		})
	}
	fresh := run(0)
	tired := run(0.02)

	mk := func(name, label string, r *RunResult) Series {
		return Series{Name: label, X: r.X, Mean: r.Mean[name], Std: r.Std[name]}
	}
	return &Figure{
		ID:     "ext-fatigue",
		Title:  "Extension (§2.2.1): worker fatigue, fresh vs degrading crowds",
		XLabel: "tasks",
		YLabel: "estimated total errors",
		Series: []Series{
			mk(estimator.NameVoting, "VOTING_FRESH", fresh),
			mk(estimator.NameVoting, "VOTING_FATIGUED", tired),
			mk(estimator.NameSwitch, "SWITCH_FRESH", fresh),
			mk(estimator.NameSwitch, "SWITCH_FATIGUED", tired),
		},
		Consts: []Constant{{Name: "GROUND_TRUTH", Value: fresh.Truth}},
	}
}

// ExtRedundancy tests the §1.2 claim that the redundancy added by random
// worker assignment "is marginal compared to the fixed assignment (exactly
// three votes per item)". Both schedules spend the same budget of votes;
// the figure compares the quality of the resulting majority consensus and
// of the SWITCH estimate. Fixed assignment spreads votes perfectly evenly
// but supports no estimation beyond the sample; random assignment funds the
// species statistics.
func ExtRedundancy(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	n := pop.N()
	profile := crowd.Profile{FPRate: 0.02, FNRate: 0.15, Jitter: 0.25}
	const itemsPerTask = 10

	// Fixed quorum: every item exactly 3 votes = 300 tasks of 10.
	root := xrand.New(opts.Seed).SplitNamed("ext-redundancy")
	pool := crowd.NewPool(40, profile, root.SplitNamed("pool"))
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	quorum := crowd.QuorumTasks(items, 3, itemsPerTask, pool, pop.Truth.IsDirty, root.SplitNamed("quorum"))

	// Random assignment with the same total budget.
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            n,
		Profile:      profile,
		ItemsPerTask: itemsPerTask,
		Seed:         opts.Seed,
	})
	random := sim.Tasks(len(quorum))

	score := func(tasks []crowd.Task) (majorityErrs float64, switchErr float64) {
		suite := estimator.NewSuite(n, estimator.SuiteConfig{WithoutHistory: true})
		var buf []votes.Vote
		for _, task := range tasks {
			buf = task.AppendVotes(buf[:0])
			suite.ObserveTask(buf)
		}
		wrong := 0
		for i := 0; i < n; i++ {
			if suite.Matrix.MajorityDirty(i) != pop.Truth.IsDirty(i) {
				wrong++
			}
		}
		est := suite.EstimateAll()
		return float64(wrong), est.Switch.Total - float64(pop.NumDirty())
	}
	qMajErr, qSwErr := score(quorum)
	rMajErr, rSwErr := score(random)

	return &Figure{
		ID:     "ext-redundancy",
		Title:  "Extension (§1.2): fixed 3-vote quorum vs random assignment at equal budget",
		XLabel: "",
		Consts: []Constant{
			{Name: "GROUND_TRUTH", Value: float64(pop.NumDirty())},
			{Name: "BUDGET_TASKS", Value: float64(len(quorum))},
			{Name: "QUORUM_MAJORITY_ERRS", Value: qMajErr},
			{Name: "RANDOM_MAJORITY_ERRS", Value: rMajErr},
			{Name: "QUORUM_SWITCH_BIAS", Value: qSwErr},
			{Name: "RANDOM_SWITCH_BIAS", Value: rSwErr},
		},
		Notes: []string{
			"majority-error gap between schedules is the 'marginal redundancy' of §1.2;",
			"only the random schedule yields a usable remaining-error estimate",
		},
	}
}
