package experiment

import (
	"fmt"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/stats"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
)

// The ablations quantify the design choices DESIGN.md §5 calls out: the
// switch-counting policy, the n used for sign-specific switch estimation,
// and the vChao92 shift/adjustment.

// switchVariant is one configuration of the SWITCH estimator under ablation.
type switchVariant struct {
	name string
	cfg  estimator.SwitchConfig
}

func switchVariants() []switchVariant {
	return []switchVariant{
		{"tie-flip/global-n", estimator.SwitchConfig{Policy: switchstat.PolicyTieFlip, NMode: estimator.NModeGlobal}},
		{"tie-flip/sign-mass-n", estimator.SwitchConfig{Policy: switchstat.PolicyTieFlip, NMode: estimator.NModeSignMass}},
		{"strict-majority/global-n", estimator.SwitchConfig{Policy: switchstat.PolicyStrictMajority, NMode: estimator.NModeGlobal}},
		{"strict-majority/sign-mass-n", estimator.SwitchConfig{Policy: switchstat.PolicyStrictMajority, NMode: estimator.NModeSignMass}},
	}
}

// AblationSwitch measures the SRMSE of each SWITCH variant on the
// mixed-error simulation scenario (the paper's default choice is the
// tie-flip policy with the global n_switch).
func AblationSwitch(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(200)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      BothProfile,
		ItemsPerTask: 15,
		Seed:         opts.Seed,
	})
	tasks := sim.Tasks(nTasks)

	fig := &Figure{
		ID:     "ablation-switch",
		Title:  "SWITCH design ablation: counting policy × n definition (SRMSE, lower is better)",
		XLabel: "variant",
		YLabel: "SRMSE",
	}
	for _, v := range switchVariants() {
		res := Run(RunConfig{
			Population:   pop,
			Tasks:        tasks,
			Checkpoints:  []int{nTasks},
			Permutations: opts.perms(),
			Seed:         opts.Seed,
			Parallelism:  opts.Parallelism,
			Suite:        estimator.SuiteConfig{Switch: v.cfg},
		})
		fig.Consts = append(fig.Consts, Constant{
			Name:  v.name,
			Value: res.SRMSEAt(estimator.NameSwitch),
		})
	}
	return fig
}

// AblationVChao measures vChao92 across shifts s ∈ {0,1,2,3} and both n
// adjustments on the false-positive scenario where the shift matters most.
func AblationVChao(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(200)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      BothProfile,
		ItemsPerTask: 15,
		Seed:         opts.Seed,
	})
	tasks := sim.Tasks(nTasks)

	fig := &Figure{
		ID:     "ablation-vchao",
		Title:  "vChao92 ablation: shift s × n adjustment (SRMSE, lower is better)",
		XLabel: "variant",
		YLabel: "SRMSE",
	}
	for _, massAdjust := range []bool{false, true} {
		for s := 0; s <= 3; s++ {
			if s == 0 && massAdjust {
				continue // shift 0 has nothing to adjust; identical to the literal form
			}
			res := Run(RunConfig{
				Population:   pop,
				Tasks:        tasks,
				Checkpoints:  []int{nTasks},
				Permutations: opts.perms(),
				Seed:         opts.Seed,
				Parallelism:  opts.Parallelism,
				Suite: estimator.SuiteConfig{
					VChao92: estimator.VChao92Config{Shift: s, MassAdjust: massAdjust},
				},
			})
			// Shift 0 in SuiteConfig means "default 1"; bypass by reporting
			// via a direct replay when s == 0.
			val := res.SRMSEAt(estimator.NameVChao92)
			if s == 0 {
				val = vchaoSRMSEDirect(pop, tasks, estimator.VChao92Config{Shift: 0}, opts)
			}
			adj := "count-adjust"
			if massAdjust {
				adj = "mass-adjust"
			}
			fig.Consts = append(fig.Consts, Constant{
				Name:  fmt.Sprintf("s=%d/%s", s, adj),
				Value: val,
			})
		}
	}
	return fig
}

// vchaoSRMSEDirect replays tasks through a bare matrix to evaluate vChao92
// configurations the Suite cannot express (shift 0). The matrix aggregates
// are task-order independent, so a single replay suffices.
func vchaoSRMSEDirect(pop *dataset.Population, tasks []crowd.Task, cfg estimator.VChao92Config, opts Options) float64 {
	m := votes.NewMatrix(pop.N(), votes.WithoutHistory())
	var buf []votes.Vote
	for _, t := range tasks {
		buf = t.AppendVotes(buf[:0])
		m.AddAll(buf)
	}
	return stats.SRMSE([]float64{estimator.VChao92(m, cfg)}, float64(pop.NumDirty()))
}

// AblationBaselines compares the classical species estimators (Chao84,
// Jackknife 1/2, Chao92 with and without skew correction) on the
// false-negative-only scenario where species estimation is well-posed.
func AblationBaselines(opts Options) *Figure {
	pop := dataset.SimulationPopulation(opts.Seed)
	nTasks := opts.scale(200)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      FNOnlyProfile,
		ItemsPerTask: 15,
		Seed:         opts.Seed,
	})
	m := votes.NewMatrix(pop.N(), votes.WithoutHistory())
	var buf []votes.Vote
	for _, t := range sim.Tasks(nTasks) {
		buf = t.AppendVotes(buf[:0])
		m.AddAll(buf)
	}
	f := m.DirtyFingerprint()
	in := stats.Chao92Input{C: m.Nominal(), F: f, N: m.PositiveVotes()}

	return &Figure{
		ID:     "ablation-baselines",
		Title:  "Classical species estimators on the FN-only scenario (truth = 100)",
		XLabel: "estimator",
		Consts: []Constant{
			{Name: "GROUND_TRUTH", Value: float64(pop.NumDirty())},
			{Name: "OBSERVED", Value: float64(m.Nominal())},
			{Name: estimator.NameChao92, Value: stats.Chao92(in).Estimate},
			{Name: estimator.NameChao92 + "_NOSKEW", Value: stats.Chao92NoSkew(in).Estimate},
			{Name: "CHAO84", Value: stats.Chao84(m.Nominal(), f)},
			{Name: "ACE", Value: stats.ACE(f)},
			{Name: "JACKKNIFE1", Value: stats.Jackknife1(m.Nominal(), f, m.PositiveVotes())},
			{Name: "JACKKNIFE2", Value: stats.Jackknife2(m.Nominal(), f, m.PositiveVotes())},
		},
	}
}
