package experiment

import (
	"fmt"
	"io"
	"strings"

	"dqm/internal/estimator"
)

// Series is one plotted line of a figure: a label, x coordinates, the mean
// over permutations and (when available) the ±1-std band.
type Series struct {
	Name string
	X    []float64
	Mean []float64
	Std  []float64
}

// Constant is a scalar annotation on a figure (ground truth, SCM task count,
// extrapolation mean, ...).
type Constant struct {
	Name  string
	Value float64
}

// Figure is the machine-readable form of one of the paper's plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Consts []Constant
	Notes  []string
}

// Const returns the named constant, or 0 when absent.
func (f *Figure) Const(name string) float64 {
	for _, c := range f.Consts {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// EstimatorSeries returns the figure's series whose names are standard
// estimator names, in the canonical order of the shared name table — the
// subset a generic renderer plots as estimator lines (as opposed to extras
// like the ξ decompositions or ground-truth annotations).
func (f *Figure) EstimatorSeries() []*Series {
	var out []*Series
	for _, name := range estimator.StandardNames() {
		if s := f.FindSeries(name); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// FindSeries returns the named series, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned text table: one row per x
// value, one column per series mean.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, c := range f.Consts {
		if _, err := fmt.Fprintf(w, "#  %-22s %.3f\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "#  %s\n", n); err != nil {
			return err
		}
	}
	if len(f.Series) == 0 {
		return nil
	}
	// Header.
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, formatRow(cols)); err != nil {
		return err
	}
	// Rows, keyed by the x grid of the first series; series with distinct
	// grids are aligned by index (all drivers emit shared grids).
	nRows := len(f.Series[0].X)
	row := make([]string, len(f.Series)+1)
	for i := 0; i < nRows; i++ {
		row[0] = trimFloat(f.Series[0].X[i])
		for j, s := range f.Series {
			if i < len(s.Mean) {
				row[j+1] = trimFloat(s.Mean[i])
			} else {
				row[j+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, formatRow(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV with mean and std columns per series.
func (f *Figure) WriteCSV(w io.Writer) error {
	header := []string{"x"}
	for _, s := range f.Series {
		header = append(header, s.Name, s.Name+"_std")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	nRows := len(f.Series[0].X)
	for i := 0; i < nRows; i++ {
		rec := []string{trimFloat(f.Series[0].X[i])}
		for _, s := range f.Series {
			m, sd := "", ""
			if i < len(s.Mean) {
				m = trimFloat(s.Mean[i])
			}
			if i < len(s.Std) {
				sd = trimFloat(s.Std[i])
			}
			rec = append(rec, m, sd)
		}
		if _, err := fmt.Fprintln(w, strings.Join(rec, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatRow(cells []string) string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%12s", c)
	}
	return strings.Join(out, " ")
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}
