// Package rules implements rule-based error detection in the style of
// Guided Data Repair, the paper's §1 motivating example: integrity rules
// catch missing values and functional-dependency violations (records r1–r3
// of Figure 1) but are structurally blind to misspellings in valid formats,
// non-home addresses and fabricated entries (r4–r6) — the "long tail" that
// motivates estimating what the rules missed.
//
// The rules double as the members of algorithmic cleaning committees
// (package algoclean): each rule is a deterministic, semi-independent error
// detector whose judgments can be fed to the estimators exactly like worker
// votes, the paper's §8 extension.
package rules

import (
	"strings"

	"dqm/internal/dataset"
)

// Rule is one integrity check over an address record. Check returns true
// when the record VIOLATES the rule (i.e. is detected as dirty).
type Rule interface {
	Name() string
	Check(a dataset.Address) bool
}

// knownCities maps lower-cased city names to their state, the reference
// data behind the city/state and FD rules. Mirrors the corpus used by the
// generator — in a real deployment this would be a postal reference table.
var knownCities = map[string]string{
	"portland": "OR", "seattle": "WA", "san francisco": "CA",
	"new york": "NY", "atlanta": "GA", "chicago": "IL", "boston": "MA",
	"austin": "TX", "denver": "CO", "nashville": "TN",
}

// zipPrefixCity maps 3-digit zip prefixes to the expected city, encoding
// the functional dependency zip → (city, state) for the corpus.
var zipPrefixCity = map[string]string{
	"972": "portland", "981": "seattle", "941": "san francisco",
	"100": "new york", "303": "atlanta", "606": "chicago",
	"021": "boston", "787": "austin", "802": "denver", "372": "nashville",
}

// MissingValue flags records with an empty required field (Figure 1: r1,
// r2).
type MissingValue struct{}

// Name implements Rule.
func (MissingValue) Name() string { return "missing-value" }

// Check implements Rule.
func (MissingValue) Check(a dataset.Address) bool {
	return a.Number <= 0 || strings.TrimSpace(a.Street) == "" ||
		strings.TrimSpace(a.City) == "" || strings.TrimSpace(a.State) == "" ||
		strings.TrimSpace(a.Zip) == ""
}

// ZipFormat flags zips that are not exactly five digits (Figure 1: r3, r4).
type ZipFormat struct{}

// Name implements Rule.
func (ZipFormat) Name() string { return "zip-format" }

// Check implements Rule.
func (ZipFormat) Check(a dataset.Address) bool {
	if a.Zip == "" {
		return false // MissingValue's job; rules stay orthogonal
	}
	if len(a.Zip) != 5 {
		return true
	}
	for i := 0; i < 5; i++ {
		if a.Zip[i] < '0' || a.Zip[i] > '9' {
			return true
		}
	}
	return false
}

// ZipRange flags well-formed zips whose prefix is not assigned to any known
// city (e.g. the "00…" prefixes the generator plants).
type ZipRange struct{}

// Name implements Rule.
func (ZipRange) Name() string { return "zip-range" }

// Check implements Rule.
func (ZipRange) Check(a dataset.Address) bool {
	if len(a.Zip) != 5 || (ZipFormat{}).Check(a) {
		return false
	}
	_, ok := zipPrefixCity[a.Zip[:3]]
	return !ok
}

// CityName flags city names absent from the reference table (misspellings;
// Figure 1: r3, r4).
type CityName struct{}

// Name implements Rule.
func (CityName) Name() string { return "city-name" }

// Check implements Rule.
func (CityName) Check(a dataset.Address) bool {
	if a.City == "" {
		return false
	}
	_, ok := knownCities[strings.ToLower(a.City)]
	return !ok
}

// StateCode flags state codes that do not match the reference state for
// the claimed city.
type StateCode struct{}

// Name implements Rule.
func (StateCode) Name() string { return "state-code" }

// Check implements Rule.
func (StateCode) Check(a dataset.Address) bool {
	if a.City == "" || a.State == "" {
		return false
	}
	want, ok := knownCities[strings.ToLower(a.City)]
	return ok && want != a.State
}

// ZipCityFD enforces the functional dependency zip → (city, state)
// (Figure 1: r1, r3, r6).
type ZipCityFD struct{}

// Name implements Rule.
func (ZipCityFD) Name() string { return "zip-city-fd" }

// Check implements Rule.
func (ZipCityFD) Check(a dataset.Address) bool {
	if len(a.Zip) != 5 || a.City == "" {
		return false
	}
	wantCity, ok := zipPrefixCity[a.Zip[:3]]
	if !ok {
		return false // ZipRange's job
	}
	return strings.ToLower(a.City) != wantCity
}

// BusinessKeyword flags street lines containing business-facility keywords
// (Figure 1: r5, "not a home address"). This is a heuristic rule — exactly
// the kind a careful engineer might add — and it still misses fabricated
// home-style addresses (r6).
type BusinessKeyword struct{}

// Name implements Rule.
func (BusinessKeyword) Name() string { return "business-keyword" }

var businessKeywords = []string{
	"warehouse", "distribution", "office park", "mall", "plaza",
	"storage", "industrial", "shopping center", "suite",
}

// Check implements Rule.
func (BusinessKeyword) Check(a dataset.Address) bool {
	line := strings.ToLower(a.Street + " " + a.Unit)
	for _, kw := range businessKeywords {
		if strings.Contains(line, kw) {
			return true
		}
	}
	return false
}

// AllRules returns the full rule catalog in a stable order.
func AllRules() []Rule {
	return []Rule{
		MissingValue{}, ZipFormat{}, ZipRange{}, CityName{}, StateCode{},
		ZipCityFD{}, BusinessKeyword{},
	}
}

// Detector applies a rule set to records and reports violations.
type Detector struct {
	Rules []Rule
}

// NewDetector builds a detector over the given rules (AllRules when empty).
func NewDetector(rs ...Rule) *Detector {
	if len(rs) == 0 {
		rs = AllRules()
	}
	return &Detector{Rules: rs}
}

// Violations returns the names of the rules record a violates (nil when
// clean under this rule set).
func (d *Detector) Violations(a dataset.Address) []string {
	var out []string
	for _, r := range d.Rules {
		if r.Check(a) {
			out = append(out, r.Name())
		}
	}
	return out
}

// Dirty reports whether any rule fires.
func (d *Detector) Dirty(a dataset.Address) bool {
	for _, r := range d.Rules {
		if r.Check(a) {
			return true
		}
	}
	return false
}

// Sweep runs the detector over a dataset and returns the flagged record
// indices.
func (d *Detector) Sweep(records []dataset.Address) []int {
	var out []int
	for i, a := range records {
		if d.Dirty(a) {
			out = append(out, i)
		}
	}
	return out
}
