package rules

import (
	"testing"

	"dqm/internal/dataset"
)

func cleanAddr() dataset.Address {
	return dataset.Address{
		Number: 123, Street: "N Alder St", City: "Portland", State: "OR", Zip: "97201",
	}
}

func TestMissingValue(t *testing.T) {
	r := MissingValue{}
	if r.Check(cleanAddr()) {
		t.Fatal("clean address flagged")
	}
	for _, mutate := range []func(*dataset.Address){
		func(a *dataset.Address) { a.Number = 0 },
		func(a *dataset.Address) { a.Street = "" },
		func(a *dataset.Address) { a.City = " " },
		func(a *dataset.Address) { a.State = "" },
		func(a *dataset.Address) { a.Zip = "" },
	} {
		a := cleanAddr()
		mutate(&a)
		if !r.Check(a) {
			t.Fatalf("missing field not flagged: %+v", a)
		}
	}
}

func TestZipFormat(t *testing.T) {
	r := ZipFormat{}
	if r.Check(cleanAddr()) {
		t.Fatal("clean zip flagged")
	}
	for _, zip := range []string{"9720", "972011", "972O1", "abcde"} {
		a := cleanAddr()
		a.Zip = zip
		if !r.Check(a) {
			t.Fatalf("bad zip %q not flagged", zip)
		}
	}
	// Empty zip is MissingValue's responsibility.
	a := cleanAddr()
	a.Zip = ""
	if r.Check(a) {
		t.Fatal("empty zip double-flagged by format rule")
	}
}

func TestZipRange(t *testing.T) {
	r := ZipRange{}
	if r.Check(cleanAddr()) {
		t.Fatal("Portland zip flagged")
	}
	a := cleanAddr()
	a.Zip = "00201" // out-of-range prefix planted by the generator
	if !r.Check(a) {
		t.Fatal("out-of-range prefix not flagged")
	}
	a.Zip = "9720X" // malformed → format rule's job
	if r.Check(a) {
		t.Fatal("malformed zip double-flagged by range rule")
	}
}

func TestCityNameAndStateCode(t *testing.T) {
	if (CityName{}).Check(cleanAddr()) {
		t.Fatal("known city flagged")
	}
	a := cleanAddr()
	a.City = "Portlnad"
	if !(CityName{}).Check(a) {
		t.Fatal("misspelled city not flagged")
	}
	b := cleanAddr()
	b.State = "WA"
	if !(StateCode{}).Check(b) {
		t.Fatal("wrong state not flagged")
	}
	if (StateCode{}).Check(cleanAddr()) {
		t.Fatal("correct state flagged")
	}
}

func TestZipCityFD(t *testing.T) {
	r := ZipCityFD{}
	if r.Check(cleanAddr()) {
		t.Fatal("consistent zip/city flagged")
	}
	a := cleanAddr()
	a.City = "Seattle"
	a.State = "WA"
	if !r.Check(a) {
		t.Fatal("FD violation (Portland zip, Seattle city) not flagged")
	}
}

func TestBusinessKeyword(t *testing.T) {
	r := BusinessKeyword{}
	if r.Check(cleanAddr()) {
		t.Fatal("home address flagged as business")
	}
	a := cleanAddr()
	a.Street = "Alder Distribution Center"
	if !r.Check(a) {
		t.Fatal("business address not flagged")
	}
	b := cleanAddr()
	b.Unit = "Suite 400"
	if !r.Check(b) {
		t.Fatal("suite unit not flagged")
	}
}

func TestDetectorAgainstGenerator(t *testing.T) {
	data := dataset.GenerateAddresses(dataset.AddressConfig{Seed: 11})
	det := NewDetector()

	flagged := det.Sweep(data.Records)
	tp, fp := data.Truth.CountErrors(flagged)

	// The rules must be clean-safe: no false positives on generated records
	// (every rule encodes a true constraint of the domain).
	if fp != 0 {
		for _, i := range flagged {
			if !data.Truth.IsDirty(i) {
				t.Logf("false positive %d: %v -> %v", i, data.Records[i], det.Violations(data.Records[i]))
			}
		}
		t.Fatalf("%d false positives from the rule detector", fp)
	}
	// Rules catch a substantial share…
	if tp < data.Truth.NumDirty()/2 {
		t.Fatalf("rules caught only %d/%d errors", tp, data.Truth.NumDirty())
	}
	// …but are structurally blind to the fake-valid long tail (the paper's
	// point: the rule set is incomplete).
	missed := 0
	fakeMissed := 0
	flaggedSet := make(map[int]bool, len(flagged))
	for _, i := range flagged {
		flaggedSet[i] = true
	}
	for i, a := range data.Records {
		if data.Truth.IsDirty(i) && !flaggedSet[i] {
			missed++
			if a.Kind == dataset.AddressFakeValid {
				fakeMissed++
			}
		}
	}
	if missed == 0 {
		t.Fatal("rule set unexpectedly complete; the long tail disappeared")
	}
	if fakeMissed == 0 {
		t.Fatal("expected fake-valid addresses among the misses")
	}
}

func TestDetectorViolationNames(t *testing.T) {
	a := cleanAddr()
	a.City = "Seattle" // FD violation AND wrong state for the zip
	v := NewDetector().Violations(a)
	found := false
	for _, name := range v {
		if name == "zip-city-fd" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want zip-city-fd", v)
	}
	if len(NewDetector().Violations(cleanAddr())) != 0 {
		t.Fatal("clean address has violations")
	}
}

func TestAllRulesStable(t *testing.T) {
	a, b := AllRules(), AllRules()
	if len(a) != len(b) || len(a) < 6 {
		t.Fatalf("rule catalog unstable or too small: %d", len(a))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatal("catalog order unstable")
		}
		if seen[a[i].Name()] {
			t.Fatalf("duplicate rule name %q", a[i].Name())
		}
		seen[a[i].Name()] = true
	}
}
