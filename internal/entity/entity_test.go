package entity

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewPairCanonical(t *testing.T) {
	if p := NewPair(3, 1); p.A != 1 || p.B != 3 {
		t.Fatalf("NewPair(3,1) = %v", p)
	}
	if p := NewPair(1, 3); p.A != 1 || p.B != 3 {
		t.Fatalf("NewPair(1,3) = %v", p)
	}
}

func TestNewPairPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self pair did not panic")
		}
	}()
	NewPair(2, 2)
}

func TestNumPairs(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {858, 858 * 857 / 2},
	}
	for _, tt := range tests {
		if got := NumPairs(tt.n); got != tt.want {
			t.Fatalf("NumPairs(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestAllPairs(t *testing.T) {
	var got []Pair
	AllPairs(4, func(p Pair) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("AllPairs(4) yielded %d pairs", len(got))
	}
	// Lexicographic order, canonical form.
	for i, p := range got {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
		if i > 0 {
			prev := got[i-1]
			if prev.A > p.A || (prev.A == p.A && prev.B >= p.B) {
				t.Fatalf("out of order: %v then %v", prev, p)
			}
		}
	}
	// Early stop.
	count := 0
	AllPairs(10, func(Pair) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d pairs", count)
	}
}

func TestPairIndexRoundTrip(t *testing.T) {
	prop := func(nRaw, aRaw, bRaw uint16) bool {
		n := int(nRaw%200) + 2
		a := int(aRaw) % n
		b := int(bRaw) % n
		if a == b {
			b = (b + 1) % n
		}
		p := NewPair(a, b)
		idx := PairIndex(n, p)
		if idx < 0 || idx >= NumPairs(n) {
			return false
		}
		return PairFromIndex(n, idx) == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPairIndexDense(t *testing.T) {
	// Indices must enumerate 0..NumPairs-1 exactly once in AllPairs order.
	const n = 12
	next := 0
	AllPairs(n, func(p Pair) bool {
		if got := PairIndex(n, p); got != next {
			t.Fatalf("PairIndex(%v) = %d, want %d", p, got, next)
		}
		next++
		return true
	})
	if next != NumPairs(n) {
		t.Fatalf("enumerated %d pairs", next)
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(6)
	if !u.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if u.Union(1, 0) {
		t.Fatal("repeated union reported merge")
	}
	u.Union(1, 2)
	u.Union(4, 5)
	if u.Find(0) != u.Find(2) {
		t.Fatal("transitive union broken")
	}
	if u.Find(3) == u.Find(0) {
		t.Fatal("separate sets merged")
	}
	clusters := u.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if len(clusters[0]) != 3 || clusters[0][0] != 0 {
		t.Fatalf("first cluster = %v", clusters[0])
	}
	if len(clusters[1]) != 2 || clusters[1][0] != 4 {
		t.Fatalf("second cluster = %v", clusters[1])
	}
}

func TestCanonicalDuplicatePairs(t *testing.T) {
	// The paper's example: {q1−q2, q1−q4, q2−q1, q2−q4} ↦ {q1−q2, q1−q4}.
	matches := []Pair{
		NewPair(1, 2), NewPair(1, 4), NewPair(2, 1), NewPair(2, 4),
	}
	got := CanonicalDuplicatePairs(5, matches)
	if len(got) != 2 {
		t.Fatalf("canonical pairs = %v", got)
	}
	if got[0] != (Pair{A: 1, B: 2}) || got[1] != (Pair{A: 1, B: 4}) {
		t.Fatalf("canonical pairs = %v", got)
	}
	// A cluster of size k contributes exactly k−1 pairs.
	big := CanonicalDuplicatePairs(10, []Pair{
		NewPair(0, 1), NewPair(1, 2), NewPair(2, 3), NewPair(5, 6),
	})
	if len(big) != 4 { // cluster {0,1,2,3} → 3 pairs; {5,6} → 1
		t.Fatalf("canonical pairs = %v", big)
	}
}

func TestBlockerFindsTokenSharers(t *testing.T) {
	keys := []string{
		"Golden Dragon Cafe",
		"Dragon Palace",
		"Blue Lagoon",
		"Lagoon Grill",
		"Unrelated Eatery",
	}
	pairs := Blocker{}.CandidatePairs(keys)
	has := func(a, b int) bool {
		for _, p := range pairs {
			if p == NewPair(a, b) {
				return true
			}
		}
		return false
	}
	if !has(0, 1) {
		t.Fatal("missing dragon pair")
	}
	if !has(2, 3) {
		t.Fatal("missing lagoon pair")
	}
	if has(0, 4) || has(1, 4) {
		t.Fatal("blocked pair without shared token")
	}
	// Deduplicated and sorted.
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatalf("pairs unsorted or duplicated: %v then %v", a, b)
		}
	}
}

func TestBlockerMaxBlockSize(t *testing.T) {
	// 100 records all sharing one stop-word token: a max block size of 10
	// must suppress the quadratic blow-up entirely.
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = "common"
	}
	pairs := Blocker{MaxBlockSize: 10}.CandidatePairs(keys)
	if len(pairs) != 0 {
		t.Fatalf("oversized block produced %d pairs", len(pairs))
	}
}

func TestBipartiteCandidatePairs(t *testing.T) {
	left := []string{"adobe photoshop", "corel draw"}
	right := []string{"photoshop elements", "unrelated thing"}
	pairs := Blocker{}.BipartiteCandidatePairs(left, right)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Right ids offset by len(left); only cross-catalog pairs.
	if pairs[0].A != 0 || pairs[0].B != 2 {
		t.Fatalf("pair = %v", pairs[0])
	}
}

func TestBipartiteNoSameSidePairs(t *testing.T) {
	left := []string{"alpha beta", "beta gamma"}
	right := []string{"delta"}
	pairs := Blocker{}.BipartiteCandidatePairs(left, right)
	for _, p := range pairs {
		if p.A >= len(left) || p.B < len(left) {
			t.Fatalf("same-side pair %v", p)
		}
	}
	if len(pairs) != 0 {
		t.Fatalf("no cross tokens shared, got %v", pairs)
	}
}

func TestUnionFindRandomizedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 40
	u := NewUnionFind(n)
	naive := make([]int, n) // component labels by exhaustive relabeling
	for i := range naive {
		naive[i] = i
	}
	for step := 0; step < 200; step++ {
		a, b := rng.IntN(n), rng.IntN(n)
		if a == b {
			continue
		}
		u.Union(a, b)
		la, lb := naive[a], naive[b]
		for i := range naive {
			if naive[i] == lb {
				naive[i] = la
			}
		}
		// Spot-check equivalence of the partitions.
		x, y := rng.IntN(n), rng.IntN(n)
		if (u.Find(x) == u.Find(y)) != (naive[x] == naive[y]) {
			t.Fatalf("step %d: partition mismatch for %d,%d", step, x, y)
		}
	}
}
