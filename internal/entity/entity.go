// Package entity implements the entity-resolution substrate of Section 2.1:
// the pair space R = Q×Q over a relation Q, canonical pair handling (the
// paper removes commutative and transitive relations to avoid
// double-counting), and blocking-based candidate generation so that the
// product-scale pair space (1363×2336 ≈ 3.2M pairs) never has to be
// materialized with full similarity evaluation.
package entity

import (
	"fmt"
	"sort"

	"dqm/internal/similarity"
)

// Pair is a canonical unordered record pair: A < B always holds.
type Pair struct {
	A, B int
}

// NewPair canonicalizes (a, b); it panics on a == b, which is not a valid
// entity-resolution comparison.
func NewPair(a, b int) Pair {
	if a == b {
		panic(fmt.Sprintf("entity: self-pair (%d,%d)", a, b))
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// NumPairs returns N(N−1)/2, the canonical pair-space size over n records.
func NumPairs(n int) int {
	return n * (n - 1) / 2
}

// AllPairs enumerates every canonical pair over n records in lexicographic
// order, calling fn for each; fn returning false stops the enumeration.
func AllPairs(n int, fn func(Pair) bool) {
	for a := 0; a < n-1; a++ {
		for b := a + 1; b < n; b++ {
			if !fn(Pair{A: a, B: b}) {
				return
			}
		}
	}
}

// PairIndex maps a canonical pair over n records to a dense index in
// [0, NumPairs(n)), the item id used by the response matrix.
func PairIndex(n int, p Pair) int {
	// Offset of row A: pairs (0,·)+(1,·)+…+(A−1,·) = A·n − A(A+1)/2.
	return p.A*n - p.A*(p.A+1)/2 + (p.B - p.A - 1)
}

// PairFromIndex inverts PairIndex.
func PairFromIndex(n, idx int) Pair {
	a := 0
	for {
		rowLen := n - a - 1
		if idx < rowLen {
			return Pair{A: a, B: a + 1 + idx}
		}
		idx -= rowLen
		a++
	}
}

// UnionFind supports transitive-closure deduplication: a set of matched
// pairs like {q1−q2, q2−q4} collapses to one cluster, from which the
// canonical duplicate-pair set is derived without double counting.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the canonical representative of x with path compression.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Clusters groups item ids by representative, returning only clusters of
// size ≥ 2 (actual duplicate groups), each sorted.
func (u *UnionFind) Clusters() [][]int {
	groups := make(map[int][]int)
	for i := range u.parent {
		groups[u.Find(i)] = append(groups[u.Find(i)], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CanonicalDuplicatePairs reduces a set of raw matched pairs to the
// canonical duplicate-pair set of Section 2.1: transitive matches collapse
// into clusters and each cluster of size k contributes its spanning k−1
// pairs anchored at the smallest element — mirroring the paper's example
// {q1−q2, q1−q4, q2−q1, q2−q4} ↦ {q1−q2, q1−q4}.
func CanonicalDuplicatePairs(n int, matches []Pair) []Pair {
	u := NewUnionFind(n)
	for _, p := range matches {
		u.Union(p.A, p.B)
	}
	var out []Pair
	for _, cluster := range u.Clusters() {
		anchor := cluster[0]
		for _, other := range cluster[1:] {
			out = append(out, Pair{A: anchor, B: other})
		}
	}
	return out
}

// Blocker builds candidate pairs via token blocking: records sharing at
// least one (sufficiently rare) token are compared; everything else is
// pruned without similarity evaluation. This is how the product catalogs
// stay tractable.
type Blocker struct {
	// MaxBlockSize skips tokens shared by more records than this (stop-word
	// style tokens generate quadratic garbage). 0 means 64.
	MaxBlockSize int
}

// CandidatePairs returns the deduplicated candidate pairs among keys, where
// keys[i] is the comparable surface form of record i.
func (b Blocker) CandidatePairs(keys []string) []Pair {
	maxBlock := b.MaxBlockSize
	if maxBlock == 0 {
		maxBlock = 64
	}
	blocks := make(map[string][]int)
	for i, k := range keys {
		seen := make(map[string]struct{})
		for _, tok := range similarity.Tokenize(k) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			blocks[tok] = append(blocks[tok], i)
		}
	}
	pairSet := make(map[Pair]struct{})
	for _, ids := range blocks {
		if len(ids) < 2 || len(ids) > maxBlock {
			continue
		}
		for x := 0; x < len(ids)-1; x++ {
			for y := x + 1; y < len(ids); y++ {
				pairSet[NewPair(ids[x], ids[y])] = struct{}{}
			}
		}
	}
	out := make([]Pair, 0, len(pairSet))
	for p := range pairSet {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// BipartiteCandidatePairs blocks across two key sets (e.g. Amazon × Google):
// only cross-catalog pairs are produced. Pair.A indexes left, Pair.B indexes
// right offset by len(left), keeping a single id space.
func (b Blocker) BipartiteCandidatePairs(left, right []string) []Pair {
	maxBlock := b.MaxBlockSize
	if maxBlock == 0 {
		maxBlock = 64
	}
	type blockSides struct{ l, r []int }
	blocks := make(map[string]*blockSides)
	index := func(keys []string, side func(*blockSides) *[]int) {
		for i, k := range keys {
			seen := make(map[string]struct{})
			for _, tok := range similarity.Tokenize(k) {
				if _, dup := seen[tok]; dup {
					continue
				}
				seen[tok] = struct{}{}
				bs := blocks[tok]
				if bs == nil {
					bs = &blockSides{}
					blocks[tok] = bs
				}
				s := side(bs)
				*s = append(*s, i)
			}
		}
	}
	index(left, func(bs *blockSides) *[]int { return &bs.l })
	index(right, func(bs *blockSides) *[]int { return &bs.r })

	offset := len(left)
	pairSet := make(map[Pair]struct{})
	for _, bs := range blocks {
		if len(bs.l) == 0 || len(bs.r) == 0 || len(bs.l)*len(bs.r) > maxBlock*maxBlock {
			continue
		}
		for _, li := range bs.l {
			for _, ri := range bs.r {
				pairSet[Pair{A: li, B: offset + ri}] = struct{}{}
			}
		}
	}
	out := make([]Pair, 0, len(pairSet))
	for p := range pairSet {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
