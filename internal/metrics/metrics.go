// Package metrics is the zero-dependency observability plane under the DQM
// engine, WAL and HTTP layers: atomic counters, gauges and fixed-bucket
// histograms, collected in registries and exposed in the Prometheus text
// format (version 0.0.4).
//
// The package exists because the system's hot paths are allocation-free and
// must stay that way when instrumented: every instrument is a plain struct of
// atomics, Observe/Add/Inc never allocate, never take a lock and never touch
// a map, so a counter bump on the ingest path costs one atomic add. All the
// bookkeeping (names, labels, exposition ordering) happens at registration
// time or scrape time, both cold.
//
// Instruments register into a Registry keyed by (name, label set);
// registering the same key twice returns the same instrument, so package-level
// instrument variables across packages compose onto the shared Default
// registry without init-order coupling. Scrapes walk the registry sorted by
// family name and label signature, so exposition output is deterministic.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry that package-level instruments in
// internal/engine and internal/wal register into; cmd/dqm-serve scrapes it
// alongside its own server-scoped registry.
var Default = NewRegistry()

// Label is one name="value" pair attached to an instrument at registration.
type Label struct {
	Name  string
	Value string
}

// DurationBuckets spans the latencies this system produces — sub-microsecond
// cached reads, tens-of-microseconds appends, millisecond fsyncs, second-scale
// slow requests — in a roughly-logarithmic ladder (seconds).
var DurationBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6, 2.5e-3, 10e-3, 50e-3, 250e-3, 1, 5,
}

// Counter is a monotonically increasing value. The zero value is usable, but
// instruments are normally obtained from a Registry so they are scraped.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. Observe is
// lock-free and allocation-free: one atomic add on the bucket plus a CAS loop
// folding the value into the running sum.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending; the
	// implicit final bucket is +Inf.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    atomic.Uint64   // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	// Linear scan: bucket ladders are ~a dozen wide and the scan is
	// branch-predictable, which beats binary search at this size.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one labeled instrument inside a family.
type series struct {
	labels []Label // sorted by name
	inst   any     // *Counter | *Gauge | func() float64 | *Histogram
}

// family groups every series of one metric name.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	// series is keyed by the canonical label signature.
	series map[string]*series
}

// Registry holds instruments and renders them. All methods are safe for
// concurrent use; the registry lock is never touched by the instruments
// themselves.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey builds the canonical `{a="x",b="y"}` signature (sorted, escaped);
// empty labels yield "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the instrument under (name, labels), creating it with
// build on first registration. It panics when the name is already registered
// as a different metric type — that is a programming error, not input.
func (r *Registry) register(name, help, typ string, labels []Label, build func() any) any {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, k int) bool { return ls[i].Name < ls[k].Name })
	key := labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-registered as %s", name, f.typ, typ))
	}
	if s, ok := f.series[key]; ok {
		return s.inst
	}
	s := &series{labels: ls, inst: build()}
	f.series[key] = s
	return s.inst
}

// Counter returns the counter registered under (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under (name, labels). It panics when
// the series already exists as a callback gauge (GaugeFunc) — the two share
// the exposition type but not a settable instrument.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g, ok := r.register(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %s registered as a callback gauge (GaugeFunc), re-requested as a settable Gauge", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// for values the system already tracks elsewhere (live sessions, uptime).
// Re-registering the same (name, labels) keeps the first function; it panics
// when the series already exists as a settable Gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.register(name, help, "gauge", labels, func() any { return fn })
	if _, ok := inst.(func() float64); !ok {
		panic(fmt.Sprintf("metrics: %s registered as a settable Gauge, re-requested as a callback gauge (GaugeFunc)", name))
	}
}

// Histogram returns the histogram registered under (name, labels) with the
// given bucket upper bounds (ascending; +Inf is implicit). The bounds of the
// first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.register(name, help, "histogram", labels, func() any {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: %s: bucket bounds not ascending", name))
			}
		}
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}).(*Histogram)
}

// Value returns the current value of the series under (name, labels):
// counters and gauges report their value, histograms their observation count.
// It reports false when no such series exists.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, k int) bool { return ls[i].Name < ls[k].Name })
	r.mu.Lock()
	f, ok := r.families[name]
	var s *series
	if ok {
		s, ok = f.series[labelKey(ls)]
	}
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch inst := s.inst.(type) {
	case *Counter:
		return float64(inst.Value()), true
	case *Gauge:
		return float64(inst.Value()), true
	case func() float64:
		return inst(), true
	case *Histogram:
		return float64(inst.Count()), true
	}
	return 0, false
}

// HistogramStats returns the observation count and sum of the histogram under
// (name, labels) — enough to derive a mean, which is what periodic stats
// lines want from a histogram. It reports false when no such series exists or
// the series is not a histogram.
func (r *Registry) HistogramStats(name string, labels ...Label) (count uint64, sum float64, ok bool) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, k int) bool { return ls[i].Name < ls[k].Name })
	r.mu.Lock()
	f, ok := r.families[name]
	var s *series
	if ok {
		s, ok = f.series[labelKey(ls)]
	}
	r.mu.Unlock()
	if !ok {
		return 0, 0, false
	}
	h, ok := s.inst.(*Histogram)
	if !ok {
		return 0, 0, false
	}
	return h.Count(), h.Sum(), true
}

// fmtFloat renders a float in the exposition format (shortest round-trip).
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition format,
// sorted by family name and label signature so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the series lists under the lock; values are read lock-free
	// afterwards (atomics — a scrape concurrent with ingest sees a consistent
	// enough cut, as Prometheus clients do).
	type flatSeries struct {
		key string
		s   *series
	}
	type flatFamily struct {
		f      *family
		series []flatSeries
	}
	fams := make([]flatFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ff := flatFamily{f: f, series: make([]flatSeries, 0, len(f.series))}
		for key, s := range f.series {
			ff.series = append(ff.series, flatSeries{key: key, s: s})
		}
		sort.Slice(ff.series, func(i, k int) bool { return ff.series[i].key < ff.series[k].key })
		fams = append(fams, ff)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, ff := range fams {
		f := ff.f
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, fs := range ff.series {
			switch inst := fs.s.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, fs.key, inst.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, fs.key, inst.Value())
			case func() float64:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, fs.key, fmtFloat(inst()))
			case *Histogram:
				writeHistogram(&b, f.name, fs.s.labels, inst)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative le-labeled buckets,
// then _sum and _count.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	var cum uint64
	scratch := make([]Label, len(labels), len(labels)+1)
	copy(scratch, labels)
	for i := range h.counts {
		bound := math.Inf(+1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		cum += h.counts[i].Load()
		// le joins the sorted label set out of order, which the format allows;
		// keeping it last matches common practice.
		key := labelKey(append(scratch, Label{Name: "le", Value: fmtFloat(bound)}))
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, key, cum)
	}
	key := labelKey(labels)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, key, fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, cum)
}

// Handler serves the given registries concatenated — typically the Default
// registry (engine + WAL instruments) followed by a server-scoped one.
// Families must not be split across registries: each name belongs to one.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}
