package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden locks the exposition format byte-for-byte: families
// sorted by name, series by label signature, histograms as cumulative
// le-buckets plus _sum/_count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_votes_total", "Votes ingested.").Add(42)
	r.Counter("test_requests_total", "Requests.", Label{"route", "estimates"}, Label{"code", "200"}).Add(3)
	r.Counter("test_requests_total", "Requests.", Label{"route", "votes"}, Label{"code", "200"}).Inc()
	r.Gauge("test_sessions", "Live sessions.").Set(7)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 2
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 9.51
test_latency_seconds_count 4
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{code="200",route="estimates"} 3
test_requests_total{code="200",route="votes"} 1
# HELP test_sessions Live sessions.
# TYPE test_sessions gauge
test_sessions 7
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 1.5
# HELP test_votes_total Votes ingested.
# TYPE test_votes_total counter
test_votes_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketMath pins the bucket assignment rules: bounds are
// inclusive upper bounds, values above the last bound land in +Inf only, and
// the rendered buckets are cumulative.
func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", "m.", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 2, 2.0001, 4, 5, 100} {
		h.Observe(v)
	}
	// Raw (non-cumulative) per-bucket counts: (-inf,1]=2, (1,2]=2, (2,4]=2, (4,inf)=2.
	for i, want := range []uint64{2, 2, 2, 2} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if got, want := h.Count(), uint64(8); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 0.0+1+1.5+2+2.0001+4+5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	h.ObserveSince(time.Now().Add(-3 * time.Second))
	if got := h.counts[2].Load(); got != 3 {
		t.Errorf("ObserveSince(-3s) bucket (2,4] = %d, want 3", got)
	}
}

// TestRegisterIdempotent: same (name, labels) returns the same instrument
// regardless of label order; a type clash panics.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "c.", Label{"x", "1"}, Label{"y", "2"})
	b := r.Counter("c", "c.", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if v, ok := r.Value("c", Label{"y", "2"}, Label{"x", "1"}); !ok || v != 1 {
		t.Errorf("Value = %v, %v", v, ok)
	}
	if _, ok := r.Value("c", Label{"x", "1"}); ok {
		t.Error("Value matched a different label set")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("c", "c.")
}

// TestGaugeKindMismatchPanics: Gauge and GaugeFunc share the exposition type
// but not an instrument; crossing them must fail with a clear message, not an
// interface-conversion panic at the call site.
func TestGaugeKindMismatchPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s did not panic", name)
			} else if !strings.Contains(fmt.Sprint(r), "gauge") {
				t.Errorf("%s panic message unhelpful: %v", name, r)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.GaugeFunc("gf", "gf.", func() float64 { return 1 })
	expectPanic("Gauge after GaugeFunc", func() { r.Gauge("gf", "gf.") })
	r.Gauge("gs", "gs.")
	expectPanic("GaugeFunc after Gauge", func() { r.GaugeFunc("gs", "gs.", func() float64 { return 1 }) })
}

// TestLabelEscaping: quotes, backslashes and newlines in label values must
// not corrupt the format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "e.", Label{"v", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaped series missing:\n%s", b.String())
	}
}

// TestHandler serves the concatenation of multiple registries with the
// exposition content type.
func TestHandler(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("one_total", "one.").Inc()
	r2.Gauge("two", "two.").Set(2)
	rec := httptest.NewRecorder()
	Handler(r1, r2).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	for _, want := range []string{"one_total 1", "two 2"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines while scraping; run under -race this is the data-race check, and
// the final counts must be exact (no lost updates).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "cc.")
	h := r.Histogram("hh", "hh.", DurationBuckets)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 1e-6)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// BenchmarkCounterInc and BenchmarkHistogramObserve pin the hot-path cost:
// both must be allocation-free (the ingest and WAL paths rely on it).
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("b_total", "b.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("b", "b.", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
