// Package algoclean implements the paper's §8 extension: instead of
// semi-independent crowd workers, run several semi-independent *automatic*
// cleaning algorithms and estimate how many errors remain after all of them
// have passed over the data.
//
// Each algorithm is a deterministic Judge over the item space. Judges make
// systematic (not stochastic) mistakes — an over-strict rule produces false
// positives on every record it misreads, an incomplete rule set produces
// false negatives on every record outside its coverage. The committee's
// judgments are packaged as ordinary crowd tasks (one "worker" per judge),
// so the whole estimator stack applies unchanged: the diminishing return of
// adding one more cleaning algorithm is exactly the diminishing return of
// adding one more worker.
package algoclean

import (
	"fmt"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/rules"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Judge is one deterministic cleaning algorithm: it inspects item i and
// declares it dirty or clean.
type Judge interface {
	Name() string
	Judge(item int) votes.Label
}

type funcJudge struct {
	name string
	fn   func(int) votes.Label
}

func (j funcJudge) Name() string               { return j.name }
func (j funcJudge) Judge(item int) votes.Label { return j.fn(item) }

// New wraps a function as a Judge.
func New(name string, fn func(item int) votes.Label) Judge {
	return funcJudge{name: name, fn: fn}
}

// ThresholdJudge builds a similarity-threshold classifier: item i is dirty
// when score(i) ≥ threshold. This is the entity-resolution flavor of an
// algorithmic cleaner (CrowdER's first stage run to completion).
func ThresholdJudge(name string, score func(item int) float64, threshold float64) Judge {
	return New(name, func(item int) votes.Label {
		if score(item) >= threshold {
			return votes.Dirty
		}
		return votes.Clean
	})
}

// RuleJudge builds a Judge from a rule subset over address records: item i
// is dirty when any of the rules fires on records[i]. Different subsets
// yield semi-independent detectors with different coverage — the
// algorithmic analogue of workers with different internal rules (§2.1).
func RuleJudge(name string, records []dataset.Address, rs ...rules.Rule) Judge {
	det := rules.NewDetector(rs...)
	return New(name, func(item int) votes.Label {
		if det.Dirty(records[item]) {
			return votes.Dirty
		}
		return votes.Clean
	})
}

// Committee is an ordered set of cleaning algorithms.
type Committee struct {
	Judges []Judge
}

// NewCommittee assembles a committee; it panics on an empty judge list.
func NewCommittee(judges ...Judge) *Committee {
	if len(judges) == 0 {
		panic("algoclean: empty committee")
	}
	return &Committee{Judges: judges}
}

// Size returns the number of algorithms.
func (c *Committee) Size() int { return len(c.Judges) }

// WorkerID returns the pseudo-worker id used for judge j in emitted tasks.
func (c *Committee) WorkerID(j int) int { return j }

// JudgeAll runs judge j over the whole item space and returns the flagged
// item ids.
func (c *Committee) JudgeAll(j, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if c.Judges[j].Judge(i) == votes.Dirty {
			out = append(out, i)
		}
	}
	return out
}

// Tasks converts one full pass of every judge over n items into a stream of
// crowd tasks of itemsPerTask items each. Each judge's pass is chunked over
// a shuffled copy of the item space and the resulting tasks are interleaved
// at random, mirroring how a pipeline would schedule algorithm runs. The
// rng only permutes order; judgments themselves are deterministic.
func (c *Committee) Tasks(n, itemsPerTask int, rng *xrand.RNG) []crowd.Task {
	if n <= 0 || itemsPerTask <= 0 {
		panic(fmt.Sprintf("algoclean: invalid task shape n=%d items/task=%d", n, itemsPerTask))
	}
	var tasks []crowd.Task
	for j, judge := range c.Judges {
		order := rng.Perm(n)
		for start := 0; start < n; start += itemsPerTask {
			end := start + itemsPerTask
			if end > n {
				end = n
			}
			chunk := order[start:end]
			labels := make([]votes.Label, len(chunk))
			for k, item := range chunk {
				labels[k] = judge.Judge(item)
			}
			tasks = append(tasks, crowd.Task{
				Worker: c.WorkerID(j),
				Items:  append([]int(nil), chunk...),
				Labels: labels,
			})
		}
	}
	rng.Shuffle(len(tasks), func(a, b int) { tasks[a], tasks[b] = tasks[b], tasks[a] })
	return tasks
}

// Consensus runs every judge over the item space and returns the strict
// majority verdicts — the "infinite resources" endpoint for this committee.
// Unlike crowds, a committee is finite: what the majority of algorithms
// cannot see stays invisible, which is why the remaining-error estimate
// matters (it quantifies how far the current consensus is from where more
// algorithms would take it).
func (c *Committee) Consensus(n int) []bool {
	counts := make([]int, n)
	for j := range c.Judges {
		for _, item := range c.JudgeAll(j, n) {
			counts[item]++
		}
	}
	out := make([]bool, n)
	for i, k := range counts {
		out[i] = 2*k > len(c.Judges)
	}
	return out
}
