package algoclean

import (
	"testing"

	"dqm/internal/dataset"
	"dqm/internal/rules"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

func TestFuncJudge(t *testing.T) {
	j := New("even-dirty", func(i int) votes.Label {
		if i%2 == 0 {
			return votes.Dirty
		}
		return votes.Clean
	})
	if j.Name() != "even-dirty" {
		t.Fatalf("name = %q", j.Name())
	}
	if j.Judge(2) != votes.Dirty || j.Judge(3) != votes.Clean {
		t.Fatal("judgments wrong")
	}
}

func TestThresholdJudge(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9}
	j := ThresholdJudge("thr", func(i int) float64 { return scores[i] }, 0.5)
	if j.Judge(0) != votes.Clean || j.Judge(1) != votes.Dirty || j.Judge(2) != votes.Dirty {
		t.Fatal("threshold judgments wrong")
	}
}

func TestRuleJudge(t *testing.T) {
	records := []dataset.Address{
		{Number: 1, Street: "N Alder St", City: "Portland", State: "OR", Zip: "97201"},
		{Number: 1, Street: "N Alder St", City: "Portland", State: "OR", Zip: "9720"},
	}
	j := RuleJudge("zip", records, rules.ZipFormat{})
	if j.Judge(0) != votes.Clean {
		t.Fatal("clean record flagged")
	}
	if j.Judge(1) != votes.Dirty {
		t.Fatal("bad zip not flagged")
	}
}

func TestCommitteeTasksCoverEveryJudgeItemPair(t *testing.T) {
	c := NewCommittee(
		New("all-dirty", func(int) votes.Label { return votes.Dirty }),
		New("all-clean", func(int) votes.Label { return votes.Clean }),
	)
	const n, perTask = 23, 5
	tasks := c.Tasks(n, perTask, xrand.New(1))

	// Every (judge, item) pair appears exactly once.
	seen := map[[2]int]int{}
	for _, task := range tasks {
		if len(task.Items) > perTask {
			t.Fatalf("task of %d items", len(task.Items))
		}
		for i, item := range task.Items {
			seen[[2]int{task.Worker, item}]++
			// Labels match the judge deterministically.
			want := votes.Dirty
			if task.Worker == 1 {
				want = votes.Clean
			}
			if task.Labels[i] != want {
				t.Fatalf("judge %d mislabeled item %d", task.Worker, item)
			}
		}
	}
	if len(seen) != 2*n {
		t.Fatalf("covered %d judge-item pairs, want %d", len(seen), 2*n)
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("pair %v judged %d times", k, v)
		}
	}
}

func TestCommitteeTasksPanics(t *testing.T) {
	c := NewCommittee(New("x", func(int) votes.Label { return votes.Clean }))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	c.Tasks(0, 5, xrand.New(1))
}

func TestNewCommitteePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty committee did not panic")
		}
	}()
	NewCommittee()
}

func TestConsensus(t *testing.T) {
	dirtyBelow := func(k int) Judge {
		return New("below", func(i int) votes.Label {
			if i < k {
				return votes.Dirty
			}
			return votes.Clean
		})
	}
	// Three judges flag items <4, <6, <2: strict majority flags <4.
	c := NewCommittee(dirtyBelow(4), dirtyBelow(6), dirtyBelow(2))
	got := c.Consensus(8)
	for i := 0; i < 8; i++ {
		want := i < 4
		if got[i] != want {
			t.Fatalf("consensus[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestJudgeAll(t *testing.T) {
	c := NewCommittee(New("odd", func(i int) votes.Label {
		if i%2 == 1 {
			return votes.Dirty
		}
		return votes.Clean
	}))
	got := c.JudgeAll(0, 6)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("JudgeAll = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("JudgeAll = %v, want %v", got, want)
		}
	}
}

// TestCommitteeEndToEnd drives rule-based judges through the estimator
// stack: the committee's diminishing returns behave like worker votes.
func TestCommitteeEndToEnd(t *testing.T) {
	data := dataset.GenerateAddresses(dataset.AddressConfig{Records: 400, Errors: 40, Seed: 13})
	c := NewCommittee(
		RuleJudge("structural", data.Records, rules.MissingValue{}, rules.ZipFormat{}),
		RuleJudge("reference", data.Records, rules.CityName{}, rules.StateCode{}, rules.ZipRange{}),
		RuleJudge("fd", data.Records, rules.ZipCityFD{}),
		RuleJudge("business", data.Records, rules.BusinessKeyword{}),
		RuleJudge("full", data.Records),
	)
	m := votes.NewMatrix(len(data.Records))
	for _, task := range c.Tasks(len(data.Records), 10, xrand.New(2)) {
		for _, v := range task.Votes() {
			m.Add(v)
		}
	}
	// The committee consensus must be clean-safe (rules have no FPs on
	// generated data) and must catch a majority-detectable subset.
	if m.Majority() == 0 {
		t.Fatal("committee found nothing")
	}
	if m.Majority() > int64(data.Truth.NumDirty()) {
		t.Fatalf("majority %d exceeds true errors %d", m.Majority(), data.Truth.NumDirty())
	}
	// Nominal ≥ majority: single strict judges flag more than the quorum.
	if m.Nominal() < m.Majority() {
		t.Fatal("nominal below majority")
	}
}
