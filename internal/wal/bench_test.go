package wal

import (
	"fmt"
	"testing"
	"time"

	"dqm/internal/votes"
)

// BenchmarkJournalAppend measures raw journal throughput per fsync policy,
// appending 1000-vote tasks (the group-commit unit the engine hands down).
// Compare against BenchmarkEngineAppend in internal/engine for the in-memory
// baseline the acceptance criteria reference.
func BenchmarkJournalAppend(b *testing.B) {
	const batchSize = 1000
	batch := make([]votes.Vote, batchSize)
	for i := range batch {
		label := votes.Clean
		if i%3 == 0 {
			label = votes.Dirty
		}
		batch[i] = votes.Vote{Item: i % 512, Worker: i % 25, Label: label}
	}
	for _, p := range []FsyncPolicy{FsyncNever, FsyncBatch, FsyncAlways} {
		b.Run(p.String(), func(b *testing.B) {
			s, err := OpenStore(b.TempDir(), Options{Fsync: p, BatchInterval: 100 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			j, err := s.Create(Meta{ID: fmt.Sprintf("bench-%s", p), Items: 512, CreatedAt: time.Now()})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(batch, true); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			votesPerSec := float64(b.N) * batchSize / b.Elapsed().Seconds()
			b.ReportMetric(votesPerSec/1e6, "Mvotes/s")
		})
	}
}
