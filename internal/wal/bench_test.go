package wal

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dqm/internal/votes"
)

// BenchmarkJournalAppend measures raw journal throughput per fsync policy,
// appending 1000-vote tasks (the group-commit unit the engine hands down).
// Compare against BenchmarkEngineAppend in internal/engine for the in-memory
// baseline the acceptance criteria reference.
func BenchmarkJournalAppend(b *testing.B) {
	const batchSize = 1000
	batch := make([]votes.Vote, batchSize)
	for i := range batch {
		label := votes.Clean
		if i%3 == 0 {
			label = votes.Dirty
		}
		batch[i] = votes.Vote{Item: i % 512, Worker: i % 25, Label: label}
	}
	for _, p := range []FsyncPolicy{FsyncNever, FsyncBatch, FsyncAlways} {
		b.Run(p.String(), func(b *testing.B) {
			s, err := OpenStore(b.TempDir(), Options{Fsync: p, BatchInterval: 100 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			j, err := s.Create(Meta{ID: fmt.Sprintf("bench-%s", p), Items: 512, CreatedAt: time.Now()})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(batch, true); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			votesPerSec := float64(b.N) * batchSize / b.Elapsed().Seconds()
			b.ReportMetric(votesPerSec/1e6, "Mvotes/s")
		})
	}
}

// BenchmarkGroupCommit measures aggregate commit throughput with one journal
// per goroutine through a single store's shared syncer — the cross-session
// group-commit shape. Under FsyncAlways every append waits for durability,
// but concurrent waiters share fsync passes instead of each paying its own;
// compare against BenchmarkJournalAppend/always (one lone committer) to see
// the sharing win, and against BenchmarkSessionIngest for the acceptance
// ratio the ISSUE pins.
func BenchmarkGroupCommit(b *testing.B) {
	const batchSize = 1000
	batch := make([]votes.Vote, batchSize)
	for i := range batch {
		label := votes.Clean
		if i%3 == 0 {
			label = votes.Dirty
		}
		batch[i] = votes.Vote{Item: i % 512, Worker: i % 25, Label: label}
	}
	for _, p := range []FsyncPolicy{FsyncBatch, FsyncAlways} {
		b.Run(p.String(), func(b *testing.B) {
			s, err := OpenStore(b.TempDir(), Options{Fsync: p, BatchInterval: 100 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var id atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				j, err := s.Create(Meta{ID: fmt.Sprintf("gc-%d", id.Add(1)), Items: 512, CreatedAt: time.Now()})
				if err != nil {
					b.Error(err)
					return
				}
				defer j.Close()
				for pb.Next() {
					if err := j.Append(batch, true); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			votesPerSec := float64(b.N) * batchSize / b.Elapsed().Seconds()
			b.ReportMetric(votesPerSec/1e6, "Mvotes/s")
		})
	}
}
