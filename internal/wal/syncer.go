package wal

import (
	"errors"
	"sync"
	"time"
)

// Syncer is the store-wide group-commit plane: one goroutine that drains and
// fsyncs every dirty journal in the store, so N sessions committing
// concurrently share flush passes instead of each paying its own fsync
// cadence. It replaces the per-journal FsyncBatch timing and the engine's old
// background flusher, and under FsyncAlways it turns per-append fsyncs into
// cross-session group commit: appenders park until a pass covers their
// journal, and one pass syncs every journal that went dirty since the last —
// the classic group-commit ring, keyed by journal instead of transaction.
//
// Durability semantics per policy are unchanged:
//
//   - FsyncAlways: Append does not return before the frame is fsynced (the
//     fsync just batches with every other session's).
//   - FsyncBatch: a pass runs at least every BatchInterval and fsyncs all
//     dirty journals; a crash loses at most roughly one interval.
//   - FsyncNever: passes only drain user-space buffers to the OS.
//
// Errors stay per-journal and sticky: a failed flush/fsync during a pass
// lands in that journal's sticky error state, parked committers on it observe
// the error when their pass completes, and other journals are unaffected.
type Syncer struct {
	interval time.Duration
	fsync    bool // passes fsync (FsyncAlways/FsyncBatch) or only flush (FsyncNever)

	mu    sync.Mutex
	cond  *sync.Cond // broadcast at the end of every pass and on Close
	queue []*Journal // journals gone dirty since the last pass snapshot
	spare []*Journal // recycled backing array for queue
	begun uint64     // passes started (snapshot taken)
	done  uint64     // passes finished (every snapshotted journal synced)
	// closed marks the syncer stopped: no further passes will run and parked
	// committers must fall back to syncing their own journal.
	closed bool

	wake    chan struct{} // capacity 1: at most one pending demand-pass token
	stop    chan struct{}
	stopped chan struct{}
}

// newSyncer builds and starts a syncer for a store with the given options.
func newSyncer(opts Options) *Syncer {
	sy := &Syncer{
		interval: opts.BatchInterval,
		fsync:    opts.Fsync != FsyncNever,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	sy.cond = sync.NewCond(&sy.mu)
	go sy.run()
	return sy
}

// run is the syncer loop: a pass per wake token (parked committers demanding
// durability now) and a pass per tick (the FsyncBatch staleness bound and the
// FsyncNever idle drain).
func (sy *Syncer) run() {
	defer close(sy.stopped)
	t := time.NewTicker(sy.interval)
	defer t.Stop()
	for {
		select {
		case <-sy.stop:
			// One final pass so nothing enqueued before Close is stranded.
			sy.pass()
			return
		case <-sy.wake:
			sy.pass()
		case <-t.C:
			sy.pass()
		}
	}
}

// pass snapshots the dirty-journal queue and syncs each journal in it. The
// queued flag is cleared before the journal is synced, so a frame committed
// while the pass is in flight re-enqueues its journal for the next pass
// rather than being silently considered covered.
func (sy *Syncer) pass() {
	sy.mu.Lock()
	batch := sy.queue
	sy.queue = sy.spare[:0]
	sy.spare = nil
	sy.begun++
	sy.mu.Unlock()

	for _, j := range batch {
		j.queued.Store(false)
		j.passSync(sy.fsync)
	}
	if len(batch) > 0 && sy.fsync {
		metricGroupCommitSessions.Observe(float64(len(batch)))
	}

	sy.mu.Lock()
	sy.spare = batch[:0]
	sy.done++
	sy.cond.Broadcast()
	sy.mu.Unlock()
}

// MarkDirty enqueues a journal for the next pass (FsyncBatch/FsyncNever
// commits). The fast path — journal already queued — is one atomic load and
// touches no lock, so concurrent sessions hammering commits do not contend
// here.
func (sy *Syncer) MarkDirty(j *Journal) {
	if j.queued.Load() || !j.queued.CompareAndSwap(false, true) {
		return
	}
	sy.mu.Lock()
	if sy.closed {
		sy.mu.Unlock()
		// No pass will run; leave the flag set (harmless) — the journal's own
		// Sync/Close paths still bound buffered data.
		return
	}
	sy.queue = append(sy.queue, j)
	sy.mu.Unlock()
}

// Commit enqueues a journal and parks until a pass that began after the
// enqueue has completed — at which point the journal's frames (including the
// caller's) are flushed and fsynced, or its sticky error says why not. This
// is the FsyncAlways path: every concurrent committer in the store shares the
// pass's fsyncs.
func (sy *Syncer) Commit(j *Journal) error {
	sy.mu.Lock()
	if sy.closed {
		sy.mu.Unlock()
		return j.fallbackSync()
	}
	if !j.queued.Load() && j.queued.CompareAndSwap(false, true) {
		sy.queue = append(sy.queue, j)
	}
	// The first pass to snapshot the queue after this point has index
	// begun+1; a pass already in flight took its snapshot before the enqueue
	// above and cannot be trusted to cover it.
	target := sy.begun + 1
	select {
	case sy.wake <- struct{}{}:
	default:
	}
	metricSyncWaiters.Inc()
	for sy.done < target && !sy.closed {
		sy.cond.Wait()
	}
	covered := sy.done >= target
	sy.mu.Unlock()
	metricSyncWaiters.Dec()
	if !covered {
		// Closed before our pass ran: sync directly rather than return
		// un-durable.
		return j.fallbackSync()
	}
	return j.commitErr()
}

// Close stops the syncer: the loop drains one final pass, then parked
// committers are released (falling back to direct syncs for anything the
// final pass missed). Idempotent via Store.Close's once-guard; Close itself
// must only be called once.
func (sy *Syncer) Close() {
	close(sy.stop)
	<-sy.stopped
	sy.mu.Lock()
	sy.closed = true
	sy.cond.Broadcast()
	sy.mu.Unlock()
}

// fallbackSync syncs the journal directly when the syncer cannot cover it
// (shutdown). A journal closed in the same shutdown already synced in Close,
// so ErrClosed here does not mean data loss.
func (j *Journal) fallbackSync() error {
	if err := j.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return nil
}

// passSync flushes (and, with fsync set, syncs) the journal for a syncer
// pass. Errors land in the journal's sticky state for committers and the
// next mutation to observe; a journal already erred or closed is skipped.
func (j *Journal) passSync(fsync bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if fsync {
		_ = j.syncLocked()
	} else {
		_ = j.flushLocked()
	}
}

// commitErr reports the journal's sticky error to a parked committer after
// its pass completed. ErrClosed maps to nil: Close syncs before closing, so
// the committed frame is durable.
func (j *Journal) commitErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil && !errors.Is(j.err, ErrClosed) {
		return j.err
	}
	return nil
}
