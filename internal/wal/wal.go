// Package wal is the durability layer under the session engine: a per-session
// write-ahead vote journal plus snapshot compaction, so the estimate a
// cleaning pipeline consults while cleaning is in flight survives process
// restarts.
//
// Layout: one directory per session (Store maps session ids to directories),
// holding
//
//	meta.json          immutable session metadata (id, population, config)
//	wal-<seq>.seg      journal segments, appended in seq order
//	snap-<seq>.bin     one snapshot covering segments 1..seq
//
// A segment is a 5-byte header (magic "DQMW", version) followed by frames.
// Each frame is the group-commit unit — one engine Append/EndTask/Reset call —
// encoded as
//
//	uvarint(len(payload)) | crc32c(payload) LE | payload
//
// and a payload is a sequence of varint records (opVote item<<1|dirty,
// zigzag worker; opEnd; opReset; opWindow start — a windowed session's
// rotation, always in the same frame as the opEnd that sealed it, so task
// boundaries and their window rotations are crash-atomic). A torn or corrupt
// frame at the tail of the
// final segment marks the end of durable history: recovery replays every
// intact frame before it and truncates the rest, so the journal never admits
// a gap. Corruption anywhere else is reported as an error instead of being
// skipped silently.
//
// A snapshot is the same record stream, sealed: header (magic "DQMS",
// version), records, and a trailing whole-file CRC. Compaction rewrites
// snapshot + sealed segments into a new snapshot (dropping everything before
// the last opReset) and deletes the covered files; because the snapshot is a
// literal record stream replayed through the same code path as live ingest,
// recovered estimator state is bit-identical to an uninterrupted run. The
// compaction threshold doubles with the snapshot (journal must outgrow the
// snapshot before a rewrite), keeping total compaction I/O linear-ish in the
// ingested volume.
package wal

import "time"

// FsyncPolicy selects when journal writes are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncBatch (the default) group-commits: frames accumulate in a
	// user-space buffer that drains to the OS on overflow, and the store's
	// shared Syncer fsyncs every dirty journal at least once per
	// BatchInterval (and always on rotation, checkpoint and close). A crash
	// loses at most roughly the last interval of acknowledged votes.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways fsyncs every frame before the append returns. Nothing
	// acknowledged is ever lost. Appends park on the store's Syncer, so
	// concurrent sessions share fsync rounds (cross-session group commit)
	// instead of each paying device sync latency alone.
	FsyncAlways
	// FsyncNever leaves fsync to the OS: frames are still handed to the
	// kernel (on buffer overflow, or by the store Syncer's periodic drain),
	// but nothing forces them to the device. An OS crash may lose
	// everything since the last rotation/checkpoint; a clean Close still
	// syncs.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "unknown"
	}
}

// Options parameterizes a Store and the journals it opens.
type Options struct {
	// Fsync selects the flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// BatchInterval is the maximum fsync staleness under FsyncBatch;
	// 0 selects 100ms.
	BatchInterval time.Duration
	// SegmentBytes rotates the active segment beyond this size; 0 selects
	// 4 MiB.
	SegmentBytes int64
	// CompactAfter is the minimum sealed-journal volume before a snapshot
	// rewrite; 0 selects 8 MiB. Compaction additionally waits until the
	// sealed journal outgrows the current snapshot, so rewrite work stays
	// amortized.
	CompactAfter int64
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 8 << 20
	}
	return o
}
