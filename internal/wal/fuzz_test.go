package wal

import (
	"os"
	"path/filepath"
	"testing"

	"dqm/internal/votelog"
	"dqm/internal/votes"
)

// FuzzSegmentScan feeds arbitrary bytes to the segment scanner: it must never
// panic, never report more valid bytes than exist, and always replay a
// record stream that the codec itself could have produced.
func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(segMagic)
	// A well-formed single-frame segment as a constructive seed.
	var payload []byte
	payload = appendVote(payload, votes.Vote{Item: 3, Worker: 1, Label: votes.Dirty})
	payload = append(payload, opEnd)
	f.Add(append(append([]byte{}, segMagic...), appendFrame(nil, payload)...))
	// A windowed-session frame: vote, task boundary, window rotation.
	var winPayload []byte
	winPayload = appendVote(winPayload, votes.Vote{Item: 7, Worker: 2, Label: votes.Clean})
	winPayload = append(winPayload, opEnd)
	winPayload = appendWindow(winPayload, 42)
	f.Add(append(append([]byte{}, segMagic...), appendFrame(nil, winPayload)...))
	// A columnar frame: one batch of raw DQMV 'V' records plus a boundary.
	var colPayload []byte
	colPayload = appendColumns(colPayload, votelog.AppendBinaryVote(votelog.AppendBinaryVote(nil, 5, 3, true), 6, -2, false))
	colPayload = append(colPayload, opEnd)
	f.Add(append(append([]byte{}, segMagic...), appendFrame(nil, colPayload)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-0000000000000001.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		hooks := Hooks{
			Vote: func(item, worker int, dirty bool) error {
				if item < 0 {
					t.Fatalf("scanner surfaced negative item %d", item)
				}
				n++
				return nil
			},
			EndTask: func() { n++ },
			Reset:   func() { n++ },
			Window: func(start int64) error {
				if start < 0 {
					t.Fatalf("scanner surfaced negative window start %d", start)
				}
				n++
				return nil
			},
		}
		res, _, err := scanSegment(path, hooks, nil)
		if err != nil {
			return
		}
		if res.valid < 0 || res.valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside file of %d bytes", res.valid, len(data))
		}
	})
}

// FuzzRecordDecode throws arbitrary payloads at the record codec.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{opEnd, opReset})
	var rec []byte
	rec = appendVote(rec, votes.Vote{Item: 1 << 30, Worker: -5, Label: votes.Clean})
	f.Add(rec)
	f.Add(appendWindow([]byte{opEnd}, 1<<40))
	f.Add(appendColumns(nil, votelog.AppendBinaryVote(nil, 9, 4, true)))
	// A columnar record whose declared length overruns the payload.
	f.Add([]byte{opColumns, 0xff, 0xff, 0x7f, 'V'})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = decodeRecords(data, Hooks{
			Vote:   func(item, worker int, dirty bool) error { return nil },
			Window: func(start int64) error { return nil },
		})
	})
}
