package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dqm/internal/votelog"
	"dqm/internal/votes"
)

// journalConcurrent drives n appender goroutines, one per journal, through the
// store's shared syncer, mixing plain, columnar and rotation frames. It
// returns each journal's logical op stream (the per-session recovery truth).
func journalConcurrent(t *testing.T, s *Store, n, tasks int) ([]*Journal, [][]op) {
	t.Helper()
	js := make([]*Journal, n)
	streams := make([][]op, n)
	for i := range js {
		j, err := s.Create(Meta{ID: fmt.Sprintf("sess-%d", i), Items: 40})
		if err != nil {
			t.Fatal(err)
		}
		js[i] = j
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range js {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			var ops []op
			for task := 0; task < tasks; task++ {
				switch task % 3 {
				case 0: // plain vote batch
					batch := make([]votes.Vote, 1+rng.Intn(3))
					for k := range batch {
						batch[k] = mkVote(rng.Intn(40), rng.Intn(6), rng.Intn(2) == 0)
						ops = append(ops, op{Kind: opVote, Item: batch[k].Item, Worker: batch[k].Worker, Dirty: batch[k].Label == votes.Dirty})
					}
					if err := js[i].Append(batch, true); err != nil {
						errs[i] = err
						return
					}
					ops = append(ops, op{Kind: opEnd})
				case 1: // columnar batch
					var raw []byte
					for k := 0; k < 1+rng.Intn(3); k++ {
						item, worker, dirty := int32(rng.Intn(40)), int32(rng.Intn(6)), rng.Intn(2) == 0
						raw = votelog.AppendBinaryVote(raw, item, worker, dirty)
						ops = append(ops, op{Kind: opVote, Item: int(item), Worker: int(worker), Dirty: dirty})
					}
					if err := js[i].AppendColumns(raw, true, -1); err != nil {
						errs[i] = err
						return
					}
					ops = append(ops, op{Kind: opEnd})
				case 2: // bare task boundary
					if err := js[i].EndTask(); err != nil {
						errs[i] = err
						return
					}
					ops = append(ops, op{Kind: opEnd})
				}
			}
			streams[i] = ops
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("journal %d append: %v", i, err)
		}
	}
	return js, streams
}

// TestMultiSessionTornTailThroughSharedSyncer is the crash/recovery property
// test for group commit: frames from several sessions interleave through one
// store's syncer, and truncating any one session's segment at an arbitrary
// byte offset must recover exactly a frame-aligned clean prefix of that
// session's own stream — sessions share fsync passes, never frames.
func TestMultiSessionTornTailThroughSharedSyncer(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncBatch} {
		t.Run(policy.String(), func(t *testing.T) {
			s := testStore(t, Options{Fsync: policy, BatchInterval: time.Millisecond, SegmentBytes: 1 << 20})
			js, streams := journalConcurrent(t, s, 3, 40)
			for _, j := range js {
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			}
			for i, j := range js {
				raw, err := os.ReadFile(segPath(j.Dir(), 1))
				if err != nil {
					t.Fatal(err)
				}
				full := streams[i]
				prev := -1
				for cut := int64(0); ; cut += 5 {
					if cut > int64(len(raw)) {
						cut = int64(len(raw))
					}
					dir := t.TempDir()
					s2, err := OpenStore(dir, Options{Fsync: FsyncNever})
					if err != nil {
						t.Fatal(err)
					}
					id := fmt.Sprintf("sess-%d", i)
					if err := os.Mkdir(filepath.Join(dir, id), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(dir, id, "meta.json"), mustMeta(t, id, 40), 0o644); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(dir, id, filepath.Base(segPath(j.Dir(), 1))), raw[:cut], 0o644); err != nil {
						t.Fatal(err)
					}
					var got []op
					j2, err := s2.Recover(id, recHooks(&got))
					if err != nil {
						t.Fatalf("session %d cut=%d: recover: %v", i, cut, err)
					}
					j2.Close()
					if len(got) > 0 && !reflect.DeepEqual(got, full[:len(got)]) {
						t.Fatalf("session %d cut=%d: recovered ops are not a prefix of the session's own stream", i, cut)
					}
					if len(got) < prev {
						t.Fatalf("session %d cut=%d: recovered %d ops, previously %d", i, cut, len(got), prev)
					}
					prev = len(got)
					if err := s2.Close(); err != nil {
						t.Fatal(err)
					}
					if cut == int64(len(raw)) {
						break
					}
				}
				if prev != len(full) {
					t.Fatalf("session %d: full segment recovered %d ops, want %d", i, prev, len(full))
				}
			}
		})
	}
}

// TestGroupCommitSharesPasses: concurrent FsyncAlways committers must share
// syncer passes instead of each forcing its own — the syncer's pass count
// stays well under the total number of committed frames.
func TestGroupCommitSharesPasses(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncAlways, BatchInterval: 50 * time.Millisecond})
	const n, tasks = 4, 30
	js, streams := journalConcurrent(t, s, n, tasks)

	s.sy.mu.Lock()
	passes := s.sy.done
	s.sy.mu.Unlock()
	if passes == 0 {
		t.Fatal("no syncer passes ran under FsyncAlways")
	}
	// Every append under FsyncAlways waits for a pass, but concurrent waiters
	// share passes. With n appenders the pass count can approach the frame
	// count only if there was no sharing at all AND appends never overlapped;
	// allow that worst case but fail if passes exceed frames (self-timed
	// fsyncs would have snuck back in).
	totalFrames := uint64(n * tasks)
	if passes > totalFrames+2 {
		t.Fatalf("%d passes for %d frames: committers are not sharing passes", passes, totalFrames)
	}
	for i, j := range js {
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		var got []op
		j2, err := s.Recover(fmt.Sprintf("sess-%d", i), recHooks(&got))
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if !reflect.DeepEqual(got, streams[i]) {
			t.Fatalf("session %d: group-committed stream does not recover", i)
		}
	}
}

// TestSyncerClosedFallsBackToDirectSync: once the store (and its syncer) is
// closed, journals still open must keep committing durably via their own
// fsync — shutdown ordering must not strand acknowledged writes.
func TestSyncerClosedFallsBackToDirectSync(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Create(Meta{ID: "late", Items: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]votes.Vote{mkVote(1, 0, true)}, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// The syncer is gone; this append must still succeed and be durable.
	if err := j.Append([]votes.Vote{mkVote(2, 1, false)}, true); err != nil {
		t.Fatalf("append after store close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got []op
	j2, err := s2.Recover("late", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := []op{
		{Kind: opVote, Item: 1, Worker: 0, Dirty: true}, {Kind: opEnd},
		{Kind: opVote, Item: 2, Worker: 1, Dirty: false}, {Kind: opEnd},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-close append lost:\n got %v\nwant %v", got, want)
	}
}

// TestAppendColumnsRoundTrip: columnar frames recover through the same Vote
// hook as per-vote frames — encoding is a journal detail, not a recovery one.
func TestAppendColumnsRoundTrip(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	j, err := s.Create(Meta{ID: "cols", Items: 100})
	if err != nil {
		t.Fatal(err)
	}
	var want []op
	raw := votelog.AppendBinaryVote(nil, 3, 7, true)
	raw = votelog.AppendBinaryVote(raw, 99, -4, false) // negative workers survive zigzag
	if err := j.AppendColumns(raw, true, -1); err != nil {
		t.Fatal(err)
	}
	want = append(want,
		op{Kind: opVote, Item: 3, Worker: 7, Dirty: true},
		op{Kind: opVote, Item: 99, Worker: -4, Dirty: false},
		op{Kind: opEnd})
	// A columnar batch closing a window carries the rotation in the same frame.
	if err := j.AppendColumns(votelog.AppendBinaryVote(nil, 5, 1, true), true, 12); err != nil {
		t.Fatal(err)
	}
	want = append(want, op{Kind: opVote, Item: 5, Worker: 1, Dirty: true}, op{Kind: opEnd}, op{Kind: opWindow, Item: 12})
	// Votes without a boundary, and a no-op empty call.
	if err := j.AppendColumns(votelog.AppendBinaryVote(nil, 8, 2, false), false, -1); err != nil {
		t.Fatal(err)
	}
	want = append(want, op{Kind: opVote, Item: 8, Worker: 2, Dirty: false})
	if err := j.AppendColumns(nil, false, -1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var got []op
	j2, err := s.Recover("cols", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar round trip:\n got %v\nwant %v", got, want)
	}
}

// TestCompactionRewritesColumnarRecords: snapshots re-encode columnar batches
// per vote (snapshots are the compact replay form), so history containing
// opColumns frames must survive compaction bit-identically.
func TestCompactionRewritesColumnarRecords(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever, SegmentBytes: 128, CompactAfter: 256})
	j, err := s.Create(Meta{ID: "colpack", Items: 50})
	if err != nil {
		t.Fatal(err)
	}
	var want []op
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		var raw []byte
		for k := 0; k < 1+rng.Intn(3); k++ {
			item, worker, dirty := int32(rng.Intn(50)), int32(rng.Intn(6)), rng.Intn(2) == 0
			raw = votelog.AppendBinaryVote(raw, item, worker, dirty)
			want = append(want, op{Kind: opVote, Item: int(item), Worker: int(worker), Dirty: dirty})
		}
		if err := j.AppendColumns(raw, true, -1); err != nil {
			t.Fatal(err)
		}
		want = append(want, op{Kind: opEnd})
	}
	if j.snapSeq == 0 {
		t.Fatal("no compaction happened despite tiny thresholds")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("colpack", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar history lost through compaction: got %d ops, want %d", len(got), len(want))
	}
}
