package wal

import "dqm/internal/metrics"

// WAL-plane instruments on the shared Default registry, cumulative across
// every journal in the process. The append path is a hot path with a 0-alloc
// guarantee (BenchmarkJournalAppend): everything recorded per frame is an
// atomic add or a fixed-bucket histogram observation, both allocation-free.
var (
	metricFrames = metrics.Default.Counter("dqm_wal_append_frames_total",
		"Frames committed to journals (one group-commit unit — engine batch, task end or reset — each).")
	metricAppendSeconds = metrics.Default.Histogram("dqm_wal_append_seconds",
		"Journal append latency per frame, including any flush, fsync, rotation or compaction it triggered.",
		metrics.DurationBuckets)
	metricFlushedBytes = metrics.Default.Counter("dqm_wal_flushed_bytes_total",
		"Journal bytes handed to the OS (user-space group-commit buffer drains).")
	metricFsyncs = metrics.Default.Counter("dqm_wal_fsyncs_total",
		"fsync calls on active segments.")
	metricFsyncSeconds = metrics.Default.Histogram("dqm_wal_fsync_seconds",
		"fsync latency on active segments.", metrics.DurationBuckets)
	metricRotations = metrics.Default.Counter("dqm_wal_segment_rotations_total",
		"Active segments sealed and replaced (SegmentBytes threshold crossings).")
	metricCompactions = metrics.Default.Counter("dqm_wal_compactions_total",
		"Snapshot compactions completed (sealed segments + old snapshot folded into one).")
	metricCompactionSeconds = metrics.Default.Histogram("dqm_wal_compaction_seconds",
		"Snapshot compaction wall time.", metrics.DurationBuckets)
	metricWriteErrors = metrics.Default.Counter("dqm_wal_write_errors_total",
		"Write/fsync failures that put a journal into its sticky error state.")
)
