package wal

import "dqm/internal/metrics"

// WAL-plane instruments on the shared Default registry, cumulative across
// every journal in the process. The append path is a hot path with a 0-alloc
// guarantee (BenchmarkJournalAppend): everything recorded per frame is an
// atomic add or a fixed-bucket histogram observation, both allocation-free.
var (
	metricFrames = metrics.Default.Counter("dqm_wal_append_frames_total",
		"Frames committed to journals (one group-commit unit — engine batch, task end or reset — each).")
	metricAppendSeconds = metrics.Default.Histogram("dqm_wal_append_seconds",
		"Journal append latency per frame, including any flush, fsync, rotation or compaction it triggered.",
		metrics.DurationBuckets)
	metricFlushedBytes = metrics.Default.Counter("dqm_wal_flushed_bytes_total",
		"Journal bytes handed to the OS (user-space group-commit buffer drains).")
	metricFsyncs = metrics.Default.Counter("dqm_wal_fsyncs_total",
		"fsync calls on active segments.")
	metricFsyncSeconds = metrics.Default.Histogram("dqm_wal_fsync_seconds",
		"fsync latency on active segments.", metrics.DurationBuckets)
	metricRotations = metrics.Default.Counter("dqm_wal_segment_rotations_total",
		"Active segments sealed and replaced (SegmentBytes threshold crossings).")
	metricCompactions = metrics.Default.Counter("dqm_wal_compactions_total",
		"Snapshot compactions completed (sealed segments + old snapshot folded into one).")
	metricCompactionSeconds = metrics.Default.Histogram("dqm_wal_compaction_seconds",
		"Snapshot compaction wall time.", metrics.DurationBuckets)
	metricWriteErrors = metrics.Default.Counter("dqm_wal_write_errors_total",
		"Write/fsync failures that put a journal into its sticky error state.")
	// metricGroupCommitSessions is observed once per non-empty syncer pass
	// with the number of journals (≈ sessions) the pass covered: the
	// group-commit amortization factor. A fixed count ladder, so Observe
	// stays a lock-free atomic add on the ingest-adjacent path.
	metricGroupCommitSessions = metrics.Default.Histogram("dqm_wal_group_commit_sessions",
		"Journals flushed per group-commit syncer pass (sessions sharing one fsync round).",
		GroupCommitBuckets)
	metricSyncWaiters = metrics.Default.Gauge("dqm_wal_sync_waiters",
		"Appends currently parked on the group-commit syncer (FsyncAlways committers awaiting their pass).")
)

// GroupCommitBuckets ladders session counts per pass: 1 (no batching win)
// through thousands of sessions sharing a pass.
var GroupCommitBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}
