package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

var (
	segMagic  = []byte{'D', 'Q', 'M', 'W', 1}
	snapMagic = []byte{'D', 'Q', 'M', 'S', 1}
)

// errBadHeader marks a segment whose header never made it to disk; on the
// final segment that is a torn tail from a crash at creation time, anywhere
// else it is fatal corruption.
var errBadHeader = errors.New("bad segment header")

// castagnoli is the CRC32C polynomial table (the storage-standard variant).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFramePayload rejects absurd frame lengths before allocating; real frames
// are bounded by the engine's ingest batch limits.
const maxFramePayload = 1 << 26

// appendFrame appends one CRC32C-framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// scanResult reports how far a segment scan got.
type scanResult struct {
	// valid is the offset just past the last intact frame; bytes beyond it
	// are a torn tail (or absent).
	valid int64
	// clean reports that the scan consumed the file exactly (no torn tail).
	clean bool
}

// scanSegment replays every intact frame of a segment file through h. A
// truncated or CRC-corrupt frame ends the scan — the caller decides whether a
// torn tail is tolerable (final segment) or fatal (sealed segment). An error
// is returned only for structural impossibilities (bad header) or a hook
// rejection, both of which mean the data must not be trusted at all.
//
// The whole segment is read into scratch (reused across calls) in one pass
// and parsed in memory: recovery pays one read syscall per segment instead of
// a buffered-reader round trip per varint byte, and frame payloads are sliced
// out of the read buffer instead of copied. Segments are bounded by the
// rotation threshold, so the buffer stays modest and amortizes across the
// whole boot.
func scanSegment(path string, h Hooks, scratch []byte) (scanResult, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, scratch, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return scanResult{}, scratch, err
	}
	if int64(cap(scratch)) < fi.Size() {
		scratch = make([]byte, fi.Size())
	}
	buf := scratch[:cap(scratch)]
	// ReadFull short-reads only if the file shrank after the stat (impossible
	// for sealed segments; harmless for a final one — the scan just sees the
	// shorter tail). Anything but an EOF-shaped error is a real I/O fault.
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return scanResult{}, scratch, err
	}
	if n < int(fi.Size()) { // shrank mid-read; n never exceeds the stat size
		buf = buf[:n]
	} else {
		buf = scratch[:fi.Size()]
	}

	if len(buf) < len(segMagic) || !bytes.Equal(buf[:len(segMagic)], segMagic) {
		return scanResult{}, scratch, fmt.Errorf("wal: %s: %w", filepath.Base(path), errBadHeader)
	}
	res := scanResult{valid: int64(len(segMagic))}
	for {
		off := res.valid
		if off == int64(len(buf)) {
			res.clean = true
			return res, scratch, nil
		}
		size, un := binary.Uvarint(buf[off:])
		if un <= 0 || size > maxFramePayload {
			return res, scratch, nil // torn or absurd length prefix
		}
		off += int64(un)
		if off+4 > int64(len(buf)) {
			return res, scratch, nil // torn CRC
		}
		want := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if off+int64(size) > int64(len(buf)) {
			return res, scratch, nil // torn payload
		}
		payload := buf[off : off+int64(size)]
		if crc32.Checksum(payload, castagnoli) != want {
			return res, scratch, nil // torn or corrupt frame
		}
		if err := decodeRecords(payload, h); err != nil {
			// The CRC matched but the records are malformed (or rejected by
			// the hook): the frame was not written by this codec. Refuse the
			// whole segment rather than guess.
			return res, scratch, fmt.Errorf("wal: %s: frame at offset %d: %w", filepath.Base(path), res.valid, err)
		}
		res.valid = off + int64(size)
	}
}

// writeSnapshot atomically writes a snapshot file holding body (a record
// stream) at path: temp file, fsync, rename, directory fsync.
func writeSnapshot(path string, body []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	sum := crc32.Checksum(snapMagic, castagnoli)
	sum = crc32.Update(sum, castagnoli, body)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	_, err = f.Write(segBodyTrailer(snapMagic, body, trailer[:]))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// segBodyTrailer concatenates the snapshot sections into one write.
func segBodyTrailer(magic, body, trailer []byte) []byte {
	out := make([]byte, 0, len(magic)+len(body)+len(trailer))
	out = append(out, magic...)
	out = append(out, body...)
	return append(out, trailer...)
}

// readSnapshotBody loads and integrity-checks a snapshot file, returning its
// record stream. Validation completes before any record is interpreted, so a
// partially written snapshot can be rejected without side effects.
func readSnapshotBody(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(snapMagic)+4 || string(b[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: %s: bad snapshot header", filepath.Base(path))
	}
	body := b[len(snapMagic) : len(b)-4]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	sum := crc32.Checksum(b[:len(b)-4], castagnoli)
	if sum != want {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	return body, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
// Failures are reported but non-fatal on filesystems that reject dir fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync() // best-effort: some filesystems refuse directory fsync
	return nil
}
