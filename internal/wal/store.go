package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Store maps session ids onto per-session journal directories under one data
// directory. It holds no per-session state itself — journals are owned by the
// sessions that opened them — so its methods are safe for concurrent use as
// long as each session id is operated on by one caller at a time (the engine
// guarantees this). What the store does own is the group-commit Syncer every
// journal it opens shares: one goroutine batching flush/fsync work across all
// sessions (see Syncer). Close stops it; journals opened by the store keep
// working afterwards but fall back to syncing themselves.
type Store struct {
	dir  string
	opts Options

	sy        *Syncer
	closeOnce sync.Once
}

// OpenStore opens (creating if needed) a data directory. Session directories
// left behind by a crash mid-Create (a directory without meta.json — the meta
// is the first file a create writes) hold no durable history and are swept
// away, so a torn create can never wedge recovery or block the id forever.
func OpenStore(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open store: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() && abortedCreate(filepath.Join(dir, e.Name())) {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
	opts = opts.withDefaults()
	return &Store{dir: dir, opts: opts, sy: newSyncer(opts)}, nil
}

// Close stops the store's group-commit syncer after one final pass, so every
// frame committed before Close is flushed (and, per policy, fsynced). Safe to
// call more than once. Journals stay usable — they self-sync afterwards —
// but callers should close them first: the engine closes sessions, then the
// store.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { s.sy.Close() })
	return nil
}

// Syncer exposes the store's group-commit plane (tests).
func (s *Store) Syncer() *Syncer { return s.sy }

// abortedCreate reports whether a session directory was abandoned by a crash
// between Mkdir and writeMeta: it exists but has no meta.json. Such a
// directory predates the first durable byte of its session, so removing it
// loses nothing.
func abortedCreate(dir string) bool {
	if _, err := os.Stat(dir); err != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "meta.json"))
	return os.IsNotExist(err)
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Meta is the descriptor of one journaled session, persisted as meta.json in
// its directory. Identity fields (ID, Items, CreatedAt, Config) are written
// once at Create and never change; Policy is the one mutable field — attached
// and detached over the session's lifetime via UpdateMeta.
type Meta struct {
	Version   int             `json:"version"`
	ID        string          `json:"id"`
	Items     int             `json:"items"`
	CreatedAt time.Time       `json:"created_at"`
	Config    json.RawMessage `json:"config,omitempty"`
	// Policy is the session's quality-gate policy document (opaque to the
	// WAL layer); empty means none attached.
	Policy json.RawMessage `json:"policy,omitempty"`
}

// maxHexID bounds the raw-byte length hex-escaped into a directory name;
// beyond it the name would approach NAME_MAX, so long ids hash instead.
const maxHexID = 100

// dirFor encodes a session id as a filesystem-safe directory name. Ids that
// are already safe are kept readable; short unsafe ids hex-escape behind a
// "%" prefix (invertible); long ids get a "#"-prefixed SHA-256 name, with
// the true id recorded in meta.json (IDs reads it back from there). No safe
// name can start with "%" or "#", so the three namespaces cannot collide.
func dirFor(id string) string {
	if safeDirName(id) {
		return id
	}
	if len(id) <= maxHexID {
		return "%" + hex.EncodeToString([]byte(id))
	}
	sum := sha256.Sum256([]byte(id))
	return "#" + hex.EncodeToString(sum[:])
}

// idFromDir inverts dirFor.
func idFromDir(name string) (string, bool) {
	if strings.HasPrefix(name, "%") {
		b, err := hex.DecodeString(name[1:])
		if err != nil {
			return "", false
		}
		return string(b), true
	}
	if !safeDirName(name) {
		return "", false
	}
	return name, true
}

// safeDirName admits short names of [A-Za-z0-9._-] not starting with '.',
// '-' or '%'.
func safeDirName(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// sessionDir returns the directory of a session id.
func (s *Store) sessionDir(id string) string { return filepath.Join(s.dir, dirFor(id)) }

// Exists reports whether a session directory exists for id.
func (s *Store) Exists(id string) bool {
	_, err := os.Stat(filepath.Join(s.sessionDir(id), "meta.json"))
	return err == nil
}

// IDs returns every session id with a directory in the store, sorted.
func (s *Store) IDs() ([]string, error) {
	listed, err := s.listIDs()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(listed))
	for i, l := range listed {
		out[i] = l.id
	}
	sort.Strings(out)
	return out, nil
}

// listedID pairs a recoverable session id with its directory name.
type listedID struct {
	id  string
	dir string
}

// listIDs enumerates recoverable session ids (unordered).
func (s *Store) listIDs() ([]listedID, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []listedID
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "#") {
			// Hashed directory names are not invertible; the id lives in
			// meta.json. A dir whose meta is unreadable is skipped (it is
			// not recoverable anyway).
			if m, err := readMetaFile(filepath.Join(s.dir, name)); err == nil {
				out = append(out, listedID{id: m.ID, dir: name})
			}
			continue
		}
		// A dir without meta.json is an aborted create (crash between Mkdir
		// and writeMeta, or a Create in flight right now): it holds no
		// session and must not be listed — a listed-but-unrecoverable id
		// would fail engine recovery for the whole store. Only IsNotExist
		// qualifies; any other stat error (permissions, I/O) still lists the
		// id so recovery fails loudly instead of hiding durable data.
		if _, err := os.Stat(filepath.Join(s.dir, name, "meta.json")); os.IsNotExist(err) {
			continue
		}
		if id, ok := idFromDir(name); ok {
			out = append(out, listedID{id: id, dir: name})
		}
	}
	return out, nil
}

// IDsByMTime returns every recoverable session id, most recently modified
// first (ties broken by id, so the order is deterministic). A session's
// modification time is the newest mtime among the files in its directory —
// appends touch the active segment, compaction the snapshot — so the front of
// the list is the set of sessions that were hot when the previous process
// stopped. Boot recovery uses it to spend a bounded MaxSessions budget on the
// LRU-warm sessions instead of an arbitrary listing prefix.
func (s *Store) IDsByMTime() ([]string, error) {
	listed, err := s.listIDs()
	if err != nil {
		return nil, err
	}
	type stamped struct {
		id string
		at time.Time
	}
	out := make([]stamped, 0, len(listed))
	for _, l := range listed {
		var newest time.Time
		ents, err := os.ReadDir(filepath.Join(s.dir, l.dir))
		if err == nil {
			for _, e := range ents {
				if info, err := e.Info(); err == nil && info.ModTime().After(newest) {
					newest = info.ModTime()
				}
			}
		}
		out = append(out, stamped{id: l.id, at: newest})
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].at.Equal(out[k].at) {
			return out[i].at.After(out[k].at)
		}
		return out[i].id < out[k].id
	})
	ids := make([]string, len(out))
	for i, s := range out {
		ids[i] = s.id
	}
	return ids, nil
}

// Delete removes a session's directory and everything in it, reporting
// whether a directory existed. It is deliberately not gated on Exists: a
// directory without meta.json (aborted create) must still be removable, or
// its id would be stuck — unlistable yet blocking Create forever.
func (s *Store) Delete(id string) (bool, error) {
	dir := s.sessionDir(id)
	if _, err := os.Stat(dir); err != nil {
		return false, nil
	}
	if err := os.RemoveAll(dir); err != nil {
		return true, err
	}
	return true, syncDir(s.dir)
}

// Create makes a fresh journal directory for a session. It fails if one
// already exists (even for a session the engine no longer has in memory —
// on-disk state must be recovered or deleted explicitly, never silently
// overwritten).
func (s *Store) Create(meta Meta) (*Journal, error) {
	dir := s.sessionDir(meta.ID)
	err := os.Mkdir(dir, 0o755)
	if os.IsExist(err) && abortedCreate(dir) {
		// The dir is debris from a create that crashed before writing
		// meta.json — no durable history, so reclaim the id.
		os.RemoveAll(dir)
		err = os.Mkdir(dir, 0o755)
	}
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("wal: session %q already exists on disk at %s", meta.ID, dir)
		}
		return nil, err
	}
	meta.Version = 1
	if err := writeMeta(dir, meta); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	f, size, err := createSegment(dir, 1)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	_ = syncDir(s.dir)
	return &Journal{dir: dir, opts: s.opts, sy: s.sy, f: f, seq: 1, size: size, lastSync: time.Now()}, nil
}

// writeMeta atomically persists meta.json: temp file, fsync, rename, dir
// fsync — the same discipline as writeSnapshot. The content fsync before the
// rename matters: without it a power loss can leave a visible-but-empty
// meta.json, and one unparsable meta fails recovery for the whole store.
func writeMeta(dir string, meta Meta) error {
	b, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "meta.json.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(b)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "meta.json")); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// ReadMeta loads a session's metadata.
func (s *Store) ReadMeta(id string) (Meta, error) {
	m, err := readMetaFile(s.sessionDir(id))
	if err != nil {
		return m, err
	}
	return m, nil
}

// UpdateMeta rewrites a session's meta.json through mutate, with the same
// atomic temp+fsync+rename discipline as Create. Identity fields set by
// mutate are ignored — only the mutable ones (currently Policy) are taken
// from the mutated copy, so an update can never corrupt the descriptor the
// recovery path depends on. The caller must serialize against concurrent
// Create/Delete of the same id (the engine holds its per-id transition lock).
func (s *Store) UpdateMeta(id string, mutate func(*Meta)) error {
	dir := s.sessionDir(id)
	cur, err := readMetaFile(dir)
	if err != nil {
		return err
	}
	next := cur
	mutate(&next)
	next.Version, next.ID, next.Items, next.CreatedAt, next.Config =
		cur.Version, cur.ID, cur.Items, cur.CreatedAt, cur.Config
	return writeMeta(dir, next)
}

// readMetaFile loads and validates the meta.json inside a session directory.
func readMetaFile(dir string) (Meta, error) {
	var m Meta
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("wal: %s: bad meta.json: %w", filepath.Base(dir), err)
	}
	if m.Items <= 0 {
		return m, fmt.Errorf("wal: %s: bad population %d in meta.json", filepath.Base(dir), m.Items)
	}
	return m, nil
}

// Recover replays a session's durable history (latest snapshot, then the
// journal tail) through h, in exactly the order it was ingested, and returns
// a journal positioned to append after the last intact frame. A torn tail on
// the final segment is truncated; corruption anywhere earlier is an error.
func (s *Store) Recover(id string, h Hooks) (*Journal, error) {
	dir := s.sessionDir(id)
	snaps, segs, err := listFiles(dir)
	if err != nil {
		return nil, err
	}

	// Pick the newest intact snapshot; validation happens before any record
	// is replayed, so a half-compacted snapshot falls back cleanly.
	var snapSeq uint64
	var snapBody []byte
	var snapBytes int64
	for i := len(snaps) - 1; i >= 0; i-- {
		body, err := readSnapshotBody(snapPath(dir, snaps[i]))
		if err != nil {
			continue
		}
		snapSeq, snapBody = snaps[i], body
		snapBytes = int64(len(body)) + int64(len(snapMagic)) + 4
		break
	}
	if snapBody != nil {
		if err := decodeRecords(snapBody, h); err != nil {
			return nil, fmt.Errorf("wal: session %q: snapshot %d: %w", id, snapSeq, err)
		}
	}

	// Clean up files the snapshot supersedes (crash between snapshot rename
	// and deletes) and stray temp files.
	for _, seq := range snaps {
		if seq != snapSeq {
			os.Remove(snapPath(dir, seq))
		}
	}
	live := segs[:0]
	for _, seq := range segs {
		if seq <= snapSeq {
			os.Remove(segPath(dir, seq))
			continue
		}
		live = append(live, seq)
	}
	removeTemp(dir)

	j := &Journal{dir: dir, opts: s.opts, sy: s.sy, snapSeq: snapSeq, snapBytes: snapBytes, lastSync: time.Now()}
	if len(live) == 0 {
		f, size, err := createSegment(dir, snapSeq+1)
		if err != nil {
			return nil, err
		}
		j.f, j.seq, j.size = f, snapSeq+1, size
		return j, nil
	}

	// Replay the tail segments in order. Only the final one may be torn.
	var scratch []byte
	for i, seq := range live {
		if want := snapSeq + uint64(i) + 1; seq != want {
			return nil, fmt.Errorf("wal: session %q: missing segment %d (found %d)", id, want, seq)
		}
		last := i == len(live)-1
		res, sc, err := scanSegment(segPath(dir, seq), h, scratch)
		scratch = sc
		if err != nil {
			if last && errors.Is(err, errBadHeader) {
				// The process died while creating this segment: no frame ever
				// reached it. Recreate it empty.
				os.Remove(segPath(dir, seq))
				f, size, err := createSegment(dir, seq)
				if err != nil {
					return nil, err
				}
				j.f, j.seq, j.size = f, seq, size
				return j, nil
			}
			return nil, fmt.Errorf("wal: session %q: %w", id, err)
		}
		if !res.clean && !last {
			return nil, fmt.Errorf("wal: session %q: segment %d is corrupt mid-journal", id, seq)
		}
		if last {
			f, err := os.OpenFile(segPath(dir, seq), os.O_WRONLY, 0)
			if err != nil {
				return nil, err
			}
			if !res.clean {
				if err := f.Truncate(res.valid); err != nil {
					f.Close()
					return nil, err
				}
			}
			if _, err := f.Seek(res.valid, 0); err != nil {
				f.Close()
				return nil, err
			}
			j.f, j.seq, j.size = f, seq, res.valid
		} else {
			j.sealedBytes += res.valid
		}
	}
	return j, nil
}

// listFiles enumerates snapshot and segment sequence numbers in dir, sorted.
func listFiles(dir string) (snaps, segs []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin"):
			if seq, err := strconv.ParseUint(name[5:len(name)-4], 10, 64); err == nil {
				snaps = append(snaps, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
				segs = append(segs, seq)
			}
		}
	}
	sort.Slice(snaps, func(i, k int) bool { return snaps[i] < snaps[k] })
	sort.Slice(segs, func(i, k int) bool { return segs[i] < segs[k] })
	return snaps, segs, nil
}

// removeTemp deletes stray temp files from interrupted snapshot writes.
func removeTemp(dir string) {
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
