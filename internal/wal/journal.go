package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dqm/internal/votes"
)

// ErrClosed is returned by operations on a closed (or evicted) journal.
var ErrClosed = errors.New("wal: journal closed")

// Journal is the write-ahead log of one session: an active segment receiving
// group-committed frames, zero or more sealed segments, and at most one
// snapshot covering everything before them. The session engine serializes
// calls (the journal is written under the session mutex), so Journal does no
// locking of its own.
type Journal struct {
	dir  string
	opts Options

	f    *os.File // active segment
	seq  uint64   // active segment sequence number
	size int64    // bytes written (flushed) to the active segment

	// wbuf accumulates committed frames not yet handed to the OS: the
	// user-space half of group commit. It drains on flushChunk overflow,
	// Sync, rotation and Close. Under FsyncAlways every commit drains it
	// immediately, so nothing acknowledged ever sits here; under
	// FsyncBatch/FsyncNever a crash can lose it, which those policies
	// permit by contract.
	wbuf []byte

	snapSeq     uint64 // highest segment covered by the snapshot (0 = none)
	snapBytes   int64  // size of the current snapshot file
	sealedBytes int64  // bytes in sealed segments not yet compacted

	// err is sticky: after any write failure the journal refuses further
	// appends, because bytes may have reached the file without being framed —
	// appending more frames after them would put intact frames beyond a torn
	// one, which recovery (correctly) refuses to read past.
	err error

	dirty    bool // unsynced frames in the active segment
	lastSync time.Time

	buf []byte // payload scratch, reused across appends
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.bin", seq))
}

// createSegment opens a fresh segment file and writes its header.
func createSegment(dir string, seq uint64) (*os.File, int64, error) {
	f, err := os.OpenFile(segPath(dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, int64(len(segMagic)), nil
}

// Append write-ahead-logs one engine batch (the group-commit unit): the
// votes, plus a task boundary when endTask is set. It must be called before
// the batch is applied to in-memory state.
func (j *Journal) Append(batch []votes.Vote, endTask bool) error {
	if j.err != nil {
		return j.err
	}
	if len(batch) == 0 && !endTask {
		return nil
	}
	payload := j.buf[:0]
	for _, v := range batch {
		payload = appendVote(payload, v)
	}
	if endTask {
		payload = append(payload, opEnd)
	}
	j.buf = payload
	return j.commit(payload)
}

// EndTask logs a bare task boundary.
func (j *Journal) EndTask() error {
	if j.err != nil {
		return j.err
	}
	return j.commit([]byte{opEnd})
}

// AppendRotation logs one engine batch, its task boundary, and the window
// rotation that boundary seals — as ONE frame, so a torn tail can never
// separate a task end from the rotation it fired: recovery either sees both
// or neither, and replayed window boundaries always match an uninterrupted
// run. windowStart is the first completed-task index of the sealed window.
func (j *Journal) AppendRotation(batch []votes.Vote, windowStart int64) error {
	if j.err != nil {
		return j.err
	}
	payload := j.buf[:0]
	for _, v := range batch {
		payload = appendVote(payload, v)
	}
	payload = append(payload, opEnd)
	payload = appendWindow(payload, windowStart)
	j.buf = payload
	return j.commit(payload)
}

// Reset logs a session reset. The next compaction discards everything before
// it.
func (j *Journal) Reset() error {
	if j.err != nil {
		return j.err
	}
	return j.commit([]byte{opReset})
}

// flushChunk drains the user-space frame buffer to the OS once it exceeds
// this size, bounding both memory and write-syscall frequency.
const flushChunk = 64 << 10

// commit appends one frame to the group-commit buffer and applies the fsync
// policy, rotating and compacting when thresholds are crossed.
func (j *Journal) commit(payload []byte) error {
	start := time.Now()
	defer func() {
		metricFrames.Inc()
		metricAppendSeconds.ObserveSince(start)
	}()
	j.wbuf = appendFrame(j.wbuf, payload)
	j.dirty = true
	if len(j.wbuf) >= flushChunk {
		if err := j.flush(); err != nil {
			return err
		}
	}
	if j.size+int64(len(j.wbuf)) >= j.opts.SegmentBytes {
		if err := j.rotate(); err != nil {
			return err
		}
		if j.sealedBytes >= j.opts.CompactAfter && j.sealedBytes >= j.snapBytes {
			if err := j.compact(); err != nil {
				return err
			}
		}
	}
	switch j.opts.Fsync {
	case FsyncAlways:
		return j.Sync()
	case FsyncBatch:
		if time.Since(j.lastSync) >= j.opts.BatchInterval {
			return j.Sync()
		}
	}
	return nil
}

// Flush drains buffered frames to the OS without fsyncing — the FsyncNever
// idle bound (background flushers call it so acknowledged frames cannot sit
// in process memory indefinitely).
func (j *Journal) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.flush()
}

// flush drains buffered frames to the OS.
func (j *Journal) flush() error {
	if len(j.wbuf) == 0 {
		return nil
	}
	n, err := j.f.Write(j.wbuf)
	if err != nil {
		j.err = fmt.Errorf("wal: append: %w", err)
		metricWriteErrors.Inc()
		return j.err
	}
	j.size += int64(n)
	j.wbuf = j.wbuf[:0]
	metricFlushedBytes.Add(uint64(n))
	return nil
}

// Sync flushes buffered frames and fsyncs the active segment.
func (j *Journal) Sync() error {
	if j.err != nil {
		return j.err
	}
	if err := j.flush(); err != nil {
		return err
	}
	if j.dirty {
		start := time.Now()
		err := j.f.Sync()
		metricFsyncs.Inc()
		metricFsyncSeconds.ObserveSince(start)
		if err != nil {
			j.err = fmt.Errorf("wal: fsync: %w", err)
			metricWriteErrors.Inc()
			return j.err
		}
		j.dirty = false
	}
	j.lastSync = time.Now()
	return nil
}

// rotate seals the active segment and starts the next one.
func (j *Journal) rotate() error {
	if err := j.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("wal: rotate: %w", err)
		return j.err
	}
	j.sealedBytes += j.size
	f, size, err := createSegment(j.dir, j.seq+1)
	if err != nil {
		j.err = fmt.Errorf("wal: rotate: %w", err)
		return j.err
	}
	j.f, j.size = f, size
	j.seq++
	metricRotations.Inc()
	return nil
}

// compact rewrites snapshot + sealed segments into one new snapshot and
// deletes the files it covers. Everything before the last opReset is dropped
// — that is the only place journal history actually shrinks; otherwise the
// snapshot is the full (compactly re-encoded) record stream, which replays
// through the same ingest path as live votes and is therefore bit-identical
// by construction.
func (j *Journal) compact() error {
	if j.err != nil {
		return j.err
	}
	through := j.seq - 1 // everything sealed; the active segment stays
	if through == 0 || through == j.snapSeq {
		return nil
	}
	start := time.Now()
	body := make([]byte, 0, j.snapBytes+j.sealedBytes)
	appendHooks := Hooks{
		Vote: func(item, worker int, dirty bool) error {
			label := votes.Clean
			if dirty {
				label = votes.Dirty
			}
			body = appendVote(body, votes.Vote{Item: item, Worker: worker, Label: label})
			return nil
		},
		EndTask: func() { body = append(body, opEnd) },
		Reset:   func() { body = body[:0] },
		Window: func(start int64) error {
			body = appendWindow(body, start)
			return nil
		},
	}
	if j.snapSeq > 0 {
		old, err := readSnapshotBody(snapPath(j.dir, j.snapSeq))
		if err != nil {
			j.err = fmt.Errorf("wal: compact: %w", err)
			return j.err
		}
		if err := decodeRecords(old, appendHooks); err != nil {
			j.err = fmt.Errorf("wal: compact: %w", err)
			return j.err
		}
	}
	var scratch []byte
	for seq := j.snapSeq + 1; seq <= through; seq++ {
		res, sc, err := scanSegment(segPath(j.dir, seq), appendHooks, scratch)
		scratch = sc
		if err == nil && !res.clean {
			err = fmt.Errorf("wal: compact: segment %d has a torn tail", seq)
		}
		if err != nil {
			j.err = err
			return j.err
		}
	}
	newSnap := snapPath(j.dir, through)
	if err := writeSnapshot(newSnap, body); err != nil {
		j.err = fmt.Errorf("wal: compact: %w", err)
		return j.err
	}
	// The new snapshot is durable; covered files are now garbage.
	for seq := j.snapSeq + 1; seq <= through; seq++ {
		os.Remove(segPath(j.dir, seq))
	}
	if j.snapSeq > 0 {
		os.Remove(snapPath(j.dir, j.snapSeq))
	}
	_ = syncDir(j.dir)
	fi, err := os.Stat(newSnap)
	if err != nil {
		j.err = err
		return j.err
	}
	j.snapSeq = through
	j.snapBytes = fi.Size()
	j.sealedBytes = 0
	metricCompactions.Inc()
	metricCompactionSeconds.ObserveSince(start)
	return nil
}

// Checkpoint forces a durable point: the active segment is synced and, when
// enough sealed history has accumulated, folded into a snapshot. Shutdown
// paths call it so the next boot recovers from a compact prefix.
func (j *Journal) Checkpoint() error {
	if j.err != nil {
		return j.err
	}
	if j.sealedBytes > 0 && j.sealedBytes >= j.snapBytes {
		if err := j.compact(); err != nil {
			return err
		}
	}
	return j.Sync()
}

// Close syncs and closes the journal. Further operations return ErrClosed.
func (j *Journal) Close() error {
	if j.err == ErrClosed {
		return nil
	}
	err := j.Sync()
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	j.err = ErrClosed
	return err
}

// Dir returns the journal's directory (diagnostics and tests).
func (j *Journal) Dir() string { return j.dir }
