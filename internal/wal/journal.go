package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dqm/internal/votes"
)

// ErrClosed is returned by operations on a closed (or evicted) journal.
var ErrClosed = errors.New("wal: journal closed")

// Journal is the write-ahead log of one session: an active segment receiving
// group-committed frames, zero or more sealed segments, and at most one
// snapshot covering everything before them. The session engine serializes
// calls (the journal is written under the session mutex); the journal's own
// mutex exists for the store's Syncer, which flushes and fsyncs dirty
// journals from its own goroutine.
type Journal struct {
	dir  string
	opts Options

	// sy is the store-wide group-commit syncer (nil for journals detached
	// from a store, which fall back to self-timed fsync policies).
	sy *Syncer
	// queued marks the journal as enqueued for the syncer's next pass; the
	// syncer clears it when it snapshots the queue. Lock-free so MarkDirty
	// stays off the syncer lock on the already-queued fast path.
	queued atomic.Bool

	// mu guards all file and buffer state below. Appends hold it only for
	// the in-memory work (frame encode, buffer drain, rotation); FsyncAlways
	// appends park on the syncer after releasing it, so a parked committer
	// never blocks the pass that will cover it.
	mu sync.Mutex

	f    *os.File // active segment
	seq  uint64   // active segment sequence number
	size int64    // bytes written (flushed) to the active segment

	// wbuf accumulates committed frames not yet handed to the OS: the
	// user-space half of group commit. It drains on flushChunk overflow,
	// Sync, rotation, Close, and every syncer pass that covers this journal.
	// Under FsyncAlways a commit does not return before a pass drained and
	// fsynced it, so nothing acknowledged ever sits here; under
	// FsyncBatch/FsyncNever a crash can lose it, which those policies
	// permit by contract.
	wbuf []byte

	snapSeq     uint64 // highest segment covered by the snapshot (0 = none)
	snapBytes   int64  // size of the current snapshot file
	sealedBytes int64  // bytes in sealed segments not yet compacted

	// err is sticky: after any write failure the journal refuses further
	// appends, because bytes may have reached the file without being framed —
	// appending more frames after them would put intact frames beyond a torn
	// one, which recovery (correctly) refuses to read past.
	err error

	dirty    bool // unsynced frames in the active segment
	lastSync time.Time

	buf []byte // payload scratch, reused across appends
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.bin", seq))
}

// createSegment opens a fresh segment file and writes its header.
func createSegment(dir string, seq uint64) (*os.File, int64, error) {
	f, err := os.OpenFile(segPath(dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, int64(len(segMagic)), nil
}

// Append write-ahead-logs one engine batch (the group-commit unit): the
// votes, plus a task boundary when endTask is set. It must be called before
// the batch is applied to in-memory state.
func (j *Journal) Append(batch []votes.Vote, endTask bool) error {
	if len(batch) == 0 && !endTask {
		return nil
	}
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	payload := j.buf[:0]
	for _, v := range batch {
		payload = appendVote(payload, v)
	}
	if endTask {
		payload = append(payload, opEnd)
	}
	j.buf = payload
	return j.finishCommit(payload)
}

// EndTask logs a bare task boundary.
func (j *Journal) EndTask() error {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	return j.finishCommit([]byte{opEnd})
}

// AppendRotation logs one engine batch, its task boundary, and the window
// rotation that boundary seals — as ONE frame, so a torn tail can never
// separate a task end from the rotation it fired: recovery either sees both
// or neither, and replayed window boundaries always match an uninterrupted
// run. windowStart is the first completed-task index of the sealed window.
func (j *Journal) AppendRotation(batch []votes.Vote, windowStart int64) error {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	payload := j.buf[:0]
	for _, v := range batch {
		payload = appendVote(payload, v)
	}
	payload = append(payload, opEnd)
	payload = appendWindow(payload, windowStart)
	j.buf = payload
	return j.finishCommit(payload)
}

// AppendColumns write-ahead-logs one columnar batch: raw pre-encoded DQMV
// vote records ('V' opcode streams, see internal/votelog) journaled verbatim
// as a single opColumns record — no per-vote re-encode, the bytes that came
// off the wire are the bytes that hit the log. The caller must have validated
// the raw stream (encoding and item bounds) first: the journal must never
// hold a record replay would reject. endTask appends a task boundary in the
// same frame; windowStart >= 0 additionally appends the window rotation that
// boundary seals (pass -1 for none).
func (j *Journal) AppendColumns(raw []byte, endTask bool, windowStart int64) error {
	if len(raw) == 0 && !endTask {
		return nil
	}
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	payload := j.buf[:0]
	if len(raw) > 0 {
		payload = appendColumns(payload, raw)
	}
	if endTask {
		payload = append(payload, opEnd)
		if windowStart >= 0 {
			payload = appendWindow(payload, windowStart)
		}
	}
	j.buf = payload
	return j.finishCommit(payload)
}

// Reset logs a session reset. The next compaction discards everything before
// it.
func (j *Journal) Reset() error {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	return j.finishCommit([]byte{opReset})
}

// flushChunk drains the user-space frame buffer to the OS once it exceeds
// this size, bounding both memory and write-syscall frequency.
const flushChunk = 64 << 10

// finishCommit commits one frame and applies the fsync policy. Called with
// j.mu held; unlocks before any syncer interaction so a parked committer
// cannot deadlock the pass that must flush its journal.
func (j *Journal) finishCommit(payload []byte) error {
	start := time.Now()
	err := j.commitLocked(payload)
	sy, policy := j.sy, j.opts.Fsync
	needSync := false
	if err == nil && sy == nil {
		// Detached journal: the old self-timed policies.
		switch policy {
		case FsyncAlways:
			needSync = true
		case FsyncBatch:
			needSync = time.Since(j.lastSync) >= j.opts.BatchInterval
		}
	}
	j.mu.Unlock()
	metricFrames.Inc()
	defer metricAppendSeconds.ObserveSince(start)
	if err != nil {
		return err
	}
	switch {
	case sy != nil && policy == FsyncAlways:
		return sy.Commit(j)
	case sy != nil:
		sy.MarkDirty(j)
		return nil
	case needSync:
		return j.Sync()
	}
	return nil
}

// commitLocked appends one frame to the group-commit buffer, rotating and
// compacting when thresholds are crossed. Call with j.mu held.
func (j *Journal) commitLocked(payload []byte) error {
	j.wbuf = appendFrame(j.wbuf, payload)
	j.dirty = true
	if len(j.wbuf) >= flushChunk {
		if err := j.flushLocked(); err != nil {
			return err
		}
	}
	if j.size+int64(len(j.wbuf)) >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
		if j.sealedBytes >= j.opts.CompactAfter && j.sealedBytes >= j.snapBytes {
			if err := j.compactLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush drains buffered frames to the OS without fsyncing — the FsyncNever
// idle bound (syncer passes call the locked variant so acknowledged frames
// cannot sit in process memory indefinitely).
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.flushLocked()
}

// flushLocked drains buffered frames to the OS. Call with j.mu held.
func (j *Journal) flushLocked() error {
	if len(j.wbuf) == 0 {
		return nil
	}
	n, err := j.f.Write(j.wbuf)
	if err != nil {
		j.err = fmt.Errorf("wal: append: %w", err)
		metricWriteErrors.Inc()
		return j.err
	}
	j.size += int64(n)
	j.wbuf = j.wbuf[:0]
	metricFlushedBytes.Add(uint64(n))
	return nil
}

// Sync flushes buffered frames and fsyncs the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.syncLocked()
}

// syncLocked flushes and fsyncs. Call with j.mu held.
func (j *Journal) syncLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	if j.dirty {
		start := time.Now()
		err := j.f.Sync()
		metricFsyncs.Inc()
		metricFsyncSeconds.ObserveSince(start)
		if err != nil {
			j.err = fmt.Errorf("wal: fsync: %w", err)
			metricWriteErrors.Inc()
			return j.err
		}
		j.dirty = false
	}
	j.lastSync = time.Now()
	return nil
}

// rotateLocked seals the active segment and starts the next one. Rotation
// fsyncs directly (not through the syncer): a sealed segment must be fully
// durable before its successor exists. Call with j.mu held.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("wal: rotate: %w", err)
		return j.err
	}
	j.sealedBytes += j.size
	f, size, err := createSegment(j.dir, j.seq+1)
	if err != nil {
		j.err = fmt.Errorf("wal: rotate: %w", err)
		return j.err
	}
	j.f, j.size = f, size
	j.seq++
	metricRotations.Inc()
	return nil
}

// compactLocked rewrites snapshot + sealed segments into one new snapshot and
// deletes the files it covers. Everything before the last opReset is dropped
// — that is the only place journal history actually shrinks; otherwise the
// snapshot is the full (compactly re-encoded) record stream, which replays
// through the same ingest path as live votes and is therefore bit-identical
// by construction. Columnar records are re-encoded per vote here — snapshots
// are the compact form by contract, and compaction is a cold path.
// Call with j.mu held.
func (j *Journal) compactLocked() error {
	if j.err != nil {
		return j.err
	}
	through := j.seq - 1 // everything sealed; the active segment stays
	if through == 0 || through == j.snapSeq {
		return nil
	}
	start := time.Now()
	body := make([]byte, 0, j.snapBytes+j.sealedBytes)
	appendHooks := Hooks{
		Vote: func(item, worker int, dirty bool) error {
			label := votes.Clean
			if dirty {
				label = votes.Dirty
			}
			body = appendVote(body, votes.Vote{Item: item, Worker: worker, Label: label})
			return nil
		},
		EndTask: func() { body = append(body, opEnd) },
		Reset:   func() { body = body[:0] },
		Window: func(start int64) error {
			body = appendWindow(body, start)
			return nil
		},
	}
	if j.snapSeq > 0 {
		old, err := readSnapshotBody(snapPath(j.dir, j.snapSeq))
		if err != nil {
			j.err = fmt.Errorf("wal: compact: %w", err)
			return j.err
		}
		if err := decodeRecords(old, appendHooks); err != nil {
			j.err = fmt.Errorf("wal: compact: %w", err)
			return j.err
		}
	}
	var scratch []byte
	for seq := j.snapSeq + 1; seq <= through; seq++ {
		res, sc, err := scanSegment(segPath(j.dir, seq), appendHooks, scratch)
		scratch = sc
		if err == nil && !res.clean {
			err = fmt.Errorf("wal: compact: segment %d has a torn tail", seq)
		}
		if err != nil {
			j.err = err
			return j.err
		}
	}
	newSnap := snapPath(j.dir, through)
	if err := writeSnapshot(newSnap, body); err != nil {
		j.err = fmt.Errorf("wal: compact: %w", err)
		return j.err
	}
	// The new snapshot is durable; covered files are now garbage.
	for seq := j.snapSeq + 1; seq <= through; seq++ {
		os.Remove(segPath(j.dir, seq))
	}
	if j.snapSeq > 0 {
		os.Remove(snapPath(j.dir, j.snapSeq))
	}
	_ = syncDir(j.dir)
	fi, err := os.Stat(newSnap)
	if err != nil {
		j.err = err
		return j.err
	}
	j.snapSeq = through
	j.snapBytes = fi.Size()
	j.sealedBytes = 0
	metricCompactions.Inc()
	metricCompactionSeconds.ObserveSince(start)
	return nil
}

// Checkpoint forces a durable point: the active segment is synced and, when
// enough sealed history has accumulated, folded into a snapshot. Shutdown
// paths call it so the next boot recovers from a compact prefix.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.sealedBytes > 0 && j.sealedBytes >= j.snapBytes {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return j.syncLocked()
}

// Close syncs and closes the journal. Further operations return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == ErrClosed {
		return nil
	}
	var err error
	if j.err != nil {
		err = j.err
	} else {
		err = j.syncLocked()
	}
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	j.err = ErrClosed
	return err
}

// Dir returns the journal's directory (diagnostics and tests).
func (j *Journal) Dir() string { return j.dir }
