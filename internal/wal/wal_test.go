package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dqm/internal/votes"
)

// op mirrors one replayed record for comparison.
type op struct {
	Kind   byte
	Item   int
	Worker int
	Dirty  bool
}

// recHooks collects replayed records. Window starts are recorded in Item.
func recHooks(out *[]op) Hooks {
	return Hooks{
		Vote: func(item, worker int, dirty bool) error {
			*out = append(*out, op{Kind: opVote, Item: item, Worker: worker, Dirty: dirty})
			return nil
		},
		EndTask: func() { *out = append(*out, op{Kind: opEnd}) },
		Reset:   func() { *out = append(*out, op{Kind: opReset}) },
		Window: func(start int64) error {
			*out = append(*out, op{Kind: opWindow, Item: int(start)})
			return nil
		},
	}
}

// applyReset collapses a logical op stream the way recovery state would see
// it: a reset discards everything before it.
func applyReset(ops []op) []op {
	out := ops[:0:0]
	for _, o := range ops {
		if o.Kind == opReset {
			out = out[:0]
			continue
		}
		out = append(out, o)
	}
	return out
}

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func mkVote(item, worker int, dirty bool) votes.Vote {
	l := votes.Clean
	if dirty {
		l = votes.Dirty
	}
	return votes.Vote{Item: item, Worker: worker, Label: l}
}

func TestJournalRoundTrip(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	j, err := s.Create(Meta{ID: "rt", Items: 100, CreatedAt: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	var want []op
	append1 := func(batch []votes.Vote, end bool) {
		if err := j.Append(batch, end); err != nil {
			t.Fatal(err)
		}
		for _, v := range batch {
			want = append(want, op{Kind: opVote, Item: v.Item, Worker: v.Worker, Dirty: v.Label == votes.Dirty})
		}
		if end {
			want = append(want, op{Kind: opEnd})
		}
	}
	append1([]votes.Vote{mkVote(1, 0, true), mkVote(2, 1, false)}, true)
	append1([]votes.Vote{mkVote(3, -7, true)}, false) // negative worker ids survive zigzag
	if err := j.EndTask(); err != nil {
		t.Fatal(err)
	}
	want = append(want, op{Kind: opEnd})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var got []op
	j2, err := s.Recover("rt", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered ops mismatch:\n got %v\nwant %v", got, want)
	}
	// The recovered journal keeps appending where the old one stopped.
	if err := j2.Append([]votes.Vote{mkVote(9, 2, true)}, true); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	var got3 []op
	j3, err := s.Recover("rt", recHooks(&got3))
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	want = append(want, op{Kind: opVote, Item: 9, Worker: 2, Dirty: true}, op{Kind: opEnd})
	if !reflect.DeepEqual(got3, want) {
		t.Fatalf("after reopen+append:\n got %v\nwant %v", got3, want)
	}
}

// TestAppendRotationRoundTrip: a window rotation shares its frame with the
// task boundary that sealed it, and both survive a reopen in order.
func TestAppendRotationRoundTrip(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	j, err := s.Create(Meta{ID: "rot", Items: 50, CreatedAt: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	var want []op
	batch := []votes.Vote{mkVote(4, 1, true), mkVote(9, 2, false)}
	if err := j.AppendRotation(batch, 30); err != nil {
		t.Fatal(err)
	}
	for _, v := range batch {
		want = append(want, op{Kind: opVote, Item: v.Item, Worker: v.Worker, Dirty: v.Label == votes.Dirty})
	}
	want = append(want, op{Kind: opEnd}, op{Kind: opWindow, Item: 30})
	// A bare rotation boundary (EndTask with no votes) works too.
	if err := j.AppendRotation(nil, 40); err != nil {
		t.Fatal(err)
	}
	want = append(want, op{Kind: opEnd}, op{Kind: opWindow, Item: 40})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("rot", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation round trip:\n got %v\nwant %v", got, want)
	}
}

// TestCompactionPreservesWindowRecords: snapshot rewrites must carry window
// rotations through, or recovered windowed state would silently lose its
// boundary verification.
func TestCompactionPreservesWindowRecords(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever, SegmentBytes: 128, CompactAfter: 256})
	j, err := s.Create(Meta{ID: "winpack", Items: 30})
	if err != nil {
		t.Fatal(err)
	}
	var want []op
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		batch := []votes.Vote{mkVote(rng.Intn(30), rng.Intn(5), rng.Intn(2) == 0)}
		want = append(want, op{Kind: opVote, Item: batch[0].Item, Worker: batch[0].Worker, Dirty: batch[0].Label == votes.Dirty})
		if i%5 == 4 {
			start := int64(i - 4)
			if err := j.AppendRotation(batch, start); err != nil {
				t.Fatal(err)
			}
			want = append(want, op{Kind: opEnd}, op{Kind: opWindow, Item: int(start)})
		} else {
			if err := j.Append(batch, true); err != nil {
				t.Fatal(err)
			}
			want = append(want, op{Kind: opEnd})
		}
	}
	if j.snapSeq == 0 {
		t.Fatal("no compaction happened despite tiny thresholds")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("winpack", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window records lost through compaction: got %d ops, want %d", len(got), len(want))
	}
}

func TestClosedJournalRefusesWrites(t *testing.T) {
	s := testStore(t, Options{})
	j, err := s.Create(Meta{ID: "closed", Items: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]votes.Vote{mkVote(0, 0, true)}, false); err != ErrClosed {
		t.Fatalf("append on closed journal: got %v, want ErrClosed", err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	s := testStore(t, Options{})
	j, err := s.Create(Meta{ID: "dup", Items: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := s.Create(Meta{ID: "dup", Items: 1}); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestDirEncodingWeirdIDs(t *testing.T) {
	s := testStore(t, Options{})
	ids := []string{"plain", "with.dots-and_underscores", "sp ace", "sl/ash", "..", "-dash", "ünïcode", "%percent",
		"#hash", strings.Repeat("long/", 80) + "id"} // > maxHexID bytes → hashed dir name
	for _, id := range ids {
		j, err := s.Create(Meta{ID: id, Items: 1})
		if err != nil {
			t.Fatalf("create %q: %v", id, err)
		}
		j.Close()
		if !s.Exists(id) {
			t.Fatalf("Exists(%q) = false after create", id)
		}
	}
	got, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("IDs() = %v, want %d ids", got, len(ids))
	}
	seen := map[string]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("id %q missing from IDs() = %v", id, got)
		}
	}
	removed, err := s.Delete("sl/ash")
	if err != nil {
		t.Fatal(err)
	}
	if !removed {
		t.Fatal("Delete(sl/ash) reported nothing removed")
	}
	if s.Exists("sl/ash") {
		t.Fatal("session survives Delete")
	}
	if removed, err := s.Delete("never-existed"); err != nil || removed {
		t.Fatalf("Delete(never-existed) = (%v, %v), want (false, nil)", removed, err)
	}
}

// journalN appends n single-vote tasks, returning the logical op stream.
func journalN(t *testing.T, j *Journal, n, itemSpace int, seed int64) []op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ops []op
	for i := 0; i < n; i++ {
		batch := make([]votes.Vote, 1+rng.Intn(4))
		for k := range batch {
			batch[k] = mkVote(rng.Intn(itemSpace), rng.Intn(5), rng.Intn(2) == 0)
			ops = append(ops, op{Kind: opVote, Item: batch[k].Item, Worker: batch[k].Worker, Dirty: batch[k].Label == votes.Dirty})
		}
		if err := j.Append(batch, true); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op{Kind: opEnd})
	}
	return ops
}

func TestRotationAndCompaction(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever, SegmentBytes: 256, CompactAfter: 512})
	j, err := s.Create(Meta{ID: "compact", Items: 50})
	if err != nil {
		t.Fatal(err)
	}
	want := journalN(t, j, 400, 50, 1)
	if j.snapSeq == 0 {
		t.Fatal("no compaction happened despite tiny thresholds")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Covered segments are deleted; only the snapshot and the tail remain.
	snaps, segs, err := listFiles(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("want exactly 1 snapshot, got %v", snaps)
	}
	for _, seq := range segs {
		if seq <= snaps[0] {
			t.Fatalf("segment %d not deleted though snapshot %d covers it", seq, snaps[0])
		}
	}
	var got []op
	j2, err := s.Recover("compact", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered stream differs after compaction: got %d ops, want %d", len(got), len(want))
	}
}

func TestResetTruncatesCompactedHistory(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever, SegmentBytes: 128, CompactAfter: 1})
	j, err := s.Create(Meta{ID: "reset", Items: 20})
	if err != nil {
		t.Fatal(err)
	}
	pre := journalN(t, j, 50, 20, 2)
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	post := journalN(t, j, 50, 20, 3)
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("reset", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := applyReset(append(append(append([]op{}, pre...), op{Kind: opReset}), post...))
	if !reflect.DeepEqual(applyReset(got), want) {
		t.Fatalf("post-reset recovery mismatch: got %d ops, want %d", len(applyReset(got)), len(want))
	}
	// The snapshot must actually have dropped pre-reset history: the total
	// recovered record count is at most reset marker + post ops + tail.
	if len(got) > len(post)+1+len(pre)/2 {
		t.Fatalf("compaction kept pre-reset history: %d recovered ops", len(got))
	}
}

func TestTornTailIsTruncatedFrameAligned(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	j, err := s.Create(Meta{ID: "torn", Items: 30})
	if err != nil {
		t.Fatal(err)
	}
	full := journalN(t, j, 60, 30, 4)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(j.Dir(), 1)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries = prefixes that recovery can yield. Compute them by
	// scanning with no hooks at every truncation point.
	var cuts []int64
	for c := int64(0); c < int64(len(raw)); c += 3 {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, int64(len(raw)))
	prevVotes := -1
	for _, cut := range cuts {
		dir := t.TempDir()
		s2, err := OpenStore(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(filepath.Join(dir, "torn"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "torn", "meta.json"), mustMeta(t, "torn", 30), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "torn", filepath.Base(seg)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []op
		j2, err := s2.Recover("torn", recHooks(&got))
		if err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		j2.Close()
		// Recovered ops must be a prefix of the full stream.
		if len(got) > 0 && !reflect.DeepEqual(got, full[:len(got)]) {
			t.Fatalf("cut=%d: recovered ops are not a prefix", cut)
		}
		// Monotonic: more surviving bytes never recover less.
		if len(got) < prevVotes {
			t.Fatalf("cut=%d: recovered %d ops, previously %d", cut, len(got), prevVotes)
		}
		prevVotes = len(got)
	}
	if prevVotes != len(full) {
		t.Fatalf("full file recovered %d ops, want %d", prevVotes, len(full))
	}
}

func TestCorruptTailFrameIsDropped(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	j, err := s.Create(Meta{ID: "corrupt", Items: 30})
	if err != nil {
		t.Fatal(err)
	}
	full := journalN(t, j, 40, 30, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(j.Dir(), 1)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a byte inside the last frame
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("corrupt", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) >= len(full) || !reflect.DeepEqual(got, full[:len(got)]) {
		t.Fatalf("corrupt tail: recovered %d ops of %d, prefix=%v", len(got), len(full), reflect.DeepEqual(got, full[:len(got)]))
	}
}

func TestRecoverHeaderlessFinalSegment(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	j, err := s.Create(Meta{ID: "hdr", Items: 10})
	if err != nil {
		t.Fatal(err)
	}
	full := journalN(t, j, 10, 10, 6)
	j.Close()
	// Simulate a crash during rotation: a second segment exists but its
	// header never hit the disk.
	if err := os.WriteFile(segPath(j.Dir(), 2), []byte{'D', 'Q'}, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []op
	j2, err := s.Recover("hdr", recHooks(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("headerless tail segment: got %d ops, want %d", len(got), len(full))
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			s := testStore(t, Options{Fsync: p, BatchInterval: time.Millisecond})
			j, err := s.Create(Meta{ID: "fs", Items: 10})
			if err != nil {
				t.Fatal(err)
			}
			want := journalN(t, j, 20, 10, 7)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			var got []op
			j2, err := s.Recover("fs", recHooks(&got))
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("policy %v: recovery mismatch", p)
			}
		})
	}
}

func mustMeta(t *testing.T, id string, items int) []byte {
	t.Helper()
	return []byte(fmt.Sprintf(`{"version":1,"id":%q,"items":%d,"created_at":"2026-01-01T00:00:00Z"}`, id, items))
}

// TestAbortedCreateDirIsReclaimed: a crash between Mkdir and writeMeta leaves
// a session directory without meta.json. Such debris must not be listed, must
// not block a fresh Create of the same id, must be removable via Delete, and
// OpenStore must sweep it on the next boot.
func TestAbortedCreateDirIsReclaimed(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	if ids, err := s.IDs(); err != nil || len(ids) != 0 {
		t.Fatalf("IDs() = (%v, %v), want empty: orphan dir listed", ids, err)
	}
	if s.Exists("torn") {
		t.Fatal("Exists reports an orphan dir as a session")
	}
	// Create reclaims the id instead of failing with "already exists".
	j, err := s.Create(Meta{ID: "torn", Items: 1})
	if err != nil {
		t.Fatalf("create over aborted dir: %v", err)
	}
	j.Close()

	// A second orphan (with a stray temp file, as an interrupted writeMeta
	// leaves behind) is swept by the next OpenStore.
	if err := os.Mkdir(filepath.Join(dir, "torn2"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn2", "meta.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn2")); !os.IsNotExist(err) {
		t.Fatalf("orphan dir survived OpenStore (stat err %v)", err)
	}
	if ids, err := s2.IDs(); err != nil || len(ids) != 1 || ids[0] != "torn" {
		t.Fatalf("IDs() after sweep = (%v, %v), want [torn]", ids, err)
	}

	// Delete removes an orphan dir even though Exists is false for it.
	if err := os.Mkdir(filepath.Join(dir, "torn3"), 0o755); err != nil {
		t.Fatal(err)
	}
	if removed, err := s2.Delete("torn3"); err != nil || !removed {
		t.Fatalf("Delete(orphan) = (%v, %v), want (true, nil)", removed, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn3")); !os.IsNotExist(err) {
		t.Fatal("orphan dir survived Delete")
	}
}

// TestStoreIDsByMTimeOrderingForRecovery: the mtime listing boot recovery
// budgets from must come back newest-first, with ties broken by id so the
// order is deterministic.
func TestStoreIDsByMTimeOrderingForRecovery(t *testing.T) {
	s := testStore(t, Options{Fsync: FsyncNever})
	for _, id := range []string{"alpha", "beta", "gamma", "delta"} {
		j, err := s.Create(Meta{ID: id, Items: 10, CreatedAt: time.Now()})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Now().Add(-48 * time.Hour)
	stamp := map[string]time.Time{
		"alpha": base.Add(2 * time.Hour),
		"beta":  base, // tied with delta: id order breaks the tie
		"gamma": base.Add(3 * time.Hour),
		"delta": base,
	}
	for id, ts := range stamp {
		dir := filepath.Join(s.Dir(), id)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if err := os.Chtimes(filepath.Join(dir, e.Name()), ts, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := s.IDsByMTime()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gamma", "alpha", "beta", "delta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IDsByMTime() = %v, want %v", got, want)
	}
}
