package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"dqm/internal/votelog"
	"dqm/internal/votes"
)

// Record opcodes. A frame payload is a sequence of these.
const (
	opVote   byte = 0x01 // uvarint(item<<1 | dirty), zigzag-varint(worker)
	opEnd    byte = 0x02 // task boundary
	opReset  byte = 0x03 // clear all session state
	opWindow byte = 0x04 // uvarint(start): window rotation sealed at this task boundary
	// opColumns carries one columnar vote batch: uvarint(len) followed by len
	// bytes of raw DQMV 'V' records (opcode 0x56, uvarint(item<<1|dirty),
	// zigzag-varint(worker) — internal/votelog's binary vote encoding),
	// journaled verbatim from the wire so bulk ingest never re-encodes per
	// vote. Replay streams the embedded votes through the same Vote hook as
	// opVote records, so recovered state cannot depend on which encoding a
	// batch arrived in.
	opColumns byte = 0x05
)

// maxColumnsLen bounds one opColumns record; matching the frame-payload bound
// keeps a corrupt length varint from asking the decoder to slice gigabytes.
const maxColumnsLen = 1 << 26

// Hooks receives the decoded record stream during replay. Vote may reject a
// record (e.g. an out-of-population item after external tampering) and
// Window a rotation that does not match the deterministically replayed
// window state; either error aborts replay and is reported as corruption,
// not as a torn tail.
type Hooks struct {
	Vote    func(item, worker int, dirty bool) error
	EndTask func()
	Reset   func()
	// Window observes a window-rotation record: the window starting at
	// completed-task index start sealed at the task boundary logged
	// immediately before it (always in the same frame as its opEnd).
	Window func(start int64) error

	// Votes, when set, selects the batched replay path: runs of consecutive
	// vote records — single opVote records and opColumns payloads alike —
	// are decoded into Cols and delivered as one batch per flush point (the
	// next non-vote record, or the end of the frame payload). Frames are the
	// group-commit unit, so batches arrive task-sized, and batch order equals
	// record order — replayed state is bit-identical to the per-vote path.
	// The rare vote whose item or worker does not fit the columnar int32
	// domain is delivered through Vote instead (after a flush, preserving
	// order), so Vote should still be set as the fallback.
	Votes func(cols *votelog.VoteColumns) error
	// Cols is the reused decode scratch for Votes; replay grows it once and
	// refills it per batch, so long journals replay without per-batch
	// allocation. Required when Votes is set.
	Cols *votelog.VoteColumns
}

// zigzag maps signed onto unsigned varint-friendly integers.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendVote appends one opVote record.
func appendVote(buf []byte, v votes.Vote) []byte {
	key := uint64(v.Item) << 1
	if v.Label == votes.Dirty {
		key |= 1
	}
	buf = append(buf, opVote)
	buf = binary.AppendUvarint(buf, key)
	return binary.AppendUvarint(buf, zigzag(int64(v.Worker)))
}

// appendWindow appends one opWindow record.
func appendWindow(buf []byte, start int64) []byte {
	buf = append(buf, opWindow)
	return binary.AppendUvarint(buf, uint64(start))
}

// appendColumns appends one opColumns record wrapping raw DQMV 'V'-record
// bytes verbatim.
func appendColumns(buf []byte, raw []byte) []byte {
	buf = append(buf, opColumns)
	buf = binary.AppendUvarint(buf, uint64(len(raw)))
	return append(buf, raw...)
}

// binOpVote is the DQMV binary vote opcode (internal/votelog); opColumns
// payloads are streams of exactly these records.
const binOpVote byte = 'V'

// decodeColumns streams the raw 'V' records of one columnar payload through
// vote. The wire format inside an opColumns record is votelog's, but the
// decode loop lives here so WAL replay has no dependency direction problem
// (votelog depends on wire-format helpers only, not on the WAL).
func decodeColumns(raw []byte, vote func(item, worker int, dirty bool) error) error {
	for len(raw) > 0 {
		if raw[0] != binOpVote {
			return fmt.Errorf("wal: columnar record: unknown vote opcode 0x%02x", raw[0])
		}
		raw = raw[1:]
		key, n := binary.Uvarint(raw)
		if n <= 0 || key>>1 > math.MaxInt32 {
			return fmt.Errorf("wal: columnar record: bad vote item varint")
		}
		raw = raw[n:]
		w, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("wal: columnar record: bad vote worker varint")
		}
		raw = raw[n:]
		worker := unzigzag(w)
		if worker < math.MinInt32 || worker > math.MaxInt32 {
			return fmt.Errorf("wal: columnar record: worker id %d out of range", worker)
		}
		if vote != nil {
			if err := vote(int(key>>1), int(worker), key&1 == 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeRecords streams one frame payload (or snapshot body) through h,
// selecting the batched path when h.Votes is set.
func decodeRecords(p []byte, h Hooks) error {
	if h.Votes != nil {
		return decodeRecordsBatched(p, h)
	}
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		switch op {
		case opVote:
			key, n := binary.Uvarint(p)
			if n <= 0 || key>>1 > math.MaxInt {
				return fmt.Errorf("wal: bad vote item varint")
			}
			p = p[n:]
			w, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("wal: bad vote worker varint")
			}
			p = p[n:]
			worker := unzigzag(w)
			if int64(int(worker)) != worker {
				return fmt.Errorf("wal: worker id %d out of range", worker)
			}
			if h.Vote != nil {
				if err := h.Vote(int(key>>1), int(worker), key&1 == 1); err != nil {
					return err
				}
			}
		case opEnd:
			if h.EndTask != nil {
				h.EndTask()
			}
		case opReset:
			if h.Reset != nil {
				h.Reset()
			}
		case opWindow:
			start, n := binary.Uvarint(p)
			if n <= 0 || start > math.MaxInt64 {
				return fmt.Errorf("wal: bad window start varint")
			}
			p = p[n:]
			if h.Window != nil {
				if err := h.Window(int64(start)); err != nil {
					return err
				}
			}
		case opColumns:
			size, n := binary.Uvarint(p)
			if n <= 0 || size > maxColumnsLen || size > uint64(len(p)-n) {
				return fmt.Errorf("wal: bad columnar record length")
			}
			p = p[n:]
			if err := decodeColumns(p[:size], h.Vote); err != nil {
				return err
			}
			p = p[size:]
		default:
			return fmt.Errorf("wal: unknown record opcode 0x%02x", op)
		}
	}
	return nil
}

// decodeRecordsBatched is the columnar replay fast path: vote records
// accumulate in h.Cols and flush as one batch at every non-vote record and at
// the end of the payload, so a journal replays in task-sized column batches
// instead of one hook call per vote. Record order is preserved exactly —
// batches are contiguous runs — which keeps replayed state bit-identical to
// the per-vote path.
func decodeRecordsBatched(p []byte, h Hooks) error {
	cols := h.Cols
	if cols == nil {
		// Callers pass a reused scratch; tolerate its absence at the cost of
		// one allocation per payload.
		cols = &votelog.VoteColumns{}
	}
	flush := func() error {
		if cols.Len() == 0 {
			return nil
		}
		err := h.Votes(cols)
		cols.Reset()
		return err
	}
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		switch op {
		case opVote:
			key, n := binary.Uvarint(p)
			if n <= 0 || key>>1 > math.MaxInt {
				return fmt.Errorf("wal: bad vote item varint")
			}
			p = p[n:]
			w, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("wal: bad vote worker varint")
			}
			p = p[n:]
			worker := unzigzag(w)
			if int64(int(worker)) != worker {
				return fmt.Errorf("wal: worker id %d out of range", worker)
			}
			if key>>1 <= math.MaxInt32 && worker >= math.MinInt32 && worker <= math.MaxInt32 {
				cols.Append(int32(key>>1), int32(worker), key&1 == 1)
				continue
			}
			// Outside the columnar int32 domain: deliver in order through the
			// per-vote fallback.
			if err := flush(); err != nil {
				return err
			}
			if h.Vote != nil {
				if err := h.Vote(int(key>>1), int(worker), key&1 == 1); err != nil {
					return err
				}
			}
		case opEnd:
			if err := flush(); err != nil {
				return err
			}
			if h.EndTask != nil {
				h.EndTask()
			}
		case opReset:
			if err := flush(); err != nil {
				return err
			}
			if h.Reset != nil {
				h.Reset()
			}
		case opWindow:
			start, n := binary.Uvarint(p)
			if n <= 0 || start > math.MaxInt64 {
				return fmt.Errorf("wal: bad window start varint")
			}
			p = p[n:]
			if err := flush(); err != nil {
				return err
			}
			if h.Window != nil {
				if err := h.Window(int64(start)); err != nil {
					return err
				}
			}
		case opColumns:
			size, n := binary.Uvarint(p)
			if n <= 0 || size > maxColumnsLen || size > uint64(len(p)-n) {
				return fmt.Errorf("wal: bad columnar record length")
			}
			p = p[n:]
			// The embedded 'V' records are votelog's own encoding: append them
			// to the open batch without a per-vote hook round trip.
			if err := cols.DecodeAppend(p[:size]); err != nil {
				return fmt.Errorf("wal: columnar record: %w", err)
			}
			p = p[size:]
		default:
			return fmt.Errorf("wal: unknown record opcode 0x%02x", op)
		}
	}
	return flush()
}
