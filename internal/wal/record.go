package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"dqm/internal/votes"
)

// Record opcodes. A frame payload is a sequence of these.
const (
	opVote   byte = 0x01 // uvarint(item<<1 | dirty), zigzag-varint(worker)
	opEnd    byte = 0x02 // task boundary
	opReset  byte = 0x03 // clear all session state
	opWindow byte = 0x04 // uvarint(start): window rotation sealed at this task boundary
)

// Hooks receives the decoded record stream during replay. Vote may reject a
// record (e.g. an out-of-population item after external tampering) and
// Window a rotation that does not match the deterministically replayed
// window state; either error aborts replay and is reported as corruption,
// not as a torn tail.
type Hooks struct {
	Vote    func(item, worker int, dirty bool) error
	EndTask func()
	Reset   func()
	// Window observes a window-rotation record: the window starting at
	// completed-task index start sealed at the task boundary logged
	// immediately before it (always in the same frame as its opEnd).
	Window func(start int64) error
}

// zigzag maps signed onto unsigned varint-friendly integers.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendVote appends one opVote record.
func appendVote(buf []byte, v votes.Vote) []byte {
	key := uint64(v.Item) << 1
	if v.Label == votes.Dirty {
		key |= 1
	}
	buf = append(buf, opVote)
	buf = binary.AppendUvarint(buf, key)
	return binary.AppendUvarint(buf, zigzag(int64(v.Worker)))
}

// appendWindow appends one opWindow record.
func appendWindow(buf []byte, start int64) []byte {
	buf = append(buf, opWindow)
	return binary.AppendUvarint(buf, uint64(start))
}

// decodeRecords streams one frame payload (or snapshot body) through h.
func decodeRecords(p []byte, h Hooks) error {
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		switch op {
		case opVote:
			key, n := binary.Uvarint(p)
			if n <= 0 || key>>1 > math.MaxInt {
				return fmt.Errorf("wal: bad vote item varint")
			}
			p = p[n:]
			w, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("wal: bad vote worker varint")
			}
			p = p[n:]
			worker := unzigzag(w)
			if int64(int(worker)) != worker {
				return fmt.Errorf("wal: worker id %d out of range", worker)
			}
			if h.Vote != nil {
				if err := h.Vote(int(key>>1), int(worker), key&1 == 1); err != nil {
					return err
				}
			}
		case opEnd:
			if h.EndTask != nil {
				h.EndTask()
			}
		case opReset:
			if h.Reset != nil {
				h.Reset()
			}
		case opWindow:
			start, n := binary.Uvarint(p)
			if n <= 0 || start > math.MaxInt64 {
				return fmt.Errorf("wal: bad window start varint")
			}
			p = p[n:]
			if h.Window != nil {
				if err := h.Window(int64(start)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("wal: unknown record opcode 0x%02x", op)
		}
	}
	return nil
}
