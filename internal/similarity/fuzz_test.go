package similarity

import (
	"math"
	"testing"
	"unicode/utf8"
)

// refLevenshtein is the plain full-matrix dynamic program — the textbook
// reference the optimized kernels (prefix/suffix trimming, Myers
// bit-parallel, banded abandon) are cross-checked against.
func refLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if x := cur[j-1] + 1; x < d {
				d = x
			}
			if x := prev[j-1] + cost; x < d {
				d = x
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// FuzzLevenshtein cross-checks the optimized edit-distance kernels against
// the reference DP: Levenshtein must match exactly, BoundedLevenshtein must
// match under the bound and exceed it above, and EditSimilarityAtLeast must
// agree with the unbounded similarity on both the threshold decision and the
// returned value.
func FuzzLevenshtein(f *testing.F) {
	seeds := []struct {
		a, b   string
		max    int
		minSim float64
	}{
		{"", "", 0, 0.5},
		{"kitten", "sitting", 3, 0.5},
		{"abcdef", "abcdef", 0, 1},
		{"café", "cafe", 1, 0.7},
		{"naïve zoë", "naive zoe", 4, 0.6},
		{"日本語のテキスト", "日本語テキスト", 2, 0.8},
		{"Größenwahn", "grossenwahn", 5, 0.4},
		{"ресторан у моря", "ресторанъ у моря", 1, 0.9},
		{"🍕 pizza palace", "pizza palace 🍔", 6, 0.3},
		{"the quick brown fox jumps over the lazy dog", "the quick brown fox jumped over a lazy dog", 8, 0.85},
		{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "a", 100, 0.01},
	}
	for _, s := range seeds {
		f.Add(s.a, s.b, s.max, s.minSim)
	}
	f.Fuzz(func(t *testing.T, a, b string, max int, minSim float64) {
		// Cap the quadratic reference DP; the kernels themselves have no such
		// limit.
		if len(a) > 256 || len(b) > 256 {
			t.Skip("inputs too long for the reference DP")
		}
		ref := refLevenshtein(a, b)

		if got := Levenshtein(a, b); got != ref {
			t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, ref)
		}

		got := BoundedLevenshtein(a, b, max)
		switch {
		case max < 0:
			// Contract: any value greater than max.
			if got <= max {
				t.Fatalf("BoundedLevenshtein(%q, %q, %d) = %d, want > %d", a, b, max, got, max)
			}
		case ref <= max:
			if got != ref {
				t.Fatalf("BoundedLevenshtein(%q, %q, %d) = %d, want exact %d", a, b, max, got, ref)
			}
		default:
			if got <= max {
				t.Fatalf("BoundedLevenshtein(%q, %q, %d) = %d, want > %d (true distance %d)", a, b, max, got, max, ref)
			}
		}

		if math.IsNaN(minSim) || math.IsInf(minSim, 0) {
			return
		}
		if minSim < 0 {
			minSim = 0
		} else if minSim > 1 {
			minSim = 1
		}
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		refSim := 1.0
		if maxLen > 0 {
			refSim = 1 - float64(ref)/float64(maxLen)
		}
		sim, ok := EditSimilarityAtLeast(a, b, minSim)
		if ok != (refSim >= minSim) {
			t.Fatalf("EditSimilarityAtLeast(%q, %q, %v) ok = %v, reference similarity %v", a, b, minSim, ok, refSim)
		}
		if ok && sim != refSim {
			t.Fatalf("EditSimilarityAtLeast(%q, %q, %v) = %v, want %v", a, b, minSim, sim, refSim)
		}
		if full := EditSimilarity(a, b); full != refSim {
			t.Fatalf("EditSimilarity(%q, %q) = %v, want %v", a, b, full, refSim)
		}
	})
}
