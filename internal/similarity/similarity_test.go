package similarity

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"saturday", "sunday", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"ab", "ba", 2},
		{"café", "cafe", 1}, // rune-level, not byte-level
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func randStr(rng *rand.Rand, maxLen int) string {
	n := rng.IntN(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.IntN(4)) // small alphabet makes collisions likely
	}
	return string(b)
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	prop := func(seed uint64) bool {
		a, b, c := randStr(rng, 12), randStr(rng, 12), randStr(rng, 12)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba { // symmetry
			return false
		}
		if Levenshtein(a, a) != 0 { // identity
			return false
		}
		if dab == 0 && a != b { // separation
			return false
		}
		// Triangle inequality.
		if Levenshtein(a, c) > dab+Levenshtein(b, c) {
			return false
		}
		// Upper bound: max length.
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return dab <= maxLen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Fatalf("empty similarity = %v", got)
	}
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Fatalf("equal similarity = %v", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
	if got := EditSimilarity("abcd", "abcx"); got != 0.75 {
		t.Fatalf("similarity = %v, want 0.75", got)
	}
}

func TestEditSimilarityBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	prop := func(seed uint64) bool {
		a, b := randStr(rng, 15), randStr(rng, 15)
		s := EditSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Ritz-Carlton Cafe (Buckhead) #2")
	want := []string{"ritz", "carlton", "cafe", "buckhead", "2"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if len(Tokenize("  ...  ")) != 0 {
		t.Fatal("punctuation-only string should have no tokens")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("", ""); got != 1 {
		t.Fatalf("empty Jaccard = %v", got)
	}
	if got := Jaccard("a b c", "a b c"); got != 1 {
		t.Fatalf("equal Jaccard = %v", got)
	}
	if got := Jaccard("a b", "c d"); got != 0 {
		t.Fatalf("disjoint Jaccard = %v", got)
	}
	if got := Jaccard("a b c", "b c d"); got != 0.5 {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	// Case and punctuation insensitivity.
	if got := Jaccard("Ritz-Carlton Cafe", "cafe RITZ carlton"); got != 1 {
		t.Fatalf("normalized Jaccard = %v", got)
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Fatalf("NGrams = %v", g)
	}
	short := NGrams("a", 3)
	if short["a"] != 1 || len(short) != 1 {
		t.Fatalf("short NGrams = %v", short)
	}
	if len(NGrams("", 2)) != 0 {
		t.Fatal("empty NGrams should be empty")
	}
}

func TestNGramSimilarity(t *testing.T) {
	if got := NGramSimilarity("night", "night", 2); got != 1 {
		t.Fatalf("equal ngram sim = %v", got)
	}
	if got := NGramSimilarity("abc", "xyz", 2); got != 0 {
		t.Fatalf("disjoint ngram sim = %v", got)
	}
	if got := NGramSimilarity("", "", 2); got != 1 {
		t.Fatalf("empty ngram sim = %v", got)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		s := NGramSimilarity(randStr(rng, 10), randStr(rng, 10), 2)
		if s < 0 || s > 1 {
			t.Fatalf("ngram sim out of bounds: %v", s)
		}
	}
}

func TestTokenSortKey(t *testing.T) {
	// The paper's duplicate example: reordering plus punctuation drift.
	a := TokenSortKey("Ritz-Carlton Cafe (buckhead)")
	b := TokenSortKey("Cafe Ritz-Carlton Buckhead")
	if a != b {
		t.Fatalf("keys differ: %q vs %q", a, b)
	}
	if got := TokenSortKey("b a c"); got != "a b c" {
		t.Fatalf("TokenSortKey = %q", got)
	}
	if got := TokenSortKey(""); got != "" {
		t.Fatalf("empty key = %q", got)
	}
}

func TestTokenSortedEditSimilarity(t *testing.T) {
	// Token reordering should not hurt the sorted similarity.
	if got := TokenSortedEditSimilarity("Golden Dragon Cafe", "Cafe Golden Dragon"); got != 1 {
		t.Fatalf("reordered similarity = %v", got)
	}
	plain := EditSimilarity("Golden Dragon Cafe", "Cafe Golden Dragon")
	if plain >= 1 {
		t.Fatal("test premise broken: plain similarity should degrade on reorder")
	}
}
