package similarity

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"saturday", "sunday", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"ab", "ba", 2},
		{"café", "cafe", 1}, // rune-level, not byte-level
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func randStr(rng *rand.Rand, maxLen int) string {
	n := rng.IntN(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.IntN(4)) // small alphabet makes collisions likely
	}
	return string(b)
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	prop := func(seed uint64) bool {
		a, b, c := randStr(rng, 12), randStr(rng, 12), randStr(rng, 12)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba { // symmetry
			return false
		}
		if Levenshtein(a, a) != 0 { // identity
			return false
		}
		if dab == 0 && a != b { // separation
			return false
		}
		// Triangle inequality.
		if Levenshtein(a, c) > dab+Levenshtein(b, c) {
			return false
		}
		// Upper bound: max length.
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return dab <= maxLen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Fatalf("empty similarity = %v", got)
	}
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Fatalf("equal similarity = %v", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
	if got := EditSimilarity("abcd", "abcx"); got != 0.75 {
		t.Fatalf("similarity = %v, want 0.75", got)
	}
}

func TestEditSimilarityBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	prop := func(seed uint64) bool {
		a, b := randStr(rng, 15), randStr(rng, 15)
		s := EditSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Ritz-Carlton Cafe (Buckhead) #2")
	want := []string{"ritz", "carlton", "cafe", "buckhead", "2"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if len(Tokenize("  ...  ")) != 0 {
		t.Fatal("punctuation-only string should have no tokens")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("", ""); got != 1 {
		t.Fatalf("empty Jaccard = %v", got)
	}
	if got := Jaccard("a b c", "a b c"); got != 1 {
		t.Fatalf("equal Jaccard = %v", got)
	}
	if got := Jaccard("a b", "c d"); got != 0 {
		t.Fatalf("disjoint Jaccard = %v", got)
	}
	if got := Jaccard("a b c", "b c d"); got != 0.5 {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	// Case and punctuation insensitivity.
	if got := Jaccard("Ritz-Carlton Cafe", "cafe RITZ carlton"); got != 1 {
		t.Fatalf("normalized Jaccard = %v", got)
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Fatalf("NGrams = %v", g)
	}
	short := NGrams("a", 3)
	if short["a"] != 1 || len(short) != 1 {
		t.Fatalf("short NGrams = %v", short)
	}
	if len(NGrams("", 2)) != 0 {
		t.Fatal("empty NGrams should be empty")
	}
}

func TestNGramSimilarity(t *testing.T) {
	if got := NGramSimilarity("night", "night", 2); got != 1 {
		t.Fatalf("equal ngram sim = %v", got)
	}
	if got := NGramSimilarity("abc", "xyz", 2); got != 0 {
		t.Fatalf("disjoint ngram sim = %v", got)
	}
	if got := NGramSimilarity("", "", 2); got != 1 {
		t.Fatalf("empty ngram sim = %v", got)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		s := NGramSimilarity(randStr(rng, 10), randStr(rng, 10), 2)
		if s < 0 || s > 1 {
			t.Fatalf("ngram sim out of bounds: %v", s)
		}
	}
}

func TestTokenSortKey(t *testing.T) {
	// The paper's duplicate example: reordering plus punctuation drift.
	a := TokenSortKey("Ritz-Carlton Cafe (buckhead)")
	b := TokenSortKey("Cafe Ritz-Carlton Buckhead")
	if a != b {
		t.Fatalf("keys differ: %q vs %q", a, b)
	}
	if got := TokenSortKey("b a c"); got != "a b c" {
		t.Fatalf("TokenSortKey = %q", got)
	}
	if got := TokenSortKey(""); got != "" {
		t.Fatalf("empty key = %q", got)
	}
}

func TestTokenSortedEditSimilarity(t *testing.T) {
	// Token reordering should not hurt the sorted similarity.
	if got := TokenSortedEditSimilarity("Golden Dragon Cafe", "Cafe Golden Dragon"); got != 1 {
		t.Fatalf("reordered similarity = %v", got)
	}
	plain := EditSimilarity("Golden Dragon Cafe", "Cafe Golden Dragon")
	if plain >= 1 {
		t.Fatal("test premise broken: plain similarity should degrade on reorder")
	}
}

// referenceLevenshtein is the textbook full-matrix DP, kept as an oracle for
// the optimized kernel (prefix/suffix trimming, Myers bit-parallel core,
// banded abandon).
func referenceLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if c := cur[j-1] + 1; c < d {
				d = c
			}
			if c := prev[j-1] + cost; c < d {
				d = c
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// TestLevenshteinMatchesReference cross-validates the optimized kernel
// against the naive DP on deterministic pseudo-random strings, covering the
// Myers fast path (short patterns), the DP fallback (>64 runes) and
// non-ASCII runes.
func TestLevenshteinMatchesReference(t *testing.T) {
	alphabets := []string{"ab", "abcde 0189", "αβγ ab"}
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for _, alpha := range alphabets {
		runes := []rune(alpha)
		mk := func(maxLen int) string {
			n := next(maxLen + 1)
			out := make([]rune, n)
			for i := range out {
				out[i] = runes[next(len(runes))]
			}
			return string(out)
		}
		for i := 0; i < 300; i++ {
			a, b := mk(90), mk(90)
			want := referenceLevenshtein(a, b)
			if got := Levenshtein(a, b); got != want {
				t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
			}
			if got := BoundedLevenshtein(a, b, want); got != want {
				t.Fatalf("BoundedLevenshtein(%q, %q, %d) = %d, want exact", a, b, want, got)
			}
			if lo := BoundedLevenshtein(a, b, want-1); want > 0 && lo <= want-1 {
				t.Fatalf("BoundedLevenshtein(%q, %q, %d) = %d, want > bound", a, b, want-1, lo)
			}
		}
	}
}

// TestEditSimilarityAtLeast: the thresholded path must classify exactly like
// the unbounded similarity.
func TestEditSimilarityAtLeast(t *testing.T) {
	pairs := [][2]string{
		{"", ""},
		{"a", ""},
		{"kitten", "sitting"},
		{"ritz carlton cafe", "cafe ritz"},
		{"completely different", "unrelated words here"},
		{"same string same string", "same string same string"},
	}
	for _, minSim := range []float64{0, 0.3, 0.5, 0.9, 1} {
		for _, p := range pairs {
			want := EditSimilarity(p[0], p[1])
			got, ok := EditSimilarityAtLeast(p[0], p[1], minSim)
			if wantOK := want >= minSim; ok != wantOK {
				t.Fatalf("EditSimilarityAtLeast(%q, %q, %v) ok = %v, want %v (sim %v)",
					p[0], p[1], minSim, ok, wantOK, want)
			}
			if ok && got != want {
				t.Fatalf("EditSimilarityAtLeast(%q, %q, %v) = %v, want %v", p[0], p[1], minSim, got, want)
			}
		}
	}
}

// TestCharProfileBound: the histogram bound never exceeds the true distance,
// and CouldMatch never discards a pair the exact comparison keeps.
func TestCharProfileBound(t *testing.T) {
	strs := []string{"", "abc", "cafe ritz carlton", "ritz carlton cafe",
		"photoshop elements 5", "unrelated zzz 999", "αβγ non ascii"}
	for _, a := range strs {
		for _, b := range strs {
			pa, pb := NewCharProfile(a), NewCharProfile(b)
			d := Levenshtein(a, b)
			if lb := pa.MinDistance(pb); lb > d {
				t.Fatalf("MinDistance(%q, %q) = %d exceeds true distance %d", a, b, lb, d)
			}
			for _, minSim := range []float64{0.3, 0.5, 0.9} {
				if _, ok := EditSimilarityAtLeast(a, b, minSim); ok && !pa.CouldMatch(pb, minSim) {
					t.Fatalf("CouldMatch(%q, %q, %v) discarded a matching pair", a, b, minSim)
				}
			}
		}
	}
}
