// Package similarity provides the string-similarity measures used by the
// CrowdER-style prioritization heuristics: normalized edit-distance
// similarity (the measure the paper uses to window candidate pairs), Jaccard
// similarity over token sets (the measure CrowdER's first stage uses), and
// n-gram similarity.
package similarity

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (unit costs for
// insertion, deletion and substitution), operating on runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Single-row dynamic program; prev is D[i-1][*], cur is D[i][*].
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSimilarity returns the normalized edit-distance similarity
// 1 − d(a,b)/max(|a|,|b|) ∈ [0, 1]. Two empty strings have similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Tokenize lower-cases s and splits it into alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of the token sets of
// a and b. Two token-less strings have similarity 1.
func Jaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

// NGrams returns the multiset of character n-grams of s (as a count map).
// Strings shorter than n yield the whole string as a single gram.
func NGrams(s string, n int) map[string]int {
	r := []rune(strings.ToLower(s))
	out := make(map[string]int)
	if len(r) == 0 {
		return out
	}
	if len(r) <= n {
		out[string(r)]++
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])]++
	}
	return out
}

// NGramSimilarity returns the Dice coefficient over character n-gram
// multisets: 2·|A∩B| / (|A|+|B|).
func NGramSimilarity(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	var sa, sb, inter int
	for _, c := range ga {
		sa += c
	}
	for _, c := range gb {
		sb += c
	}
	if sa+sb == 0 {
		return 1
	}
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			inter += min2(ca, cb)
		}
	}
	return 2 * float64(inter) / float64(sa+sb)
}

// TokenSortKey normalizes a string for order-insensitive comparison:
// lower-cased tokens sorted and re-joined. "Cafe Ritz-Carlton Buckhead" and
// "Ritz-Carlton Cafe (Buckhead)" normalize to the same key.
func TokenSortKey(s string) string {
	toks := Tokenize(s)
	// Insertion sort: token lists are short.
	for i := 1; i < len(toks); i++ {
		for j := i; j > 0 && toks[j] < toks[j-1]; j-- {
			toks[j], toks[j-1] = toks[j-1], toks[j]
		}
	}
	return strings.Join(toks, " ")
}

// TokenSortedEditSimilarity returns the edit similarity of the token-sorted
// normalizations, robust to token reordering typical of duplicate records.
func TokenSortedEditSimilarity(a, b string) float64 {
	return EditSimilarity(TokenSortKey(a), TokenSortKey(b))
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min3(a, b, c int) int {
	return min2(min2(a, b), c)
}
