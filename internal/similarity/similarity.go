// Package similarity provides the string-similarity measures used by the
// CrowdER-style prioritization heuristics: normalized edit-distance
// similarity (the measure the paper uses to window candidate pairs), Jaccard
// similarity over token sets (the measure CrowdER's first stage uses), and
// n-gram similarity.
package similarity

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// levState is the reusable scratch of the edit-distance kernel: the rune
// decodings of both inputs and the two DP rows. Pooling it makes Levenshtein
// allocation-free in steady state while staying safe for concurrent callers
// (the parallel replay engine scores from many goroutines).
type levState struct {
	ra, rb    []rune
	prev, cur []int
	// peq holds the Myers bit-parallel pattern masks for ASCII runes;
	// peqExt is the (rare) spill for wider runes. Touched cells are zeroed
	// after each call so the state stays reusable without a full clear.
	peq    [128]uint64
	peqExt map[rune]uint64
}

var levPool = sync.Pool{New: func() any { return new(levState) }}

// appendRunes decodes s into dst, reusing dst's capacity.
func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// Levenshtein returns the edit distance between a and b (unit costs for
// insertion, deletion and substitution), operating on runes.
func Levenshtein(a, b string) int {
	st := levPool.Get().(*levState)
	d := st.distance(a, b, -1)
	levPool.Put(st)
	return d
}

// BoundedLevenshtein returns the edit distance between a and b if it is at
// most max, and any value greater than max otherwise (the DP rows are
// abandoned as soon as every cell exceeds the bound). Callers that only
// classify against a threshold — such as the candidate-window prefilter —
// avoid the full O(|a|·|b|) work on clearly dissimilar strings.
func BoundedLevenshtein(a, b string, max int) int {
	if max < 0 {
		return 0
	}
	st := levPool.Get().(*levState)
	d := st.distance(a, b, max)
	levPool.Put(st)
	return d
}

// distance runs the two-row DP. A non-negative bound enables the length-gap
// early exit and the per-row band abandon.
func (st *levState) distance(a, b string, bound int) int {
	ra := appendRunes(st.ra[:0], a)
	rb := appendRunes(st.rb[:0], b)
	st.ra, st.rb = ra, rb

	// Trim the common prefix and suffix: they contribute no edits and
	// shrinking the DP quadratically outweighs the linear scan.
	for len(ra) > 0 && len(rb) > 0 && ra[0] == rb[0] {
		ra, rb = ra[1:], rb[1:]
	}
	for len(ra) > 0 && len(rb) > 0 && ra[len(ra)-1] == rb[len(rb)-1] {
		ra, rb = ra[:len(ra)-1], rb[:len(rb)-1]
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	gap := len(ra) - len(rb)
	if gap < 0 {
		gap = -gap
	}
	if bound >= 0 && gap > bound {
		// Every alignment needs at least |len(a)−len(b)| insertions.
		return gap
	}

	// Myers' bit-parallel algorithm processes one text rune per word
	// operation when the (shorter) pattern fits in a machine word — the
	// common case for record keys — an order of magnitude faster than the
	// cell-by-cell DP below.
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(ra) <= 64 {
		return st.myers(ra, rb)
	}

	// Single-row dynamic program; prev is D[i-1][*], cur is D[i][*].
	prev, cur := st.prev, st.cur
	for len(prev) < len(rb)+1 {
		prev = append(prev, 0)
		cur = append(cur, 0)
	}
	st.prev, st.cur = prev, cur
	for j := 0; j <= len(rb); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if bound >= 0 && rowMin > bound {
			// Row values only grow downward; the final distance already
			// exceeds the bound.
			return rowMin
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// myers computes Levenshtein(pattern, text) with Myers' 1999 bit-parallel
// algorithm (Hyyrö's formulation); pattern must have at most 64 runes.
func (st *levState) myers(pattern, text []rune) int {
	m := len(pattern)
	var ext map[rune]uint64
	for i, r := range pattern {
		bit := uint64(1) << i
		if r < 128 {
			st.peq[r] |= bit
		} else {
			if ext == nil {
				if st.peqExt == nil {
					st.peqExt = make(map[rune]uint64)
				}
				ext = st.peqExt
			}
			ext[r] |= bit
		}
	}

	pv, mv := ^uint64(0), uint64(0)
	score := m
	high := uint64(1) << (m - 1)
	for _, r := range text {
		var eq uint64
		if r < 128 {
			eq = st.peq[r]
		} else if ext != nil {
			eq = ext[r]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&high != 0 {
			score++
		}
		if mh&high != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}

	for _, r := range pattern {
		if r < 128 {
			st.peq[r] = 0
		} else {
			delete(ext, r)
		}
	}
	return score
}

// EditSimilarity returns the normalized edit-distance similarity
// 1 − d(a,b)/max(|a|,|b|) ∈ [0, 1]. Two empty strings have similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// EditSimilarityAtLeast reports whether EditSimilarity(a, b) ≥ minSim and, if
// so, its exact value. When the similarity is below the threshold it returns
// (0, false) without completing the full dynamic program: similarity ≥ minSim
// bounds the edit distance by (1−minSim)·max(|a|,|b|), so the kernel abandons
// dissimilar pairs after the cheap length-gap check or the first hopeless DP
// row. Candidate-window scans use it to skip the O(n·m) work on the vast
// majority of pairs.
func EditSimilarityAtLeast(a, b string, minSim float64) (float64, bool) {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 1, minSim <= 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	bound := maxLen
	if minSim > 0 {
		// One unit of slack absorbs float rounding at the threshold; the
		// exact float comparison below then decides the borderline pairs the
		// same way an unbounded EditSimilarity call would.
		bound = int((1-minSim)*float64(maxLen)) + 1
	}
	d := BoundedLevenshtein(a, b, bound)
	sim := 1 - float64(d)/float64(maxLen)
	if sim < minSim {
		return 0, false
	}
	return sim, true
}

// CharProfile is a precomputed character histogram plus rune length. Two
// profiles give an O(alphabet) lower bound on the edit distance of their
// strings: every insertion or deletion moves one histogram cell and every
// substitution moves two (one down, one up), so the distance is at least
// max(surplus, deficit) over the cells. Candidate scans build one profile
// per record and use CouldMatch to discard the bulk of pairs without
// touching the DP kernel.
type CharProfile struct {
	counts [38]int32
	length int
}

// charBucket maps a rune to a histogram cell: 'a'–'z' → 0–25, '0'–'9' →
// 26–35, space → 36, everything else → 37. Collisions in the overflow cell
// only weaken the bound, never invalidate it.
func charBucket(r rune) int {
	switch {
	case r >= 'a' && r <= 'z':
		return int(r - 'a')
	case r >= '0' && r <= '9':
		return 26 + int(r-'0')
	case r == ' ':
		return 36
	default:
		return 37
	}
}

// NewCharProfile builds the profile of s.
func NewCharProfile(s string) CharProfile {
	var p CharProfile
	for _, r := range s {
		p.counts[charBucket(r)]++
		p.length++
	}
	return p
}

// Length returns the rune count of the profiled string.
func (p CharProfile) Length() int { return p.length }

// MinDistance returns a lower bound on Levenshtein(a, b) computed from the
// histograms alone.
func (p CharProfile) MinDistance(q CharProfile) int {
	var surplus, deficit int32
	for i := range p.counts {
		if d := p.counts[i] - q.counts[i]; d > 0 {
			surplus += d
		} else {
			deficit -= d
		}
	}
	if surplus > deficit {
		return int(surplus)
	}
	return int(deficit)
}

// CouldMatch reports whether the histogram bound allows
// EditSimilarity(a, b) ≥ minSim. A false return is definitive; a true
// return still requires the exact kernel.
func (p CharProfile) CouldMatch(q CharProfile, minSim float64) bool {
	maxLen := p.length
	if q.length > maxLen {
		maxLen = q.length
	}
	if maxLen == 0 {
		return minSim <= 1
	}
	// Same one-unit slack as EditSimilarityAtLeast so the filter never
	// discards a pair the exact comparison would keep.
	bound := int((1-minSim)*float64(maxLen)) + 1
	return p.MinDistance(q) <= bound
}

// Tokenize lower-cases s and splits it into alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of the token sets of
// a and b. Two token-less strings have similarity 1.
func Jaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

// NGrams returns the multiset of character n-grams of s (as a count map).
// Strings shorter than n yield the whole string as a single gram.
func NGrams(s string, n int) map[string]int {
	r := []rune(strings.ToLower(s))
	out := make(map[string]int)
	if len(r) == 0 {
		return out
	}
	if len(r) <= n {
		out[string(r)]++
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])]++
	}
	return out
}

// NGramSimilarity returns the Dice coefficient over character n-gram
// multisets: 2·|A∩B| / (|A|+|B|).
func NGramSimilarity(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	var sa, sb, inter int
	for _, c := range ga {
		sa += c
	}
	for _, c := range gb {
		sb += c
	}
	if sa+sb == 0 {
		return 1
	}
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			inter += min2(ca, cb)
		}
	}
	return 2 * float64(inter) / float64(sa+sb)
}

// TokenSortKey normalizes a string for order-insensitive comparison:
// lower-cased tokens sorted and re-joined. "Cafe Ritz-Carlton Buckhead" and
// "Ritz-Carlton Cafe (Buckhead)" normalize to the same key.
func TokenSortKey(s string) string {
	toks := Tokenize(s)
	// Insertion sort: token lists are short.
	for i := 1; i < len(toks); i++ {
		for j := i; j > 0 && toks[j] < toks[j-1]; j-- {
			toks[j], toks[j-1] = toks[j-1], toks[j]
		}
	}
	return strings.Join(toks, " ")
}

// TokenSortedEditSimilarity returns the edit similarity of the token-sorted
// normalizations, robust to token reordering typical of duplicate records.
func TokenSortedEditSimilarity(a, b string) float64 {
	return EditSimilarity(TokenSortKey(a), TokenSortKey(b))
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min3(a, b, c int) int {
	return min2(min2(a, b), c)
}
