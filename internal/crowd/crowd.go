// Package crowd simulates the crowdsourced cleaning process of Sections 1.2
// and 6: fallible workers receive tasks of p items sampled at random
// (uniformly, or ε-randomized over a heuristic window), and mark each item
// dirty or clean with worker-specific false-positive and false-negative
// rates. This replaces the paper's Amazon Mechanical Turk deployments; the
// estimators only ever see the resulting vote stream.
package crowd

import (
	"fmt"

	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// Profile describes a population of workers by their expected error rates.
type Profile struct {
	// FPRate is the probability a worker marks a truly clean item dirty.
	FPRate float64
	// FNRate is the probability a worker misses a truly dirty item.
	FNRate float64
	// Jitter is the standard deviation of per-worker deviation from the
	// population rates (truncated so rates stay in [0, 1]). Zero yields
	// identical workers.
	Jitter float64
	// Fatigue makes workers degrade with repetition (§2.2.1 lists fatigue
	// among the failure modes the estimators must tolerate): after a worker
	// completes k tasks, both error rates are multiplied by (1 + Fatigue·k),
	// saturating at 1. Zero disables the effect.
	Fatigue float64
}

// FromPrecision builds the symmetric-error profile of the Figure 6a sweep:
// a worker with precision q classifies any item correctly with probability
// q, so FPRate = FNRate = 1 − q.
func FromPrecision(q float64) Profile {
	return Profile{FPRate: 1 - q, FNRate: 1 - q}
}

// Worker is one crowd worker with realized error rates.
type Worker struct {
	ID int
	FP float64
	FN float64
}

// Respond produces the worker's label for an item whose true state is
// isDirty. fnDifficulty scales the false-negative rate (≥ 1 = a true error
// that is harder to spot, used by the address error taxonomy) and
// fpDifficulty scales the false-positive rate (≥ 1 = a clean item that looks
// dirty, the "difficult pairs" of the product experiment); pass 1 for the
// neutral case.
func (w Worker) Respond(r *xrand.RNG, isDirty bool, fnDifficulty, fpDifficulty float64) votes.Label {
	if isDirty {
		fn := w.FN * fnDifficulty
		if fn > 1 {
			fn = 1
		}
		if r.Bernoulli(fn) {
			return votes.Clean
		}
		return votes.Dirty
	}
	fp := w.FP * fpDifficulty
	if fp > 1 {
		fp = 1
	}
	if r.Bernoulli(fp) {
		return votes.Dirty
	}
	return votes.Clean
}

// Pool is a reusable set of workers drawn from a profile. Reusing workers
// across tasks preserves per-worker bias correlation, mirroring AMT workers
// taking many tasks.
type Pool struct {
	workers []Worker
}

// NewPool realizes size workers from the profile.
func NewPool(size int, p Profile, r *xrand.RNG) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("crowd: pool size %d must be positive", size))
	}
	ws := make([]Worker, size)
	for i := range ws {
		ws[i] = Worker{
			ID: i,
			FP: r.TruncNorm(p.FPRate, p.Jitter*p.FPRate, 0, 1),
			FN: r.TruncNorm(p.FNRate, p.Jitter*p.FNRate, 0, 1),
		}
	}
	return &Pool{workers: ws}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Worker returns worker i.
func (p *Pool) Worker(i int) Worker { return p.workers[i] }

// Pick returns a uniformly chosen worker.
func (p *Pool) Pick(r *xrand.RNG) Worker { return p.workers[r.IntN(len(p.workers))] }

// Task is one unit of crowd work: a single worker's labels over a sample of
// items.
type Task struct {
	Worker int
	Items  []int
	Labels []votes.Label
}

// Votes converts the task to matrix entries.
func (t Task) Votes() []votes.Vote {
	return t.AppendVotes(make([]votes.Vote, 0, len(t.Items)))
}

// AppendVotes appends the task's matrix entries to dst and returns the
// extended slice. Replay loops pass a reused buffer (dst[:0]) to keep the
// per-task hot path allocation-free.
func (t Task) AppendVotes(dst []votes.Vote) []votes.Vote {
	for i, item := range t.Items {
		dst = append(dst, votes.Vote{Item: item, Worker: t.Worker, Label: t.Labels[i]})
	}
	return dst
}

// Sampler picks the items for one task. heuristic.EpsilonSampler satisfies
// this; Uniform is the unprioritized default.
type Sampler interface {
	Draw(k int) []int
}

// Uniform samples each task uniformly without replacement from [0, N).
type Uniform struct {
	N   int
	RNG *xrand.RNG
}

// Draw implements Sampler.
func (u Uniform) Draw(k int) []int { return u.RNG.SampleWithoutReplacement(u.N, k) }

// Config assembles a simulator.
type Config struct {
	// Truth reports whether item i is truly dirty.
	Truth func(i int) bool
	// N is the item-space size.
	N int
	// Profile describes the worker population.
	Profile Profile
	// ItemsPerTask is p; the paper uses 10 for the real datasets and 15–20
	// in the simulation study.
	ItemsPerTask int
	// PoolSize is the number of distinct workers; 0 derives a default from
	// the task volume (one worker per ~3 tasks, min 10).
	PoolSize int
	// Sampler overrides uniform task sampling (for prioritization).
	Sampler Sampler
	// Difficulty scales per-item false-negative rates; nil means uniform 1.
	Difficulty func(i int) float64
	// FPDifficulty scales per-item false-positive rates (confusable clean
	// items that fool many workers); nil means uniform 1.
	FPDifficulty func(i int) float64
	// Seed drives all randomness.
	Seed uint64
}

// Simulator produces a deterministic stream of crowd tasks.
type Simulator struct {
	cfg     Config
	pool    *Pool
	sampler Sampler
	rng     *xrand.RNG
	taskSeq int
	// tasksDone counts completed tasks per worker for the fatigue model,
	// indexed by worker ID (pool workers are densely numbered).
	tasksDone []int
}

// NewSimulator validates the config and prepares the worker pool.
func NewSimulator(cfg Config) *Simulator {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("crowd: item space size %d must be positive", cfg.N))
	}
	if cfg.Truth == nil {
		panic("crowd: Config.Truth is required")
	}
	if cfg.ItemsPerTask <= 0 {
		panic(fmt.Sprintf("crowd: items per task %d must be positive", cfg.ItemsPerTask))
	}
	root := xrand.New(cfg.Seed).SplitNamed("crowd")
	poolSize := cfg.PoolSize
	if poolSize == 0 {
		poolSize = 40
	}
	s := &Simulator{
		cfg:       cfg,
		pool:      NewPool(poolSize, cfg.Profile, root.SplitNamed("pool")),
		rng:       root.SplitNamed("stream"),
		tasksDone: make([]int, poolSize),
	}
	if cfg.Sampler != nil {
		s.sampler = cfg.Sampler
	} else {
		s.sampler = Uniform{N: cfg.N, RNG: root.SplitNamed("sampler")}
	}
	return s
}

// Pool exposes the realized workers (used by tests and the fixed-quorum
// builder).
func (s *Simulator) Pool() *Pool { return s.pool }

// nextDraws makes the per-task random draws in the canonical order (worker,
// item sample, one response per item). NextTask and AppendTask share it so
// both paths consume identical RNG streams.
func (s *Simulator) nextDraws(respond func(worker, item int, label votes.Label)) (worker int, items []int) {
	w := s.pool.Pick(s.rng)
	fatigue := 1.0
	if f := s.cfg.Profile.Fatigue; f > 0 {
		fatigue = 1 + f*float64(s.tasksDone[w.ID])
	}
	items = s.sampler.Draw(s.cfg.ItemsPerTask)
	for _, item := range items {
		fnD, fpD := fatigue, fatigue
		if s.cfg.Difficulty != nil {
			fnD *= s.cfg.Difficulty(item)
		}
		if s.cfg.FPDifficulty != nil {
			fpD *= s.cfg.FPDifficulty(item)
		}
		respond(w.ID, item, w.Respond(s.rng, s.cfg.Truth(item), fnD, fpD))
	}
	s.taskSeq++
	s.tasksDone[w.ID]++
	return w.ID, items
}

// NextTask draws a worker and a fresh item sample and synthesizes the
// worker's labels.
func (s *Simulator) NextTask() Task {
	labels := make([]votes.Label, 0, s.cfg.ItemsPerTask)
	worker, items := s.nextDraws(func(_, _ int, l votes.Label) {
		labels = append(labels, l)
	})
	return Task{Worker: worker, Items: items, Labels: labels}
}

// AppendTask synthesizes the next task directly as matrix entries appended
// to dst, returning the extended slice. It draws exactly the same random
// stream as NextTask but lets callers that only need the votes reuse one
// buffer across tasks.
func (s *Simulator) AppendTask(dst []votes.Vote) []votes.Vote {
	s.nextDraws(func(worker, item int, l votes.Label) {
		dst = append(dst, votes.Vote{Item: item, Worker: worker, Label: l})
	})
	return dst
}

// Tasks generates n tasks.
func (s *Simulator) Tasks(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = s.NextTask()
	}
	return out
}

// QuorumTasks builds the fixed-assignment workload behind the paper's
// Sample Clean Minimum: every item receives exactly votesPerItem votes,
// packed into tasks of itemsPerTask items, each task handled by one
// (independent) worker. The task count is votesPerItem·S/p, the SCM formula
// of Section 6.1.
func QuorumTasks(items []int, votesPerItem, itemsPerTask int, pool *Pool, truth func(int) bool, rng *xrand.RNG) []Task {
	if itemsPerTask <= 0 || votesPerItem <= 0 {
		panic("crowd: quorum parameters must be positive")
	}
	var tasks []Task
	workerSeq := 0
	for v := 0; v < votesPerItem; v++ {
		order := make([]int, len(items))
		copy(order, items)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += itemsPerTask {
			end := start + itemsPerTask
			if end > len(order) {
				end = len(order)
			}
			w := pool.Worker(workerSeq % pool.Size())
			workerSeq++
			chunk := order[start:end]
			labels := make([]votes.Label, len(chunk))
			for i, item := range chunk {
				labels[i] = w.Respond(rng, truth(item), 1, 1)
			}
			tasks = append(tasks, Task{Worker: w.ID, Items: append([]int(nil), chunk...), Labels: labels})
		}
	}
	return tasks
}

// SCMTasks returns the Sample Clean Minimum task count for a sample of size
// s with p items per task and the conventional three votes per item:
// 3·S/p (rounded up).
func SCMTasks(sampleSize, itemsPerTask int) int {
	if itemsPerTask <= 0 {
		return 0
	}
	return (3*sampleSize + itemsPerTask - 1) / itemsPerTask
}

// Oracle is the perfect labeler used by the extrapolation baseline: it
// returns the ground truth for every item in the sample.
type Oracle struct {
	Truth func(i int) bool
}

// CountErrors returns the number of true errors in the sample.
func (o Oracle) CountErrors(sample []int) int {
	n := 0
	for _, i := range sample {
		if o.Truth(i) {
			n++
		}
	}
	return n
}
