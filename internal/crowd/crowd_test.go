package crowd

import (
	"math"
	"testing"

	"dqm/internal/votes"
	"dqm/internal/xrand"
)

func TestWorkerRespondPerfect(t *testing.T) {
	w := Worker{FP: 0, FN: 0}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		if w.Respond(r, true, 1, 1) != votes.Dirty {
			t.Fatal("perfect worker missed an error")
		}
		if w.Respond(r, false, 1, 1) != votes.Clean {
			t.Fatal("perfect worker flagged a clean item")
		}
	}
}

func TestWorkerRespondRates(t *testing.T) {
	w := Worker{FP: 0.1, FN: 0.3}
	r := xrand.New(2)
	const n = 50000
	fp, fn := 0, 0
	for i := 0; i < n; i++ {
		if w.Respond(r, false, 1, 1) == votes.Dirty {
			fp++
		}
		if w.Respond(r, true, 1, 1) == votes.Clean {
			fn++
		}
	}
	if got := float64(fp) / n; math.Abs(got-0.1) > 0.01 {
		t.Fatalf("FP rate %v, want ≈0.1", got)
	}
	if got := float64(fn) / n; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("FN rate %v, want ≈0.3", got)
	}
}

func TestWorkerDifficultyScaling(t *testing.T) {
	w := Worker{FN: 0.2}
	r := xrand.New(3)
	const n = 50000
	missed := 0
	for i := 0; i < n; i++ {
		if w.Respond(r, true, 2, 1) == votes.Clean {
			missed++
		}
	}
	if got := float64(missed) / n; math.Abs(got-0.4) > 0.01 {
		t.Fatalf("difficulty-2 miss rate %v, want ≈0.4", got)
	}
	// Difficulty can saturate the miss rate at 1.
	always := Worker{FN: 0.6}
	for i := 0; i < 100; i++ {
		if always.Respond(r, true, 10, 1) != votes.Clean {
			t.Fatal("saturated miss rate should always miss")
		}
	}
}

func TestFromPrecision(t *testing.T) {
	p := FromPrecision(0.8)
	if math.Abs(p.FPRate-0.2) > 1e-12 || math.Abs(p.FNRate-0.2) > 1e-12 {
		t.Fatalf("FromPrecision = %+v", p)
	}
}

func TestPool(t *testing.T) {
	r := xrand.New(4)
	p := NewPool(25, Profile{FPRate: 0.05, FNRate: 0.2, Jitter: 0.3}, r)
	if p.Size() != 25 {
		t.Fatalf("Size = %d", p.Size())
	}
	for i := 0; i < 25; i++ {
		w := p.Worker(i)
		if w.ID != i {
			t.Fatalf("worker %d has ID %d", i, w.ID)
		}
		if w.FP < 0 || w.FP > 1 || w.FN < 0 || w.FN > 1 {
			t.Fatalf("worker rates out of bounds: %+v", w)
		}
	}
	// Jitter produces heterogeneous workers.
	allSame := true
	first := p.Worker(0)
	for i := 1; i < 25; i++ {
		if p.Worker(i).FN != first.FN {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("jittered pool is homogeneous")
	}
	// Picks come from the pool.
	for i := 0; i < 50; i++ {
		w := p.Pick(r)
		if w.ID < 0 || w.ID >= 25 {
			t.Fatalf("picked unknown worker %d", w.ID)
		}
	}
}

func TestNewPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size pool did not panic")
		}
	}()
	NewPool(0, Profile{}, xrand.New(1))
}

func TestTaskVotes(t *testing.T) {
	task := Task{Worker: 7, Items: []int{3, 5}, Labels: []votes.Label{votes.Dirty, votes.Clean}}
	vs := task.Votes()
	if len(vs) != 2 {
		t.Fatalf("votes = %v", vs)
	}
	if vs[0] != (votes.Vote{Item: 3, Worker: 7, Label: votes.Dirty}) {
		t.Fatalf("vote 0 = %v", vs[0])
	}
	if vs[1] != (votes.Vote{Item: 5, Worker: 7, Label: votes.Clean}) {
		t.Fatalf("vote 1 = %v", vs[1])
	}
}

func TestUniformSampler(t *testing.T) {
	u := Uniform{N: 20, RNG: xrand.New(5)}
	for i := 0; i < 100; i++ {
		s := u.Draw(5)
		if len(s) != 5 {
			t.Fatalf("Draw(5) = %v", s)
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("bad sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSimulatorShapeAndDeterminism(t *testing.T) {
	cfg := Config{
		Truth:        func(i int) bool { return i < 10 },
		N:            100,
		Profile:      Profile{FPRate: 0.02, FNRate: 0.1},
		ItemsPerTask: 7,
		Seed:         99,
	}
	a := NewSimulator(cfg).Tasks(20)
	b := NewSimulator(cfg).Tasks(20)
	if len(a) != 20 {
		t.Fatalf("tasks = %d", len(a))
	}
	for ti := range a {
		if a[ti].Worker != b[ti].Worker || len(a[ti].Items) != 7 {
			t.Fatalf("task %d shape/determinism broken", ti)
		}
		for i := range a[ti].Items {
			if a[ti].Items[i] != b[ti].Items[i] || a[ti].Labels[i] != b[ti].Labels[i] {
				t.Fatalf("task %d not deterministic", ti)
			}
		}
	}
}

func TestSimulatorLabelsTrackTruth(t *testing.T) {
	// With low error rates, dirty items get mostly dirty votes and clean
	// items mostly clean votes.
	dirtyVotesOnDirty, votesOnDirty := 0, 0
	dirtyVotesOnClean, votesOnClean := 0, 0
	sim := NewSimulator(Config{
		Truth:        func(i int) bool { return i%5 == 0 },
		N:            500,
		Profile:      Profile{FPRate: 0.05, FNRate: 0.1},
		ItemsPerTask: 10,
		Seed:         7,
	})
	for _, task := range sim.Tasks(400) {
		for i, item := range task.Items {
			if item%5 == 0 {
				votesOnDirty++
				if task.Labels[i] == votes.Dirty {
					dirtyVotesOnDirty++
				}
			} else {
				votesOnClean++
				if task.Labels[i] == votes.Dirty {
					dirtyVotesOnClean++
				}
			}
		}
	}
	if rate := float64(dirtyVotesOnDirty) / float64(votesOnDirty); math.Abs(rate-0.9) > 0.05 {
		t.Fatalf("dirty detection rate %v, want ≈0.9", rate)
	}
	if rate := float64(dirtyVotesOnClean) / float64(votesOnClean); math.Abs(rate-0.05) > 0.03 {
		t.Fatalf("false positive rate %v, want ≈0.05", rate)
	}
}

func TestSimulatorDifficulty(t *testing.T) {
	// Items with difficulty 5 on a 0.15 FN rate are missed ≈75% of the time.
	sim := NewSimulator(Config{
		Truth:        func(i int) bool { return true },
		N:            100,
		Profile:      Profile{FNRate: 0.15},
		ItemsPerTask: 10,
		Difficulty:   func(i int) float64 { return 5 },
		Seed:         8,
	})
	missed, total := 0, 0
	for _, task := range sim.Tasks(300) {
		for _, l := range task.Labels {
			total++
			if l == votes.Clean {
				missed++
			}
		}
	}
	if rate := float64(missed) / float64(total); math.Abs(rate-0.75) > 0.04 {
		t.Fatalf("hard-item miss rate %v, want ≈0.75", rate)
	}
}

func TestSimulatorPanics(t *testing.T) {
	base := Config{Truth: func(int) bool { return false }, N: 10, ItemsPerTask: 5}
	for name, cfg := range map[string]Config{
		"zero N":       {Truth: base.Truth, N: 0, ItemsPerTask: 5},
		"nil truth":    {N: 10, ItemsPerTask: 5},
		"zero perTask": {Truth: base.Truth, N: 10, ItemsPerTask: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			NewSimulator(cfg)
		}()
	}
}

func TestQuorumTasks(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6}
	r := xrand.New(10)
	pool := NewPool(30, Profile{}, r)
	tasks := QuorumTasks(items, 3, 3, pool, func(int) bool { return false }, r)

	// Every item gets exactly 3 votes.
	counts := make(map[int]int)
	for _, task := range tasks {
		if len(task.Items) > 3 {
			t.Fatalf("task has %d items", len(task.Items))
		}
		seen := make(map[int]bool)
		for _, it := range task.Items {
			if seen[it] {
				t.Fatal("item repeated within a task")
			}
			seen[it] = true
			counts[it]++
		}
	}
	for _, it := range items {
		if counts[it] != 3 {
			t.Fatalf("item %d received %d votes", it, counts[it])
		}
	}
	// 3 passes of ceil(7/3) = 3 tasks each.
	if len(tasks) != 9 {
		t.Fatalf("tasks = %d, want 9", len(tasks))
	}
}

func TestSCMTasks(t *testing.T) {
	// The paper's Figure 3 setting: a 5% sample of 1264 pairs is ~63
	// records; with 10 records per task SCM = 3·63/10 → 19 tasks.
	if got := SCMTasks(63, 10); got != 19 {
		t.Fatalf("SCMTasks(63,10) = %d, want 19", got)
	}
	if got := SCMTasks(10, 5); got != 6 {
		t.Fatalf("SCMTasks(10,5) = %d, want 6", got)
	}
	if got := SCMTasks(10, 0); got != 0 {
		t.Fatalf("SCMTasks with zero items/task = %d", got)
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{Truth: func(i int) bool { return i%2 == 0 }}
	if got := o.CountErrors([]int{0, 1, 2, 3, 4}); got != 3 {
		t.Fatalf("CountErrors = %d", got)
	}
	if got := o.CountErrors(nil); got != 0 {
		t.Fatalf("CountErrors(nil) = %d", got)
	}
}

func TestEpsilonSamplerIntegration(t *testing.T) {
	// A custom sampler plugged into the simulator is actually used.
	fixed := fixedSampler{items: []int{3, 4, 5}}
	sim := NewSimulator(Config{
		Truth:        func(int) bool { return false },
		N:            10,
		ItemsPerTask: 3,
		Sampler:      fixed,
		Seed:         1,
	})
	task := sim.NextTask()
	for i, it := range task.Items {
		if it != fixed.items[i] {
			t.Fatalf("sampler ignored: %v", task.Items)
		}
	}
}

type fixedSampler struct{ items []int }

func (f fixedSampler) Draw(k int) []int { return f.items[:k] }

func TestSimulatorFPDifficulty(t *testing.T) {
	// Confusable clean items with a 10× multiplier on a 0.03 FP rate draw
	// false positives ≈30% of the time.
	sim := NewSimulator(Config{
		Truth:        func(i int) bool { return false },
		N:            100,
		Profile:      Profile{FPRate: 0.03},
		ItemsPerTask: 10,
		FPDifficulty: func(i int) float64 { return 10 },
		Seed:         9,
	})
	flagged, total := 0, 0
	for _, task := range sim.Tasks(300) {
		for _, l := range task.Labels {
			total++
			if l == votes.Dirty {
				flagged++
			}
		}
	}
	if rate := float64(flagged) / float64(total); math.Abs(rate-0.3) > 0.04 {
		t.Fatalf("confusable FP rate %v, want ≈0.3", rate)
	}
	// The FP rate saturates at 1.
	w := Worker{FP: 0.5}
	r := xrand.New(10)
	for i := 0; i < 100; i++ {
		if w.Respond(r, false, 1, 10) != votes.Dirty {
			t.Fatal("saturated FP rate should always flag")
		}
	}
}

func TestFatigueDegradesWorkers(t *testing.T) {
	// With fatigue, later tasks carry more errors than early ones.
	run := func(fatigue float64) (early, late float64) {
		sim := NewSimulator(Config{
			Truth:        func(i int) bool { return i%4 == 0 },
			N:            400,
			Profile:      Profile{FPRate: 0.02, FNRate: 0.1, Fatigue: fatigue},
			ItemsPerTask: 10,
			PoolSize:     5, // few workers → heavy repetition
			Seed:         11,
		})
		tasks := sim.Tasks(600)
		errRate := func(ts []Task) float64 {
			wrong, total := 0, 0
			for _, task := range ts {
				for i, item := range task.Items {
					total++
					if (task.Labels[i] == votes.Dirty) != (item%4 == 0) {
						wrong++
					}
				}
			}
			return float64(wrong) / float64(total)
		}
		return errRate(tasks[:150]), errRate(tasks[450:])
	}
	earlyF, lateF := run(0.02)
	if lateF <= earlyF*1.5 {
		t.Fatalf("fatigue had no effect: early %v, late %v", earlyF, lateF)
	}
	earlyN, lateN := run(0)
	if lateN > earlyN*1.5 {
		t.Fatalf("no-fatigue control drifted: early %v, late %v", earlyN, lateN)
	}
}

// TestAppendTaskMatchesNextTask: both task paths must consume the identical
// RNG stream, so two simulators with the same seed produce the same votes
// whichever API drives them.
func TestAppendTaskMatchesNextTask(t *testing.T) {
	mkSim := func() *Simulator {
		return NewSimulator(Config{
			Truth:        func(i int) bool { return i%7 == 0 },
			N:            100,
			Profile:      Profile{FPRate: 0.05, FNRate: 0.2, Jitter: 0.3, Fatigue: 0.01},
			ItemsPerTask: 6,
			PoolSize:     5,
			Seed:         99,
		})
	}
	a, b := mkSim(), mkSim()
	var buf []votes.Vote
	for i := 0; i < 50; i++ {
		want := a.NextTask().Votes()
		buf = b.AppendTask(buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("task %d: %d votes vs %d", i, len(buf), len(want))
		}
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("task %d vote %d: %+v vs %+v", i, j, buf[j], want[j])
			}
		}
	}
}

// TestAppendVotesReusesBuffer: AppendVotes must append in place without
// clobbering prior contents.
func TestAppendVotesReusesBuffer(t *testing.T) {
	task := Task{Worker: 3, Items: []int{4, 5}, Labels: []votes.Label{votes.Dirty, votes.Clean}}
	buf := make([]votes.Vote, 0, 8)
	buf = task.AppendVotes(buf)
	buf = task.AppendVotes(buf)
	if len(buf) != 4 {
		t.Fatalf("buffer length %d, want 4", len(buf))
	}
	if buf[0] != (votes.Vote{Item: 4, Worker: 3, Label: votes.Dirty}) {
		t.Fatalf("first vote %+v", buf[0])
	}
	if buf[2] != buf[0] || buf[3] != buf[1] {
		t.Fatal("second append does not repeat the task's votes")
	}
}
