package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/votes"
)

// simTasks produces a deterministic simulated vote stream.
func simTasks(t *testing.T, n, nTasks int, seed uint64) (*dataset.Population, []crowd.Task) {
	t.Helper()
	pop := dataset.NewPlantedPopulation(n, n/10, seed, "engine-test")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.1},
		ItemsPerTask: 10,
		Seed:         seed,
	})
	return pop, sim.Tasks(nTasks)
}

func feedSession(s *Session, tasks []crowd.Task) error {
	var buf []votes.Vote
	for _, task := range tasks {
		buf = task.AppendVotes(buf[:0])
		if err := s.Append(buf, true); err != nil {
			return err
		}
	}
	return nil
}

func TestEngineCreateGetDelete(t *testing.T) {
	e := New(Config{})
	if _, err := e.Create("", 10, SessionConfig{}); err == nil {
		t.Fatal("Create accepted an empty id")
	}
	if _, err := e.Create("a", 0, SessionConfig{}); err == nil {
		t.Fatal("Create accepted population 0")
	}
	s, err := e.Create("a", 10, SessionConfig{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := e.Create("a", 10, SessionConfig{}); err == nil {
		t.Fatal("Create accepted a duplicate id")
	}
	got, ok := e.Get("a")
	if !ok || got != s {
		t.Fatalf("Get returned %v, %v", got, ok)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
	if ids := e.IDs(); !reflect.DeepEqual(ids, []string{"a"}) {
		t.Fatalf("IDs = %v", ids)
	}
	if !e.Delete("a") || e.Delete("a") {
		t.Fatal("Delete bookkeeping wrong")
	}
	if e.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", e.Len())
	}
}

func TestEngineEvictsLRU(t *testing.T) {
	e := New(Config{MaxSessions: 2, Shards: 4})
	a, _ := e.Create("a", 5, SessionConfig{})
	if _, err := e.Create("b", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU.
	a.Record(0, 0, true)
	if _, err := e.Create("c", 5, SessionConfig{}); err != nil {
		t.Fatalf("Create with eviction: %v", err)
	}
	if _, ok := e.Get("b"); ok {
		t.Fatal("LRU session b survived eviction")
	}
	if _, ok := e.Get("a"); !ok {
		t.Fatal("recently used session a was evicted")
	}
	if e.Len() != 2 || e.Evictions() != 1 {
		t.Fatalf("Len = %d, Evictions = %d; want 2, 1", e.Len(), e.Evictions())
	}
}

func TestCreateDuplicateAtCapacityDoesNotEvict(t *testing.T) {
	e := New(Config{MaxSessions: 2})
	if _, err := e.Create("a", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("b", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	// A retried create of an existing id at capacity must fail without
	// costing any live session its state.
	if _, err := e.Create("a", 5, SessionConfig{}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if e.Len() != 2 || e.Evictions() != 0 {
		t.Fatalf("duplicate create disturbed the engine: Len=%d Evictions=%d", e.Len(), e.Evictions())
	}
	for _, id := range []string{"a", "b"} {
		if _, ok := e.Get(id); !ok {
			t.Fatalf("session %s lost to a failed duplicate create", id)
		}
	}
}

func TestOnEvictCallback(t *testing.T) {
	var evicted []string
	e := New(Config{MaxSessions: 1, OnEvict: func(id string) { evicted = append(evicted, id) }})
	if _, err := e.Create("a", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("b", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evicted, []string{"a"}) {
		t.Fatalf("OnEvict calls = %v, want [a]", evicted)
	}
	// Explicit deletes are not evictions and must not fire the hook.
	e.Delete("b")
	if !reflect.DeepEqual(evicted, []string{"a"}) {
		t.Fatalf("Delete fired OnEvict: %v", evicted)
	}
}

// TestRestoreConcurrentWithSnapshotReads is the race regression for
// Restore cloning a snapshot while Snapshot.Estimates mutates evaluation
// scratch; run with -race.
func TestRestoreConcurrentWithSnapshotReads(t *testing.T) {
	_, tasks := simTasks(t, 100, 40, 5)
	s := NewSession("s", 100, SessionConfig{})
	if err := feedSession(s, tasks); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snap.Estimates()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Restore(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestAppendValidatesBatch(t *testing.T) {
	s := NewSession("s", 3, SessionConfig{})
	batch := []votes.Vote{
		{Item: 0, Worker: 0, Label: votes.Dirty},
		{Item: 7, Worker: 0, Label: votes.Dirty}, // out of range
	}
	if err := s.Append(batch, true); err == nil {
		t.Fatal("Append accepted an out-of-range item")
	}
	// Rejection must be atomic: nothing from the batch was applied.
	if s.TotalVotes() != 0 || s.Tasks() != 0 {
		t.Fatalf("rejected batch partially applied: votes=%d tasks=%d", s.TotalVotes(), s.Tasks())
	}
}

// TestConcurrentSessionsMatchSequential is the determinism acceptance
// criterion: sessions ingesting concurrently (one goroutine each, plus
// estimate readers in flight) yield exactly the estimates of sequential
// ingest through a bare suite.
func TestConcurrentSessionsMatchSequential(t *testing.T) {
	const nSessions = 8
	pop, tasks := simTasks(t, 300, 120, 42)

	// Reference: sequential replay through a bare estimator suite.
	ref := estimator.NewSuite(pop.N(), estimator.SuiteConfig{})
	var buf []votes.Vote
	for _, task := range tasks {
		buf = task.AppendVotes(buf[:0])
		ref.ObserveTask(buf)
	}
	want := ref.EstimateAll()

	e := New(Config{Shards: 4})
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i := 0; i < nSessions; i++ {
		s, err := e.Create(fmt.Sprintf("sess-%d", i), pop.N(), SessionConfig{})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			var buf []votes.Vote
			for ti, task := range tasks {
				buf = task.AppendVotes(buf[:0])
				if err := s.Append(buf, true); err != nil {
					errs <- err
					return
				}
				if ti%10 == 0 {
					s.Estimates() // interleaved reads must not perturb the stream
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range e.IDs() {
		s, _ := e.Get(id)
		if got := s.Estimates(); !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s estimates %+v != sequential %+v", id, got, want)
		}
		if got, want := s.Tasks(), int64(len(tasks)); got != want {
			t.Fatalf("session %s tasks = %d, want %d", id, got, want)
		}
	}
}

// TestSnapshotRestoreReplay checks the snapshot contract: restoring and
// re-feeding the post-snapshot stream reproduces the original estimates
// exactly, and the snapshot itself is unaffected by later ingest.
func TestSnapshotRestoreReplay(t *testing.T) {
	pop, tasks := simTasks(t, 200, 100, 7)
	s := NewSession("s", pop.N(), SessionConfig{})
	half := len(tasks) / 2

	if err := feedSession(s, tasks[:half]); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	atSnap := s.Estimates()
	if got := snap.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("snapshot estimates %+v != session at snapshot %+v", got, atSnap)
	}

	if err := feedSession(s, tasks[half:]); err != nil {
		t.Fatal(err)
	}
	final := s.Estimates()
	if reflect.DeepEqual(final, atSnap) {
		t.Fatal("post-snapshot ingest did not move the estimates; test is vacuous")
	}
	// The snapshot must not have moved.
	if got := snap.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("later ingest leaked into snapshot: %+v != %+v", got, atSnap)
	}

	// Restore and replay the second half: bit-identical final estimates.
	if err := s.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := s.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("restored estimates %+v != snapshot %+v", got, atSnap)
	}
	if err := feedSession(s, tasks[half:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Estimates(); !reflect.DeepEqual(got, final) {
		t.Fatalf("replay after restore %+v != original final %+v", got, final)
	}
	if got, want := s.Tasks(), int64(len(tasks)); got != want {
		t.Fatalf("tasks after restore+replay = %d, want %d", got, want)
	}

	// A second restore from the same snapshot still works (immutability).
	if err := s.Restore(snap); err != nil {
		t.Fatalf("second Restore: %v", err)
	}
	if got := s.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("second restore %+v != snapshot %+v", got, atSnap)
	}
}

func TestRestoreRejectsPopulationMismatch(t *testing.T) {
	a := NewSession("a", 10, SessionConfig{})
	b := NewSession("b", 20, SessionConfig{})
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("Restore accepted a snapshot of a different population size")
	}
	if err := a.Restore(nil); err == nil {
		t.Fatal("Restore accepted a nil snapshot")
	}
}

// TestSessionCIs exercises the bootstrap CI paths through the session.
func TestSessionCIs(t *testing.T) {
	pop, tasks := simTasks(t, 200, 80, 11)
	s := NewSession("s", pop.N(), SessionConfig{
		Suite: estimator.SuiteConfig{Switch: estimator.SwitchConfig{RetainLedgers: true}},
	})
	if err := feedSession(s, tasks); err != nil {
		t.Fatal(err)
	}
	ci, err := s.SwitchCI(50, 0.9)
	if err != nil {
		t.Fatalf("SwitchCI: %v", err)
	}
	if ci.Lo > ci.Hi {
		t.Fatalf("inverted CI: %+v", ci)
	}
	ci2, err := s.SwitchCI(50, 0.9)
	if err != nil || ci != ci2 {
		t.Fatalf("SwitchCI not deterministic: %+v vs %+v (%v)", ci, ci2, err)
	}
	if _, err := s.Chao92CI(50, 0.9); err != nil {
		t.Fatalf("Chao92CI: %v", err)
	}
	// Without the SWITCH member, SwitchCI must fail cleanly.
	noSwitch := NewSession("ns", 10, SessionConfig{
		Suite: estimator.SuiteConfig{Estimators: []string{estimator.NameVoting}},
	})
	if _, err := noSwitch.SwitchCI(50, 0.9); err == nil {
		t.Fatal("SwitchCI without SWITCH member did not fail")
	}
}

// TestEngineConcurrentChurn hammers create/ingest/delete from many
// goroutines; run with -race.
func TestEngineConcurrentChurn(t *testing.T) {
	e := New(Config{Shards: 8, MaxSessions: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("g%d-s%d", g, i)
				s, err := e.Create(id, 50, SessionConfig{})
				if err != nil {
					t.Errorf("Create(%s): %v", id, err)
					return
				}
				for v := 0; v < 25; v++ {
					s.Record(v%50, v%5, v%3 == 0)
				}
				s.EndTask()
				s.Estimates()
				if i%4 == 3 {
					e.Delete(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if e.Len() > 32 {
		t.Fatalf("Len = %d exceeds MaxSessions", e.Len())
	}
}
