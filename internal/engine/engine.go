// Package engine implements the concurrent multi-session estimation engine
// behind the public dqm API and cmd/dqm-serve: many independent dataset
// sessions, each wrapping one estimator suite, behind a mutex-sharded
// session table. The DQM estimate is consulted continuously while cleaning
// is in flight, so the engine is built for a long-lived service shape —
// streaming vote ingest, point-in-time snapshot/restore of estimator state,
// and LRU eviction to bound memory under millions of short-lived datasets.
//
// Concurrency model: session lookup shards an FNV hash of the session id
// over independently locked maps, so create/get/delete traffic scales with
// shard count; each session serializes its own vote stream with a private
// mutex (votes within a session form one logical stream — cross-session
// ingest is what runs in parallel).
//
// Durability: with Config.DataDir set (engines built via Open), every session
// owns a write-ahead journal (package wal). Mutations are journaled before
// they are applied, under the same session mutex, so the journal order is the
// apply order; recovery replays the journal through the ordinary ingest path
// and therefore reproduces estimator state bit-identically. LRU eviction
// closes a durable session's journal but keeps its files — Load (or GetOrLoad)
// revives it on demand — while Delete removes the files too.
package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votelog"
	"dqm/internal/votes"
	"dqm/internal/wal"
	"dqm/internal/window"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of independently locked session-table shards,
	// rounded up to a power of two. 0 selects 16.
	Shards int
	// MaxSessions bounds the number of live sessions; creating one more
	// evicts the least-recently-used session. 0 means unlimited. On a durable
	// engine eviction only releases memory: the evicted session's journal is
	// closed and its files are kept for a later Load.
	MaxSessions int
	// OnEvict, when set, is called with the id of every session removed by
	// the MaxSessions policy (not by explicit Delete), after removal and
	// after every engine lock (including the durable engine's load lock) has
	// been released — so the callback may re-enter the engine. Layers holding
	// per-session state (e.g. server-side snapshots) use it to release theirs.
	OnEvict func(id string)
	// DataDir enables durability: each session journals to a directory under
	// it. Engines with a DataDir must be built with Open (which recovers
	// every journaled session); New panics on a non-empty DataDir.
	DataDir string
	// WAL tunes the journals when DataDir is set.
	WAL wal.Options
	// RecoveryParallelism bounds how many sessions Open replays concurrently
	// during boot recovery. 0 selects GOMAXPROCS; 1 recovers serially.
	// Sessions are independent journals, so recovered state is bit-identical
	// at any setting — only wall-clock boot time changes.
	RecoveryParallelism int
	// BootstrapParallelism bounds the worker pool each session fans bootstrap
	// confidence-interval replicates over. 0 selects a per-CPU default
	// (capped); 1 computes replicates serially. Intervals are bit-identical
	// at any setting — replicate RNG streams are addressed by index, not by
	// worker.
	BootstrapParallelism int
}

// Engine manages many concurrent estimation sessions.
type Engine struct {
	shards  []shard
	mask    uint64
	max     int
	onEvict func(id string)
	count   atomic.Int64
	// evictions counts sessions dropped by the MaxSessions policy.
	evictions atomic.Int64

	// store is the durability layer; nil for in-memory engines.
	store *wal.Store
	// recoverWorkers bounds boot-recovery concurrency (resolved from
	// Config.RecoveryParallelism; 0 = GOMAXPROCS at Open time).
	recoverWorkers int
	// ciWorkers is the per-session bootstrap pool width (resolved lazily by
	// the bootstrap itself when 0; see Config.BootstrapParallelism).
	ciWorkers int
	// bootSessions/bootNanos record what Open's boot recovery did, for the
	// serving layer's startup log and healthz.
	bootSessions int
	bootNanos    int64

	// idMu guards inflight: one short-lived lock per session id, replacing
	// the old engine-global loadMu. Every operation that transitions a
	// session between disk and memory — Load, durable Create, durable
	// Delete, eviction of a victim — holds that id's lock for the duration,
	// so a Load can never recover a session's files while a concurrent
	// Create/evict/Delete still holds an open journal on them (two write fds
	// interleaving frames into one segment). Distinct ids proceed fully
	// concurrently, and duplicate concurrent Loads of one id coalesce: the
	// second acquires the lock after the first finished and finds the live
	// session. Deadlock-free: an operation acquires at most its own id's
	// lock plus one eviction victim's at a time, and victims are always live
	// sessions while an operation's own id is never live before its insert —
	// so no cycle can close.
	idMu     sync.Mutex
	inflight map[string]*idLock
}

// idLock is one session id's disk<->memory transition lock, reference-counted
// so the inflight map stays bounded by the number of in-flight operations.
type idLock struct {
	mu   sync.Mutex
	refs int
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// New creates an in-memory engine. It panics when cfg.DataDir is set: durable
// engines must go through Open, which can report recovery errors.
func New(cfg Config) *Engine {
	if cfg.DataDir != "" {
		panic("engine: New cannot open a durable engine; use Open")
	}
	return newEngine(cfg)
}

func newEngine(cfg Config) *Engine {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	size := 1
	for size < n {
		size <<= 1
	}
	e := &Engine{
		shards:         make([]shard, size),
		mask:           uint64(size - 1),
		max:            cfg.MaxSessions,
		onEvict:        cfg.OnEvict,
		recoverWorkers: cfg.RecoveryParallelism,
		ciWorkers:      cfg.BootstrapParallelism,
		inflight:       make(map[string]*idLock),
	}
	for i := range e.shards {
		e.shards[i].sessions = make(map[string]*Session)
	}
	return e
}

// lockID acquires the per-id transition lock for id, creating it on first
// use. Pair with unlockID.
func (e *Engine) lockID(id string) *idLock {
	e.idMu.Lock()
	l := e.inflight[id]
	if l == nil {
		l = &idLock{}
		e.inflight[id] = l
	}
	l.refs++
	e.idMu.Unlock()
	l.mu.Lock()
	return l
}

// unlockID releases a per-id transition lock, dropping it from the map when
// no other operation holds or awaits it.
func (e *Engine) unlockID(id string, l *idLock) {
	l.mu.Unlock()
	e.idMu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(e.inflight, id)
	}
	e.idMu.Unlock()
}

// Open creates an engine and, when cfg.DataDir is set, attaches the
// durability layer: every journaled session found under the data directory
// is recovered into memory (estimator state bit-identical to the moment of
// the last durable frame) before Open returns. With an empty DataDir it is
// equivalent to New.
func Open(cfg Config) (*Engine, error) {
	e := newEngine(cfg)
	if cfg.DataDir == "" {
		return e, nil
	}
	store, err := wal.OpenStore(cfg.DataDir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	e.store = store
	ids, err := store.IDs()
	if err != nil {
		return nil, err
	}
	// Recover at most MaxSessions eagerly; the rest stay on disk and revive
	// lazily through Load/GetOrLoad — replaying a session only to evict it
	// straight back out would make boot O(total journal bytes) instead of
	// O(cap). The budget goes to the most recently modified journals (the
	// sessions that were hot when the previous process stopped), so a warm
	// boot approximates the LRU-warm working set instead of whatever prefix
	// the sorted listing happens to start with.
	if e.max > 0 && len(ids) > e.max {
		recent, err := store.IDsByMTime()
		if err != nil {
			return nil, err
		}
		ids = recent[:e.max]
	}
	start := time.Now()
	if err := e.recoverAll(ids); err != nil {
		// Nothing was inserted into the shard table on error; close the
		// journals the successful workers opened, then the store.
		store.Close()
		return nil, err
	}
	e.bootSessions = len(ids)
	e.bootNanos = int64(time.Since(start))
	// No background flusher here: the store's group-commit Syncer (one
	// goroutine per store, inside package wal) bounds how long acknowledged
	// frames sit in any journal's user-space buffer.
	return e, nil
}

// recoverAll replays ids across a bounded worker pool and inserts the
// recovered sessions into the shard table, all or nothing. Workers claim ids
// in slice order off an atomic cursor; each session replays independently
// with a per-worker columnar scratch, so results are bit-identical at any
// worker count. Error semantics are deterministic too: the error of the
// lowest-index failing id is returned — the same one serial recovery would
// hit — regardless of which worker stumbled first. (Claims are monotone, so
// once any id fails, every unclaimed id has a higher index than every failing
// claimed one; skipping the remainder can never hide an earlier error.)
func (e *Engine) recoverAll(ids []string) error {
	if len(ids) == 0 {
		return nil
	}
	workers := e.recoverWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	type outcome struct {
		s   *Session
		err error
	}
	results := make([]outcome, len(ids))
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cols votelog.VoteColumns // reused across this worker's sessions
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ids) || failed.Load() {
					return
				}
				s, err := e.recoverSession(ids[i], &cols)
				results[i] = outcome{s: s, err: err}
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		if r.err == nil {
			continue
		}
		// Unwind: every journal a worker opened must be closed, or the files
		// would stay locked into a dead engine.
		for _, done := range results {
			if done.s != nil {
				done.s.closeJournal()
			}
		}
		return r.err
	}
	for i, id := range ids {
		sh := e.shardFor(id)
		sh.mu.Lock()
		sh.sessions[id] = results[i].s
		sh.mu.Unlock()
		e.count.Add(1)
	}
	return nil
}

// BootRecovery reports what Open's boot recovery did: how many sessions were
// replayed eagerly and how long the (possibly parallel) replay took. Zero
// values on in-memory engines and empty stores.
func (e *Engine) BootRecovery() (sessions int, elapsed time.Duration) {
	return e.bootSessions, time.Duration(e.bootNanos)
}

// Durable reports whether the engine persists sessions to disk.
func (e *Engine) Durable() bool { return e.store != nil }

// testRecoverStall, when set (tests only), runs at the top of every journal
// replay with the session id — the hook tests use to hold one recovery open
// while asserting that loads of other sessions proceed, and to count how many
// replays a burst of duplicate loads actually performed.
var testRecoverStall func(id string)

// recoverSession rebuilds one session from its journal: latest snapshot plus
// journal tail. Replay is columnar — vote records are decoded into cols
// (reused across sessions by the boot workers; pass nil to allocate) and
// applied in task-sized batches, so recovery looks like AppendColumns rather
// than a stream of single-vote appends: one bounds-check pass and one
// rotation cross-check per batch instead of per vote, no per-vote hook
// indirection, and no estimate-cache or per-vote metric traffic until the
// session goes live (the version is published once, at the end).
func (e *Engine) recoverSession(id string, cols *votelog.VoteColumns) (*Session, error) {
	start := time.Now()
	defer metricRecoverySeconds.ObserveSince(start)
	if testRecoverStall != nil {
		testRecoverStall(id)
	}
	if cols == nil {
		cols = &votelog.VoteColumns{}
	}
	meta, err := e.store.ReadMeta(id)
	if err != nil {
		return nil, err
	}
	var cfg SessionConfig
	if len(meta.Config) > 0 {
		if err := json.Unmarshal(meta.Config, &cfg); err != nil {
			return nil, fmt.Errorf("engine: session %q: bad stored config: %w", id, err)
		}
	}
	if err := estimator.ValidateNames(cfg.Suite.Estimators); err != nil {
		return nil, fmt.Errorf("engine: session %q: %w", id, err)
	}
	if cfg.Window != nil {
		if err := cfg.Window.Validate(); err != nil {
			return nil, fmt.Errorf("engine: session %q: bad stored config: %w", id, err)
		}
	}
	s := NewSession(id, meta.Items, cfg)
	s.ciWorkers = e.ciWorkers
	if !meta.CreatedAt.IsZero() {
		s.created = meta.CreatedAt
	}
	s.setPolicy(meta.Policy)
	n := meta.Items
	// Window rotations replay deterministically from the task stream; the
	// journaled opWindow records are the cross-check. Every rotation the
	// replayed ring seals is stashed here and must be consumed by the
	// rotation record in the same frame — a mismatch means the journal and
	// the window state machine disagree, which recovery must refuse rather
	// than serve silently wrong windows.
	var pending *window.Rotation
	var replayErr error
	checkNoPending := func() error {
		if pending != nil {
			return fmt.Errorf("engine: session %q: window rotation at task %d has no journal record", id, pending.Start)
		}
		return nil
	}
	// The batched path range-checks against the int32 image of the
	// population; a population beyond int32 admits every decodable item
	// (columnar encoding cannot express larger ones).
	limit := int32(math.MaxInt32)
	if n <= math.MaxInt32 {
		limit = int32(n)
	}
	j, err := e.store.Recover(id, wal.Hooks{
		Votes: func(cols *votelog.VoteColumns) error {
			if err := checkNoPending(); err != nil {
				return err
			}
			for _, item := range cols.Item {
				if item >= limit {
					return fmt.Errorf("engine: journaled item %d outside population [0, %d)", item, n)
				}
			}
			for i := range cols.Item {
				label := votes.Clean
				if cols.Dirty[i] {
					label = votes.Dirty
				}
				s.applyVote(votes.Vote{Item: int(cols.Item[i]), Worker: int(cols.Worker[i]), Label: label})
			}
			return nil
		},
		Cols: cols,
		// Vote is the ordered fallback for records outside the columnar int32
		// domain (possible via the Entry-path journal encoding).
		Vote: func(item, worker int, dirty bool) error {
			if err := checkNoPending(); err != nil {
				return err
			}
			if item < 0 || item >= n {
				return fmt.Errorf("engine: journaled item %d outside population [0, %d)", item, n)
			}
			label := votes.Clean
			if dirty {
				label = votes.Dirty
			}
			s.applyVote(votes.Vote{Item: item, Worker: worker, Label: label})
			return nil
		},
		EndTask: func() {
			// The hook cannot return an error; stash the violation and fail
			// after Recover returns (the session is discarded on error anyway).
			if err := checkNoPending(); err != nil && replayErr == nil {
				replayErr = err
			}
			if rot, ok := s.applyEndTask(); ok {
				pending = &rot
			}
		},
		Reset: func() {
			s.suite.Reset()
			if s.ring != nil {
				s.ring.Reset()
			}
			s.tasks = 0
			pending = nil
		},
		Window: func(start int64) error {
			if pending == nil {
				return fmt.Errorf("engine: session %q: journaled window rotation at task %d, but replay sealed none", id, start)
			}
			if pending.Start != start {
				return fmt.Errorf("engine: session %q: journaled window rotation at task %d, replay sealed task %d", id, start, pending.Start)
			}
			pending = nil
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if replayErr == nil {
		replayErr = checkNoPending()
	}
	if replayErr != nil {
		j.Close()
		return nil, replayErr
	}
	// Publish the replayed position to lock-free readers (the session is not
	// shared yet, but keep the invariant: version reflects applied state).
	s.version.Store(s.suite.Version())
	s.journal = j
	metricSessionsRecovered.Inc()
	return s, nil
}

// shardFor hashes the session id (FNV-1a) onto a shard.
func (e *Engine) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &e.shards[h&e.mask]
}

// Create registers a new session over a population of n items. It fails on
// an empty or duplicate id or a non-positive population. When MaxSessions is
// reached, the least-recently-used session is evicted first. On a durable
// engine an id with journal files on disk counts as a duplicate even when it
// is not in memory — recovered-but-evicted state is never silently
// overwritten; Load it or Delete it first.
func (e *Engine) Create(id string, n int, cfg SessionConfig) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("engine: empty session id")
	}
	if n <= 0 {
		return nil, fmt.Errorf("engine: population size %d must be positive", n)
	}
	if cfg.Window != nil {
		if err := cfg.Window.Validate(); err != nil {
			return nil, err
		}
	}
	// Reject duplicates before evicting or building anything: a retried
	// create of an existing id must not cost an unrelated session its state
	// (the insert below re-checks under the shard lock, so a concurrent
	// same-id create still cannot slip through).
	if _, dup := e.Get(id); dup {
		return nil, fmt.Errorf("engine: session %q already exists", id)
	}
	// OnEvict must fire after the id lock is released (deferred LIFO: this
	// runs after the unlock below), so the callback may re-enter the engine.
	var evicted []string
	defer func() { e.notifyEvicted(evicted) }()
	if e.store != nil {
		// Hold this id's transition lock across directory creation and table
		// insertion so a concurrent Load of the same id cannot observe the
		// files of a session that is not registered yet (and recover a second
		// journal onto them). Creates and loads of other ids proceed.
		l := e.lockID(id)
		defer e.unlockID(id, l)
		if e.store.Exists(id) {
			return nil, fmt.Errorf("engine: session %q already exists on disk", id)
		}
	}
	if e.max > 0 {
		for int(e.count.Load()) >= e.max {
			victim, ok := e.evictLRU(id)
			if !ok {
				break
			}
			evicted = append(evicted, victim)
		}
	}
	// Build the suite outside the shard lock: construction is O(N) and must
	// not stall unrelated lookups on the same shard.
	s := NewSession(id, n, cfg)
	s.ciWorkers = e.ciWorkers
	if e.store != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("engine: encode session config: %w", err)
		}
		j, err := e.store.Create(wal.Meta{ID: id, Items: n, CreatedAt: s.created, Config: raw})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		s.journal = j
	}
	sh := e.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		if s.journal != nil {
			s.closeJournal()
			_, _ = e.store.Delete(id)
		}
		return nil, fmt.Errorf("engine: session %q already exists", id)
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	e.count.Add(1)
	metricSessionsCreated.Inc()
	return s, nil
}

// evictLRU removes the least-recently-used session from memory, skipping
// keep (the id about to be created). On a durable engine the victim's
// journal is flushed and closed under the victim's id lock, so a concurrent
// Load of the victim cannot recover its files while its journal still has
// buffered frames — and, conversely, a victim mid-Load is not detached until
// its load finished. It returns the evicted id; notifying OnEvict is the
// caller's job, after it has released every engine lock — the callback may
// re-enter the engine.
func (e *Engine) evictLRU(keep string) (string, bool) {
	var (
		victim     string
		victimLast int64
	)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if id == keep {
				continue
			}
			if last := s.lastUsed.Load(); victim == "" || last < victimLast {
				victim, victimLast = id, last
			}
		}
		sh.mu.RUnlock()
	}
	if victim == "" {
		return "", false
	}
	// Deadlock-free even though the caller already holds its own id's lock:
	// victims are live sessions, an in-flight Create/Load's own id is never
	// live before its insert, and whoever holds a live id's lock (Delete,
	// another evictor, a just-finishing Load) releases it without waiting on
	// further id locks — waits form a chain, never a cycle.
	l := e.lockID(victim)
	s, ok := e.detach(victim)
	if ok {
		s.closeJournal()
	}
	e.unlockID(victim, l)
	if ok {
		e.evictions.Add(1)
		metricEvictions.Inc()
		return victim, true
	}
	return "", false
}

// notifyEvicted fires OnEvict for each victim. Callers defer it before
// taking loadMu so the callbacks run after every engine lock is released
// and may safely re-enter the engine.
func (e *Engine) notifyEvicted(victims []string) {
	if e.onEvict == nil {
		return
	}
	for _, id := range victims {
		e.onEvict(id)
	}
}

// detach removes a session from the table without touching its files.
func (e *Engine) detach(id string) (*Session, bool) {
	sh := e.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		e.count.Add(-1)
	}
	return s, ok
}

// Load revives a journaled session that is not in memory (evicted, or
// written by an earlier process when the engine skipped boot recovery). It
// is a no-op returning the live session when one exists.
//
// Cold loads singleflight per id: concurrent Loads of N distinct evicted
// sessions replay their journals concurrently (no global lock), while
// duplicate concurrent Loads of one id coalesce — the first does the replay,
// the rest block on the id's transition lock and then find the live session.
func (e *Engine) Load(id string) (*Session, error) {
	if s, ok := e.Get(id); ok {
		return s, nil
	}
	if e.store == nil {
		return nil, fmt.Errorf("engine: not durable; session %q cannot be loaded", id)
	}
	// Deferred before the lock so eviction callbacks run after the unlock
	// and may re-enter the engine.
	var evicted []string
	defer func() { e.notifyEvicted(evicted) }()
	l := e.lockID(id)
	defer e.unlockID(id, l)
	if s, ok := e.Get(id); ok {
		return s, nil // a concurrent load won the id lock first; coalesce
	}
	if !e.store.Exists(id) {
		return nil, fmt.Errorf("engine: no journaled session %q", id)
	}
	if e.max > 0 {
		for int(e.count.Load()) >= e.max {
			victim, ok := e.evictLRU(id)
			if !ok {
				break
			}
			evicted = append(evicted, victim)
		}
	}
	metricLoadsInflight.Inc()
	s, err := e.recoverSession(id, nil)
	metricLoadsInflight.Dec()
	if err != nil {
		return nil, err
	}
	sh := e.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = s
	sh.mu.Unlock()
	e.count.Add(1)
	metricSessionLoads.Inc()
	return s, nil
}

// GetOrLoad returns the session registered under id, transparently reviving
// it from disk on a durable engine.
func (e *Engine) GetOrLoad(id string) (*Session, bool) {
	if s, ok := e.Get(id); ok {
		return s, true
	}
	if e.store == nil || !e.store.Exists(id) {
		return nil, false
	}
	s, err := e.Load(id)
	return s, err == nil
}

// live snapshots the current session pointers (for whole-engine sweeps that
// must not hold shard locks while touching sessions).
func (e *Engine) live() []*Session {
	out := make([]*Session, 0, e.Len())
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Checkpoint forces a durable point for every live session: buffered frames
// are fsynced and, where enough sealed history has accumulated, folded into
// a snapshot. No-op on in-memory engines.
func (e *Engine) Checkpoint() error {
	var firstErr error
	for _, s := range e.live() {
		if err := s.checkpointJournal(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close checkpoints and closes every live session's journal, then stops the
// store's group-commit syncer. Sessions stay readable in memory, but further
// durable mutations fail; Close is the final flush on shutdown, and calling
// it again is a harmless no-op. No-op on in-memory engines.
func (e *Engine) Close() error {
	if e.store == nil {
		return nil
	}
	var firstErr error
	for _, s := range e.live() {
		if err := s.checkpointJournal(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.closeJournal(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := e.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// SetPolicy attaches (or, with empty raw, detaches) a quality-gate policy
// document to the session registered under id. The document is opaque JSON —
// validation is the API layer's job — persisted in the session's meta.json on
// a durable engine, so it survives restart and revival. The disk write
// happens under the id's transition lock (serialized against Create, Load,
// Delete and eviction of the same id) and BEFORE the in-memory publish, so a
// crash between the two leaves the durable state ahead, never behind.
func (e *Engine) SetPolicy(id string, raw []byte) error {
	s, ok := e.GetOrLoad(id)
	if !ok {
		return fmt.Errorf("engine: unknown session %q", id)
	}
	if e.store != nil {
		l := e.lockID(id)
		err := e.store.UpdateMeta(id, func(m *wal.Meta) { m.Policy = raw })
		e.unlockID(id, l)
		if err != nil {
			return fmt.Errorf("engine: session %q: persist policy: %w", id, err)
		}
	}
	s.setPolicy(raw)
	return nil
}

// Get returns the session registered under id.
func (e *Engine) Get(id string) (*Session, bool) {
	sh := e.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// Delete removes the session registered under id — and, on a durable engine,
// its journal files (including those of an evicted, no-longer-live session) —
// reporting whether anything existed. Callers still holding the *Session can
// keep reading it; on a durable engine mutations through the stale handle
// fail (Append returns a JournalError, the void mutators panic) rather than
// silently diverging from the deleted journal.
func (e *Engine) Delete(id string) bool {
	if e.store != nil {
		// Serialize against a Load of the same id: files must not be removed
		// while a concurrent recovery is replaying (and about to reopen) them.
		l := e.lockID(id)
		defer e.unlockID(id, l)
	}
	s, ok := e.detach(id)
	if ok {
		s.closeJournal()
	}
	if e.store != nil {
		// Unconditional: a directory without meta.json (aborted create) must
		// still be deletable even though Exists/Load would not see it.
		removed, _ := e.store.Delete(id)
		if ok || removed {
			metricSessionsDeleted.Inc()
		}
		return ok || removed
	}
	if ok {
		metricSessionsDeleted.Inc()
	}
	return ok
}

// Len returns the number of live sessions.
func (e *Engine) Len() int { return int(e.count.Load()) }

// Evictions returns the number of sessions evicted by the MaxSessions
// policy.
func (e *Engine) Evictions() int64 { return e.evictions.Load() }

// IDs returns every session id, sorted. On a durable engine this includes
// journaled sessions currently evicted from memory, best-effort: if the data
// directory is momentarily unreadable, the listing degrades to the live
// sessions (the sessions themselves remain loadable via Load/GetOrLoad).
func (e *Engine) IDs() []string {
	seen := make(map[string]struct{}, e.Len())
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	if e.store != nil {
		if diskIDs, err := e.store.IDs(); err == nil {
			for _, id := range diskIDs {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					out = append(out, id)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}
