// Package engine implements the concurrent multi-session estimation engine
// behind the public dqm API and cmd/dqm-serve: many independent dataset
// sessions, each wrapping one estimator suite, behind a mutex-sharded
// session table. The DQM estimate is consulted continuously while cleaning
// is in flight, so the engine is built for a long-lived service shape —
// streaming vote ingest, point-in-time snapshot/restore of estimator state,
// and LRU eviction to bound memory under millions of short-lived datasets.
//
// Concurrency model: session lookup shards an FNV hash of the session id
// over independently locked maps, so create/get/delete traffic scales with
// shard count; each session serializes its own vote stream with a private
// mutex (votes within a session form one logical stream — cross-session
// ingest is what runs in parallel).
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of independently locked session-table shards,
	// rounded up to a power of two. 0 selects 16.
	Shards int
	// MaxSessions bounds the number of live sessions; creating one more
	// evicts the least-recently-used session. 0 means unlimited.
	MaxSessions int
	// OnEvict, when set, is called with the id of every session removed by
	// the MaxSessions policy (not by explicit Delete), after removal and
	// outside any engine lock — layers holding per-session state (e.g.
	// server-side snapshots) use it to release theirs.
	OnEvict func(id string)
}

// Engine manages many concurrent estimation sessions.
type Engine struct {
	shards  []shard
	mask    uint64
	max     int
	onEvict func(id string)
	count   atomic.Int64
	// evictions counts sessions dropped by the MaxSessions policy.
	evictions atomic.Int64
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// New creates an engine.
func New(cfg Config) *Engine {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	size := 1
	for size < n {
		size <<= 1
	}
	e := &Engine{
		shards:  make([]shard, size),
		mask:    uint64(size - 1),
		max:     cfg.MaxSessions,
		onEvict: cfg.OnEvict,
	}
	for i := range e.shards {
		e.shards[i].sessions = make(map[string]*Session)
	}
	return e
}

// shardFor hashes the session id (FNV-1a) onto a shard.
func (e *Engine) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &e.shards[h&e.mask]
}

// Create registers a new session over a population of n items. It fails on
// an empty or duplicate id or a non-positive population. When MaxSessions is
// reached, the least-recently-used session is evicted first.
func (e *Engine) Create(id string, n int, cfg SessionConfig) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("engine: empty session id")
	}
	if n <= 0 {
		return nil, fmt.Errorf("engine: population size %d must be positive", n)
	}
	// Reject duplicates before evicting or building anything: a retried
	// create of an existing id must not cost an unrelated session its state
	// (the insert below re-checks under the shard lock, so a concurrent
	// same-id create still cannot slip through).
	if _, dup := e.Get(id); dup {
		return nil, fmt.Errorf("engine: session %q already exists", id)
	}
	if e.max > 0 {
		for int(e.count.Load()) >= e.max {
			if !e.evictLRU(id) {
				break
			}
		}
	}
	// Build the suite outside the shard lock: construction is O(N) and must
	// not stall unrelated lookups on the same shard.
	s := NewSession(id, n, cfg)
	sh := e.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("engine: session %q already exists", id)
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	e.count.Add(1)
	return s, nil
}

// evictLRU removes the least-recently-used session, skipping keep (the id
// about to be created). It reports whether anything was evicted.
func (e *Engine) evictLRU(keep string) bool {
	var (
		victim     string
		victimLast int64
	)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if id == keep {
				continue
			}
			if last := s.lastUsed.Load(); victim == "" || last < victimLast {
				victim, victimLast = id, last
			}
		}
		sh.mu.RUnlock()
	}
	if victim == "" {
		return false
	}
	if e.Delete(victim) {
		e.evictions.Add(1)
		if e.onEvict != nil {
			e.onEvict(victim)
		}
		return true
	}
	return false
}

// Get returns the session registered under id.
func (e *Engine) Get(id string) (*Session, bool) {
	sh := e.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// Delete removes the session registered under id, reporting whether it
// existed. Callers still holding the *Session can keep using it; it is
// simply detached from the engine.
func (e *Engine) Delete(id string) bool {
	sh := e.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		e.count.Add(-1)
	}
	return ok
}

// Len returns the number of live sessions.
func (e *Engine) Len() int { return int(e.count.Load()) }

// Evictions returns the number of sessions evicted by the MaxSessions
// policy.
func (e *Engine) Evictions() int64 { return e.evictions.Load() }

// IDs returns every live session id, sorted.
func (e *Engine) IDs() []string {
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
