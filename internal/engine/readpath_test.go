package engine

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votes"
	"dqm/internal/window"
)

// TestEstimatesCacheTracksMutations: the lock-free cache must serve exactly
// the recompute value at every version, and never a stale snapshot after a
// mutation.
func TestEstimatesCacheTracksMutations(t *testing.T) {
	const n = 50
	s := NewSession("cache", n, sessionCfg())
	ops := genOps(77, 120, n)
	for i, o := range ops {
		if o.reset {
			s.Reset()
		} else if err := s.Append(o.batch, o.end); err != nil {
			t.Fatal(err)
		}
		got := s.Estimates()
		// Second read comes from the lock-free cache; must be identical.
		if again := s.Estimates(); !reflect.DeepEqual(again, got) {
			t.Fatalf("op %d: cached read differs from first read", i)
		}
		if v, cv := s.Version(), s.CachedVersion(); v != cv {
			t.Fatalf("op %d: cache not published (version %d, cached %d)", i, v, cv)
		}
	}
	// Reference: a fresh session over the same ops recomputes everything.
	ref := NewSession("", n, sessionCfg())
	applyOps(t, ref, ops)
	if !reflect.DeepEqual(ref.Estimates(), s.Estimates()) {
		t.Fatal("cached session diverges from uncached replay")
	}
}

// TestVersionAdvancesOnEveryMutation: version is the watch/staleness signal,
// so every mutating entry point must move it exactly once per call.
func TestVersionAdvancesOnEveryMutation(t *testing.T) {
	s := NewSession("v", 10, SessionConfig{})
	if s.Version() != 0 {
		t.Fatalf("fresh session version = %d", s.Version())
	}
	s.Record(1, 0, true)
	s.EndTask()
	if err := s.Append([]votes.Vote{{Item: 2, Worker: 1, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.Version(); got != 4 {
		t.Fatalf("version after 4 mutations = %d", got)
	}
	// Reads do not mutate.
	s.Estimates()
	s.Estimates()
	if got := s.Version(); got != 4 {
		t.Fatalf("reads moved the version to %d", got)
	}
	// Restore is a forward mutation.
	snap := s.Snapshot()
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 5 {
		t.Fatalf("restore moved version to %d, want 5", got)
	}
}

// TestEstimatesDoNotBlockIngest is the read/ingest isolation regression test:
// pollers hammering Estimates must ride the lock-free cache instead of
// serializing O(state) recomputes against the session mutex, so ingest
// throughput must not collapse while readers poll. Run under -race in CI.
func TestEstimatesDoNotBlockIngest(t *testing.T) {
	const n, batches = 10000, 20000
	mkSession := func() *Session {
		s := NewSession("iso", n, SessionConfig{Suite: estimator.SuiteConfig{WithoutHistory: true}})
		for i := 0; i < 50; i++ {
			if err := s.Append(syntheticBatch(n, 10, i), true); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	prebuilt := make([][]votes.Vote, 64)
	for i := range prebuilt {
		prebuilt[i] = syntheticBatch(n, 10, i)
	}
	ingest := func(s *Session) time.Duration {
		start := time.Now()
		for i := 0; i < batches; i++ {
			if err := s.Append(prebuilt[i%len(prebuilt)], true); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	baseline := ingest(mkSession())

	s := mkSession()
	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Estimates()
					reads.Add(1)
				}
			}
		}()
	}
	// Make sure every poller is actually running before timing the contended
	// ingest, or a fast ingest loop could finish before the scheduler starts
	// them.
	for reads.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	contended := ingest(s)
	close(stop)
	wg.Wait()

	if reads.Load() < 1000 {
		t.Fatalf("readers only completed %d reads; the cache path is not being exercised", reads.Load())
	}
	// Generous bound: with the version-guarded cache the readers barely touch
	// the session mutex, so ingest under read load stays within a small
	// multiple of the uncontended time. Before the cache, four readers each
	// recomputing the full suite under the mutex slowed ingest by orders of
	// magnitude. The factor absorbs scheduler noise and -race overhead.
	if limit := baseline*10 + 200*time.Millisecond; contended > limit {
		t.Fatalf("ingest with readers took %v vs %v alone (limit %v): estimate reads are blocking ingest",
			contended, baseline, limit)
	}
}

// TestWindowedSessionMatchesStandaloneRing: the session's windowed view must
// be exactly a window.Ring fed the same stream.
func TestWindowedSessionMatchesStandaloneRing(t *testing.T) {
	const n = 40
	wcfg := window.Config{Size: 8, Stride: 4, DecayAlpha: 0.4}
	scfg := sessionCfg()
	scfg.Window = &wcfg
	s := NewSession("win", n, scfg)
	ref := window.New(n, scfg.Suite, wcfg)

	ops := genOps(5, 150, n)
	for _, o := range ops {
		if o.reset {
			s.Reset()
			ref.Reset()
			continue
		}
		if err := s.Append(o.batch, o.end); err != nil {
			t.Fatal(err)
		}
		for _, v := range o.batch {
			ref.Observe(v)
		}
		if o.end {
			ref.EndTask()
		}
	}
	for _, k := range []window.Kind{window.KindCurrent, window.KindLast, window.KindDecayed} {
		got, errGot := s.WindowEstimates(k)
		want, errWant := ref.Estimates(k)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("%v: error mismatch: %v vs %v", k, errGot, errWant)
		}
		if errGot == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: session window diverges from standalone ring", k)
		}
	}
	// Sessions without a window config reject windowed reads.
	plain := NewSession("plain", n, sessionCfg())
	if _, err := plain.WindowEstimates(window.KindCurrent); err == nil {
		t.Fatal("windowless session served a windowed read")
	}
}

// TestWindowedSnapshotRestore: snapshots carry the ring; restore brings the
// windowed view back and both sides keep evolving independently.
func TestWindowedSnapshotRestore(t *testing.T) {
	const n = 30
	wcfg := window.Config{Size: 5, DecayAlpha: 0.5}
	scfg := SessionConfig{Suite: estimator.SuiteConfig{Switch: estimator.SwitchConfig{TrendWindow: 4}}, Window: &wcfg}
	s := NewSession("snap", n, scfg)
	ops := genOps(31, 60, n)
	applyOps(t, s, ops)
	snap := s.Snapshot()
	wantLast, errLast := s.WindowEstimates(window.KindLast)
	if errLast != nil {
		t.Fatal(errLast)
	}

	// Diverge, then roll back.
	applyOps(t, s, genOps(32, 30, n))
	if got, err := s.WindowEstimates(window.KindLast); err == nil && reflect.DeepEqual(got, wantLast) {
		t.Log("windowed state did not move after divergence (unlikely but harmless)")
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.WindowEstimates(window.KindLast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantLast) {
		t.Fatal("restore did not bring the windowed view back")
	}

	// Restoring a windowed snapshot into a windowless session (and vice
	// versa) must fail loudly.
	plain := NewSession("plain", n, SessionConfig{})
	if err := plain.Restore(snap); err == nil {
		t.Fatal("windowless session accepted a windowed snapshot")
	}
	otherCfg := scfg
	other := window.Config{Size: 6}
	otherCfg.Window = &other
	mismatch := NewSession("mismatch", n, otherCfg)
	if err := mismatch.Restore(snap); err == nil {
		t.Fatal("session accepted a snapshot with a different window config")
	}
}

// TestCIResultsCachedUntilMutation: repeated CI reads of an unchanged session
// must be identical (they are deterministic) and still correct after the
// stream moves.
func TestCIResultsCachedUntilMutation(t *testing.T) {
	const n = 60
	cfg := SessionConfig{Suite: estimator.SuiteConfig{
		Switch: estimator.SwitchConfig{TrendWindow: 4, RetainLedgers: true},
	}}
	s := NewSession("ci", n, cfg)
	applyOps(t, s, genOps(51, 80, n))

	ci1, err := s.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ci2, err := s.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci1 != ci2 {
		t.Fatalf("cached CI differs: %+v vs %+v", ci1, ci2)
	}
	// A different request shape is its own cache entry.
	wide, err := s.SwitchCI(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wide == ci1 {
		t.Fatal("distinct (replicates, level) returned the same interval object")
	}
	// After a mutation the interval must be recomputed from the new state —
	// compare against a fresh session replaying the full stream.
	if err := s.Append([]votes.Vote{{Item: 1, Worker: 3, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	ci3, err := s.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSession("", n, cfg)
	applyOps(t, ref, genOps(51, 80, n))
	if err := ref.Append([]votes.Vote{{Item: 1, Worker: 3, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	want, err := ref.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ci3 != want {
		t.Fatalf("post-mutation CI %+v != fresh recompute %+v", ci3, want)
	}

	chao1, err := s.Chao92CI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	chao2, err := s.Chao92CI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if chao1 != chao2 {
		t.Fatal("cached Chao92 CI differs across reads")
	}
}

// TestConcurrentReadersSeeConsistentSnapshots hammers the lock-free read path
// under the race detector: many readers against a mutating session must only
// ever observe values that some clean prefix of the stream could produce
// (spot-checked via the monotonicity of Nominal within this vote pattern).
func TestConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	const n = 200
	s := NewSession("race", n, SessionConfig{Suite: estimator.SuiteConfig{WithoutHistory: true}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
					e := s.Estimates()
					// Only dirty votes are appended below, so Nominal (items
					// with ≥1 dirty vote) never decreases.
					if e.Nominal < last {
						t.Errorf("Nominal went backwards: %v -> %v", last, e.Nominal)
						return
					}
					last = e.Nominal
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		batch := []votes.Vote{{Item: i % n, Worker: i % 7, Label: votes.Dirty}}
		if err := s.Append(batch, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
