package engine

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dqm/internal/votelog"
	"dqm/internal/votes"
)

// TestAppendStagedMergesAtEstimate: votes staged lock-free from many
// goroutines must all be visible at the next estimate read, and — because
// intra-task vote order is immaterial to every estimator aggregate — yield
// exactly the estimates of any sequential ordering of the same votes.
func TestAppendStagedMergesAtEstimate(t *testing.T) {
	const n, writers, perWriter = 50, 8, 100
	s := NewSession("staged", n, sessionCfg())
	ref := NewSession("ref", n, sessionCfg())

	var all [][]votes.Vote
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for b := 0; b < perWriter; b++ {
			batch := make([]votes.Vote, 1+rng.Intn(4))
			for i := range batch {
				// Label is a pure function of the item: votes for one item
				// never disagree, so the switch tracker's per-vote counters
				// (the only order-sensitive aggregate) cannot depend on the
				// drain permutation and the bit-identical comparison is fair.
				item := rng.Intn(n)
				label := votes.Clean
				if item%2 == 0 {
					label = votes.Dirty
				}
				batch[i] = votes.Vote{Item: item, Worker: rng.Intn(6), Label: label}
			}
			all = append(all, batch)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < perWriter; b++ {
				if err := s.AppendStaged(all[w*perWriter+b]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.StagedVotes() == 0 {
		t.Fatal("nothing staged — AppendStaged applied eagerly?")
	}
	got := s.Estimates() // merge point
	if s.StagedVotes() != 0 {
		t.Fatalf("%d votes still staged after estimate read", s.StagedVotes())
	}
	total := 0
	for _, b := range all {
		if err := ref.Append(b, false); err != nil {
			t.Fatal(err)
		}
		total += len(b)
	}
	want := ref.Estimates()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("staged estimates diverge from sequential reference:\n got %+v\nwant %+v", got, want)
	}
	if s.TotalVotes() != int64(total) {
		t.Fatalf("TotalVotes = %d, want %d", s.TotalVotes(), total)
	}
}

func TestAppendStagedValidates(t *testing.T) {
	s := NewSession("staged-bad", 10, sessionCfg())
	err := s.AppendStaged([]votes.Vote{{Item: 3}, {Item: 10}})
	if err == nil || !strings.Contains(err.Error(), "outside population") {
		t.Fatalf("out-of-range stage: %v", err)
	}
	if s.StagedVotes() != 0 {
		t.Fatal("rejected batch left votes staged")
	}
}

// TestDurableStagedRecoveryBitIdentical: staged votes journal at the merge
// point in merge order, so a restart replays them to the same state.
func TestDurableStagedRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	s, err := e.Create("staged-durable", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for b := 0; b < 150; b++ {
		batch := make([]votes.Vote, 1+rng.Intn(3))
		for i := range batch {
			batch[i] = votes.Vote{Item: rng.Intn(n), Worker: rng.Intn(5), Label: votes.Dirty}
		}
		if err := s.AppendStaged(batch); err != nil {
			t.Fatal(err)
		}
		if b%40 == 39 { // periodic merge points with task boundaries between
			if err := s.Append(nil, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := s.Estimates() // merges the tail
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2, ok := e2.Get("staged-durable")
	if !ok {
		t.Fatal("session not recovered")
	}
	if got := s2.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered staged-ingest estimates differ:\n got %+v\nwant %+v", got, want)
	}
}

// colBatch builds one raw columnar batch ('V' records only).
func colBatch(rng *rand.Rand, n, size int) ([]byte, []votes.Vote) {
	var raw []byte
	batch := make([]votes.Vote, size)
	for i := range batch {
		item, worker, dirty := rng.Intn(n), rng.Intn(6), rng.Intn(2) == 0
		raw = votelog.AppendBinaryVote(raw, int32(item), int32(worker), dirty)
		label := votes.Clean
		if dirty {
			label = votes.Dirty
		}
		batch[i] = votes.Vote{Item: item, Worker: worker, Label: label}
	}
	return raw, batch
}

// TestColumnarMatchesEntryPath: AppendColumns must be estimate-identical to
// Append of the same votes — the columnar encoding is a transport detail.
func TestColumnarMatchesEntryPath(t *testing.T) {
	const n = 40
	col := NewSession("col", n, sessionCfg())
	ref := NewSession("ref", n, sessionCfg())
	rng := rand.New(rand.NewSource(5))
	for task := 0; task < 120; task++ {
		raw, batch := colBatch(rng, n, 1+rng.Intn(5))
		end := rng.Intn(3) != 0
		got, err := col.AppendColumns(raw, end)
		if err != nil {
			t.Fatal(err)
		}
		if got != len(batch) {
			t.Fatalf("task %d: ingested %d votes, want %d", task, got, len(batch))
		}
		if err := ref.Append(batch, end); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(col.Estimates(), ref.Estimates()) {
		t.Fatal("columnar ingest diverges from the Append path")
	}
	if col.TotalVotes() != ref.TotalVotes() || col.Tasks() != ref.Tasks() {
		t.Fatalf("counters: votes %d/%d tasks %d/%d",
			col.TotalVotes(), ref.TotalVotes(), col.Tasks(), ref.Tasks())
	}
}

func TestAppendColumnsValidates(t *testing.T) {
	s := NewSession("col-bad", 10, sessionCfg())
	before := s.Estimates()
	if _, err := s.AppendColumns([]byte{0xEE}, true); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := s.AppendColumns(votelog.AppendBinaryVote(nil, 10, 0, true), true); err == nil ||
		!strings.Contains(err.Error(), "outside population") {
		t.Fatal("out-of-range item accepted")
	}
	// A rejected batch applies nothing: no votes, no task boundary.
	if got := s.Estimates(); !reflect.DeepEqual(got, before) {
		t.Fatal("rejected columnar batch mutated the session")
	}
	if s.TotalVotes() != 0 || s.Tasks() != 0 {
		t.Fatalf("counters moved: votes=%d tasks=%d", s.TotalVotes(), s.Tasks())
	}
	// Empty raw with a boundary is the bare-EndTask shape.
	if n, err := s.AppendColumns(nil, true); err != nil || n != 0 {
		t.Fatalf("empty batch with boundary: n=%d err=%v", n, err)
	}
	if s.Tasks() != 1 {
		t.Fatalf("tasks = %d after bare boundary", s.Tasks())
	}
}

// TestDurableColumnarIngestRecovers: columnar batches journal as single
// opColumns frames; restart must replay them (and interleaved Append frames)
// to bit-identical estimates.
func TestDurableColumnarIngestRecovers(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	s, err := e.Create("col-durable", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for task := 0; task < 200; task++ {
		raw, batch := colBatch(rng, n, 1+rng.Intn(4))
		if task%3 == 0 { // interleave the two write paths
			if err := s.Append(batch, true); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.AppendColumns(raw, rng.Intn(4) != 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := s.Estimates()
	wantVotes, wantTasks := s.TotalVotes(), s.Tasks()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2, ok := e2.Get("col-durable")
	if !ok {
		t.Fatal("session not recovered")
	}
	if got := s2.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered columnar estimates differ:\n got %+v\nwant %+v", got, want)
	}
	if s2.TotalVotes() != wantVotes || s2.Tasks() != wantTasks {
		t.Fatalf("recovered counters: votes %d/%d tasks %d/%d",
			s2.TotalVotes(), wantVotes, s2.Tasks(), wantTasks)
	}
}
