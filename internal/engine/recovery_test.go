package engine

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votes"
	"dqm/internal/wal"
)

// walOp is one logical engine mutation == one journal frame.
type walOp struct {
	batch []votes.Vote
	end   bool
	reset bool
}

// genOps builds a deterministic mutation stream with occasional resets.
func genOps(seed int64, frames, n int) []walOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]walOp, 0, frames)
	for i := 0; i < frames; i++ {
		if rng.Intn(40) == 0 {
			ops = append(ops, walOp{reset: true})
			continue
		}
		batch := make([]votes.Vote, 1+rng.Intn(6))
		for k := range batch {
			label := votes.Clean
			if rng.Intn(2) == 0 {
				label = votes.Dirty
			}
			batch[k] = votes.Vote{Item: rng.Intn(n), Worker: rng.Intn(7), Label: label}
		}
		ops = append(ops, walOp{batch: batch, end: rng.Intn(3) != 0})
	}
	return ops
}

// applyOps replays ops[0:k] into a session.
func applyOps(t *testing.T, s *Session, ops []walOp) {
	t.Helper()
	for _, o := range ops {
		if o.reset {
			s.Reset()
			continue
		}
		if err := s.Append(o.batch, o.end); err != nil {
			t.Fatal(err)
		}
	}
}

func durableConfig(dir string) Config {
	return Config{
		DataDir: dir,
		WAL:     wal.Options{Fsync: wal.FsyncNever, SegmentBytes: 512, CompactAfter: 1024},
	}
}

func sessionCfg() SessionConfig {
	return SessionConfig{Suite: estimator.SuiteConfig{
		Switch: estimator.SwitchConfig{TrendWindow: 4},
	}}
}

// TestDurableRoundTripBitIdentical is the acceptance-criteria core: close and
// reopen a durable engine (forcing rotation and compaction on the way) and
// require estimates bit-identical to both the live session and an
// uninterrupted in-memory run.
func TestDurableRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	s, err := e.Create("round-trip", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(11, 300, n)
	applyOps(t, s, ops)
	wantEst := s.Estimates()
	wantVotes, wantTasks := s.TotalVotes(), s.Tasks()
	wantCreated := s.CreatedAt()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted in-memory reference.
	ref := NewSession("", n, sessionCfg())
	applyOps(t, ref, ops)
	if !reflect.DeepEqual(ref.Estimates(), wantEst) {
		t.Fatal("in-memory reference diverges from durable session (journaling changed semantics)")
	}

	e2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2, ok := e2.Get("round-trip")
	if !ok {
		t.Fatal("session not recovered at boot")
	}
	if got := s2.Estimates(); !reflect.DeepEqual(got, wantEst) {
		t.Fatalf("recovered estimates differ:\n got %+v\nwant %+v", got, wantEst)
	}
	if s2.TotalVotes() != wantVotes || s2.Tasks() != wantTasks {
		t.Fatalf("recovered counters: votes %d/%d tasks %d/%d", s2.TotalVotes(), wantVotes, s2.Tasks(), wantTasks)
	}
	if !s2.CreatedAt().Equal(wantCreated) {
		t.Fatalf("created-at not restored: %v vs %v", s2.CreatedAt(), wantCreated)
	}
	if !s2.Durable() {
		t.Fatal("recovered session lost its journal")
	}

	// The recovered session keeps ingesting durably.
	more := genOps(12, 40, n)
	applyOps(t, s2, more)
	finalEst := s2.Estimates()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	s3, _ := e3.Get("round-trip")
	if got := s3.Estimates(); !reflect.DeepEqual(got, finalEst) {
		t.Fatal("second recovery diverges")
	}
}

// copyDir clones a data directory for destructive recovery experiments.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// activeSegment returns the path of the highest-seq segment in a session dir.
func activeSegment(t *testing.T, dataDir, id string) string {
	t.Helper()
	sessDir := filepath.Join(dataDir, id)
	ents, err := os.ReadDir(sessDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	max := segs[0]
	for _, s := range segs[1:] {
		if s > max {
			max = s
		}
	}
	return filepath.Join(sessDir, max)
}

// prefixStates precomputes (votes, tasks) -> estimates for every frame prefix
// of ops, replayed cleanly in memory.
type prefixState struct {
	votes int64
	tasks int64
	est   estimator.Estimates
}

func prefixStates(t *testing.T, n int, ops []walOp) []prefixState {
	t.Helper()
	s := NewSession("", n, sessionCfg())
	out := make([]prefixState, 0, len(ops)+1)
	out = append(out, prefixState{0, 0, s.Estimates()})
	for _, o := range ops {
		if o.reset {
			s.Reset()
		} else if err := s.Append(o.batch, o.end); err != nil {
			t.Fatal(err)
		}
		out = append(out, prefixState{s.TotalVotes(), s.Tasks(), s.Estimates()})
	}
	return out
}

// TestCrashRecoveryMatchesCleanReplayPrefix is the kill-at-arbitrary-offset
// property test: for every truncation point of the active segment (torn
// tails included), recovery must succeed and yield estimates bit-identical
// to a clean in-memory replay of some frame prefix of the mutation stream —
// never a torn half-batch, never an invented state.
func TestCrashRecoveryMatchesCleanReplayPrefix(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Create("crash", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(21, 160, n)
	applyOps(t, s, ops)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	prefixes := prefixStates(t, n, ops)
	matchPrefix := func(t *testing.T, cut int64, got prefixState) {
		t.Helper()
		for _, p := range prefixes {
			if p.votes == got.votes && p.tasks == got.tasks {
				if reflect.DeepEqual(p.est, got.est) {
					return
				}
			}
		}
		t.Fatalf("cut=%d: recovered state (votes=%d tasks=%d) matches no clean frame prefix", cut, got.votes, got.tasks)
	}

	seg := activeSegment(t, dir, "crash")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	var prevVotes int64 = -1
	step := int64(7)
	if testing.Short() {
		step = 61
	}
	var cuts []int64
	for c := int64(0); c < int64(len(raw)); c += step {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, int64(len(raw)))
	for _, cut := range cuts {
		clone := t.TempDir()
		copyDir(t, dir, clone)
		segClone := activeSegment(t, clone, "crash")
		if err := os.Truncate(segClone, cut); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(durableConfig(clone))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		s2, ok := e2.Get("crash")
		if !ok {
			t.Fatalf("cut=%d: session missing after recovery", cut)
		}
		got := prefixState{s2.TotalVotes(), s2.Tasks(), s2.Estimates()}
		matchPrefix(t, cut, got)
		if got.votes < prevVotes && cut > 0 {
			// Not strictly monotonic across resets (votes drop at a reset),
			// but a longer surviving file can never *lose* frames; votes can
			// only shrink if a reset frame came back in. Detect the absurd
			// case: fewer votes with no reset in the stream.
			hasReset := false
			for _, o := range ops {
				if o.reset {
					hasReset = true
					break
				}
			}
			if !hasReset {
				t.Fatalf("cut=%d: recovered votes %d < previous %d without resets", cut, got.votes, prevVotes)
			}
		}
		prevVotes = got.votes
		e2.Close()
	}
	// The untruncated copy must recover the complete stream.
	last := prefixes[len(prefixes)-1]
	if prevVotes != last.votes {
		t.Fatalf("full-file recovery got %d votes, want %d", prevVotes, last.votes)
	}
}

// TestCrashRecoveryCorruptTail flips bytes in the active segment's tail; the
// frames before the corruption must survive, the rest must be dropped, and
// the result must still match a clean prefix.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	const n = 25
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Create("corrupt", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(31, 80, n)
	applyOps(t, s, ops)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	prefixes := prefixStates(t, n, ops)

	seg := activeSegment(t, dir, "corrupt")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for off := len(raw) - 1; off > len(raw)-40 && off > 5; off -= 7 {
		clone := t.TempDir()
		copyDir(t, dir, clone)
		segClone := activeSegment(t, clone, "corrupt")
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(segClone, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(durableConfig(clone))
		if err != nil {
			t.Fatalf("off=%d: open: %v", off, err)
		}
		s2, ok := e2.Get("corrupt")
		if !ok {
			t.Fatalf("off=%d: session missing", off)
		}
		got := prefixState{s2.TotalVotes(), s2.Tasks(), s2.Estimates()}
		found := false
		for _, p := range prefixes {
			if p.votes == got.votes && p.tasks == got.tasks && reflect.DeepEqual(p.est, got.est) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("off=%d: corrupt-tail recovery matches no clean prefix", off)
		}
		e2.Close()
	}
}

// TestEvictedDurableSessionRevives exercises the durable-LRU story: eviction
// closes the journal but keeps the files; GetOrLoad brings the session back
// with identical state.
func TestEvictedDurableSessionRevives(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	evicted := make([]string, 0, 2)
	cfg.OnEvict = func(id string) { evicted = append(evicted, id) }
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 20
	a, err := e.Create("a", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(41, 50, n)
	applyOps(t, a, ops)
	wantEst := a.Estimates()

	if _, err := e.Create("b", n, sessionCfg()); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evictions = %v, want [a]", evicted)
	}
	if _, live := e.Get("a"); live {
		t.Fatal("evicted session still live")
	}
	// The evicted session's journal is closed: durable mutations through the
	// stale handle must fail instead of silently diverging from disk.
	if err := a.Append([]votes.Vote{{Item: 0, Worker: 0, Label: votes.Dirty}}, false); err == nil {
		t.Fatal("append on evicted session's stale handle succeeded")
	}
	// IDs still lists the on-disk session.
	ids := e.IDs()
	if len(ids) != 2 {
		t.Fatalf("IDs = %v, want both sessions", ids)
	}
	// Revive.
	a2, ok := e.GetOrLoad("a")
	if !ok {
		t.Fatal("GetOrLoad failed to revive evicted session")
	}
	if got := a2.Estimates(); !reflect.DeepEqual(got, wantEst) {
		t.Fatal("revived session state differs")
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d after revival under MaxSessions=1", e.Len())
	}
}

// TestDurableDeleteRemovesFiles: Delete purges disk state, so the id becomes
// creatable again; Create refuses ids that still have files.
func TestDurableDeleteRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Create("x", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	// Evict "x" by creating "y"; its files remain, so re-creating "x" fails.
	if _, err := e.Create("y", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("x", 5, SessionConfig{}); err == nil || !strings.Contains(err.Error(), "on disk") {
		t.Fatalf("create over on-disk state: err = %v, want 'on disk' error", err)
	}
	if !e.Delete("x") {
		t.Fatal("delete of evicted on-disk session reported false")
	}
	if _, err := e.Create("x", 5, SessionConfig{}); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

// TestDurableRestoreRejected: snapshot restore cannot be represented in the
// journal, so durable sessions refuse it.
func TestDurableRestoreRejected(t *testing.T) {
	e, err := Open(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s, err := e.Create("r", 5, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if err := s.Restore(snap); err == nil {
		t.Fatal("restore on durable session succeeded")
	}
}

// TestNewPanicsOnDataDir: durable engines must go through Open.
func TestNewPanicsOnDataDir(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with DataDir did not panic")
		}
	}()
	New(Config{DataDir: t.TempDir()})
}

// TestRecoveryRejectsUnregisteredEstimator: a journaled session whose config
// names an estimator this binary does not register must fail recovery with a
// clear error, not panic.
func TestRecoveryRejectsUnregisteredEstimator(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("ghost", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored config to name a ghost estimator.
	metaPath := filepath.Join(dir, "ghost", "meta.json")
	b, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]json.RawMessage
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	meta["config"] = json.RawMessage(`{"Suite":{"Estimators":["no-such-estimator"]}}`)
	mut, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(durableConfig(dir)); err == nil {
		t.Fatal("open succeeded with unregistered estimator in stored config")
	}
}

// TestBackgroundFlusherBoundsIdleLoss: under FsyncBatch an acknowledged vote
// must reach the OS within ~the batch interval even when the session goes
// idle, without waiting for the next append or a clean Close — that is the
// documented loss bound.
func TestBackgroundFlusherBoundsIdleLoss(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, WAL: wal.Options{Fsync: wal.FsyncBatch, BatchInterval: 10 * time.Millisecond}}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s, err := e.Create("idle", 10, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]votes.Vote{{Item: 3, Worker: 1, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill -9 while idle: copy the live files without Close and
	// recover from the copy. Poll past a few flush intervals.
	deadline := time.Now().Add(2 * time.Second)
	for {
		clone := t.TempDir()
		copyDir(t, dir, clone)
		e2, err := Open(Config{DataDir: clone, WAL: cfg.WAL})
		if err == nil {
			s2, ok := e2.Get("idle")
			if ok && s2.TotalVotes() == 1 && s2.Tasks() == 1 {
				e2.Close()
				return
			}
			e2.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("acknowledged vote never reached the OS from an idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineCloseIdempotent: a second Close (defer + explicit shutdown path)
// must be a harmless no-op, not a spurious journal-closed error.
func TestEngineCloseIdempotent(t *testing.T) {
	e, err := Open(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("x", 5, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentLoadCreateDeleteNoDoubleJournal hammers the disk/memory
// transition paths for one id; the invariant is no panic, no corrupted
// recovery, and a consistent final state.
func TestConcurrentLoadCreateDeleteNoDoubleJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (g + i) % 4 {
				case 0:
					if s, err := e.Create("contended", 10, SessionConfig{}); err == nil {
						_ = s.Append([]votes.Vote{{Item: 1, Worker: g, Label: votes.Dirty}}, true)
					}
				case 1:
					if s, ok := e.GetOrLoad("contended"); ok {
						_ = s.Append([]votes.Vote{{Item: 2, Worker: g, Label: votes.Clean}}, false)
					}
				case 2:
					e.Delete("contended")
				case 3:
					// Churn a second id to trigger MaxSessions evictions.
					if _, err := e.Create("churn", 10, SessionConfig{}); err == nil {
						e.Delete("churn")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever survived must recover cleanly.
	if _, err := Open(durableConfig(dir)); err != nil {
		t.Fatalf("post-churn recovery failed: %v", err)
	}
}

// TestOpenSkipsAbortedCreateDir: a session directory without meta.json
// (crash between Mkdir and the meta write) must not fail recovery for the
// whole data dir, and its id must be reusable.
func TestOpenSkipsAbortedCreateDir(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Create("kept", 10, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]votes.Vote{{Item: 1, Worker: 0, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn create.
	if err := os.Mkdir(filepath.Join(dir, "torn"), 0o755); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("Open with orphan session dir: %v", err)
	}
	defer e2.Close()
	if got := e2.IDs(); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("IDs() = %v, want [kept]", got)
	}
	if _, ok := e2.Get("kept"); !ok {
		t.Fatal("journaled session not recovered")
	}
	// The orphan's id is free again.
	if _, err := e2.Create("torn", 5, sessionCfg()); err != nil {
		t.Fatalf("create over swept orphan dir: %v", err)
	}
}

// TestDeleteRemovesAbortedCreateDir: Delete must remove a meta-less session
// directory even though Exists/Load do not see it — otherwise the id is stuck
// (unlistable, unloadable, yet blocking Create) until manual cleanup.
func TestDeleteRemovesAbortedCreateDir(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := os.Mkdir(filepath.Join(dir, "torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	if !e.Delete("torn") {
		t.Fatal("Delete of orphan dir reported false")
	}
	if _, err := os.Stat(filepath.Join(dir, "torn")); !os.IsNotExist(err) {
		t.Fatal("orphan dir survived Delete")
	}
}

// TestOnEvictMayReenterEngine: OnEvict fires with no engine lock held, so a
// callback that calls back into the engine (here: Delete, which takes the
// durable engine's loadMu) must not deadlock. Before the fix, durable Create
// and Load invoked the callback while holding loadMu.
func TestOnEvictMayReenterEngine(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	var e *Engine
	var evicted []string
	cfg.OnEvict = func(id string) {
		evicted = append(evicted, id)
		// Harmless, but takes loadMu on a durable engine — deadlocked when
		// the callback fired under it.
		e.Delete(id + "-ghost")
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Create("a", 5, sessionCfg()); err != nil {
		t.Fatal(err)
	}
	// Create path: evicts "a" under loadMu; the callback runs after release.
	if _, err := e.Create("b", 5, sessionCfg()); err != nil {
		t.Fatal(err)
	}
	// Load path: reviving "a" evicts "b" under loadMu.
	if _, err := e.Load("a"); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b"}
	if !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v, want %v", evicted, want)
	}
	// Eviction kept both sessions' files; only memory was released.
	if !e.store.Exists("a") || !e.store.Exists("b") {
		t.Fatal("eviction removed journal files")
	}
}
