package engine

import (
	"testing"

	"dqm/internal/estimator"
	"dqm/internal/votes"
)

func notifierSession(t *testing.T) *Session {
	t.Helper()
	return NewSession("notify", 100, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
}

func drain(ch chan struct{}) int {
	n := 0
	for {
		select {
		case <-ch:
			n++
		default:
			return n
		}
	}
}

func TestNotifierSignalsOnVersionAdvance(t *testing.T) {
	s := notifierSession(t)
	ch := make(chan struct{}, 1)
	s.AddNotifier(ch)

	batch := []votes.Vote{{Item: 1, Worker: 0, Label: votes.Dirty}}
	if err := s.Append(batch, true); err != nil {
		t.Fatal(err)
	}
	if got := drain(ch); got != 1 {
		t.Fatalf("signals after Append = %d, want 1", got)
	}

	// A full capacity-1 channel never blocks ingest: signals are level, not
	// count — many bumps collapse into one pending signal.
	for i := 0; i < 5; i++ {
		if err := s.Append([]votes.Vote{{Item: 2 + i, Worker: 1, Label: votes.Clean}}, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(ch); got != 1 {
		t.Fatalf("coalesced signals = %d, want 1", got)
	}

	s.RemoveNotifier(ch)
	if err := s.Append(batch, true); err != nil {
		t.Fatal(err)
	}
	// One stale wakeup may already be in flight at RemoveNotifier return,
	// but a drained channel must stay silent afterwards.
	drain(ch)
	if err := s.Append(batch, true); err != nil {
		t.Fatal(err)
	}
	if got := drain(ch); got != 0 {
		t.Fatalf("signals after RemoveNotifier = %d, want 0", got)
	}
}

func TestNotifierMultipleAndRemoveMiddle(t *testing.T) {
	s := notifierSession(t)
	a := make(chan struct{}, 1)
	b := make(chan struct{}, 1)
	c := make(chan struct{}, 1)
	s.AddNotifier(a)
	s.AddNotifier(b)
	s.AddNotifier(c)
	s.RemoveNotifier(b)

	if err := s.Append([]votes.Vote{{Item: 1, Worker: 0, Label: votes.Dirty}}, true); err != nil {
		t.Fatal(err)
	}
	if drain(a) != 1 || drain(c) != 1 {
		t.Fatalf("surviving notifiers not signaled")
	}
	if drain(b) != 0 {
		t.Fatalf("removed notifier signaled")
	}

	s.RemoveNotifier(a)
	s.RemoveNotifier(c)
	if s.notifiers.Load() != nil {
		t.Fatalf("notifier slice not released after last removal")
	}
}
