package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votes"
	"dqm/internal/window"
)

// TestIncrementalEstimatesMatchUncachedRandomized is the engine-level
// incremental-plane property test: a windowed durable session driven by a
// randomized sequence of votes, task boundaries (which rotate window panes),
// resets, snapshot/restore cycles and a crash-replay must, at every read
// point, serve Estimates bit-identical to a full uncached suite recompute.
func TestIncrementalEstimatesMatchUncachedRandomized(t *testing.T) {
	const n = 50
	verify := func(t *testing.T, s *Session, step int) {
		t.Helper()
		got := s.Estimates()
		// Estimates merged any staged votes, so the suite now reflects the
		// full stream; the uncached walk is the ground truth.
		want := s.suite.EstimateAllUncached()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: Estimates %+v != uncached recompute %+v", step, got, want)
		}
		if again := s.Estimates(); !reflect.DeepEqual(again, got) {
			t.Fatalf("step %d: repeated read differs", step)
		}
	}
	// drive runs the randomized op mix; restores only fire when allowed
	// (durable sessions reject in-memory restore by design).
	drive := func(t *testing.T, s *Session, seed int64, allowRestore bool) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		var snap *Snapshot
		for step := 0; step < 600; step++ {
			switch op := rng.Intn(100); {
			case op < 60:
				batch := make([]votes.Vote, 1+rng.Intn(5))
				for k := range batch {
					label := votes.Clean
					if rng.Intn(4) == 0 {
						label = votes.Dirty
					}
					batch[k] = votes.Vote{Item: rng.Intn(n), Worker: rng.Intn(6), Label: label}
				}
				if err := s.Append(batch, rng.Intn(3) == 0); err != nil {
					t.Fatal(err)
				}
			case op < 75:
				s.EndTask()
			case op < 80:
				snap = s.Snapshot()
			case op < 85:
				if snap != nil && allowRestore {
					if err := s.Restore(snap); err != nil {
						t.Fatal(err)
					}
				}
			case op < 88:
				s.Reset()
			default: // read-only step: back-to-back reads hit the memo
			}
			if rng.Intn(2) == 0 {
				verify(t, s, step)
			}
		}
		verify(t, s, -1)
	}

	t.Run("inmemory-snapshot-restore", func(t *testing.T) {
		scfg := sessionCfg()
		scfg.Window = &window.Config{Size: 6, Stride: 3, DecayAlpha: 0.4}
		drive(t, NewSession("inc", n, scfg), 404, true)
	})

	t.Run("durable-crash-replay", func(t *testing.T) {
		dir := t.TempDir()
		e, err := Open(durableConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		scfg := sessionCfg()
		scfg.Window = &window.Config{Size: 6, Stride: 3, DecayAlpha: 0.4}
		s, err := e.Create("inc", n, scfg)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, s, 405, false)
		wantFinal := s.Estimates()

		// Crash-replay: reopen the engine and require the recovered session
		// to serve the same estimates through the same incremental read path.
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(durableConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		s2, ok := e2.GetOrLoad("inc")
		if !ok {
			t.Fatal("session not recovered after reopen")
		}
		got := s2.Estimates()
		if !reflect.DeepEqual(got, wantFinal) {
			t.Fatalf("recovered estimates %+v != pre-close %+v", got, wantFinal)
		}
		if want := s2.suite.EstimateAllUncached(); !reflect.DeepEqual(got, want) {
			t.Fatalf("recovered estimates %+v != uncached recompute %+v", got, want)
		}
	})
}

// TestIngestProceedsDuringCI pins the off-mutex CI contract under -race: while
// a bootstrap is computing (stalled via the test hook), ingest and estimate
// reads on the same session must complete instead of queueing behind it.
func TestIngestProceedsDuringCI(t *testing.T) {
	const n = 80
	cfg := SessionConfig{Suite: estimator.SuiteConfig{
		Switch: estimator.SwitchConfig{TrendWindow: 4, RetainLedgers: true},
	}}
	s := NewSession("offmu", n, cfg)
	applyOps(t, s, genOps(9, 120, n))

	entered := make(chan struct{})
	release := make(chan struct{})
	ciComputeHook = func() {
		close(entered)
		<-release
	}
	defer func() { ciComputeHook = nil }()

	type ciResult struct {
		ci  estimator.CI
		err error
	}
	done := make(chan ciResult, 1)
	go func() {
		ci, err := s.SwitchCI(150, 0.95)
		done <- ciResult{ci, err}
	}()
	<-entered // the CI holds no session lock from here until release

	// Ingest and read while the bootstrap is "computing". If either blocked
	// on the CI, this would deadlock (the CI cannot finish until released).
	ingested := make(chan struct{})
	go func() {
		defer close(ingested)
		for i := 0; i < 50; i++ {
			if err := s.Append([]votes.Vote{{Item: i % n, Worker: i % 5, Label: votes.Dirty}}, i%4 == 0); err != nil {
				t.Error(err)
				return
			}
			s.Estimates()
		}
	}()
	select {
	case <-ingested:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest blocked behind an in-flight CI")
	}

	close(release)
	res := <-done
	ciComputeHook = nil // later CIs in this test run unstalled
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.ci.Lo > res.ci.Hi {
		t.Fatalf("malformed CI %+v", res.ci)
	}

	// The interval was captured before the concurrent ingest, so a fresh
	// read must recompute (version moved) rather than serve the stale cache.
	ci2, err := s.SwitchCI(150, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSession("", n, cfg)
	applyOps(t, ref, genOps(9, 120, n))
	for i := 0; i < 50; i++ {
		if err := ref.Append([]votes.Vote{{Item: i % n, Worker: i % 5, Label: votes.Dirty}}, i%4 == 0); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.SwitchCI(150, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci2 != want {
		t.Fatalf("post-ingest CI %+v != fresh recompute %+v", ci2, want)
	}
}

// TestCISingleflightCoalesces: concurrent identical CI requests against one
// unchanged session must produce one bootstrap computation, with followers
// receiving the leader's interval.
func TestCISingleflightCoalesces(t *testing.T) {
	const n = 60
	cfg := SessionConfig{Suite: estimator.SuiteConfig{
		Switch: estimator.SwitchConfig{TrendWindow: 4, RetainLedgers: true},
	}}
	s := NewSession("flight", n, cfg)
	applyOps(t, s, genOps(23, 100, n))

	var computes int32
	var mu sync.Mutex
	gate := make(chan struct{})
	ciComputeHook = func() {
		mu.Lock()
		computes++
		mu.Unlock()
		<-gate
	}
	defer func() { ciComputeHook = nil }()

	const readers = 8
	results := make(chan estimator.CI, readers)
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			ci, err := s.SwitchCI(120, 0.9)
			if err != nil {
				errs <- err
				return
			}
			results <- ci
		}()
	}
	// Give followers time to join the flight, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	var first estimator.CI
	for i := 0; i < readers; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case ci := <-results:
			if i == 0 {
				first = ci
			} else if ci != first {
				t.Fatalf("reader %d got %+v, leader got %+v", i, ci, first)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("CI reader hung")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if computes != 1 {
		t.Fatalf("%d bootstrap computations for %d identical requests, want 1", computes, readers)
	}
}

// TestSessionCIWorkerCountInvariant: the interval a session serves must not
// depend on the engine's configured bootstrap parallelism.
func TestSessionCIWorkerCountInvariant(t *testing.T) {
	const n = 70
	cfg := SessionConfig{Suite: estimator.SuiteConfig{
		Switch: estimator.SwitchConfig{TrendWindow: 4, RetainLedgers: true},
	}}
	var want estimator.CI
	for i, workers := range []int{1, 2, 8} {
		e := New(Config{BootstrapParallelism: workers})
		s, err := e.Create("w", n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, s, genOps(67, 90, n))
		ci, err := s.SwitchCI(300, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		chao, err := s.Chao92CI(300, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = ci
		} else if ci != want {
			t.Fatalf("workers=%d: SWITCH CI %+v != workers=1 %+v", workers, ci, want)
		}
		if chao.Lo > chao.Hi {
			t.Fatalf("workers=%d: malformed Chao92 CI %+v", workers, chao)
		}
		e.Close()
	}
}
