package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votelog"
	"dqm/internal/votes"
	"dqm/internal/window"
)

// sessionState is the comparable image of one recovered session.
type sessionState struct {
	votes   int64
	tasks   int64
	version uint64
	est     estimator.Estimates
}

func stateOf(s *Session) sessionState {
	return sessionState{
		votes:   s.TotalVotes(),
		tasks:   s.Tasks(),
		version: s.Version(),
		est:     s.Estimates(),
	}
}

// buildMixedDataDir populates dir with a diverse set of journaled sessions —
// plain vote streams, a windowed session, a columnar-ingest session — closes
// the engine, and tears the final segment of one session. It returns the
// session ids.
func buildMixedDataDir(t *testing.T, dir string) []string {
	t.Helper()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	var ids []string

	// Plain sessions with distinct deterministic streams (resets included).
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("plain-%d", i)
		s, err := e.Create(id, n, sessionCfg())
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, s, genOps(int64(100+i), 60+10*i, n))
		ids = append(ids, id)
	}

	// Windowed session: rotations journal opWindow records, which the batched
	// replay must flush around.
	wcfg := sessionCfg()
	wcfg.Window = &window.Config{Size: 3, DecayAlpha: 0.5}
	ws, err := e.Create("windowed", n, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ws, genOps(200, 80, n))
	ids = append(ids, "windowed")

	// Columnar session: raw DQMV task blocks journaled verbatim as opColumns
	// records, exercising DecodeAppend on the batched replay path.
	cs, err := e.Create("columnar", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 12; task++ {
		var raw []byte
		for v := 0; v < 7; v++ {
			raw = votelog.AppendBinaryVote(raw, int32((task*7+v)%n), int32(v%5), (task+v)%3 == 0)
		}
		if _, err := cs.AppendColumns(raw, true); err != nil {
			t.Fatal(err)
		}
	}
	ids = append(ids, "columnar")

	// A session whose final segment we tear after close.
	ts, err := e.Create("torn-tail", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ts, genOps(300, 50, n))
	ids = append(ids, "torn-tail")

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegment(t, dir, "torn-tail")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 10 {
		t.Fatal("torn-tail segment too small to tear")
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestRecoveryParallelBitIdentical is the tentpole's determinism property:
// boot recovery at any worker count must produce sessions bit-identical to
// serial recovery — across plain streams, windowed sessions, columnar journal
// records, and a torn final segment.
func TestRecoveryParallelBitIdentical(t *testing.T) {
	src := t.TempDir()
	ids := buildMixedDataDir(t, src)

	recoverWith := func(workers int) map[string]sessionState {
		// Recover a clone: the first open truncates the torn tail in place, so
		// every worker count must start from the same bytes.
		clone := t.TempDir()
		copyDir(t, src, clone)
		cfg := durableConfig(clone)
		cfg.RecoveryParallelism = workers
		e, err := Open(cfg)
		if err != nil {
			t.Fatalf("workers=%d: open: %v", workers, err)
		}
		defer e.Close()
		out := make(map[string]sessionState, len(ids))
		for _, id := range ids {
			s, ok := e.Get(id)
			if !ok {
				t.Fatalf("workers=%d: session %q not recovered", workers, id)
			}
			out[id] = stateOf(s)
		}
		return out
	}

	want := recoverWith(1)
	for _, workers := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		got := recoverWith(workers)
		for _, id := range ids {
			if !reflect.DeepEqual(got[id], want[id]) {
				t.Fatalf("workers=%d: session %q diverges from serial recovery:\n got %+v\nwant %+v",
					workers, id, got[id], want[id])
			}
		}
	}
}

// TestRecoveryFirstErrorDeterministic: when several journals are broken, Open
// must report the error of the lowest-index failing id — the one serial
// recovery would hit — at every worker count.
func TestRecoveryFirstErrorDeterministic(t *testing.T) {
	src := t.TempDir()
	e, err := Open(durableConfig(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		s, err := e.Create(fmt.Sprintf("s%02d", i), 10, sessionCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append([]votes.Vote{{Item: i % 10, Worker: 1, Label: votes.Dirty}}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Break two sessions; recovery order is the sorted id listing, so "s03"
	// is the error serial recovery reports first.
	for _, id := range []string{"s03", "s09"} {
		meta := filepath.Join(src, id, "meta.json")
		if err := os.WriteFile(meta, []byte(`{"id":"`+id+`","items":10,"config":{"Suite":{"Estimators":["no-such-estimator"]}}}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		clone := t.TempDir()
		copyDir(t, src, clone)
		cfg := durableConfig(clone)
		cfg.RecoveryParallelism = workers
		_, err := Open(cfg)
		if err == nil {
			t.Fatalf("workers=%d: open succeeded over broken journals", workers)
		}
		if !strings.Contains(err.Error(), `"s03"`) {
			t.Fatalf("workers=%d: error = %v, want the lowest-index failure (s03)", workers, err)
		}
	}
}

// TestRecoveryLoadSingleflightCoalesces: a burst of concurrent Loads of one
// evicted session must perform exactly one journal replay — the rest coalesce
// on the id's transition lock and find the live session.
func TestRecoveryLoadSingleflightCoalesces(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 20
	a, err := e.Create("a", n, sessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, a, genOps(51, 40, n))
	want := a.Estimates()
	if _, err := e.Create("b", n, sessionCfg()); err != nil { // evicts "a"
		t.Fatal(err)
	}

	var replays atomic.Int64
	testRecoverStall = func(id string) {
		if id == "a" {
			replays.Add(1)
			// Hold the replay open long enough for every duplicate Load to
			// queue on the id lock instead of racing past the Get fast path.
			time.Sleep(50 * time.Millisecond)
		}
	}
	defer func() { testRecoverStall = nil }()

	const loaders = 8
	var wg sync.WaitGroup
	errs := make([]error, loaders)
	sessions := make([]*Session, loaders)
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sessions[g], errs[g] = e.Load("a")
		}(g)
	}
	wg.Wait()
	for g := 0; g < loaders; g++ {
		if errs[g] != nil {
			t.Fatalf("loader %d: %v", g, errs[g])
		}
		if sessions[g] != sessions[0] {
			t.Fatalf("loader %d got a different session object (duplicate replay)", g)
		}
	}
	if got := replays.Load(); got != 1 {
		t.Fatalf("burst of %d Loads performed %d replays, want exactly 1", loaders, got)
	}
	if got := sessions[0].Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatal("coalesced load recovered divergent state")
	}
}

// TestRecoveryDistinctLoadsDoNotSerialize is the regression test for the old
// engine-global load lock: while one session's cold load is stalled mid-replay,
// a cold load of a DIFFERENT session must complete.
func TestRecoveryDistinctLoadsDoNotSerialize(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxSessions = 1
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 15
	for _, id := range []string{"a", "b", "c"} { // each create evicts the last
		s, err := e.Create(id, n, sessionCfg())
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, s, genOps(61, 20, n))
	}

	aStarted := make(chan struct{})
	releaseA := make(chan struct{})
	testRecoverStall = func(id string) {
		if id == "a" {
			close(aStarted)
			<-releaseA
		}
	}
	defer func() { testRecoverStall = nil }()

	aDone := make(chan error, 1)
	go func() {
		_, err := e.Load("a")
		aDone <- err
	}()
	<-aStarted

	// "a" is replaying and blocked; "b" must load anyway.
	bDone := make(chan error, 1)
	go func() {
		_, err := e.Load("b")
		bDone <- err
	}()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("load of b: %v", err)
		}
	case <-time.After(10 * time.Second):
		close(releaseA)
		t.Fatal("load of b serialized behind the stalled load of a")
	}

	close(releaseA)
	if err := <-aDone; err != nil {
		t.Fatalf("load of a: %v", err)
	}
}

// TestRecoveryBootPrefersMostRecentlyModified: when journaled sessions exceed
// MaxSessions, boot recovery must spend its budget on the most recently
// modified journals, not an arbitrary prefix of the sorted listing.
func TestRecoveryBootPrefersMostRecentlyModified(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"s1", "s2", "s3", "s4"}
	for _, id := range ids {
		s, err := e.Create(id, 10, sessionCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append([]votes.Vote{{Item: 1, Worker: 0, Label: votes.Dirty}}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Stamp s2 and s4 as the hot working set; s1 and s3 as stale. Every file
	// in a session dir gets the stamp so the max-mtime rule has one answer.
	base := time.Now().Add(-24 * time.Hour)
	stamp := map[string]time.Time{
		"s1": base,
		"s3": base.Add(time.Hour),
		"s2": base.Add(2 * time.Hour),
		"s4": base.Add(3 * time.Hour),
	}
	for id, ts := range stamp {
		ents, err := os.ReadDir(filepath.Join(dir, id))
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if err := os.Chtimes(filepath.Join(dir, id, ent.Name()), ts, ts); err != nil {
				t.Fatal(err)
			}
		}
	}

	cfg := durableConfig(dir)
	cfg.MaxSessions = 2
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, id := range []string{"s2", "s4"} {
		if _, live := e2.Get(id); !live {
			t.Fatalf("recently modified session %q not recovered eagerly", id)
		}
	}
	for _, id := range []string{"s1", "s3"} {
		if _, live := e2.Get(id); live {
			t.Fatalf("stale session %q recovered eagerly over a hotter one", id)
		}
	}
	// The stale ones are still on disk and loadable.
	if _, ok := e2.GetOrLoad("s1"); !ok {
		t.Fatal("stale session lost entirely")
	}
	if sessions, elapsed := e2.BootRecovery(); sessions != 2 || elapsed <= 0 {
		t.Fatalf("BootRecovery() = (%d, %v), want (2, >0)", sessions, elapsed)
	}
}
