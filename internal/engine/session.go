package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// defaultCISeed mirrors the historical dqm.Recorder bootstrap seed so the
// compat wrapper stays bit-identical.
const defaultCISeed = 0x5eed

// SessionConfig parameterizes one dataset session.
type SessionConfig struct {
	// Suite selects and parameterizes the estimators (see
	// estimator.SuiteConfig); the zero value is the paper-faithful default
	// set.
	Suite estimator.SuiteConfig
	// CISeed seeds the bootstrap confidence-interval RNG; 0 selects the
	// default.
	CISeed uint64
}

// Session is one independent dataset being cleaned: a vote stream, the
// selected estimator suite over it, and snapshot/restore of the full
// estimator state. All methods are safe for concurrent use; a single mutex
// serializes them (votes within one session form one logical stream, so
// there is nothing to parallelize inside a session — concurrency comes from
// many sessions).
type Session struct {
	id      string
	created time.Time

	mu    sync.Mutex
	suite *estimator.Suite
	tasks int64

	ciSeed   uint64
	lastUsed atomic.Int64 // unix nanos; read lock-free by the evictor
}

// NewSession creates a standalone session over a population of n items.
// Sessions managed by an Engine are created via Engine.Create instead.
func NewSession(id string, n int, cfg SessionConfig) *Session {
	if cfg.CISeed == 0 {
		cfg.CISeed = defaultCISeed
	}
	now := time.Now()
	s := &Session{
		id:      id,
		created: now,
		suite:   estimator.NewSuite(n, cfg.Suite),
		ciSeed:  cfg.CISeed,
	}
	s.lastUsed.Store(now.UnixNano())
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// CreatedAt returns the creation time.
func (s *Session) CreatedAt() time.Time { return s.created }

// LastUsed returns the time of the most recent operation.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// Record ingests one vote. It panics on an out-of-range item, mirroring
// slice semantics; external input should go through Append, which validates.
func (s *Session) Record(item, worker int, dirty bool) {
	label := votes.Clean
	if dirty {
		label = votes.Dirty
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.suite.Observe(votes.Vote{Item: item, Worker: worker, Label: label})
	s.touch()
}

// Append ingests a batch of votes under one lock acquisition and, when
// endTask is set, marks a task boundary after the batch. It validates item
// ranges up front — the whole batch is rejected before any vote is applied,
// so a bad request cannot leave a half-ingested task behind. This is the
// boundary external (HTTP) input crosses.
func (s *Session) Append(batch []votes.Vote, endTask bool) error {
	n := s.NumItems()
	for i, v := range batch {
		if v.Item < 0 || v.Item >= n {
			return fmt.Errorf("engine: vote %d: item %d outside population [0, %d)", i, v.Item, n)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range batch {
		s.suite.Observe(v)
	}
	if endTask {
		s.tasks++
		s.suite.EndTask()
	}
	s.touch()
	return nil
}

// EndTask marks a task boundary. The SWITCH trend detector operates on the
// per-task majority series.
func (s *Session) EndTask() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tasks++
	s.suite.EndTask()
	s.touch()
}

// Tasks returns the number of completed tasks.
func (s *Session) Tasks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks
}

// Estimates evaluates every selected estimator at the current position.
func (s *Session) Estimates() estimator.Estimates {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	return s.suite.EstimateAll()
}

// EstimatorNames returns the session's selected estimators in evaluation
// order.
func (s *Session) EstimatorNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.Names()
}

// NumItems returns the population size N.
func (s *Session) NumItems() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.NumItems()
}

// NumWorkers returns the number of distinct workers seen.
func (s *Session) NumWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.Matrix.NumWorkers()
}

// TotalVotes returns the number of votes ingested.
func (s *Session) TotalVotes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.Matrix.TotalVotes()
}

// MajorityDirty reports the current majority consensus for an item.
func (s *Session) MajorityDirty(item int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.Matrix.MajorityDirty(item)
}

// Reset clears the vote stream and every estimator, keeping the session
// registered.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.suite.Reset()
	s.tasks = 0
	s.touch()
}

// SwitchCI computes a bootstrap confidence interval for the SWITCH total
// estimate. The session must have been configured with
// SwitchConfig.RetainLedgers.
func (s *Session) SwitchCI(replicates int, level float64) (estimator.CI, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.suite.Switch == nil {
		return estimator.CI{}, fmt.Errorf("engine: session %q has no SWITCH estimator", s.id)
	}
	return s.suite.Switch.BootstrapSwitch(replicates, level, xrand.New(s.ciSeed))
}

// Chao92CI computes a bootstrap confidence interval for the Chao92 total
// estimate.
func (s *Session) Chao92CI(replicates int, level float64) (estimator.CI, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return estimator.BootstrapChao92(s.suite.Matrix, replicates, level, xrand.New(s.ciSeed))
}

// Snapshot captures the full estimator state (matrix, trackers, trend
// series) as an immutable deep copy. Taking a snapshot does not block other
// sessions and the session keeps ingesting afterwards.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Snapshot{
		suite: s.suite.Clone(),
		tasks: s.tasks,
		taken: time.Now(),
	}
}

// Restore replaces the session's estimator state with the snapshot's. The
// snapshot remains valid and can be restored again (the state is cloned on
// the way in). The snapshot must come from a session over the same
// population size; N is immutable for a session's lifetime, which keeps
// Append's range validation race-free.
func (s *Session) Restore(sn *Snapshot) error {
	if sn == nil || sn.suite == nil {
		return fmt.Errorf("engine: restore from empty snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Hold the snapshot's own lock while cloning: Snapshot.Estimates mutates
	// scratch state inside the suite, so an unguarded concurrent Clone would
	// race (sn.mu is always the innermost lock; nothing under it takes s.mu).
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if got, want := sn.suite.NumItems(), s.suite.NumItems(); got != want {
		return fmt.Errorf("engine: snapshot population %d does not match session population %d", got, want)
	}
	s.suite = sn.suite.Clone()
	s.tasks = sn.tasks
	s.touch()
	return nil
}

// Snapshot is a point-in-time deep copy of a session's estimator state. It
// is logically immutable: restores clone it again, so one snapshot can seed
// many restores (or sessions).
type Snapshot struct {
	// mu serializes Estimates: evaluation reuses internal scratch buffers,
	// so even read-style access must not run concurrently.
	mu    sync.Mutex
	suite *estimator.Suite
	tasks int64
	taken time.Time
}

// Tasks returns the number of completed tasks at the snapshot point.
func (sn *Snapshot) Tasks() int64 { return sn.tasks }

// TakenAt returns when the snapshot was captured.
func (sn *Snapshot) TakenAt() time.Time { return sn.taken }

// NumItems returns the snapshot's population size.
func (sn *Snapshot) NumItems() int { return sn.suite.NumItems() }

// TotalVotes returns the number of votes ingested at the snapshot point.
func (sn *Snapshot) TotalVotes() int64 { return sn.suite.Matrix.TotalVotes() }

// Estimates evaluates the snapshot's estimators.
func (sn *Snapshot) Estimates() estimator.Estimates {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.suite.EstimateAll()
}
