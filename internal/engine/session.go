package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/votelog"
	"dqm/internal/votes"
	"dqm/internal/wal"
	"dqm/internal/window"
	"dqm/internal/xrand"
)

// defaultCISeed mirrors the historical dqm.Recorder bootstrap seed so the
// compat wrapper stays bit-identical.
const defaultCISeed = 0x5eed

// JournalError wraps a write-ahead journal failure. The mutation was NOT
// applied — write-ahead means the journal is consulted first — and the
// journal is left in a sticky error state, so subsequent durable mutations
// on the session keep failing. It marks an infrastructure fault (disk full,
// closed journal after eviction), not invalid input; API layers should map
// it to a 5xx, not a 4xx.
type JournalError struct {
	SessionID string
	Err       error
}

func (e *JournalError) Error() string {
	return fmt.Sprintf("engine: session %q journal: %v", e.SessionID, e.Err)
}

func (e *JournalError) Unwrap() error { return e.Err }

// SessionConfig parameterizes one dataset session.
type SessionConfig struct {
	// Suite selects and parameterizes the estimators (see
	// estimator.SuiteConfig); the zero value is the paper-faithful default
	// set.
	Suite estimator.SuiteConfig
	// CISeed seeds the bootstrap confidence-interval RNG; 0 selects the
	// default.
	CISeed uint64
	// Window, when set, additionally runs the selected estimators over
	// tumbling/sliding task-count windows (see package window). Nil disables
	// windowed estimation. The config is persisted with the session, so a
	// recovered session rebuilds identical window state.
	Window *window.Config `json:",omitempty"`
}

// Session is one independent dataset being cleaned: a vote stream, the
// selected estimator suite over it, and snapshot/restore of the full
// estimator state. All methods are safe for concurrent use; a single mutex
// serializes mutations (votes within one session form one logical stream, so
// there is nothing to parallelize inside a session — concurrency comes from
// many sessions). Estimate READS are different: Estimates serves from a
// version-guarded cache without touching the mutex at all when the session
// has not mutated since the last read, so heavy read traffic cannot stall
// ingest (and vice versa).
type Session struct {
	id      string
	created time.Time
	// items is the population size N, immutable for the session's lifetime —
	// read lock-free by Append/AppendStaged validation, so staging a batch
	// never touches the session mutex.
	items int

	mu    sync.Mutex
	suite *estimator.Suite
	// ring is the windowed-estimation state (nil without a window config).
	ring  *window.Ring
	tasks int64

	// staged holds votes accepted by AppendStaged but not yet folded into the
	// suite: per-stripe buffers concurrent writers scatter over without
	// contending on mu. Merge points (task boundaries, estimate reads, syncs,
	// any mutation) drain it under mu — journaling each stripe batch before
	// applying it, so the write-ahead invariant holds for staged votes too.
	staged *votes.Stripes
	// cols is the columnar decode scratch of AppendColumns, reused so the
	// binary ingest path stays allocation-free after warmup. Guarded by mu.
	cols votelog.VoteColumns

	// journal is the write-ahead log of a durable session (nil otherwise).
	// Every mutation is journaled before it is applied, under mu, so journal
	// order equals apply order and recovery replays to bit-identical state.
	journal *wal.Journal

	ciSeed uint64
	// ciWorkers is the bootstrap worker-pool width (0 = per-CPU default,
	// capped). Set once at construction (Engine.Create plumbs
	// Config.BootstrapParallelism), immutable afterwards.
	ciWorkers int
	// ciCache memoizes bootstrap confidence intervals by (kind, replicates,
	// level); entries are valid while their version still matches. Guarded by
	// mu. The bootstrap itself runs OFF the mutex: only the state capture and
	// the cache bookkeeping hold it.
	ciCache map[ciKey]ciEntry
	// ciFlights deduplicates concurrent identical CI requests: followers wait
	// on the leader's flight instead of recomputing. Keyed by (request shape,
	// version) so a follower never receives an interval for a different state
	// than it asked about. Guarded by mu.
	ciFlights map[ciFlightKey]*ciFlight
	// lastEstimateVersion is the session version of the most recent
	// under-mutex estimate read. The lock-free cache is published lazily — on
	// the SECOND read of the same version — so a write-mostly session never
	// pays the publication allocation and the dirty-read path stays 0-alloc.
	// Guarded by mu.
	lastEstimateVersion uint64

	lastUsed atomic.Int64 // unix nanos; read lock-free by the evictor

	// version counts applied mutations; it is published (atomically, after
	// the state change, still under mu) so lock-free readers can validate
	// cached estimates and watchers can poll for changes without contending
	// with ingest. It also advances on Restore — unlike the suite's own
	// counter, it can never move backwards or repeat for distinct states.
	version atomic.Uint64
	// cached is the last published estimate snapshot, immutable once stored.
	cached atomic.Pointer[estimateCache]

	// notifiers is the registered set of version-advance signal channels,
	// published copy-on-write so bump() reads it with one atomic load and no
	// lock. Registration (AddNotifier/RemoveNotifier) is serialized by
	// notifyMu; nil means nobody is watching, which is the common case and
	// costs ingest a single pointer load.
	notifiers atomic.Pointer[[]chan<- struct{}]
	notifyMu  sync.Mutex

	// policy is the session's attached quality-gate policy document, opaque
	// JSON owned by the API layer (package policy parses it; the engine only
	// persists it in session meta and hands it back). Atomic so readers on the
	// request path never take the session mutex; nil means none attached.
	policy atomic.Pointer[[]byte]
}

// estimateCache pairs an estimate snapshot with the session version it was
// computed at. The struct is never mutated after publication.
type estimateCache struct {
	version uint64
	est     estimator.Estimates
}

// ciKey identifies one bootstrap-CI request shape.
type ciKey struct {
	kind       byte // 's' = SWITCH, 'c' = Chao92
	replicates int
	level      float64
}

// ciEntry is one cached interval, valid while version matches the session.
type ciEntry struct {
	version uint64
	ci      estimator.CI
}

// ciFlightKey identifies one in-flight bootstrap: the request shape plus the
// session version its state was captured at.
type ciFlightKey struct {
	key     ciKey
	version uint64
}

// ciFlight is one in-flight off-mutex bootstrap. The leader closes done
// after storing ci/err; followers block on done and read the results.
type ciFlight struct {
	done chan struct{}
	ci   estimator.CI
	err  error
}

// NewSession creates a standalone session over a population of n items.
// Sessions managed by an Engine are created via Engine.Create instead. It
// panics on an invalid window config (API layers validate user input with
// window.Config.Validate, or create sessions through an Engine, which
// returns an error instead).
func NewSession(id string, n int, cfg SessionConfig) *Session {
	if cfg.CISeed == 0 {
		cfg.CISeed = defaultCISeed
	}
	now := time.Now()
	s := &Session{
		id:      id,
		created: now,
		items:   n,
		suite:   estimator.NewSuite(n, cfg.Suite),
		staged:  votes.NewStripes(0),
		ciSeed:  cfg.CISeed,
	}
	if cfg.Window != nil {
		s.ring = window.New(n, cfg.Suite, *cfg.Window)
	}
	s.lastUsed.Store(now.UnixNano())
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// CreatedAt returns the creation time.
func (s *Session) CreatedAt() time.Time { return s.created }

// LastUsed returns the time of the most recent operation.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// PolicyJSON returns the session's attached quality-gate policy document, or
// nil when none is attached. The returned bytes are shared and must not be
// mutated.
func (s *Session) PolicyJSON() []byte {
	if p := s.policy.Load(); p != nil {
		return *p
	}
	return nil
}

// setPolicy publishes a policy document on the session (nil or empty clears).
// Durable persistence is the engine's job (SetPolicy); this only swaps the
// in-memory copy.
func (s *Session) setPolicy(raw []byte) {
	if len(raw) == 0 {
		s.policy.Store(nil)
		return
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	s.policy.Store(&cp)
}

// bump publishes one applied mutation to lock-free readers. Call under mu,
// after the state change. Registered notifiers get a non-blocking signal: a
// full channel means the receiver already has a pending wakeup and will see
// this version when it drains, so the send is skipped — ingest never blocks
// or allocates on account of watchers.
func (s *Session) bump() {
	s.version.Add(1)
	if ns := s.notifiers.Load(); ns != nil {
		for _, ch := range *ns {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
}

// AddNotifier registers ch to receive a non-blocking signal whenever the
// session's version advances. ch should be buffered (capacity 1 suffices:
// the signal is a level, not a count — receivers re-read Version after each
// wakeup). Registering the same channel twice double-signals it.
func (s *Session) AddNotifier(ch chan<- struct{}) {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	var cur []chan<- struct{}
	if p := s.notifiers.Load(); p != nil {
		cur = *p
	}
	next := make([]chan<- struct{}, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, ch)
	s.notifiers.Store(&next)
}

// RemoveNotifier unregisters ch. A concurrent bump may still signal ch once
// after RemoveNotifier returns (it loads the notifier set before the swap);
// receivers must tolerate one stale wakeup.
func (s *Session) RemoveNotifier(ch chan<- struct{}) {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	p := s.notifiers.Load()
	if p == nil {
		return
	}
	next := make([]chan<- struct{}, 0, len(*p))
	for _, c := range *p {
		if c != ch {
			next = append(next, c)
		}
	}
	if len(next) == 0 {
		s.notifiers.Store(nil)
		return
	}
	s.notifiers.Store(&next)
}

// applyVote feeds one vote to the all-time suite and the window ring. Every
// ingest path — live and recovery replay — funnels through here, so the two
// states cannot diverge.
func (s *Session) applyVote(v votes.Vote) {
	s.suite.Observe(v)
	if s.ring != nil {
		s.ring.Observe(v)
	}
}

// applyEndTask marks one task boundary everywhere, returning the window
// rotation it sealed (if any).
func (s *Session) applyEndTask() (window.Rotation, bool) {
	s.tasks++
	s.suite.EndTask()
	if s.ring == nil {
		return window.Rotation{}, false
	}
	return s.ring.EndTask()
}

// journalBatch write-ahead-logs one batch (and, for a task boundary on a
// windowed session, the rotation that boundary will seal — in the same
// frame, so recovery can never see the boundary without its rotation).
// Call under mu, before applying.
func (s *Session) journalBatch(batch []votes.Vote, endTask bool) error {
	if endTask && s.ring != nil {
		if rot, ok := s.ring.WillRotate(); ok {
			return s.journal.AppendRotation(batch, rot.Start)
		}
	}
	return s.journal.Append(batch, endTask)
}

// mergeStagedLocked drains the staged-vote stripes into the suite: each
// stripe batch is journaled (its own frame) and applied, in stripe order.
// Stage order is not arrival order — staged votes are order-independent by
// the AppendStaged contract — but journal order equals apply order, so
// recovery still replays to bit-identical state. A journal error leaves the
// failing stripe and everything after it staged (nothing is dropped) and is
// reported for the caller to surface. Call under mu, before any read or
// mutation that must observe staged votes.
func (s *Session) mergeStagedLocked() error {
	if s.staged.Pending() == 0 {
		return nil
	}
	merged := false
	err := s.staged.Drain(func(batch []votes.Vote) error {
		if s.journal != nil {
			if err := s.journal.Append(batch, false); err != nil {
				return &JournalError{SessionID: s.id, Err: err}
			}
		}
		for _, v := range batch {
			s.applyVote(v)
		}
		merged = true
		metricBatches.Inc()
		metricVotes.Add(uint64(len(batch)))
		return nil
	})
	if merged {
		s.bump()
	}
	return err
}

// mustMergeStaged is mergeStagedLocked for the void mutators, which panic on
// journal failures like their own writes do.
func (s *Session) mustMergeStaged() {
	if err := s.mergeStagedLocked(); err != nil {
		panic(fmt.Sprintf("engine: session %q staged merge: %v", s.id, err))
	}
}

// AppendStaged stages a batch of intra-task votes without taking the session
// mutex: validation runs against the immutable population size, the batch
// lands in a sharded staging buffer, and the call returns. Concurrent
// writers feeding one session therefore scale instead of serializing on mu.
// The votes take effect (and, on a durable session, become durable) at the
// next merge point — any mutation, estimate read, task boundary, Sync or
// checkpoint. Because merging drains stripes in stripe order, staged votes
// may be applied out of arrival order relative to each other; stage only
// votes whose relative order is immaterial (votes within one task — every
// estimator aggregate is intra-task order-independent). Batches are never
// split or interleaved, only reordered whole.
func (s *Session) AppendStaged(batch []votes.Vote) error {
	n := s.items
	for i, v := range batch {
		if v.Item < 0 || v.Item >= n {
			return fmt.Errorf("engine: vote %d: item %d outside population [0, %d)", i, v.Item, n)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	s.staged.PutBatch(batch)
	s.touch()
	return nil
}

// StagedVotes returns the number of staged votes awaiting merge.
func (s *Session) StagedVotes() int64 { return s.staged.Pending() }

// AppendColumns ingests one columnar batch: raw DQMV 'V'-record bytes (one
// task block of a binary vote log — see votelog.SplitBinaryTasks), validated,
// journaled verbatim as a single columnar WAL record, and applied. The raw
// bytes are never re-encoded per vote — the wire encoding is the journal
// encoding — and the decode scratch is reused, so bulk binary ingest does not
// allocate per batch. endTask marks a task boundary after the batch,
// journaled in the same frame. Returns the number of votes ingested.
func (s *Session) AppendColumns(raw []byte, endTask bool) (int, error) {
	if len(raw) == 0 && !endTask {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cols := &s.cols
	if err := cols.Decode(raw); err != nil {
		return 0, err
	}
	n := int32(s.items)
	for i, item := range cols.Item {
		if item >= n {
			return 0, fmt.Errorf("engine: vote %d: item %d outside population [0, %d)", i, item, n)
		}
	}
	if err := s.mergeStagedLocked(); err != nil {
		return 0, err
	}
	if s.journal != nil {
		windowStart := int64(-1)
		if endTask && s.ring != nil {
			if rot, ok := s.ring.WillRotate(); ok {
				windowStart = rot.Start
			}
		}
		if err := s.journal.AppendColumns(raw, endTask, windowStart); err != nil {
			return 0, &JournalError{SessionID: s.id, Err: err}
		}
	}
	for i := range cols.Item {
		label := votes.Clean
		if cols.Dirty[i] {
			label = votes.Dirty
		}
		s.applyVote(votes.Vote{Item: int(cols.Item[i]), Worker: int(cols.Worker[i]), Label: label})
	}
	if endTask {
		s.applyEndTask()
		metricTasks.Inc()
	}
	s.bump()
	s.touch()
	metricBatches.Inc()
	metricVotes.Add(uint64(cols.Len()))
	return cols.Len(), nil
}

// Record ingests one vote. It panics on an out-of-range item (mirroring
// slice semantics) and on a journal write failure; external input should go
// through Append, which validates and returns errors instead.
func (s *Session) Record(item, worker int, dirty bool) {
	label := votes.Clean
	if dirty {
		label = votes.Dirty
	}
	v := votes.Vote{Item: item, Worker: worker, Label: label}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustMergeStaged()
	if s.journal != nil {
		// Check the range before the write-ahead: the journal must never
		// hold a vote that replay would reject.
		if item < 0 || item >= s.suite.NumItems() {
			panic(fmt.Sprintf("engine: item %d outside population [0, %d)", item, s.suite.NumItems()))
		}
		if err := s.journal.Append([]votes.Vote{v}, false); err != nil {
			panic(fmt.Sprintf("engine: session %q journal: %v", s.id, err))
		}
	}
	s.applyVote(v)
	s.bump()
	s.touch()
	metricVotes.Inc()
}

// Append ingests a batch of votes under one lock acquisition and, when
// endTask is set, marks a task boundary after the batch. It validates item
// ranges up front — the whole batch is rejected before any vote is applied,
// so a bad request cannot leave a half-ingested task behind. On a durable
// session the batch is journaled (one group-commit frame) before it is
// applied; a journal error rejects the batch with in-memory state untouched.
// This is the boundary external (HTTP) input crosses.
func (s *Session) Append(batch []votes.Vote, endTask bool) error {
	n := s.NumItems()
	for i, v := range batch {
		if v.Item < 0 || v.Item >= n {
			return fmt.Errorf("engine: vote %d: item %d outside population [0, %d)", i, v.Item, n)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mergeStagedLocked(); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journalBatch(batch, endTask); err != nil {
			return &JournalError{SessionID: s.id, Err: err}
		}
	}
	for _, v := range batch {
		s.applyVote(v)
	}
	if endTask {
		s.applyEndTask()
		metricTasks.Inc()
	}
	s.bump()
	s.touch()
	metricBatches.Inc()
	metricVotes.Add(uint64(len(batch)))
	return nil
}

// EndTask marks a task boundary. The SWITCH trend detector operates on the
// per-task majority series. It panics on a journal write failure (use Append
// with endTask for an error-returning path).
func (s *Session) EndTask() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustMergeStaged()
	if s.journal != nil {
		if err := s.journalBatch(nil, true); err != nil {
			panic(fmt.Sprintf("engine: session %q journal: %v", s.id, err))
		}
	}
	s.applyEndTask()
	s.bump()
	s.touch()
	metricTasks.Inc()
}

// Tasks returns the number of completed tasks.
func (s *Session) Tasks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks
}

// StagedEmpty reports whether no staged votes are awaiting merge (lock-free).
func (s *Session) StagedEmpty() bool { return s.staged.Pending() == 0 }

// Estimates returns every selected estimator's value at the current
// position. The fast path is lock-free: if the session has not mutated since
// the last read (version unchanged), the cached snapshot is returned without
// acquiring the session mutex at all — a read costs two atomic loads and a
// struct copy, so estimate polling never contends with ingest. Only the
// first read after a mutation recomputes, under the mutex.
func (s *Session) Estimates() estimator.Estimates {
	v := s.version.Load()
	if c := s.cached.Load(); c != nil && c.version == v && s.staged.Pending() == 0 {
		s.touch()
		metricEstimateHits.Inc()
		return c.est.Clone()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	metricEstimateMisses.Inc()
	// Fold staged votes in first — estimates reflect everything acknowledged.
	// A journal error here leaves them staged (retried at the next merge
	// point, where a mutation path will surface the sticky error); the
	// estimate is then simply computed over the durable prefix.
	_ = s.mergeStagedLocked()
	return s.estimatesLocked()
}

// estimatesLocked recomputes (or revalidates) the estimate snapshot and
// lazily publishes it to the lock-free cache. Call under mu.
func (s *Session) estimatesLocked() estimator.Estimates {
	start := time.Now()
	memoValid, memoUpToDate := s.suite.MemoState()
	e := s.suite.EstimateAll() // incremental: only changed members re-run
	switch {
	case memoUpToDate:
		metricEstimateCached.ObserveSince(start)
	case memoValid:
		metricEstimateIncremental.ObserveSince(start)
	default:
		metricEstimateFull.ObserveSince(start)
	}
	// Under mu no mutator can run, so the version read here is exactly the
	// version of the state e was computed from. Publication is lazy — only
	// the second read of one version publishes — so a mutate/read/mutate
	// workload (the dirty-read hot path) never allocates a cache entry it
	// would immediately invalidate, while a poll-heavy workload still
	// upgrades to lock-free reads after one extra recompute.
	v := s.version.Load()
	if c := s.cached.Load(); c == nil || c.version != v {
		if s.lastEstimateVersion == v {
			s.cached.Store(&estimateCache{version: v, est: e.Clone()})
		} else {
			s.lastEstimateVersion = v
		}
	}
	return e
}

// Version returns the session's monotonic mutation counter. It advances on
// every applied mutation (votes, task boundaries, resets, restores) and
// never repeats for distinct states, so clients — the SSE watch endpoint,
// dashboard pollers — can cheaply detect "has anything changed since
// version V" without reading estimates at all.
func (s *Session) Version() uint64 { return s.version.Load() }

// CachedVersion returns the version of the currently published estimate
// snapshot (0 before the first read). Version()−CachedVersion() is the
// staleness of the read cache in mutations.
func (s *Session) CachedVersion() uint64 {
	if c := s.cached.Load(); c != nil {
		return c.version
	}
	return 0
}

// Windowed reports whether the session runs windowed estimation.
func (s *Session) Windowed() bool { return s.ring != nil }

// WindowConfig returns the session's (normalized) window configuration.
func (s *Session) WindowConfig() (window.Config, bool) {
	if s.ring == nil {
		return window.Config{}, false
	}
	return s.ring.Config(), true
}

// WindowEstimates evaluates the selected windowed view (see window.Kind). It
// fails on sessions without a window config and on views that are not
// available yet (no completed window). Windowed reads take the session
// mutex, but the per-pane suites memoize, so repeated reads of an unchanged
// window are cheap.
func (s *Session) WindowEstimates(kind window.Kind) (window.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return window.Result{}, fmt.Errorf("engine: session %q has no window configuration", s.id)
	}
	_ = s.mergeStagedLocked()
	s.touch()
	return s.ring.Estimates(kind)
}

// EstimatorNames returns the session's selected estimators in evaluation
// order.
func (s *Session) EstimatorNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suite.Names()
}

// NumItems returns the population size N (immutable, lock-free).
func (s *Session) NumItems() int { return s.items }

// NumWorkers returns the number of distinct workers seen.
func (s *Session) NumWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mergeStagedLocked()
	return s.suite.Matrix.NumWorkers()
}

// TotalVotes returns the number of votes ingested.
func (s *Session) TotalVotes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mergeStagedLocked()
	return s.suite.Matrix.TotalVotes()
}

// MajorityDirty reports the current majority consensus for an item.
func (s *Session) MajorityDirty(item int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mergeStagedLocked()
	return s.suite.Matrix.MajorityDirty(item)
}

// Reset clears the vote stream and every estimator, keeping the session
// registered. On a durable session the reset is journaled; the next
// compaction discards all pre-reset history. It panics on a journal write
// failure.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mustMergeStaged()
	if s.journal != nil {
		if err := s.journal.Reset(); err != nil {
			panic(fmt.Sprintf("engine: session %q journal: %v", s.id, err))
		}
	}
	s.suite.Reset()
	if s.ring != nil {
		s.ring.Reset()
	}
	s.tasks = 0
	s.bump()
	s.touch()
	metricResets.Inc()
}

// Durable reports whether the session journals its mutations.
func (s *Session) Durable() bool { return s.journal != nil }

// Sync flushes any buffered journal frames to stable storage (no-op for
// in-memory sessions).
func (s *Session) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mergeStagedLocked(); err != nil {
		return err
	}
	if s.journal == nil {
		return nil
	}
	return s.journal.Sync()
}

// checkpointJournal forces a durable point (fsync + compaction when due).
// An already-closed journal (evicted session, repeated engine Close) is a
// no-op, not an error.
func (s *Session) checkpointJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mergeStagedLocked(); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	return nil
}

// closeJournal flushes and closes the journal (eviction and engine close).
// Staged votes are merged (journaled) first, so eviction cannot strand
// acknowledged votes in memory.
func (s *Session) closeJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mergeErr := s.mergeStagedLocked()
	if errors.Is(mergeErr, wal.ErrClosed) {
		mergeErr = nil
	}
	if s.journal == nil {
		return mergeErr
	}
	// A failed merge must not leak the journal's fd: close regardless.
	if err := s.journal.Close(); err != nil {
		return err
	}
	return mergeErr
}

// maxCICacheEntries bounds the per-session CI memo; beyond it the whole map
// is dropped (distinct request shapes per session are few in practice).
const maxCICacheEntries = 32

// ciComputeHook, when non-nil, runs at the start of every off-mutex
// bootstrap compute. Test instrumentation only: tests stall it to hold a CI
// in flight while proving ingest and estimate reads proceed without it.
var ciComputeHook func()

// runCI serves one bootstrap-CI request: memoized by (request shape) per
// version, deduplicated across concurrent identical requests, and computed
// OFF the session mutex. capture runs under mu and snapshots the minimal
// bootstrap state (per-item counts or flattened switch ledgers), returning
// the compute closure; the replicate loop then runs with the mutex released,
// so ingest proceeds concurrently. The bootstrap is deterministic given the
// seed and the vote stream, so an unchanged session always reproduces the
// same interval — the cache just skips the recompute on every poll.
func (s *Session) runCI(key ciKey, capture func() (func() (estimator.CI, error), error)) (estimator.CI, error) {
	if err := estimator.ValidateBootstrapArgs(key.replicates, key.level); err != nil {
		return estimator.CI{}, err
	}
	s.mu.Lock()
	_ = s.mergeStagedLocked()
	s.touch()
	v := s.version.Load()
	if e, ok := s.ciCache[key]; ok && e.version == v {
		s.mu.Unlock()
		return e.ci, nil
	}
	fk := ciFlightKey{key: key, version: v}
	if f, ok := s.ciFlights[fk]; ok {
		// Follower: an identical request over identical state is already in
		// flight; wait for its result instead of recomputing.
		s.mu.Unlock()
		<-f.done
		return f.ci, f.err
	}
	compute, err := capture()
	if err != nil {
		s.mu.Unlock()
		return estimator.CI{}, err
	}
	f := &ciFlight{done: make(chan struct{})}
	if s.ciFlights == nil {
		s.ciFlights = make(map[ciFlightKey]*ciFlight, 2)
	}
	s.ciFlights[fk] = f
	s.mu.Unlock()

	if ciComputeHook != nil {
		ciComputeHook()
	}
	start := time.Now()
	f.ci, f.err = compute()
	metricBootstrapSeconds.ObserveSince(start)

	s.mu.Lock()
	delete(s.ciFlights, fk)
	if f.err == nil && s.version.Load() == v {
		// Only cache when the session has not moved on: a newer state must
		// never be answered with an interval captured before it.
		if s.ciCache == nil || len(s.ciCache) >= maxCICacheEntries {
			s.ciCache = make(map[ciKey]ciEntry, 4)
		}
		s.ciCache[key] = ciEntry{version: v, ci: f.ci}
	}
	s.mu.Unlock()
	close(f.done)
	return f.ci, f.err
}

// SwitchCI computes a bootstrap confidence interval for the SWITCH total
// estimate, cached by (replicates, level) until the session mutates. The
// session must have been configured with SwitchConfig.RetainLedgers. The
// replicate loop runs off the session mutex, fanned over the session's
// bootstrap worker pool; ingest is blocked only for the O(switches) ledger
// capture.
func (s *Session) SwitchCI(replicates int, level float64) (estimator.CI, error) {
	return s.runCI(ciKey{'s', replicates, level}, func() (func() (estimator.CI, error), error) {
		if s.suite.Switch == nil {
			return nil, fmt.Errorf("engine: session %q has no SWITCH estimator", s.id)
		}
		st, err := s.suite.Switch.CaptureBootstrap()
		if err != nil {
			return nil, err
		}
		return func() (estimator.CI, error) {
			defer st.Release()
			return st.Bootstrap(replicates, level, xrand.New(s.ciSeed), s.ciWorkers)
		}, nil
	})
}

// Chao92CI computes a bootstrap confidence interval for the Chao92 total
// estimate, cached by (replicates, level) until the session mutates. Like
// SwitchCI, only the O(N) count capture holds the session mutex.
func (s *Session) Chao92CI(replicates int, level float64) (estimator.CI, error) {
	return s.runCI(ciKey{'c', replicates, level}, func() (func() (estimator.CI, error), error) {
		st := estimator.CaptureChao92(s.suite.Matrix)
		return func() (estimator.CI, error) {
			defer st.Release()
			return st.Bootstrap(replicates, level, xrand.New(s.ciSeed), s.ciWorkers)
		}, nil
	})
}

// Snapshot captures the full estimator state (matrix, trackers, trend
// series) as an immutable deep copy. Taking a snapshot does not block other
// sessions and the session keeps ingesting afterwards.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mergeStagedLocked()
	sn := &Snapshot{
		suite: s.suite.Clone(),
		tasks: s.tasks,
		taken: time.Now(),
	}
	if s.ring != nil {
		sn.ring = s.ring.Clone()
	}
	metricSnapshots.Inc()
	return sn
}

// Restore replaces the session's estimator state with the snapshot's. The
// snapshot remains valid and can be restored again (the state is cloned on
// the way in). The snapshot must come from a session over the same
// population size; N is immutable for a session's lifetime, which keeps
// Append's range validation race-free.
func (s *Session) Restore(sn *Snapshot) error {
	if sn == nil || sn.suite == nil {
		return fmt.Errorf("engine: restore from empty snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		// A snapshot is a deep clone of estimator state without the vote
		// stream that produced it, so the write-ahead journal cannot
		// represent a restore; allowing one would silently diverge recovery.
		return fmt.Errorf("engine: session %q is durable; in-memory snapshot restore is not supported (replay the journal instead)", s.id)
	}
	_ = s.mergeStagedLocked()
	// Hold the snapshot's own lock while cloning: Snapshot.Estimates mutates
	// scratch state inside the suite, so an unguarded concurrent Clone would
	// race (sn.mu is always the innermost lock; nothing under it takes s.mu).
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if got, want := sn.suite.NumItems(), s.suite.NumItems(); got != want {
		return fmt.Errorf("engine: snapshot population %d does not match session population %d", got, want)
	}
	if (sn.ring == nil) != (s.ring == nil) {
		return fmt.Errorf("engine: snapshot and session disagree on windowed estimation")
	}
	if s.ring != nil && sn.ring.Config() != s.ring.Config() {
		return fmt.Errorf("engine: snapshot window config %+v does not match session %+v", sn.ring.Config(), s.ring.Config())
	}
	s.suite = sn.suite.Clone()
	if sn.ring != nil {
		s.ring = sn.ring.Clone()
	}
	s.tasks = sn.tasks
	// Restore is a mutation like any other: the version moves FORWARD (never
	// back to the snapshot's), so lock-free readers and watch cursors can
	// treat version equality as state equality.
	s.bump()
	s.touch()
	metricRestores.Inc()
	return nil
}

// Snapshot is a point-in-time deep copy of a session's estimator state. It
// is logically immutable: restores clone it again, so one snapshot can seed
// many restores (or sessions).
type Snapshot struct {
	// mu serializes Estimates: evaluation reuses internal scratch buffers,
	// so even read-style access must not run concurrently.
	mu    sync.Mutex
	suite *estimator.Suite
	// ring carries the windowed state of a windowed session (nil otherwise),
	// so Restore brings windows back alongside the all-time suite.
	ring  *window.Ring
	tasks int64
	taken time.Time
}

// Tasks returns the number of completed tasks at the snapshot point.
func (sn *Snapshot) Tasks() int64 { return sn.tasks }

// TakenAt returns when the snapshot was captured.
func (sn *Snapshot) TakenAt() time.Time { return sn.taken }

// NumItems returns the snapshot's population size.
func (sn *Snapshot) NumItems() int { return sn.suite.NumItems() }

// TotalVotes returns the number of votes ingested at the snapshot point.
func (sn *Snapshot) TotalVotes() int64 { return sn.suite.Matrix.TotalVotes() }

// Estimates evaluates the snapshot's estimators.
func (sn *Snapshot) Estimates() estimator.Estimates {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.suite.EstimateAll()
}
