package engine

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"dqm/internal/estimator"
	"dqm/internal/votes"
	"dqm/internal/wal"
	"dqm/internal/window"
)

func windowedSessionCfg() SessionConfig {
	w := window.Config{Size: 7, Stride: 3, DecayAlpha: 0.5}
	return SessionConfig{
		Suite:  estimator.SuiteConfig{Switch: estimator.SwitchConfig{TrendWindow: 4}},
		Window: &w,
	}
}

// winState captures everything a windowed session can serve: the all-time
// estimate plus all three windowed views (with their availability).
type winState struct {
	votes, tasks         int64
	est                  estimator.Estimates
	cur, last, dec       window.Result
	curOK, lastOK, decOK bool
}

func captureWinState(s *Session) winState {
	w := winState{votes: s.TotalVotes(), tasks: s.Tasks(), est: s.Estimates()}
	var err error
	if w.cur, err = s.WindowEstimates(window.KindCurrent); err == nil {
		w.curOK = true
	}
	if w.last, err = s.WindowEstimates(window.KindLast); err == nil {
		w.lastOK = true
	}
	if w.dec, err = s.WindowEstimates(window.KindDecayed); err == nil {
		w.decOK = true
	}
	return w
}

// winPrefixStates replays every frame prefix of ops cleanly in memory.
func winPrefixStates(t *testing.T, n int, ops []walOp) []winState {
	t.Helper()
	s := NewSession("", n, windowedSessionCfg())
	out := make([]winState, 0, len(ops)+1)
	out = append(out, captureWinState(s))
	for _, o := range ops {
		if o.reset {
			s.Reset()
		} else if err := s.Append(o.batch, o.end); err != nil {
			t.Fatal(err)
		}
		out = append(out, captureWinState(s))
	}
	return out
}

// TestWindowedDurableRoundTripBitIdentical: a windowed session's full state —
// all-time estimate AND every windowed view — must survive close/reopen
// (rotation and compaction included) bit-identically.
func TestWindowedDurableRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	s, err := e.Create("win-rt", n, windowedSessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(61, 300, n)
	// Guarantee a sealed window at the end even if the random stream reset
	// late: a run of task-ending frames longer than the window size.
	for i := 0; i < 12; i++ {
		ops = append(ops, walOp{batch: []votes.Vote{{Item: i % n, Worker: i % 5, Label: votes.Dirty}}, end: true})
	}
	applyOps(t, s, ops)
	want := captureWinState(s)
	if !want.lastOK || !want.decOK {
		t.Fatal("test stream too short: no window ever completed")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// In-memory reference: journaling must not change windowed semantics.
	ref := NewSession("", n, windowedSessionCfg())
	applyOps(t, ref, ops)
	if got := captureWinState(ref); !reflect.DeepEqual(got, want) {
		t.Fatal("in-memory windowed reference diverges from durable session")
	}

	e2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2, ok := e2.Get("win-rt")
	if !ok {
		t.Fatal("windowed session not recovered")
	}
	if got := captureWinState(s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered windowed state differs:\n got %+v\nwant %+v", got, want)
	}
	// And it keeps ingesting durably with correct window rotation.
	more := genOps(62, 60, n)
	applyOps(t, s2, more)
	final := captureWinState(s2)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	s3, _ := e3.Get("win-rt")
	if got := captureWinState(s3); !reflect.DeepEqual(got, final) {
		t.Fatal("second windowed recovery diverges")
	}
}

// TestWindowedCrashRecoveryMatchesCleanReplayPrefix is the acceptance-criteria
// property test: truncating the journal at arbitrary byte offsets across
// window boundaries must always recover to a clean frame prefix whose
// windowed estimates are bit-identical to an uninterrupted run over that
// prefix — a task boundary can never come back without the window rotation it
// sealed (they share a frame).
func TestWindowedCrashRecoveryMatchesCleanReplayPrefix(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Create("win-crash", n, windowedSessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(63, 160, n)
	applyOps(t, s, ops)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	prefixes := winPrefixStates(t, n, ops)
	seg := activeSegment(t, dir, "win-crash")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	step := int64(7)
	if testing.Short() {
		step = 61
	}
	var cuts []int64
	for c := int64(0); c < int64(len(raw)); c += step {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, int64(len(raw)))
	for _, cut := range cuts {
		clone := t.TempDir()
		copyDir(t, dir, clone)
		segClone := activeSegment(t, clone, "win-crash")
		if err := os.Truncate(segClone, cut); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(durableConfig(clone))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		s2, ok := e2.Get("win-crash")
		if !ok {
			t.Fatalf("cut=%d: session missing after recovery", cut)
		}
		got := captureWinState(s2)
		found := false
		for _, p := range prefixes {
			if p.votes == got.votes && p.tasks == got.tasks && reflect.DeepEqual(p, got) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cut=%d: recovered windowed state (votes=%d tasks=%d) matches no clean frame prefix",
				cut, got.votes, got.tasks)
		}
		e2.Close()
	}
}

// TestRecoveryRejectsMismatchedRotationRecord: a journaled rotation that the
// deterministic replay does not reproduce is corruption and must fail
// recovery loudly, not serve silently wrong windows.
func TestRecoveryRejectsMismatchedRotationRecord(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Create("bad-rot", 20, windowedSessionCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Two tasks in: the next rotation is far away, so a rotation record here
	// cannot match the replayed window state.
	for i := 0; i < 2; i++ {
		if err := s.Append([]votes.Vote{{Item: i, Worker: 0, Label: votes.Dirty}}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a forged rotation frame through the raw WAL layer.
	store, err := wal.OpenStore(dir, wal.Options{Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := store.Recover("bad-rot", wal.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRotation(nil, 999); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(durableConfig(dir)); err == nil || !strings.Contains(err.Error(), "window rotation") {
		t.Fatalf("recovery with forged rotation record: err = %v, want window-rotation mismatch", err)
	}
}
