package engine

import "dqm/internal/metrics"

// Engine-plane instruments, registered on the shared Default registry and
// cumulative across every engine in the process (dqm-serve runs one; tests
// may run many — counters only ever add, so that composes). Per-engine state
// such as the live-session count is exposed by the serving layer as a gauge
// over Engine.Len instead, where one engine's identity is known.
//
// Everything incremented on the ingest or read hot path is a bare atomic
// add: the 0-alloc guarantees of Append and the cached Estimates read are
// load-bearing (see BenchmarkSessionIngest / BenchmarkEstimatesCached).
var (
	metricVotes = metrics.Default.Counter("dqm_engine_votes_total",
		"Votes ingested across all sessions (live and recovery replay are not double-counted; replay does not increment).")
	metricBatches = metrics.Default.Counter("dqm_engine_append_batches_total",
		"Ingest batches applied (one engine Append call each).")
	metricTasks = metrics.Default.Counter("dqm_engine_tasks_total",
		"Task boundaries marked across all sessions.")
	metricEstimateHits = metrics.Default.Counter("dqm_engine_estimate_cache_hits_total",
		"Estimate reads served lock-free from the version-guarded cache.")
	metricEstimateMisses = metrics.Default.Counter("dqm_engine_estimate_cache_misses_total",
		"Estimate reads that recomputed under the session mutex (first read after a mutation).")
	metricSessionsCreated = metrics.Default.Counter("dqm_engine_sessions_created_total",
		"Sessions created (excluding recovery and revival).")
	metricSessionsRecovered = metrics.Default.Counter("dqm_engine_sessions_recovered_total",
		"Sessions rebuilt from their journals (boot recovery and on-demand revival).")
	metricSessionLoads = metrics.Default.Counter("dqm_engine_session_loads_total",
		"Evicted-or-cold sessions revived from disk via Load/GetOrLoad.")
	metricLoadsInflight = metrics.Default.Gauge("dqm_engine_loads_inflight",
		"Cold session loads currently replaying a journal. With per-id load singleflight, distinct sessions replay concurrently, so this can exceed 1.")
	metricRecoverySeconds = metrics.Default.Histogram("dqm_engine_recovery_seconds",
		"Per-session journal replay duration (boot recovery and on-demand loads).",
		metrics.DurationBuckets)
	metricEvictions = metrics.Default.Counter("dqm_engine_evictions_total",
		"Sessions dropped from memory by the MaxSessions LRU policy.")
	metricSessionsDeleted = metrics.Default.Counter("dqm_engine_sessions_deleted_total",
		"Sessions removed by explicit Delete.")
	metricResets = metrics.Default.Counter("dqm_engine_resets_total",
		"Session resets applied.")
	metricSnapshots = metrics.Default.Counter("dqm_engine_snapshots_total",
		"Point-in-time session snapshots taken.")
	metricRestores = metrics.Default.Counter("dqm_engine_restores_total",
		"Session restores applied from snapshots.")

	// Estimate-read latency by compute path: "cached" reads served from a
	// valid memo (lock-free or under mu), "incremental" reads that refreshed
	// a stale memo in place (only changed members re-ran), "full" reads that
	// evaluated every member from scratch (first read, post-reset/restore).
	metricEstimateCached = metrics.Default.Histogram("dqm_engine_estimate_seconds",
		"Estimate read latency by compute path.",
		metrics.DurationBuckets, metrics.Label{Name: "path", Value: "cached"})
	metricEstimateIncremental = metrics.Default.Histogram("dqm_engine_estimate_seconds",
		"Estimate read latency by compute path.",
		metrics.DurationBuckets, metrics.Label{Name: "path", Value: "incremental"})
	metricEstimateFull = metrics.Default.Histogram("dqm_engine_estimate_seconds",
		"Estimate read latency by compute path.",
		metrics.DurationBuckets, metrics.Label{Name: "path", Value: "full"})
	metricBootstrapSeconds = metrics.Default.Histogram("dqm_engine_bootstrap_seconds",
		"Off-mutex bootstrap confidence-interval compute duration (capture and cache bookkeeping excluded).",
		metrics.DurationBuckets)
)
